// View-change tests: the Fig 3-2/3-3 pure functions, plus integration tests that kill or
// silence primaries and check that the group re-elects and preserves committed state.
#include <gtest/gtest.h>

#include "src/core/view_change.h"
#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions SmallCluster(uint64_t seed = 1) {
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  return options;
}

ServiceFactory CounterFactory() {
  return [](NodeId) { return std::make_unique<CounterService>(); };
}

Digest D(uint8_t x) {
  Digest d;
  d.bytes[0] = x;
  return d;
}

// --- ComputePq (Fig 3-2) --------------------------------------------------------------------

TEST(ComputePqTest, PreparedEntryEntersPset) {
  PqState pq;
  ComputePq({SeqObservation{5, D(1), 3, true, true}}, &pq);
  ASSERT_EQ(pq.pset.count(5), 1u);
  EXPECT_EQ(pq.pset[5].d, D(1));
  EXPECT_EQ(pq.pset[5].view, 3u);
}

TEST(ComputePqTest, PrePreparedOnlyEntersQsetNotPset) {
  PqState pq;
  ComputePq({SeqObservation{5, D(1), 3, true, false}}, &pq);
  EXPECT_EQ(pq.pset.count(5), 0u);
  ASSERT_EQ(pq.qset.count(5), 1u);
  EXPECT_EQ(pq.qset[5].size(), 1u);
}

TEST(ComputePqTest, LaterViewSupersedesPsetEntry) {
  PqState pq;
  ComputePq({SeqObservation{5, D(1), 3, true, true}}, &pq);
  ComputePq({SeqObservation{5, D(2), 4, true, true}}, &pq);
  EXPECT_EQ(pq.pset[5].d, D(2));
  EXPECT_EQ(pq.pset[5].view, 4u);
}

TEST(ComputePqTest, OldPsetEntrySurvivesWhenNothingNewPrepared) {
  PqState pq;
  ComputePq({SeqObservation{5, D(1), 3, true, true}}, &pq);
  ComputePq({}, &pq);  // nothing prepared in the view being left
  ASSERT_EQ(pq.pset.count(5), 1u);
  EXPECT_EQ(pq.pset[5].d, D(1));
}

TEST(ComputePqTest, QsetSameDigestUpdatesView) {
  PqState pq;
  ComputePq({SeqObservation{5, D(1), 3, true, false}}, &pq);
  ComputePq({SeqObservation{5, D(1), 4, true, false}}, &pq);
  ASSERT_EQ(pq.qset[5].size(), 1u);
  EXPECT_EQ(pq.qset[5][0].second, 4u);
}

TEST(ComputePqTest, QsetBoundedSpaceDropsLowestView) {
  PqState pq;
  ComputePq({SeqObservation{5, D(1), 1, true, false}}, &pq);
  ComputePq({SeqObservation{5, D(2), 2, true, false}}, &pq);
  ComputePq({SeqObservation{5, D(3), 3, true, false}}, &pq);
  // kMaxQsetViews == 2: the (D(1), 1) pair must have been evicted.
  ASSERT_EQ(pq.qset[5].size(), kMaxQsetViews);
  for (const auto& [d, v] : pq.qset[5]) {
    EXPECT_NE(d, D(1));
  }
}

// --- RunDecisionProcedure (Fig 3-3) -------------------------------------------------------------

ViewChangeMsg Vc(NodeId replica, SeqNo h, std::vector<std::pair<SeqNo, Digest>> checkpoints,
                 std::vector<ViewChangeMsg::PEntry> p = {},
                 std::vector<ViewChangeMsg::QEntry> q = {}) {
  ViewChangeMsg m;
  m.view = 1;
  m.replica = replica;
  m.h = h;
  m.checkpoints = std::move(checkpoints);
  m.p = std::move(p);
  m.q = std::move(q);
  return m;
}

ReplicaConfig Cfg4() {
  ReplicaConfig config;
  config.n = 4;
  config.log_size = 16;
  return config;
}

TEST(DecisionTest, AllIdleChoosesCheckpointZeroAndNothingElse) {
  std::map<NodeId, ViewChangeMsg> s;
  for (NodeId r = 0; r < 3; ++r) {
    s[r] = Vc(r, 0, {{0, D(9)}});
  }
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  EXPECT_TRUE(d.checkpoint_selected);
  EXPECT_TRUE(d.complete);
  EXPECT_EQ(d.min_s, 0u);
  EXPECT_EQ(d.chkpt_digest, D(9));
  EXPECT_TRUE(d.chosen.empty());
}

TEST(DecisionTest, InsufficientMessagesSelectsNothing) {
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 0, {{0, D(9)}});
  s[1] = Vc(1, 0, {{0, D(9)}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  EXPECT_FALSE(d.checkpoint_selected);
}

TEST(DecisionTest, PreparedRequestIsChosen) {
  // Replica 0 prepared (seq 1, D(7), view 0); replicas 0 and 1 pre-prepared it.
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 0, {{0, D(9)}}, {{1, D(7), 0}}, {{1, {{D(7), 0}}}});
  s[1] = Vc(1, 0, {{0, D(9)}}, {}, {{1, {{D(7), 0}}}});
  s[2] = Vc(2, 0, {{0, D(9)}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  ASSERT_TRUE(d.complete);
  ASSERT_EQ(d.chosen.size(), 1u);
  EXPECT_EQ(d.chosen[0], std::make_pair(SeqNo{1}, D(7)));
}

TEST(DecisionTest, UnpreparedSeqGetsNullRequest) {
  // Replica 0 prepared seq 2 but nothing for seq 1: seq 1 must become a null request.
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 0, {{0, D(9)}}, {{2, D(7), 0}}, {{2, {{D(7), 0}}}});
  s[1] = Vc(1, 0, {{0, D(9)}}, {}, {{2, {{D(7), 0}}}});
  s[2] = Vc(2, 0, {{0, D(9)}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  ASSERT_TRUE(d.complete);
  ASSERT_EQ(d.chosen.size(), 2u);
  EXPECT_EQ(d.chosen[0], std::make_pair(SeqNo{1}, NullBatchDigest()));
  EXPECT_EQ(d.chosen[1], std::make_pair(SeqNo{2}, D(7)));
}

TEST(DecisionTest, MissingPayloadBlocksCompletion) {
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 0, {{0, D(9)}}, {{1, D(7), 0}}, {{1, {{D(7), 0}}}});
  s[1] = Vc(1, 0, {{0, D(9)}}, {}, {{1, {{D(7), 0}}}});
  s[2] = Vc(2, 0, {{0, D(9)}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return false; });
  EXPECT_FALSE(d.complete);
  ASSERT_EQ(d.missing_payloads.size(), 1u);
  EXPECT_EQ(d.missing_payloads[0], D(7));
}

TEST(DecisionTest, HigherViewPreparedWinsOverLower) {
  // Seq 1 prepared as D(1) in view 0 at replica 1 but as D(2) in view 2 at replica 0:
  // the later view's prepared certificate must win (it could only exist if D(1) did not
  // commit).
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 0, {{0, D(9)}}, {{1, D(2), 2}}, {{1, {{D(2), 2}}}});
  s[1] = Vc(1, 0, {{0, D(9)}}, {{1, D(1), 0}}, {{1, {{D(1), 0}, {D(2), 2}}}});
  s[2] = Vc(2, 0, {{0, D(9)}}, {}, {{1, {{D(2), 2}}}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  ASSERT_TRUE(d.complete);
  ASSERT_EQ(d.chosen.size(), 1u);
  EXPECT_EQ(d.chosen[0].second, D(2));
}

TEST(DecisionTest, CommittedRequestAlwaysSurvives) {
  // Theorem 3.2.1 scenario: a request committed with (seq 1, D(7), view 0) — so at least 2f+1
  // replicas prepared it. Any quorum of view-changes contains at least f+1 of those. The
  // decision must choose D(7), never null and never a different digest.
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 0, {{0, D(9)}}, {{1, D(7), 0}}, {{1, {{D(7), 0}}}});
  s[1] = Vc(1, 0, {{0, D(9)}}, {{1, D(7), 0}}, {{1, {{D(7), 0}}}});
  s[2] = Vc(2, 0, {{0, D(9)}}, {{1, D(7), 0}}, {{1, {{D(7), 0}}}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  ASSERT_TRUE(d.complete);
  ASSERT_EQ(d.chosen.size(), 1u);
  EXPECT_EQ(d.chosen[0].second, D(7));
}

TEST(DecisionTest, CheckpointNeedsWeakCertificate) {
  // A lone replica claiming stable checkpoint 8 cannot drag min_s to 8 (f+1 must vouch for
  // it), and its h=8 blocks checkpoint 0 from reaching 2f+1 h<=0 votes — the primary must
  // wait for a fourth message.
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 8, {{0, D(9)}, {8, D(5)}});
  s[1] = Vc(1, 0, {{0, D(9)}});
  s[2] = Vc(2, 0, {{0, D(9)}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  EXPECT_FALSE(d.checkpoint_selected);

  // With the fourth (honest) message, checkpoint 0 gets its 2f+1 and is selected; the lone
  // claim of checkpoint 8 still lacks a weak certificate.
  s[3] = Vc(3, 0, {{0, D(9)}});
  d = RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  ASSERT_TRUE(d.checkpoint_selected);
  EXPECT_EQ(d.min_s, 0u);
}

TEST(DecisionTest, PicksHighestEligibleCheckpoint) {
  std::map<NodeId, ViewChangeMsg> s;
  s[0] = Vc(0, 8, {{0, D(9)}, {8, D(5)}});
  s[1] = Vc(1, 8, {{0, D(9)}, {8, D(5)}});
  s[2] = Vc(2, 0, {{0, D(9)}, {8, D(5)}});
  ViewChangeDecision d =
      RunDecisionProcedure(Cfg4(), s, [](const Digest&) { return true; });
  ASSERT_TRUE(d.checkpoint_selected);
  EXPECT_EQ(d.min_s, 8u);
  EXPECT_EQ(d.chkpt_digest, D(5));
}

// --- Integration: live view changes ------------------------------------------------------------------

TEST(ViewChangeIntegrationTest, CrashedPrimaryIsReplaced) {
  Cluster cluster(SmallCluster(21), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  cluster.replica(0)->Crash();  // primary of view 0
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 2u);
  // Some replica must have moved past view 0.
  EXPECT_GE(cluster.replica(1)->view(), 1u);
}

TEST(ViewChangeIntegrationTest, MutePrimaryIsReplaced) {
  Cluster cluster(SmallCluster(22), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  cluster.replica(0)->SetMute(true);  // Byzantine-silent primary
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 2u);
}

TEST(ViewChangeIntegrationTest, CommittedStateSurvivesViewChange) {
  Cluster cluster(SmallCluster(23), CounterFactory());
  Client* client = cluster.AddClient();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  cluster.replica(0)->Crash();
  for (uint64_t i = 7; i <= 12; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i) << "state lost across view change";
  }
}

TEST(ViewChangeIntegrationTest, SuccessiveLeaderFailures) {
  // Kill primaries of views 0 and 1 in turn; f=1 means this only works because the second
  // crash happens after the first view change completes and the group is back to 3 live
  // replicas... with n=4 and two crashed replicas there is no quorum, so instead we mute
  // (Byzantine-silence) them one at a time and un-mute the first.
  Cluster cluster(SmallCluster(24), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  cluster.replica(0)->SetMute(true);
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond));
  cluster.replica(0)->SetMute(false);
  cluster.sim().RunFor(kSecond);

  NodeId next_primary = cluster.CurrentPrimary();
  cluster.replica(static_cast<int>(next_primary))->SetMute(true);
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 3u);
}

TEST(ViewChangeIntegrationTest, ViewChangeAfterCheckpointGarbageCollection) {
  // Force the failure after stability advanced, so the view change must pick a non-zero
  // checkpoint (min_s > 0).
  Cluster cluster(SmallCluster(25), CounterFactory());
  Client* client = cluster.AddClient();
  for (int i = 0; i < 12; ++i) {  // past checkpoint period 8
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  cluster.sim().RunFor(kSecond);
  EXPECT_GE(cluster.replica(1)->low_water(), 8u);

  cluster.replica(0)->Crash();
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 13u);
}

TEST(ViewChangeIntegrationTest, ForcedViewChangeIsHarmless) {
  Cluster cluster(SmallCluster(26), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  for (int r = 1; r < 4; ++r) {
    cluster.replica(r)->ForceViewChange();
  }
  cluster.sim().RunFor(5 * kSecond);
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 2u);
}

TEST(ViewChangeIntegrationTest, TwoFaultsToleratedWithSevenReplicas) {
  // n = 7 tolerates f = 2: silence two replicas — including the primary — and keep going.
  ClusterOptions options = SmallCluster(29);
  options.config.n = 7;
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  cluster.replica(0)->SetMute(true);  // the primary
  cluster.replica(4)->SetMute(true);  // a backup
  for (uint64_t i = 2; i <= 6; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value()) << "op " << i;
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
  EXPECT_GE(cluster.replica(1)->view(), 1u);
}

TEST(ViewChangeIntegrationTest, ThreeFaultsWithSevenReplicasBlocksSafely) {
  // n = 7, f = 2: a third silent replica exceeds the fault budget. Nothing may commit — but
  // nothing may go wrong either, and recovery of one replica restores liveness.
  ClusterOptions options = SmallCluster(30);
  options.config.n = 7;
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  cluster.replica(1)->SetMute(true);
  cluster.replica(2)->SetMute(true);
  cluster.replica(3)->SetMute(true);
  bool done = false;
  client->Invoke(CounterService::IncOp(), false, [&done](Bytes) { done = true; });
  cluster.sim().RunFor(5 * kSecond);
  EXPECT_FALSE(done) << "committed without a quorum of correct replicas";

  // After the third replica returns, the view-change timeouts have backed off exponentially
  // (by design: stability over availability), so convergence takes a while of simulated time.
  cluster.replica(3)->SetMute(false);
  ASSERT_TRUE(cluster.sim().RunUntilCondition([&done]() { return done; },
                                              cluster.sim().Now() + 1200 * kSecond));
}

TEST(ViewChangeIntegrationTest, PartitionHealsAndProgressResumes) {
  Cluster cluster(SmallCluster(27), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  // Isolate the primary; the rest elect a new one.
  cluster.net().Partition({0});
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 2u);

  // Heal; the isolated replica catches up via status retransmission and participates again.
  cluster.net().HealPartition();
  cluster.sim().RunFor(5 * kSecond);
  result = cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 3u);
}

TEST(ViewChangeIntegrationTest, MinorityPartitionCannotCommit) {
  Cluster cluster(SmallCluster(28), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  // Cut the group in half: no quorum anywhere; nothing can commit (safety over liveness).
  cluster.net().Partition({0, 1});
  bool done = false;
  client->Invoke(CounterService::IncOp(), false, [&done](Bytes) { done = true; });
  cluster.sim().RunFor(10 * kSecond);
  EXPECT_FALSE(done);

  cluster.net().HealPartition();
  ASSERT_TRUE(
      cluster.sim().RunUntilCondition([&done]() { return done; },
                                      cluster.sim().Now() + 120 * kSecond));
}

}  // namespace
}  // namespace bft

// Tests for the crypto substrate: SHA-256 vectors, HMAC, digests, MACs, signatures, AdHash.
#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/crypto/adhash.h"
#include "src/crypto/digest.h"
#include "src/crypto/hmac.h"
#include "src/crypto/mac.h"
#include "src/crypto/sha256.h"
#include "src/crypto/signature.h"

namespace bft {
namespace {

std::string Sha256Hex(std::string_view input) {
  Sha256::DigestBytes d = Sha256::Hash(ToBytes(input));
  return HexEncode(ByteView(d.data(), d.size()));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  Sha256::DigestBytes d = h.Finish();
  EXPECT_EQ(HexEncode(ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  Rng rng(7);
  for (size_t len : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u, 4096u}) {
    Bytes data = rng.RandomBytes(len);
    Sha256 h;
    size_t offset = 0;
    size_t step = 1;
    while (offset < data.size()) {
      size_t take = std::min(step, data.size() - offset);
      h.Update(ByteView(data.data() + offset, take));
      offset += take;
      step = step * 2 + 1;
    }
    EXPECT_EQ(h.Finish(), Sha256::Hash(data)) << "len=" << len;
  }
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Sha256::DigestBytes mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(ByteView(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Sha256::DigestBytes mac =
      HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(ByteView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  Sha256::DigestBytes mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexEncode(ByteView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LongKeyLongData) {
  // 152-byte message: the one RFC 4231 vector whose message exceeds a single padded block,
  // pinning the streaming (>55-byte) HMAC branch to an independent known answer.
  Bytes key(131, 0xaa);
  Sha256::DigestBytes mac = HmacSha256(
      key,
      ToBytes("This is a test using a larger than block-size key and a larger than "
              "block-size data. The key needs to be hashed before being used by the HMAC "
              "algorithm."));
  EXPECT_EQ(HexEncode(ByteView(mac.data(), mac.size())),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(DigestTest, DeterministicAndDistinct) {
  Digest a = ComputeDigest(ToBytes("hello"));
  Digest b = ComputeDigest(ToBytes("hello"));
  Digest c = ComputeDigest(ToBytes("world"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_FALSE(a.IsZero());
  EXPECT_TRUE(Digest{}.IsZero());
}

TEST(DigestTest, PartsAreLengthDelimited) {
  // ("a", "bc") must differ from ("ab", "c").
  Digest d1 = ComputeDigestParts({ToBytes("a"), ToBytes("bc")});
  Digest d2 = ComputeDigestParts({ToBytes("ab"), ToBytes("c")});
  EXPECT_NE(d1, d2);
}

TEST(MacTest, VerifiesAndRejectsTamper) {
  Rng rng(3);
  Bytes key = rng.RandomBytes(kSessionKeySize);
  Bytes msg = rng.RandomBytes(64);
  MacTag tag = ComputeMac(key, msg);
  EXPECT_TRUE(MacEqual(tag, ComputeMac(key, msg)));

  Bytes tampered = msg;
  tampered[10] ^= 1;
  EXPECT_FALSE(MacEqual(tag, ComputeMac(key, tampered)));

  Bytes other_key = rng.RandomBytes(kSessionKeySize);
  EXPECT_FALSE(MacEqual(tag, ComputeMac(other_key, msg)));
}

TEST(SignatureTest, SignAndVerify) {
  PublicKeyDirectory dir;
  auto key5 = dir.Generate(5, 1);
  auto key6 = dir.Generate(6, 2);

  Bytes msg = ToBytes("attack at dawn");
  Signature sig = key5->Sign(msg);
  EXPECT_EQ(sig.bytes.size(), Signature::kSize);
  EXPECT_TRUE(dir.Verify(5, msg, sig));
  EXPECT_FALSE(dir.Verify(6, msg, sig));          // wrong principal
  EXPECT_FALSE(dir.Verify(5, ToBytes("x"), sig));  // wrong message
  EXPECT_FALSE(dir.Verify(7, msg, sig));           // unknown principal

  Signature forged = key6->Sign(msg);
  EXPECT_FALSE(dir.Verify(5, msg, forged));
}

TEST(AdHashTest, OrderIndependent) {
  Digest a = ComputeDigest(ToBytes("a"));
  Digest b = ComputeDigest(ToBytes("b"));
  Digest c = ComputeDigest(ToBytes("c"));

  AdHash h1;
  h1.Add(a);
  h1.Add(b);
  h1.Add(c);
  AdHash h2;
  h2.Add(c);
  h2.Add(a);
  h2.Add(b);
  EXPECT_EQ(h1.Value(), h2.Value());
}

TEST(AdHashTest, IncrementalReplaceMatchesRecompute) {
  Rng rng(9);
  std::vector<Digest> items;
  AdHash running;
  for (int i = 0; i < 100; ++i) {
    items.push_back(ComputeDigest(rng.RandomBytes(16)));
    running.Add(items.back());
  }
  // Replace random items and compare with a from-scratch sum.
  for (int round = 0; round < 50; ++round) {
    size_t idx = rng.Below(items.size());
    Digest fresh = ComputeDigest(rng.RandomBytes(16));
    running.Replace(items[idx], fresh);
    items[idx] = fresh;
  }
  AdHash scratch;
  for (const Digest& d : items) {
    scratch.Add(d);
  }
  EXPECT_EQ(running.Value(), scratch.Value());
}

TEST(AdHashTest, RemoveUndoesAdd) {
  Digest a = ComputeDigest(ToBytes("a"));
  Digest b = ComputeDigest(ToBytes("b"));
  AdHash h;
  h.Add(a);
  Digest before = h.Value();
  h.Add(b);
  h.Remove(b);
  EXPECT_EQ(h.Value(), before);
}

TEST(HexTest, RoundTrip) {
  Rng rng(11);
  Bytes data = rng.RandomBytes(33);
  EXPECT_EQ(HexDecode(HexEncode(data)), data);
  EXPECT_TRUE(HexDecode("xyz").empty());
  EXPECT_TRUE(HexDecode("abc").empty());  // odd length
}

}  // namespace
}  // namespace bft

// Endpoint timer semantics, shared across both runtime implementations.
//
// The same contract — cancel before fire, reset while pending, periodic stop, handler
// re-arming — is exercised against the simulator-backed Node and the real-clock RtNode via
// a typed fixture. Real-clock assertions only ever bound from below (a timer must not fire
// before its deadline) or wait with generous deadlines, so slow CI machines cannot flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/runtime/inproc_transport.h"
#include "src/runtime/rt_node.h"
#include "src/sim/node.h"

namespace bft {
namespace {

// Drives a simulator-backed endpoint: time is simulated, Run() is exact.
class SimEndpointDriver {
 public:
  SimEndpointDriver() : sim_(1), net_(&sim_, NetworkOptions{}), node_(&sim_, &net_, 0) {}

  Endpoint& ep() { return node_; }
  // Advances past `d` of endpoint time.
  void RunFor(SimTime d) { sim_.RunFor(d + 1); }
  // Waits (bounded) until `done` holds; returns whether it did.
  bool RunUntil(const std::function<bool()>& done) {
    return sim_.RunUntilCondition(done, sim_.Now() + 60 * kSecond);
  }

 private:
  Simulator sim_;
  Network net_;
  Node node_;
};

// Drives a real-clock endpoint: time is wall time, Run() sleeps.
class RtEndpointDriver {
 public:
  RtEndpointDriver() : node_(0, &transport_, 7) { node_.Start(); }
  ~RtEndpointDriver() { node_.Stop(); }

  Endpoint& ep() { return node_; }
  void RunFor(SimTime d) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(d + kMillisecond));
  }
  bool RunUntil(const std::function<bool()>& done) {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (done()) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  }

 private:
  InProcTransport transport_;
  RtNode node_;
};

template <typename Driver>
class EndpointTimerTest : public ::testing::Test {
 protected:
  Driver driver_;
};

using Drivers = ::testing::Types<SimEndpointDriver, RtEndpointDriver>;
TYPED_TEST_SUITE(EndpointTimerTest, Drivers);

TYPED_TEST(EndpointTimerTest, OneShotFires) {
  std::atomic<int> fired{0};
  this->driver_.ep().SetTimer(10 * kMillisecond, [&fired]() { ++fired; });
  EXPECT_TRUE(this->driver_.RunUntil([&fired]() { return fired.load() == 1; }));
}

TYPED_TEST(EndpointTimerTest, CancelBeforeFireSuppresses) {
  // The delay is far longer than any plausible preemption between SetTimer and CancelTimer,
  // so the cancel always races ahead of the deadline even on a stalled CI machine.
  std::atomic<int> fired{0};
  Endpoint& ep = this->driver_.ep();
  Endpoint::TimerId id = ep.SetTimer(2 * kSecond, [&fired]() { ++fired; });
  ep.CancelTimer(id);
  this->driver_.RunFor(2 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(fired.load(), 0);
}

TYPED_TEST(EndpointTimerTest, CancelUnknownIdIsNoop) {
  this->driver_.ep().CancelTimer(0);
  this->driver_.ep().CancelTimer(999'999);
}

TYPED_TEST(EndpointTimerTest, ResetWhilePendingMovesDeadline) {
  Endpoint& ep = this->driver_.ep();
  std::atomic<int> fired{0};
  std::atomic<SimTime> fired_at{0};
  // Armed far beyond the driver's RunUntil horizon: the timer can only fire because the
  // reset moved its deadline, and the original deadline cannot sneak in first no matter how
  // long the harness thread is preempted (lower-bound assertions only — flake-proof).
  Endpoint::TimerId id = ep.SetTimer(600 * kSecond, [&ep, &fired, &fired_at]() {
    fired_at.store(ep.Now());
    ++fired;
  });
  SimTime reset_at = ep.Now();
  EXPECT_TRUE(ep.ResetTimer(id, 100 * kMillisecond));
  EXPECT_TRUE(this->driver_.RunUntil([&fired]() { return fired.load() == 1; }));
  EXPECT_GE(fired_at.load() - reset_at, 100 * kMillisecond);
  // A fired one-shot is gone: reset now fails and nothing refires.
  EXPECT_FALSE(ep.ResetTimer(id, 10 * kMillisecond));
  this->driver_.RunFor(50 * kMillisecond);
  EXPECT_EQ(fired.load(), 1);
}

TYPED_TEST(EndpointTimerTest, ResetCancelledTimerFails) {
  Endpoint& ep = this->driver_.ep();
  Endpoint::TimerId id = ep.SetTimer(100 * kMillisecond, []() {});
  ep.CancelTimer(id);
  EXPECT_FALSE(ep.ResetTimer(id, 10 * kMillisecond));
}

TYPED_TEST(EndpointTimerTest, PeriodicFiresRepeatedlyUntilCancelled) {
  Endpoint& ep = this->driver_.ep();
  std::atomic<int> fired{0};
  Endpoint::TimerId id = ep.SetPeriodicTimer(5 * kMillisecond, [&fired]() { ++fired; });
  EXPECT_TRUE(this->driver_.RunUntil([&fired]() { return fired.load() >= 3; }));
  ep.CancelTimer(id);
  // One firing may already be in flight at cancel time; settle generously, then demand
  // quiescence.
  this->driver_.RunFor(500 * kMillisecond);
  int settled = fired.load();
  this->driver_.RunFor(500 * kMillisecond);
  EXPECT_EQ(fired.load(), settled);
}

TYPED_TEST(EndpointTimerTest, HandlerCanRearmItself) {
  Endpoint& ep = this->driver_.ep();
  std::atomic<int> fired{0};
  std::function<void()> chain = [&ep, &fired, &chain]() {
    if (++fired < 3) {
      ep.SetTimer(2 * kMillisecond, chain);
    }
  };
  ep.SetTimer(2 * kMillisecond, chain);
  EXPECT_TRUE(this->driver_.RunUntil([&fired]() { return fired.load() == 3; }));
  this->driver_.RunFor(50 * kMillisecond);
  EXPECT_EQ(fired.load(), 3);
}

TYPED_TEST(EndpointTimerTest, CancelAllTimersSuppressesEverything) {
  // Delays dwarf any plausible preemption between arming and CancelAllTimers (see
  // CancelBeforeFireSuppresses).
  Endpoint& ep = this->driver_.ep();
  std::atomic<int> fired{0};
  ep.SetTimer(2 * kSecond, [&fired]() { ++fired; });
  ep.SetPeriodicTimer(2 * kSecond, [&fired]() { ++fired; });
  ep.CancelAllTimers();
  this->driver_.RunFor(2 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(fired.load(), 0);
}

}  // namespace
}  // namespace bft

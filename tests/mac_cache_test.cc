// Tests for the session-key / HMAC-state cache behind AuthContext, and for the encode-once
// MsgBuffer path: cached MACs must be byte-identical to uncached ones, NEW-KEY epoch bumps
// must invalidate cached keys, and an authenticator must round-trip between nodes hosted on
// either endpoint implementation (simulator Node and real-clock RtNode).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/core/auth.h"
#include "src/crypto/hmac.h"
#include "src/crypto/mac.h"
#include "src/runtime/inproc_transport.h"
#include "src/runtime/rt_node.h"
#include "src/runtime/udp_transport.h"
#include "src/sim/network.h"
#include "src/sim/node.h"
#include "src/sim/simulator.h"

namespace bft {
namespace {

struct CacheFixture {
  CacheFixture() {
    config.n = 4;
    for (NodeId i = 0; i < 4; ++i) {
      contexts.push_back(std::make_unique<AuthContext>(i, &config, &model, &directory,
                                                       directory.Generate(i, 100 + i)));
    }
  }
  ReplicaConfig config;
  PerfModel model;
  PublicKeyDirectory directory;
  std::vector<std::unique_ptr<AuthContext>> contexts;
};

TEST(MacCacheTest, CachedMacMatchesFromScratchComputation) {
  CacheFixture f;
  Bytes content = ToBytes("prepare-header-bytes");
  // The cached path (MacStateFor / precomputed HmacState) must produce exactly the bytes the
  // uncached primitives produce for the same derived key.
  for (NodeId dst = 1; dst < 4; ++dst) {
    Bytes key = f.contexts[0]->KeyFor(0, dst);
    MacTag uncached = ComputeMac(key, content);
    MacTag cached = ComputeMac(f.contexts[0]->MacStateFor(0, dst), content);
    EXPECT_TRUE(MacEqual(uncached, cached)) << "dst=" << dst;
    // And repeated lookups keep serving the same (still-correct) state.
    MacTag again = ComputeMac(f.contexts[0]->MacStateFor(0, dst), content);
    EXPECT_TRUE(MacEqual(uncached, again)) << "dst=" << dst;
  }
}

TEST(MacCacheTest, HmacStateFastPathMatchesStreaming) {
  // The <=55-byte single-block finish and the general streaming path must agree everywhere,
  // including at the boundary.
  Rng rng(5);
  Bytes key = rng.RandomBytes(kSessionKeySize);
  HmacState state(key);
  for (size_t len : {0u, 1u, 8u, 48u, 52u, 55u, 56u, 57u, 64u, 100u, 1000u}) {
    Bytes msg = rng.RandomBytes(len);
    Sha256::DigestBytes via_state = state.Mac(msg);
    Sha256::DigestBytes via_oneshot = HmacSha256(key, msg);
    EXPECT_EQ(via_state, via_oneshot) << "len=" << len;
  }
}

TEST(MacCacheTest, EpochBumpInvalidatesCachedKeys) {
  CacheFixture f;
  Bytes content = ToBytes("msg");
  // Prime every cache: sender's outgoing state and receiver's verifying state.
  Bytes auth = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  ASSERT_TRUE(f.contexts[1]->VerifyAuthenticator(0, content, auth, nullptr));

  // Replica 1 refreshes its incoming keys (NEW-KEY, Section 4.3.1). Its *own* cached
  // verification key must roll over immediately: the old MAC is now stale.
  f.contexts[1]->BumpMyEpoch();
  EXPECT_FALSE(f.contexts[1]->VerifyAuthenticator(0, content, auth, nullptr))
      << "MAC under the pre-bump cached key must be rejected after NEW-KEY";

  // A sender that has not learned the new epoch keeps producing stale MACs from its cache.
  Bytes stale = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  EXPECT_FALSE(f.contexts[1]->VerifyAuthenticator(0, content, stale, nullptr));

  // Once the sender learns the epoch, its cached entry re-derives and fresh MACs verify.
  ASSERT_TRUE(f.contexts[0]->SetPeerEpoch(1, 1));
  Bytes fresh = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  EXPECT_TRUE(f.contexts[1]->VerifyAuthenticator(0, content, fresh, nullptr));
  // Keys for other receivers were governed by other epochs and stay valid throughout.
  EXPECT_TRUE(f.contexts[2]->VerifyAuthenticator(0, content, fresh, nullptr));
  EXPECT_TRUE(f.contexts[3]->VerifyAuthenticator(0, content, fresh, nullptr));
}

TEST(MacCacheTest, KeyForReflectsEpochInDerivation) {
  CacheFixture f;
  Bytes before = f.contexts[0]->KeyFor(0, 1);
  f.contexts[0]->SetPeerEpoch(1, 7);
  Bytes after = f.contexts[0]->KeyFor(0, 1);
  EXPECT_NE(before, after) << "epoch must be part of the cached derivation";
  EXPECT_EQ(after, f.contexts[0]->KeyFor(0, 1)) << "stable within an epoch";
}

// One authenticated multicast hop across a real endpoint: node 0 authenticates and sends,
// node 1's handler (on the endpoint's own delivery path) verifies its authenticator slot.
// Typed over both endpoint implementations so the sim Node and the RtNode exercise the same
// MsgBuffer dispatch and the same cached-MAC verification.
template <typename Env>
class EndpointAuthRoundTripTest : public ::testing::Test {};

struct SimEnv {
  SimEnv() : sim(1), net(&sim, NetworkOptions{}) {}
  std::unique_ptr<Endpoint> MakeNode(NodeId id) {
    return std::make_unique<Node>(&sim, &net, id);
  }
  void Pump() { sim.RunAll(); }
  Simulator sim;
  Network net;
};

template <typename TransportT>
struct RtEnv {
  std::unique_ptr<Endpoint> MakeNode(NodeId id) {
    auto node = std::make_unique<RtNode>(id, &transport, /*seed=*/9);
    node->Start();
    return node;
  }
  void Pump() {
    // Real clock: delivery is asynchronous; the handlers below flip atomics when done.
  }
  TransportT transport;
};

using SimEnvT = SimEnv;
using RtInProcEnv = RtEnv<InProcTransport>;
using RtUdpEnv = RtEnv<UdpTransport>;
using EndpointEnvs = ::testing::Types<SimEnvT, RtInProcEnv, RtUdpEnv>;
TYPED_TEST_SUITE(EndpointAuthRoundTripTest, EndpointEnvs);

TYPED_TEST(EndpointAuthRoundTripTest, AuthenticatorVerifiesAcrossTheWire) {
  TypeParam env;
  CacheFixture f;

  std::unique_ptr<Endpoint> sender = env.MakeNode(0);
  std::unique_ptr<Endpoint> receiver = env.MakeNode(1);

  std::atomic<int> verdict{-1};  // -1: nothing delivered, 0: rejected, 1: verified
  Bytes content = ToBytes("cross-endpoint-header");
  receiver->SetHandler([&](MsgBuffer wire) {
    // Wire layout for this test: authenticator trailer after the content.
    ByteView v = wire.view();
    if (v.size() < content.size()) {
      return;
    }
    ByteView body(v.data(), content.size());
    ByteView auth(v.data() + content.size(), v.size() - content.size());
    bool ok = f.contexts[1]->VerifyAuthenticator(0, body, auth, nullptr) &&
              Equal(body, content);
    verdict.store(ok ? 1 : 0);
  });

  Bytes wire = content;
  Bytes auth = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  Append(wire, auth);
  sender->Multicast({0, 1}, MsgBuffer(std::move(wire)));  // self is skipped by contract
  env.Pump();
  for (int spin = 0; spin < 500 && verdict.load() == -1; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(verdict.load(), 1) << "authenticator must verify after one endpoint hop";

  sender->Close();
  receiver->Close();
}

}  // namespace
}  // namespace bft

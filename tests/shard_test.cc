// Tests for the sharding subsystem: ShardMap partitioning, sharded routing correctness,
// per-shard view changes, shard-isolated fault injection, and determinism.
#include <gtest/gtest.h>

#include <string>

#include "src/service/kv_service.h"
#include "src/shard/sharded_cluster.h"
#include "src/workload/closed_loop.h"

namespace bft {
namespace {

ShardedClusterOptions Options(size_t shards, uint64_t seed) {
  ShardedClusterOptions options;
  options.num_shards = shards;
  options.seed = seed;
  options.config.checkpoint_period = 32;
  options.config.log_size = 64;
  options.config.state_pages = 64;
  return options;
}

ShardServiceFactory KvFactory() {
  return [](size_t, NodeId) { return std::make_unique<KvService>(); };
}

// A key string routed to `shard` under `map`.
Bytes KeyOwnedBy(const ShardMap& map, size_t shard) {
  for (int i = 0; i < 100000; ++i) {
    Bytes key = ToBytes("key-" + std::to_string(i));
    if (map.ShardForKey(key) == shard) {
      return key;
    }
  }
  ADD_FAILURE() << "no key found for shard " << shard;
  return {};
}

// --- ShardMap ------------------------------------------------------------------------------

TEST(ShardMapTest, SingleShardOwnsEverything) {
  ShardMap map(1);
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.version(), 1u);
  EXPECT_EQ(map.ShardForKey(ToBytes("a")), 0u);
  EXPECT_EQ(map.ShardForKey(Bytes{}), 0u);  // empty key
  for (uint32_t b = 0; b < ShardMap::kNumBuckets; ++b) {
    EXPECT_EQ(map.ShardForBucket(b), 0u);
  }
}

TEST(ShardMapTest, RoundRobinDefaultAssignmentIsBalanced) {
  ShardMap map(4);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(map.BucketsOf(s).size(), ShardMap::kNumBuckets / 4);
  }
  // Boundary buckets.
  EXPECT_EQ(map.ShardForBucket(0), 0u);
  EXPECT_EQ(map.ShardForBucket(ShardMap::kNumBuckets - 1), 3u);
}

TEST(ShardMapTest, HashIsStableAndKeysSpreadAcrossShards) {
  // The hash is a pure function of the bytes: same value across map instances.
  ShardMap a(8);
  ShardMap b(8);
  std::vector<size_t> hits(8, 0);
  for (int i = 0; i < 512; ++i) {
    Bytes key = ToBytes("user-" + std::to_string(i));
    EXPECT_EQ(a.ShardForKey(key), b.ShardForKey(key));
    ++hits[a.ShardForKey(key)];
  }
  for (size_t s = 0; s < 8; ++s) {
    EXPECT_GT(hits[s], 0u) << "no keys landed on shard " << s;
  }
}

TEST(ShardMapTest, EmptyKeyRoutesConsistently) {
  ShardMap map(4);
  size_t shard = map.ShardForKey(Bytes{});
  EXPECT_LT(shard, 4u);
  EXPECT_EQ(map.ShardForKey(Bytes{}), shard);
  EXPECT_EQ(map.ShardForKey(ByteView{}), shard);
}

TEST(ShardMapTest, MovingABucketBumpsTheVersion) {
  ShardMap map(2);
  uint32_t bucket = 0;  // owned by shard 0 under round-robin
  ASSERT_EQ(map.ShardForBucket(bucket), 0u);
  ShardMap next = map.WithBucketMoved(bucket, 1);
  EXPECT_EQ(next.version(), map.version() + 1);
  EXPECT_EQ(next.ShardForBucket(bucket), 1u);
  // Only that bucket moved.
  for (uint32_t b = 1; b < ShardMap::kNumBuckets; ++b) {
    EXPECT_EQ(next.ShardForBucket(b), map.ShardForBucket(b));
  }
  // The original map is unchanged (versions are immutable artifacts).
  EXPECT_EQ(map.ShardForBucket(bucket), 0u);
}

// --- Routing correctness -------------------------------------------------------------------

TEST(ShardedClusterTest, RoutesEachKeyToItsOwningGroupAndReadsBack) {
  ShardedCluster cluster(Options(4, 21), KvFactory());
  ShardedClient* client = cluster.AddClient();

  // Writes spread over all four groups.
  for (int i = 0; i < 32; ++i) {
    Bytes key = ToBytes("key-" + std::to_string(i));
    Bytes value = ToBytes("value-" + std::to_string(i));
    auto result = cluster.Execute(client, KvService::PutOp(key, value));
    ASSERT_TRUE(result.has_value()) << "PUT " << i << " timed out";
    EXPECT_EQ(ToString(*result), "ok");
  }
  // Every group ordered at least one request, and only requests for its own keys.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(cluster.replica(s, 0)->stats().requests_executed, 0u)
        << "shard " << s << " ordered nothing";
  }
  // Reads come back with the written values (from the owning group's reply certificate).
  for (int i = 0; i < 32; ++i) {
    Bytes key = ToBytes("key-" + std::to_string(i));
    auto result = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
    ASSERT_TRUE(result.has_value()) << "GET " << i << " timed out";
    EXPECT_EQ(ToString(*result), "value-" + std::to_string(i));
  }
}

TEST(ShardedClusterTest, GroupStateIsDisjoint) {
  ShardedCluster cluster(Options(2, 33), KvFactory());
  ShardedClient* client = cluster.AddClient();
  Bytes key0 = KeyOwnedBy(cluster.shard_map(), 0);
  Bytes key1 = KeyOwnedBy(cluster.shard_map(), 1);
  ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key0, ToBytes("zero"))).has_value());
  ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key1, ToBytes("one"))).has_value());

  // Each key lives only in its owning group's service state.
  auto* kv0 = static_cast<KvService*>(cluster.replica(0, 0)->service());
  auto* kv1 = static_cast<KvService*>(cluster.replica(1, 0)->service());
  EXPECT_EQ(kv0->live_entries(), 1u);
  EXPECT_EQ(kv1->live_entries(), 1u);
}

TEST(ShardedClusterTest, KeylessOpsPinToShardZeroAndAreCounted) {
  ShardedCluster cluster(Options(4, 39), KvFactory());
  ShardedClient* client = cluster.AddClient();

  // An op KvService::KeyOf cannot key (unknown verb): the documented policy routes it to
  // shard 0 and counts it, so a workload meant to be fully keyed can assert the counter.
  Writer w;
  w.Str("NOOP");
  Bytes keyless = w.Take();
  EXPECT_EQ(client->ShardOf(keyless), 0u);

  auto r = cluster.Execute(client, keyless);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(ToString(*r), "invalid");  // shard 0's group executed (and rejected) it
  EXPECT_EQ(client->router_stats().keyless_ops, 1u);
  EXPECT_EQ(client->AggregateStats().keyless_ops, 1u);

  // Keyed ops leave the counter alone.
  ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(ToBytes("k"), ToBytes("v"))).has_value());
  EXPECT_EQ(client->AggregateStats().keyless_ops, 1u);
}

TEST(ShardedClusterTest, TotalRequestsExecutedCountsFirstLiveReplica) {
  ShardedCluster cluster(Options(2, 43), KvFactory());
  ShardedClient* client = cluster.AddClient();
  Bytes key0 = KeyOwnedBy(cluster.shard_map(), 0);

  ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key0, ToBytes("a"))).has_value());
  uint64_t before_crash = cluster.TotalRequestsExecuted();
  ASSERT_GT(before_crash, 0u);

  // Crash shard 0's replica 0 (its view-0 primary). Its stats freeze; the group re-elects
  // and keeps executing — the total must keep counting from a live replica, not the corpse.
  cluster.replica(0, 0)->Crash();
  constexpr uint64_t kMoreOps = 5;
  for (uint64_t i = 0; i < kMoreOps; ++i) {
    auto r = cluster.Execute(client, KvService::PutOp(key0, ToBytes("b" + std::to_string(i))),
                             /*read_only=*/false, 60 * kSecond);
    ASSERT_TRUE(r.has_value()) << "op " << i << " after shard-0 primary crash";
  }
  EXPECT_GE(cluster.TotalRequestsExecuted(), before_crash + kMoreOps);
}

// --- S = 1 degenerates to the single-group system ------------------------------------------

TEST(ShardedClusterTest, SingleShardMatchesClusterBitForBit) {
  constexpr uint64_t kSeed = 91;
  std::vector<Bytes> single_results;
  std::vector<Bytes> sharded_results;

  ClusterOptions cluster_options;
  cluster_options.seed = kSeed;
  cluster_options.config.checkpoint_period = 32;
  cluster_options.config.log_size = 64;
  cluster_options.config.state_pages = 64;
  Cluster single(cluster_options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* single_client = single.AddClient();

  ShardedCluster sharded(Options(1, kSeed), KvFactory());
  ShardedClient* sharded_client = sharded.AddClient();

  for (int i = 0; i < 20; ++i) {
    Bytes op = (i % 3 == 2) ? KvService::GetOp(ToBytes("k" + std::to_string(i / 3)))
                            : KvService::PutOp(ToBytes("k" + std::to_string(i / 3)),
                                               ToBytes("v" + std::to_string(i)));
    bool read_only = (i % 3 == 2);
    auto a = single.Execute(single_client, op, read_only);
    auto b = sharded.Execute(sharded_client, op, read_only);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    single_results.push_back(*a);
    sharded_results.push_back(*b);
  }
  EXPECT_EQ(single_results, sharded_results);

  // Identical event-by-event execution: same simulated clock, same event count, same protocol
  // positions, same service state digest on every replica.
  EXPECT_EQ(single.sim().Now(), sharded.sim().Now());
  EXPECT_EQ(single.sim().executed_events(), sharded.sim().executed_events());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(single.replica(i)->last_executed(), sharded.replica(0, i)->last_executed());
    EXPECT_EQ(single.replica(i)->state().CurrentRootDigest(),
              sharded.replica(0, i)->state().CurrentRootDigest());
  }
}

// --- Per-shard view changes under load -----------------------------------------------------

TEST(ShardedClusterTest, PrimaryCrashTriggersViewChangeOnlyInThatShard) {
  ShardedCluster cluster(Options(2, 47), KvFactory());
  ShardedClient* client = cluster.AddClient();
  Bytes key0 = KeyOwnedBy(cluster.shard_map(), 0);
  Bytes key1 = KeyOwnedBy(cluster.shard_map(), 1);

  // Warm both groups.
  ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key0, ToBytes("a"))).has_value());
  ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key1, ToBytes("b"))).has_value());

  // Crash shard 0's primary. Its group must view-change; shard 1 must not.
  NodeId primary0 = cluster.CurrentPrimary(0);
  cluster.replica(0, cluster.config(0).ReplicaIndex(primary0))->Crash();

  auto result = cluster.Execute(client, KvService::PutOp(key0, ToBytes("after-crash")),
                                /*read_only=*/false, 60 * kSecond);
  ASSERT_TRUE(result.has_value()) << "shard 0 did not recover via view change";
  EXPECT_EQ(ToString(*result), "ok");

  // Shard 0 moved to a new view with a new primary; shard 1 is still in view 0.
  EXPECT_NE(cluster.CurrentPrimary(0), primary0);
  bool shard0_view_changed = false;
  for (int i = 0; i < 4; ++i) {
    if (cluster.replica(0, i)->stats().new_views_entered > 0) {
      shard0_view_changed = true;
    }
    EXPECT_EQ(cluster.replica(1, i)->stats().view_changes_started, 0u)
        << "shard 1 replica " << i << " started a view change";
    EXPECT_EQ(cluster.replica(1, i)->view(), 0u);
  }
  EXPECT_TRUE(shard0_view_changed);

  // Shard 1 still serves its keys normally.
  auto other = cluster.Execute(client, KvService::GetOp(key1), /*read_only=*/true);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(ToString(*other), "b");
}

TEST(ShardedClusterTest, ViewChangeUnderConcurrentLoadOnOtherShards) {
  ShardedCluster cluster(Options(4, 53), KvFactory());
  // Closed-loop load spanning all shards.
  ShardedClosedLoopLoad load(
      &cluster, 8,
      [](size_t c, uint64_t i) {
        return KvService::PutOp(ToBytes("c" + std::to_string(c) + "-" + std::to_string(i % 16)),
                                ToBytes("v"));
      },
      /*read_only=*/false);

  // Let the load ramp up, then crash shard 2's primary mid-flight.
  cluster.sim().Schedule(500 * kMillisecond, [&cluster]() {
    NodeId primary = cluster.CurrentPrimary(2);
    cluster.replica(2, cluster.config(2).ReplicaIndex(primary))->Crash();
  });
  ClosedLoopLoad::Result r = load.Run(/*warmup=*/750 * kMillisecond, /*duration=*/2 * kSecond);

  // The system keeps committing across the crash, and shard 2 re-elects.
  EXPECT_GT(r.ops_completed, 100u);
  bool shard2_recovered = false;
  for (int i = 0; i < 4; ++i) {
    if (cluster.replica(2, i)->stats().new_views_entered > 0) {
      shard2_recovered = true;
    }
  }
  EXPECT_TRUE(shard2_recovered);
}

// --- Shard-isolated faults -----------------------------------------------------------------

TEST(ShardedClusterTest, CrashedGroupDoesNotStallOthers) {
  ShardedCluster cluster(Options(4, 61), KvFactory());
  ShardedClient* client = cluster.AddClient();
  Bytes dead_key = KeyOwnedBy(cluster.shard_map(), 1);

  cluster.CrashShard(1);

  // Every other shard commits normally with small timeouts.
  for (size_t s : {0u, 2u, 3u}) {
    Bytes key = KeyOwnedBy(cluster.shard_map(), s);
    auto result = cluster.Execute(client, KvService::PutOp(key, ToBytes("live")),
                                  /*read_only=*/false, 10 * kSecond);
    ASSERT_TRUE(result.has_value()) << "shard " << s << " stalled by shard 1's crash";
    EXPECT_EQ(ToString(*result), "ok");
  }

  // An op for the dead group times out (on a *fresh* client so no endpoint stays busy).
  ShardedClient* doomed = cluster.AddClient();
  auto dead = cluster.Execute(doomed, KvService::PutOp(dead_key, ToBytes("x")),
                              /*read_only=*/false, 5 * kSecond);
  EXPECT_FALSE(dead.has_value());

  // And the live shards are still fine afterwards.
  Bytes key0 = KeyOwnedBy(cluster.shard_map(), 0);
  auto after = cluster.Execute(client, KvService::GetOp(key0), /*read_only=*/true);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(ToString(*after), "live");
}

// --- Determinism ---------------------------------------------------------------------------

TEST(ShardedClusterTest, FixedSeedGivesIdenticalRuns) {
  auto run = [](uint64_t seed) {
    ShardedCluster cluster(Options(4, seed), KvFactory());
    ShardedClosedLoopLoad load(
        &cluster, 8,
        [](size_t c, uint64_t i) {
          return KvService::PutOp(ToBytes("k" + std::to_string(c) + "-" + std::to_string(i)),
                                  ToBytes("v"));
        },
        false);
    ClosedLoopLoad::Result r = load.Run(250 * kMillisecond, 500 * kMillisecond);
    struct Outcome {
      uint64_t ops;
      uint64_t events;
      SimTime mean_latency;
      uint64_t total_requests;
    };
    return Outcome{r.ops_completed, cluster.sim().executed_events(), r.mean_latency,
                   cluster.TotalRequestsExecuted()};
  };

  auto a = run(77);
  auto b = run(77);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_GT(a.ops, 100u);
}

}  // namespace
}  // namespace bft

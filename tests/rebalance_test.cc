// The load-aware rebalancing subsystem: bucket heat statistics, the pure planner policy,
// batched multi-bucket migrations (single publish, per-bucket rollback), the admin ACL on
// the MIG_*/REB_* control plane, and the end-to-end controller daemon.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/serializer.h"
#include "src/service/kv_service.h"
#include "src/shard/bucket_stats.h"
#include "src/shard/migration.h"
#include "src/shard/rebalance.h"
#include "src/shard/sharded_cluster.h"
#include "src/sim/sim_harness.h"
#include "src/workload/closed_loop.h"

namespace bft {
namespace {

ShardedClusterOptions Options(size_t shards, uint64_t seed) {
  ShardedClusterOptions options;
  options.num_shards = shards;
  options.seed = seed;
  options.config.checkpoint_period = 32;
  options.config.log_size = 64;
  options.config.state_pages = 64;
  return options;
}

ShardServiceFactory KvFactory() {
  return [](size_t, NodeId) { return std::make_unique<KvService>(); };
}

// `count` distinct keys all hashing into `bucket`.
std::vector<Bytes> KeysInBucket(uint32_t bucket, size_t count, const std::string& prefix) {
  std::vector<Bytes> keys;
  for (int i = 0; keys.size() < count && i < 4'000'000; ++i) {
    Bytes key = ToBytes(prefix + std::to_string(i));
    if (KeyRing::BucketForKey(key) == bucket) {
      keys.push_back(std::move(key));
    }
  }
  EXPECT_EQ(keys.size(), count) << "key search exhausted for bucket " << bucket;
  return keys;
}

// --- BucketStatsRegistry -------------------------------------------------------------------

TEST(BucketStatsTest, CountsOpsAndResidentBytesWithEpochDecay) {
  BucketStatsRegistry stats(/*decay=*/0.5);
  stats.RecordKeyedOp(7, 20, +12);
  stats.RecordKeyedOp(7, 20, +8);
  stats.RecordKeyedOp(9, 20, 0);
  EXPECT_EQ(stats.epoch_ops(7), 2u);
  EXPECT_EQ(stats.resident_bytes(7), 20u);
  EXPECT_EQ(stats.lifetime_ops(), 3u);

  BucketStatsRegistry::Snapshot s1 = stats.SnapshotEpoch();
  EXPECT_DOUBLE_EQ(s1.load[7], 2.0);
  EXPECT_DOUBLE_EQ(s1.load[9], 1.0);
  EXPECT_DOUBLE_EQ(s1.total_load, 3.0);
  EXPECT_EQ(s1.resident_bytes[7], 20u);
  EXPECT_EQ(stats.epoch_ops(7), 0u);  // epoch counters reset by the snapshot

  // Idle epoch: load halves; a delete shrinks resident bytes but never below zero.
  stats.RecordKeyedOp(7, 20, -25);
  BucketStatsRegistry::Snapshot s2 = stats.SnapshotEpoch();
  EXPECT_DOUBLE_EQ(s2.load[7], 2.0 * 0.5 + 1.0);
  EXPECT_DOUBLE_EQ(s2.load[9], 0.5);
  EXPECT_EQ(s2.resident_bytes[7], 0u);
  EXPECT_EQ(s2.epoch, 2u);
}

TEST(BucketStatsTest, LoadPerShardFollowsTheMap) {
  BucketStatsRegistry stats;
  stats.RecordKeyedOp(0, 10, 0);  // shard 0 under round-robin at S=2
  stats.RecordKeyedOp(2, 10, 0);  // shard 0
  stats.RecordKeyedOp(3, 10, 0);  // shard 1
  BucketStatsRegistry::Snapshot snap = stats.SnapshotEpoch();
  ShardMap map(2);
  std::vector<double> per_shard = snap.LoadPerShard(map);
  EXPECT_DOUBLE_EQ(per_shard[0], 2.0);
  EXPECT_DOUBLE_EQ(per_shard[1], 1.0);
  // After moving bucket 2, its load follows the new owner.
  std::vector<double> moved = snap.LoadPerShard(map.WithBucketMoved(2, 1));
  EXPECT_DOUBLE_EQ(moved[0], 1.0);
  EXPECT_DOUBLE_EQ(moved[1], 2.0);
}

// The end-to-end feed: executed keyed ops on a sharded cluster land in the shared registry.
TEST(BucketStatsTest, ClusterFeedsRegistryOncePerExecutedOp) {
  ShardedCluster cluster(Options(2, 211), KvFactory());
  ShardedClient* client = cluster.AddClient();
  Bytes key = ToBytes("stat-key");
  uint32_t bucket = KeyRing::BucketForKey(key);
  for (int i = 0; i < 5; ++i) {
    auto r = cluster.Execute(client, KvService::PutOp(key, ToBytes("v")));
    ASSERT_TRUE(r.has_value());
  }
  auto g = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(cluster.bucket_stats().epoch_ops(bucket), 6u);
  // Resident bytes approximate the stored entry: key + value, not re-added on overwrite.
  EXPECT_EQ(cluster.bucket_stats().resident_bytes(bucket), key.size() + 1);
}

// --- RebalancePlanner ----------------------------------------------------------------------

// Builds a snapshot with the given (bucket, load) pairs.
BucketStatsRegistry::Snapshot MakeSnapshot(
    const std::vector<std::pair<uint32_t, double>>& loads) {
  BucketStatsRegistry::Snapshot snap;
  snap.load.assign(KeyRing::kNumBuckets, 0.0);
  snap.resident_bytes.assign(KeyRing::kNumBuckets, 0);
  for (const auto& [bucket, load] : loads) {
    snap.load[bucket] = load;
    snap.total_load += load;
  }
  return snap;
}

TEST(RebalancePlannerTest, BalancedLoadPlansNothing) {
  RebalancePlanner planner(RebalancePolicy{});
  ShardMap map(4);
  // Buckets 0..3 round-robin to shards 0..3: perfectly balanced.
  auto snap = MakeSnapshot({{0, 100}, {1, 100}, {2, 100}, {3, 100}});
  EXPECT_TRUE(planner.Plan(snap, map).empty());
  // No load at all: nothing to plan.
  EXPECT_TRUE(planner.Plan(MakeSnapshot({}), map).empty());
  // Single shard: nowhere to move.
  EXPECT_TRUE(planner.Plan(MakeSnapshot({{0, 100}}), ShardMap(1)).empty());
}

TEST(RebalancePlannerTest, MovesHottestBucketsFromHottestToCoolestShard) {
  RebalancePolicy policy;
  policy.imbalance_threshold = 1.25;
  policy.max_moves_per_round = 8;
  policy.min_bucket_load = 1.0;
  RebalancePlanner planner(policy);
  ShardMap map(4);
  // Shard 0 owns buckets 0,4,8,12 (round-robin): loads 50+40+30+20 = 140.
  // Shards 1..3 own one warm bucket each: 20, 10, 5 -> shard 3 is coolest.
  auto snap = MakeSnapshot(
      {{0, 50}, {4, 40}, {8, 30}, {12, 20}, {1, 20}, {2, 10}, {3, 5}});
  RebalancePlan plan = planner.Plan(snap, map);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.source, 0u);
  EXPECT_EQ(plan.dest, 3u);
  // Hottest-first, stopping before overshoot: moving 50 leaves src 90 >= dst 55; moving 40
  // more leaves src 50 < dst 95, so 40 is skipped; 30 leaves src 60 >= dst 85? No: 90-30=60,
  // 55+30=85 -> overshoot, skipped; 20 -> 70 vs 75 -> overshoot, skipped.
  EXPECT_EQ(plan.buckets, (std::vector<uint32_t>{0}));
}

TEST(RebalancePlannerTest, RespectsMaxMovesAndMinBucketLoad) {
  RebalancePolicy policy;
  policy.imbalance_threshold = 1.0;  // always plan when imbalanced
  policy.max_moves_per_round = 2;
  policy.min_bucket_load = 3.0;
  RebalancePlanner planner(policy);
  ShardMap map(2);
  // Shard 0: five equal warm buckets plus one cold one; shard 1 idle. Three moves would
  // pass the overshoot guard (20>=4, 16>=8, 12>=12) — the round cap stops at two, and the
  // cold bucket never qualifies.
  auto snap = MakeSnapshot({{0, 4}, {2, 4}, {4, 4}, {6, 4}, {8, 4}, {10, 1}});
  RebalancePlan plan = planner.Plan(snap, map);
  ASSERT_FALSE(plan.empty());
  ASSERT_EQ(plan.buckets.size(), 2u);
  EXPECT_EQ(plan.buckets[0], 0u);  // equal loads: bucket index breaks ties
  EXPECT_EQ(plan.buckets[1], 2u);
}

TEST(RebalancePlannerTest, OvershootGuardSkipsBucketsThatWouldFlipTheImbalance) {
  RebalancePolicy policy;
  policy.imbalance_threshold = 1.0;
  policy.max_moves_per_round = 8;
  RebalancePlanner planner(policy);
  ShardMap map(2);
  // Moving the 10 leaves 18 vs 10; the 9 and the 8 would push the destination above the
  // source, so both are skipped even though the round cap has room — but the cold 1-load
  // bucket still fits (17 vs 11), showing the guard is per-bucket, not a hard stop.
  auto snap = MakeSnapshot({{0, 10}, {2, 9}, {4, 8}, {6, 1}});
  RebalancePlan plan = planner.Plan(snap, map);
  EXPECT_EQ(plan.buckets, (std::vector<uint32_t>{0, 6}));
}

TEST(RebalancePlannerTest, DeterministicIncludingTies) {
  RebalancePolicy policy;
  policy.imbalance_threshold = 1.0;
  RebalancePlanner planner(policy);
  ShardMap map(4);
  // Equal-load buckets force tie-breaks on both the shard pick and the bucket order.
  auto snap = MakeSnapshot({{0, 10}, {4, 10}, {8, 10}, {1, 5}, {2, 5}, {3, 5}});
  RebalancePlan a = planner.Plan(snap, map);
  RebalancePlan b = planner.Plan(snap, map);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.dest, b.dest);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.source, 0u);  // ties break toward the lower shard index
  EXPECT_EQ(a.dest, 1u);
  EXPECT_EQ(a.buckets[0], 0u);  // and the lower bucket index
}

// --- Admin ACL on the MIG_*/REB_* control plane --------------------------------------------

TEST(AdminAclTest, NonAdminClientsAreDeniedMigrationAndStatsOps) {
  ShardedCluster cluster(Options(2, 223), KvFactory());
  ShardedClient* client = cluster.AddClient();

  // MIG_SEAL from a regular client: ordered, answered with the clean denial, NOT executed —
  // the bucket still serves afterwards.
  Bytes key = KeysInBucket(0, 1, "acl-")[0];
  auto seal = cluster.op_builder()->SealBucketOp(0);
  ASSERT_TRUE(seal.has_value());
  auto denied = cluster.Execute(client, *seal);
  ASSERT_TRUE(denied.has_value());
  EXPECT_TRUE(Service::IsAccessDeniedResult(*denied)) << ToString(*denied);

  auto put = cluster.Execute(client, KvService::PutOp(key, ToBytes("still-served")));
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(ToString(*put), "ok");

  // REB_STATS is admin too.
  auto stats_denied = cluster.Execute(client, KvService::BucketStatsOp(0));
  ASSERT_TRUE(stats_denied.has_value());
  EXPECT_TRUE(Service::IsAccessDeniedResult(*stats_denied));

  // The same ops from an admin identity execute: the seal takes effect and the stats query
  // reports the replicated per-bucket size.
  ShardedClient* admin = cluster.AddAdminClient();
  uint32_t key_bucket = KeyRing::BucketForKey(key);
  auto stats = cluster.Execute(admin, KvService::BucketStatsOp(key_bucket));
  ASSERT_TRUE(stats.has_value());
  Reader r(*stats);
  EXPECT_EQ(r.U32(), 1u);
  EXPECT_EQ(r.U64(), key.size() + std::string("still-served").size());

  auto sealed = cluster.Execute(admin, *seal);
  ASSERT_TRUE(sealed.has_value());
  EXPECT_EQ(ToString(*sealed), "ok");
}

// --- Batched multi-bucket moves ------------------------------------------------------------

TEST(BatchMoveTest, BatchOfThreeBucketsPublishesExactlyOnce) {
  ShardedCluster cluster(Options(2, 227), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  // Three shard-0 buckets with distinct key sets.
  std::vector<uint32_t> buckets = {0, 2, 4};
  std::vector<std::pair<Bytes, std::string>> resident;
  for (uint32_t b : buckets) {
    for (const Bytes& key : KeysInBucket(b, 4, "b" + std::to_string(b) + "-")) {
      std::string value = "v" + std::to_string(b) + "-" + ToString(key);
      ASSERT_EQ(
          ToString(*cluster.Execute(client, KvService::PutOp(key, ToBytes(value)))), "ok");
      resident.emplace_back(key, value);
    }
  }

  // Count version changes through the subscription seam (Publish also fires listeners on
  // unfreeze, so track versions, not notifications).
  uint64_t publishes = 0;
  uint64_t last_version = cluster.registry().version();
  cluster.registry().Subscribe([&]() {
    if (cluster.registry().version() != last_version) {
      last_version = cluster.registry().version();
      ++publishes;
    }
  });

  BatchMoveReport report = coordinator.MoveBuckets(buckets, /*dest_shard=*/1);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_FALSE(report.no_op);
  EXPECT_EQ(report.moved, buckets);
  EXPECT_TRUE(report.rolled_back.empty());
  EXPECT_EQ(report.keys_moved, resident.size());
  // THE amortization claim: N buckets, one map publish, one version bump.
  EXPECT_EQ(report.publishes, 1u);
  EXPECT_EQ(publishes, 1u);
  EXPECT_EQ(report.map_version_after, report.map_version_before + 1);
  EXPECT_GT(report.freeze_window(), 0u);

  // Every bucket now routes to and is served by the destination with pre-move values; the
  // source purged all three.
  for (uint32_t b : buckets) {
    EXPECT_EQ(cluster.shard_map().ShardForBucket(b), 1u);
    EXPECT_TRUE(cluster.replica(0, 0)->service()->EnumerateBucket(b).empty());
  }
  for (const auto& [key, value] : resident) {
    auto r = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(ToString(*r), value);
  }
}

TEST(BatchMoveTest, DuplicatesAndAlreadyOwnedBucketsAreSkipped) {
  ShardedCluster cluster(Options(2, 229), KvFactory());
  MigrationCoordinator coordinator(&cluster);
  // Bucket 1 already belongs to shard 1; bucket 0 is listed twice.
  std::vector<uint32_t> buckets = {0, 1, 0};
  BatchMoveReport report = coordinator.MoveBuckets(buckets, /*dest_shard=*/1);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.requested, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(report.skipped, (std::vector<uint32_t>{1}));
  EXPECT_EQ(report.moved, (std::vector<uint32_t>{0}));
  EXPECT_EQ(report.publishes, 1u);
}

// A batch that is entirely a no-op issues nothing: byte-identical to no call at all.
struct RunOutcome {
  std::vector<std::string> results;
  uint64_t events;
  SimTime now;
  Digest root_digest;

  bool operator==(const RunOutcome& other) const {
    return results == other.results && events == other.events && now == other.now &&
           root_digest == other.root_digest;
  }
};

RunOutcome RunSingleShard(bool noop_batch, uint64_t seed) {
  ShardedCluster cluster(Options(1, seed), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);
  RunOutcome out;
  for (int i = 0; i < 10; ++i) {
    auto r = cluster.Execute(client,
                             KvService::PutOp(ToBytes("k" + std::to_string(i)), ToBytes("v")));
    EXPECT_TRUE(r.has_value());
    out.results.push_back(r.has_value() ? ToString(*r) : "<timeout>");
    if (noop_batch && i == 4) {
      // Every bucket already lives at shard 0: the batch must detect the no-op and issue
      // nothing — no ops, no freeze, no simulator events, not even a deadline timer.
      std::vector<uint32_t> buckets = {3, 7, 11};
      BatchMoveReport report =
          coordinator.MoveBuckets(buckets, /*dest_shard=*/0, /*timeout=*/kSecond,
                                  /*deadline=*/5 * kSecond);
      EXPECT_TRUE(report.ok);
      EXPECT_TRUE(report.no_op);
      EXPECT_EQ(report.publishes, 0u);
      EXPECT_EQ(report.skipped.size(), 3u);
    }
  }
  out.events = cluster.sim().executed_events();
  out.now = cluster.sim().Now();
  out.root_digest = cluster.replica(0, 0)->state().CurrentRootDigest();
  return out;
}

TEST(BatchMoveTest, NoOpBatchIsByteIdenticalToNoBatch) {
  RunOutcome with = RunSingleShard(/*noop_batch=*/true, 233);
  RunOutcome without = RunSingleShard(/*noop_batch=*/false, 233);
  EXPECT_TRUE(with == without);
}

// Mid-batch service-level failure: the destination fills up partway through the batch. The
// finished buckets still publish (one publish); the unfinished buckets roll back to their
// source — partial imports purged, destination re-sealed, source un-sealed — and keep
// serving there.
TEST(BatchMoveTest, MidBatchFailureRollsBackOnlyUnfinishedBuckets) {
  ShardedClusterOptions options = Options(2, 239);
  // Destination capacity: state = 64 pages * 4096B, minus the 512B moved bitmap, / 256B
  // slots. Shrink to 2 pages -> (8192-512)/256 = 30 slots. The first bucket (8 keys) fits;
  // the second one's imports hit "full" once the destination's own resident keys + bucket
  // one + part of bucket two exhaust the table.
  options.config.state_pages = 2;
  ShardedCluster cluster(options, KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  // Fill the destination with enough of its own keys that two 8-key buckets cannot both fit.
  size_t dest_resident = 0;
  for (int i = 0; dest_resident < 18 && i < 4'000'000; ++i) {
    Bytes key = ToBytes("dst-" + std::to_string(i));
    if (cluster.shard_map().ShardForKey(key) != 1) {
      continue;
    }
    ASSERT_EQ(ToString(*cluster.Execute(client, KvService::PutOp(key, ToBytes("d")))), "ok");
    ++dest_resident;
  }

  std::vector<uint32_t> buckets = {0, 2, 4};
  std::vector<std::vector<Bytes>> keys_of(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    keys_of[i] = KeysInBucket(buckets[i], 8, "mb" + std::to_string(buckets[i]) + "-");
    for (const Bytes& key : keys_of[i]) {
      ASSERT_EQ(ToString(*cluster.Execute(
                    client, KvService::PutOp(key, ToBytes("keep-" + ToString(key))))),
                "ok");
    }
  }

  BatchMoveReport report = coordinator.MoveBuckets(buckets, /*dest_shard=*/1);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("import rejected"), std::string::npos) << report.error;
  // Bucket 0 finished and published; at least the last bucket rolled back.
  ASSERT_FALSE(report.moved.empty());
  ASSERT_FALSE(report.rolled_back.empty());
  EXPECT_EQ(report.moved.size() + report.rolled_back.size(), buckets.size());
  EXPECT_EQ(report.moved[0], 0u);
  EXPECT_EQ(report.publishes, 1u);
  EXPECT_EQ(report.map_version_after, report.map_version_before + 1);

  // Nothing is frozen, the coordinator is idle, and every key reads back with its value —
  // moved buckets served by the destination, rolled-back buckets by the source.
  EXPECT_FALSE(coordinator.active());
  for (uint32_t b : buckets) {
    EXPECT_FALSE(cluster.registry().IsFrozen(b));
  }
  for (size_t i = 0; i < buckets.size(); ++i) {
    bool moved = false;
    for (uint32_t b : report.moved) {
      moved |= b == buckets[i];
    }
    EXPECT_EQ(cluster.shard_map().ShardForBucket(buckets[i]), moved ? 1u : 0u);
    for (const Bytes& key : keys_of[i]) {
      auto r = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(ToString(*r), "keep-" + ToString(key)) << "bucket " << buckets[i];
    }
    // Rolled-back buckets left no stray copies on the destination.
    if (!moved) {
      EXPECT_TRUE(cluster.replica(1, 0)->service()->EnumerateBucket(buckets[i]).empty());
    }
  }
}

// A batch that publishes must never be aborted afterwards: the deadline disarms at the
// publish (the point of no return), so a deadline landing inside the purge phase cannot
// "roll back" buckets whose clients already cut over.
TEST(BatchMoveTest, DeadlineDuringPurgePhaseDoesNotAbortAPublishedBatch) {
  // Run once without a deadline to learn the batch's publish/completion times, then rerun
  // the identical construction with a deadline between the two. Determinism makes the
  // second run's timing match the first up to the publish, where the deadline must disarm.
  auto run = [](std::optional<SimTime> deadline) {
    ShardedCluster cluster(Options(2, 257), KvFactory());
    ShardedClient* client = cluster.AddClient();
    MigrationCoordinator coordinator(&cluster);
    std::vector<uint32_t> buckets = {0, 2};
    for (uint32_t b : buckets) {
      for (const Bytes& key : KeysInBucket(b, 6, "pg" + std::to_string(b) + "-")) {
        EXPECT_EQ(ToString(*cluster.Execute(client, KvService::PutOp(key, ToBytes("v")))),
                  "ok");
      }
    }
    return coordinator.MoveBuckets(buckets, /*dest_shard=*/1, /*timeout=*/60 * kSecond,
                                   deadline.value_or(0));
  };
  BatchMoveReport probe = run(std::nullopt);
  ASSERT_TRUE(probe.ok) << probe.error;
  ASSERT_GT(probe.completed_time, probe.publish_time);  // the purge phase has real extent

  // The deadline is relative to the batch start (the StartMoveBuckets call at freeze time):
  // aim at the middle of the probe run's purge phase.
  SimTime mid_purge = (probe.publish_time + probe.completed_time) / 2;
  BatchMoveReport gated = run(mid_purge - probe.freeze_start);
  EXPECT_TRUE(gated.ok) << gated.error;
  EXPECT_EQ(gated.moved.size(), 2u);
  EXPECT_TRUE(gated.rolled_back.empty());
  EXPECT_EQ(gated.publishes, 1u);
}

// Mid-batch destination-group crash: the batch deadline fires, nothing publishes, and every
// bucket — including any already imported into the now-dead group — rolls back to the
// source, which keeps serving. The key space is never wedged behind a permanent freeze.
TEST(BatchMoveTest, DestinationCrashMidBatchRollsBackAtTheSource) {
  ShardedCluster cluster(Options(2, 241), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  std::vector<uint32_t> buckets = {0, 2};
  std::vector<Bytes> keys;
  for (uint32_t b : buckets) {
    for (const Bytes& key : KeysInBucket(b, 6, "cr" + std::to_string(b) + "-")) {
      ASSERT_EQ(ToString(*cluster.Execute(client, KvService::PutOp(key, ToBytes("safe")))),
                "ok");
      keys.push_back(key);
    }
  }
  uint64_t version_before = cluster.registry().version();

  // Crash the whole destination group the instant the batch starts (its first seal is
  // already in flight at the source): the source-side chain completes, every
  // destination-side op hangs forever, and only the deadline can resolve the batch.
  std::shared_ptr<std::optional<BatchMoveReport>> report =
      std::make_shared<std::optional<BatchMoveReport>>();
  coordinator.StartMoveBuckets(buckets, /*dest_shard=*/1,
                               [report](const BatchMoveReport& r) { *report = r; },
                               /*deadline=*/5 * kSecond);
  ASSERT_TRUE(coordinator.active());
  cluster.CrashShard(1);
  cluster.sim().RunUntilCondition([&]() { return report->has_value(); },
                                  cluster.sim().Now() + 60 * kSecond);
  ASSERT_TRUE(report->has_value());

  EXPECT_FALSE((*report)->ok);
  EXPECT_NE((*report)->error.find("deadline"), std::string::npos) << (*report)->error;
  EXPECT_TRUE((*report)->moved.empty());
  EXPECT_EQ((*report)->publishes, 0u);
  EXPECT_EQ((*report)->rolled_back.size(), buckets.size());
  EXPECT_EQ(cluster.registry().version(), version_before);
  EXPECT_FALSE(coordinator.active());
  for (uint32_t b : buckets) {
    EXPECT_FALSE(cluster.registry().IsFrozen(b));
    EXPECT_EQ(cluster.shard_map().ShardForBucket(b), 0u);
  }
  // The un-sealed source serves every key again.
  for (const Bytes& key : keys) {
    auto r = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(ToString(*r), "safe");
  }
}

// The destination dies while the *rollback* of a failed batch is mid-flight on the
// destination side (purging partial imports): the deadline orphans the hung cleanup chain
// and re-drives the rollback source-side, so the freezes still lift and the source serves
// every bucket — the key space is never wedged by a dead destination, even during rollback.
TEST(BatchMoveTest, DestinationCrashDuringRollbackStillLiftsFreezes) {
  // Identical construction to MidBatchFailureRollsBackOnlyUnfinishedBuckets (same seed):
  // the import failure lands at ~10.99ms and the rollback's destination-side purge is in
  // flight just after. The crash time below hits that window; if future changes shift the
  // timing, the crash lands elsewhere in the batch and this degrades into a plain
  // deadline-abort test — the assertions hold on both paths.
  ShardedClusterOptions options = Options(2, 239);
  options.config.state_pages = 2;
  ShardedCluster cluster(options, KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  size_t dest_resident = 0;
  for (int i = 0; dest_resident < 18 && i < 4'000'000; ++i) {
    Bytes key = ToBytes("dst-" + std::to_string(i));
    if (cluster.shard_map().ShardForKey(key) != 1) {
      continue;
    }
    ASSERT_EQ(ToString(*cluster.Execute(client, KvService::PutOp(key, ToBytes("d")))), "ok");
    ++dest_resident;
  }
  std::vector<uint32_t> buckets = {0, 2, 4};
  std::vector<Bytes> keys;
  for (uint32_t b : buckets) {
    for (const Bytes& key : KeysInBucket(b, 8, "mb" + std::to_string(b) + "-")) {
      ASSERT_EQ(ToString(*cluster.Execute(
                    client, KvService::PutOp(key, ToBytes("keep-" + ToString(key))))),
                "ok");
      keys.push_back(key);
    }
  }

  uint64_t version_before = cluster.registry().version();
  std::shared_ptr<std::optional<BatchMoveReport>> report =
      std::make_shared<std::optional<BatchMoveReport>>();
  coordinator.StartMoveBuckets(buckets, /*dest_shard=*/1,
                               [report](const BatchMoveReport& r) { *report = r; },
                               /*deadline=*/100 * kMillisecond);
  cluster.sim().ScheduleAt(11 * kMillisecond, [&cluster]() { cluster.CrashShard(1); });
  cluster.sim().RunUntilCondition([&]() { return report->has_value(); },
                                  cluster.sim().Now() + 60 * kSecond);
  ASSERT_TRUE(report->has_value());

  EXPECT_FALSE((*report)->ok);
  EXPECT_EQ((*report)->publishes, 0u);
  EXPECT_TRUE((*report)->moved.empty());
  EXPECT_EQ((*report)->rolled_back.size(), buckets.size());
  EXPECT_EQ(cluster.registry().version(), version_before);
  EXPECT_FALSE(coordinator.active());
  for (uint32_t b : buckets) {
    EXPECT_FALSE(cluster.registry().IsFrozen(b));
    EXPECT_EQ(cluster.shard_map().ShardForBucket(b), 0u);
  }
  for (const Bytes& key : keys) {
    auto r = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(ToString(*r), "keep-" + ToString(key));
  }
}

// An orphaned import left at a destination by an aborted move (the deadline path skips
// destination cleanup when the group looks dead — it may only have been slow) must not
// resurrect a deleted key when the bucket later migrates there for real: MIG_ACCEPT purges
// stale local entries before the fresh import set lands.
TEST(BatchMoveTest, AcceptPurgesOrphanedImportsSoDeletedKeysStayDeleted) {
  ShardedCluster cluster(Options(2, 263), KvFactory());
  ShardedClient* client = cluster.AddClient();
  ShardedClient* admin = cluster.AddAdminClient();
  MigrationCoordinator coordinator(&cluster);

  std::vector<Bytes> keys = KeysInBucket(0, 2, "or-");  // bucket 0, owned by shard 0
  ASSERT_EQ(ToString(*cluster.Execute(client, KvService::PutOp(keys[0], ToBytes("live")))),
            "ok");

  // Simulate the aborted-move leftover: keys[1] sits imported at the destination while the
  // source (which owns the bucket) no longer has it — the client then deletes... nothing,
  // it was never at the owner; the orphan alone must not resurface.
  auto orphan = cluster.op_builder()->ImportEntryOp(keys[1], ToBytes("stale-ghost"));
  ASSERT_TRUE(orphan.has_value());
  auto planted = sim_harness::Execute(cluster.sim(), admin->endpoint(1), *orphan,
                                      /*read_only=*/false, 30 * kSecond);
  ASSERT_TRUE(planted.has_value());
  ASSERT_EQ(ToString(*planted), "ok");

  // The real move: accept at the destination must purge the ghost before importing.
  std::vector<uint32_t> buckets = {0};
  BatchMoveReport report = coordinator.MoveBuckets(buckets, /*dest_shard=*/1);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.keys_moved, 1u);  // only the live key was at the owner

  auto live = cluster.Execute(client, KvService::GetOp(keys[0]), /*read_only=*/true);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(ToString(*live), "live");
  // The ghost is gone: served by the new owner as a miss, not the stale value.
  auto ghost = cluster.Execute(client, KvService::GetOp(keys[1]), /*read_only=*/true);
  ASSERT_TRUE(ghost.has_value());
  EXPECT_TRUE(ghost->empty()) << ToString(*ghost);
}

// --- End-to-end: the controller moves load off a hot group under skewed traffic -----------

TEST(RebalanceControllerTest, SkewedLoadTriggersMovesAndDataSurvives) {
  ShardedCluster cluster(Options(2, 251), KvFactory());
  // Trace the control plane too: every executed round should retire a rebalance timeline.
  // (A high request rate keeps per-request tracing out of the way; admin ops bypass it.)
  cluster.tracer().set_sample_every(1 << 20);

  RebalanceControllerOptions options;
  options.interval = 100 * kMillisecond;
  options.policy.imbalance_threshold = 1.1;
  options.policy.max_moves_per_round = 4;
  options.policy.min_bucket_load = 2.0;
  RebalanceController controller(&cluster, options);
  controller.Start();

  // All traffic hammers shard 0's buckets (every hot key routes there initially): a
  // maximally imbalanced workload the controller must spread.
  std::vector<Bytes> hot;
  for (uint32_t b : {0u, 2u, 4u, 6u}) {
    for (const Bytes& key : KeysInBucket(b, 2, "hot" + std::to_string(b) + "-")) {
      hot.push_back(key);
    }
  }
  ShardedClosedLoopLoad load(
      &cluster, 8,
      [&hot](size_t c, uint64_t i) {
        return KvService::PutOp(hot[(c + i) % hot.size()], ToBytes("h" + std::to_string(i)));
      },
      /*read_only=*/false);
  ClosedLoopResult result = load.Run(/*warmup=*/300 * kMillisecond, /*duration=*/kSecond);
  controller.Stop();

  EXPECT_GT(result.ops_completed, 0u);
  const RebalanceController::Stats& stats = controller.stats();
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.plans_executed, 0u);
  EXPECT_GT(stats.buckets_moved, 0u);
  EXPECT_EQ(stats.batches_failed, 0u);
  // Some buckets now live on shard 1 and both groups carry load.
  size_t moved_buckets = 0;
  for (uint32_t b : {0u, 2u, 4u, 6u}) {
    moved_buckets += cluster.shard_map().ShardForBucket(b) == 1 ? 1 : 0;
  }
  EXPECT_GT(moved_buckets, 0u);
  // Every executed plan traced one snapshot → plan → dispatch → complete round, and the
  // batch moves it dispatched traced their own migration timelines underneath.
  size_t rounds_traced = 0;
  size_t moves_traced = 0;
  for (const TraceTimeline& tl : cluster.tracer().Completed()) {
    if (tl.kind == TraceKind::kRebalance) {
      ++rounds_traced;
      EXPECT_TRUE(tl.complete());
      EXPECT_TRUE(tl.monotonic());
    } else if (tl.kind == TraceKind::kMigration) {
      ++moves_traced;
    }
  }
  // A final batch may still be in flight when the load ends, so completed round timelines
  // can trail plans_executed by one — but never exceed it, and never drop to zero here.
  EXPECT_GE(rounds_traced, 1u);
  EXPECT_LE(rounds_traced, stats.plans_executed);
  EXPECT_GE(rounds_traced + 1, stats.plans_executed);
  EXPECT_GE(moves_traced, rounds_traced) << "a round completes only after its batch move";
  // Every hot key still readable with a value written by the load (no key lost in flight).
  ShardedClient* reader = cluster.AddClient();
  for (const Bytes& key : hot) {
    auto r = cluster.Execute(reader, KvService::GetOp(key), /*read_only=*/true);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->empty()) << ToString(key);
  }
}

// Same seed, same script: the controller's decisions are a pure function of the run.
TEST(RebalanceControllerTest, ControllerRunsAreDeterministic) {
  auto run = [](uint64_t seed) {
    ShardedCluster cluster(Options(2, seed), KvFactory());
    RebalanceControllerOptions options;
    options.interval = 100 * kMillisecond;
    options.policy.imbalance_threshold = 1.1;
    options.policy.min_bucket_load = 2.0;
    RebalanceController controller(&cluster, options);
    controller.Start();
    std::vector<Bytes> hot = KeysInBucket(0, 4, "det-");
    ShardedClosedLoopLoad load(
        &cluster, 4,
        [&hot](size_t c, uint64_t i) {
          return KvService::PutOp(hot[(c + i) % hot.size()], ToBytes("x"));
        },
        /*read_only=*/false);
    ClosedLoopResult result = load.Run(200 * kMillisecond, 600 * kMillisecond);
    controller.Stop();
    return std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>(
        result.ops_completed, controller.stats().buckets_moved,
        controller.stats().plans_executed, cluster.registry().version());
  };
  EXPECT_EQ(run(777), run(777));
}

}  // namespace
}  // namespace bft

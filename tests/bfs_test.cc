// BFS tests: file-system semantics against a bare service instance, plus replicated
// integration through the BFT library.
#include <gtest/gtest.h>

#include "src/bfs/bfs_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

// --- Bare-service harness -------------------------------------------------------------------

struct BareBfs {
  BareBfs() {
    config.state_pages = 256;
    config.page_size = 1024;
    config.partition_branching = 16;
    state = std::make_unique<ReplicaState>(&config, &model);
    fs.Initialize(state.get());
    state->Baseline({});
  }

  Bytes Run(Bytes op, uint64_t mtime = 1) {
    Writer nd;
    nd.U64(mtime);
    return fs.Execute(kClientIdBase, op, nd.data(), fs.IsReadOnly(op));
  }

  uint32_t MustCreate(uint32_t dir, std::string_view name) {
    auto attr = BfsService::DecodeAttr(Run(BfsService::CreateOp(dir, name)));
    EXPECT_TRUE(attr.has_value());
    return attr->ino;
  }
  uint32_t MustMkdir(uint32_t dir, std::string_view name) {
    auto attr = BfsService::DecodeAttr(Run(BfsService::MkdirOp(dir, name)));
    EXPECT_TRUE(attr.has_value());
    return attr->ino;
  }

  ReplicaConfig config;
  PerfModel model;
  std::unique_ptr<ReplicaState> state;
  BfsService fs;
};

TEST(BfsTest, CreateLookupGetattr) {
  BareBfs fs;
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "file.txt");
  EXPECT_NE(ino, BfsService::kRootIno);

  auto attr = BfsService::DecodeAttr(fs.Run(BfsService::LookupOp(BfsService::kRootIno,
                                                                 "file.txt")));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->ino, ino);
  EXPECT_EQ(attr->type, 1);
  EXPECT_EQ(attr->size, 0u);

  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::LookupOp(BfsService::kRootIno, "nope"))),
            BfsStatus::kNoEnt);
}

TEST(BfsTest, DuplicateCreateFails) {
  BareBfs fs;
  fs.MustCreate(BfsService::kRootIno, "f");
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::CreateOp(BfsService::kRootIno, "f"))),
            BfsStatus::kExist);
}

TEST(BfsTest, WriteReadRoundTrip) {
  BareBfs fs;
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "data");
  Bytes payload = ToBytes("The quick brown fox jumps over the lazy dog");
  auto attr = BfsService::DecodeAttr(fs.Run(BfsService::WriteOp(ino, 0, payload)));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->size, payload.size());

  Bytes back = BfsService::DecodeData(
      fs.Run(BfsService::ReadOp(ino, 0, static_cast<uint32_t>(payload.size()))));
  EXPECT_EQ(back, payload);
}

TEST(BfsTest, WriteAtOffsetAndAcrossBlocks) {
  BareBfs fs;
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "big");
  // Write spanning three 1 KB blocks at a non-aligned offset.
  Rng rng(17);
  Bytes payload = rng.RandomBytes(3000);
  ASSERT_TRUE(BfsService::DecodeAttr(fs.Run(BfsService::WriteOp(ino, 500, payload))));
  Bytes back = BfsService::DecodeData(fs.Run(BfsService::ReadOp(ino, 500, 3000)));
  EXPECT_EQ(back, payload);
  // The hole before offset 500 reads as zeros.
  Bytes hole = BfsService::DecodeData(fs.Run(BfsService::ReadOp(ino, 0, 500)));
  EXPECT_EQ(hole, Bytes(500, 0));
}

TEST(BfsTest, MaxFileSizeEnforced) {
  BareBfs fs;
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "huge");
  Bytes chunk(100, 1);
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::WriteOp(
                ino, static_cast<uint32_t>(BfsService::kMaxFileSize) - 50, chunk))),
            BfsStatus::kFBig);
}

TEST(BfsTest, TruncateFreesBlocks) {
  BareBfs fs;
  uint32_t free_before = fs.fs.free_blocks();
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "t");
  Bytes payload(5000, 2);
  ASSERT_TRUE(BfsService::DecodeAttr(fs.Run(BfsService::WriteOp(ino, 0, payload))));
  EXPECT_LT(fs.fs.free_blocks(), free_before);
  ASSERT_TRUE(BfsService::DecodeAttr(fs.Run(BfsService::SetAttrOp(ino, 0))));
  // Root directory still holds one block; all file blocks must be back.
  EXPECT_EQ(fs.fs.free_blocks(), free_before - 1);
}

TEST(BfsTest, MkdirNestingAndReaddir) {
  BareBfs fs;
  uint32_t d1 = fs.MustMkdir(BfsService::kRootIno, "a");
  uint32_t d2 = fs.MustMkdir(d1, "b");
  fs.MustCreate(d2, "deep.txt");

  auto entries = BfsService::DecodeDir(fs.Run(BfsService::ReaddirOp(d2)));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, "deep.txt");

  auto root_entries = BfsService::DecodeDir(fs.Run(BfsService::ReaddirOp(BfsService::kRootIno)));
  ASSERT_EQ(root_entries.size(), 1u);
  EXPECT_EQ(root_entries[0].second, d1);
}

TEST(BfsTest, RemoveAndRmdirSemantics) {
  BareBfs fs;
  uint32_t dir = fs.MustMkdir(BfsService::kRootIno, "d");
  fs.MustCreate(dir, "f");

  // rmdir on a non-empty directory fails.
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RmdirOp(BfsService::kRootIno, "d"))),
            BfsStatus::kNotEmpty);
  // remove on a directory fails.
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RemoveOp(BfsService::kRootIno, "d"))),
            BfsStatus::kIsDir);
  // Remove the file, then the directory.
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RemoveOp(dir, "f"))), BfsStatus::kOk);
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RmdirOp(BfsService::kRootIno, "d"))),
            BfsStatus::kOk);
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::LookupOp(BfsService::kRootIno, "d"))),
            BfsStatus::kNoEnt);
}

TEST(BfsTest, RemoveFreesInodeForReuse) {
  BareBfs fs;
  uint32_t ino1 = fs.MustCreate(BfsService::kRootIno, "x");
  ASSERT_EQ(BfsService::StatusOf(fs.Run(BfsService::RemoveOp(BfsService::kRootIno, "x"))),
            BfsStatus::kOk);
  uint32_t ino2 = fs.MustCreate(BfsService::kRootIno, "y");
  EXPECT_EQ(ino1, ino2);  // deterministic inode reuse (lowest free index)
}

TEST(BfsTest, RenameMovesBetweenDirectories) {
  BareBfs fs;
  uint32_t d1 = fs.MustMkdir(BfsService::kRootIno, "src");
  uint32_t d2 = fs.MustMkdir(BfsService::kRootIno, "dst");
  uint32_t ino = fs.MustCreate(d1, "f");
  ASSERT_TRUE(BfsService::DecodeAttr(fs.Run(BfsService::WriteOp(ino, 0, ToBytes("body")))));

  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RenameOp(d1, "f", d2, "g"))),
            BfsStatus::kOk);
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::LookupOp(d1, "f"))), BfsStatus::kNoEnt);
  auto attr = BfsService::DecodeAttr(fs.Run(BfsService::LookupOp(d2, "g")));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->ino, ino);
  EXPECT_EQ(BfsService::DecodeData(fs.Run(BfsService::ReadOp(ino, 0, 4))), ToBytes("body"));
}

TEST(BfsTest, RenameWithinSameDirectory) {
  BareBfs fs;
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "old");
  EXPECT_EQ(BfsService::StatusOf(fs.Run(
                BfsService::RenameOp(BfsService::kRootIno, "old", BfsService::kRootIno,
                                     "new"))),
            BfsStatus::kOk);
  auto attr = BfsService::DecodeAttr(fs.Run(BfsService::LookupOp(BfsService::kRootIno, "new")));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->ino, ino);
}

TEST(BfsTest, HardLinksShareDataAndCountNames) {
  BareBfs fs;
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "orig");
  ASSERT_TRUE(BfsService::DecodeAttr(fs.Run(BfsService::WriteOp(ino, 0, ToBytes("shared")))));

  auto linked = BfsService::DecodeAttr(
      fs.Run(BfsService::LinkOp(ino, BfsService::kRootIno, "alias")));
  ASSERT_TRUE(linked.has_value());
  EXPECT_EQ(linked->ino, ino);
  EXPECT_EQ(linked->nlink, 2);

  // Data visible through both names; removing one name keeps the file alive.
  auto via_alias = BfsService::DecodeAttr(fs.Run(BfsService::LookupOp(BfsService::kRootIno,
                                                                      "alias")));
  ASSERT_TRUE(via_alias.has_value());
  EXPECT_EQ(via_alias->ino, ino);
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RemoveOp(BfsService::kRootIno, "orig"))),
            BfsStatus::kOk);
  EXPECT_EQ(BfsService::DecodeData(fs.Run(BfsService::ReadOp(ino, 0, 6))), ToBytes("shared"));
  auto attr = BfsService::DecodeAttr(fs.Run(BfsService::GetAttrOp(ino)));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->nlink, 1);

  // Removing the last name frees the inode.
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::RemoveOp(BfsService::kRootIno, "alias"))),
            BfsStatus::kOk);
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::GetAttrOp(ino))), BfsStatus::kNoEnt);
}

TEST(BfsTest, LinkToDirectoryRejected) {
  BareBfs fs;
  uint32_t dir = fs.MustMkdir(BfsService::kRootIno, "d");
  EXPECT_EQ(BfsService::StatusOf(
                fs.Run(BfsService::LinkOp(dir, BfsService::kRootIno, "dlink"))),
            BfsStatus::kIsDir);
}

TEST(BfsTest, SymlinkRoundTrip) {
  BareBfs fs;
  auto link = BfsService::DecodeAttr(
      fs.Run(BfsService::SymlinkOp(BfsService::kRootIno, "ln", "/some/target/path")));
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(link->type, 3);

  Bytes target = BfsService::DecodeData(fs.Run(BfsService::ReadlinkOp(link->ino)));
  EXPECT_EQ(ToString(target), "/some/target/path");

  // readlink on a regular file is invalid.
  uint32_t file = fs.MustCreate(BfsService::kRootIno, "plain");
  EXPECT_EQ(BfsService::StatusOf(fs.Run(BfsService::ReadlinkOp(file))), BfsStatus::kInval);
}

TEST(BfsTest, StatFsTracksAllocation) {
  BareBfs fs;
  auto before = BfsService::DecodeStatFs(fs.Run(BfsService::StatFsOp()));
  ASSERT_TRUE(before.has_value());
  uint32_t ino = fs.MustCreate(BfsService::kRootIno, "f");
  ASSERT_TRUE(BfsService::DecodeAttr(fs.Run(BfsService::WriteOp(ino, 0, Bytes(3000, 1)))));
  auto after = BfsService::DecodeStatFs(fs.Run(BfsService::StatFsOp()));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->total_blocks, before->total_blocks);
  EXPECT_LT(after->free_blocks, before->free_blocks);
  EXPECT_EQ(after->free_inodes + 1, before->free_inodes);
}

TEST(BfsTest, MtimeComesFromAgreedNonDeterminism) {
  BareBfs fs;
  auto attr = BfsService::DecodeAttr(
      fs.Run(BfsService::CreateOp(BfsService::kRootIno, "stamped"), /*mtime=*/777));
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->mtime, 777u);
}

TEST(BfsTest, ReadOnlyClassification) {
  BfsService fs;
  EXPECT_TRUE(fs.IsReadOnly(BfsService::LookupOp(0, "x")));
  EXPECT_TRUE(fs.IsReadOnly(BfsService::GetAttrOp(0)));
  EXPECT_TRUE(fs.IsReadOnly(BfsService::ReadOp(0, 0, 10)));
  EXPECT_TRUE(fs.IsReadOnly(BfsService::ReaddirOp(0)));
  EXPECT_FALSE(fs.IsReadOnly(BfsService::WriteOp(0, 0, ToBytes("w"))));
  EXPECT_FALSE(fs.IsReadOnly(BfsService::CreateOp(0, "c")));
  EXPECT_FALSE(fs.IsReadOnly(BfsService::RenameOp(0, "a", 0, "b")));
}

TEST(BfsTest, DeterministicAcrossInstances) {
  // Two service instances applying the same op sequence produce identical state pages —
  // the fundamental state-machine-replication requirement.
  BareBfs a;
  BareBfs b;
  std::vector<Bytes> ops;
  ops.push_back(BfsService::MkdirOp(BfsService::kRootIno, "dir"));
  ops.push_back(BfsService::CreateOp(1, "f1"));
  ops.push_back(BfsService::WriteOp(2, 0, ToBytes("payload-one")));
  ops.push_back(BfsService::CreateOp(1, "f2"));
  ops.push_back(BfsService::WriteOp(3, 100, ToBytes("payload-two")));
  ops.push_back(BfsService::RemoveOp(1, "f1"));
  uint64_t mtime = 10;
  for (const Bytes& op : ops) {
    Bytes ra = a.Run(op, mtime);
    Bytes rb = b.Run(op, mtime);
    EXPECT_EQ(ra, rb);
    ++mtime;
  }
  EXPECT_EQ(Bytes(a.state->data(), a.state->data() + a.state->size_bytes()),
            Bytes(b.state->data(), b.state->data() + b.state->size_bytes()));
}

// --- Replicated integration ---------------------------------------------------------------------

TEST(BfsReplicatedTest, EndToEndFileWorkflow) {
  ClusterOptions options;
  options.seed = 51;
  options.config.state_pages = 64;
  options.config.page_size = 1024;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.partition_branching = 8;
  Cluster cluster(options, [](NodeId) { return std::make_unique<BfsService>(); });
  Client* client = cluster.AddClient();

  auto run = [&](Bytes op, bool ro = false) {
    auto result = cluster.Execute(client, std::move(op), ro, 60 * kSecond);
    EXPECT_TRUE(result.has_value());
    return result.value_or(Bytes{});
  };

  auto dir = BfsService::DecodeAttr(run(BfsService::MkdirOp(BfsService::kRootIno, "project")));
  ASSERT_TRUE(dir.has_value());
  auto file = BfsService::DecodeAttr(run(BfsService::CreateOp(dir->ino, "notes.txt")));
  ASSERT_TRUE(file.has_value());
  Bytes body = ToBytes("replicated file contents");
  ASSERT_TRUE(BfsService::DecodeAttr(run(BfsService::WriteOp(file->ino, 0, body))));

  Bytes back = BfsService::DecodeData(
      run(BfsService::ReadOp(file->ino, 0, static_cast<uint32_t>(body.size())), true));
  EXPECT_EQ(back, body);

  // All replicas hold identical file-system state.
  cluster.sim().RunFor(2 * kSecond);
  Bytes ref(cluster.replica(0)->state().data(),
            cluster.replica(0)->state().data() + cluster.replica(0)->state().size_bytes());
  for (int r = 1; r < 4; ++r) {
    Bytes other(cluster.replica(r)->state().data(),
                cluster.replica(r)->state().data() + cluster.replica(r)->state().size_bytes());
    EXPECT_EQ(ref, other) << "replica " << r << " diverged";
  }
}

TEST(BfsReplicatedTest, SurvivesPrimaryFailureMidWorkload) {
  ClusterOptions options;
  options.seed = 52;
  options.config.state_pages = 64;
  options.config.page_size = 1024;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.partition_branching = 8;
  Cluster cluster(options, [](NodeId) { return std::make_unique<BfsService>(); });
  Client* client = cluster.AddClient();

  auto file = BfsService::DecodeAttr(
      cluster.Execute(client, BfsService::CreateOp(BfsService::kRootIno, "f"), false,
                      60 * kSecond)
          .value_or(Bytes{}));
  ASSERT_TRUE(file.has_value());
  ASSERT_TRUE(cluster.Execute(client, BfsService::WriteOp(file->ino, 0, ToBytes("before")),
                              false, 60 * kSecond));

  cluster.replica(0)->Crash();
  ASSERT_TRUE(cluster.Execute(client, BfsService::WriteOp(file->ino, 6, ToBytes(" after")),
                              false, 120 * kSecond));
  Bytes back = BfsService::DecodeData(
      cluster.Execute(client, BfsService::ReadOp(file->ino, 0, 12), false, 120 * kSecond)
          .value_or(Bytes{}));
  EXPECT_EQ(ToString(back), "before after");
}

}  // namespace
}  // namespace bft

// Unit tests for the little-endian Writer/Reader pair underpinning every wire format.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/serializer.h"

namespace bft {
namespace {

TEST(SerializerTest, ScalarRoundTrips) {
  Writer w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Bool(true);
  w.Bool(false);

  Reader r(w.data());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_FALSE(r.Bool());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, LittleEndianLayout) {
  Writer w;
  w.U32(0x01020304);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(SerializerTest, VarAndStrRoundTrip) {
  Writer w;
  w.Var(ToBytes("payload"));
  w.Str("name");
  w.Var({});  // empty var

  Reader r(w.data());
  EXPECT_EQ(ToString(r.Var()), "payload");
  EXPECT_EQ(r.Str(), "name");
  EXPECT_TRUE(r.Var().empty());
  EXPECT_TRUE(r.ok());
}

TEST(SerializerTest, ReadPastEndSetsNotOkAndReturnsZero) {
  Writer w;
  w.U16(7);
  Reader r(w.data());
  EXPECT_EQ(r.U16(), 7);
  EXPECT_EQ(r.U32(), 0u);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U64(), 0u);  // stays failed
}

TEST(SerializerTest, TruncatedVarFailsWithoutHugeAllocation) {
  Writer w;
  w.U32(1000);  // claims 1000 bytes...
  w.Raw(Bytes(3, 1));  // ...but only 3 present
  Reader r(w.data());
  EXPECT_TRUE(r.Var().empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerializerTest, PatchU32RewritesInPlace) {
  Writer w;
  w.U8(1);
  size_t offset = w.size();
  w.U32(0);  // placeholder
  w.Str("tail");
  w.PatchU32(offset, 0xcafebabe);
  Reader r(w.data());
  r.U8();
  EXPECT_EQ(r.U32(), 0xcafebabe);
}

TEST(SerializerTest, RandomizedRoundTripProperty) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    Writer w;
    std::vector<uint64_t> values;
    std::vector<int> kinds;
    int fields = 1 + static_cast<int>(rng.Below(20));
    for (int i = 0; i < fields; ++i) {
      int kind = static_cast<int>(rng.Below(4));
      uint64_t v = rng.Next();
      kinds.push_back(kind);
      values.push_back(v);
      switch (kind) {
        case 0:
          w.U8(static_cast<uint8_t>(v));
          break;
        case 1:
          w.U32(static_cast<uint32_t>(v));
          break;
        case 2:
          w.U64(v);
          break;
        case 3:
          w.Var(rng.RandomBytes(v % 64));
          break;
      }
    }
    Reader r(w.data());
    for (int i = 0; i < fields; ++i) {
      switch (kinds[static_cast<size_t>(i)]) {
        case 0:
          EXPECT_EQ(r.U8(), static_cast<uint8_t>(values[static_cast<size_t>(i)]));
          break;
        case 1:
          EXPECT_EQ(r.U32(), static_cast<uint32_t>(values[static_cast<size_t>(i)]));
          break;
        case 2:
          EXPECT_EQ(r.U64(), values[static_cast<size_t>(i)]);
          break;
        case 3:
          EXPECT_EQ(r.Var().size(), values[static_cast<size_t>(i)] % 64);
          break;
      }
    }
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(RngTest, DeterministicAndForkIndependent) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng parent(9);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  EXPECT_NE(child1.Next(), child2.Next());
}

TEST(RngTest, BelowAndRangeBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace bft

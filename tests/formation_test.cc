// Formation layer: wire-format round trips, strict decoding of hostile datagrams, and the
// pack-under-load / flush-when-idle policy observed through a recording inner transport.
#include "src/runtime/formation.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/serializer.h"

namespace bft {
namespace {

MsgBuffer Buf(const std::string& s) { return MsgBuffer(ToBytes(s)); }

Bytes FormDatagram(const std::vector<std::string>& frames) {
  Writer w;
  BeginFormedDatagram(w);
  for (const std::string& f : frames) {
    AppendFormedFrame(w, ToBytes(f));
  }
  return w.Take();
}

std::vector<std::string> SplitToStrings(const MsgBuffer& datagram, FrameSplitResult* result) {
  std::vector<std::string> out;
  *result = SplitFormedDatagram(
      datagram, [&out](MsgBuffer frame) { out.push_back(ToString(frame.view())); });
  return out;
}

// --- Wire format ----------------------------------------------------------------------------

TEST(FormationWire, RoundTripsManyFrames) {
  std::vector<std::string> frames = {"prepare", "x", std::string(1000, 'c'), "commit"};
  MsgBuffer datagram(FormDatagram(frames));
  ASSERT_TRUE(IsFormedDatagram(datagram.view()));

  FrameSplitResult r;
  std::vector<std::string> got = SplitToStrings(datagram, &r);
  EXPECT_TRUE(r.formed);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.frames, frames.size());
  EXPECT_EQ(got, frames);
}

TEST(FormationWire, FramesAreZeroCopySlices) {
  MsgBuffer datagram(FormDatagram({"alpha", "beta"}));
  std::vector<MsgBuffer> got;
  SplitFormedDatagram(datagram, [&got](MsgBuffer frame) { got.push_back(std::move(frame)); });
  ASSERT_EQ(got.size(), 2u);
  // A slice points into the datagram's own storage — no copy was made.
  EXPECT_GE(got[0].data(), datagram.data());
  EXPECT_LT(got[0].data() + got[0].size(), datagram.data() + datagram.size());
  EXPECT_EQ(ToString(got[0].view()), "alpha");
  EXPECT_EQ(ToString(got[1].view()), "beta");
}

TEST(FormationWire, BareMessagePassesMagicCheck) {
  // Every protocol message starts with its tag byte (1..18), far below 0xBF: no encoded
  // message can ever be mistaken for a formed datagram.
  MsgBuffer bare(ToBytes(std::string("\x01" "request-body")));
  FrameSplitResult r;
  std::vector<std::string> got = SplitToStrings(bare, &r);
  EXPECT_FALSE(r.formed);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(got.empty());  // the callback never fires: caller delivers the bare message
}

TEST(FormationWire, TruncatedTailKeepsLeadingFrames) {
  Bytes wire = FormDatagram({"first", "second"});
  // Chop mid-way through the second frame's payload: its declared length no longer fits.
  wire.resize(wire.size() - 3);
  FrameSplitResult r;
  std::vector<std::string> got = SplitToStrings(MsgBuffer(std::move(wire)), &r);
  EXPECT_TRUE(r.formed);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "first");
}

TEST(FormationWire, GarbageTailKeepsLeadingFrames) {
  Bytes wire = FormDatagram({"valid"});
  // A trailing fragment too short to hold a frame header.
  wire.push_back(0xde);
  wire.push_back(0xad);
  FrameSplitResult r;
  std::vector<std::string> got = SplitToStrings(MsgBuffer(std::move(wire)), &r);
  EXPECT_TRUE(r.formed);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "valid");
}

TEST(FormationWire, RejectsZeroLengthAndOverflowingFrames) {
  {
    Writer w;
    BeginFormedDatagram(w);
    w.U32(0);  // zero-length frame: a real sender never writes one
    FrameSplitResult r;
    EXPECT_TRUE(SplitToStrings(MsgBuffer(w.Take()), &r).empty());
    EXPECT_TRUE(r.formed);
    EXPECT_FALSE(r.ok);
  }
  {
    Writer w;
    BeginFormedDatagram(w);
    w.U32(0xffffffffu);  // length far past the end of the datagram
    w.Raw(ToBytes("short"));
    FrameSplitResult r;
    EXPECT_TRUE(SplitToStrings(MsgBuffer(w.Take()), &r).empty());
    EXPECT_TRUE(r.formed);
    EXPECT_FALSE(r.ok);
  }
  {
    // Magic with no frames at all: formed but malformed (real senders pack at least one).
    Bytes wire(kFormationMagic, kFormationMagic + kFormationHeaderSize);
    FrameSplitResult r;
    EXPECT_TRUE(SplitToStrings(MsgBuffer(std::move(wire)), &r).empty());
    EXPECT_TRUE(r.formed);
    EXPECT_FALSE(r.ok);
  }
}

TEST(FormationWire, DecoderSurvivesPseudoFuzz) {
  // Deterministic mutation sweep: every delivered frame must be a sane in-bounds slice no
  // matter which byte of a valid datagram is flipped or where it is cut. (No Byzantine
  // sender should be able to crash the decoder — the sim's fault injectors rely on that.)
  Bytes base = FormDatagram({"aaaa", "bbbbbbbb", "cc"});
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  for (int trial = 0; trial < 2000; ++trial) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    Bytes wire = base;
    size_t pos = static_cast<size_t>((rng >> 13) % wire.size());
    wire[pos] ^= static_cast<uint8_t>(rng >> 37);
    if ((rng & 1) != 0) {
      wire.resize(static_cast<size_t>((rng >> 3) % wire.size()) + 1);
    }
    MsgBuffer datagram(std::move(wire));
    SplitFormedDatagram(datagram, [&datagram](MsgBuffer frame) {
      ASSERT_GE(frame.data(), datagram.data());
      ASSERT_LE(frame.data() + frame.size(), datagram.data() + datagram.size());
      ASSERT_GE(frame.size(), 1u);
    });
  }
}

// --- Transport decorator --------------------------------------------------------------------

// Records every call the formation layer makes on its inner transport.
class RecordingTransport final : public Transport {
 public:
  struct Sent {
    NodeId src = 0;
    NodeId dst = 0;
    MsgBuffer message;
    bool multicast = false;
  };

  void Register(NodeId id, MessageSink* sink) override { sinks_[id] = sink; }
  void Unregister(NodeId id) override { sinks_.erase(id); }
  void Send(NodeId src, NodeId dst, MsgBuffer message) override {
    sent.push_back(Sent{src, dst, std::move(message), false});
  }
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& message) override {
    for (NodeId dst : dsts) {
      if (dst != src) {
        sent.push_back(Sent{src, dst, message, true});
      }
    }
    ++multicast_calls;
  }
  void Flush(NodeId src) override { ++flush_calls; }

  // Test-side delivery: what the wire would hand to dst's sink.
  void Deliver(NodeId dst, MsgBuffer message) { sinks_.at(dst)->EnqueueMessage(std::move(message)); }

  std::vector<Sent> sent;
  int multicast_calls = 0;
  int flush_calls = 0;

 private:
  std::map<NodeId, MessageSink*> sinks_;
};

class RecordingSink final : public MessageSink {
 public:
  void EnqueueMessage(MsgBuffer message) override {
    received.push_back(ToString(message.view()));
  }
  std::vector<std::string> received;
};

struct Harness {
  explicit Harness(FormationOptions options = {}) {
    auto owned = std::make_unique<RecordingTransport>();
    inner = owned.get();
    formation = std::make_unique<FormationTransport>(std::move(owned), options);
    formation->InstallMetrics(&metrics);
    formation->Register(1, &sink1);
    formation->Register(2, &sink2);
    formation->Register(3, &sink3);
  }

  uint64_t CounterValue(const std::string& name, const std::string& labels = "") {
    return metrics.GetCounter(name, labels)->value();
  }

  RecordingTransport* inner = nullptr;
  std::unique_ptr<FormationTransport> formation;
  MetricsRegistry metrics;
  RecordingSink sink1, sink2, sink3;
};

TEST(FormationTransportTest, IdleSingleSendPassesThroughUnframed) {
  Harness h;
  h.formation->Send(1, 2, Buf("lonely"));
  EXPECT_TRUE(h.inner->sent.empty());  // queued, not sent: the loop has not flushed yet
  h.formation->Flush(1);
  ASSERT_EQ(h.inner->sent.size(), 1u);
  // Byte-identical to the unformed transport — no magic, no framing.
  EXPECT_EQ(ToString(h.inner->sent[0].message.view()), "lonely");
  EXPECT_EQ(h.inner->flush_calls, 1);  // the idle barrier always reaches the inner backend
  EXPECT_EQ(h.CounterValue("bft_formation_flush_total", "reason=\"idle\""), 1u);
}

TEST(FormationTransportTest, LoadPacksSameDestinationIntoOneDatagram) {
  Harness h;
  h.formation->Send(1, 2, Buf("prepare"));
  h.formation->Send(1, 2, Buf("commit"));
  h.formation->Send(1, 2, Buf("reply"));
  h.formation->Flush(1);
  ASSERT_EQ(h.inner->sent.size(), 1u);  // three messages, one datagram

  FrameSplitResult r;
  std::vector<std::string> frames = SplitToStrings(h.inner->sent[0].message, &r);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(frames, (std::vector<std::string>{"prepare", "commit", "reply"}));
  EXPECT_EQ(h.CounterValue("bft_formation_packed_messages_total"), 3u);
}

TEST(FormationTransportTest, DistinctDestinationsGetDistinctDatagrams) {
  Harness h;
  h.formation->Send(1, 2, Buf("to-two"));
  h.formation->Send(1, 3, Buf("to-three"));
  h.formation->Flush(1);
  ASSERT_EQ(h.inner->sent.size(), 2u);
  EXPECT_EQ(ToString(h.inner->sent[0].message.view()), "to-two");
  EXPECT_EQ(ToString(h.inner->sent[1].message.view()), "to-three");
}

TEST(FormationTransportTest, SoleMulticastPassesThroughToInnerFanout) {
  Harness h;
  h.formation->Multicast(1, {1, 2, 3}, Buf("pre-prepare"));
  EXPECT_EQ(h.inner->multicast_calls, 0);
  h.formation->Flush(1);
  // The idle fast path hands the fan-out to the inner transport's batched Multicast (one
  // sendmmsg from one shared buffer over UDP) rather than splitting it per destination.
  EXPECT_EQ(h.inner->multicast_calls, 1);
  ASSERT_EQ(h.inner->sent.size(), 2u);  // 2 and 3; never back to the source
  EXPECT_EQ(ToString(h.inner->sent[0].message.view()), "pre-prepare");
  EXPECT_EQ(h.CounterValue("bft_formation_passthrough_total", "kind=\"multicast\""), 1u);
}

TEST(FormationTransportTest, MulticastUnderLoadFoldsIntoPerPeerDatagrams) {
  Harness h;
  h.formation->Send(1, 2, Buf("reply"));
  h.formation->Multicast(1, {1, 2, 3}, Buf("commit"));
  h.formation->Flush(1);
  // Node 2 had a unicast queued, so the multicast folds: 2 gets one packed datagram
  // (reply + commit), 3 gets the commit alone, and the inner Multicast is never used.
  EXPECT_EQ(h.inner->multicast_calls, 0);
  ASSERT_EQ(h.inner->sent.size(), 2u);

  FrameSplitResult r;
  std::vector<std::string> to_two = SplitToStrings(h.inner->sent[0].message, &r);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.inner->sent[0].dst, 2u);
  EXPECT_EQ(to_two, (std::vector<std::string>{"reply", "commit"}));
  EXPECT_EQ(h.inner->sent[1].dst, 3u);
  EXPECT_EQ(ToString(h.inner->sent[1].message.view()), "commit");
}

TEST(FormationTransportTest, MaxFramesCapFlushesEagerly) {
  FormationOptions options;
  options.max_frames = 4;
  Harness h(options);
  for (int i = 0; i < 4; ++i) {
    h.formation->Send(1, 2, Buf("m" + std::to_string(i)));
  }
  // The cap fired inside Send: a never-idle loop still drains every max_frames-th message.
  ASSERT_EQ(h.inner->sent.size(), 1u);
  FrameSplitResult r;
  EXPECT_EQ(SplitToStrings(h.inner->sent[0].message, &r).size(), 4u);
  EXPECT_EQ(h.CounterValue("bft_formation_flush_total", "reason=\"frames\""), 1u);
}

TEST(FormationTransportTest, DatagramBudgetSplitsOversizedQueues) {
  FormationOptions options;
  options.max_datagram = 100;
  Harness h(options);
  h.formation->Send(1, 2, Buf(std::string(60, 'a')));
  h.formation->Send(1, 2, Buf(std::string(60, 'b')));  // would overflow: first emits alone
  h.formation->Flush(1);
  ASSERT_EQ(h.inner->sent.size(), 2u);
  for (const auto& s : h.inner->sent) {
    EXPECT_LE(s.message.size(), options.max_datagram);
  }
  EXPECT_EQ(h.CounterValue("bft_formation_flush_total", "reason=\"size\""), 1u);
}

TEST(FormationTransportTest, ReceiveSideSplitsFormedDatagrams) {
  Harness h;
  h.inner->Deliver(2, MsgBuffer(FormDatagram({"one", "two", "three"})));
  EXPECT_EQ(h.sink2.received, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(FormationTransportTest, ReceiveSidePassesBareDatagramsThrough) {
  Harness h;
  h.inner->Deliver(2, Buf("\x05" "bare-protocol-message"));
  ASSERT_EQ(h.sink2.received.size(), 1u);
  EXPECT_EQ(h.sink2.received[0], "\x05" "bare-protocol-message");
  EXPECT_EQ(h.CounterValue("bft_formation_decode_errors_total"), 0u);
}

TEST(FormationTransportTest, ReceiveSideCountsMalformedTailsButKeepsLeadingFrames) {
  Harness h;
  Bytes wire = FormDatagram({"good", "alsogood"});
  wire.resize(wire.size() - 2);  // truncate the last frame
  h.inner->Deliver(2, MsgBuffer(std::move(wire)));
  EXPECT_EQ(h.sink2.received, (std::vector<std::string>{"good"}));
  EXPECT_EQ(h.CounterValue("bft_formation_decode_errors_total"), 1u);
}

TEST(FormationTransportTest, FlushWithNothingQueuedStillReachesInner) {
  Harness h;
  h.formation->Flush(1);
  EXPECT_TRUE(h.inner->sent.empty());
  // The inner backend may have *its own* staged work (io_uring sends): the barrier must
  // always propagate.
  EXPECT_EQ(h.inner->flush_calls, 1);
}

TEST(FormationTransportTest, UnregisteredSourceBypassesQueues) {
  Harness h;
  h.formation->Send(99, 2, Buf("from-nowhere"));
  // No queue exists for src 99: the message goes straight through (and would otherwise wait
  // for a Flush(99) that no loop will ever call).
  ASSERT_EQ(h.inner->sent.size(), 1u);
  EXPECT_EQ(ToString(h.inner->sent[0].message.view()), "from-nowhere");
}

}  // namespace
}  // namespace bft

// Wire-format tests: encode/decode round trips for every message type, defensive decoding of
// malformed input, and digest stability properties.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/messages.h"

namespace bft {
namespace {

template <typename T>
T RoundTrip(const T& msg) {
  Bytes wire = EncodeMessage(Message(msg));
  std::optional<Message> decoded = DecodeMessage(wire);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

RequestMsg SampleRequest() {
  RequestMsg m;
  m.client = 1003;
  m.timestamp = 77;
  m.read_only = true;
  m.designated_replier = 2;
  m.op = ToBytes("operation-payload");
  m.auth = Bytes(32, 0xaa);
  return m;
}

TEST(MessagesTest, RequestRoundTrip) {
  RequestMsg m = SampleRequest();
  RequestMsg out = RoundTrip(m);
  EXPECT_EQ(out.client, m.client);
  EXPECT_EQ(out.timestamp, m.timestamp);
  EXPECT_EQ(out.read_only, m.read_only);
  EXPECT_EQ(out.designated_replier, m.designated_replier);
  EXPECT_EQ(out.op, m.op);
  EXPECT_EQ(out.auth, m.auth);
  EXPECT_EQ(out.RequestDigest(), m.RequestDigest());
}

TEST(MessagesTest, RequestDigestIgnoresAuthAndRouting) {
  RequestMsg a = SampleRequest();
  RequestMsg b = SampleRequest();
  b.auth = Bytes(32, 0xbb);
  b.designated_replier = 9;
  b.read_only = false;
  EXPECT_EQ(a.RequestDigest(), b.RequestDigest());
  b.op.push_back(1);
  EXPECT_NE(a.RequestDigest(), b.RequestDigest());
}

TEST(MessagesTest, ReplyRoundTrip) {
  ReplyMsg m;
  m.view = 3;
  m.timestamp = 55;
  m.client = 1001;
  m.replica = 2;
  m.tentative = true;
  m.has_result = true;
  m.result = ToBytes("result-bytes");
  m.result_digest = ComputeDigest(m.result);
  m.auth = Bytes(8, 0x11);
  ReplyMsg out = RoundTrip(m);
  EXPECT_EQ(out.view, m.view);
  EXPECT_EQ(out.result, m.result);
  EXPECT_EQ(out.result_digest, m.result_digest);
  EXPECT_EQ(out.tentative, m.tentative);
}

TEST(MessagesTest, ReplyAuthContentCoversDigestNotResult) {
  ReplyMsg a;
  a.result = ToBytes("big payload");
  a.result_digest = ComputeDigest(a.result);
  ReplyMsg b = a;
  b.result.clear();
  b.has_result = false;
  // MAC over the header only (digest replies): both forms authenticate identically.
  EXPECT_EQ(a.AuthContent(), b.AuthContent());
}

PrePrepareMsg SamplePrePrepare() {
  PrePrepareMsg m;
  m.view = 2;
  m.seq = 17;
  m.ndet = ToBytes("ndet");
  RequestMsg r1 = SampleRequest();
  RequestMsg r2 = SampleRequest();
  r2.timestamp = 78;
  m.inline_requests = {r1, r2};
  m.separate_digests = {ComputeDigest(ToBytes("big-request"))};
  m.auth = Bytes(32, 0xcc);
  return m;
}

TEST(MessagesTest, PrePrepareRoundTrip) {
  PrePrepareMsg m = SamplePrePrepare();
  PrePrepareMsg out = RoundTrip(m);
  EXPECT_EQ(out.view, m.view);
  EXPECT_EQ(out.seq, m.seq);
  EXPECT_EQ(out.ndet, m.ndet);
  ASSERT_EQ(out.inline_requests.size(), 2u);
  EXPECT_EQ(out.separate_digests, m.separate_digests);
  EXPECT_EQ(out.BatchDigest(), m.BatchDigest());
}

TEST(MessagesTest, BatchDigestIndependentOfViewAndSeq) {
  PrePrepareMsg a = SamplePrePrepare();
  PrePrepareMsg b = SamplePrePrepare();
  b.view = 9;
  b.seq = 99;
  // The same batch re-proposed in a later view keeps its identity.
  EXPECT_EQ(a.BatchDigest(), b.BatchDigest());
}

TEST(MessagesTest, BatchDigestSensitiveToOrderAndNdet) {
  PrePrepareMsg a = SamplePrePrepare();
  PrePrepareMsg b = SamplePrePrepare();
  std::swap(b.inline_requests[0], b.inline_requests[1]);
  EXPECT_NE(a.BatchDigest(), b.BatchDigest());
  PrePrepareMsg c = SamplePrePrepare();
  c.ndet = ToBytes("other");
  EXPECT_NE(a.BatchDigest(), c.BatchDigest());
}

TEST(MessagesTest, PrepareCommitCheckpointRoundTrip) {
  PrepareMsg p;
  p.view = 1;
  p.seq = 2;
  p.batch_digest = ComputeDigest(ToBytes("x"));
  p.replica = 3;
  p.auth = Bytes(32, 1);
  PrepareMsg pout = RoundTrip(p);
  EXPECT_EQ(pout.batch_digest, p.batch_digest);

  CommitMsg c;
  c.view = 1;
  c.seq = 2;
  c.batch_digest = p.batch_digest;
  c.replica = 3;
  CommitMsg cout = RoundTrip(c);
  EXPECT_EQ(cout.seq, 2u);

  CheckpointMsg k;
  k.seq = 128;
  k.state_digest = ComputeDigest(ToBytes("state"));
  k.replica = 1;
  CheckpointMsg kout = RoundTrip(k);
  EXPECT_EQ(kout.state_digest, k.state_digest);
}

TEST(MessagesTest, ViewChangeRoundTrip) {
  ViewChangeMsg m;
  m.view = 5;
  m.h = 8;
  m.checkpoints = {{8, ComputeDigest(ToBytes("c8"))}, {16, ComputeDigest(ToBytes("c16"))}};
  m.p = {{9, ComputeDigest(ToBytes("p9")), 4}, {10, ComputeDigest(ToBytes("p10")), 3}};
  m.q = {{9, {{ComputeDigest(ToBytes("q9a")), 4}, {ComputeDigest(ToBytes("q9b")), 2}}}};
  m.replica = 2;
  m.auth = Bytes(32, 0xee);
  ViewChangeMsg out = RoundTrip(m);
  EXPECT_EQ(out.h, 8u);
  ASSERT_EQ(out.checkpoints.size(), 2u);
  ASSERT_EQ(out.p.size(), 2u);
  EXPECT_EQ(out.p[0].view, 4u);
  ASSERT_EQ(out.q.size(), 1u);
  ASSERT_EQ(out.q[0].dv.size(), 2u);
  EXPECT_EQ(out.MessageDigest(), m.MessageDigest());
}

TEST(MessagesTest, ViewChangeDigestCoversContent) {
  ViewChangeMsg a;
  a.view = 5;
  a.h = 8;
  a.replica = 2;
  ViewChangeMsg b = a;
  EXPECT_EQ(a.MessageDigest(), b.MessageDigest());
  b.h = 9;
  EXPECT_NE(a.MessageDigest(), b.MessageDigest());
}

TEST(MessagesTest, NewViewRoundTrip) {
  NewViewMsg m;
  m.view = 5;
  m.vc_set = {{0, ComputeDigest(ToBytes("vc0"))}, {1, ComputeDigest(ToBytes("vc1"))},
              {2, ComputeDigest(ToBytes("vc2"))}};
  m.min_s = 8;
  m.chkpt_digest = ComputeDigest(ToBytes("chk"));
  m.chosen = {{9, ComputeDigest(ToBytes("b9"))}, {10, Digest{}}};
  BatchPayload payload;
  payload.ndet = ToBytes("nd");
  payload.requests = {SampleRequest()};
  m.payloads = {payload};
  m.auth = Bytes(32, 0x12);
  NewViewMsg out = RoundTrip(m);
  EXPECT_EQ(out.vc_set, m.vc_set);
  EXPECT_EQ(out.min_s, 8u);
  EXPECT_EQ(out.chosen, m.chosen);
  ASSERT_EQ(out.payloads.size(), 1u);
  EXPECT_EQ(out.payloads[0].BatchDigest(), payload.BatchDigest());
}

TEST(MessagesTest, StatusRoundTrip) {
  StatusMsg m;
  m.view = 4;
  m.view_active = false;
  m.last_stable = 8;
  m.last_exec = 12;
  m.prepared_bits = {0xff, 0x01};
  m.committed_bits = {0x0f, 0x00};
  m.has_new_view = true;
  m.vc_have_bits = {0x05};
  m.replica = 3;
  StatusMsg out = RoundTrip(m);
  EXPECT_EQ(out.prepared_bits, m.prepared_bits);
  EXPECT_EQ(out.vc_have_bits, m.vc_have_bits);
  EXPECT_FALSE(out.view_active);
}

TEST(MessagesTest, StateTransferMessagesRoundTrip) {
  FetchMsg f;
  f.level = 2;
  f.index = 7;
  f.last_known = 8;
  f.target = 16;
  f.replier = 1;
  f.replica = 3;
  f.nonce = 42;
  FetchMsg fout = RoundTrip(f);
  EXPECT_EQ(fout.nonce, 42u);

  MetaDataMsg md;
  md.target = 16;
  md.level = 1;
  md.index = 3;
  md.parts = {{12, 8, ComputeDigest(ToBytes("p12"))}, {13, 16, ComputeDigest(ToBytes("p13"))}};
  md.extra = ToBytes("extra-blob");
  md.replica = 1;
  md.nonce = 42;
  MetaDataMsg mout = RoundTrip(md);
  ASSERT_EQ(mout.parts.size(), 2u);
  EXPECT_EQ(mout.parts[1].lm, 16u);
  EXPECT_EQ(mout.extra, md.extra);

  DataMsg d;
  d.index = 12;
  d.lm = 8;
  d.value = Bytes(4096, 0x7e);
  DataMsg dout = RoundTrip(d);
  EXPECT_EQ(dout.value, d.value);
}

TEST(MessagesTest, KeyAndRecoveryMessagesRoundTrip) {
  NewKeyMsg nk;
  nk.replica = 2;
  nk.epoch = 9;
  nk.counter = 1234;
  nk.auth = Bytes(128, 3);
  NewKeyMsg nkout = RoundTrip(nk);
  EXPECT_EQ(nkout.epoch, 9u);
  EXPECT_EQ(nkout.counter, 1234u);

  QueryStableMsg q;
  q.replica = 1;
  q.nonce = 5;
  EXPECT_EQ(RoundTrip(q).nonce, 5u);

  ReplyStableMsg rs;
  rs.last_checkpoint = 32;
  rs.last_prepared = 40;
  rs.nonce = 5;
  rs.replica = 0;
  ReplyStableMsg rsout = RoundTrip(rs);
  EXPECT_EQ(rsout.last_checkpoint, 32u);
  EXPECT_EQ(rsout.last_prepared, 40u);
}

TEST(MessagesTest, BatchFetchRoundTrip) {
  BatchFetchMsg bf;
  bf.batch_digest = ComputeDigest(ToBytes("batch"));
  bf.replica = 2;
  EXPECT_EQ(RoundTrip(bf).batch_digest, bf.batch_digest);

  BatchReplyMsg br;
  br.payload.ndet = ToBytes("n");
  br.payload.requests = {SampleRequest()};
  br.replica = 1;
  BatchReplyMsg brout = RoundTrip(br);
  EXPECT_EQ(brout.payload.BatchDigest(), br.payload.BatchDigest());
}

// --- Defensive decoding --------------------------------------------------------------------------

TEST(MessagesTest, EmptyAndGarbageInputRejected) {
  EXPECT_FALSE(DecodeMessage(Bytes{}).has_value());
  EXPECT_FALSE(DecodeMessage(Bytes{0}).has_value());
  EXPECT_FALSE(DecodeMessage(Bytes{99, 1, 2, 3}).has_value());
}

TEST(MessagesTest, TruncatedMessagesRejected) {
  Bytes wire = EncodeMessage(Message(SamplePrePrepare()));
  for (size_t cut = 1; cut < wire.size(); cut += 7) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeMessage(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(MessagesTest, TrailingBytesRejected) {
  Bytes wire = EncodeMessage(Message(SampleRequest()));
  wire.push_back(0);
  EXPECT_FALSE(DecodeMessage(wire).has_value());
}

TEST(MessagesTest, HugeLengthFieldRejectedWithoutAllocation) {
  // Craft a request whose op length claims 0xffffffff bytes.
  Writer w;
  w.U8(1);  // kRequest
  w.U32(1001);
  w.U64(1);
  w.Bool(false);
  w.U32(0);
  w.U32(0xffffffff);  // op length: enormous
  Bytes wire = w.Take();
  EXPECT_FALSE(DecodeMessage(wire).has_value());
}

TEST(MessagesTest, RandomBytesNeverCrashDecoder) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = rng.RandomBytes(rng.Below(300));
    DecodeMessage(junk);  // must not crash; result irrelevant
  }
}

TEST(MessagesTest, BitFlippedEncodingsNeverCrashDecoder) {
  Bytes wire = EncodeMessage(Message(SamplePrePrepare()));
  Rng rng(321);
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = wire;
    mutated[rng.Below(mutated.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
    DecodeMessage(mutated);  // must not crash
  }
}

}  // namespace
}  // namespace bft

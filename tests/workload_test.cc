// Tests for the workload substrate: closed-loop load, the Andrew generator, and the KV and
// null services under parameterized sweeps.
#include <gtest/gtest.h>

#include "src/service/kv_service.h"
#include "src/service/null_service.h"
#include "src/workload/andrew.h"
#include "src/workload/closed_loop.h"

namespace bft {
namespace {

ClusterOptions Options(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.checkpoint_period = 32;
  options.config.log_size = 64;
  options.config.state_pages = 64;
  return options;
}

TEST(ClosedLoopTest, ProducesThroughputAndLatency) {
  Cluster cluster(Options(71), [](NodeId) { return std::make_unique<NullService>(); });
  ClosedLoopLoad load(
      &cluster, 5, [](size_t, uint64_t) { return NullService::MakeOp(false, 0, 8); }, false);
  ClosedLoopLoad::Result r = load.Run(500 * kMillisecond, 2 * kSecond);
  EXPECT_GT(r.ops_completed, 100u);
  EXPECT_GT(r.ops_per_second, 100.0);
  EXPECT_GT(r.mean_latency, 0u);
}

TEST(ClosedLoopTest, MoreClientsMoreThroughputUntilSaturation) {
  double t1;
  double t10;
  {
    Cluster cluster(Options(72), [](NodeId) { return std::make_unique<NullService>(); });
    ClosedLoopLoad load(
        &cluster, 1, [](size_t, uint64_t) { return NullService::MakeOp(false, 0, 8); },
        false);
    t1 = load.Run(500 * kMillisecond, 2 * kSecond).ops_per_second;
  }
  {
    Cluster cluster(Options(73), [](NodeId) { return std::make_unique<NullService>(); });
    ClosedLoopLoad load(
        &cluster, 10, [](size_t, uint64_t) { return NullService::MakeOp(false, 0, 8); },
        false);
    t10 = load.Run(500 * kMillisecond, 2 * kSecond).ops_per_second;
  }
  EXPECT_GT(t10, 1.5 * t1);
}

TEST(AndrewTest, GeneratorIsDeterministic) {
  AndrewScale scale;
  std::vector<AndrewOp> a = BuildAndrewOps(scale);
  std::vector<AndrewOp> b = BuildAndrewOps(scale);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op) << i;
    EXPECT_EQ(a[i].read_only, b[i].read_only);
    EXPECT_EQ(a[i].phase, b[i].phase);
  }
}

TEST(AndrewTest, PhasesAreOrderedAndReadOnlyCorrect) {
  std::vector<AndrewOp> ops = BuildAndrewOps(AndrewScale{});
  int last_phase = 0;
  for (const AndrewOp& op : ops) {
    EXPECT_GE(op.phase, last_phase);
    last_phase = op.phase;
    if (op.phase == 2 || op.phase == 3) {
      EXPECT_TRUE(op.read_only) << "stat/read phases must be read-only";
    }
  }
  EXPECT_EQ(last_phase, 4);
}

TEST(AndrewTest, UnreplicatedRunExecutesEveryOpSuccessfully) {
  AndrewScale scale;
  scale.dirs = 3;
  scale.files_per_dir = 2;
  ReplicaConfig config;
  config.state_pages = 512;
  config.page_size = 1024;
  PerfModel model;
  AndrewResult result = RunAndrewUnreplicated(config, model, scale, 1);
  uint64_t total_ops = 0;
  for (int p = 0; p < AndrewResult::kPhases; ++p) {
    EXPECT_GT(result.phase_time[p], 0u) << AndrewResult::PhaseName(p);
    total_ops += result.phase_ops[p];
  }
  EXPECT_EQ(total_ops, BuildAndrewOps(scale).size());
}

TEST(AndrewTest, ReplicatedSmallRunCompletes) {
  AndrewScale scale;
  scale.dirs = 2;
  scale.files_per_dir = 2;
  scale.file_size = 2048;
  scale.objects = 2;
  ClusterOptions options = Options(74);
  options.config.state_pages = 512;
  options.config.page_size = 1024;
  Cluster cluster(options, [](NodeId) { return std::make_unique<BfsService>(); });
  Client* client = cluster.AddClient();
  AndrewResult result = RunAndrewReplicated(&cluster, client, scale, 60 * kSecond);
  uint64_t total_ops = 0;
  for (uint64_t ops : result.phase_ops) {
    total_ops += ops;
  }
  EXPECT_EQ(total_ops, BuildAndrewOps(scale).size()) << "some ops timed out";
  EXPECT_GT(result.total(), 0u);
}

// --- Parameterized service sweeps ---------------------------------------------------------------

class KvSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(KvSweepTest, ManyKeysSurviveCheckpointingAndReads) {
  int keys = GetParam();
  ClusterOptions options = Options(75 + static_cast<uint64_t>(keys));
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();
  for (int i = 0; i < keys; ++i) {
    std::string key = "k" + std::to_string(i);
    std::string value = "v" + std::to_string(i * i);
    auto r = cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes(value)), false,
                             60 * kSecond);
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(ToString(*r), "ok");
  }
  for (int i = 0; i < keys; ++i) {
    std::string key = "k" + std::to_string(i);
    auto r = cluster.Execute(client, KvService::GetOp(ToBytes(key)), true, 60 * kSecond);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(ToString(*r), "v" + std::to_string(i * i));
  }
}

INSTANTIATE_TEST_SUITE_P(KeyCounts, KvSweepTest, ::testing::Values(1, 10, 40));

class NullOpSizeTest : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(NullOpSizeTest, ArbitraryArgResultSizesRoundTrip) {
  auto [arg, result_size] = GetParam();
  Cluster cluster(Options(90 + arg + result_size),
                  [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  auto r = cluster.Execute(client, NullService::MakeOp(false, arg, result_size), false,
                           60 * kSecond);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), result_size);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NullOpSizeTest,
    ::testing::Values(std::make_tuple(0, 0), std::make_tuple(0, 1), std::make_tuple(1, 0),
                      std::make_tuple(255, 255), std::make_tuple(256, 256),
                      std::make_tuple(4096, 0), std::make_tuple(0, 4096),
                      std::make_tuple(8192, 8192)));

}  // namespace
}  // namespace bft

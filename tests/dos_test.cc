// Denial-of-service defenses (thesis Section 5.5): replay caches, request scheduling
// fairness, and bounded per-sequence-number log state.
#include <gtest/gtest.h>

#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions Options(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.checkpoint_period = 16;
  options.config.log_size = 32;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  return options;
}

ServiceFactory CounterFactory() {
  return [](NodeId) { return std::make_unique<CounterService>(); };
}

TEST(DosTest, ReplayedOldRequestsAnsweredFromCacheNotReExecuted) {
  Cluster cluster(Options(81), CounterFactory());
  Client* client = cluster.AddClient();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  uint64_t executed_before = cluster.replica(0)->stats().requests_executed;

  // An attacker replays the client's old (authentic!) request traffic at the replicas.
  // The replicas answer with the cached reply for the latest timestamp and drop the rest —
  // the counter must not advance.
  RequestMsg replay;  // reconstruct an old-looking request is not possible without keys, so
  (void)replay;       // replay real wire bytes instead via a capture filter:
  std::vector<Bytes> captured;
  cluster.net().SetFilter([&captured](NodeId src, NodeId dst, const Bytes& msg) {
    if (IsClientId(src)) {
      captured.push_back(msg);
    }
    return Network::FilterAction::kDeliver;
  });
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  cluster.net().SetFilter(nullptr);
  ASSERT_FALSE(captured.empty());
  for (int round = 0; round < 5; ++round) {
    for (const Bytes& wire : captured) {
      for (NodeId r = 0; r < 4; ++r) {
        cluster.net().Send(9999, r, wire, cluster.sim().Now());
      }
    }
  }
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_EQ(cluster.replica(0)->stats().requests_executed, executed_before + 1)
      << "replays were re-executed";

  uint64_t value = 0;
  cluster.replica(0)->state().Read(0, sizeof(value), reinterpret_cast<uint8_t*>(&value));
  EXPECT_EQ(value, 4u);
}

TEST(DosTest, SpammingClientDoesNotStarveOthers) {
  // Client A floods retransmissions of one request; client B issues ordinary traffic. The
  // FIFO scheduling rule (one queued request per client, highest timestamp) must keep B's
  // latency in the normal range.
  Cluster cluster(Options(82), CounterFactory());
  Client* spammer = cluster.AddClient();
  Client* normal = cluster.AddClient();

  // Baseline latency for B alone.
  ASSERT_TRUE(cluster.Execute(normal, CounterService::IncOp()).has_value());
  SimTime baseline = normal->stats().last_latency;

  // A issues a request and we replay its wire bytes aggressively.
  std::vector<Bytes> captured;
  cluster.net().SetFilter([&captured, spammer](NodeId src, NodeId dst, const Bytes& msg) {
    if (src == spammer->id()) {
      captured.push_back(msg);
    }
    return Network::FilterAction::kDeliver;
  });
  ASSERT_TRUE(cluster.Execute(spammer, CounterService::IncOp()).has_value());
  cluster.net().SetFilter(nullptr);
  Cluster* cptr = &cluster;
  for (int burst = 0; burst < 200; ++burst) {
    cluster.sim().Schedule(burst * kMillisecond, [cptr, &captured]() {
      for (const Bytes& wire : captured) {
        for (NodeId r = 0; r < 4; ++r) {
          cptr->net().Send(9999, r, wire, cptr->sim().Now());
        }
      }
    });
  }

  // B's ops complete in bounded time under the flood.
  for (int i = 0; i < 5; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(normal, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_LT(normal->stats().last_latency, 50 * baseline)
        << "spammer starved the normal client";
  }
}

TEST(DosTest, LogStateBoundedPerSequenceNumber) {
  // A Byzantine replica sending many conflicting prepares for the same (view, seq) must not
  // grow a log entry without bound: one prepare per replica is retained.
  Cluster cluster(Options(83), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  // (Structural property: LogEntry::prepares is keyed by replica id, so the bound holds by
  // construction; this test documents it by hammering duplicates through the wire.)
  std::vector<Bytes> captured;
  cluster.net().SetFilter([&captured](NodeId src, NodeId dst, const Bytes& msg) {
    if (src == 2 && dst == 0) {
      captured.push_back(msg);
    }
    return Network::FilterAction::kDeliver;
  });
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  cluster.net().SetFilter(nullptr);
  for (int i = 0; i < 100; ++i) {
    for (const Bytes& wire : captured) {
      cluster.net().Send(9999, 0, wire, cluster.sim().Now());
    }
  }
  cluster.sim().RunFor(kSecond);
  // The group still functions normally afterwards.
  std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 3u);
}

TEST(DosTest, GarbageFloodDoesNotCrashOrStall) {
  Cluster cluster(Options(84), CounterFactory());
  Client* client = cluster.AddClient();
  Rng rng(84);
  for (int i = 0; i < 500; ++i) {
    Bytes junk = rng.RandomBytes(rng.Below(200));
    cluster.net().Send(9999, static_cast<NodeId>(rng.Below(4)), junk, cluster.sim().Now());
  }
  for (uint64_t i = 1; i <= 5; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

}  // namespace
}  // namespace bft

// Integration tests for hierarchical state transfer (Section 5.3.2): replicas that fall
// behind the log window fetch missing state and rejoin.
#include <gtest/gtest.h>

#include "src/service/counter_service.h"
#include "src/service/kv_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions TransferCluster(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 4;
  options.config.log_size = 8;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  return options;
}

TEST(StateTransferTest, LaggingReplicaCatchesUpViaTransfer) {
  Cluster cluster(TransferCluster(31),
                  [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();

  // Cut replica 3 off, then run far past its log window (log_size 8).
  cluster.net().SetNodeDown(3, true);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond));
  }
  cluster.sim().RunFor(kSecond);
  EXPECT_LE(cluster.replica(3)->last_executed(), 8u);

  cluster.net().SetNodeDown(3, false);
  // Keep some traffic flowing so checkpoint certificates keep forming.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond));
  }
  SeqNo target = cluster.replica(0)->last_executed();
  ASSERT_TRUE(cluster.sim().RunUntilCondition(
      [&cluster, target]() { return cluster.replica(3)->last_executed() >= target; },
      cluster.sim().Now() + 120 * kSecond))
      << "replica 3 stuck at " << cluster.replica(3)->last_executed();

  EXPECT_GT(cluster.replica(3)->stats().state_transfers, 0u);
  EXPECT_GT(cluster.replica(3)->stats().pages_fetched, 0u);

  uint64_t value = 0;
  cluster.replica(3)->state().Read(0, sizeof(value), reinterpret_cast<uint8_t*>(&value));
  uint64_t expected = 0;
  cluster.replica(0)->state().Read(0, sizeof(expected), reinterpret_cast<uint8_t*>(&expected));
  EXPECT_EQ(value, expected) << "transferred state diverges";
}

TEST(StateTransferTest, TransferOnlyFetchesDifferingPages) {
  // With a KV store touching few pages, the hierarchical protocol must skip identical
  // subtrees: pages fetched should be far fewer than total pages.
  ClusterOptions options = TransferCluster(32);
  options.config.state_pages = 64;
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();

  cluster.net().SetNodeDown(3, true);
  for (int i = 0; i < 30; ++i) {
    std::string key = "key-" + std::to_string(i % 3);  // concentrate on a few pages
    ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes("v")), false,
                                60 * kSecond));
  }
  cluster.net().SetNodeDown(3, false);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(ToBytes("k"), ToBytes("w")), false,
                                60 * kSecond));
  }
  ASSERT_TRUE(cluster.sim().RunUntilCondition(
      [&cluster]() { return cluster.replica(3)->last_executed() >= 30; },
      cluster.sim().Now() + 120 * kSecond));
  EXPECT_GT(cluster.replica(3)->stats().pages_fetched, 0u);
  EXPECT_LT(cluster.replica(3)->stats().pages_fetched, 32u)
      << "hierarchy failed to skip identical subtrees";
}

TEST(StateTransferTest, RejoinedReplicaParticipatesInQuorums) {
  Cluster cluster(TransferCluster(33),
                  [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();

  cluster.net().SetNodeDown(3, true);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond));
  }
  cluster.net().SetNodeDown(3, false);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond));
  }
  ASSERT_TRUE(cluster.sim().RunUntilCondition(
      [&cluster]() { return cluster.replica(3)->last_executed() >= 31; },
      cluster.sim().Now() + 120 * kSecond));

  // Now crash a different replica: the group only stays live if replica 3 really recovered.
  cluster.replica(1)->Crash();
  for (uint64_t i = 32; i <= 36; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value()) << "group lost liveness after rejoin + crash";
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

}  // namespace
}  // namespace bft

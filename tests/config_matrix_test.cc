// Configuration-matrix sweep: the protocol must be correct (not merely fast) under every
// combination of group size and optimization flags — the optimizations are performance
// features and must never change semantics.
#include <gtest/gtest.h>

#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

struct MatrixParam {
  int n;
  bool tentative;
  bool digest_replies;
  bool batching;
  bool read_only_opt;
};

std::string ParamName(const ::testing::TestParamInfo<MatrixParam>& info) {
  const MatrixParam& p = info.param;
  std::string s = "n" + std::to_string(p.n);
  s += p.tentative ? "_tent" : "_notent";
  s += p.digest_replies ? "_dig" : "_nodig";
  s += p.batching ? "_batch" : "_nobatch";
  s += p.read_only_opt ? "_ro" : "_noro";
  return s;
}

class ConfigMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrixTest, CorrectUnderFaultAndLoad) {
  const MatrixParam& p = GetParam();
  ClusterOptions options;
  options.seed = static_cast<uint64_t>(p.n) * 1000 + (p.tentative ? 1 : 0) +
                 (p.digest_replies ? 2 : 0) + (p.batching ? 4 : 0) + (p.read_only_opt ? 8 : 0);
  options.config.n = p.n;
  options.config.tentative_execution = p.tentative;
  options.config.digest_replies = p.digest_replies;
  options.config.batching = p.batching;
  options.config.read_only_optimization = p.read_only_opt;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  Cluster cluster(options, [](NodeId) { return std::make_unique<CounterService>(); });

  // One Byzantine-silent replica (within the fault budget for every n here).
  cluster.replica(p.n - 1)->SetMute(true);

  // Two interleaved clients; sequential ops must be exactly-once whatever the config.
  Client* a = cluster.AddClient();
  Client* b = cluster.AddClient();
  uint64_t expected = 0;
  for (int i = 0; i < 6; ++i) {
    Client* c = (i % 2 == 0) ? a : b;
    std::optional<Bytes> result =
        cluster.Execute(c, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value()) << "op " << i;
    EXPECT_EQ(CounterService::DecodeValue(*result), ++expected);
  }
  // Read-only query agrees.
  std::optional<Bytes> value =
      cluster.Execute(a, CounterService::GetOp(), /*read_only=*/true, 120 * kSecond);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*value), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConfigMatrixTest,
    ::testing::Values(
        MatrixParam{4, true, true, true, true}, MatrixParam{4, false, true, true, true},
        MatrixParam{4, true, false, true, true}, MatrixParam{4, true, true, false, true},
        MatrixParam{4, true, true, true, false}, MatrixParam{4, false, false, false, false},
        MatrixParam{7, true, true, true, true}, MatrixParam{7, false, false, false, false},
        MatrixParam{10, true, true, true, true}),
    ParamName);

}  // namespace
}  // namespace bft

// Positive fixture for annotation_compile_test: exercises every wrapper and annotation in
// its intended pattern. Must compile warning-free under BOTH GCC (macros expand to nothing)
// and Clang with -Wthread-safety -Werror=thread-safety — if this fails under Clang the
// annotations are producing false positives; if the fail_*.cc siblings COMPILE under Clang,
// the macros are silently expanding to nothing and the whole analysis is off.
#include "src/common/thread_annotations.h"

namespace {

class Annotated {
 public:
  void PlainLock() {
    bft::MutexLock lock(mu_);
    guarded_ = 1;
  }

  void RequiresCallee() BFT_REQUIRES(mu_) { guarded_ = 2; }

  void RequiresCaller() {
    bft::MutexLock lock(mu_);
    RequiresCallee();
  }

  void UnlockRelockToggle() {
    bft::MutexLock lock(mu_);
    guarded_ = 3;
    lock.Unlock();
    // Unguarded work here: touching guarded_ would (correctly) fail the analysis.
    lock.Lock();
    guarded_ = 4;
  }

  void CondVarWait() {
    bft::MutexLock lock(mu_);
    while (guarded_ == 0) {
      cv_.Wait(mu_);
    }
  }

  void SharedReaders() const {
    bft::ReaderMutexLock lock(shared_mu_);
    (void)shared_guarded_;
  }

  void SharedWriter() {
    bft::WriterMutexLock lock(shared_mu_);
    shared_guarded_ = 5;
  }

  void SharedLockedHelper() BFT_REQUIRES_SHARED(shared_mu_) { (void)shared_guarded_; }

  void MustNotHold() BFT_EXCLUDES(mu_) {
    bft::MutexLock lock(mu_);
    guarded_ = 6;
  }

 private:
  bft::Mutex mu_;
  bft::CondVar cv_;
  int guarded_ BFT_GUARDED_BY(mu_) = 0;

  mutable bft::SharedMutex shared_mu_;
  int shared_guarded_ BFT_GUARDED_BY(shared_mu_) = 0;
};

}  // namespace

int main() {
  Annotated a;
  a.PlainLock();
  a.RequiresCaller();
  a.UnlockRelockToggle();
  a.SharedReaders();
  a.SharedWriter();
  a.MustNotHold();
  return 0;
}

// Negative fixture: calls a BFT_REQUIRES(mu_) method without holding mu_. Under Clang with
// -Werror=thread-safety this MUST fail to compile; annotation_compile_test asserts that it
// does, pinning that the macros are not silently expanding to nothing.
#include "src/common/thread_annotations.h"

namespace {

class Annotated {
 public:
  void Locked() BFT_REQUIRES(mu_) { guarded_ = 1; }

  void CallsWithoutLock() {
    Locked();  // BAD: mu_ not held
  }

 private:
  bft::Mutex mu_;
  int guarded_ BFT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Annotated a;
  a.CallsWithoutLock();
  return 0;
}

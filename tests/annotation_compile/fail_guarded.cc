// Negative fixture: writes a BFT_GUARDED_BY(mu_) field with no lock held. Under Clang with
// -Werror=thread-safety this MUST fail to compile.
#include "src/common/thread_annotations.h"

namespace {

class Annotated {
 public:
  void WriteWithoutLock() {
    guarded_ = 1;  // BAD: mu_ not held
  }

 private:
  bft::Mutex mu_;
  int guarded_ BFT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Annotated a;
  a.WriteWithoutLock();
  return 0;
}

# annotation_compile_test driver (cmake -P script, run by ctest).
#
# Asserts the thread-safety annotation macros behave per-compiler:
#   - pass_locked.cc compiles everywhere (GCC: macros expand away; Clang: patterns are clean
#     under -Werror=thread-safety — no false positives from the wrappers).
#   - Under Clang, fail_requires.cc and fail_guarded.cc must FAIL to compile with
#     -Werror=thread-safety. A negative-compile assertion is the only thing that catches the
#     macros silently expanding to nothing (e.g. a broken __has_attribute gate) — every other
#     build would just turn green.
#
# Expected -D inputs: CXX, COMPILER_ID, REPO_ROOT.

if(NOT CXX OR NOT REPO_ROOT)
  message(FATAL_ERROR "usage: cmake -DCXX=... -DCOMPILER_ID=... -DREPO_ROOT=... -P run.cmake")
endif()

set(fixture_dir ${REPO_ROOT}/tests/annotation_compile)
set(base_flags -std=c++20 -I${REPO_ROOT} -fsyntax-only -Wall -Wextra -Werror)
set(tsa_flags -Wthread-safety -Werror=thread-safety)

function(must_compile src)
  execute_process(COMMAND ${CXX} ${base_flags} ${ARGN} ${fixture_dir}/${src}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${src} failed to compile but must:\n${err}")
  endif()
endfunction()

function(must_not_compile src)
  execute_process(COMMAND ${CXX} ${base_flags} ${ARGN} ${fixture_dir}/${src}
                  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR
            "${src} compiled but must NOT — the thread-safety annotations are expanding to "
            "nothing under a compiler that should enforce them")
  endif()
endfunction()

must_compile(pass_locked.cc)

if(COMPILER_ID MATCHES "Clang")
  must_compile(pass_locked.cc ${tsa_flags})
  must_not_compile(fail_requires.cc ${tsa_flags})
  must_not_compile(fail_guarded.cc ${tsa_flags})
  message(STATUS "annotation_compile_test: Clang enforcement verified")
else()
  message(STATUS "annotation_compile_test: ${COMPILER_ID} — macros expand away; "
                 "negative cases verified in the Clang CI lane")
endif()

// Real-clock fault coverage: the FaultTransport decorator in isolation (determinism,
// partitions) and the failure paths the paper actually argues about, exercised on the live
// runtime — a killed primary forcing a real-time view change, and a crashed replica
// rejoining via checkpoint/state transfer with nothing but its node id and key seed.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/common/thread_annotations.h"
#include "src/obs/export.h"
#include "src/runtime/fault_transport.h"
#include "src/runtime/inproc_transport.h"
#include "src/runtime/rt_cluster.h"
#include "src/service/kv_service.h"

namespace bft {
namespace {

// Minimal HTTP/1.0 GET against the AdminServer (loopback), reading the whole response.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// ---- FaultTransport in isolation ---------------------------------------------------------

struct CollectorSink : MessageSink {
  Mutex mu;
  std::vector<Bytes> got BFT_GUARDED_BY(mu);
  void EnqueueMessage(MsgBuffer message) override {
    MutexLock lock(mu);
    got.push_back(message.Copy());
  }
  size_t count() {
    MutexLock lock(mu);
    return got.size();
  }
};

Bytes Payload(int i) {
  std::string s = "datagram-" + std::to_string(i);
  return ToBytes(s);
}

// One seeded single-threaded send schedule; returns the injected-fault log.
std::vector<FaultEvent> RunFaultSchedule(uint64_t seed, size_t* delivered) {
  CollectorSink a;
  CollectorSink b;
  FaultTransport transport(std::make_unique<InProcTransport>(), seed);
  transport.Register(1, &a);
  transport.Register(2, &b);

  FaultSpec spec;
  spec.drop = 0.3;
  spec.corrupt = 0.2;
  spec.duplicate = 0.2;
  spec.reorder = 0.1;
  spec.delay = 200 * kMicrosecond;
  spec.delay_jitter = 300 * kMicrosecond;
  spec.reorder_window = 1 * kMillisecond;
  transport.SetLinkFaults(1, 2, spec);

  for (int i = 0; i < 300; ++i) {
    transport.Send(1, 2, MsgBuffer(Payload(i)));
  }

  // Everything not dropped arrives once (twice when duplicated) — the held-back ones within
  // a couple of reorder windows. Spin until the count stops moving.
  std::vector<FaultEvent> log = transport.FaultLog();
  size_t drops = 0;
  size_t dups = 0;
  for (const FaultEvent& e : log) {
    drops += e.kind == FaultKind::kDrop ? 1 : 0;
    dups += e.kind == FaultKind::kDuplicate ? 1 : 0;
  }
  size_t expect = 300 - drops + dups;
  for (int spins = 0; b.count() < expect && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(b.count(), expect);
  EXPECT_EQ(a.count(), 0u);  // no reverse traffic, no cross-talk
  if (delivered != nullptr) {
    *delivered = b.count();
  }
  transport.Unregister(1);
  transport.Unregister(2);
  return log;
}

TEST(FaultTransportTest, SameSeedSameInjectedFaultLog) {
  size_t delivered1 = 0;
  size_t delivered2 = 0;
  std::vector<FaultEvent> log1 = RunFaultSchedule(7777, &delivered1);
  std::vector<FaultEvent> log2 = RunFaultSchedule(7777, &delivered2);
  ASSERT_FALSE(log1.empty()) << "schedule with these rates cannot be fault-free";
  EXPECT_EQ(log1, log2);
  EXPECT_EQ(delivered1, delivered2);
}

TEST(FaultTransportTest, PartitionCutsBothDirectionsUntilHealed) {
  CollectorSink a;
  CollectorSink b;
  FaultTransport transport(std::make_unique<InProcTransport>(), 1);
  transport.Register(1, &a);
  transport.Register(2, &b);

  transport.Partition({1});
  transport.Send(1, 2, MsgBuffer(Payload(0)));
  transport.Send(2, 1, MsgBuffer(Payload(1)));
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(b.count(), 0u);
  std::vector<FaultEvent> log = transport.FaultLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].kind, FaultKind::kPartition);
  EXPECT_EQ(log[1].kind, FaultKind::kPartition);

  transport.Heal();
  transport.Send(1, 2, MsgBuffer(Payload(2)));
  transport.Send(2, 1, MsgBuffer(Payload(3)));
  // InProcTransport delivers synchronously on the sending thread.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 1u);

  transport.Unregister(1);
  transport.Unregister(2);
}

TEST(FaultTransportTest, TotalDropDeliversNothing) {
  CollectorSink b;
  FaultTransport transport(std::make_unique<InProcTransport>(), 1);
  transport.Register(2, &b);
  FaultSpec spec;
  spec.drop = 1.0;
  transport.SetDefaultFaults(spec);
  for (int i = 0; i < 50; ++i) {
    transport.Send(1, 2, MsgBuffer(Payload(i)));
  }
  EXPECT_EQ(b.count(), 0u);
  transport.ClearFaults();
  transport.Send(1, 2, MsgBuffer(Payload(50)));
  EXPECT_EQ(b.count(), 1u);
  transport.Unregister(2);
}

// ---- Live-runtime failure paths ----------------------------------------------------------

TEST(RtFaultTest, PrimaryCrashTriggersRealClockViewChange) {
  RtClusterOptions options;
  options.config.n = 4;
  options.config.state_pages = 64;
  // A second of view-change timeout with a 50 ms client retry base: the client visibly
  // re-probes several times (counted as view probes) before the new view forms.
  options.config.view_change_timeout = 1 * kSecond;
  options.config.max_view_change_timeout = 30 * kSecond;
  options.seed = 81;
  options.transport = RtClusterOptions::TransportKind::kInProc;
  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();
  ClientConfig cc;
  cc.retry_timeout = 50 * kMillisecond;
  cc.max_retry_timeout = 1 * kSecond;
  cc.retry_jitter = 1 * kMillisecond;
  client->set_client_config(cc);
  cluster.Start();

  for (int i = 0; i < 3; ++i) {
    std::optional<Bytes> put = cluster.Execute(
        client, KvService::PutOp(ToBytes("warm-" + std::to_string(i)), ToBytes("v")),
        /*read_only=*/false, 30 * kSecond);
    ASSERT_TRUE(put.has_value());
  }

  cluster.CrashReplica(0);  // the view-0 primary
  EXPECT_FALSE(cluster.replica_running(0));

  // Every op must still certify: the client's broadcast retransmissions make the backups
  // relay to the (dead) primary, their timers expire, and replica 1 becomes primary.
  for (int i = 0; i < 5; ++i) {
    std::optional<Bytes> put = cluster.Execute(
        client, KvService::PutOp(ToBytes("post-" + std::to_string(i)), ToBytes("v")),
        /*read_only=*/false, 60 * kSecond);
    ASSERT_TRUE(put.has_value()) << "op " << i << " after primary crash";
    EXPECT_EQ(ToString(*put), "ok");
  }

  View view = 0;
  Replica* r1 = cluster.replica(1);
  cluster.RunOn(1, [&view, r1]() { view = r1->view(); });
  EXPECT_GE(view, 1u) << "surviving replicas must have left the dead primary's view";
  EXPECT_GE(client->stats().retransmissions, 1u);
  EXPECT_GE(client->stats().view_probes, 1u);
  cluster.Stop();
}

TEST(RtFaultTest, RestartedReplicaRejoinsViaStateTransfer) {
  RtClusterOptions options;
  options.config.n = 4;
  options.config.state_pages = 64;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  // Generous fault timers: this test is about rejoin, not view changes, and a spurious
  // view change on a loaded CI machine would only add noise.
  options.config.view_change_timeout = 10 * kSecond;
  options.config.max_view_change_timeout = 60 * kSecond;
  options.seed = 82;
  options.transport = RtClusterOptions::TransportKind::kInProc;
  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();
  cluster.Start();

  auto put = [&](int i) {
    std::optional<Bytes> r = cluster.Execute(
        client, KvService::PutOp(ToBytes("key-" + std::to_string(i % 16)),
                                 ToBytes("value-" + std::to_string(i))),
        /*read_only=*/false, 30 * kSecond);
    ASSERT_TRUE(r.has_value()) << "PUT " << i;
    EXPECT_EQ(ToString(*r), "ok");
  };

  for (int i = 0; i < 4; ++i) {
    put(i);
  }

  // The /healthz surface over the live cluster: collected via RunOn on each replica's loop,
  // served by the AdminServer's accept thread — the exact bft_node --admin-port wiring.
  MetricsRegistry admin_metrics;
  AdminServer admin(&admin_metrics, nullptr);
  admin.SetHealthSource([&cluster]() { return cluster.Health(); });
  ASSERT_TRUE(admin.Listen(0));
  std::string body = HttpGet(admin.port(), "/healthz");
  EXPECT_NE(body.find("200"), std::string::npos);
  EXPECT_NE(body.find("\"status\": \"ok\""), std::string::npos) << body;

  cluster.CrashReplica(3);
  // Mid-outage the endpoint must report the degradation and name the down replica.
  body = HttpGet(admin.port(), "/healthz");
  EXPECT_NE(body.find("\"status\": \"degraded\""), std::string::npos) << body;
  EXPECT_NE(body.find("down"), std::string::npos) << body;
  EXPECT_NE(body.find("\"running\": false"), std::string::npos) << body;
  // 40 more ops with one replica down: f=1 tolerance keeps the group live, and the stable
  // checkpoint advances far past the dead replica's log (seq 44 >> log_size 16), so a bare
  // retransmission can never catch it up — only state transfer can.
  for (int i = 4; i < 44; ++i) {
    put(i);
  }

  cluster.RestartReplica(3);
  ASSERT_TRUE(cluster.replica_running(3));

  // The restarted replica comes back at view 0 with empty state; the status exchange gets it
  // the group's checkpoint certificate and state transfer fetches the pages.
  SeqNo caught_up = 0;
  uint64_t transfers = 0;
  uint64_t pages = 0;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    Replica* r3 = cluster.replica(3);
    cluster.RunOn(3, [&, r3]() {
      caught_up = r3->last_executed();
      transfers = r3->stats().state_transfers;
      pages = r3->stats().pages_fetched;
    });
    if (caught_up >= 40) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(caught_up, 40u) << "restarted replica never caught up to the stable checkpoint";
  EXPECT_GE(transfers, 1u) << "rejoin must have gone through state transfer";
  EXPECT_GT(pages, 0u);

  // And it keeps participating: after a few more certified ops it tracks the head of the
  // sequence, not just the fetched checkpoint.
  for (int i = 44; i < 47; ++i) {
    put(i);
  }
  // Both the rejoined replica and an always-live one must reach the head (the last commit
  // deliveries race the client's certificate, so poll rather than assert instantly).
  SeqNo head3 = 0;
  SeqNo head1 = 0;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    Replica* r3 = cluster.replica(3);
    cluster.RunOn(3, [&head3, r3]() { head3 = r3->last_executed(); });
    Replica* r1_live = cluster.replica(1);
    cluster.RunOn(1, [&head1, r1_live]() { head1 = r1_live->last_executed(); });
    if (head3 >= 47 && head1 >= 47) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(head3, 47u) << "rejoined replica stopped executing after state transfer";
  EXPECT_GE(head1, 47u);

  // Recovery is visible on /healthz too: once the rejoined replica is back in the active
  // view with state transfer finished, the verdict returns to ok. Poll — the final
  // transfer bookkeeping races the head check above.
  bool healthy = false;
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    body = HttpGet(admin.port(), "/healthz");
    if (body.find("\"status\": \"ok\"") != std::string::npos) {
      healthy = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(healthy) << "cluster never returned to ok after rejoin: " << body;

  admin.Stop();
  cluster.Stop();
  // Loops joined: compare the rejoined replica's state bytes against a replica that never
  // crashed, at identical last_executed — divergence here is a safety violation.
  Replica* r3 = cluster.replica(3);
  Replica* r1 = cluster.replica(1);
  ASSERT_EQ(r3->last_executed(), r1->last_executed());
  EXPECT_EQ(Bytes(r3->state().data(), r3->state().data() + r3->state().size_bytes()),
            Bytes(r1->state().data(), r1->state().data() + r1->state().size_bytes()));
}

}  // namespace
}  // namespace bft

// Tests for the discrete-event simulator and the unreliable network substrate.
#include <gtest/gtest.h>

#include "src/sim/node.h"

namespace bft {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.Schedule(30, [&order]() { order.push_back(3); });
  sim.Schedule(10, [&order]() { order.push_back(1); });
  sim.Schedule(20, [&order]() { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, SameTimeEventsRunInScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i]() { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(1);
  bool ran = false;
  auto id = sim.Schedule(10, [&ran]() { ran = true; });
  sim.Cancel(id);
  sim.RunAll();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim(1);
  auto id = sim.Schedule(10, []() {});
  sim.RunAll();
  sim.Cancel(id);  // must not crash or cancel someone else
  sim.Schedule(5, []() {});
  EXPECT_EQ(sim.RunAll(), 1u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim(1);
  int count = 0;
  sim.Schedule(10, [&count]() { ++count; });
  sim.Schedule(20, [&count]() { ++count; });
  sim.RunUntil(15);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.Now(), 15u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim(1);
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 5) {
      sim.Schedule(1, recurse);
    }
  };
  sim.Schedule(1, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    uint64_t acc = 0;
    for (int i = 0; i < 100; ++i) {
      sim.Schedule(sim.rng().Below(1000), [&acc, &sim]() { acc = acc * 31 + sim.Now(); });
    }
    sim.RunAll();
    return acc;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(CpuMeterTest, BacklogDelaysNextEvent) {
  CpuMeter cpu;
  cpu.BeginEvent(100);
  cpu.Charge(50);
  cpu.EndEvent();
  EXPECT_EQ(cpu.busy_until(), 150u);
  // An event arriving at t=120 starts at 150 (the node is still busy).
  cpu.BeginEvent(120);
  EXPECT_EQ(cpu.cursor(), 150u);
  cpu.Charge(10);
  cpu.EndEvent();
  EXPECT_EQ(cpu.busy_until(), 160u);
  EXPECT_EQ(cpu.total_busy(), 60u);
}

// A sim-backed Endpoint that records everything delivered to it.
class EchoNode {
 public:
  EchoNode(Simulator* sim, Network* net, NodeId id) : node(sim, net, id) {
    node.SetHandler([this](MsgBuffer message) { received.push_back(message.Copy()); });
  }
  void Send(NodeId dst, Bytes msg) { node.Send(dst, std::move(msg)); }
  void Cast(const std::vector<NodeId>& dsts, const Bytes& msg) { node.Multicast(dsts, msg); }

  Node node;
  std::vector<Bytes> received;
};

struct NetFixture {
  NetFixture() : sim(3), net(&sim, NetworkOptions{}) {
    for (NodeId i = 0; i < 4; ++i) {
      nodes.push_back(std::make_unique<EchoNode>(&sim, &net, i));
    }
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<EchoNode>> nodes;
};

TEST(NetworkTest, PointToPointDelivery) {
  NetFixture f;
  f.nodes[0]->Send(1, ToBytes("hello"));
  f.sim.RunAll();
  ASSERT_EQ(f.nodes[1]->received.size(), 1u);
  EXPECT_EQ(ToString(f.nodes[1]->received[0]), "hello");
  EXPECT_TRUE(f.nodes[2]->received.empty());
}

TEST(NetworkTest, MulticastReachesAllButSender) {
  NetFixture f;
  f.nodes[0]->Cast({0, 1, 2, 3}, ToBytes("mc"));
  f.sim.RunAll();
  EXPECT_TRUE(f.nodes[0]->received.empty());
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(f.nodes[static_cast<size_t>(i)]->received.size(), 1u);
  }
}

TEST(NetworkTest, WireLatencyGrowsWithSize) {
  NetworkOptions options;
  EXPECT_GT(options.WireLatency(8192), options.WireLatency(64));
}

TEST(NetworkTest, DropProbabilityOneLosesEverything) {
  NetFixture f;
  f.net.SetDropProbability(1.0);
  for (int i = 0; i < 10; ++i) {
    f.nodes[0]->Send(1, ToBytes("x"));
  }
  f.sim.RunAll();
  EXPECT_TRUE(f.nodes[1]->received.empty());
}

TEST(NetworkTest, PartitionBlocksCrossTraffic) {
  NetFixture f;
  f.net.Partition({0, 1});
  f.nodes[0]->Send(1, ToBytes("in-group"));
  f.nodes[0]->Send(2, ToBytes("cross"));
  f.sim.RunAll();
  EXPECT_EQ(f.nodes[1]->received.size(), 1u);
  EXPECT_TRUE(f.nodes[2]->received.empty());

  f.net.HealPartition();
  f.nodes[0]->Send(2, ToBytes("cross2"));
  f.sim.RunAll();
  EXPECT_EQ(f.nodes[2]->received.size(), 1u);
}

TEST(NetworkTest, DownNodeReceivesNothingAndSendsNothing) {
  NetFixture f;
  f.net.SetNodeDown(2, true);
  f.nodes[0]->Send(2, ToBytes("to-down"));
  f.nodes[2]->Send(0, ToBytes("from-down"));
  f.sim.RunAll();
  EXPECT_TRUE(f.nodes[2]->received.empty());
  EXPECT_TRUE(f.nodes[0]->received.empty());
}

TEST(NetworkTest, BlockedLinkIsUnidirectional) {
  NetFixture f;
  f.net.SetLinkBlocked(0, 1, true);
  f.nodes[0]->Send(1, ToBytes("blocked"));
  f.nodes[1]->Send(0, ToBytes("open"));
  f.sim.RunAll();
  EXPECT_TRUE(f.nodes[1]->received.empty());
  EXPECT_EQ(f.nodes[0]->received.size(), 1u);
}

TEST(NetworkTest, ByzantineFilterCanDropSelectively) {
  NetFixture f;
  f.net.SetFilter([](NodeId src, NodeId dst, const Bytes& msg) {
    return dst == 3 ? Network::FilterAction::kDrop : Network::FilterAction::kDeliver;
  });
  f.nodes[0]->Cast({0, 1, 2, 3}, ToBytes("mc"));
  f.sim.RunAll();
  EXPECT_EQ(f.nodes[1]->received.size(), 1u);
  EXPECT_EQ(f.nodes[2]->received.size(), 1u);
  EXPECT_TRUE(f.nodes[3]->received.empty());
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  Simulator sim(4);
  NetworkOptions options;
  options.duplicate_probability = 1.0;
  Network net(&sim, options);
  EchoNode a(&sim, &net, 0);
  EchoNode b(&sim, &net, 1);
  a.Send(1, ToBytes("dup"));
  sim.RunAll();
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(NetworkTest, InFlightMessageToUnregisteredNodeDropped) {
  Simulator sim(4);
  Network net(&sim, NetworkOptions{});
  EchoNode a(&sim, &net, 0);
  {
    EchoNode b(&sim, &net, 1);
    a.Send(1, ToBytes("late"));
    // b destroyed (unregistered) before delivery
  }
  sim.RunAll();  // must not crash
}

}  // namespace
}  // namespace bft

// Tests for authenticators, point-to-point MACs, signatures-as-auth, and key epochs.
#include <gtest/gtest.h>

#include "src/core/auth.h"

namespace bft {
namespace {

struct AuthFixture {
  AuthFixture() {
    config.n = 4;
    for (NodeId i = 0; i < 4; ++i) {
      contexts.push_back(std::make_unique<AuthContext>(i, &config, &model, &directory,
                                                       directory.Generate(i, 100 + i)));
    }
    client = std::make_unique<AuthContext>(kClientIdBase, &config, &model, &directory,
                                           directory.Generate(kClientIdBase, 999));
  }
  ReplicaConfig config;
  PerfModel model;
  PublicKeyDirectory directory;
  std::vector<std::unique_ptr<AuthContext>> contexts;
  std::unique_ptr<AuthContext> client;
};

TEST(AuthTest, AuthenticatorVerifiesAtEveryReplica) {
  AuthFixture f;
  Bytes content = ToBytes("header-bytes");
  Bytes auth = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  EXPECT_EQ(auth.size(), 4 * MacTag::kSize);
  for (NodeId j = 1; j < 4; ++j) {
    EXPECT_TRUE(f.contexts[j]->VerifyAuthenticator(0, content, auth, nullptr)) << j;
  }
}

TEST(AuthTest, AuthenticatorRejectsWrongSenderOrContent) {
  AuthFixture f;
  Bytes content = ToBytes("header-bytes");
  Bytes auth = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  EXPECT_FALSE(f.contexts[1]->VerifyAuthenticator(2, content, auth, nullptr));
  EXPECT_FALSE(f.contexts[1]->VerifyAuthenticator(0, ToBytes("other"), auth, nullptr));
  Bytes tampered = auth;
  tampered[8] ^= 1;  // replica 1's slot
  EXPECT_FALSE(f.contexts[1]->VerifyAuthenticator(0, content, tampered, nullptr));
}

TEST(AuthTest, CorruptSlotOnlyAffectsThatReplica) {
  // The paper's Section 3.2.2 problem: an authenticator can be valid for some replicas and
  // invalid for others.
  AuthFixture f;
  Bytes content = ToBytes("header");
  Bytes auth = f.client->GenerateAuthenticator(content, nullptr);
  auth[2 * MacTag::kSize] ^= 0xff;  // corrupt replica 2's slot
  EXPECT_TRUE(f.contexts[1]->VerifyAuthenticator(kClientIdBase, content, auth, nullptr));
  EXPECT_FALSE(f.contexts[2]->VerifyAuthenticator(kClientIdBase, content, auth, nullptr));
  EXPECT_TRUE(f.contexts[3]->VerifyAuthenticator(kClientIdBase, content, auth, nullptr));
}

TEST(AuthTest, PointToPointMac) {
  AuthFixture f;
  Bytes content = ToBytes("reply-header");
  Bytes mac = f.contexts[2]->GenerateMac(kClientIdBase, content, nullptr);
  EXPECT_EQ(mac.size(), MacTag::kSize);
  EXPECT_TRUE(f.client->VerifyMac(2, content, mac, nullptr));
  EXPECT_FALSE(f.client->VerifyMac(3, content, mac, nullptr));
}

TEST(AuthTest, EpochBumpInvalidatesOldMacsUntilPeerLearns) {
  AuthFixture f;
  Bytes content = ToBytes("msg");
  Bytes auth = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  // Replica 1 refreshes its incoming keys (new-key message, Section 4.3.1).
  f.contexts[1]->BumpMyEpoch();
  EXPECT_FALSE(f.contexts[1]->VerifyAuthenticator(0, content, auth, nullptr))
      << "stale-epoch MAC must be rejected";
  // Once the sender learns the new epoch, fresh messages verify again.
  EXPECT_TRUE(f.contexts[0]->SetPeerEpoch(1, 1));
  Bytes fresh = f.contexts[0]->GenerateAuthenticator(content, nullptr);
  EXPECT_TRUE(f.contexts[1]->VerifyAuthenticator(0, content, fresh, nullptr));
}

TEST(AuthTest, EpochMonotonicity) {
  AuthFixture f;
  EXPECT_TRUE(f.contexts[0]->SetPeerEpoch(1, 3));
  EXPECT_FALSE(f.contexts[0]->SetPeerEpoch(1, 3));  // replay
  EXPECT_FALSE(f.contexts[0]->SetPeerEpoch(1, 2));  // stale
  EXPECT_TRUE(f.contexts[0]->SetPeerEpoch(1, 4));
}

TEST(AuthTest, SignatureModeDispatch) {
  AuthFixture f;
  f.config.auth_mode = AuthMode::kSignature;
  Bytes content = ToBytes("signed-header");
  Bytes sig = f.contexts[0]->GenAuthMulticast(content, nullptr);
  EXPECT_EQ(sig.size(), Signature::kSize);
  EXPECT_TRUE(f.contexts[1]->VerifyAuthMulticast(0, content, sig, nullptr));
  EXPECT_FALSE(f.contexts[1]->VerifyAuthMulticast(2, content, sig, nullptr));
}

TEST(AuthTest, CostChargingMatchesModel) {
  AuthFixture f;
  Bytes content(48, 1);
  CpuMeter cpu;
  cpu.BeginEvent(0);
  f.contexts[0]->GenerateAuthenticator(content, &cpu);
  // n-1 = 3 MACs for a replica's multicast.
  EXPECT_EQ(cpu.total_busy(), 3 * f.model.MacCost(content.size()));

  CpuMeter cpu2;
  cpu2.BeginEvent(0);
  f.contexts[0]->GenerateSignature(content, &cpu2);
  EXPECT_EQ(cpu2.total_busy(), f.model.SignCost());
  EXPECT_GT(f.model.SignCost(), 1000 * f.model.MacCost(content.size()))
      << "the BFT-PK vs BFT gap must be ~3 orders of magnitude";
}

}  // namespace
}  // namespace bft

// Proactive recovery tests (Chapter 4): key refreshment, estimation, recovery requests,
// state checking, and continued service during recoveries.
#include <gtest/gtest.h>

#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions RecoveryCluster(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 4;
  options.config.log_size = 8;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  options.config.proactive_recovery = true;
  options.config.watchdog_period = 3600 * kSecond;  // tests trigger recovery explicitly
  options.config.key_refresh_period = 3600 * kSecond;
  options.config.recovery_reboot_time = 200 * kMillisecond;
  return options;
}

ServiceFactory CounterFactory() {
  return [](NodeId) { return std::make_unique<CounterService>(); };
}

// Runs client traffic until `pred` holds, failing the test on an op failure.
void PumpUntil(Cluster& cluster, Client* client, const std::function<bool()>& pred,
               int max_ops = 200) {
  for (int i = 0; i < max_ops && !pred(); ++i) {
    ASSERT_TRUE(
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond).has_value())
        << "op " << i << " failed during recovery";
    cluster.sim().RunFor(100 * kMillisecond);
  }
  EXPECT_TRUE(pred());
}

TEST(RecoveryTest, BackupRecoversWhileServiceRuns) {
  Cluster cluster(RecoveryCluster(41), CounterFactory());
  Client* client = cluster.AddClient();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }

  cluster.replica(2)->StartRecovery();
  PumpUntil(cluster, client,
            [&cluster]() { return cluster.replica(2)->stats().recoveries >= 1; });
  EXPECT_GT(cluster.replica(2)->stats().last_recovery_duration, 0u);
}

TEST(RecoveryTest, PrimaryRecoveryTriggersViewChange) {
  Cluster cluster(RecoveryCluster(42), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  cluster.replica(0)->StartRecovery();  // the view-0 primary
  PumpUntil(cluster, client,
            [&cluster]() { return cluster.replica(0)->stats().recoveries >= 1; });
  EXPECT_GE(cluster.replica(1)->view(), 1u) << "recovering primary should hand off leadership";
}

TEST(RecoveryTest, CorruptedStateIsDetectedAndRepaired) {
  Cluster cluster(RecoveryCluster(43), CounterFactory());
  Client* client = cluster.AddClient();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  cluster.sim().RunFor(kSecond);

  // An attacker scribbles over replica 2's memory without going through the protocol.
  cluster.replica(2)->CorruptStatePages(4);
  cluster.replica(2)->StartRecovery();
  PumpUntil(cluster, client,
            [&cluster]() { return cluster.replica(2)->stats().recoveries >= 1; });

  EXPECT_GT(cluster.replica(2)->stats().pages_fetched, 0u)
      << "state checking failed to detect the corruption";
  // The repaired replica must agree with the group.
  uint64_t v2 = 0;
  uint64_t v0 = 0;
  cluster.replica(2)->state().Read(0, sizeof(v2), reinterpret_cast<uint8_t*>(&v2));
  cluster.replica(0)->state().Read(0, sizeof(v0), reinterpret_cast<uint8_t*>(&v0));
  EXPECT_EQ(v2, v0);
}

TEST(RecoveryTest, KeyRefreshmentDoesNotDisruptService) {
  ClusterOptions options = RecoveryCluster(44);
  options.config.key_refresh_period = 500 * kMillisecond;  // aggressive refresh
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 20; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value()) << "op " << i;
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
    cluster.sim().RunFor(100 * kMillisecond);
  }
}

TEST(RecoveryTest, StaggeredWatchdogRecoveriesKeepServiceLive) {
  ClusterOptions options = RecoveryCluster(45);
  options.config.watchdog_period = 20 * kSecond;  // all replicas recover within the test
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();

  uint64_t expected = 0;
  for (int round = 0; round < 60; ++round) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value()) << "round " << round;
    EXPECT_EQ(CounterService::DecodeValue(*result), ++expected);
    cluster.sim().RunFor(kSecond);
  }
  uint64_t total_recoveries = 0;
  for (int r = 0; r < 4; ++r) {
    total_recoveries += cluster.replica(r)->stats().recoveries;
  }
  EXPECT_GE(total_recoveries, 2u) << "watchdogs never fired";
}

TEST(RecoveryTest, RecoveryRefreshesSessionKeys) {
  Cluster cluster(RecoveryCluster(46), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());

  uint64_t epoch_before = cluster.replica(2)->auth().my_epoch();
  cluster.replica(2)->StartRecovery();
  PumpUntil(cluster, client,
            [&cluster]() { return cluster.replica(2)->stats().recoveries >= 1; });
  EXPECT_GT(cluster.replica(2)->auth().my_epoch(), epoch_before);
  // Other replicas refreshed too (triggered by executing the recovery request).
  EXPECT_GT(cluster.replica(1)->auth().my_epoch(), 0u);
}

}  // namespace
}  // namespace bft

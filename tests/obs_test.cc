// Observability subsystem tests: histogram bucketing, the shared percentile helper,
// exact protocol-counter values on a deterministic simulation, request-tracer timelines on
// the simulator, and the Prometheus text round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/null_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

TEST(HistogramTest, BucketIndexRoundTrip) {
  std::vector<uint64_t> values = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 4095, 4096};
  for (uint64_t e = 2; e < 63; ++e) {
    values.push_back((uint64_t{1} << e) - 1);
    values.push_back(uint64_t{1} << e);
    values.push_back((uint64_t{1} << e) + 1);
  }
  for (uint64_t v : values) {
    int index = Histogram::BucketIndex(v);
    ASSERT_GE(index, 0) << v;
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    // The value lands at or below its bucket's inclusive upper bound, and above the
    // previous bucket's bound — i.e., BucketIndex and BucketUpperBound agree.
    EXPECT_LE(v, Histogram::BucketUpperBound(index)) << v;
    if (index > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(index - 1)) << v;
    }
  }
}

TEST(HistogramTest, RecordCountSumPercentile) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Log-linear buckets hold their values within ~25% of the bound (2 significant bits).
  uint64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 640u);
  uint64_t p99 = h.Percentile(99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1280u);
  EXPECT_EQ(Histogram().Percentile(99), 0u) << "empty histogram";
}

// PercentileOf replaced two open-coded implementations (bench_runtime's sorted-index p50/p99
// and closed_loop's Percentile99); the deterministic benches' byte-identity depends on it
// computing exactly the same element.
TEST(PercentileOfTest, MatchesTheLegacySortedIndexFormulas) {
  uint64_t state = 0x123456789abcdefULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t size = 1; size <= 200; ++size) {
    std::vector<uint64_t> samples;
    samples.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      samples.push_back(next() % 10000);
    }
    std::vector<uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    std::vector<uint64_t> work = samples;
    EXPECT_EQ(PercentileOf(work, 50), sorted[size / 2]) << "size " << size;
    work = samples;
    EXPECT_EQ(PercentileOf(work, 99), sorted[std::min(size - 1, size * 99 / 100)])
        << "size " << size;
  }
  std::vector<uint64_t> empty;
  EXPECT_EQ(PercentileOf(empty, 99), 0u);
}

ClusterOptions QuietOptions() {
  ClusterOptions options;
  options.config.n = 4;
  options.config.state_pages = 16;
  // No periodic status traffic and no view-change risk inside the run: every message the
  // counters see is a direct consequence of the ten operations, making the expected values
  // exact rather than lower bounds.
  options.config.status_interval = 100 * kSecond;
  options.config.view_change_timeout = 100 * kSecond;
  options.config.max_view_change_timeout = 200 * kSecond;
  options.seed = 99;
  return options;
}

// The protocol's message complexity, pinned exactly: for B single-request batches on a
// quiet four-replica group (f = 1), every backup receives 2f prepares per batch, every
// replica receives n-1 commits per batch, and each backup receives exactly one pre-prepare.
TEST(ObsSimTest, ProtocolCountersMatchTheoreticalCounts) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();

  constexpr uint64_t kOps = 10;
  for (uint64_t i = 0; i < kOps; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0));
    ASSERT_TRUE(result.has_value()) << "op " << i;
  }
  // The client certifies from 2f+1 tentative replies, which can precede the last commit
  // deliveries; drain so every sent message is consumed before counting.
  cluster.sim().RunFor(2 * kSecond);

  MetricsRegistry& m = cluster.metrics();
  const int n = cluster.config().n;
  const uint64_t f = 1;
  for (int i = 0; i < n; ++i) {
    std::string node = "node=\"" + std::to_string(i) + "\"";
    bool is_primary = i == 0;  // view 0 held for the whole run (asserted below)
    EXPECT_EQ(m.GetGauge("bft_view", node)->value(), 0) << "replica " << i;
    EXPECT_EQ(m.GetCounter("bft_batches_executed_total", node)->value(), kOps);
    EXPECT_EQ(m.GetCounter("bft_requests_executed_total", node)->value(), kOps);
    EXPECT_EQ(m.GetGauge("bft_last_executed", node)->value(),
              static_cast<int64_t>(kOps));
    EXPECT_EQ(m.GetHistogram("bft_batch_size", node)->count(), kOps);
    EXPECT_EQ(m.GetHistogram("bft_batch_size", node)->sum(), kOps) << "all batches size 1";

    auto in = [&m, &node](const char* type) {
      return m.GetCounter("bft_messages_in_total", node + ",type=\"" + type + "\"")->value();
    };
    auto out = [&m, &node](const char* type) {
      return m.GetCounter("bft_messages_out_total", node + ",type=\"" + type + "\"")->value();
    };
    if (is_primary) {
      EXPECT_EQ(in("request"), kOps);
      EXPECT_EQ(out("pre_prepare"), kOps);
      EXPECT_EQ(in("prepare"), static_cast<uint64_t>(n - 1) * kOps)
          << "primary hears every backup's prepare";
      EXPECT_EQ(out("prepare"), 0u) << "the primary's pre-prepare acts as its prepare";
    } else {
      EXPECT_EQ(in("pre_prepare"), kOps);
      EXPECT_EQ(out("pre_prepare"), 0u);
      EXPECT_EQ(in("prepare"), 2 * f * kOps) << "prepares from the other 2f backups";
      EXPECT_EQ(out("prepare"), kOps);
    }
    EXPECT_EQ(in("commit"), static_cast<uint64_t>(n - 1) * kOps) << "replica " << i;
    EXPECT_EQ(out("commit"), kOps);
    EXPECT_EQ(m.GetCounter("bft_messages_undecodable_total", node)->value(), 0u);
    EXPECT_EQ(m.GetCounter("bft_auth_rejected_total", node)->value(), 0u);
    EXPECT_EQ(m.GetCounter("bft_view_changes_started_total", node)->value(), 0u);
  }

  // The client-side view of the same run, and the MAC session cache surfaced at run time:
  // after each pair derives its key once, steady-state authentication is all cache hits.
  std::string c = "client=\"" + std::to_string(client->id()) + "\"";
  EXPECT_EQ(m.GetCounter("bft_client_ops_total", c)->value(), kOps);
  EXPECT_EQ(m.GetCounter("bft_client_retransmissions_total", c)->value(), 0u);
  EXPECT_EQ(m.GetHistogram("bft_client_latency_us", c)->count(), kOps);
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(cluster.replica(i)->auth().mac_cache_hits(),
              cluster.replica(i)->auth().mac_cache_misses())
        << "replica " << i;
  }
}

// Same schema on the simulator as on the real-clock runtime (the runtime half lives in
// udp_smoke_test): full sampling yields one complete, monotonic six-phase timeline per
// ordered operation.
TEST(ObsSimTest, TracerYieldsCompleteMonotonicTimelines) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  cluster.tracer().set_sample_every(1);
  Client* client = cluster.AddClient();

  constexpr uint64_t kOps = 5;
  for (uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0)).has_value());
  }
  cluster.sim().RunFor(2 * kSecond);

  std::vector<TraceTimeline> traces = cluster.tracer().Completed();
  ASSERT_EQ(traces.size(), kOps);
  for (const TraceTimeline& tl : traces) {
    EXPECT_EQ(tl.client, client->id());
    EXPECT_TRUE(tl.complete()) << "ts " << tl.timestamp;
    EXPECT_TRUE(tl.monotonic()) << "ts " << tl.timestamp;
    EXPECT_GT(tl.total(), 0) << "sim latency is modeled, never zero";
  }
  EXPECT_TRUE(cluster.tracer().Active().empty()) << "every timeline retired";

  // The JSON rendering carries every phase of every retired timeline.
  std::string json = cluster.tracer().RenderJson();
  for (int p = 0; p < kNumTracePhases; ++p) {
    EXPECT_NE(json.find(TracePhaseName(static_cast<TracePhase>(p))), std::string::npos);
  }
}

// Sampling off (the default) must keep the tracer entirely passive — this is what the
// deterministic benches rely on to stay byte-identical with tracing compiled in.
TEST(ObsSimTest, SamplingOffRecordsNothing) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  ASSERT_TRUE(
      cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0)).has_value());
  EXPECT_EQ(cluster.tracer().completed_count(), 0u);
  EXPECT_TRUE(cluster.tracer().Active().empty());
}

TEST(PrometheusTest, TextExpositionRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("bft_test_ops_total", "node=\"1\"")->Inc(42);
  registry.GetCounter("bft_test_ops_total", "node=\"2\"")->Inc(7);
  registry.GetGauge("bft_test_view")->Set(-3);
  Histogram* h = registry.GetHistogram("bft_test_latency");
  h->Record(1);
  h->Record(100);
  registry.RegisterProbe("bft_test_probe", "src=\"auth\"", []() { return uint64_t{13}; });

  std::string text = registry.RenderPrometheusText();

  // Parse it back: every non-comment line is `name{labels} value` or `name value`.
  uint64_t ops_1 = 0;
  uint64_t ops_2 = 0;
  int64_t view = 1;
  uint64_t probe = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  uint64_t inf_bucket = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (series == "bft_test_ops_total{node=\"1\"}") {
      ops_1 = std::stoull(value);
    } else if (series == "bft_test_ops_total{node=\"2\"}") {
      ops_2 = std::stoull(value);
    } else if (series == "bft_test_view") {
      view = std::stoll(value);
    } else if (series == "bft_test_probe{src=\"auth\"}") {
      probe = std::stoull(value);
    } else if (series == "bft_test_latency_count") {
      hist_count = std::stoull(value);
    } else if (series == "bft_test_latency_sum") {
      hist_sum = std::stoull(value);
    } else if (series == "bft_test_latency_bucket{le=\"+Inf\"}") {
      inf_bucket = std::stoull(value);
    }
  }
  EXPECT_EQ(ops_1, 42u);
  EXPECT_EQ(ops_2, 7u);
  EXPECT_EQ(view, -3);
  EXPECT_EQ(probe, 13u);
  EXPECT_EQ(hist_count, 2u);
  EXPECT_EQ(hist_sum, 101u);
  EXPECT_EQ(inf_bucket, 2u) << "+Inf bucket is cumulative over all records";
  EXPECT_NE(text.find("# TYPE bft_test_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bft_test_view gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bft_test_latency histogram"), std::string::npos);

  // The JSON export draws from the same registry walk. Label-value quotes inside the
  // series id are JSON-escaped, so the key reads bft_test_ops_total{node=\"1\"}.
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("bft_test_ops_total{node=\\\"1\\\"}"), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
  std::string combined = MetricsAndTracesJson(registry, nullptr);
  EXPECT_NE(combined.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace bft

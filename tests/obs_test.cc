// Observability subsystem tests: histogram bucketing, the shared percentile helper,
// exact protocol-counter values on a deterministic simulation, request-tracer timelines on
// the simulator, and the Prometheus text round trip.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/null_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

TEST(HistogramTest, BucketIndexRoundTrip) {
  std::vector<uint64_t> values = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 4095, 4096};
  for (uint64_t e = 2; e < 63; ++e) {
    values.push_back((uint64_t{1} << e) - 1);
    values.push_back(uint64_t{1} << e);
    values.push_back((uint64_t{1} << e) + 1);
  }
  for (uint64_t v : values) {
    int index = Histogram::BucketIndex(v);
    ASSERT_GE(index, 0) << v;
    ASSERT_LT(index, Histogram::kNumBuckets) << v;
    // The value lands at or below its bucket's inclusive upper bound, and above the
    // previous bucket's bound — i.e., BucketIndex and BucketUpperBound agree.
    EXPECT_LE(v, Histogram::BucketUpperBound(index)) << v;
    if (index > 0) {
      EXPECT_GT(v, Histogram::BucketUpperBound(index - 1)) << v;
    }
  }
}

TEST(HistogramTest, RecordCountSumPercentile) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Log-linear buckets hold their values within ~25% of the bound (2 significant bits).
  uint64_t p50 = h.Percentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 640u);
  uint64_t p99 = h.Percentile(99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1280u);
  EXPECT_EQ(Histogram().Percentile(99), 0u) << "empty histogram";
}

// PercentileOf replaced two open-coded implementations (bench_runtime's sorted-index p50/p99
// and closed_loop's Percentile99); the deterministic benches' byte-identity depends on it
// computing exactly the same element.
TEST(PercentileOfTest, MatchesTheLegacySortedIndexFormulas) {
  uint64_t state = 0x123456789abcdefULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (size_t size = 1; size <= 200; ++size) {
    std::vector<uint64_t> samples;
    samples.reserve(size);
    for (size_t i = 0; i < size; ++i) {
      samples.push_back(next() % 10000);
    }
    std::vector<uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    std::vector<uint64_t> work = samples;
    EXPECT_EQ(PercentileOf(work, 50), sorted[size / 2]) << "size " << size;
    work = samples;
    EXPECT_EQ(PercentileOf(work, 99), sorted[std::min(size - 1, size * 99 / 100)])
        << "size " << size;
  }
  std::vector<uint64_t> empty;
  EXPECT_EQ(PercentileOf(empty, 99), 0u);
}

ClusterOptions QuietOptions() {
  ClusterOptions options;
  options.config.n = 4;
  options.config.state_pages = 16;
  // No periodic status traffic and no view-change risk inside the run: every message the
  // counters see is a direct consequence of the ten operations, making the expected values
  // exact rather than lower bounds.
  options.config.status_interval = 100 * kSecond;
  options.config.view_change_timeout = 100 * kSecond;
  options.config.max_view_change_timeout = 200 * kSecond;
  options.seed = 99;
  return options;
}

// The protocol's message complexity, pinned exactly: for B single-request batches on a
// quiet four-replica group (f = 1), every backup receives 2f prepares per batch, every
// replica receives n-1 commits per batch, and each backup receives exactly one pre-prepare.
TEST(ObsSimTest, ProtocolCountersMatchTheoreticalCounts) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();

  constexpr uint64_t kOps = 10;
  for (uint64_t i = 0; i < kOps; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0));
    ASSERT_TRUE(result.has_value()) << "op " << i;
  }
  // The client certifies from 2f+1 tentative replies, which can precede the last commit
  // deliveries; drain so every sent message is consumed before counting.
  cluster.sim().RunFor(2 * kSecond);

  MetricsRegistry& m = cluster.metrics();
  const int n = cluster.config().n;
  const uint64_t f = 1;
  for (int i = 0; i < n; ++i) {
    std::string node = "node=\"" + std::to_string(i) + "\"";
    bool is_primary = i == 0;  // view 0 held for the whole run (asserted below)
    EXPECT_EQ(m.GetGauge("bft_view", node)->value(), 0) << "replica " << i;
    EXPECT_EQ(m.GetCounter("bft_batches_executed_total", node)->value(), kOps);
    EXPECT_EQ(m.GetCounter("bft_requests_executed_total", node)->value(), kOps);
    EXPECT_EQ(m.GetGauge("bft_last_executed", node)->value(),
              static_cast<int64_t>(kOps));
    EXPECT_EQ(m.GetHistogram("bft_batch_size", node)->count(), kOps);
    EXPECT_EQ(m.GetHistogram("bft_batch_size", node)->sum(), kOps) << "all batches size 1";

    auto in = [&m, &node](const char* type) {
      return m.GetCounter("bft_messages_in_total", node + ",type=\"" + type + "\"")->value();
    };
    auto out = [&m, &node](const char* type) {
      return m.GetCounter("bft_messages_out_total", node + ",type=\"" + type + "\"")->value();
    };
    if (is_primary) {
      EXPECT_EQ(in("request"), kOps);
      EXPECT_EQ(out("pre_prepare"), kOps);
      EXPECT_EQ(in("prepare"), static_cast<uint64_t>(n - 1) * kOps)
          << "primary hears every backup's prepare";
      EXPECT_EQ(out("prepare"), 0u) << "the primary's pre-prepare acts as its prepare";
    } else {
      EXPECT_EQ(in("pre_prepare"), kOps);
      EXPECT_EQ(out("pre_prepare"), 0u);
      EXPECT_EQ(in("prepare"), 2 * f * kOps) << "prepares from the other 2f backups";
      EXPECT_EQ(out("prepare"), kOps);
    }
    EXPECT_EQ(in("commit"), static_cast<uint64_t>(n - 1) * kOps) << "replica " << i;
    EXPECT_EQ(out("commit"), kOps);
    EXPECT_EQ(m.GetCounter("bft_messages_undecodable_total", node)->value(), 0u);
    EXPECT_EQ(m.GetCounter("bft_auth_rejected_total", node)->value(), 0u);
    EXPECT_EQ(m.GetCounter("bft_view_changes_started_total", node)->value(), 0u);
  }

  // The client-side view of the same run, and the MAC session cache surfaced at run time:
  // after each pair derives its key once, steady-state authentication is all cache hits.
  std::string c = "client=\"" + std::to_string(client->id()) + "\"";
  EXPECT_EQ(m.GetCounter("bft_client_ops_total", c)->value(), kOps);
  EXPECT_EQ(m.GetCounter("bft_client_retransmissions_total", c)->value(), 0u);
  EXPECT_EQ(m.GetHistogram("bft_client_latency_us", c)->count(), kOps);
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(cluster.replica(i)->auth().mac_cache_hits(),
              cluster.replica(i)->auth().mac_cache_misses())
        << "replica " << i;
  }
}

// Same schema on the simulator as on the real-clock runtime (the runtime half lives in
// udp_smoke_test): full sampling yields one complete, monotonic six-phase timeline per
// ordered operation.
TEST(ObsSimTest, TracerYieldsCompleteMonotonicTimelines) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  cluster.tracer().set_sample_every(1);
  Client* client = cluster.AddClient();

  constexpr uint64_t kOps = 5;
  for (uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0)).has_value());
  }
  cluster.sim().RunFor(2 * kSecond);

  std::vector<TraceTimeline> traces = cluster.tracer().Completed();
  ASSERT_EQ(traces.size(), kOps);
  for (const TraceTimeline& tl : traces) {
    EXPECT_EQ(tl.client, client->id());
    EXPECT_TRUE(tl.complete()) << "ts " << tl.timestamp;
    EXPECT_TRUE(tl.monotonic()) << "ts " << tl.timestamp;
    EXPECT_GT(tl.total(), 0) << "sim latency is modeled, never zero";
  }
  EXPECT_TRUE(cluster.tracer().Active().empty()) << "every timeline retired";

  // The JSON rendering carries every phase of every retired timeline.
  std::string json = cluster.tracer().RenderJson();
  for (int p = 0; p < kNumTracePhases; ++p) {
    EXPECT_NE(json.find(TracePhaseName(static_cast<TracePhase>(p))), std::string::npos);
  }
}

// Sampling off (the default) must keep the tracer entirely passive — this is what the
// deterministic benches rely on to stay byte-identical with tracing compiled in.
TEST(ObsSimTest, SamplingOffRecordsNothing) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  ASSERT_TRUE(
      cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0)).has_value());
  EXPECT_EQ(cluster.tracer().completed_count(), 0u);
  EXPECT_TRUE(cluster.tracer().Active().empty());
}

// Retirement feeds per-phase delta histograms. On the simulator events execute in global
// time order, so every phase a timeline shows at retirement is final (straggler merges can
// only ADD the late `committed` stamp, never lower an existing minimum) — which makes the
// histograms for the always-present deltas exactly reconstructible from the retired ring.
TEST(ObsSimTest, PhaseHistogramsMatchRetiredTimelines) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  cluster.tracer().set_sample_every(1);
  Client* client = cluster.AddClient();

  constexpr uint64_t kOps = 8;
  for (uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0)).has_value());
  }
  cluster.sim().RunFor(2 * kSecond);

  std::vector<TraceTimeline> traces = cluster.tracer().Completed();
  ASSERT_EQ(traces.size(), kOps);
  // Expected sums in microseconds, straight from the retired timelines. The deltas ending
  // at `committed` are excluded: the client certifies from tentative replies, so committed
  // may land after retirement and those histograms see only a subset.
  auto delta_sum = [&traces](TracePhase a, TracePhase b) {
    uint64_t sum = 0;
    for (const TraceTimeline& tl : traces) {
      sum += (tl.at(b) >= tl.at(a) ? tl.at(b) - tl.at(a) : 0) / kMicrosecond;
    }
    return sum;
  };
  MetricsRegistry& m = cluster.metrics();
  Histogram* d0 = m.GetHistogram("bft_phase_latency_us", "phase=\"dispatch_to_pre_prepare\"");
  Histogram* d1 = m.GetHistogram("bft_phase_latency_us", "phase=\"pre_prepare_to_prepared\"");
  Histogram* d4 = m.GetHistogram("bft_phase_latency_us", "phase=\"executed_to_certified\"");
  Histogram* total = m.GetHistogram("bft_phase_latency_us", "phase=\"total\"");
  EXPECT_EQ(d0->count(), kOps);
  EXPECT_EQ(d0->sum(), delta_sum(TracePhase::kDispatch, TracePhase::kPrePrepare));
  EXPECT_EQ(d1->count(), kOps);
  EXPECT_EQ(d1->sum(), delta_sum(TracePhase::kPrePrepare, TracePhase::kPrepared));
  EXPECT_EQ(d4->count(), kOps);
  EXPECT_EQ(d4->sum(), delta_sum(TracePhase::kExecuted, TracePhase::kCertified));
  EXPECT_EQ(total->count(), kOps);
  uint64_t total_sum = 0;
  for (const TraceTimeline& tl : traces) {
    total_sum += tl.total() / kMicrosecond;
  }
  EXPECT_EQ(total->sum(), total_sum);
  EXPECT_LE(m.GetHistogram("bft_phase_latency_us", "phase=\"prepared_to_committed\"")->count(),
            kOps);

  // The exposition formats carry the percentile summaries of the same family.
  std::string text = m.RenderPrometheusText();
  EXPECT_NE(text.find("bft_phase_latency_us_p50{phase=\"total\"}"), std::string::npos);
  EXPECT_NE(text.find("bft_phase_latency_us_p99{phase=\"dispatch_to_pre_prepare\"}"),
            std::string::npos);
  EXPECT_NE(m.RenderJson().find("\"p95\""), std::string::npos);
}

// Admin-op timelines share the tracer machinery: phase 0 opens, the kind's last phase
// retires into the ring and the bft_admin_phase_latency_us family, out-of-order stamps for
// unknown ops are dropped and counted, and a disabled tracer records nothing.
TEST(AdminTraceTest, StampAdminDrivesTimelinesAndHistograms) {
  MetricsRegistry registry;
  RequestTracer tracer;
  tracer.InstallMetrics(&registry);

  // Disabled: stamps vanish without opening anything.
  tracer.StampAdmin(TraceKind::kMigration, 1, 0, 10 * kMicrosecond);
  EXPECT_TRUE(tracer.Active().empty());

  tracer.set_sample_every(4);  // any non-zero rate traces every admin op
  uint64_t move = tracer.NextAdminOpId();
  for (int p = 0; p < TraceKindPhases(TraceKind::kMigration); ++p) {
    tracer.StampAdmin(TraceKind::kMigration, move, p,
                      static_cast<SimTime>(p + 1) * 100 * kMicrosecond);
  }
  uint64_t round = tracer.NextAdminOpId();
  EXPECT_NE(move, round);
  for (int p = 0; p < TraceKindPhases(TraceKind::kRebalance); ++p) {
    tracer.StampAdmin(TraceKind::kRebalance, round, p,
                      static_cast<SimTime>(p + 1) * kMillisecond);
  }

  std::vector<TraceTimeline> traces = tracer.Completed();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].kind, TraceKind::kMigration);
  EXPECT_EQ(traces[1].kind, TraceKind::kRebalance);
  for (const TraceTimeline& tl : traces) {
    EXPECT_TRUE(tl.complete());
    EXPECT_TRUE(tl.monotonic());
  }
  EXPECT_EQ(traces[0].total(), 500 * kMicrosecond);
  EXPECT_EQ(traces[1].total(), 3 * kMillisecond);

  // Each consecutive migration delta is 100us; the rebalance deltas are 1000us.
  Histogram* freeze_seal = registry.GetHistogram(
      "bft_admin_phase_latency_us", "kind=\"migration\",phase=\"freeze_to_seal\"");
  EXPECT_EQ(freeze_seal->count(), 1u);
  EXPECT_EQ(freeze_seal->sum(), 100u);
  Histogram* snap_plan = registry.GetHistogram(
      "bft_admin_phase_latency_us", "kind=\"rebalance\",phase=\"snapshot_to_plan\"");
  EXPECT_EQ(snap_plan->count(), 1u);
  EXPECT_EQ(snap_plan->sum(), 1000u);
  EXPECT_EQ(registry.GetHistogram("bft_admin_phase_latency_us",
                                  "kind=\"migration\",phase=\"total\"")
                ->sum(),
            500u);

  // A non-zero phase for an op the tracer never saw opened: dropped, not adopted.
  uint64_t before = tracer.dropped_stamps();
  tracer.StampAdmin(TraceKind::kMigration, 9999, 3, kSecond);
  EXPECT_EQ(tracer.dropped_stamps(), before + 1);
  EXPECT_TRUE(tracer.Active().empty());
  // The JSON rendering names the admin milestones, not the request phases, for admin kinds.
  std::string json = tracer.RenderJson();
  EXPECT_NE(json.find("\"migration\""), std::string::npos);
  EXPECT_NE(json.find("\"freeze\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot\""), std::string::npos);
}

// The exemplar tier must keep the slowest requests visible after the bounded ring has
// evicted them — that is its whole point at low sample rates, where a rare slow request
// would otherwise age out long before anyone scrapes /traces.
TEST(ExemplarTest, SlowestTimelinesSurviveRingEviction) {
  RequestTracer tracer;
  tracer.set_sample_every(64);
  constexpr NodeId kClient = 7;

  // Collect sampled (client, timestamp) pairs — at 1/64 the hash gate passes ~1 in 64.
  std::vector<uint64_t> sampled;
  for (uint64_t ts = 1; sampled.size() < 1100; ++ts) {
    if (tracer.Sampled(kClient, ts)) {
      sampled.push_back(ts);
    }
  }
  // Retire them all: one early request is pathologically slow (5s), the rest take 200us.
  const uint64_t slow_ts = sampled[10];
  for (uint64_t ts : sampled) {
    tracer.Stamp(TracePhase::kDispatch, kClient, ts, kSecond);
    SimTime latency = ts == slow_ts ? 5 * kSecond : 200 * kMicrosecond;
    tracer.Stamp(TracePhase::kCertified, kClient, ts, kSecond + latency);
  }
  EXPECT_EQ(tracer.completed_count(), sampled.size());
  EXPECT_GT(tracer.evicted_timelines(), 0u);

  // The ring dropped the slow one (it was retired ~1090 retirements ago)...
  bool in_ring = false;
  for (const TraceTimeline& tl : tracer.Completed()) {
    in_ring = in_ring || tl.timestamp == slow_ts;
  }
  EXPECT_FALSE(in_ring) << "ring kept more than kMaxCompleted timelines";
  // ...but the exemplar tier kept it, slowest first.
  std::vector<TraceTimeline> slowest = tracer.Slowest();
  ASSERT_FALSE(slowest.empty());
  EXPECT_EQ(slowest.front().timestamp, slow_ts);
  EXPECT_EQ(slowest.front().total(), 5 * kSecond);
  EXPECT_NE(tracer.RenderJson().find("\"exemplars\""), std::string::npos);

  // A replica stamp arriving just after retirement merges into the ring, not the floor.
  uint64_t merges = tracer.straggler_merges();
  tracer.Stamp(TracePhase::kCommitted, kClient, sampled.back(), 2 * kSecond);
  EXPECT_EQ(tracer.straggler_merges(), merges + 1);
}

// /healthz verdict logic, from healthy through induced degradation on a live simulation.
TEST(HealthzTest, VerdictTracksClusterState) {
  Cluster cluster(QuietOptions(), [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        cluster.Execute(client, NullService::MakeOp(/*read_only=*/false, 0, 0)).has_value());
  }
  cluster.sim().RunFor(2 * kSecond);

  HealthSnapshot healthy = cluster.Health();
  ASSERT_EQ(healthy.replicas.size(), 4u);
  EXPECT_TRUE(EvaluateHealth(healthy).ok);
  std::string json = RenderHealthJson(healthy);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(json.find("\"last_stable\""), std::string::npos);
  EXPECT_NE(json.find("\"high_water\""), std::string::npos);

  // A backup forced into a view change (without letting the sim complete it) degrades the
  // verdict with a per-replica reason.
  cluster.replica(1)->ForceViewChange();
  HealthVerdict verdict = EvaluateHealth(cluster.Health());
  EXPECT_FALSE(verdict.ok);
  bool saw_vc = false;
  for (const std::string& r : verdict.reasons) {
    saw_vc = saw_vc || r.find("view change") != std::string::npos;
  }
  EXPECT_TRUE(saw_vc) << RenderHealthJson(cluster.Health());
  EXPECT_NE(RenderHealthJson(cluster.Health()).find("\"status\": \"degraded\""),
            std::string::npos);

  // A crashed replica is its own reason, independent of view state.
  cluster.replica(2)->Crash();
  verdict = EvaluateHealth(cluster.Health());
  EXPECT_FALSE(verdict.ok);
  bool saw_down = false;
  for (const std::string& r : verdict.reasons) {
    saw_down = saw_down || r.find("down") != std::string::npos;
  }
  EXPECT_TRUE(saw_down);
}

// Verdict inputs that no simulator harness produces: control-plane and fault-arm signals.
TEST(HealthzTest, ControlPlaneSignalsDegradeTheVerdict) {
  HealthSnapshot snapshot;
  ReplicaHealth r;
  r.running = true;
  r.view_active = true;
  snapshot.replicas = {r, r};
  EXPECT_TRUE(EvaluateHealth(snapshot).ok);

  snapshot.replicas[1].view = 3;  // divergence between running replicas
  EXPECT_FALSE(EvaluateHealth(snapshot).ok);
  snapshot.replicas[1].view = 0;

  snapshot.active_migrations = 2;
  snapshot.frozen_buckets = 1;
  snapshot.faults_armed = true;
  HealthVerdict verdict = EvaluateHealth(snapshot);
  ASSERT_EQ(verdict.reasons.size(), 3u);
  std::string joined;
  for (const std::string& reason : verdict.reasons) {
    joined += reason + ";";
  }
  EXPECT_NE(joined.find("migration"), std::string::npos);
  EXPECT_NE(joined.find("frozen"), std::string::npos);
  EXPECT_NE(joined.find("fault injection armed"), std::string::npos);
  std::string json = RenderHealthJson(snapshot);
  EXPECT_NE(json.find("\"active_migrations\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"armed\": true"), std::string::npos);
}

// Raw-socket HTTP client for the hardening tests: sends `request` bytes (possibly a
// truncated request line, modeling a stalled client), then reads to EOF.
std::string RawHttp(uint16_t port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  if (!request.empty()) {
    EXPECT_EQ(send(fd, request.data(), request.size(), 0),
              static_cast<ssize_t>(request.size()));
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// Malformed or malicious clients must not wedge the single accept thread, and every
// response — success or error — must carry a status line and a Content-Type.
TEST(AdminServerTest, SurvivesMalformedClients) {
  MetricsRegistry registry;
  registry.GetCounter("bft_test_total")->Inc(5);
  RequestTracer tracer;
  AdminServer server(&registry, &tracer);
  server.set_read_timeout_ms(200);
  HealthSnapshot snapshot;
  ReplicaHealth r;
  r.running = true;
  r.view_active = true;
  snapshot.replicas = {r};
  server.SetHealthSource([snapshot]() { return snapshot; });
  ASSERT_TRUE(server.Listen(0));
  ASSERT_NE(server.port(), 0);

  // Unknown path: 404 with a Content-Type, and the error body names the routes.
  std::string response = RawHttp(server.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("Content-Type:"), std::string::npos);
  EXPECT_NE(response.find("/healthz"), std::string::npos);

  // Happy paths still serve.
  response = RawHttp(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json"), std::string::npos);

  // A client that sends a partial request line and stalls: the read deadline fires and the
  // connection is answered (408) instead of blocking the accept loop forever.
  response = RawHttp(server.port(), "GET /met");
  EXPECT_NE(response.find("408"), std::string::npos);
  EXPECT_NE(response.find("Content-Type:"), std::string::npos);

  // An oversized request line (no newline within the cap) is rejected as a bad request.
  response = RawHttp(server.port(), std::string(5000, 'x'));
  EXPECT_NE(response.find("400"), std::string::npos);

  // After all of the above the server is still fully serviceable.
  response = RawHttp(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("bft_test_total 5"), std::string::npos);
  server.Stop();

  // Without a health source the route does not exist.
  AdminServer bare(&registry, &tracer);
  ASSERT_TRUE(bare.Listen(0));
  response = RawHttp(bare.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("404"), std::string::npos);
  bare.Stop();
}

TEST(PrometheusTest, TextExpositionRoundTrip) {
  MetricsRegistry registry;
  registry.GetCounter("bft_test_ops_total", "node=\"1\"")->Inc(42);
  registry.GetCounter("bft_test_ops_total", "node=\"2\"")->Inc(7);
  registry.GetGauge("bft_test_view")->Set(-3);
  Histogram* h = registry.GetHistogram("bft_test_latency");
  h->Record(1);
  h->Record(100);
  registry.RegisterProbe("bft_test_probe", "src=\"auth\"", []() { return uint64_t{13}; });

  std::string text = registry.RenderPrometheusText();

  // Parse it back: every non-comment line is `name{labels} value` or `name value`.
  uint64_t ops_1 = 0;
  uint64_t ops_2 = 0;
  int64_t view = 1;
  uint64_t probe = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  uint64_t inf_bucket = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (series == "bft_test_ops_total{node=\"1\"}") {
      ops_1 = std::stoull(value);
    } else if (series == "bft_test_ops_total{node=\"2\"}") {
      ops_2 = std::stoull(value);
    } else if (series == "bft_test_view") {
      view = std::stoll(value);
    } else if (series == "bft_test_probe{src=\"auth\"}") {
      probe = std::stoull(value);
    } else if (series == "bft_test_latency_count") {
      hist_count = std::stoull(value);
    } else if (series == "bft_test_latency_sum") {
      hist_sum = std::stoull(value);
    } else if (series == "bft_test_latency_bucket{le=\"+Inf\"}") {
      inf_bucket = std::stoull(value);
    }
  }
  EXPECT_EQ(ops_1, 42u);
  EXPECT_EQ(ops_2, 7u);
  EXPECT_EQ(view, -3);
  EXPECT_EQ(probe, 13u);
  EXPECT_EQ(hist_count, 2u);
  EXPECT_EQ(hist_sum, 101u);
  EXPECT_EQ(inf_bucket, 2u) << "+Inf bucket is cumulative over all records";
  EXPECT_NE(text.find("# TYPE bft_test_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bft_test_view gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE bft_test_latency histogram"), std::string::npos);

  // The JSON export draws from the same registry walk. Label-value quotes inside the
  // series id are JSON-escaped, so the key reads bft_test_ops_total{node=\"1\"}.
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("bft_test_ops_total{node=\\\"1\\\"}"), std::string::npos);
  EXPECT_NE(json.find("42"), std::string::npos);
  std::string combined = MetricsAndTracesJson(registry, nullptr);
  EXPECT_NE(combined.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace bft

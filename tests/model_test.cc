// Tests for the Chapter-7 analytic performance model: qualitative properties the paper's
// formulas exhibit (the quantitative check against simulation is bench_model_vs_measured).
#include <gtest/gtest.h>

#include "src/model/perf_model.h"

namespace bft {
namespace {

TEST(PerfModelTest, ComponentCostsGrowWithSize) {
  PerfModel m;
  EXPECT_LT(m.DigestCost(0), m.DigestCost(4096));
  EXPECT_LT(m.MacCost(0), m.MacCost(4096));
}

TEST(PerfModelTest, ReadOnlyFasterThanReadWrite) {
  PerfModel m;
  PerfModel::OpParams rw;
  PerfModel::OpParams ro = rw;
  ro.read_only = true;
  EXPECT_LT(m.PredictLatency(ro), m.PredictLatency(rw));
}

TEST(PerfModelTest, TentativeExecutionReducesLatency) {
  PerfModel m;
  PerfModel::OpParams tentative;
  PerfModel::OpParams full = tentative;
  full.tentative_execution = false;
  EXPECT_LT(m.PredictLatency(tentative), m.PredictLatency(full));
}

TEST(PerfModelTest, SignaturesDominateLatency) {
  PerfModel m;
  PerfModel::OpParams mac;
  PerfModel::OpParams sig = mac;
  sig.mode = AuthMode::kSignature;
  EXPECT_GT(m.PredictLatency(sig), 10 * m.PredictLatency(mac));
}

TEST(PerfModelTest, LatencyGrowsWithArgAndResultSize) {
  PerfModel m;
  PerfModel::OpParams base;
  PerfModel::OpParams big_arg = base;
  big_arg.arg_bytes = 8192;
  PerfModel::OpParams big_res = base;
  big_res.result_bytes = 8192;
  EXPECT_GT(m.PredictLatency(big_arg), m.PredictLatency(base));
  EXPECT_GT(m.PredictLatency(big_res), m.PredictLatency(base));
}

TEST(PerfModelTest, DigestRepliesFlattenResultSizeCost) {
  PerfModel m;
  PerfModel::OpParams with;
  with.result_bytes = 8192;
  PerfModel::OpParams without = with;
  without.digest_replies = false;
  EXPECT_LT(m.PredictLatency(with), m.PredictLatency(without));
}

TEST(PerfModelTest, BatchingImprovesThroughput) {
  PerfModel m;
  PerfModel::OpParams single;
  PerfModel::OpParams batched = single;
  batched.batch_size = 16;
  EXPECT_GT(m.PredictThroughput(batched), 2 * m.PredictThroughput(single));
}

TEST(PerfModelTest, ThroughputDecreasesWithMoreReplicas) {
  PerfModel m;
  PerfModel::OpParams n4;
  n4.batch_size = 16;
  PerfModel::OpParams n13 = n4;
  n13.n = 13;
  EXPECT_GT(m.PredictThroughput(n4), m.PredictThroughput(n13));
}

TEST(PerfModelTest, LatencyDegradesGracefullyWithReplicas) {
  // Section 8.3.4: extra replicas cost extra MACs and messages, but no cliff.
  PerfModel m;
  PerfModel::OpParams n4;
  PerfModel::OpParams n7 = n4;
  n7.n = 7;
  PerfModel::OpParams n13 = n4;
  n13.n = 13;
  SimTime l4 = m.PredictLatency(n4);
  SimTime l7 = m.PredictLatency(n7);
  SimTime l13 = m.PredictLatency(n13);
  EXPECT_LT(l4, l7);
  EXPECT_LT(l7, l13);
  EXPECT_LT(l13, 3 * l4);
}

TEST(PerfModelTest, ReadOnlyThroughputExceedsReadWriteUnbatched) {
  PerfModel m;
  PerfModel::OpParams rw;
  PerfModel::OpParams ro = rw;
  ro.read_only = true;
  EXPECT_GT(m.PredictThroughput(ro), m.PredictThroughput(rw));
}

}  // namespace
}  // namespace bft

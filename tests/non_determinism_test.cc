// Non-determinism agreement tests (thesis Section 5.4): the primary proposes the value,
// backups check it deterministically, and a primary proposing bad values is replaced.
#include <gtest/gtest.h>

#include "src/bfs/bfs_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions Options(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.state_pages = 64;
  options.config.page_size = 1024;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.partition_branching = 8;
  return options;
}

// A Byzantine service wrapper whose ChooseNonDet proposes a wildly wrong timestamp when this
// replica is primary. Backups' CheckNonDet must reject it, stalling the primary until the
// view change replaces it.
class BadClockBfs : public BfsService {
 public:
  Bytes ChooseNonDet(SeqNo seq, SimTime now) override {
    Writer w;
    w.U64(now + 3600ull * kSecond);  // one hour in the future: outside the check window
    return w.Take();
  }
};

TEST(NonDeterminismTest, AgreedMtimeIsIdenticalAcrossReplicas) {
  Cluster cluster(Options(91), [](NodeId) { return std::make_unique<BfsService>(); });
  Client* client = cluster.AddClient();
  auto attr = BfsService::DecodeAttr(
      cluster.Execute(client, BfsService::CreateOp(BfsService::kRootIno, "f"), false,
                      60 * kSecond)
          .value_or(Bytes{}));
  ASSERT_TRUE(attr.has_value());
  cluster.sim().RunFor(kSecond);

  // Ask each replica directly (read-only executes locally): mtimes must be identical even
  // though each replica has its own notion of time.
  for (int r = 0; r < 4; ++r) {
    // Compare the raw inode area across replicas instead of querying: simplest exactness.
    Bytes a(cluster.replica(0)->state().data(), cluster.replica(0)->state().data() + 4096);
    Bytes b(cluster.replica(r)->state().data(), cluster.replica(r)->state().data() + 4096);
    EXPECT_EQ(a, b) << "replica " << r << " disagrees on non-deterministic state";
  }
  EXPECT_GT(attr->mtime, 0u);
}

TEST(NonDeterminismTest, PrimaryProposingBadValuesIsReplaced) {
  // Replica 0 (primary of view 0) proposes timestamps an hour in the future; backups'
  // CheckNonDet rejects its pre-prepares, its requests never execute, and the view change
  // installs a correct primary (Section 5.4: "a primary that proposes bad values is replaced
  // as usual by the view change mechanism").
  Cluster cluster(Options(92), [](NodeId replica) -> std::unique_ptr<Service> {
    if (replica == 0) {
      return std::make_unique<BadClockBfs>();
    }
    return std::make_unique<BfsService>();
  });
  Client* client = cluster.AddClient();
  std::optional<Bytes> result = cluster.Execute(
      client, BfsService::CreateOp(BfsService::kRootIno, "f"), false, 120 * kSecond);
  ASSERT_TRUE(result.has_value()) << "view change failed to route around the bad primary";
  auto attr = BfsService::DecodeAttr(*result);
  ASSERT_TRUE(attr.has_value());
  EXPECT_GE(cluster.replica(1)->view(), 1u) << "no view change happened";
}

TEST(NonDeterminismTest, BackupWithBadCheckStillConverges) {
  // Dual case: one *backup* would propose bad values, but backups never propose; the group
  // behaves normally and the deviant replica executes the agreed value like everyone else.
  Cluster cluster(Options(93), [](NodeId replica) -> std::unique_ptr<Service> {
    if (replica == 2) {
      return std::make_unique<BadClockBfs>();
    }
    return std::make_unique<BfsService>();
  });
  Client* client = cluster.AddClient();
  auto result = cluster.Execute(client, BfsService::CreateOp(BfsService::kRootIno, "g"),
                                false, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  cluster.sim().RunFor(kSecond);
  Bytes a(cluster.replica(0)->state().data(), cluster.replica(0)->state().data() + 4096);
  Bytes b(cluster.replica(2)->state().data(), cluster.replica(2)->state().data() + 4096);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bft

// Live bucket migration: freeze/seal/export/import/publish lifecycle, version-aware client
// routing (freeze queueing and stale-owner re-routes), interaction with view changes, and
// the no-op-move byte-identity guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/service/kv_service.h"
#include "src/service/null_service.h"
#include "src/shard/migration.h"
#include "src/shard/sharded_cluster.h"
#include "src/sim/sim_harness.h"
#include "src/workload/closed_loop.h"

namespace bft {
namespace {

ShardedClusterOptions Options(size_t shards, uint64_t seed) {
  ShardedClusterOptions options;
  options.num_shards = shards;
  options.seed = seed;
  options.config.checkpoint_period = 32;
  options.config.log_size = 64;
  options.config.state_pages = 64;
  return options;
}

ShardServiceFactory KvFactory() {
  return [](size_t, NodeId) { return std::make_unique<KvService>(); };
}

// `count` distinct keys all hashing into `bucket`.
std::vector<Bytes> KeysInBucket(uint32_t bucket, size_t count, const std::string& prefix) {
  std::vector<Bytes> keys;
  for (int i = 0; keys.size() < count && i < 4'000'000; ++i) {
    Bytes key = ToBytes(prefix + std::to_string(i));
    if (KeyRing::BucketForKey(key) == bucket) {
      keys.push_back(std::move(key));
    }
  }
  EXPECT_EQ(keys.size(), count) << "key search exhausted for bucket " << bucket;
  return keys;
}

// --- ShardMap wire format ------------------------------------------------------------------

TEST(ShardMapSerializationTest, RoundTripsAndRejectsMalformedInput) {
  ShardMap map = ShardMap(4).WithBucketMoved(7, 2).WithBucketMoved(4000, 0);
  Bytes wire = map.Encode();
  std::optional<ShardMap> decoded = ShardMap::Decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(*decoded == map);
  EXPECT_EQ(decoded->version(), 3u);
  EXPECT_EQ(decoded->ShardForBucket(7), 2u);

  // Truncated, trailing garbage, out-of-range owner, zero shards: all rejected.
  EXPECT_FALSE(ShardMap::Decode(ByteView(wire.data(), wire.size() - 1)).has_value());
  Bytes longer = wire;
  longer.push_back(0);
  EXPECT_FALSE(ShardMap::Decode(longer).has_value());
  Bytes bad_owner = wire;
  bad_owner[12] = 0xff;  // first owner u16 -> 0xff04 >= num_shards
  EXPECT_FALSE(ShardMap::Decode(bad_owner).has_value());
  Bytes zero_shards = wire;
  zero_shards[8] = zero_shards[9] = zero_shards[10] = zero_shards[11] = 0;
  EXPECT_FALSE(ShardMap::Decode(zero_shards).has_value());
}

// --- The full migration lifecycle ----------------------------------------------------------

TEST(MigrationTest, MovedBucketKeysServedByNewOwnerWithPreMoveValues) {
  ShardedCluster cluster(Options(2, 101), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  uint32_t bucket = 0;  // owned by shard 0 under round-robin
  ASSERT_EQ(cluster.shard_map().ShardForBucket(bucket), 0u);
  std::vector<Bytes> keys = KeysInBucket(bucket, 12, "mv-");
  for (size_t i = 0; i < keys.size(); ++i) {
    auto r = cluster.Execute(client, KvService::PutOp(keys[i], ToBytes("v" + std::to_string(i))));
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(ToString(*r), "ok");
  }

  MigrationReport report = coordinator.MoveBucket(bucket, 1);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_FALSE(report.no_op);
  EXPECT_EQ(report.source_shard, 0u);
  EXPECT_EQ(report.dest_shard, 1u);
  EXPECT_EQ(report.keys_moved, keys.size());
  EXPECT_GT(report.export_bytes, 0u);
  EXPECT_EQ(report.map_version_after, report.map_version_before + 1);
  EXPECT_GT(report.freeze_window(), 0);

  // The published map routes the bucket to the destination; every key reads back with its
  // pre-move value through the router.
  EXPECT_EQ(cluster.shard_map().ShardForBucket(bucket), 1u);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto r = cluster.Execute(client, KvService::GetOp(keys[i]), /*read_only=*/true);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(ToString(*r), "v" + std::to_string(i)) << "key " << i;
  }

  // Destination state holds the bucket; the source purged it (tombstones, zero live keys).
  EXPECT_EQ(cluster.replica(1, 0)->service()->EnumerateBucket(bucket).size(), keys.size());
  EXPECT_TRUE(cluster.replica(0, 0)->service()->EnumerateBucket(bucket).empty());
  // Direct entry export on the destination matches what was written.
  auto blob = cluster.replica(1, 0)->service()->ExportEntry(keys[0]);
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(ToString(*blob), "v0");
}

// The coordinator narrates each move to the tracer: one admin-op timeline per move, with
// the freeze → seal → export → import → publish → complete milestones in order, retired
// when the move finishes. Admin ops bypass the hash-sampling gate, so any non-zero rate
// traces every move.
TEST(MigrationTest, MoveEmitsCompleteAdminTimeline) {
  ShardedCluster cluster(Options(2, 103), KvFactory());
  cluster.tracer().set_sample_every(1024);
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);
  for (const Bytes& key : KeysInBucket(0, 4, "tr-")) {
    ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key, ToBytes("v"))).has_value());
  }

  MigrationReport report = coordinator.MoveBucket(0, 1);
  ASSERT_TRUE(report.ok) << report.error;

  std::vector<TraceTimeline> moves;
  for (const TraceTimeline& tl : cluster.tracer().Completed()) {
    if (tl.kind == TraceKind::kMigration) {
      moves.push_back(tl);
    }
  }
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_TRUE(moves[0].complete());
  EXPECT_TRUE(moves[0].monotonic());
  EXPECT_GT(moves[0].total(), 0);
  // freeze and publish are stamped in the same events that set the report fields, but the
  // tracer clamps admin stamps to be non-decreasing (the sim clock is not monotone across
  // idle nodes), so the timeline's freeze→publish span bounds the reported window above.
  EXPECT_GE(moves[0].phase_time[4] - moves[0].phase_time[0], report.freeze_window());
  EXPECT_TRUE(cluster.tracer().Active().empty()) << "the move retired its timeline";
  EXPECT_EQ(cluster.metrics()
                .GetHistogram("bft_admin_phase_latency_us", "kind=\"migration\",phase=\"total\"")
                ->count(),
            1u);
}

TEST(MigrationTest, UnsupportedServiceFailsCleanlyWithoutFreezing) {
  ShardedClusterOptions options = Options(2, 103);
  ShardedCluster cluster(options,
                         [](size_t, NodeId) { return std::make_unique<NullService>(); });
  MigrationCoordinator coordinator(&cluster);
  uint64_t version_before = cluster.registry().version();

  MigrationReport report = coordinator.MoveBucket(/*bucket=*/2, /*dest_shard=*/1);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());
  EXPECT_EQ(cluster.registry().version(), version_before);
  EXPECT_FALSE(cluster.registry().IsFrozen(2));
  EXPECT_FALSE(coordinator.active());
}

// --- Version-aware client routing ----------------------------------------------------------

TEST(MigrationTest, FrozenBucketOpsQueueUntilPublish) {
  ShardedCluster cluster(Options(2, 107), KvFactory());
  ShardedClient* client = cluster.AddClient();
  uint32_t bucket = 2;  // shard 0's, empty
  ASSERT_EQ(cluster.shard_map().ShardForBucket(bucket), 0u);
  Bytes key = KeysInBucket(bucket, 1, "fz-")[0];

  cluster.registry().Freeze(bucket);
  bool completed = false;
  Bytes result;
  client->Invoke(KvService::PutOp(key, ToBytes("queued")), /*read_only=*/false,
                 [&](Bytes r) {
                   completed = true;
                   result = std::move(r);
                 });
  // The op is held in the router, not dispatched: nothing completes however long we run.
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_FALSE(completed);
  EXPECT_EQ(client->pending_queued(), 1u);
  EXPECT_EQ(client->router_stats().frozen_queued, 1u);

  // Publishing the moved map re-dispatches to the new owner; the op completes there.
  cluster.registry().Publish(cluster.shard_map().WithBucketMoved(bucket, 1));
  cluster.sim().RunUntilCondition([&]() { return completed; },
                                  cluster.sim().Now() + 30 * kSecond);
  ASSERT_TRUE(completed);
  EXPECT_EQ(ToString(result), "ok");
  EXPECT_EQ(client->pending_queued(), 0u);
  auto stored = cluster.Execute(client, KvService::GetOp(key), /*read_only=*/true);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(ToString(*stored), "queued");
  // The write landed on the new owner's group only.
  EXPECT_EQ(cluster.replica(1, 0)->service()->EnumerateBucket(bucket).size(), 1u);
  EXPECT_TRUE(cluster.replica(0, 0)->service()->EnumerateBucket(bucket).empty());
}

TEST(MigrationTest, StaleMapClientIsReroutedInsteadOfMisdirected) {
  // A client whose map is stale across the move: its op reaches the old owner after the
  // bucket sealed. The old owner answers with the stale-owner marker (it must not execute
  // the op); the router intercepts the marker, queues, and re-routes after the publish —
  // the caller sees one normal completion, never the marker.
  ShardedCluster cluster(Options(2, 109), KvFactory());
  ShardedClient* client = cluster.AddClient();
  // MIG_SEAL is an admin op: replicas reject it from ids outside the reserved admin range.
  ShardedClient* admin = cluster.AddAdminClient();
  MigrationCoordinator coordinator(&cluster);

  uint32_t bucket = 0;
  std::vector<Bytes> keys = KeysInBucket(bucket, 3, "st-");
  for (const Bytes& key : keys) {
    ASSERT_TRUE(cluster.Execute(client, KvService::PutOp(key, ToBytes("old"))).has_value());
  }

  // Seal the bucket at the source directly (simulating the window where the move is underway
  // but this client has not observed any freeze).
  auto seal = cluster.op_builder()->SealBucketOp(bucket);
  ASSERT_TRUE(seal.has_value());
  auto sealed = sim_harness::Execute(cluster.sim(), admin->endpoint(0), *seal,
                                     /*read_only=*/false, 30 * kSecond);
  ASSERT_TRUE(sealed.has_value());
  ASSERT_EQ(ToString(*sealed), "ok");

  // The stale-mapped op: dispatched to shard 0 (the current map still says so) and answered
  // with the marker. The router intercepts and retries under its current routing state —
  // while the map still points at the sealed source it keeps probing (a rolled-back
  // migration would un-seal and let the retry through); it cannot complete.
  bool completed = false;
  Bytes result;
  client->Invoke(KvService::PutOp(keys[0], ToBytes("new")), /*read_only=*/false,
                 [&](Bytes r) {
                   completed = true;
                   result = std::move(r);
                 });
  cluster.sim().RunUntilCondition(
      [&]() { return client->router_stats().stale_reroutes > 0; },
      cluster.sim().Now() + 30 * kSecond);
  EXPECT_GE(client->router_stats().stale_reroutes, 1u);
  EXPECT_FALSE(completed);

  // Completing the migration freezes (parking the retrying op), moves the data, and
  // publishes the new map; the op re-routes and executes at the destination, exactly once.
  MigrationReport report = coordinator.MoveBucket(bucket, 1);
  ASSERT_TRUE(report.ok) << report.error;
  cluster.sim().RunUntilCondition([&]() { return completed; },
                                  cluster.sim().Now() + 30 * kSecond);
  ASSERT_TRUE(completed);
  EXPECT_EQ(ToString(result), "ok");

  auto read = cluster.Execute(client, KvService::GetOp(keys[0]), /*read_only=*/true);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(ToString(*read), "new");
  // The other keys kept their exported values.
  auto other = cluster.Execute(client, KvService::GetOp(keys[1]), /*read_only=*/true);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(ToString(*other), "old");

  // Exactly-once accounting: 3 preload PUTs + the rerouted PUT + 2 GETs = 6 caller-visible
  // completions; the intercepted stale leg must not inflate the aggregate.
  EXPECT_EQ(client->AggregateStats().ops_completed, 6u);
}

// --- No op lost, none double-executed ------------------------------------------------------

// Runs a fixed op script (writes and reads over hot keys in the migrating bucket plus cold
// keys elsewhere) and returns every client-observed result. With `migrate`, a live move of
// the hot bucket starts mid-script. The observable results must be identical either way:
// each op executes exactly once, in issue order, whichever group ends up serving it.
std::vector<std::string> RunScript(bool migrate, uint64_t seed) {
  ShardedCluster cluster(Options(2, seed), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  uint32_t bucket = 0;
  std::vector<Bytes> hot = KeysInBucket(bucket, 8, "hot-");
  std::vector<std::string> results;
  auto run_op = [&](Bytes op, bool read_only) {
    auto r = cluster.Execute(client, std::move(op), read_only, 60 * kSecond);
    EXPECT_TRUE(r.has_value());
    results.push_back(r.has_value() ? ToString(*r) : "<timeout>");
  };

  for (size_t i = 0; i < hot.size(); ++i) {
    run_op(KvService::PutOp(hot[i], ToBytes("seed-" + std::to_string(i))), false);
  }

  std::shared_ptr<std::optional<MigrationReport>> report =
      std::make_shared<std::optional<MigrationReport>>();
  if (migrate) {
    cluster.sim().Schedule(20 * kMillisecond, [&coordinator, bucket, report]() {
      coordinator.StartMoveBucket(bucket, 1,
                                  [report](const MigrationReport& r) { *report = r; });
    });
  }

  // Interleaved hot/cold traffic across the move: updates, reads, deletes.
  for (int i = 0; i < 36; ++i) {
    const Bytes& hot_key = hot[static_cast<size_t>(i) % hot.size()];
    switch (i % 4) {
      case 0:
        run_op(KvService::PutOp(hot_key, ToBytes("gen-" + std::to_string(i))), false);
        break;
      case 1:
        run_op(KvService::GetOp(hot_key), true);
        break;
      case 2:
        run_op(KvService::PutOp(ToBytes("cold-" + std::to_string(i)), ToBytes("c")), false);
        break;
      default:
        run_op(KvService::GetOp(ToBytes("cold-" + std::to_string(i - 1))), true);
        break;
    }
  }
  // Final sweep: every hot key's last written value must be visible, wherever it lives now.
  for (const Bytes& key : hot) {
    run_op(KvService::GetOp(key), true);
  }

  if (migrate) {
    cluster.sim().RunUntilCondition([&]() { return report->has_value(); },
                                    cluster.sim().Now() + 60 * kSecond);
    EXPECT_TRUE(report->has_value());
    if (report->has_value()) {
      EXPECT_TRUE((*report)->ok) << (*report)->error;
      EXPECT_EQ((*report)->keys_moved, hot.size());
      EXPECT_EQ(cluster.shard_map().ShardForBucket(bucket), 1u);
    }
  }
  return results;
}

TEST(MigrationTest, NoOpLostOrDoubleExecutedAcrossFreezeWindow) {
  std::vector<std::string> without = RunScript(/*migrate=*/false, 113);
  std::vector<std::string> with = RunScript(/*migrate=*/true, 113);
  EXPECT_EQ(without, with);
}

// --- Migration concurrent with a source-group view change ----------------------------------

TEST(MigrationTest, MoveCompletesWhileSourceGroupChangesView) {
  ShardedCluster cluster(Options(2, 127), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  uint32_t bucket = 0;
  std::vector<Bytes> keys = KeysInBucket(bucket, 6, "vc-");
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(
        cluster.Execute(client, KvService::PutOp(keys[i], ToBytes("x" + std::to_string(i))))
            .has_value());
  }

  // Crash the source group's primary, then immediately start the move: the seal and export
  // ops land in a group that is mid view change and must ride it out (client retransmission
  // and the new primary's request replay).
  NodeId primary = cluster.CurrentPrimary(0);
  cluster.replica(0, cluster.config(0).ReplicaIndex(primary))->Crash();
  MigrationReport report = coordinator.MoveBucket(bucket, 1, /*timeout=*/120 * kSecond);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.keys_moved, keys.size());

  // The source group really did change views during the move.
  bool view_changed = false;
  for (int i = 0; i < 4; ++i) {
    if (cluster.replica(0, i)->stats().new_views_entered > 0) {
      view_changed = true;
    }
  }
  EXPECT_TRUE(view_changed);

  for (size_t i = 0; i < keys.size(); ++i) {
    auto r = cluster.Execute(client, KvService::GetOp(keys[i]), /*read_only=*/true);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(ToString(*r), "x" + std::to_string(i));
  }
}

// --- S=1 no-op move is byte-identical to no migration --------------------------------------

struct RunOutcome {
  std::vector<std::string> results;
  uint64_t events;
  SimTime now;
  Digest root_digest;

  bool operator==(const RunOutcome& other) const {
    return results == other.results && events == other.events && now == other.now &&
           root_digest == other.root_digest;
  }
};

RunOutcome RunSingleShard(bool noop_move, uint64_t seed) {
  ShardedCluster cluster(Options(1, seed), KvFactory());
  ShardedClient* client = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);
  RunOutcome out;
  for (int i = 0; i < 10; ++i) {
    auto r = cluster.Execute(client,
                             KvService::PutOp(ToBytes("k" + std::to_string(i)), ToBytes("v")));
    EXPECT_TRUE(r.has_value());
    out.results.push_back(r.has_value() ? ToString(*r) : "<timeout>");
    if (noop_move && i == 4) {
      // Destination already owns every bucket at S=1: the coordinator must detect the no-op
      // and issue nothing — no ops, no freeze, no simulator events.
      MigrationReport report = coordinator.MoveBucket(/*bucket=*/3, /*dest_shard=*/0);
      EXPECT_TRUE(report.ok);
      EXPECT_TRUE(report.no_op);
      EXPECT_EQ(report.keys_moved, 0u);
      EXPECT_EQ(report.map_version_after, report.map_version_before);
    }
  }
  out.events = cluster.sim().executed_events();
  out.now = cluster.sim().Now();
  out.root_digest = cluster.replica(0, 0)->state().CurrentRootDigest();
  return out;
}

TEST(MigrationTest, NoOpMoveIsByteIdenticalToNoMigration) {
  RunOutcome with = RunSingleShard(/*noop_move=*/true, 131);
  RunOutcome without = RunSingleShard(/*noop_move=*/false, 131);
  EXPECT_TRUE(with == without);
}

}  // namespace
}  // namespace bft

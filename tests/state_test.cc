// Unit tests for ReplicaState: partition-tree geometry, incremental digests, copy-on-write
// checkpoints, rollback, discard/merge, and the state-transfer server queries.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/state.h"

namespace bft {
namespace {

ReplicaConfig MakeConfig(size_t pages, size_t branching, size_t page_size = 128) {
  ReplicaConfig config;
  config.state_pages = pages;
  config.partition_branching = branching;
  config.page_size = page_size;
  return config;
}

struct StateFixture {
  explicit StateFixture(size_t pages = 16, size_t branching = 4)
      : config(MakeConfig(pages, branching)), state(&config, &model) {
    state.Baseline(ToBytes("extra0"));
  }
  ReplicaConfig config;
  PerfModel model;
  ReplicaState state;
};

TEST(StateGeometryTest, LevelsAndPartCounts) {
  {
    StateFixture f(16, 4);  // 4^2 = 16 pages -> leaf level 2
    EXPECT_EQ(f.state.leaf_level(), 2u);
    EXPECT_EQ(f.state.PartsAtLevel(0), 1u);
    EXPECT_EQ(f.state.PartsAtLevel(1), 4u);
    EXPECT_EQ(f.state.PartsAtLevel(2), 16u);
  }
  {
    StateFixture f(10, 4);  // non-full tree
    EXPECT_EQ(f.state.leaf_level(), 2u);
    EXPECT_EQ(f.state.PartsAtLevel(1), 3u);
    EXPECT_EQ(f.state.PartsAtLevel(2), 10u);
  }
}

TEST(StateTest, WriteReadRoundTrip) {
  StateFixture f;
  Bytes data = ToBytes("hello state");
  f.state.Write(100, data);
  Bytes out(data.size());
  f.state.Read(100, out.size(), out.data());
  EXPECT_EQ(out, data);
}

TEST(StateTest, ModifyMarksAllTouchedPages) {
  StateFixture f;
  EXPECT_EQ(f.state.dirty_page_count(), 0u);
  f.state.Modify(120, 20);  // crosses the page 0 / page 1 boundary (page size 128)
  EXPECT_EQ(f.state.dirty_page_count(), 2u);
}

TEST(StateTest, CheckpointDigestsEqualForEqualStates) {
  StateFixture a;
  StateFixture b;
  a.state.Write(10, ToBytes("same"));
  b.state.Write(10, ToBytes("same"));
  EXPECT_EQ(a.state.TakeCheckpoint(8, ToBytes("e"), nullptr),
            b.state.TakeCheckpoint(8, ToBytes("e"), nullptr));
}

TEST(StateTest, CheckpointDigestsDifferForDifferentStates) {
  StateFixture a;
  StateFixture b;
  a.state.Write(10, ToBytes("aaaa"));
  b.state.Write(10, ToBytes("bbbb"));
  EXPECT_NE(a.state.TakeCheckpoint(8, ToBytes("e"), nullptr),
            b.state.TakeCheckpoint(8, ToBytes("e"), nullptr));
}

TEST(StateTest, ExtraBlobAffectsDigest) {
  StateFixture a;
  StateFixture b;
  EXPECT_NE(a.state.TakeCheckpoint(8, ToBytes("x"), nullptr),
            b.state.TakeCheckpoint(8, ToBytes("y"), nullptr));
}

TEST(StateTest, RollbackRestoresPageContents) {
  StateFixture f;
  f.state.Write(10, ToBytes("v1"));
  f.state.TakeCheckpoint(8, ToBytes("at8"), nullptr);
  f.state.Write(10, ToBytes("v2"));
  f.state.TakeCheckpoint(16, ToBytes("at16"), nullptr);
  f.state.Write(10, ToBytes("v3"));  // dirty, not checkpointed

  Bytes extra = f.state.RollbackToCheckpoint(8);
  EXPECT_EQ(extra, ToBytes("at8"));
  Bytes out(2);
  f.state.Read(10, 2, out.data());
  EXPECT_EQ(out, ToBytes("v1"));
  EXPECT_EQ(f.state.NewestCheckpoint(), 8u);
}

TEST(StateTest, RollbackRestoresDigestsExactly) {
  StateFixture f;
  f.state.Write(200, ToBytes("stable-content"));
  Digest at8 = f.state.TakeCheckpoint(8, ToBytes("e8"), nullptr);
  f.state.Write(300, ToBytes("newer"));
  f.state.TakeCheckpoint(16, ToBytes("e16"), nullptr);

  f.state.RollbackToCheckpoint(8);
  // Re-checkpointing the rolled-back state at 8 must reproduce the same digest.
  Digest again = f.state.ComputeFullDigest(f.state.CurrentRootDigest(), ToBytes("e8"));
  EXPECT_EQ(again, at8);
}

TEST(StateTest, DiscardMergesForwardSoOldValuesStayReadable) {
  StateFixture f;
  f.state.Write(0, ToBytes("page0-v1"));
  f.state.TakeCheckpoint(8, ToBytes("e8"), nullptr);
  // Page 0 untouched afterwards; page 5 modified at 16.
  f.state.Write(5 * 128, ToBytes("page5-v1"));
  f.state.TakeCheckpoint(16, ToBytes("e16"), nullptr);

  f.state.DiscardCheckpointsBelow(16);
  EXPECT_EQ(f.state.OldestCheckpoint(), 16u);
  // Page 0's value at checkpoint 16 must still be served even though it was recorded at 8.
  auto page = f.state.GetPage(0, 16);
  ASSERT_TRUE(page.has_value());
  EXPECT_EQ(ToString(ByteView(page->second.data(), 8)), "page0-v1");
}

TEST(StateTest, GetMetaDataIsConsistentWithParentDigest) {
  StateFixture f;
  for (int i = 0; i < 8; ++i) {
    f.state.Write(static_cast<size_t>(i) * 128, ToBytes("content-" + std::to_string(i)));
  }
  f.state.TakeCheckpoint(8, ToBytes("e"), nullptr);

  // Verify the AdHash relation at every interior node: parent digest commits children.
  for (uint32_t level = 0; level < f.state.leaf_level(); ++level) {
    for (uint64_t idx = 0; idx < f.state.PartsAtLevel(level); ++idx) {
      auto info = f.state.GetNodeInfo(level, idx, 8);
      ASSERT_TRUE(info.has_value());
      auto parts = f.state.GetMetaData(level, idx, 8);
      ASSERT_FALSE(parts.empty());
      AdHash sum;
      for (const auto& part : parts) {
        sum.Add(part.d);
      }
      Writer w;
      w.U32(level);
      w.U64(idx);
      w.U64(info->first);
      WriteDigest(w, sum.Value());
      EXPECT_EQ(ComputeDigest(w.data()), info->second)
          << "level " << level << " index " << idx;
    }
  }
}

TEST(StateTest, PageDigestMatchesGetPage) {
  StateFixture f;
  f.state.Write(3 * 128, ToBytes("the-page"));
  f.state.TakeCheckpoint(8, ToBytes("e"), nullptr);
  auto page = f.state.GetPage(3, 8);
  ASSERT_TRUE(page.has_value());
  auto info = f.state.GetNodeInfo(f.state.leaf_level(), 3, 8);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(ReplicaState::PageDigest(3, page->first, page->second), info->second);
}

TEST(StateTest, FetchedCheckpointReproducesSourceDigest) {
  // Simulate a full state transfer: copy all pages from a source at checkpoint 8 into a fresh
  // replica and check the finalized digest matches.
  StateFixture src;
  for (int i = 0; i < 16; ++i) {
    src.state.Write(static_cast<size_t>(i) * 128 + 7, ToBytes("blk" + std::to_string(i)));
  }
  Digest src_digest = src.state.TakeCheckpoint(8, ToBytes("extra8"), nullptr);

  StateFixture dst;
  for (uint64_t p = 0; p < 16; ++p) {
    auto page = src.state.GetPage(p, 8);
    ASSERT_TRUE(page.has_value());
    dst.state.ApplyFetchedPage(p, page->first, page->second);
  }
  Digest dst_digest = dst.state.FinalizeFetchedCheckpoint(8, ToBytes("extra8"));
  EXPECT_EQ(dst_digest, src_digest);
}

TEST(StateTest, IncrementalDigestMatchesFromScratch) {
  // Property: a state built by many incremental checkpoints has the same digest as one that
  // reaches the same contents in a single step.
  StateFixture a;
  StateFixture b;
  Rng rng(5);
  std::map<size_t, Bytes> final_contents;
  SeqNo seq = 0;
  for (int round = 0; round < 10; ++round) {
    for (int w = 0; w < 3; ++w) {
      size_t page = rng.Below(16);
      Bytes value = rng.RandomBytes(16);
      a.state.Write(page * 128 + 13, value);
      final_contents[page] = value;
    }
    seq += 8;
    a.state.TakeCheckpoint(seq, ToBytes("fin"), nullptr);
  }
  for (const auto& [page, value] : final_contents) {
    b.state.Write(page * 128 + 13, value);
  }
  // NOTE: digests embed each page's lm (last-modified checkpoint), so b must reach the same
  // lm values; we emulate by checkpointing b at every round too, writing the final value at
  // the round when a last wrote it. Instead, simply compare page *contents* here and digest
  // determinism across replicas is covered by CheckpointDigestsEqualForEqualStates.
  for (const auto& [page, value] : final_contents) {
    Bytes out(value.size());
    a.state.Read(page * 128 + 13, out.size(), out.data());
    EXPECT_EQ(out, value);
  }
}

TEST(StateTest, ManyCheckpointsBoundedHistoryAfterDiscard) {
  StateFixture f;
  for (SeqNo seq = 8; seq <= 80; seq += 8) {
    f.state.Write((seq / 8) % 16 * 128, ToBytes("v" + std::to_string(seq)));
    f.state.TakeCheckpoint(seq, ToBytes("e"), nullptr);
    if (seq >= 16) {
      f.state.DiscardCheckpointsBelow(seq - 8);
    }
  }
  EXPECT_EQ(f.state.OldestCheckpoint(), 72u);
  EXPECT_EQ(f.state.NewestCheckpoint(), 80u);
}

class StateParamTest : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(StateParamTest, TransferRoundTripAcrossGeometries) {
  auto [pages, branching] = GetParam();
  ReplicaConfig config = MakeConfig(pages, branching);
  PerfModel model;
  ReplicaState src(&config, &model);
  src.Baseline({});
  Rng rng(pages * 131 + branching);
  for (size_t i = 0; i < pages; ++i) {
    if (rng.Chance(0.7)) {
      src.Write(i * config.page_size, rng.RandomBytes(32));
    }
  }
  Digest d = src.TakeCheckpoint(8, ToBytes("E"), nullptr);

  ReplicaState dst(&config, &model);
  dst.Baseline({});
  for (uint64_t p = 0; p < pages; ++p) {
    auto page = src.GetPage(p, 8);
    ASSERT_TRUE(page.has_value());
    dst.ApplyFetchedPage(p, page->first, page->second);
  }
  EXPECT_EQ(dst.FinalizeFetchedCheckpoint(8, ToBytes("E")), d);
}

INSTANTIATE_TEST_SUITE_P(Geometries, StateParamTest,
                         ::testing::Values(std::make_tuple(1, 4), std::make_tuple(3, 2),
                                           std::make_tuple(16, 4), std::make_tuple(17, 4),
                                           std::make_tuple(64, 8), std::make_tuple(100, 3),
                                           std::make_tuple(256, 16)));

}  // namespace
}  // namespace bft

// Real-clock end-to-end smoke test: 4 replicas + 1 client, parameterized over every
// transport backend (in-process channel, loopback UDP, io_uring) with and without the
// datagram-formation layer.
//
// Every Execute() result is backed by a full reply certificate (f+1 matching non-tentative
// or 2f+1 matching tentative/read-only replies, digest-verified) assembled by the Client
// automaton — the same code path the simulator exercises, now over real datagrams, real
// threads, and the monotonic clock. io_uring variants GTEST_SKIP on kernels (or builds)
// without support; the fallback path itself is covered by UringFallsBackToUdp.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "src/runtime/rt_cluster.h"
#include "src/service/kv_service.h"

namespace bft {
namespace {

RtClusterOptions SmokeOptions(RtClusterOptions::TransportKind transport,
                              bool formation = false) {
  RtClusterOptions options;
  options.config.n = 4;
  options.config.state_pages = 64;
  // These timers now burn wall-clock time: the simulator defaults (50 ms view-change fault
  // timeout) would let one scheduler stall on a loaded/sanitized CI machine trigger a
  // spurious view change and flake the view()==0 assertion below. Loopback ops complete in
  // well under a millisecond, so generous timeouts cost nothing on the happy path.
  options.config.view_change_timeout = 10 * kSecond;
  options.config.max_view_change_timeout = 60 * kSecond;
  options.config.client_retry_timeout = 2 * kSecond;
  options.seed = 2024;
  options.transport = transport;
  options.formation = formation;
  return options;
}

void CommitKvOps(RtClusterOptions options) {
  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  // Trace every request: the CI sanitizer job runs this suite, so the whole stamp path
  // (client dispatch on one loop thread, replica phases on others) gets ASan/UBSan coverage.
  cluster.tracer().set_sample_every(1);
  Client* client = cluster.AddClient();
  cluster.Start();

  // 100 certified operations: 50 PUTs ordered through the three-phase protocol, then 50
  // read-only GETs, each verified against the value the PUT certificate committed.
  for (int i = 0; i < 50; ++i) {
    std::string key = "key-" + std::to_string(i);
    std::string value = "value-" + std::to_string(i);
    std::optional<Bytes> put =
        cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes(value)),
                        /*read_only=*/false, 30 * kSecond);
    ASSERT_TRUE(put.has_value()) << "PUT " << key << " got no reply certificate";
    EXPECT_EQ(ToString(*put), "ok");
  }
  for (int i = 0; i < 50; ++i) {
    std::string key = "key-" + std::to_string(i);
    std::optional<Bytes> got = cluster.Execute(client, KvService::GetOp(ToBytes(key)),
                                               /*read_only=*/true, 30 * kSecond);
    ASSERT_TRUE(got.has_value()) << "GET " << key << " got no reply certificate";
    EXPECT_EQ(ToString(*got), "value-" + std::to_string(i));
  }
  EXPECT_EQ(client->stats().ops_completed, 100u);

  // Every live replica executed all 50 writes (reads bypass ordering). Sampled on each
  // replica's own loop thread.
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    SeqNo executed = 0;
    Replica* replica = cluster.replica(i);
    cluster.RunOn(i, [&executed, replica]() { executed = replica->last_executed(); });
    EXPECT_GE(executed, 50u) << "replica " << i;
  }

  // The last write's commit deliveries race the client's certificate (2f+1 tentative
  // replies suffice), and Stop() does not drain socket backlogs — give the loop threads a
  // bounded window to finish stamping before freezing the timelines.
  auto all_writes_traced = [&cluster]() {
    size_t full = 0;
    for (const TraceTimeline& tl : cluster.tracer().Completed()) {
      full += tl.complete() ? 1 : 0;
    }
    return full == 50;
  };
  for (int spins = 0; !all_writes_traced() && spins < 2000; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  cluster.Stop();
  // Loops are joined: state is safe to read directly. No replica saw a view change or had
  // to reject authentication — a quiet network and honest nodes.
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    EXPECT_EQ(cluster.replica(i)->stats().requests_executed, 50u) << "replica " << i;
    EXPECT_EQ(cluster.replica(i)->view(), 0u) << "replica " << i;
  }

  // Every certified request retired a timeline. The 50 PUTs went through the full ordered
  // pipeline, so their timelines carry all six phases and respect the protocol orderings;
  // read-only GETs bypass ordering and legitimately stay partial (dispatch + certified).
  std::vector<TraceTimeline> traces = cluster.tracer().Completed();
  EXPECT_EQ(cluster.tracer().completed_count(), 100u);
  size_t full = 0;
  for (const TraceTimeline& tl : traces) {
    EXPECT_TRUE(tl.monotonic()) << "client " << tl.client << " ts " << tl.timestamp;
    EXPECT_TRUE(tl.has(TracePhase::kDispatch));
    EXPECT_TRUE(tl.has(TracePhase::kCertified));
    if (tl.complete()) {
      ++full;
      EXPECT_GT(tl.total(), 0) << "wall-clock phases cannot be simultaneous end to end";
    }
  }
  EXPECT_EQ(full, 50u) << "every ordered write should yield a six-phase timeline";

  // The MAC session cache ran hot (PR 3's cache, surfaced at run time this PR): after the
  // first derivations, every authenticator hit the cached HMAC state.
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    hits += cluster.replica(i)->auth().mac_cache_hits();
    misses += cluster.replica(i)->auth().mac_cache_misses();
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(hits, misses) << "steady-state authentication should be cache hits";

  // The harness registry saw the run: protocol counters and the transport's datagram
  // counters are live, and the Prometheus rendering carries them.
  std::string text = cluster.metrics().RenderPrometheusText();
  EXPECT_NE(text.find("bft_messages_in_total"), std::string::npos);
  EXPECT_NE(text.find("bft_transport_datagrams_sent_total"), std::string::npos);

  // Retirement fed the per-phase latency family on the real-clock runtime too: same schema
  // as the simulator, with the percentile summary lines in the exposition.
  EXPECT_EQ(cluster.metrics().GetHistogram("bft_phase_latency_us", "phase=\"total\"")->count(),
            100u);
  EXPECT_GT(cluster.metrics()
                .GetHistogram("bft_phase_latency_us", "phase=\"executed_to_certified\"")
                ->count(),
            0u);
  EXPECT_NE(text.find("bft_phase_latency_us_p99{phase=\"total\"}"), std::string::npos);
  EXPECT_NE(text.find("bft_trace_completed_total 100"), std::string::npos);
}

TEST(UdpSmokeTest, FourReplicasCommit100KvOpsOverLoopback) {
  CommitKvOps(SmokeOptions(RtClusterOptions::TransportKind::kUdp));
}

TEST(UdpSmokeTest, SameClusterOverInProcChannel) {
  CommitKvOps(SmokeOptions(RtClusterOptions::TransportKind::kInProc));
}

TEST(UdpSmokeTest, LoopbackWithFormationLayer) {
  CommitKvOps(SmokeOptions(RtClusterOptions::TransportKind::kUdp, /*formation=*/true));
}

TEST(UdpSmokeTest, InProcWithFormationLayer) {
  CommitKvOps(SmokeOptions(RtClusterOptions::TransportKind::kInProc, /*formation=*/true));
}

TEST(UdpSmokeTest, LoopbackOverIoUring) {
  if (!IoUringTransport::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";
  }
  CommitKvOps(SmokeOptions(RtClusterOptions::TransportKind::kUring));
}

TEST(UdpSmokeTest, LoopbackOverIoUringWithFormation) {
  if (!IoUringTransport::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";
  }
  CommitKvOps(SmokeOptions(RtClusterOptions::TransportKind::kUring, /*formation=*/true));
}

// Corrupt-datagram cell: under a sustained 20% corrupt rate every strict decoder in the
// stack (formation framing, message decode, MAC verification) must DROP the damaged wire
// image — never crash, never certify it — while retransmission keeps the ops committing.
// Complements formation_test's in-memory fuzz cases with real corruption on live links.
void CommitKvOpsThroughCorruption(RtClusterOptions options) {
  // Faults burn real retransmission time; a short retry base keeps the test quick.
  options.config.client_retry_timeout = 100 * kMillisecond;
  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();
  cluster.Start();

  FaultSpec spec;
  spec.corrupt = 0.2;
  cluster.faults().SetDefaultFaults(spec);

  for (int i = 0; i < 20; ++i) {
    std::string key = "key-" + std::to_string(i);
    std::string value = "value-" + std::to_string(i);
    std::optional<Bytes> put =
        cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes(value)),
                        /*read_only=*/false, 60 * kSecond);
    ASSERT_TRUE(put.has_value()) << "PUT " << key << " through corruption";
    EXPECT_EQ(ToString(*put), "ok");
    std::optional<Bytes> got = cluster.Execute(client, KvService::GetOp(ToBytes(key)),
                                               /*read_only=*/false, 60 * kSecond);
    ASSERT_TRUE(got.has_value()) << "GET " << key << " through corruption";
    EXPECT_EQ(ToString(*got), value) << "a corrupted datagram must never change a result";
  }

  cluster.faults().ClearFaults();
  EXPECT_GT(cluster.faults().injected_count(), 0u) << "the schedule must actually corrupt";
  cluster.Stop();
  std::string text = cluster.metrics().RenderPrometheusText();
  EXPECT_NE(text.find("bft_fault_injected_total{kind=\"corrupt\"}"), std::string::npos);
}

TEST(UdpSmokeTest, CorruptDatagramsDropCleanlyOverLoopback) {
  CommitKvOpsThroughCorruption(SmokeOptions(RtClusterOptions::TransportKind::kUdp));
}

TEST(UdpSmokeTest, CorruptDatagramsDropCleanlyOverInProc) {
  CommitKvOpsThroughCorruption(SmokeOptions(RtClusterOptions::TransportKind::kInProc));
}

TEST(UdpSmokeTest, CorruptDatagramsDropCleanlyWithFormation) {
  // Corruption lands on fully-formed datagrams here, so the framing decoder itself (magic,
  // lengths, truncation) eats most of the damage — the closest real analogue to bit rot.
  CommitKvOpsThroughCorruption(
      SmokeOptions(RtClusterOptions::TransportKind::kUdp, /*formation=*/true));
}

TEST(UdpSmokeTest, CorruptDatagramsDropCleanlyOverIoUring) {
  if (!IoUringTransport::Supported()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel/build";
  }
  CommitKvOpsThroughCorruption(SmokeOptions(RtClusterOptions::TransportKind::kUring));
}

TEST(UdpSmokeTest, UringFallsBackToUdp) {
  // Requesting kUring must always yield a working cluster: where io_uring is unsupported the
  // constructor falls back to UDP sockets (with a stderr warning), and where it is supported
  // this doubles the uring coverage. Either way the ops must commit.
  RtClusterOptions options = SmokeOptions(RtClusterOptions::TransportKind::kUring);
  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();
  cluster.Start();
  std::optional<Bytes> put = cluster.Execute(
      client, KvService::PutOp(ToBytes("k"), ToBytes("v")), /*read_only=*/false, 30 * kSecond);
  ASSERT_TRUE(put.has_value());
  EXPECT_EQ(ToString(*put), "ok");
  cluster.Stop();
}

}  // namespace
}  // namespace bft

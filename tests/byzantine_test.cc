// Adversarial tests: actively malicious behaviour beyond crash/mute — tampered messages,
// replayed traffic, forged requests, selective delivery — must never violate safety.
#include <gtest/gtest.h>

#include "src/core/messages.h"
#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions SmallCluster(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  return options;
}

ServiceFactory CounterFactory() {
  return [](NodeId) { return std::make_unique<CounterService>(); };
}

uint64_t CounterAt(Cluster& cluster, int replica) {
  uint64_t v = 0;
  cluster.replica(replica)->state().Read(0, sizeof(v), reinterpret_cast<uint8_t*>(&v));
  return v;
}

TEST(ByzantineTest, TamperedMessagesAreRejectedEverywhere) {
  Cluster cluster(SmallCluster(61), CounterFactory());
  // Flip a byte in every protocol message from replica 3 (a Byzantine sender corrupting its
  // own traffic): receivers must reject them all, and the group still commits.
  cluster.net().SetFilter([](NodeId src, NodeId dst, const Bytes& msg) {
    if (src == 3 && msg.size() > 32) {
      // Flip a byte in replica 0's authenticator slot (the 4-slot trailer ends the message;
      // slot 3 is the sender's own and unchecked): decodes fine, replica 0's MAC check fails.
      const_cast<Bytes&>(msg)[msg.size() - 32] ^= 0x5a;
    }
    return Network::FilterAction::kDeliver;
  });
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 5; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
  uint64_t rejected = 0;
  for (int r = 0; r < 3; ++r) {
    rejected += cluster.replica(r)->stats().rejected_auth;
  }
  EXPECT_GT(rejected, 0u);
}

TEST(ByzantineTest, ReplayedTrafficDoesNotDoubleExecute) {
  Cluster cluster(SmallCluster(62), CounterFactory());
  // Record and immediately re-inject every client request (a replay attacker on the wire).
  Cluster* cptr = &cluster;
  cluster.net().SetFilter([cptr](NodeId src, NodeId dst, const Bytes& msg) {
    if (IsClientId(src)) {
      Bytes copy = msg;
      cptr->sim().Schedule(2 * kMillisecond, [cptr, dst, copy]() {
        cptr->net().Send(9999, dst, copy, cptr->sim().Now());
      });
    }
    return Network::FilterAction::kDeliver;
  });
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 8; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i) << "replay caused double execution";
  }
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_EQ(CounterAt(cluster, 0), 8u);
}

TEST(ByzantineTest, ForgedRequestsFromUnknownClientRejected) {
  Cluster cluster(SmallCluster(63), CounterFactory());
  // Inject a request claiming to be from a client that never established keys/identity and
  // with a garbage authenticator.
  RequestMsg forged;
  forged.client = kClientIdBase + 77;
  forged.timestamp = 1;
  forged.op = CounterService::IncOp();
  forged.auth = Bytes(32, 0x42);
  Bytes wire = EncodeMessage(Message(forged));
  for (NodeId r = 0; r < 4; ++r) {
    cluster.net().Send(9999, r, wire, cluster.sim().Now());
  }
  cluster.sim().RunFor(2 * kSecond);
  EXPECT_EQ(CounterAt(cluster, 0), 0u) << "forged request executed";

  // The group still works for a real client.
  Client* client = cluster.AddClient();
  EXPECT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
}

TEST(ByzantineTest, SelectiveDeliveryCannotForkState) {
  // The Byzantine network delivers replica 1's messages only to replica 2 and vice versa —
  // an attempt to make two "sides" see different histories. Safety: all replicas that
  // execute agree.
  Cluster cluster(SmallCluster(64), CounterFactory());
  cluster.net().SetFilter([](NodeId src, NodeId dst, const Bytes& msg) {
    if ((src == 1 && dst == 3) || (src == 3 && dst == 1)) {
      return Network::FilterAction::kDrop;
    }
    return Network::FilterAction::kDeliver;
  });
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 10; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
  cluster.sim().RunFor(2 * kSecond);
  // Every replica that executed reached the same value; nobody diverged.
  for (int r = 0; r < 4; ++r) {
    if (cluster.replica(r)->last_executed() >= 10) {
      EXPECT_EQ(CounterAt(cluster, r), 10u) << "replica " << r << " forked";
    }
  }
}

TEST(ByzantineTest, FaultyClientCannotMarkWritesReadOnly) {
  // A Byzantine client sets the read-only flag on a mutating op. The service-specific
  // IsReadOnly upcall rejects the classification and the op goes through the full protocol
  // (Section 5.1.3) — or, at worst, never executes; it must not execute divergently.
  Cluster cluster(SmallCluster(65), CounterFactory());
  Client* client = cluster.AddClient();
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), /*read_only=*/true, 60 * kSecond);
  ASSERT_TRUE(result.has_value());
  cluster.sim().RunFor(2 * kSecond);
  // Executed exactly once on every replica, through the ordered path.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(CounterAt(cluster, r), 1u) << "replica " << r;
  }
}

TEST(ByzantineTest, DelayAttackCannotCauseBadReplies) {
  // An adversary that delays (but eventually delivers) all messages from the two fastest
  // replicas: safety must hold; the client simply waits longer.
  ClusterOptions options = SmallCluster(66);
  Cluster cluster(options, CounterFactory());
  Cluster* cptr = &cluster;
  cluster.net().SetFilter([cptr](NodeId src, NodeId dst, const Bytes& msg) {
    if (src <= 1 && dst <= 3 && cptr->sim().rng().Chance(0.5)) {
      Bytes copy = msg;
      cptr->sim().Schedule(20 * kMillisecond, [cptr, src, dst, copy]() {
        cptr->net().Send(src, dst, copy, cptr->sim().Now());
      });
      return Network::FilterAction::kDrop;  // dropped now, re-injected later
    }
    return Network::FilterAction::kDeliver;
  });
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 6; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i) << "delay attack broke safety";
  }
}

TEST(ByzantineTest, MuteReplicaPlusMessageLossStillLive) {
  // f=1 fault budget fully spent on a mute replica, *plus* benign 3% loss on top: the
  // asynchronous-safety design must still deliver (retransmissions cover the loss).
  ClusterOptions options = SmallCluster(67);
  Cluster cluster(options, CounterFactory());
  cluster.replica(2)->SetMute(true);
  cluster.net().SetDropProbability(0.03);
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 10; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value()) << "op " << i;
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

}  // namespace
}  // namespace bft

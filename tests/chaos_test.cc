// Randomized fault-schedule ("chaos") property tests.
//
// Each run drives concurrent clients against a replicated KV store while a scheduler injects
// a rotating sequence of faults — one at a time, respecting f=1: Byzantine-silent replicas,
// primary isolation, network-wide loss, short partitions. After healing, the suite checks the
// algorithm's core properties:
//   safety      — all live replicas converge to bit-identical state
//   exactly-once — each client's counter equals the number of operations it completed
//   liveness    — the run makes progress (a minimum number of operations completes)
// Every run is deterministic in its seed, so failures replay exactly.
#include <gtest/gtest.h>

#include "src/service/kv_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, ConvergenceAndExactlyOnceUnderRandomFaults) {
  uint64_t seed = GetParam();
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 16;
  options.config.log_size = 32;
  options.config.state_pages = 64;
  options.config.partition_branching = 8;
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Rng rng(seed * 7919);

  // Three paced clients (one op per ~5 ms), each maintaining a per-client counter key.
  constexpr size_t kClients = 3;
  std::vector<Client*> clients;
  std::vector<uint64_t> completed(kClients, 0);
  bool stop_pumping = false;
  for (size_t c = 0; c < kClients; ++c) {
    clients.push_back(cluster.AddClient());
  }
  std::function<void(size_t)> pump = [&](size_t c) {
    if (stop_pumping) {
      return;
    }
    uint64_t next = completed[c] + 1;
    Bytes value = ToBytes(std::to_string(next));
    clients[c]->Invoke(KvService::PutOp(ToBytes("ctr" + std::to_string(c)), value), false,
                       [&, c](Bytes) {
                         ++completed[c];
                         cluster.sim().Schedule(5 * kMillisecond, [&pump, c]() { pump(c); });
                       });
  };
  for (size_t c = 0; c < kClients; ++c) {
    cluster.sim().Schedule(c * kMillisecond, [&pump, c]() { pump(c); });
  }

  // Fault scheduler: one fault active at a time, 1 s on, 1 s healthy.
  int muted = -1;
  for (int round = 0; round < 6; ++round) {
    cluster.sim().RunFor(kSecond);
    switch (rng.Below(4)) {
      case 0: {  // Byzantine-silent replica
        muted = static_cast<int>(rng.Below(4));
        cluster.replica(muted)->SetMute(true);
        break;
      }
      case 1: {  // isolate one replica
        cluster.net().Partition({static_cast<NodeId>(rng.Below(4))});
        break;
      }
      case 2: {  // lossy network (benign, affects everyone)
        cluster.net().SetDropProbability(0.08);
        break;
      }
      case 3: {  // crash-like outage of one replica, then reconnect
        cluster.net().SetNodeDown(static_cast<NodeId>(rng.Below(4)), true);
        break;
      }
    }
    cluster.sim().RunFor(kSecond);
    // Heal everything.
    if (muted >= 0) {
      cluster.replica(muted)->SetMute(false);
      muted = -1;
    }
    cluster.net().HealPartition();
    cluster.net().SetDropProbability(0.0);
    for (NodeId r = 0; r < 4; ++r) {
      cluster.net().SetNodeDown(r, false);
    }
  }

  // Quiesce: stop the load, let in-flight ops finish and the group converge.
  stop_pumping = true;
  cluster.sim().RunFor(10 * kSecond);
  uint64_t total = completed[0] + completed[1] + completed[2];
  EXPECT_GT(total, 50u) << "liveness: almost nothing committed under chaos";

  // Let every replica reach the same execution point (status retransmission / transfer).
  SeqNo max_exec = 0;
  for (int r = 0; r < 4; ++r) {
    max_exec = std::max(max_exec, cluster.replica(r)->last_executed());
  }
  cluster.sim().RunUntilCondition(
      [&cluster, max_exec]() {
        for (int r = 0; r < 4; ++r) {
          if (cluster.replica(r)->last_executed() < max_exec) {
            return false;
          }
        }
        return true;
      },
      cluster.sim().Now() + 60 * kSecond);

  // Exactly-once: each per-client counter key holds the count of completed ops... or is at
  // most one ahead (the in-flight op may have committed without its reply certificate).
  Client* reader = cluster.AddClient();
  for (size_t c = 0; c < kClients; ++c) {
    std::optional<Bytes> r = cluster.Execute(
        reader, KvService::GetOp(ToBytes("ctr" + std::to_string(c))), false, 120 * kSecond);
    ASSERT_TRUE(r.has_value());
    uint64_t stored = r->empty() ? 0 : std::stoull(ToString(*r));
    EXPECT_GE(stored, completed[c]) << "client " << c << ": committed op lost";
    EXPECT_LE(stored, completed[c] + 1) << "client " << c << ": double execution";
  }

  // Safety: replicas that reached the same sequence number hold identical state bytes.
  std::map<SeqNo, Bytes> state_at;
  for (int r = 0; r < 4; ++r) {
    Replica* rep = cluster.replica(r);
    Bytes snapshot(rep->state().data(), rep->state().data() + rep->state().size_bytes());
    auto [it, inserted] = state_at.emplace(rep->last_executed(), std::move(snapshot));
    if (!inserted) {
      EXPECT_EQ(it->second,
                Bytes(rep->state().data(), rep->state().data() + rep->state().size_bytes()))
          << "replicas at seq " << rep->last_executed() << " diverged (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace bft

// Client-proxy behaviour tests: reply certificates, digest-reply fallback, view tracking,
// and retransmission.
#include <gtest/gtest.h>

#include "src/service/counter_service.h"
#include "src/service/null_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions Options(uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  options.config.checkpoint_period = 16;
  options.config.log_size = 32;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  return options;
}

TEST(ClientTest, FallsBackWhenDesignatedReplierIsSilent) {
  // Drop every reply carrying a full result on its first attempt: the client assembles the
  // digest certificate but lacks the result, re-requests with "everyone replies", and still
  // completes.
  Cluster cluster(Options(101), [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  size_t dropped = 0;
  cluster.net().SetFilter([&dropped](NodeId src, NodeId dst, const Bytes& msg) {
    if (!IsClientId(dst) || dropped > 8) {
      return Network::FilterAction::kDeliver;
    }
    std::optional<Message> m = DecodeMessage(msg);
    if (m.has_value() && std::holds_alternative<ReplyMsg>(*m) &&
        std::get<ReplyMsg>(*m).has_result) {
      ++dropped;
      return Network::FilterAction::kDrop;
    }
    return Network::FilterAction::kDeliver;
  });
  std::optional<Bytes> result =
      cluster.Execute(client, NullService::MakeOp(false, 16, 4096), false, 120 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 4096u);
  EXPECT_GT(dropped, 0u);
}

TEST(ClientTest, TracksViewAndFollowsNewPrimary) {
  Cluster cluster(Options(102), [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  EXPECT_EQ(client->known_view(), 0u);

  cluster.replica(0)->SetMute(true);
  ASSERT_TRUE(
      cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond).has_value());
  EXPECT_GE(client->known_view(), 1u) << "client failed to learn the new view from replies";

  // Subsequent requests go straight to the new primary: no extra retransmissions needed.
  uint64_t retrans_before = client->stats().retransmissions;
  ASSERT_TRUE(
      cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond).has_value());
  EXPECT_EQ(client->stats().retransmissions, retrans_before);
}

TEST(ClientTest, RetransmitsWhenPrimaryLosesRequest) {
  // Drop the client's first transmission entirely: the retry timer must recover the op.
  Cluster cluster(Options(103), [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();
  bool first = true;
  cluster.net().SetFilter([&first](NodeId src, NodeId dst, const Bytes& msg) {
    if (IsClientId(src) && first) {
      first = false;
      return Network::FilterAction::kDrop;
    }
    return Network::FilterAction::kDeliver;
  });
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(client->stats().retransmissions, 1u);
  EXPECT_EQ(CounterService::DecodeValue(*result), 1u);
}

TEST(ClientTest, StatsAccumulateAcrossOperations) {
  Cluster cluster(Options(104), [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  EXPECT_EQ(client->stats().ops_completed, 5u);
  EXPECT_GE(client->stats().total_latency, 5 * client->stats().last_latency / 2);
  EXPECT_FALSE(client->busy());
}

TEST(ClientTest, TentativeRepliesNeedQuorumNotWeakCertificate) {
  // With one replica mute, only 3 replies arrive. Tentative replies need 2f+1 = 3 matching,
  // so operations still complete — but with zero margin; verify they do.
  Cluster cluster(Options(105), [](NodeId) { return std::make_unique<CounterService>(); });
  cluster.replica(3)->SetMute(true);
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 3; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

}  // namespace
}  // namespace bft

// Integration tests for the normal-case three-phase protocol (Chapter 2/3) on a simulated
// cluster: agreement, exactly-once semantics, batching, optimizations, and fail-stop faults.
#include <gtest/gtest.h>

#include "src/service/counter_service.h"
#include "src/service/kv_service.h"
#include "src/service/null_service.h"
#include "src/workload/cluster.h"

namespace bft {
namespace {

ClusterOptions SmallCluster(uint64_t seed = 1) {
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  return options;
}

ServiceFactory CounterFactory() {
  return [](NodeId) { return std::make_unique<CounterService>(); };
}

TEST(ProtocolTest, SingleOperationCommits) {
  Cluster cluster(SmallCluster(), CounterFactory());
  Client* client = cluster.AddClient();
  std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 1u);
}

TEST(ProtocolTest, SequentialOperationsAllExecuteInOrder) {
  Cluster cluster(SmallCluster(), CounterFactory());
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 20; ++i) {
    std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
    ASSERT_TRUE(result.has_value()) << "op " << i;
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

TEST(ProtocolTest, AllReplicasConverge) {
  Cluster cluster(SmallCluster(), CounterFactory());
  Client* client = cluster.AddClient();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  // Let commits propagate everywhere, then check every replica executed everything.
  cluster.sim().RunFor(2 * kSecond);
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    EXPECT_GE(cluster.replica(i)->last_executed(), 10u) << "replica " << i;
    uint64_t value = 0;
    cluster.replica(i)->state().Read(0, sizeof(value), reinterpret_cast<uint8_t*>(&value));
    EXPECT_EQ(value, 10u) << "replica " << i;
  }
}

TEST(ProtocolTest, ReadOnlyOperationSingleRoundTrip) {
  Cluster cluster(SmallCluster(), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  cluster.sim().RunFor(kSecond);

  uint64_t msgs_before = cluster.net().messages_sent();
  std::optional<Bytes> result =
      cluster.Execute(client, CounterService::GetOp(), /*read_only=*/true);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(CounterService::DecodeValue(*result), 1u);
  // Read-only: one multicast request + n replies (plus possibly status traffic).
  uint64_t msgs = cluster.net().messages_sent() - msgs_before;
  EXPECT_LE(msgs, 10u);
}

TEST(ProtocolTest, ReadOnlyLatencyBeatsReadWrite) {
  Cluster cluster(SmallCluster(), CounterFactory());
  Client* client = cluster.AddClient();
  ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  SimTime rw = client->stats().last_latency;
  ASSERT_TRUE(cluster.Execute(client, CounterService::GetOp(), true).has_value());
  SimTime ro = client->stats().last_latency;
  EXPECT_LT(ro, rw);
}

TEST(ProtocolTest, MultipleClientsInterleave) {
  Cluster cluster(SmallCluster(), CounterFactory());
  std::vector<Client*> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(cluster.AddClient());
  }
  int completed = 0;
  for (Client* c : clients) {
    c->Invoke(CounterService::IncOp(), false, [&completed](Bytes) { ++completed; });
  }
  ASSERT_TRUE(cluster.sim().RunUntilCondition([&completed]() { return completed == 5; },
                                              10 * kSecond));
  cluster.sim().RunFor(kSecond);
  uint64_t value = 0;
  cluster.replica(0)->state().Read(0, sizeof(value), reinterpret_cast<uint8_t*>(&value));
  EXPECT_EQ(value, 5u);
}

TEST(ProtocolTest, SurvivesOneCrashedBackup) {
  Cluster cluster(SmallCluster(), CounterFactory());
  cluster.replica(2)->Crash();  // a backup
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 5; ++i) {
    std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

TEST(ProtocolTest, SurvivesOneMuteBackup) {
  Cluster cluster(SmallCluster(), CounterFactory());
  cluster.replica(1)->SetMute(true);  // Byzantine-silent backup
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 5; ++i) {
    std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

TEST(ProtocolTest, ExactlyOnceUnderMessageLoss) {
  ClusterOptions options = SmallCluster(7);
  Cluster cluster(options, CounterFactory());
  cluster.net().SetDropProbability(0.05);
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 15; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value()) << "op " << i;
    EXPECT_EQ(CounterService::DecodeValue(*result), i) << "duplicate or lost execution";
  }
}

TEST(ProtocolTest, ExactlyOnceUnderDuplication) {
  ClusterOptions options = SmallCluster(8);
  Cluster cluster(options, CounterFactory());
  cluster.net().SetDropProbability(0.02);
  Cluster* c = &cluster;
  (void)c;
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 10; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

TEST(ProtocolTest, KvStoreBasicOperations) {
  ClusterOptions options = SmallCluster(3);
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();

  auto result = cluster.Execute(client, KvService::PutOp(ToBytes("key1"), ToBytes("value1")));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToString(*result), "ok");

  result = cluster.Execute(client, KvService::GetOp(ToBytes("key1")), true);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToString(*result), "value1");

  result = cluster.Execute(client, KvService::DelOp(ToBytes("key1")));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(ToString(*result), "ok");

  result = cluster.Execute(client, KvService::GetOp(ToBytes("key1")), true);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->empty());
}

TEST(ProtocolTest, LargeRequestUsesSeparateTransmission) {
  ClusterOptions options = SmallCluster(4);
  Cluster cluster(options, [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  // 4 KB argument: above the 255-byte inline threshold.
  std::optional<Bytes> result =
      cluster.Execute(client, NullService::MakeOp(false, 4096, 16));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 16u);
}

TEST(ProtocolTest, LargeReplyUsesDigestReplies) {
  ClusterOptions options = SmallCluster(5);
  Cluster cluster(options, [](NodeId) { return std::make_unique<NullService>(); });
  Client* client = cluster.AddClient();
  std::optional<Bytes> result = cluster.Execute(client, NullService::MakeOp(false, 16, 4096));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->size(), 4096u);
}

TEST(ProtocolTest, GarbageCollectionAdvancesWatermarks) {
  ClusterOptions options = SmallCluster(6);
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();
  // Push well past the checkpoint period (8) so the low-water mark must advance.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
  }
  cluster.sim().RunFor(2 * kSecond);
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    EXPECT_GE(cluster.replica(i)->low_water(), 8u) << "replica " << i;
    EXPECT_GT(cluster.replica(i)->stats().stable_checkpoints, 0u);
  }
}

TEST(ProtocolTest, BatchingAssignsOneSeqToManyRequests) {
  ClusterOptions options = SmallCluster(9);
  options.config.max_batch_requests = 8;
  Cluster cluster(options, CounterFactory());
  std::vector<Client*> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(cluster.AddClient());
  }
  int completed = 0;
  for (Client* c : clients) {
    c->Invoke(CounterService::IncOp(), false, [&completed](Bytes) { ++completed; });
  }
  ASSERT_TRUE(
      cluster.sim().RunUntilCondition([&completed]() { return completed == 8; }, 10 * kSecond));
  // With batching, 8 requests should need far fewer than 8 sequence numbers.
  EXPECT_LT(cluster.replica(0)->last_executed(), 8u);
  cluster.sim().RunFor(kSecond);
  uint64_t value = 0;
  cluster.replica(0)->state().Read(0, sizeof(value), reinterpret_cast<uint8_t*>(&value));
  EXPECT_EQ(value, 8u);
}

TEST(ProtocolTest, TentativeExecutionDisabledStillCorrect) {
  ClusterOptions options = SmallCluster(10);
  options.config.tentative_execution = false;
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 5; ++i) {
    std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

TEST(ProtocolTest, SignatureModeBftPk) {
  ClusterOptions options = SmallCluster(11);
  options.config.auth_mode = AuthMode::kSignature;
  // Signature-mode operations take tens of milliseconds; scale the timers accordingly so the
  // slow crypto is not mistaken for a faulty primary (as a deployment would configure them).
  options.config.view_change_timeout = 5 * kSecond;
  options.config.client_retry_timeout = 10 * kSecond;
  Cluster cluster(options, CounterFactory());
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 3; ++i) {
    std::optional<Bytes> result =
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(CounterService::DecodeValue(*result), i);
  }
}

TEST(ProtocolTest, SignatureModeSlowerThanMacMode) {
  SimTime mac_latency = 0;
  SimTime sig_latency = 0;
  {
    Cluster cluster(SmallCluster(12), CounterFactory());
    Client* client = cluster.AddClient();
    ASSERT_TRUE(cluster.Execute(client, CounterService::IncOp()).has_value());
    mac_latency = client->stats().last_latency;
  }
  {
    ClusterOptions options = SmallCluster(12);
    options.config.auth_mode = AuthMode::kSignature;
    Cluster cluster(options, CounterFactory());
    Client* client = cluster.AddClient();
    ASSERT_TRUE(
        cluster.Execute(client, CounterService::IncOp(), false, 120 * kSecond).has_value());
    sig_latency = client->stats().last_latency;
  }
  // The paper's headline: MACs beat signatures by orders of magnitude.
  EXPECT_GT(sig_latency, 10 * mac_latency);
}

TEST(ProtocolTest, MoreReplicasStillCommit) {
  for (int n : {7, 10}) {
    ClusterOptions options = SmallCluster(static_cast<uint64_t>(n));
    options.config.n = n;
    Cluster cluster(options, CounterFactory());
    Client* client = cluster.AddClient();
    std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
    ASSERT_TRUE(result.has_value()) << "n=" << n;
    EXPECT_EQ(CounterService::DecodeValue(*result), 1u);
  }
}

}  // namespace
}  // namespace bft

// View-change walkthrough: watch the group detect a faulty primary, run the view-change
// protocol (Chapter 3), and resume with committed state intact.
#include <cstdio>

#include "src/service/kv_service.h"
#include "src/workload/cluster.h"

using namespace bft;

int main() {
  ClusterOptions options;
  options.seed = 99;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.view_change_timeout = 30 * kMillisecond;
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();

  auto put = [&](const char* k, const char* v) {
    auto r = cluster.Execute(client, KvService::PutOp(ToBytes(k), ToBytes(v)), false,
                             120 * kSecond);
    std::printf("put %-8s = %-10s -> %s   (view %lu, primary %u)\n", k, v,
                r ? ToString(*r).c_str() : "TIMEOUT", cluster.replica(1)->view(),
                cluster.CurrentPrimary());
  };
  auto get = [&](const char* k) {
    auto r = cluster.Execute(client, KvService::GetOp(ToBytes(k)), true, 120 * kSecond);
    std::printf("get %-8s            -> %s\n", k, r ? ToString(*r).c_str() : "TIMEOUT");
  };

  put("alpha", "1");
  put("beta", "2");

  std::printf("\n--- replica 0 (primary of view 0) goes Byzantine-silent ---\n");
  cluster.replica(0)->SetMute(true);

  // The next operation stalls until the backups' timers expire; they multicast VIEW-CHANGE
  // messages, the new primary collects a quorum plus acks, runs the decision procedure, and
  // multicasts NEW-VIEW. The client's request is then re-proposed in the new view.
  put("gamma", "3");

  std::printf("\nview-change statistics:\n");
  for (int i = 1; i < 4; ++i) {
    const Replica::Stats& s = cluster.replica(i)->stats();
    std::printf("  replica %d: view=%lu view_changes_started=%lu new_views_entered=%lu\n", i,
                cluster.replica(i)->view(), s.view_changes_started, s.new_views_entered);
  }

  std::printf("\n--- committed state survived the view change ---\n");
  get("alpha");
  get("beta");
  get("gamma");

  std::printf("\n--- the old primary comes back; it catches up via status messages ---\n");
  cluster.replica(0)->SetMute(false);
  cluster.sim().RunFor(5 * kSecond);
  put("delta", "4");
  std::printf("replica 0 is now at view %lu, executed through seq %lu\n",
              cluster.replica(0)->view(), cluster.replica(0)->last_executed());
  return 0;
}

// Quickstart: replicate a counter service across 4 replicas (tolerating f=1 Byzantine fault),
// issue operations from a client, and survive a replica crash.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

using namespace bft;

int main() {
  // 1. Configure a group of n = 3f+1 = 4 replicas.
  ClusterOptions options;
  options.seed = 2026;
  options.config.n = 4;
  options.config.checkpoint_period = 16;
  options.config.log_size = 32;

  // 2. Bring up the cluster. Each replica runs its own instance of the service; the factory
  //    is called once per replica.
  Cluster cluster(options, [](NodeId replica) {
    std::printf("starting CounterService on replica %u\n", replica);
    return std::make_unique<CounterService>();
  });

  // 3. Attach a client and invoke operations. Execute() drives the simulation until the
  //    client has assembled a reply certificate (f+1 matching replies).
  Client* client = cluster.AddClient();
  for (int i = 0; i < 5; ++i) {
    std::optional<Bytes> result = cluster.Execute(client, CounterService::IncOp());
    std::printf("inc -> %lu   (latency %.0f us)\n",
                CounterService::DecodeValue(result.value()),
                static_cast<double>(client->stats().last_latency) / kMicrosecond);
  }

  // 4. Read-only operations take a single round trip (Section 5.1.3).
  std::optional<Bytes> value =
      cluster.Execute(client, CounterService::GetOp(), /*read_only=*/true);
  std::printf("get -> %lu   (read-only latency %.0f us)\n",
              CounterService::DecodeValue(value.value()),
              static_cast<double>(client->stats().last_latency) / kMicrosecond);

  // 5. Silence a backup (a Byzantine fault): with f=1 the service keeps running.
  std::printf("\nsilencing replica 2 (a backup)...\n");
  cluster.replica(2)->SetMute(true);
  std::optional<Bytes> after = cluster.Execute(client, CounterService::IncOp());
  std::printf("inc with 3/4 replicas participating -> %lu\n",
              CounterService::DecodeValue(after.value()));
  cluster.replica(2)->SetMute(false);  // back to full strength (f=1 means ONE fault at a time)
  cluster.sim().RunFor(kSecond);

  // 6. Crash the primary: a view change elects a new one (takes a timeout).
  std::printf("crashing replica 0 (the primary)... the group elects a new primary\n");
  cluster.replica(0)->Crash();
  after = cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
  std::printf("inc after view change -> %lu  (now in view %lu)\n",
              CounterService::DecodeValue(after.value()), cluster.replica(1)->view());

  std::printf("\nquickstart complete\n");
  return 0;
}

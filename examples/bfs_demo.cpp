// BFS demo: a Byzantine-fault-tolerant NFS-like file system (thesis Section 6.3), with a
// silent-Byzantine replica injected mid-run.
#include <cstdio>

#include "src/bfs/bfs_service.h"
#include "src/workload/cluster.h"

using namespace bft;

namespace {
Bytes Must(std::optional<Bytes> r, const char* what) {
  if (!r.has_value()) {
    std::printf("FATAL: %s timed out\n", what);
    exit(1);
  }
  return *r;
}
}  // namespace

int main() {
  ClusterOptions options;
  options.seed = 7;
  options.config.state_pages = 256;
  options.config.page_size = 1024;
  options.config.checkpoint_period = 16;
  options.config.log_size = 32;
  options.config.partition_branching = 16;
  Cluster cluster(options, [](NodeId) { return std::make_unique<BfsService>(); });
  Client* client = cluster.AddClient();

  auto exec = [&](Bytes op, bool ro = false) {
    return Must(cluster.Execute(client, std::move(op), ro, 120 * kSecond), "bfs op");
  };

  // Build a small tree: /src/main.cc and /src/util.cc.
  auto src = BfsService::DecodeAttr(exec(BfsService::MkdirOp(BfsService::kRootIno, "src")));
  std::printf("mkdir /src          -> inode %u\n", src->ino);
  auto main_cc = BfsService::DecodeAttr(exec(BfsService::CreateOp(src->ino, "main.cc")));
  auto util_cc = BfsService::DecodeAttr(exec(BfsService::CreateOp(src->ino, "util.cc")));
  std::printf("create two files    -> inodes %u, %u\n", main_cc->ino, util_cc->ino);

  Bytes body = ToBytes("int main() { return bft::Run(); }\n");
  exec(BfsService::WriteOp(main_cc->ino, 0, body));
  std::printf("write %zu bytes      -> /src/main.cc\n", body.size());

  // A mute (Byzantine-silent) replica changes nothing for clients: f=1 is tolerated.
  std::printf("\nsilencing replica 3 (Byzantine fault)...\n");
  cluster.replica(3)->SetMute(true);

  Bytes read_back = BfsService::DecodeData(
      exec(BfsService::ReadOp(main_cc->ino, 0, static_cast<uint32_t>(body.size())), true));
  std::printf("read back           -> \"%.*s...\" (%zu bytes, read-only path)\n", 20,
              reinterpret_cast<const char*>(read_back.data()), read_back.size());

  exec(BfsService::RenameOp(src->ino, "util.cc", BfsService::kRootIno, "util_moved.cc"));
  auto listing = BfsService::DecodeDir(exec(BfsService::ReaddirOp(BfsService::kRootIno), true));
  std::printf("readdir /           ->");
  for (const auto& [name, ino] : listing) {
    std::printf(" %s(%u)", name.c_str(), ino);
  }
  std::printf("\n");

  // The file's mtime came from the replicas' agreed non-deterministic value, not any local
  // clock (Section 5.4).
  auto attr = BfsService::DecodeAttr(exec(BfsService::GetAttrOp(main_cc->ino), true));
  std::printf("getattr main.cc     -> size=%u mtime=%lu nlink=%u\n", attr->size, attr->mtime,
              attr->nlink);

  std::printf("\nbfs demo complete (replica 3 was Byzantine-silent throughout)\n");
  return 0;
}

// Proactive recovery walkthrough (Chapter 4): a replica's state is corrupted by an
// "attacker"; the watchdog-triggered recovery changes keys, estimates its high-water mark,
// runs a recovery request through the protocol, detects the corrupt pages with the partition
// tree, and repairs them from the other replicas.
#include <cstdio>

#include "src/service/kv_service.h"
#include "src/workload/cluster.h"

using namespace bft;

int main() {
  ClusterOptions options;
  options.seed = 123;
  options.config.checkpoint_period = 4;
  options.config.log_size = 8;
  options.config.state_pages = 64;
  options.config.proactive_recovery = true;
  options.config.watchdog_period = 3600 * kSecond;  // triggered manually below
  options.config.key_refresh_period = 3600 * kSecond;
  options.config.recovery_reboot_time = 300 * kMillisecond;
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  Client* client = cluster.AddClient();

  for (int i = 0; i < 12; ++i) {
    std::string key = "key" + std::to_string(i);
    cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes("value")), false,
                    60 * kSecond);
  }
  std::printf("stored 12 keys; stable checkpoint at seq %lu\n",
              cluster.replica(2)->low_water());

  std::printf("\n--- attacker scribbles over 6 pages of replica 2's memory ---\n");
  cluster.replica(2)->CorruptStatePages(6);

  std::printf("--- watchdog fires on replica 2: reboot, new keys, estimation, state check ---\n");
  cluster.replica(2)->StartRecovery();

  // Keep the service busy while the recovery runs (clients notice nothing).
  int i = 12;
  while (cluster.replica(2)->stats().recoveries < 1 && i < 200) {
    std::string key = "key" + std::to_string(i++);
    auto r = cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes("value")), false,
                             120 * kSecond);
    if (!r.has_value()) {
      std::printf("op %d timed out!\n", i);
    }
    cluster.sim().RunFor(100 * kMillisecond);
  }

  const Replica::Stats& s = cluster.replica(2)->stats();
  std::printf("\nrecovery complete:\n");
  std::printf("  duration        : %.0f ms of simulated time\n",
              static_cast<double>(s.last_recovery_duration) / kMillisecond);
  std::printf("  pages repaired  : %lu (fetched from other replicas, verified by digest)\n",
              s.pages_fetched);
  std::printf("  key epoch       : %lu (session keys changed)\n",
              cluster.replica(2)->auth().my_epoch());

  // Prove the repaired replica agrees with the group: crash another replica and keep going —
  // the group now depends on replica 2's vote and state.
  std::printf("\n--- crash replica 1; liveness now depends on the recovered replica ---\n");
  cluster.replica(1)->Crash();
  auto r = cluster.Execute(client, KvService::GetOp(ToBytes("key3")), true, 120 * kSecond);
  std::printf("get key3 -> \"%s\" (served with the recovered replica in the quorum)\n",
              r ? ToString(*r).c_str() : "TIMEOUT");
  return 0;
}

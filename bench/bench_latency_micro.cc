// E1 — Normal-case latency micro-benchmarks (thesis Tables in Section 8.3.1).
//
// Operations a/b: argument of a KB, result of b KB. Rows reproduce the paper's comparison of
// BFT (MACs, with read-only and tentative-execution optimizations), BFT-PK (signatures), and
// an unreplicated server (NO-REP).
#include "bench/bench_util.h"

using namespace bft;

namespace {

struct OpShape {
  const char* name;
  size_t arg;
  size_t result;
};

SimTime RunOne(AuthMode mode, const OpShape& shape, bool read_only) {
  ClusterOptions options = BenchOptions(mode == AuthMode::kMac ? 100 : 200);
  options.config.auth_mode = mode;
  if (mode == AuthMode::kSignature) {
    ScaleTimersForSignatures(&options.config);
  }
  Cluster cluster(options, NullFactory());
  Bytes op = NullService::MakeOp(read_only, shape.arg, shape.result);
  return MeasureLatency(&cluster, op, read_only, 15);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_latency_micro", argc, argv);
  PrintHeader("E1", "latency of 0/0, 4/0, 0/4 operations (read-write and read-only)");

  const OpShape kShapes[] = {{"0/0", 0, 8}, {"4/0", 4096, 8}, {"0/4", 8, 4096}};
  PerfModel model;

  std::printf("%-6s %14s %14s %14s %18s %12s\n", "op", "BFT r/w (us)", "BFT r/o (us)",
              "BFT-PK r/w (us)", "unreplicated (us)", "PK/MAC");
  for (const OpShape& shape : kShapes) {
    SimTime mac_rw = RunOne(AuthMode::kMac, shape, false);
    SimTime mac_ro = RunOne(AuthMode::kMac, shape, true);
    SimTime pk_rw = RunOne(AuthMode::kSignature, shape, false);
    SimTime norep = UnreplicatedLatency(model, shape.arg, shape.result);
    std::printf("%-6s %14.0f %14.0f %14.0f %18.0f %11.1fx\n", shape.name, ToUs(mac_rw),
                ToUs(mac_ro), ToUs(pk_rw), ToUs(norep),
                mac_rw > 0 ? static_cast<double>(pk_rw) / static_cast<double>(mac_rw) : 0.0);
    json.Row(shape.name, {{"op", shape.name}},
             {{"bft_rw_us", ToUs(mac_rw)},
              {"bft_ro_us", ToUs(mac_ro)},
              {"bft_pk_rw_us", ToUs(pk_rw)},
              {"unreplicated_us", ToUs(norep)}});
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  - BFT-PK is one to two orders of magnitude slower than BFT (signatures\n");
  std::printf("    dominate; the paper's central result)\n");
  std::printf("  - read-only is roughly half the read-write latency for small ops\n");
  std::printf("  - replication overhead vs the unreplicated server is a small multiple,\n");
  std::printf("    not orders of magnitude\n");
  return 0;
}

// E12 — Analytic model vs measurement (thesis Chapter 7 vs Chapter 8): the Chapter-7
// closed-form predictions next to the simulated measurements, with relative error.
#include "bench/bench_util.h"

using namespace bft;

namespace {
struct Case {
  const char* name;
  size_t arg;
  size_t result;
  bool read_only;
  bool tentative;
};
}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_model_vs_measured", argc, argv);
  PrintHeader("E12", "analytic performance model vs simulated measurement");

  PerfModel model;
  const Case kCases[] = {
      {"0/0 rw", 0, 8, false, true},
      {"0/0 ro", 0, 8, true, true},
      {"4/0 rw", 4096, 8, false, true},
      {"0/4 rw", 8, 4096, false, true},
      {"0/0 rw (no tentative)", 0, 8, false, false},
  };

  std::printf("-- latency --\n");
  std::printf("%-24s %16s %16s %10s\n", "operation", "model (us)", "measured (us)", "error");
  for (const Case& c : kCases) {
    PerfModel::OpParams p;
    p.arg_bytes = c.arg;
    p.result_bytes = c.result;
    p.read_only = c.read_only;
    p.tentative_execution = c.tentative;
    SimTime predicted = model.PredictLatency(p);

    ClusterOptions options = BenchOptions(1200 + c.arg + c.result);
    options.config.tentative_execution = c.tentative;
    Cluster cluster(options, NullFactory());
    SimTime measured =
        MeasureLatency(&cluster, NullService::MakeOp(c.read_only, c.arg, c.result),
                       c.read_only, 15);
    double err = measured > 0 ? (static_cast<double>(predicted) /
                                     static_cast<double>(measured) -
                                 1.0) * 100.0
                              : 0.0;
    std::printf("%-24s %16.0f %16.0f %+9.0f%%\n", c.name, ToUs(predicted), ToUs(measured),
                err);
    json.Row(c.name, {{"operation", c.name}},
             {{"model_us", ToUs(predicted)}, {"measured_us", ToUs(measured)},
              {"error_pct", err}});
  }

  std::printf("\n-- saturated throughput (20 clients, batching) --\n");
  std::printf("%-24s %16s %16s %10s\n", "operation", "model (op/s)", "measured (op/s)",
              "error");
  {
    PerfModel::OpParams p;
    p.result_bytes = 8;
    p.batch_size = 8;  // typical batch size observed under this load
    double predicted = model.PredictThroughput(p);
    ClusterOptions options = BenchOptions(1300);
    Cluster cluster(options, NullFactory());
    ClosedLoopLoad load(
        &cluster, 20, [](size_t, uint64_t) { return NullService::MakeOp(false, 0, 8); },
        false);
    double measured = load.Run(kSecond, 4 * kSecond).ops_per_second;
    double err = measured > 0 ? (predicted / measured - 1.0) * 100.0 : 0.0;
    std::printf("%-24s %16.0f %16.0f %+9.0f%%\n", "0/0 rw", predicted, measured, err);
    json.Row("0/0 rw throughput", {{"operation", "0/0 rw"}},
             {{"model_ops_per_s", predicted}, {"measured_ops_per_s", measured},
              {"error_pct", err}});
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  - the model tracks the measurement within tens of percent and preserves\n");
  std::printf("    orderings (ro < rw, tentative < full), as Chapter 8 reports for the\n");
  std::printf("    real system (the thesis model was accurate within ~10-40%%)\n");
  return 0;
}

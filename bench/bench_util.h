// Shared helpers for the paper-reproduction benchmark binaries.
//
// Each bench binary regenerates one table or figure of the thesis's Chapter 8 evaluation and
// prints it in a paper-style layout. Metrics are *simulated time*, driven by the Chapter-7
// cost model; see DESIGN.md and EXPERIMENTS.md for the paper-vs-measured comparison.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/service/null_service.h"
#include "src/workload/closed_loop.h"
#include "src/workload/cluster.h"

namespace bft {

// --- Machine-readable results: `<bench> --json <path>` --------------------------------------
// The human-readable tables stay on stdout; when --json is given, every Row() call also
// records a result and the destructor writes the file as a JSON array of
//   {"bench": ..., "name": ..., "config": {...}, "metrics": {...}}
// records — the raw material for the BENCH_*.json perf trajectory.
class BenchJson {
 public:
  using Config = std::initializer_list<std::pair<const char*, std::string>>;
  using Metrics = std::initializer_list<std::pair<const char*, double>>;

  BenchJson(const char* bench, int argc, char** argv) : bench_(bench) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: --json requires a path; ignoring\n", bench);
        } else {
          path_ = argv[i + 1];
        }
      }
    }
  }

  ~BenchJson() {
    if (path_.empty()) {
      return;
    }
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(), i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

  bool enabled() const { return !path_.empty(); }

  void Row(const std::string& name, Config config, Metrics metrics) {
    if (path_.empty()) {
      return;
    }
    std::string row = "{\"bench\": \"" + Escape(bench_) + "\", \"name\": \"" + Escape(name) +
                      "\", \"config\": {";
    bool first = true;
    for (const auto& [key, value] : config) {
      row += std::string(first ? "" : ", ") + "\"" + Escape(key) + "\": \"" + Escape(value) +
             "\"";
      first = false;
    }
    row += "}, \"metrics\": {";
    first = true;
    for (const auto& [key, value] : metrics) {
      char num[64];
      if (std::isfinite(value)) {
        std::snprintf(num, sizeof(num), "%.6g", value);
      } else {
        std::snprintf(num, sizeof(num), "null");
      }
      row += std::string(first ? "" : ", ") + "\"" + Escape(key) + "\": " + num;
      first = false;
    }
    row += "}}";
    rows_.push_back(std::move(row));
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<std::string> rows_;
};

inline ClusterOptions BenchOptions(uint64_t seed = 1000) {
  ClusterOptions options;
  options.seed = seed;
  options.config.n = 4;
  options.config.checkpoint_period = 128;
  options.config.log_size = 256;
  options.config.state_pages = 64;
  options.config.partition_branching = 16;
  return options;
}

inline ServiceFactory NullFactory() {
  return [](NodeId) { return std::make_unique<NullService>(); };
}

// Signature-mode runs need timers scaled to signature costs: every multicast costs a ~29 ms
// signature, so a 20 ms status interval alone would saturate the CPU, and sub-second fault
// timeouts would mistake slow crypto for a faulty primary.
inline void ScaleTimersForSignatures(ReplicaConfig* config) {
  config->view_change_timeout = 5 * kSecond;
  config->client_retry_timeout = 10 * kSecond;
  config->status_interval = 2 * kSecond;
}

// Mean latency (simulated ns) of `ops` sequential operations issued by one client.
inline SimTime MeasureLatency(Cluster* cluster, Bytes op, bool read_only, int ops = 20,
                              SimTime timeout = 120 * kSecond) {
  Client* client = cluster->AddClient();
  // Warmup: one op to populate caches/keys.
  cluster->Execute(client, op, read_only, timeout);
  SimTime total = 0;
  int done = 0;
  for (int i = 0; i < ops; ++i) {
    std::optional<Bytes> r = cluster->Execute(client, op, read_only, timeout);
    if (r.has_value()) {
      total += client->stats().last_latency;
      ++done;
    }
  }
  return done > 0 ? total / static_cast<SimTime>(done) : 0;
}

// Latency of one operation against a single *unreplicated* simulated server with the same
// network/CPU cost model (the paper's NO-REP baseline).
inline SimTime UnreplicatedLatency(const PerfModel& model, size_t arg_bytes,
                                   size_t result_bytes, SimTime exec_cost = kMicrosecond) {
  size_t req = 40 + arg_bytes;
  size_t reply = 40 + result_bytes;
  return model.net.SendCpuCost(req) + model.net.WireLatency(req) + model.net.jitter_ns / 2 +
         model.net.RecvCpuCost(req) + exec_cost + model.net.SendCpuCost(reply) +
         model.net.WireLatency(reply) + model.net.jitter_ns / 2 + model.net.RecvCpuCost(reply);
}

inline double ToUs(SimTime t) { return static_cast<double>(t) / kMicrosecond; }
inline double ToMs(SimTime t) { return static_cast<double>(t) / kMillisecond; }

inline void PrintHeader(const char* exp_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s: %s\n", exp_id, title);
  std::printf("(simulated time; shapes comparable to the paper, not absolutes)\n");
  std::printf("================================================================\n");
}

}  // namespace bft

#endif  // BENCH_BENCH_UTIL_H_

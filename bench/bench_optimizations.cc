// E5 — Impact of each optimization (thesis Section 8.3.3): ablation of digest replies,
// tentative execution, request batching, separate transmission, and MACs vs signatures.
#include "bench/bench_util.h"

using namespace bft;

namespace {

struct Variant {
  const char* name;
  void (*apply)(ReplicaConfig*);
};

SimTime LatencyFor(const Variant& v, size_t arg, size_t result, uint64_t seed) {
  ClusterOptions options = BenchOptions(seed);
  v.apply(&options.config);
  if (options.config.auth_mode == AuthMode::kSignature) {
    ScaleTimersForSignatures(&options.config);
  }
  Cluster cluster(options, NullFactory());
  return MeasureLatency(&cluster, NullService::MakeOp(false, arg, result), false, 12);
}

double ThroughputFor(const Variant& v, uint64_t seed) {
  ClusterOptions options = BenchOptions(seed);
  v.apply(&options.config);
  if (options.config.auth_mode == AuthMode::kSignature) {
    ScaleTimersForSignatures(&options.config);
  }
  Cluster cluster(options, NullFactory());
  ClosedLoopLoad load(
      &cluster, 20, [](size_t, uint64_t) { return NullService::MakeOp(false, 0, 8); }, false);
  return load.Run(kSecond, 4 * kSecond).ops_per_second;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_optimizations", argc, argv);
  PrintHeader("E5", "impact of the optimizations (ablation)");

  const Variant kVariants[] = {
      {"all optimizations on", [](ReplicaConfig*) {}},
      {"no digest replies", [](ReplicaConfig* c) { c->digest_replies = false; }},
      {"no tentative execution", [](ReplicaConfig* c) { c->tentative_execution = false; }},
      {"no batching", [](ReplicaConfig* c) { c->batching = false; }},
      {"no separate transmission",
       [](ReplicaConfig* c) { c->separate_transmission_threshold = 1 << 30; }},
      {"signatures (BFT-PK)", [](ReplicaConfig* c) { c->auth_mode = AuthMode::kSignature; }},
  };

  std::printf("%-28s %16s %16s %18s\n", "variant", "0/0 lat (us)", "4/4 lat (us)",
              "tput@20cli (op/s)");
  uint64_t seed = 600;
  for (const Variant& v : kVariants) {
    SimTime small = LatencyFor(v, 0, 8, seed++);
    SimTime big = LatencyFor(v, 4096, 4096, seed++);
    double tput = ThroughputFor(v, seed++);
    std::printf("%-28s %16.0f %16.0f %18.0f\n", v.name, ToUs(small), ToUs(big), tput);
    json.Row(v.name, {{"variant", v.name}},
             {{"lat_0_0_us", ToUs(small)}, {"lat_4_4_us", ToUs(big)}, {"tput_ops_per_s", tput}});
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  - signatures are by far the largest slowdown (BFT vs BFT-PK)\n");
  std::printf("  - digest replies matter for large results (4/4 column)\n");
  std::printf("  - tentative execution shaves one phase off latency\n");
  std::printf("  - batching mainly lifts throughput under load\n");
  return 0;
}

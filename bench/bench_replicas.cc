// E6 — Configurations with more replicas (thesis Section 8.3.4): latency and throughput for
// n = 4, 7, 10, 13 (f = 1..4).
#include "bench/bench_util.h"

using namespace bft;

int main(int argc, char** argv) {
  BenchJson json("bench_replicas", argc, argv);
  PrintHeader("E6", "scaling the group: n = 3f+1 for f = 1..4");
  std::printf("%-6s %-6s %16s %16s %18s\n", "n", "f", "0/0 lat (us)", "4/0 lat (us)",
              "tput@20cli (op/s)");
  for (int n : {4, 7, 10, 13}) {
    ClusterOptions options = BenchOptions(700 + static_cast<uint64_t>(n));
    options.config.n = n;
    SimTime lat0;
    SimTime lat4;
    {
      Cluster cluster(options, NullFactory());
      lat0 = MeasureLatency(&cluster, NullService::MakeOp(false, 0, 8), false, 12);
      lat4 = MeasureLatency(&cluster, NullService::MakeOp(false, 4096, 8), false, 12);
    }
    double tput;
    {
      Cluster cluster(options, NullFactory());
      ClosedLoopLoad load(
          &cluster, 20, [](size_t, uint64_t) { return NullService::MakeOp(false, 0, 8); },
          false);
      tput = load.Run(kSecond, 4 * kSecond).ops_per_second;
    }
    std::printf("%-6d %-6d %16.0f %16.0f %18.0f\n", n, (n - 1) / 3, ToUs(lat0), ToUs(lat4),
                tput);
    json.Row("n=" + std::to_string(n), {{"n", std::to_string(n)}},
             {{"lat_0_0_us", ToUs(lat0)}, {"lat_4k_us", ToUs(lat4)}, {"tput_ops_per_s", tput}});
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  - latency grows mildly with n (authenticator size and prepare/commit\n");
  std::printf("    fan-in grow linearly) — no cliff\n");
  std::printf("  - throughput degrades gradually as the quadratic message exchange grows\n");
  return 0;
}

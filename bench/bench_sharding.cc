// S1 — Aggregate throughput vs shard count: S independent PBFT groups side by side on one
// simulated network, each ordering only the keys it owns. A single group's throughput is
// capped by its primary's CPU (Section 8.3.2); sharding multiplies the number of primaries,
// so aggregate committed throughput should scale near-linearly until the key distribution or
// client count becomes the bottleneck.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/service/kv_service.h"
#include "src/shard/sharded_cluster.h"

using namespace bft;

namespace {

// Enough closed-loop clients to saturate a single group's primary: scaling is then limited
// by ordering capacity (the quantity sharding multiplies), not by the client population.
constexpr size_t kClients = 64;
constexpr uint64_t kKeysPerClient = 64;

ShardedClusterOptions ShardOptions(size_t shards, uint64_t seed) {
  ShardedClusterOptions options;
  options.num_shards = shards;
  options.seed = seed;
  options.config.checkpoint_period = 128;
  options.config.log_size = 256;
  options.config.state_pages = 64;
  return options;
}

Bytes MakeKvOp(size_t client, uint64_t op) {
  Bytes key = ToBytes("c" + std::to_string(client) + "-" +
                      std::to_string(op % kKeysPerClient));
  return KvService::PutOp(key, ToBytes("value"));
}

ClosedLoopLoad::Result RunOne(size_t shards, uint64_t seed) {
  ShardedCluster cluster(ShardOptions(shards, seed),
                         [](size_t, NodeId) { return std::make_unique<KvService>(); });
  ShardedClosedLoopLoad load(&cluster, kClients, MakeKvOp, /*read_only=*/false);
  return load.Run(/*warmup=*/500 * kMillisecond, /*duration=*/1500 * kMillisecond);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_sharding", argc, argv);
  PrintHeader("S1", "aggregate committed throughput vs shard count (closed-loop KV PUTs)");
  std::printf("%-8s %-10s %18s %16s %12s\n", "shards", "replicas", "aggregate (op/s)",
              "mean lat (us)", "speedup");

  double base = 0;
  double at_s4 = 0;
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ClosedLoopLoad::Result r = RunOne(shards, /*seed=*/4242);
    if (shards == 1) {
      base = r.ops_per_second;
    }
    if (shards == 4) {
      at_s4 = r.ops_per_second;
    }
    std::printf("%-8zu %-10zu %18.0f %16.1f %11.2fx\n", shards, shards * 4, r.ops_per_second,
                ToUs(r.mean_latency), base > 0 ? r.ops_per_second / base : 0.0);
    json.Row("shards=" + std::to_string(shards),
             {{"shards", std::to_string(shards)}, {"clients", std::to_string(kClients)}},
             {{"aggregate_ops_per_s", r.ops_per_second},
              {"mean_latency_us", ToUs(r.mean_latency)},
              {"speedup", base > 0 ? r.ops_per_second / base : 0.0}});
  }

  std::printf("\ndeterminism check (S=4, same seed twice): ");
  ClosedLoopLoad::Result a = RunOne(4, 7);
  ClosedLoopLoad::Result b = RunOne(4, 7);
  bool deterministic = a.ops_completed == b.ops_completed && a.mean_latency == b.mean_latency;
  std::printf("%s (%lu ops, mean %.1f us)\n", deterministic ? "IDENTICAL" : "MISMATCH",
              static_cast<unsigned long>(a.ops_completed), ToUs(a.mean_latency));

  std::printf("\nshape checks:\n");
  std::printf("  - throughput scales with shard count while clients keep every primary busy\n");
  std::printf("  - S=1 -> S=4 speedup target: >= 2x (acceptance gate): %s (%.2fx)\n",
              at_s4 >= 2 * base ? "PASS" : "FAIL", base > 0 ? at_s4 / base : 0.0);
  std::printf("  - mean latency falls as per-group queueing shrinks\n");
  return deterministic && at_s4 >= 2 * base ? 0 : 1;
}

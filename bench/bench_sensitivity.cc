// E13 — Sensitivity to variations in model parameters (thesis Section 8.3.5): how latency
// responds when the component costs (MAC, digest, wire, per-message CPU) are scaled, and
// whether the analytic model tracks each shift.
#include "bench/bench_util.h"

using namespace bft;

namespace {

struct Variation {
  const char* name;
  void (*apply)(PerfModel*);
};

SimTime Measured(const PerfModel& model) {
  ClusterOptions options = BenchOptions(1400);
  options.model = model;
  Cluster cluster(options, NullFactory());
  return MeasureLatency(&cluster, NullService::MakeOp(false, 0, 8), false, 12);
}

SimTime Predicted(const PerfModel& model) {
  PerfModel::OpParams p;
  p.result_bytes = 8;
  return model.PredictLatency(p);
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_sensitivity", argc, argv);
  PrintHeader("E13", "sensitivity of 0/0 latency to component-cost variations");

  const Variation kVariations[] = {
      {"baseline", [](PerfModel*) {}},
      {"MAC cost x8", [](PerfModel* m) { m->mac_fixed_ns *= 8; m->mac_per_byte_ns *= 8; }},
      {"digest cost x8",
       [](PerfModel* m) { m->digest_fixed_ns *= 8; m->digest_per_byte_ns *= 8; }},
      {"wire latency x4",
       [](PerfModel* m) {
         m->net.propagation_ns *= 4;
         m->net.wire_per_byte_ns *= 4;
       }},
      {"per-message CPU x4",
       [](PerfModel* m) {
         m->net.send_cpu_fixed_ns *= 4;
         m->net.recv_cpu_fixed_ns *= 4;
       }},
      {"all x2",
       [](PerfModel* m) {
         m->mac_fixed_ns *= 2;
         m->digest_fixed_ns *= 2;
         m->net.propagation_ns *= 2;
         m->net.wire_per_byte_ns *= 2;
         m->net.send_cpu_fixed_ns *= 2;
         m->net.recv_cpu_fixed_ns *= 2;
       }},
  };

  PerfModel baseline;
  SimTime base_measured = Measured(baseline);
  SimTime base_predicted = Predicted(baseline);

  std::printf("%-22s %14s %14s %14s %14s\n", "variation", "measured (us)", "vs base",
              "model (us)", "vs base");
  for (const Variation& v : kVariations) {
    PerfModel model;
    v.apply(&model);
    SimTime measured = Measured(model);
    SimTime predicted = Predicted(model);
    std::printf("%-22s %14.0f %13.2fx %14.0f %13.2fx\n", v.name, ToUs(measured),
                static_cast<double>(measured) / static_cast<double>(base_measured),
                ToUs(predicted),
                static_cast<double>(predicted) / static_cast<double>(base_predicted));
    json.Row(v.name, {{"variation", v.name}},
             {{"measured_us", ToUs(measured)}, {"model_us", ToUs(predicted)}});
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  - per-message CPU dominates small-op latency (the paper's finding that\n");
  std::printf("    communication cost, not cryptography, bounds BFT's performance)\n");
  std::printf("  - MAC/digest variations barely move 0/0 latency; wire latency matters\n");
  std::printf("  - the analytic model tracks every variation in the same direction and\n");
  std::printf("    similar magnitude (Section 8.3.5)\n");
  return 0;
}

// E11 — Service performance with proactive recovery (thesis Section 8.6.3): throughput
// degradation as a function of the watchdog period (shorter period = smaller window of
// vulnerability = more recovery overhead).
#include "bench/bench_util.h"
#include "src/service/kv_service.h"

using namespace bft;

namespace {
struct RecoveryRun {
  double ops_per_second = 0;
  uint64_t recoveries = 0;
  uint64_t started = 0;
  double mean_recovery_ms = 0;
};

RecoveryRun RunOne(SimTime watchdog_period, SimTime duration) {
  ClusterOptions options = BenchOptions(1100 + watchdog_period / kSecond);
  options.config.checkpoint_period = 32;
  options.config.log_size = 64;
  options.config.proactive_recovery = watchdog_period != 0;
  options.config.watchdog_period = watchdog_period == 0 ? 3600 * kSecond : watchdog_period;
  options.config.key_refresh_period = 8 * kSecond;
  options.config.recovery_reboot_time = 500 * kMillisecond;
  Cluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  ClosedLoopLoad load(
      &cluster, 5,
      [](size_t c, uint64_t i) {
        return KvService::PutOp(ToBytes("key" + std::to_string((c * 7 + i) % 50)),
                                ToBytes("value"));
      },
      false);
  ClosedLoopLoad::Result r = load.Run(kSecond, duration);

  RecoveryRun out;
  out.ops_per_second = r.ops_per_second;
  SimTime total_rec = 0;
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    out.recoveries += cluster.replica(i)->stats().recoveries;
    out.started += cluster.replica(i)->stats().recoveries_started;
    total_rec += cluster.replica(i)->stats().last_recovery_duration;
  }
  out.mean_recovery_ms = out.recoveries > 0 ? ToMs(total_rec) / 4.0 : 0.0;
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_recovery", argc, argv);
  PrintHeader("E11", "throughput with proactive recovery vs watchdog period");

  SimTime duration = 50 * kSecond;
  RecoveryRun base = RunOne(0, duration);
  std::printf("%-22s %14s %16s %20s %10s\n", "watchdog period", "tput (op/s)",
              "recov done/start", "mean recovery (ms)", "overhead");
  std::printf("%-22s %14.0f %16s %20s %10s\n", "off (baseline)", base.ops_per_second, "-",
              "-", "-");
  json.Row("watchdog=off", {{"watchdog_s", "off"}},
           {{"tput_ops_per_s", base.ops_per_second}});
  for (SimTime period : {12 * kSecond, 24 * kSecond, 48 * kSecond}) {
    RecoveryRun r = RunOne(period, duration);
    double overhead = base.ops_per_second > 0
                          ? (1.0 - r.ops_per_second / base.ops_per_second) * 100.0
                          : 0.0;
    std::printf("%-20lus %14.0f %10lu/%-5lu %20.0f %+9.1f%%\n", period / kSecond,
                r.ops_per_second, r.recoveries, r.started, r.mean_recovery_ms, overhead);
    json.Row("watchdog=" + std::to_string(period / kSecond) + "s",
             {{"watchdog_s", std::to_string(period / kSecond)}},
             {{"tput_ops_per_s", r.ops_per_second},
              {"mean_recovery_ms", r.mean_recovery_ms},
              {"overhead_pct", overhead}});
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  - recovery overhead falls as the watchdog period grows; with periods of\n");
  std::printf("    minutes the degradation is small, supporting the paper's claim that the\n");
  std::printf("    window of vulnerability can be made small cheaply\n");
  return 0;
}

// E9 — View-change latency (thesis Section 8.5): time from silencing the primary until a
// correct replica enters the new view and service resumes.
#include "bench/bench_util.h"
#include "src/service/counter_service.h"

using namespace bft;

int main(int argc, char** argv) {
  BenchJson json("bench_view_change", argc, argv);
  PrintHeader("E9", "view-change latency");

  std::printf("%-8s %22s %24s\n", "round", "view-change (ms)", "incl. fault timeout (ms)");
  double sum_vc = 0;
  int rounds = 6;
  for (int round = 0; round < rounds; ++round) {
    ClusterOptions options = BenchOptions(900 + static_cast<uint64_t>(round));
    options.config.view_change_timeout = 25 * kMillisecond;
    Cluster cluster(options, [](NodeId) { return std::make_unique<CounterService>(); });
    Client* client = cluster.AddClient();
    cluster.Execute(client, CounterService::IncOp());

    NodeId primary = cluster.CurrentPrimary();
    cluster.replica(static_cast<int>(primary))->SetMute(true);
    SimTime fault_at = cluster.sim().Now();

    // Issue an op; it stalls until the view change completes.
    bool done = false;
    client->Invoke(CounterService::IncOp(), false, [&done](Bytes) { done = true; });

    // Measure from the first view-change message (timer expiry) to new-view entry.
    int observer = primary == 1 ? 2 : 1;
    Replica* rep = cluster.replica(observer);
    cluster.sim().RunUntilCondition(
        [rep]() { return rep->stats().view_changes_started > 0; },
        cluster.sim().Now() + 120 * kSecond);
    SimTime vc_start = cluster.sim().Now();
    cluster.sim().RunUntilCondition([rep]() { return rep->stats().new_views_entered > 0; },
                                    cluster.sim().Now() + 120 * kSecond);
    SimTime vc_end = cluster.sim().Now();
    cluster.sim().RunUntilCondition([&done]() { return done; },
                                    cluster.sim().Now() + 120 * kSecond);

    double vc_ms = ToMs(vc_end - vc_start);
    sum_vc += vc_ms;
    std::printf("%-8d %22.2f %24.2f\n", round, vc_ms, ToMs(vc_end - fault_at));
    json.Row("round=" + std::to_string(round), {{"round", std::to_string(round)}},
             {{"view_change_ms", vc_ms}, {"incl_timeout_ms", ToMs(vc_end - fault_at)}});
  }
  std::printf("\nmean view-change time (excluding the detection timeout): %.2f ms\n",
              sum_vc / rounds);
  json.Row("mean", {}, {{"mean_view_change_ms", sum_vc / rounds}});
  std::printf("\npaper shape checks:\n");
  std::printf("  - the protocol itself completes in single-digit milliseconds; total\n");
  std::printf("    unavailability is dominated by the fault-detection timeout, as in the\n");
  std::printf("    paper's measurements\n");
  return 0;
}

// E3 — Latency vs result size (thesis Fig 8-2 family): operations 0/b for growing b, with and
// without the digest-replies optimization (Section 5.1.1).
#include "bench/bench_util.h"

using namespace bft;

namespace {
SimTime RunOne(size_t result, bool digest_replies) {
  ClusterOptions options = BenchOptions(400 + result);
  options.config.digest_replies = digest_replies;
  Cluster cluster(options, NullFactory());
  return MeasureLatency(&cluster, NullService::MakeOp(false, 8, result), false, 12);
}
}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_result_size", argc, argv);
  PrintHeader("E3", "read-write latency vs result size (0/b operations)");
  std::printf("%-10s %22s %22s %10s\n", "result (B)", "digest replies (us)",
              "full replies (us)", "gain");
  for (size_t result : {0u, 256u, 1024u, 2048u, 4096u, 8192u}) {
    SimTime with = RunOne(result, true);
    SimTime without = RunOne(result, false);
    std::printf("%-10zu %22.0f %22.0f %9.2fx\n", result, ToUs(with), ToUs(without),
                with > 0 ? static_cast<double>(without) / static_cast<double>(with) : 0.0);
    json.Row("result=" + std::to_string(result), {{"result_bytes", std::to_string(result)}},
             {{"digest_replies_us", ToUs(with)}, {"full_replies_us", ToUs(without)}});
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  - with digest replies only one replica sends the full result, so latency\n");
  std::printf("    grows with b once, not n times; the gap widens with b\n");
  return 0;
}

// E8 — State transfer (thesis Section 8.4.2): time to bring a replica that missed
// modifications to X MB of state back up to date, and the effective transfer rate.
#include "bench/bench_util.h"
#include "src/service/kv_service.h"

using namespace bft;

namespace {

// A service that dirties a configurable number of pages per operation so the bench can
// control exactly how much state a lagging replica misses.
class PageWriterService : public Service {
 public:
  void Initialize(ReplicaState* state) override { state_ = state; }
  Bytes Execute(NodeId client, ByteView op, ByteView ndet, bool read_only) override {
    Reader r(op);
    uint64_t first_page = r.U64();
    uint64_t count = r.U64();
    uint64_t stamp = r.U64();
    for (uint64_t p = first_page; p < first_page + count && p < state_->num_pages(); ++p) {
      state_->Write(p * state_->page_size() + (stamp % 64) * 8,
                    ByteView(reinterpret_cast<const uint8_t*>(&stamp), sizeof(stamp)));
    }
    return ToBytes("ok");
  }
  static Bytes MakeOp(uint64_t first_page, uint64_t count, uint64_t stamp) {
    Writer w;
    w.U64(first_page);
    w.U64(count);
    w.U64(stamp);
    return w.Take();
  }

 private:
  ReplicaState* state_ = nullptr;
};

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_state_transfer", argc, argv);
  PrintHeader("E8", "state transfer: fetch time and rate vs amount of out-of-date state");
  std::printf("%-14s %-12s %16s %14s %12s\n", "modified (KB)", "pages", "transfer (ms)",
              "rate (MB/s)", "fetched");

  for (uint64_t pages : {16u, 64u, 256u, 1024u}) {
    ClusterOptions options = BenchOptions(800 + pages);
    options.config.page_size = 4096;
    options.config.state_pages = 2048;  // 8 MB state
    options.config.partition_branching = 16;
    options.config.checkpoint_period = 8;
    options.config.log_size = 16;
    Cluster cluster(options,
                    [](NodeId) { return std::make_unique<PageWriterService>(); });
    Client* client = cluster.AddClient();

    // Replica 3 misses writes to `pages` distinct pages, spread over many checkpoints.
    cluster.net().SetNodeDown(3, true);
    uint64_t stamp = 1;
    uint64_t per_op = 8;
    for (uint64_t p = 0; p < pages; p += per_op) {
      cluster.Execute(client, PageWriterService::MakeOp(p, per_op, stamp++), false,
                      60 * kSecond);
    }
    // Run extra ops so the stable checkpoint moves past replica 3's log.
    for (int i = 0; i < 20; ++i) {
      cluster.Execute(client, PageWriterService::MakeOp(0, 1, stamp++), false, 60 * kSecond);
    }
    cluster.net().SetNodeDown(3, false);
    SimTime start = cluster.sim().Now();
    SeqNo target = cluster.replica(0)->last_executed();
    // Keep light traffic flowing (checkpoint certificates keep forming).
    uint64_t ticks = 0;
    while (cluster.replica(3)->last_executed() < target && ticks < 600) {
      cluster.Execute(client, PageWriterService::MakeOp(0, 1, stamp++), false, 60 * kSecond);
      cluster.sim().RunFor(10 * kMillisecond);
      ++ticks;
    }
    SimTime elapsed = cluster.sim().Now() - start;
    uint64_t fetched = cluster.replica(3)->stats().pages_fetched;
    double kb = static_cast<double>(fetched) * 4096.0 / 1024.0;
    double mbps = elapsed > 0 ? kb / 1024.0 / (static_cast<double>(elapsed) / kSecond) : 0.0;
    std::printf("%-14.0f %-12lu %16.1f %14.2f %12lu\n",
                static_cast<double>(pages) * 4096.0 / 1024.0, pages, ToMs(elapsed), mbps,
                fetched);
    json.Row("pages=" + std::to_string(pages), {{"modified_pages", std::to_string(pages)}},
             {{"transfer_ms", ToMs(elapsed)},
              {"rate_mb_per_s", mbps},
              {"pages_fetched", static_cast<double>(fetched)}});
  }

  std::printf("\npaper shape checks:\n");
  std::printf("  - transfer time grows with the amount of out-of-date state; the rate\n");
  std::printf("    approaches a constant (wire + digest bound), as in the paper\n");
  std::printf("  - pages never touched are skipped via matching partition digests\n");
  return 0;
}

// E2 — Latency vs argument size (thesis Fig 8-1 family): operations a/0 for growing a, with
// and without the separate-request-transmission optimization (Section 5.1.5).
#include "bench/bench_util.h"

using namespace bft;

namespace {
SimTime RunOne(size_t arg, bool separate_transmission) {
  ClusterOptions options = BenchOptions(300 + arg);
  if (!separate_transmission) {
    options.config.separate_transmission_threshold = 1 << 30;  // always inline
  }
  Cluster cluster(options, NullFactory());
  return MeasureLatency(&cluster, NullService::MakeOp(false, arg, 8), false, 12);
}
}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_arg_size", argc, argv);
  PrintHeader("E2", "read-write latency vs argument size (a/0 operations)");
  std::printf("%-10s %22s %22s %10s\n", "arg (B)", "separate xmit (us)", "inline only (us)",
              "gain");
  for (size_t arg : {0u, 256u, 1024u, 2048u, 4096u, 8192u}) {
    SimTime with = RunOne(arg, true);
    SimTime without = RunOne(arg, false);
    std::printf("%-10zu %22.0f %22.0f %9.2fx\n", arg, ToUs(with), ToUs(without),
                with > 0 ? static_cast<double>(without) / static_cast<double>(with) : 0.0);
    json.Row("arg=" + std::to_string(arg), {{"arg_bytes", std::to_string(arg)}},
             {{"separate_xmit_us", ToUs(with)}, {"inline_only_us", ToUs(without)}});
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  - latency grows roughly linearly with argument size\n");
  std::printf("  - separate transmission reduces the slope for large arguments (the\n");
  std::printf("    argument crosses the network once, not twice)\n");
  return 0;
}

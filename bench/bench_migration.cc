// M1 — Live bucket migration under load: freeze-window duration and aggregate-throughput
// dip while one bucket's keyed state moves between replica groups mid-run. The freeze window
// (client ops against the bucket queued in the router) scales with the bucket's entry count —
// seal + export + one ordered import per entry + publish — while the rest of the key space
// keeps committing at full speed; the dip measures how much of the aggregate the frozen
// bucket's traffic was.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/kv_service.h"
#include "src/shard/migration.h"
#include "src/shard/sharded_cluster.h"

using namespace bft;

namespace {

constexpr size_t kClients = 32;
constexpr uint64_t kKeysPerClient = 32;
constexpr SimTime kWarmup = 500 * kMillisecond;
constexpr SimTime kDuration = 2 * kSecond;
constexpr SimTime kMigrationStart = 250 * kMillisecond;  // after warmup begins counting

ShardedClusterOptions ShardOptions(size_t shards, uint64_t seed) {
  ShardedClusterOptions options;
  options.num_shards = shards;
  options.seed = seed;
  options.config.checkpoint_period = 128;
  options.config.log_size = 256;
  options.config.state_pages = 64;
  return options;
}

// `count` distinct keys hashing into `bucket` (the bucket that will migrate). Bounded so an
// unlucky bucket/count combination fails loudly instead of spinning forever.
std::vector<Bytes> KeysInBucket(uint32_t bucket, size_t count) {
  std::vector<Bytes> keys;
  for (int i = 0; keys.size() < count && i < 4'000'000; ++i) {
    Bytes key = ToBytes("hot-" + std::to_string(i));
    if (KeyRing::BucketForKey(key) == bucket) {
      keys.push_back(std::move(key));
    }
  }
  if (keys.size() < count) {
    std::fprintf(stderr, "bench_migration: key search exhausted for bucket %u\n", bucket);
    std::exit(1);
  }
  return keys;
}

struct RunResult {
  ClosedLoopLoad::Result load;
  std::optional<MigrationReport> report;
};

// One measured run. The hot bucket is pre-populated with `bucket_keys` entries; with
// `migrate`, the move starts mid-measurement. Identical construction either way, so the
// baseline is an apples-to-apples same-seed comparison.
RunResult RunOne(size_t shards, size_t bucket_keys, bool migrate, uint64_t seed) {
  ShardedCluster cluster(ShardOptions(shards, seed),
                         [](size_t, NodeId) { return std::make_unique<KvService>(); });
  ShardedClient* loader = cluster.AddClient();
  MigrationCoordinator coordinator(&cluster);

  uint32_t bucket = 0;  // owned by shard 0 under round-robin
  size_t dest = 1 % shards;
  std::vector<Bytes> hot = KeysInBucket(bucket, bucket_keys);
  for (const Bytes& key : hot) {
    auto r = cluster.Execute(loader, KvService::PutOp(key, ToBytes("resident-value")));
    if (!r.has_value()) {
      std::fprintf(stderr, "bench_migration: preload op timed out\n");
      std::exit(1);
    }
  }

  RunResult out;
  auto report = std::make_shared<std::optional<MigrationReport>>();
  if (migrate) {
    cluster.sim().Schedule(kWarmup + kMigrationStart, [&coordinator, bucket, dest, report]() {
      coordinator.StartMoveBucket(bucket, dest,
                                  [report](const MigrationReport& r) { *report = r; });
    });
  }

  // The load mixes per-client cold keys with traffic on the hot (migrating) bucket, so the
  // freeze window actually queues a slice of the offered load.
  ShardedClosedLoopLoad load(
      &cluster, kClients,
      [&hot](size_t c, uint64_t i) {
        if (i % 4 == 3) {
          return KvService::PutOp(hot[(c + i) % hot.size()], ToBytes("hot-update"));
        }
        return KvService::PutOp(
            ToBytes("c" + std::to_string(c) + "-" + std::to_string(i % kKeysPerClient)),
            ToBytes("value"));
      },
      /*read_only=*/false);
  out.load = load.Run(kWarmup, kDuration);
  out.report = *report;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_migration", argc, argv);
  PrintHeader("M1", "live bucket migration: freeze window and throughput dip vs bucket size");
  std::printf("%-8s %-12s %12s %14s %14s %8s %10s %8s %8s\n", "shards", "bucket_keys",
              "base (op/s)", "migr (op/s)", "dip", "moved", "freeze(ms)", "queued",
              "stale");

  bool ok = true;
  for (size_t shards : {2u, 4u}) {
    for (size_t bucket_keys : {16u, 96u}) {
      RunResult base = RunOne(shards, bucket_keys, /*migrate=*/false, /*seed=*/4242);
      RunResult migr = RunOne(shards, bucket_keys, /*migrate=*/true, /*seed=*/4242);
      if (!migr.report.has_value() || !migr.report->ok) {
        std::fprintf(stderr, "bench_migration: migration did not complete (%s)\n",
                     migr.report.has_value() ? migr.report->error.c_str() : "still running");
        ok = false;
        continue;
      }
      const MigrationReport& report = *migr.report;
      double dip = base.load.ops_per_second > 0
                       ? 1.0 - migr.load.ops_per_second / base.load.ops_per_second
                       : 0.0;
      std::printf("%-8zu %-12zu %12.0f %14.0f %13.1f%% %8zu %10.2f %8lu %8lu\n", shards,
                  bucket_keys, base.load.ops_per_second, migr.load.ops_per_second, dip * 100,
                  report.keys_moved, ToMs(report.freeze_window()),
                  static_cast<unsigned long>(migr.load.frozen_queued),
                  static_cast<unsigned long>(migr.load.stale_reroutes));
      json.Row("shards=" + std::to_string(shards) + ",keys=" + std::to_string(bucket_keys),
               {{"shards", std::to_string(shards)},
                {"bucket_keys", std::to_string(bucket_keys)},
                {"clients", std::to_string(kClients)}},
               {{"base_ops_per_s", base.load.ops_per_second},
                {"migrated_ops_per_s", migr.load.ops_per_second},
                {"throughput_dip_pct", dip * 100},
                {"freeze_window_ms", ToMs(report.freeze_window())},
                {"keys_moved", static_cast<double>(report.keys_moved)},
                {"export_bytes", static_cast<double>(report.export_bytes)},
                {"frozen_queued", static_cast<double>(migr.load.frozen_queued)},
                {"stale_reroutes", static_cast<double>(migr.load.stale_reroutes)}});
      // Shape gates: the move carried at least the resident keys (background load may have
      // landed more keys in the bucket — the whole bucket moves, not just the preload), and
      // the system kept committing (the dip is a slowdown, not an outage).
      if (report.keys_moved < bucket_keys || migr.load.ops_per_second <= 0) {
        ok = false;
      }
    }
  }

  std::printf("\nshape checks:\n");
  std::printf("  - freeze window grows with bucket size (one ordered import per entry)\n");
  std::printf("  - throughput dips but never stops: only the frozen bucket's ops queue\n");
  std::printf("  - every resident key arrives at the destination: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

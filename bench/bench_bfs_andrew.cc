// E10 — BFS vs unreplicated NFS-std on the Andrew-style benchmark (thesis Section 8.6.2).
//
// The paper's headline: replicated BFS runs 2% faster to 24% slower than an unreplicated
// production NFS server, depending on phase mix. This bench reproduces the per-phase table
// and the total-overhead ratio.
#include "bench/bench_util.h"
#include "src/workload/andrew.h"

using namespace bft;

int main(int argc, char** argv) {
  BenchJson json("bench_bfs_andrew", argc, argv);
  PrintHeader("E10", "BFS vs unreplicated NFS-std: Andrew-style benchmark");

  AndrewScale scale;
  scale.dirs = 6;
  scale.files_per_dir = 4;
  scale.file_size = 4096;
  scale.objects = 6;

  ClusterOptions options = BenchOptions(1000);
  options.config.state_pages = 1024;
  options.config.page_size = 1024;
  options.config.partition_branching = 16;
  options.config.checkpoint_period = 64;
  options.config.log_size = 128;

  AndrewResult norep =
      RunAndrewUnreplicated(options.config, options.model, scale, options.seed);

  Cluster cluster(options, [](NodeId) { return std::make_unique<BfsService>(); });
  Client* client = cluster.AddClient();
  AndrewResult bfs = RunAndrewReplicated(&cluster, client, scale);

  std::printf("%-8s %8s %16s %16s %12s\n", "phase", "ops", "BFS (ms)", "NFS-std (ms)",
              "overhead");
  for (int p = 0; p < AndrewResult::kPhases; ++p) {
    double ratio = norep.phase_time[p] > 0
                       ? static_cast<double>(bfs.phase_time[p]) /
                             static_cast<double>(norep.phase_time[p])
                       : 0.0;
    std::printf("%-8s %8lu %16.1f %16.1f %+11.0f%%\n", AndrewResult::PhaseName(p),
                bfs.phase_ops[p], ToMs(bfs.phase_time[p]), ToMs(norep.phase_time[p]),
                (ratio - 1.0) * 100.0);
    json.Row(AndrewResult::PhaseName(p), {{"phase", AndrewResult::PhaseName(p)}},
             {{"bfs_ms", ToMs(bfs.phase_time[p])},
              {"nfs_std_ms", ToMs(norep.phase_time[p])},
              {"overhead_pct", (ratio - 1.0) * 100.0}});
  }
  double total_ratio =
      static_cast<double>(bfs.total()) / static_cast<double>(norep.total());
  std::printf("%-8s %8s %16.1f %16.1f %+11.0f%%\n", "total", "", ToMs(bfs.total()),
              ToMs(norep.total()), (total_ratio - 1.0) * 100.0);
  json.Row("total", {},
           {{"bfs_ms", ToMs(bfs.total())},
            {"nfs_std_ms", ToMs(norep.total())},
            {"overhead_pct", (total_ratio - 1.0) * 100.0}});

  std::printf("\npaper shape checks:\n");
  std::printf("  - total overhead is a modest percentage, not a multiple (paper band:\n");
  std::printf("    -2%% .. +24%% vs production NFS implementations)\n");
  std::printf("  - read-only phases (stat, read) have the lowest overhead: single round\n");
  std::printf("    trip; write-heavy phases pay the three-phase protocol\n");
  return 0;
}

// R1 — Load-aware auto-rebalancing under skew: aggregate throughput and per-group tail
// latency with a Zipfian closed-loop workload, auto-rebalancer off vs on, at S=4.
//
// Under skew, the hottest keys concentrate in a handful of ring buckets; the static
// round-robin bucket assignment then leaves one replica group ordering far more than its
// share while others idle — the aggregate is capped by the hottest group's primary. The
// RebalanceController measures per-bucket heat (BucketStatsRegistry, fed by the KvService
// keyed-op upcall), plans hottest-bucket-to-coolest-group batches (RebalancePlanner), and
// executes them as batched live migrations (one ShardMap publish per batch). With a uniform
// workload the planner should stay idle: the imbalance threshold gates any movement.
//
// All metrics are simulated time — deterministic, so CI gates on them (tools/diff_bench.py
// --fail-on-regress over the sim benches).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/kv_service.h"
#include "src/shard/rebalance.h"
#include "src/shard/sharded_cluster.h"

using namespace bft;

namespace {

constexpr size_t kShards = 4;
constexpr size_t kClients = 96;
constexpr uint64_t kKeySpace = 256;  // distinct keys; mostly one hot key per hot bucket
constexpr double kTheta = 0.99;       // YCSB-default Zipfian skew

ShardedClusterOptions ShardOptions(uint64_t seed) {
  ShardedClusterOptions options;
  options.num_shards = kShards;
  options.seed = seed;
  options.config.checkpoint_period = 128;
  options.config.log_size = 256;
  options.config.state_pages = 64;
  return options;
}

struct RunResult {
  ClosedLoopLoad::Result load;
  RebalanceController::Stats rebalance;
};

// One measured run. `skewed` selects Zipfian vs uniform key popularity; `rebalance` arms the
// controller for the whole run (it plans from the first interval, so moves land during
// warmup and the measured window sees the rebalanced steady state plus any residual moves).
RunResult RunOne(bool skewed, bool rebalance, SimTime warmup, SimTime duration,
                 uint64_t seed) {
  ShardedCluster cluster(ShardOptions(seed),
                         [](size_t, NodeId) { return std::make_unique<KvService>(); });

  std::unique_ptr<RebalanceController> controller;
  if (rebalance) {
    RebalanceControllerOptions options;
    options.interval = 250 * kMillisecond;
    options.policy.imbalance_threshold = 1.25;
    options.policy.max_moves_per_round = 8;
    options.policy.min_bucket_load = 8.0;
    controller = std::make_unique<RebalanceController>(&cluster, options);
    controller->Start();
  }

  // Per-client deterministic key-rank streams; rank r -> key "z<r>".
  std::vector<ZipfianGenerator> zipf;
  for (size_t c = 0; c < kClients; ++c) {
    zipf.emplace_back(kKeySpace, kTheta, seed * 1000 + c);
  }
  ShardedClosedLoopLoad load(
      &cluster, kClients,
      [&zipf, skewed](size_t c, uint64_t i) {
        uint64_t rank = skewed ? zipf[c].Next() : (c * 7919 + i * 31) % kKeySpace;
        return KvService::PutOp(ToBytes("z" + std::to_string(rank)), ToBytes("value"));
      },
      /*read_only=*/false);

  RunResult out;
  out.load = load.Run(warmup, duration);
  if (controller != nullptr) {
    out.rebalance = controller->stats();
    controller->Stop();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_rebalance", argc, argv);
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    quick |= std::strcmp(argv[i], "--quick") == 0;
  }
  // Warmup covers the first planning rounds so the measured window is the rebalanced steady
  // state; --quick (CI smoke) halves both.
  SimTime warmup = quick ? 750 * kMillisecond : 1500 * kMillisecond;
  SimTime duration = quick ? 1500 * kMillisecond : 3 * kSecond;

  PrintHeader("R1", "auto-rebalancer under Zipfian skew: throughput and tail vs static map");
  std::printf("%-10s %-10s %14s %14s %14s %8s %10s %8s\n", "skew", "rebalance",
              "agg (op/s)", "mean lat(us)", "p99 worst(ms)", "moved", "freeze(ms)", "plans");

  struct Cell {
    RunResult r;
  };
  Cell cells[2][2];  // [skewed][rebalance]
  for (int skewed = 0; skewed <= 1; ++skewed) {
    for (int rebalance = 0; rebalance <= 1; ++rebalance) {
      RunResult r = RunOne(skewed != 0, rebalance != 0, warmup, duration, /*seed=*/4242);
      cells[skewed][rebalance].r = r;
      std::printf("%-10s %-10s %14.0f %14.1f %14.2f %8lu %10.2f %8lu\n",
                  skewed ? "zipf0.99" : "uniform", rebalance ? "on" : "off",
                  r.load.ops_per_second, ToUs(r.load.mean_latency),
                  ToMs(r.load.max_group_p99()),
                  static_cast<unsigned long>(r.rebalance.buckets_moved),
                  ToMs(r.rebalance.total_freeze_time),
                  static_cast<unsigned long>(r.rebalance.plans_executed));
      json.Row(std::string(skewed ? "zipf" : "uniform") + ",rebalance=" +
                   (rebalance ? "on" : "off"),
               {{"shards", std::to_string(kShards)},
                {"clients", std::to_string(kClients)},
                {"key_space", std::to_string(kKeySpace)},
                {"theta", skewed ? "0.99" : "uniform"},
                {"rebalance", rebalance ? "on" : "off"},
                {"quick", quick ? "1" : "0"}},
               {{"aggregate_ops_per_s", r.load.ops_per_second},
                {"mean_latency_us", ToUs(r.load.mean_latency)},
                {"worst_group_p99_ms", ToMs(r.load.max_group_p99())},
                {"buckets_moved", static_cast<double>(r.rebalance.buckets_moved)},
                {"freeze_time_ms", ToMs(r.rebalance.total_freeze_time)},
                {"plans_executed", static_cast<double>(r.rebalance.plans_executed)},
                {"publishes", static_cast<double>(r.rebalance.publishes)},
                {"frozen_queued", static_cast<double>(r.load.frozen_queued)},
                {"stale_reroutes", static_cast<double>(r.load.stale_reroutes)}});
    }
  }

  double skew_off = cells[1][0].r.load.ops_per_second;
  double skew_on = cells[1][1].r.load.ops_per_second;
  double uniform_off = cells[0][0].r.load.ops_per_second;
  double uniform_on = cells[0][1].r.load.ops_per_second;
  uint64_t uniform_moves = cells[0][1].r.rebalance.buckets_moved;
  double gain = skew_off > 0 ? skew_on / skew_off : 0.0;

  std::printf("\nshape checks:\n");
  std::printf("  - skewed, rebalance on vs off: %.2fx aggregate (gate: > 1.02x): %s\n", gain,
              gain > 1.02 ? "PASS" : "FAIL");
  std::printf("  - uniform load stays put (threshold gates movement): %lu buckets moved\n",
              static_cast<unsigned long>(uniform_moves));
  std::printf("  - uniform throughput unaffected by an idle rebalancer: %.0f vs %.0f op/s\n",
              uniform_on, uniform_off);
  return gain > 1.02 ? 0 : 1;
}

// E7 — Checkpoint creation cost (thesis Section 8.4.1): copy-on-write checkpointing cost as a
// function of state size and the fraction of pages modified per checkpoint epoch.
//
// Two measurements:
//  - simulated digest cost charged by the model (what a replica pays in protocol time)
//  - real wall-clock time of the data structure itself (google-benchmark)
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/state.h"

using namespace bft;

namespace {

ReplicaConfig StateConfig(size_t mb) {
  ReplicaConfig config;
  config.page_size = 4096;
  config.state_pages = mb * 1024 * 1024 / config.page_size;
  config.partition_branching = 256;
  return config;
}

void TouchPages(ReplicaState* state, size_t count, Rng* rng) {
  for (size_t i = 0; i < count; ++i) {
    uint64_t page = rng->Below(state->num_pages());
    uint64_t stamp = rng->Next();
    state->Write(page * state->page_size(),
                 ByteView(reinterpret_cast<const uint8_t*>(&stamp), sizeof(stamp)));
  }
}

// Real-time micro-benchmark of TakeCheckpoint, registered with google-benchmark.
void BM_TakeCheckpoint(benchmark::State& bench_state) {
  size_t mb = static_cast<size_t>(bench_state.range(0));
  size_t dirty = static_cast<size_t>(bench_state.range(1));
  ReplicaConfig config = StateConfig(mb);
  PerfModel model;
  ReplicaState state(&config, &model);
  state.Baseline({});
  Rng rng(99);
  SeqNo seq = 0;
  for (auto _ : bench_state) {
    bench_state.PauseTiming();
    TouchPages(&state, dirty, &rng);
    seq += 128;
    bench_state.ResumeTiming();
    benchmark::DoNotOptimize(state.TakeCheckpoint(seq, {}, nullptr));
    bench_state.PauseTiming();
    state.DiscardCheckpointsBelow(seq);
    bench_state.ResumeTiming();
  }
  bench_state.counters["dirty_pages"] = static_cast<double>(dirty);
}
BENCHMARK(BM_TakeCheckpoint)
    ->Args({4, 16})
    ->Args({4, 128})
    ->Args({16, 16})
    ->Args({16, 128})
    ->Args({64, 128})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_checkpoint", argc, argv);
  PrintHeader("E7", "checkpoint creation cost (copy-on-write + incremental AdHash digests)");

  PerfModel model;
  std::printf("%-12s %-14s %20s %16s\n", "state (MB)", "dirty pages", "simulated cost (us)",
              "per dirty page");
  for (size_t mb : {4u, 16u, 64u}) {
    for (size_t dirty : {16u, 128u, 1024u}) {
      ReplicaConfig config = StateConfig(mb);
      ReplicaState state(&config, &model);
      state.Baseline({});
      Rng rng(7);
      TouchPages(&state, dirty, &rng);
      CpuMeter cpu;
      cpu.BeginEvent(0);
      state.TakeCheckpoint(128, {}, &cpu);
      cpu.EndEvent();
      std::printf("%-12zu %-14zu %20.0f %15.2f\n", mb, dirty, ToUs(cpu.total_busy()),
                  ToUs(cpu.total_busy()) / static_cast<double>(dirty));
      json.Row("mb=" + std::to_string(mb) + ",dirty=" + std::to_string(dirty),
               {{"state_mb", std::to_string(mb)}, {"dirty_pages", std::to_string(dirty)}},
               {{"cost_us", ToUs(cpu.total_busy())},
                {"per_dirty_page_us", ToUs(cpu.total_busy()) / static_cast<double>(dirty)}});
    }
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  - cost scales with the number of *modified* pages, not total state size\n");
  std::printf("    (copy-on-write + incremental digests)\n");
  std::printf("  - per-dirty-page cost is flat: the tree update above each page is O(levels)\n");

  std::printf("\nreal-time micro-benchmark of the data structure:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Real-clock runtime benchmark: certified-ops throughput and latency of an RtCluster over
// the in-process channel and over loopback sockets (plain UDP and io_uring backends), with
// the datagram-formation layer and request batching on and off. io_uring cells are skipped
// (with a note) when the kernel or build lacks support.
//
// Unlike every other bench in this directory, the numbers here are *wall-clock* — real
// threads, real sockets, the monotonic clock — so they move when the implementation gets
// faster, not when the Chapter-7 cost model changes. Each cell runs C closed-loop clients,
// each on its own harness thread, issuing null 0/0 operations; every completed operation is
// backed by a full reply certificate.
//
// Usage: bench_runtime [--duration-ms D] [--clients C] [--replicas N] [--quick] [--json path]
//                      [--metrics-json path]
//
// --metrics-json writes one per-cell observability dump (the harness registry plus the
// tracer, as JSON) next to the bench artifacts — path "m.json" yields "m.<cell>.json". It is
// a separate file from --json on purpose: the gated bench rows stay exactly as the
// regression differ expects them.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/export.h"
#include "src/runtime/rt_cluster.h"

namespace bft {
namespace {

struct CellResult {
  double ops_per_sec = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t ops = 0;
  uint64_t failures = 0;
};

RtClusterOptions RuntimeOptions(RtClusterOptions::TransportKind transport, bool formation,
                                bool batching, int replicas) {
  RtClusterOptions options;
  options.config.n = replicas;
  options.config.state_pages = 64;
  options.config.batching = batching;
  // Real time burns here: the simulator's 50 ms fault timeout would let one scheduler stall
  // on a loaded machine fake a faulty primary mid-measurement.
  options.config.view_change_timeout = 10 * kSecond;
  options.config.max_view_change_timeout = 60 * kSecond;
  options.config.client_retry_timeout = 2 * kSecond;
  options.seed = 7;
  options.transport = transport;
  options.formation = formation;
  return options;
}

// C closed-loop clients for `duration`; returns certified throughput and latency stats.
// With a non-empty `metrics_path`, the cell's metrics registry is dumped there as JSON
// after the loops stop.
CellResult RunCell(RtClusterOptions options, int clients, double duration_s,
                   const std::string& metrics_path) {
  RtCluster cluster(options, [](NodeId) { return std::make_unique<NullService>(); });
  std::vector<Client*> handles;
  for (int c = 0; c < clients; ++c) {
    handles.push_back(cluster.AddClient());
  }
  cluster.Start();

  Bytes op = NullService::MakeOp(/*read_only=*/false, 0, 0);
  // Warmup outside the measured window: first ops pay session-key derivation and page-in.
  for (Client* client : handles) {
    cluster.Execute(client, op, /*read_only=*/false, 10 * kSecond);
  }

  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(clients));
  std::vector<uint64_t> failures(static_cast<size_t>(clients), 0);
  std::vector<std::thread> threads;
  auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c]() {
      Client* client = handles[static_cast<size_t>(c)];
      auto& lat = latencies[static_cast<size_t>(c)];
      while (!stop.load(std::memory_order_relaxed)) {
        auto t0 = std::chrono::steady_clock::now();
        std::optional<Bytes> r = cluster.Execute(client, op, /*read_only=*/false, 10 * kSecond);
        auto t1 = std::chrono::steady_clock::now();
        if (r.has_value()) {
          lat.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
        } else {
          ++failures[static_cast<size_t>(c)];
          return;  // a timed-out client keeps its op in flight; retire rather than clobber
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true);
  for (std::thread& t : threads) {
    t.join();
  }
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  cluster.Stop();
  if (!metrics_path.empty()) {
    WriteMetricsJson(metrics_path, cluster.metrics(), &cluster.tracer());
  }

  CellResult result;
  std::vector<double> all;
  for (const auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  for (uint64_t f : failures) {
    result.failures += f;
  }
  result.ops = all.size();
  result.ops_per_sec = elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0;
  if (!all.empty()) {
    double sum = 0;
    for (double v : all) {
      sum += v;
    }
    result.mean_us = sum / static_cast<double>(all.size());
    result.p50_us = PercentileOf(all, 50);
    result.p99_us = PercentileOf(all, 99);
  }
  return result;
}

}  // namespace
}  // namespace bft

int main(int argc, char** argv) {
  using namespace bft;

  uint64_t duration_ms = 2000;
  int clients = 8;
  int replicas = 4;
  bool quick = false;
  std::string metrics_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      replicas = static_cast<int>(std::strtol(argv[i + 1], nullptr, 10));
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json = argv[i + 1];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  if (quick) {
    duration_ms = std::min<uint64_t>(duration_ms, 300);
    clients = std::min(clients, 2);
  }
  double duration_s = static_cast<double>(duration_ms) / 1000.0;

  BenchJson json("bench_runtime", argc, argv);

  std::printf("\n================================================================\n");
  std::printf("RUNTIME: real-clock RtCluster throughput and latency\n");
  std::printf("(wall-clock time; %d replicas, %d closed-loop clients, %.1f s/cell)\n",
              replicas, clients, duration_s);
  std::printf("================================================================\n");
  std::printf("%-12s %-9s %-9s %12s %10s %10s %10s\n", "backend", "formation", "batching",
              "ops/s", "mean us", "p50 us", "p99 us");

  struct Cell {
    const char* backend;  // socket backend (row identity for diff_bench.py)
    RtClusterOptions::TransportKind transport;
    bool formation;
    bool batching;
  };
  const Cell cells[] = {
      {"inproc", RtClusterOptions::TransportKind::kInProc, false, true},
      {"inproc", RtClusterOptions::TransportKind::kInProc, false, false},
      {"udp", RtClusterOptions::TransportKind::kUdp, false, true},
      {"udp", RtClusterOptions::TransportKind::kUdp, false, false},
      {"udp", RtClusterOptions::TransportKind::kUdp, true, true},
      {"uring", RtClusterOptions::TransportKind::kUring, false, true},
      {"uring", RtClusterOptions::TransportKind::kUring, true, true},
      {"uring", RtClusterOptions::TransportKind::kUring, true, false},
  };
  for (const Cell& cell : cells) {
    if (cell.transport == RtClusterOptions::TransportKind::kUring &&
        !IoUringTransport::Supported()) {
      // Skip rather than silently benchmark the UDP fallback under a uring label.
      std::printf("%-12s %-9s %-9s %12s\n", cell.backend, cell.formation ? "on" : "off",
                  cell.batching ? "on" : "off", "skipped");
      continue;
    }
    std::string name = std::string(cell.backend) + (cell.formation ? "+form" : "") +
                       (cell.batching ? "/batching" : "/no-batch");
    std::string cell_metrics;
    if (!metrics_json.empty()) {
      std::string tag = std::string(cell.backend) + (cell.formation ? "-form" : "") +
                        (cell.batching ? "-batching" : "-no-batch");
      size_t dot = metrics_json.rfind(".json");
      cell_metrics = dot == std::string::npos
                         ? metrics_json + "." + tag
                         : metrics_json.substr(0, dot) + "." + tag + ".json";
    }
    CellResult r = RunCell(
        RuntimeOptions(cell.transport, cell.formation, cell.batching, replicas), clients,
        duration_s, cell_metrics);
    std::printf("%-12s %-9s %-9s %12.0f %10.1f %10.1f %10.1f\n", cell.backend,
                cell.formation ? "on" : "off", cell.batching ? "on" : "off", r.ops_per_sec,
                r.mean_us, r.p50_us, r.p99_us);
    if (r.failures > 0) {
      std::printf("  (%llu client(s) retired on timeout)\n",
                  static_cast<unsigned long long>(r.failures));
    }
    json.Row(name,
             {{"backend", cell.backend},
              {"formation", cell.formation ? "on" : "off"},
              {"batching", cell.batching ? "on" : "off"},
              {"replicas", std::to_string(replicas)},
              {"clients", std::to_string(clients)}},
             {{"ops_per_sec", r.ops_per_sec},
              {"mean_us", r.mean_us},
              {"p50_us", r.p50_us},
              {"p99_us", r.p99_us},
              {"certified_ops", static_cast<double>(r.ops)}});
  }
  return 0;
}

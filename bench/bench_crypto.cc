// Crypto micro-benchmark: digests/s and MACs/s, isolating the session-key/HMAC-state cache
// from protocol effects.
//
// Three MAC paths over a typical fixed-size authenticated header:
//   derive+mac  — the pre-cache hot path: re-derive the session key (one SHA-256) and build
//                 the full HMAC key schedule (ipad/opad blocks) on every call.
//   schedule    — key known, but the key schedule is still rebuilt per call (plain
//                 HmacSha256(key, msg)).
//   cached      — precomputed HmacState per session key: two SHA-256 finishes per MAC, the
//                 floor for HMAC. This is what AuthContext::MacStateFor serves per peer.
//
// Wall-clock numbers; they move with the SHA backend (SHA-NI vs scalar) and the cache, not
// with the simulator's cost model.
//
// Usage: bench_crypto [--ms N] [--json path]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/serializer.h"
#include "src/crypto/digest.h"
#include "src/crypto/hmac.h"
#include "src/crypto/mac.h"

namespace bft {
namespace {

// Runs `fn` repeatedly for ~`ms` milliseconds; returns calls per second.
template <typename Fn>
double Rate(uint64_t ms, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  // Calibration pass keeps the clock out of the measured loop.
  uint64_t batch = 64;
  auto t0 = Clock::now();
  for (uint64_t i = 0; i < batch; ++i) {
    fn();
  }
  double per_call =
      std::chrono::duration<double>(Clock::now() - t0).count() / static_cast<double>(batch);
  uint64_t calls = per_call > 0 ? static_cast<uint64_t>(static_cast<double>(ms) / 1000.0 /
                                                        per_call) : 1;
  calls = calls < 1 ? 1 : calls;
  t0 = Clock::now();
  for (uint64_t i = 0; i < calls; ++i) {
    fn();
  }
  double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  return elapsed > 0 ? static_cast<double>(calls) / elapsed : 0;
}

}  // namespace
}  // namespace bft

int main(int argc, char** argv) {
  using namespace bft;

  uint64_t ms = 300;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ms") == 0) {
      ms = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  BenchJson json("bench_crypto", argc, argv);
  Rng rng(17);
  Bytes key = rng.RandomBytes(kSessionKeySize);
  // 48 bytes: the ballpark of an authenticated protocol header (AuthContent of a
  // prepare/commit: view + seq + digest + replica id).
  Bytes header = rng.RandomBytes(48);
  volatile uint8_t sink = 0;  // defeats dead-code elimination of the hash loops

  std::printf("\n================================================================\n");
  std::printf("CRYPTO: digest and MAC microbenchmarks (wall clock)\n");
  std::printf("================================================================\n");

  struct DigestCase {
    const char* name;
    size_t size;
  };
  for (const DigestCase& c : {DigestCase{"digest-64B", 64}, DigestCase{"digest-1KB", 1024},
                              DigestCase{"digest-4KB", 4096}}) {
    Bytes payload = rng.RandomBytes(c.size);
    double rate = Rate(ms, [&]() {
      Digest d = ComputeDigest(payload);
      sink ^= d.bytes[0];
    });
    std::printf("%-24s %12.0f /s  (%6.1f MB/s)\n", c.name, rate,
                rate * static_cast<double>(c.size) / 1e6);
    json.Row(c.name, {{"payload_bytes", std::to_string(c.size)}},
             {{"per_sec", rate}, {"mb_per_sec", rate * static_cast<double>(c.size) / 1e6}});
  }

  // The pre-PR hot path, reproduced verbatim: AuthContext::KeyFor serialized the derivation
  // preimage into a fresh Writer and hashed it, then HmacSha256 rebuilt the ipad/opad key
  // schedule and ran the full streaming inner/outer hashes — on every MAC, all on the scalar
  // SHA-256 this repo shipped before the hardware kernel. Scalar is forced for this row so
  // the number is what the pre-PR binary actually did.
  Sha256::ForceScalarForBenchmarks(true);
  double uncached_mac = Rate(ms, [&]() {
    Writer w;
    w.Str("bft-session-key-master");
    w.U32(0);
    w.U32(1);
    w.U64(0);
    Sha256::DigestBytes full = Sha256::Hash(w.data());
    Bytes k(full.begin(), full.begin() + kSessionKeySize);
    constexpr size_t kBlockSize = 64;
    uint8_t key_block[kBlockSize] = {0};
    std::memcpy(key_block, k.data(), k.size());
    uint8_t ipad[kBlockSize];
    uint8_t opad[kBlockSize];
    for (size_t i = 0; i < kBlockSize; ++i) {
      ipad[i] = key_block[i] ^ 0x36;
      opad[i] = key_block[i] ^ 0x5c;
    }
    Sha256 inner;
    inner.Update(ByteView(ipad, kBlockSize));
    inner.Update(header);
    Sha256::DigestBytes inner_digest = inner.Finish();
    Sha256 outer;
    outer.Update(ByteView(opad, kBlockSize));
    outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
    Sha256::DigestBytes mac = outer.Finish();
    MacTag tag;
    std::memcpy(tag.bytes.data(), mac.data(), MacTag::kSize);
    sink ^= tag.bytes[0];
  });
  Sha256::ForceScalarForBenchmarks(false);
  // Same per-call derivation, but on today's SHA backend (still no cache): isolates the
  // cache win from the hardware-kernel win.
  double derive_mac = Rate(ms, [&]() {
    Writer w;
    w.Str("bft-session-key-master");
    w.U32(0);
    w.U32(1);
    w.U64(0);
    Sha256::DigestBytes full = Sha256::Hash(w.data());
    Bytes k(full.begin(), full.begin() + kSessionKeySize);
    MacTag tag = ComputeMac(k, header);
    sink ^= tag.bytes[0];
  });
  double schedule_mac = Rate(ms, [&]() {
    MacTag tag = ComputeMac(key, header);
    sink ^= tag.bytes[0];
  });
  HmacState cached_state(key);
  double cached_mac = Rate(ms, [&]() {
    MacTag tag = ComputeMac(cached_state, header);
    sink ^= tag.bytes[0];
  });

  std::printf("%-24s %12.0f /s  (pre-PR hot path: derive+schedule, scalar SHA)\n",
              "mac-uncached", uncached_mac);
  std::printf("%-24s %12.0f /s\n", "mac-derive+schedule", derive_mac);
  std::printf("%-24s %12.0f /s\n", "mac-schedule-only", schedule_mac);
  std::printf("%-24s %12.0f /s\n", "mac-cached-state", cached_mac);
  std::printf("cached vs uncached: %.2fx   vs derive+schedule: %.2fx   vs schedule-only: %.2fx\n",
              uncached_mac > 0 ? cached_mac / uncached_mac : 0,
              derive_mac > 0 ? cached_mac / derive_mac : 0,
              schedule_mac > 0 ? cached_mac / schedule_mac : 0);

  json.Row("mac-uncached", {{"header_bytes", "48"}}, {{"per_sec", uncached_mac}});
  json.Row("mac-derive+schedule", {{"header_bytes", "48"}}, {{"per_sec", derive_mac}});
  json.Row("mac-schedule-only", {{"header_bytes", "48"}}, {{"per_sec", schedule_mac}});
  json.Row("mac-cached-state", {{"header_bytes", "48"}},
           {{"per_sec", cached_mac},
            {"speedup_vs_uncached", uncached_mac > 0 ? cached_mac / uncached_mac : 0},
            {"speedup_vs_derive", derive_mac > 0 ? cached_mac / derive_mac : 0},
            {"speedup_vs_schedule", schedule_mac > 0 ? cached_mac / schedule_mac : 0}});
  return 0;
}

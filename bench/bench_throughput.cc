// E4 — Throughput vs number of clients (thesis Section 8.3.2, Figs 8-4..8-6): closed-loop
// clients issuing 0/0 read-write, 0/0 read-only, and 4/0 read-write operations, with request
// batching amortizing protocol cost under load.
#include "bench/bench_util.h"

using namespace bft;

namespace {
double RunOne(size_t clients, size_t arg, bool read_only) {
  ClusterOptions options = BenchOptions(500 + clients + arg);
  Cluster cluster(options, NullFactory());
  ClosedLoopLoad load(
      &cluster, clients,
      [arg, read_only](size_t, uint64_t) { return NullService::MakeOp(read_only, arg, 8); },
      read_only);
  ClosedLoopLoad::Result r = load.Run(/*warmup=*/kSecond, /*duration=*/4 * kSecond);
  return r.ops_per_second;
}
}  // namespace

int main(int argc, char** argv) {
  BenchJson json("bench_throughput", argc, argv);
  PrintHeader("E4", "throughput vs number of clients (0/0 r-w, 0/0 r-o, 4/0 r-w)");
  std::printf("%-10s %16s %16s %16s\n", "clients", "0/0 rw (op/s)", "0/0 ro (op/s)",
              "4/0 rw (op/s)");
  for (size_t clients : {1u, 2u, 5u, 10u, 20u, 50u}) {
    double rw = RunOne(clients, 0, false);
    double ro = RunOne(clients, 0, true);
    double big = RunOne(clients, 4096, false);
    std::printf("%-10zu %16.0f %16.0f %16.0f\n", clients, rw, ro, big);
    json.Row("clients=" + std::to_string(clients), {{"clients", std::to_string(clients)}},
             {{"rw_ops_per_s", rw}, {"ro_ops_per_s", ro}, {"rw4k_ops_per_s", big}});
  }
  std::printf("\npaper shape checks:\n");
  std::printf("  - read-write throughput rises with clients as batching kicks in, then\n");
  std::printf("    saturates on the bottleneck replica's CPU\n");
  std::printf("  - read-only throughput is higher at low client counts (single round\n");
  std::printf("    trip, no serialization through the primary)\n");
  std::printf("  - 4/0 throughput is lower (per-op digest and wire costs)\n");
  return 0;
}

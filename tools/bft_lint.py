#!/usr/bin/env python3
"""Repo-invariant linter: machine-checks the concurrency and layering contracts that the
thread-safety annotations cannot express (or that must hold even in files the Clang analysis
never sees, like tests and tools).

Rules
-----
raw-mutex           std::mutex / std::shared_mutex / std::condition_variable / std::lock_guard
                    / std::unique_lock / std::shared_lock / std::scoped_lock anywhere outside
                    src/common/thread_annotations.h. The Clang thread-safety analysis only
                    sees locks acquired through the annotated wrappers, so one raw mutex is a
                    hole in every GUARDED_BY contract in the repo.

blocking-under-lock A blocking call (io_uring_enter, UringEnterTimed, ppoll, recvmsg/recvmmsg
                    without MSG_DONTWAIT, sleep/sleep_for/sleep_until, condition-variable
                    waits, thread join) in a lexical scope that still holds a lock guard.
                    This is the PR-8 io_uring Park deadlock as a grep: Park blocked in
                    io_uring_enter holding the shared node-table lock, wedging Unregister.
                    Guard-aware: `lock.Unlock()` / `lock.unlock()` suspends the guard,
                    `lock.Lock()` / `lock.lock()` re-arms it; a CondVar wait naming the held
                    mutex (or the guard variable) is the one legitimate blocking-while-locked
                    pattern and is exempt.

layering            src/core must not include src/sim or src/runtime. The protocol core runs
                    unmodified under the deterministic simulator and the real-clock runtime;
                    an upward include would let runtime types leak into the replayable core.

msgtype-trait       Every MsgType enumerator in src/core/messages.h has a MsgTypeTrait
                    specialization. A missing trait silently breaks generic encode/decode
                    dispatch for that message type.

single-issuer       Inside a function marked `// bft-lint: delayed-delivery-context` (the
                    FaultTransport delay thread and anything like it), calls through
                    `->Send(` are forbidden: io_uring restricts Send(src, ...) to src's own
                    loop thread, so delayed datagrams must be delivered via the destination
                    sink's EnqueueMessage instead.

Waivers
-------
A finding is waived by a comment on the same line or the line above:

    // bft-lint: allow(<rule>[,<rule>...]) <reason>

The reason is mandatory; a bare allow() is itself an error. `delayed-delivery-context` is a
marker, not a waiver: it applies single-issuer checking to the function that follows.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

RULES = ("raw-mutex", "blocking-under-lock", "layering", "msgtype-trait", "single-issuer")

# Directories scanned relative to the repo root.
SCAN_DIRS = ("src", "tests", "tools", "bench", "examples")
CXX_EXTS = (".cc", ".cpp", ".h", ".hpp")

WRAPPER_HEADER = os.path.join("src", "common", "thread_annotations.h")

RAW_MUTEX_TOKENS = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|condition_variable(_any)?|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)

# Guard declarations: `MutexLock lock(mu_);`, `ReaderMutexLock l(x.mu);` etc.
GUARD_DECL = re.compile(
    r"\b(MutexLock|ReaderMutexLock|WriterMutexLock)\s+(\w+)\s*[({]\s*([^;)}]*?)\s*[)}]"
)
# Guard state toggles on a previously declared guard variable.
GUARD_UNLOCK = re.compile(r"\b(\w+)\s*\.\s*[Uu]nlock(_shared)?\s*\(")
GUARD_RELOCK = re.compile(r"\b(\w+)\s*\.\s*[Ll]ock(_shared)?\s*\(")

# Blocking calls. Each entry: (regex, human label).
BLOCKING_CALLS = [
    (re.compile(r"\bio_uring_enter\s*\("), "io_uring_enter"),
    (re.compile(r"\bUringEnterTimed\s*\("), "UringEnterTimed"),
    (re.compile(r"\bppoll\s*\("), "ppoll"),
    (re.compile(r"\bpoll\s*\(\s*fds"), "poll"),
    (re.compile(r"\brecvmmsg\s*\("), "recvmmsg"),
    (re.compile(r"\brecvmsg\s*\("), "recvmsg"),
    (re.compile(r"\bsleep_for\s*\("), "sleep_for"),
    (re.compile(r"\bsleep_until\s*\("), "sleep_until"),
    (re.compile(r"(?<![\w.])sleep\s*\("), "sleep"),
    (re.compile(r"\.\s*join\s*\("), "thread join"),
    (re.compile(r"\.\s*(wait|wait_for|wait_until|Wait|WaitFor|WaitUntil)\s*\("), "cv wait"),
]
# recvmmsg/recvmsg with MSG_DONTWAIT never blocks; exempt when the flag is on the same line.
NONBLOCKING_FLAG = re.compile(r"MSG_DONTWAIT")

ALLOW = re.compile(r"//\s*bft-lint:\s*allow\(([^)]*)\)\s*(.*)")
DELAYED_CONTEXT = re.compile(r"//\s*bft-lint:\s*delayed-delivery-context")

# Matched against the raw line (the include path is a string literal, which the token
# stripper removes); anchoring to line start keeps commented-out includes from matching.
LAYERING_FORBIDDEN = re.compile(r'^\s*#include\s+"src/(sim|runtime)/')

SEND_CALL = re.compile(r"->\s*Send\s*\(")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line, in_block_comment):
    """Removes string/char literals and comments so tokens inside them never match.
    Returns (code, comment, still_in_block_comment): `comment` is the line's trailing //
    comment text (where waivers live)."""
    out = []
    comment = ""
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), comment, True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            comment = line[i:]
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(quote + quote)  # keep an empty literal so commas still separate args
            continue
        out.append(c)
        i += 1
    return "".join(out), comment, in_block_comment


def parse_waivers(raw_lines, findings, path):
    """Returns {line_number: set(rules)} where a waiver on line N covers lines N and N+1."""
    waivers = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        reason = m.group(2).strip()
        unknown = rules - set(RULES)
        if unknown:
            findings.append(
                Finding(path, idx, "waiver", f"allow() names unknown rule(s): {sorted(unknown)}")
            )
        if not reason:
            findings.append(
                Finding(path, idx, "waiver", "allow() without a reason — say why, it's load-bearing")
            )
        for n in (idx, idx + 1):
            waivers.setdefault(n, set()).update(rules)
    return waivers


def waived(waivers, line, rule):
    return rule in waivers.get(line, set())


class Guard:
    """A lock guard in scope. `saved` snapshots `active` at each nested scope entry, so a
    toggle inside a branch (e.g. an if-block ending in `continue`) is undone when the branch's
    scope closes — the lexical state then matches the fallthrough path's runtime state."""

    __slots__ = ("var", "expr", "depth", "active", "saved")

    def __init__(self, var, expr, depth):
        self.var = var
        self.expr = expr
        self.depth = depth
        self.active = True
        self.saved = []


def check_file(path, rel, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        raw_lines = f.read().splitlines()

    waivers = parse_waivers(raw_lines, findings, rel)
    is_wrapper = rel == WRAPPER_HEADER
    in_core = rel.replace(os.sep, "/").startswith("src/core/")

    guards = []  # lexical stack of Guard, scoped by brace depth
    depth = 0
    in_block_comment = False
    # single-issuer: active while inside the function following a delayed-delivery-context
    # marker; armed between the marker and the function's opening brace.
    delayed_armed = False
    delayed_depth = None

    for lineno, raw in enumerate(raw_lines, start=1):
        code, _, in_block_comment = strip_strings_and_comments(raw, in_block_comment)

        if DELAYED_CONTEXT.search(raw):
            delayed_armed = True

        # --- raw-mutex ---
        if not is_wrapper:
            m = RAW_MUTEX_TOKENS.search(code)
            if m and not waived(waivers, lineno, "raw-mutex"):
                findings.append(
                    Finding(
                        rel, lineno, "raw-mutex",
                        f"{m.group(0)} outside {WRAPPER_HEADER} — use the annotated wrappers "
                        "(Mutex/SharedMutex/MutexLock/CondVar)",
                    )
                )

        # --- layering ---
        if in_core:
            m = LAYERING_FORBIDDEN.search(raw)
            if m and not waived(waivers, lineno, "layering"):
                findings.append(
                    Finding(
                        rel, lineno, "layering",
                        f"src/core includes src/{m.group(1)} — the core must stay runnable "
                        "under both the simulator and the runtime",
                    )
                )

        # --- guard tracking (declarations before toggles: a decl line can't also toggle) ---
        for m in GUARD_DECL.finditer(code):
            guards.append(Guard(m.group(2), m.group(3), depth))
        decl_vars = {g.var for g in guards if g.depth == depth}
        for m in GUARD_UNLOCK.finditer(code):
            for g in guards:
                if g.var == m.group(1):
                    g.active = False
        for m in GUARD_RELOCK.finditer(code):
            if m.group(1) in decl_vars and GUARD_DECL.search(code):
                continue  # the declaration itself, not a re-lock
            for g in guards:
                if g.var == m.group(1):
                    g.active = True

        # --- blocking-under-lock ---
        active = [g for g in guards if g.active]
        if active and not waived(waivers, lineno, "blocking-under-lock"):
            for rx, label in BLOCKING_CALLS:
                m = rx.search(code)
                if not m:
                    continue
                if label in ("recvmmsg", "recvmsg") and NONBLOCKING_FLAG.search(code):
                    continue
                # A wait that names the guard variable or its lock expression is the
                # condition-variable pattern: the wait atomically releases that mutex.
                call_args = code[m.end():]

                def named(token):
                    return token and re.search(rf"\b{re.escape(token)}\b", call_args)

                if label == "cv wait" and any(named(g.var) or named(g.expr) for g in active):
                    continue
                held = ", ".join(f"{g.var}({g.expr})" for g in active)
                findings.append(
                    Finding(
                        rel, lineno, "blocking-under-lock",
                        f"{label} while holding {held} — release the guard first "
                        "(the PR-8 Park/Unregister deadlock shape)",
                    )
                )

        # --- single-issuer ---
        if delayed_depth is not None and not waived(waivers, lineno, "single-issuer"):
            if SEND_CALL.search(code):
                findings.append(
                    Finding(
                        rel, lineno, "single-issuer",
                        "->Send() from a delayed-delivery context — deliver via the "
                        "destination sink's EnqueueMessage (io_uring Send is loop-thread-only)",
                    )
                )

        # --- brace depth / scope exits ---
        for c in code:
            if c == "{":
                depth += 1
                for g in guards:
                    g.saved.append(g.active)
                if delayed_armed and delayed_depth is None:
                    delayed_depth = depth
                    delayed_armed = False
            elif c == "}":
                depth -= 1
                # Guards declared inside the closed scope die with it; survivors revert to the
                # lock state they had when the scope opened.
                guards = [g for g in guards if g.depth <= depth]
                for g in guards:
                    if g.saved:
                        g.active = g.saved.pop()
                if delayed_depth is not None and depth < delayed_depth:
                    delayed_depth = None

    return findings


def check_msgtype_traits(root, findings):
    rel = os.path.join("src", "core", "messages.h")
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        findings.append(Finding(rel, 0, "msgtype-trait", "src/core/messages.h not found"))
        return
    with open(path, encoding="utf-8") as f:
        text = f.read()
    enum_m = re.search(r"enum class MsgType[^{]*\{(.*?)\}", text, re.S)
    if not enum_m:
        findings.append(Finding(rel, 0, "msgtype-trait", "MsgType enum not found"))
        return
    enumerators = re.findall(r"\b(k\w+)\s*=", enum_m.group(1))
    # Idiom: template <> struct MsgTypeTrait<FooMsg> { static constexpr MsgType value =
    # MsgType::kFoo; }; — collect the enumerator each specialization maps to.
    specialized = set(
        re.findall(r"MsgTypeTrait<\w+>\s*\{[^}]*?MsgType::(k\w+)", text)
    )
    for e in enumerators:
        if e not in specialized:
            line = text[: text.index(e)].count("\n") + 1
            findings.append(
                Finding(
                    rel, line, "msgtype-trait",
                    f"MsgType::{e} has no MsgTypeTrait specialization — generic "
                    "encode/decode dispatch silently skips it",
                )
            )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None, help="repo root (default: this script's repo)")
    parser.add_argument("paths", nargs="*", help="explicit files to check (default: whole repo)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = []

    if args.paths:
        files = [(p, os.path.relpath(os.path.abspath(p), root)) for p in args.paths]
    else:
        files = []
        for d in SCAN_DIRS:
            base = os.path.join(root, d)
            for dirpath, _, names in os.walk(base):
                for name in sorted(names):
                    if name.endswith(CXX_EXTS):
                        full = os.path.join(dirpath, name)
                        files.append((full, os.path.relpath(full, root)))

    for full, rel in sorted(files, key=lambda t: t[1]):
        check_file(full, rel, findings)

    if not args.paths:
        check_msgtype_traits(root, findings)

    for f in findings:
        print(f)
    if findings:
        print(f"bft_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("bft_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

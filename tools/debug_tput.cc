// Scratch debugging driver for throughput stalls (not registered with ctest).
#include <cstdio>

#include "src/common/logging.h"
#include "src/service/null_service.h"
#include "src/workload/closed_loop.h"

using namespace bft;

int main(int argc, char** argv) {
  size_t clients = argc > 1 ? static_cast<size_t>(atoi(argv[1])) : 20;
  size_t arg = argc > 2 ? static_cast<size_t>(atoi(argv[2])) : 4096;
  ClusterOptions options;
  options.seed = 500 + clients + arg;
  options.config.checkpoint_period = 128;
  options.config.log_size = 256;
  options.config.state_pages = 64;
  options.config.partition_branching = 16;
  Cluster cluster(options, [](NodeId) { return std::make_unique<NullService>(); });
  ClosedLoopLoad load(
      &cluster, clients,
      [arg](size_t, uint64_t) { return NullService::MakeOp(false, arg, 8); }, false);
  ClosedLoopLoad::Result r = load.Run(kSecond, 4 * kSecond);
  std::printf("tput=%.0f ops=%lu\n", r.ops_per_second, r.ops_completed);
  for (int i = 0; i < 4; ++i) {
    Replica* rep = cluster.replica(i);
    std::printf("replica %d: view=%lu active=%d last_exec=%lu low=%lu vc=%lu auth_rej=%lu\n",
                i, rep->view(), rep->view_active(), rep->last_executed(), rep->low_water(),
                rep->stats().view_changes_started, rep->stats().rejected_auth);
  }
  size_t retrans = 0;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    retrans += cluster.client(i)->stats().retransmissions;
  }
  std::printf("client retransmissions=%zu\n", retrans);
  return 0;
}

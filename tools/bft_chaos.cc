// Chaos harness for the real-clock runtime: scripted and seeded-random fault scenarios
// against a live 3f+1 cluster while closed-loop clients drive load, with machine-checked
// safety and liveness.
//
// Safety checks (violations fail the scenario):
//   - every certified PUT reply is "ok" and every certified ordered GET returns exactly the
//     last value this client's certified PUTs wrote (a sequential KV model per key; keys are
//     per-client, so the model is total);
//   - after the run, an audit client re-reads every counter key and the stored value must be
//     the last certified write (or the one in-flight op of a stalled client);
//   - once loops stop, replicas that executed the same sequence number must hold
//     bit-identical state bytes (no divergent certified state).
// Liveness check: after a scenario heals its faults, every load client must complete a new
// certified op within a bounded window (the paper's weak-synchrony liveness claim, measured
// with real timers).
//
// Usage: bft_chaos [--scenario all|primary_crash|partition_heal|drop10|corrupt_burst|
//                   rolling_restart|random]
//                  [--seed S] [--io-backend udp|uring|inproc] [--formation] [--clients C]
//                  [--random-rounds N] [--recovery-window-s W] [--list]
//                  [--metrics-json PATH] [--trace-sample N]
//
// --metrics-json dumps each scenario's final metrics+traces JSON to PATH (and turns on
// request tracing at --trace-sample, default 16, so per-phase latency histograms populate).
// Once a scenario fails the file stops being overwritten — a chaos failure ships with the
// failing run's phase histograms and fault counters attached, not a later passing run's.
//
// Exit status: 0 when every selected scenario passes (or --io-backend=uring is unsupported,
// which prints SKIP), 1 on any safety or liveness failure.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/obs/export.h"
#include "src/runtime/rt_cluster.h"
#include "src/service/kv_service.h"

namespace bft {
namespace {

// An Execute that outlives this has genuinely wedged: every scenario heals within a few
// seconds and retransmission re-probes at least every max_client_retry_timeout.
constexpr SimTime kOpTimeout = 60 * kSecond;

const char* FlagString(int argc, char** argv, const char* name, const char* fallback) {
  size_t name_len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], name, name_len) == 0 && argv[i][name_len] == '=') {
      return argv[i] + name_len + 1;
    }
  }
  return fallback;
}

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t fallback) {
  const char* s = FlagString(argc, argv, name, nullptr);
  return s != nullptr ? std::strtoull(s, nullptr, 10) : fallback;
}

bool FlagPresent(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return true;
    }
  }
  return false;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepMs(uint64_t ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

RtClusterOptions ChaosOptions(RtClusterOptions::TransportKind transport, bool formation,
                              uint64_t seed) {
  RtClusterOptions options;
  options.config.n = 4;
  options.config.state_pages = 64;
  // Small checkpoint period / log: crash-and-restart must outrun the log so rejoin exercises
  // state transfer, not just retransmission.
  options.config.checkpoint_period = 16;
  options.config.log_size = 32;
  // Fault timers sized for chaos: view changes within a few hundred ms of a dead primary,
  // but far above loopback latency so a healthy run stays in view 0.
  options.config.view_change_timeout = 400 * kMillisecond;
  options.config.max_view_change_timeout = 5 * kSecond;
  options.config.client_retry_timeout = 100 * kMillisecond;
  options.config.max_client_retry_timeout = 2 * kSecond;
  options.seed = seed;
  options.fault_seed = seed ^ 0xc8a05c8a05c8a05fULL;
  options.transport = transport;
  options.formation = formation;
  return options;
}

struct Outcome {
  std::string name;
  bool pass = false;
  uint64_t ops = 0;
  uint64_t faults = 0;
  double recover_ms = -1.0;  // time from heal to every client certifying a fresh op
  std::vector<std::string> violations;
};

// One cluster + load generator + checker, living for one scenario.
class ChaosHarness {
 public:
  ChaosHarness(RtClusterOptions options, size_t num_load_clients)
      : cluster_(options, [](NodeId) { return std::make_unique<KvService>(); }),
        completed_(num_load_clients),
        stalled_(num_load_clients) {
    for (size_t c = 0; c < num_load_clients; ++c) {
      Client* client = cluster_.AddClient();
      ClientConfig cc;
      cc.retry_timeout = 100 * kMillisecond;
      cc.max_retry_timeout = 2 * kSecond;
      client->set_client_config(cc);
      load_clients_.push_back(client);
      completed_[c].store(0);
      stalled_[c].store(false);
    }
    checker_ = cluster_.AddClient();
  }

  RtCluster& cluster() { return cluster_; }

  void Start() {
    cluster_.Start();
    for (size_t c = 0; c < load_clients_.size(); ++c) {
      threads_.emplace_back([this, c]() { LoadLoop(c); });
    }
  }

  void Violation(const std::string& msg) {
    MutexLock lock(mu_);
    violations_.push_back(msg);
  }

  uint64_t TotalCompleted() const {
    uint64_t total = 0;
    for (const auto& n : completed_) {
      total += n.load(std::memory_order_relaxed);
    }
    return total;
  }

  // Liveness: from now, every load client must certify at least one new op within
  // `window_s` seconds. Returns elapsed ms when the last client recovered, or -1.
  double AwaitProgress(double window_s) {
    std::vector<uint64_t> base(completed_.size());
    for (size_t c = 0; c < base.size(); ++c) {
      base[c] = completed_[c].load();
    }
    double start = NowSeconds();
    while (NowSeconds() - start < window_s) {
      bool all = true;
      for (size_t c = 0; c < base.size(); ++c) {
        if (completed_[c].load() <= base[c]) {
          all = false;
          break;
        }
      }
      if (all) {
        return (NowSeconds() - start) * 1e3;
      }
      SleepMs(20);
    }
    for (size_t c = 0; c < base.size(); ++c) {
      if (completed_[c].load() <= base[c]) {
        Violation("liveness: client " + std::to_string(c) + " made no progress within " +
                  std::to_string(window_s) + "s of heal");
      }
    }
    return -1.0;
  }

  // Blocks until restarted/lagging replica `i` has executed at least as much as a currently
  // live reference replica had when we started waiting. Returns false on timeout.
  bool AwaitReplicaCaughtUp(int i, double window_s) {
    int ref = -1;
    for (int j = 0; j < cluster_.num_replicas(); ++j) {
      if (j != i && cluster_.replica_running(j)) {
        ref = j;
        break;
      }
    }
    if (ref < 0 || !cluster_.replica_running(i)) {
      return false;
    }
    SeqNo target = 0;
    Replica* rref = cluster_.replica(ref);
    cluster_.RunOn(ref, [&target, rref]() { target = rref->last_executed(); });
    double start = NowSeconds();
    while (NowSeconds() - start < window_s) {
      SeqNo got = 0;
      Replica* ri = cluster_.replica(i);
      cluster_.RunOn(i, [&got, ri]() { got = ri->last_executed(); });
      if (got >= target) {
        return true;
      }
      SleepMs(25);
    }
    Violation("replica " + std::to_string(i) + " failed to catch up to seq " +
              std::to_string(target) + " within " + std::to_string(window_s) + "s");
    return false;
  }

  void StopLoad() {
    stop_.store(true);
    for (std::thread& t : threads_) {
      t.join();
    }
    threads_.clear();
  }

  // Post-run audit; call after StopLoad() with all faults healed. Stops the cluster.
  void FinalAudit() {
    // 1) Stored value vs. the sequential model: the audit client re-reads every counter key
    //    through the ordered path. A stalled client may have one op still in flight (its
    //    retransmission can legally commit any time), hence the +1 tolerance.
    for (size_t c = 0; c < load_clients_.size(); ++c) {
      std::optional<Bytes> got = cluster_.Execute(
          checker_, KvService::GetOp(ToBytes(CounterKey(c))), /*read_only=*/false, kOpTimeout);
      if (!got.has_value()) {
        Violation("audit: GET " + CounterKey(c) + " got no certificate");
        continue;
      }
      uint64_t n = completed_[c].load();
      std::string stored = ToString(*got);
      bool ok = stored == CounterValue(n) || stored == CounterValue(n + 1) ||
                (n == 0 && stored.empty());
      if (!ok) {
        Violation("audit: " + CounterKey(c) + " holds \"" + stored + "\" but client " +
                  "certified " + CounterValue(n));
      }
    }
    // 2) No divergent certified state: replicas that executed the same sequence number must
    //    be byte-identical. Let in-flight commits settle, then freeze and compare.
    SleepMs(300);
    cluster_.Stop();
    for (int i = 0; i < cluster_.num_replicas(); ++i) {
      for (int j = i + 1; j < cluster_.num_replicas(); ++j) {
        Replica* a = cluster_.replica(i);
        Replica* b = cluster_.replica(j);
        if (a == nullptr || b == nullptr || a->last_executed() != b->last_executed()) {
          continue;
        }
        if (std::memcmp(a->state().data(), b->state().data(), a->state().size_bytes()) != 0) {
          Violation("divergence: replicas " + std::to_string(i) + " and " + std::to_string(j) +
                    " executed seq " + std::to_string(a->last_executed()) +
                    " with different state bytes");
        }
      }
    }
  }

  std::vector<std::string> violations() {
    MutexLock lock(mu_);
    return violations_;
  }

 private:
  static std::string CounterKey(size_t c) { return "ctr-" + std::to_string(c); }
  static std::string CounterValue(uint64_t n) { return "v-" + std::to_string(n); }

  void LoadLoop(size_t c) {
    Client* client = load_clients_[c];
    const std::string key = CounterKey(c);
    uint64_t n = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      std::string value = CounterValue(n + 1);
      std::optional<Bytes> put = cluster_.Execute(
          client, KvService::PutOp(ToBytes(key), ToBytes(value)), /*read_only=*/false,
          kOpTimeout);
      if (!put.has_value()) {
        // The op is still in flight and Invoke is one-outstanding: this client is wedged for
        // good. Liveness has already failed by 60s; record and retire the thread.
        stalled_[c].store(true);
        Violation("client " + std::to_string(c) + " wedged: no certificate in 60s");
        return;
      }
      if (ToString(*put) != "ok") {
        Violation("client " + std::to_string(c) + " PUT certified \"" + ToString(*put) +
                  "\", model says \"ok\"");
      }
      ++n;
      completed_[c].store(n, std::memory_order_relaxed);
      if (n % 4 == 0) {
        std::optional<Bytes> got = cluster_.Execute(
            client, KvService::GetOp(ToBytes(key)), /*read_only=*/false, kOpTimeout);
        if (!got.has_value()) {
          stalled_[c].store(true);
          Violation("client " + std::to_string(c) + " wedged on GET");
          return;
        }
        if (ToString(*got) != value) {
          Violation("client " + std::to_string(c) + " certified GET \"" + ToString(*got) +
                    "\" after certifying PUT \"" + value + "\"");
        }
      }
    }
  }

  RtCluster cluster_;
  std::vector<Client*> load_clients_;
  Client* checker_ = nullptr;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::vector<std::atomic<uint64_t>> completed_;
  std::vector<std::atomic<bool>> stalled_;
  Mutex mu_;
  std::vector<std::string> violations_ BFT_GUARDED_BY(mu_);
};

// ---- Scenarios ---------------------------------------------------------------------------

void ScenarioPrimaryCrash(ChaosHarness& h) {
  // Kill the view-0 primary mid-load. The view change IS the heal: progress must resume on
  // replica 1's primaryship. Restart the dead node afterwards so the audit sees 4 replicas.
  h.cluster().CrashReplica(0);
  SleepMs(3000);
  h.cluster().RestartReplica(0);
  h.AwaitReplicaCaughtUp(0, 20.0);
}

void ScenarioPartitionHeal(ChaosHarness& h) {
  // Cut the primary off from everyone (both directions) for 2.5s — longer than the view
  // change timeout, so the majority side elects a new primary — then heal and let the old
  // primary rejoin.
  h.cluster().faults().Partition({0});
  SleepMs(2500);
  h.cluster().faults().Heal();
  h.AwaitReplicaCaughtUp(0, 20.0);
}

void ScenarioDrop10(ChaosHarness& h) {
  // Sustained 10% loss on every link. Liveness must hold DURING the fault — this is the
  // paper's operating regime, not an outage — so require progress before clearing.
  FaultSpec spec;
  spec.drop = 0.10;
  h.cluster().faults().SetDefaultFaults(spec);
  uint64_t before = h.TotalCompleted();
  SleepMs(4000);
  if (h.TotalCompleted() <= before) {
    h.Violation("no ops certified during sustained 10% drop");
  }
  h.cluster().faults().ClearFaults();
}

void ScenarioCorruptBurst(ChaosHarness& h) {
  // Three bursts of heavy corruption with short clean gaps: every decoder sees torn
  // datagrams; MACs reject what framing lets through; retransmission carries the load.
  for (int burst = 0; burst < 3; ++burst) {
    FaultSpec spec;
    spec.corrupt = 0.5;
    h.cluster().faults().SetDefaultFaults(spec);
    SleepMs(700);
    h.cluster().faults().ClearFaults();
    SleepMs(300);
  }
}

void ScenarioRollingRestart(ChaosHarness& h) {
  // Restart every replica in turn, backups first, primary last. Waiting for each rejoin
  // before the next kill keeps at most one replica down (f=1) — the system must never lose
  // liveness, and each rejoin exercises crash + state transfer under live load.
  for (int i = 1; i < h.cluster().num_replicas(); ++i) {
    h.cluster().CrashReplica(i);
    SleepMs(1200);
    h.cluster().RestartReplica(i);
    if (!h.AwaitReplicaCaughtUp(i, 20.0)) {
      return;  // already recorded as a violation; keep the fault count honest
    }
  }
  h.cluster().CrashReplica(0);
  SleepMs(1200);
  h.cluster().RestartReplica(0);
  h.AwaitReplicaCaughtUp(0, 20.0);
}

struct RandomPlan {
  uint64_t seed = 0;
  int rounds = 4;
};

void ScenarioRandom(ChaosHarness& h, const RandomPlan& plan) {
  // Seeded random composition of everything above: each round draws one fault, holds it for
  // 1–2s, heals, and demands recovery before the next round.
  Rng rng(plan.seed ^ 0x5eeded0123456789ULL);
  for (int round = 0; round < plan.rounds; ++round) {
    uint64_t hold_ms = rng.Range(1000, 2000);
    switch (rng.Below(5)) {
      case 0: {
        FaultSpec spec;
        spec.drop = 0.05 + rng.Uniform() * 0.20;
        h.cluster().faults().SetDefaultFaults(spec);
        SleepMs(hold_ms);
        h.cluster().faults().ClearFaults();
        break;
      }
      case 1: {
        FaultSpec spec;
        spec.delay = rng.Range(1, 5) * kMillisecond;
        spec.delay_jitter = 2 * kMillisecond;
        spec.reorder = 0.05;
        h.cluster().faults().SetDefaultFaults(spec);
        SleepMs(hold_ms);
        h.cluster().faults().ClearFaults();
        break;
      }
      case 2: {
        FaultSpec spec;
        spec.corrupt = 0.2 + rng.Uniform() * 0.3;
        spec.duplicate = 0.1;
        h.cluster().faults().SetDefaultFaults(spec);
        SleepMs(hold_ms);
        h.cluster().faults().ClearFaults();
        break;
      }
      case 3: {
        NodeId victim = static_cast<NodeId>(rng.Below(4));
        h.cluster().faults().Partition({victim});
        SleepMs(hold_ms);
        h.cluster().faults().Heal();
        break;
      }
      default: {
        int victim = static_cast<int>(rng.Below(4));
        h.cluster().CrashReplica(victim);
        SleepMs(hold_ms);
        h.cluster().RestartReplica(victim);
        h.AwaitReplicaCaughtUp(victim, 20.0);
        break;
      }
    }
    if (h.AwaitProgress(15.0) < 0) {
      return;  // violation recorded; later rounds would only pile on noise
    }
  }
}

// ---- Driver ------------------------------------------------------------------------------

Outcome RunScenario(const std::string& name, RtClusterOptions options, size_t clients,
                    double recovery_window_s, const RandomPlan& plan,
                    const char* metrics_json, uint64_t trace_sample) {
  Outcome out;
  out.name = name;
  ChaosHarness h(options, clients);
  h.cluster().tracer().set_sample_every(static_cast<uint32_t>(trace_sample));
  h.Start();

  // Warmup: the load must be certifiably flowing before any fault lands.
  SleepMs(700);
  if (h.TotalCompleted() == 0) {
    h.Violation("no ops certified during fault-free warmup");
  }

  if (name == "primary_crash") {
    ScenarioPrimaryCrash(h);
  } else if (name == "partition_heal") {
    ScenarioPartitionHeal(h);
  } else if (name == "drop10") {
    ScenarioDrop10(h);
  } else if (name == "corrupt_burst") {
    ScenarioCorruptBurst(h);
  } else if (name == "rolling_restart") {
    ScenarioRollingRestart(h);
  } else if (name == "random") {
    ScenarioRandom(h, plan);
  } else {
    h.Violation("unknown scenario: " + name);
  }

  out.recover_ms = h.AwaitProgress(recovery_window_s);
  h.StopLoad();
  h.FinalAudit();

  if (metrics_json != nullptr) {
    // The loops are stopped (FinalAudit): this snapshot is the scenario's final word.
    WriteMetricsJson(metrics_json, h.cluster().metrics(), &h.cluster().tracer());
  }

  out.ops = h.TotalCompleted();
  out.faults = h.cluster().faults().injected_count();
  out.violations = h.violations();
  out.pass = out.violations.empty() && out.recover_ms >= 0.0;
  return out;
}

const char* const kScripted[] = {"primary_crash", "partition_heal", "drop10", "corrupt_burst",
                                 "rolling_restart"};

}  // namespace
}  // namespace bft

int main(int argc, char** argv) {
  using namespace bft;

  if (FlagPresent(argc, argv, "--list")) {
    for (const char* s : kScripted) {
      std::printf("%s\n", s);
    }
    std::printf("random\n");
    return 0;
  }

  const char* scenario = FlagString(argc, argv, "--scenario", "all");
  const char* io_backend = FlagString(argc, argv, "--io-backend", "udp");
  uint64_t seed = FlagValue(argc, argv, "--seed", 2029);
  size_t clients = FlagValue(argc, argv, "--clients", 3);
  bool formation = FlagPresent(argc, argv, "--formation");
  RandomPlan plan;
  plan.seed = seed;
  plan.rounds = static_cast<int>(FlagValue(argc, argv, "--random-rounds", 4));
  double recovery_window_s =
      static_cast<double>(FlagValue(argc, argv, "--recovery-window-s", 15));
  const char* metrics_json = FlagString(argc, argv, "--metrics-json", nullptr);
  uint64_t trace_sample =
      FlagValue(argc, argv, "--trace-sample", metrics_json != nullptr ? 16 : 0);

  RtClusterOptions::TransportKind kind;
  if (std::strcmp(io_backend, "inproc") == 0) {
    kind = RtClusterOptions::TransportKind::kInProc;
  } else if (std::strcmp(io_backend, "uring") == 0) {
    if (!IoUringTransport::Supported()) {
      std::printf("SKIP: io_uring unavailable on this kernel/build\n");
      return 0;
    }
    kind = RtClusterOptions::TransportKind::kUring;
  } else {
    kind = RtClusterOptions::TransportKind::kUdp;
  }

  std::vector<std::string> selected;
  if (std::strcmp(scenario, "all") == 0) {
    selected.assign(std::begin(kScripted), std::end(kScripted));
  } else {
    selected.push_back(scenario);
  }

  std::printf("bft_chaos: backend=%s%s seed=%llu clients=%zu\n", io_backend,
              formation ? "+formation" : "", static_cast<unsigned long long>(seed), clients);
  std::printf("%-17s %-6s %8s %8s %12s\n", "scenario", "result", "ops", "faults",
              "recovery_ms");

  bool all_pass = true;
  for (const std::string& name : selected) {
    // Stop overwriting the snapshot after the first failure: the dump on disk must belong
    // to the failing scenario, not whichever passing scenario ran last.
    Outcome out =
        RunScenario(name, ChaosOptions(kind, formation, seed), clients, recovery_window_s,
                    plan, all_pass ? metrics_json : nullptr, trace_sample);
    all_pass = all_pass && out.pass;
    std::printf("%-17s %-6s %8llu %8llu %12.0f\n", out.name.c_str(),
                out.pass ? "PASS" : "FAIL", static_cast<unsigned long long>(out.ops),
                static_cast<unsigned long long>(out.faults), out.recover_ms);
    for (const std::string& v : out.violations) {
      std::printf("    violation: %s\n", v.c_str());
    }
  }
  std::printf("%s\n", all_pass ? "all scenarios passed: zero safety violations, "
                                 "bounded-time recovery"
                               : "CHAOS FAILURE: see violations above");
  return all_pass ? 0 : 1;
}

// Scratch debugging driver (not registered with ctest).
#include <cstdio>

#include "src/common/logging.h"
#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

using namespace bft;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kDebug);
  ClusterOptions options;
  options.seed = argc > 2 ? static_cast<uint64_t>(atoll(argv[2])) : 1;
  options.config.n = 4;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  Cluster cluster(options, [](NodeId) { return std::make_unique<CounterService>(); });
  if (argc > 1) {
    cluster.net().SetDropProbability(atof(argv[1]));
  }
  Client* client = cluster.AddClient();
  for (uint64_t i = 1; i <= 20; ++i) {
    auto result = cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    if (!result.has_value()) {
      std::printf("op %lu FAILED at sim time %lu ms\n", i, cluster.sim().Now() / kMillisecond);
      for (int r = 0; r < 4; ++r) {
        Replica* rep = cluster.replica(r);
        std::printf(
            "replica %d: view=%lu active=%d last_exec=%lu last_tent=%lu low=%lu vc=%lu\n", r,
            rep->view(), rep->view_active(), rep->last_executed(),
            rep->last_tentative_executed(), rep->low_water(),
            rep->stats().view_changes_started);
      }
      return 1;
    }
    std::printf("op %lu ok -> %lu\n", i, CounterService::DecodeValue(*result));
  }
  std::printf("all ok\n");
  return 0;
}

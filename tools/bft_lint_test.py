#!/usr/bin/env python3
"""Self-tests for tools/bft_lint.py: each rule gets a hit fixture (must be flagged), a clean
fixture (must pass), and a waiver fixture (flagged code + allow() comment must pass). Run
directly or via ctest (bft_lint_selftest)."""

import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bft_lint  # noqa: E402


class LintFixture(unittest.TestCase):
    def setUp(self):
        self.root = tempfile.mkdtemp(prefix="bft_lint_test_")
        for d in ("src/common", "src/core", "src/runtime", "src/sim", "tests"):
            os.makedirs(os.path.join(self.root, d), exist_ok=True)
        # The wrapper header must exist so its own raw tokens are exempt.
        self.write(
            "src/common/thread_annotations.h",
            "#include <mutex>\nnamespace bft { class Mutex {}; }\n",
        )

    def tearDown(self):
        shutil.rmtree(self.root, ignore_errors=True)

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as f:
            f.write(content)
        return path

    def lint_file(self, rel):
        findings = []
        bft_lint.check_file(os.path.join(self.root, rel), rel, findings)
        return findings

    def rules_of(self, findings):
        return [f.rule for f in findings]

    # --- raw-mutex ---------------------------------------------------------------------------

    def test_raw_mutex_hit(self):
        rel = self.write("src/runtime/bad.cc", "#include <mutex>\nstd::mutex mu;\n")
        findings = self.lint_file("src/runtime/bad.cc")
        self.assertIn("raw-mutex", self.rules_of(findings))

    def test_raw_mutex_variants_hit(self):
        body = (
            "void f() {\n"
            "  std::shared_mutex sm;\n"
            "  std::condition_variable cv;\n"
            "  std::lock_guard<std::mutex> g(sm);\n"
            "}\n"
        )
        self.write("src/runtime/bad2.cc", body)
        findings = self.lint_file("src/runtime/bad2.cc")
        self.assertGreaterEqual(self.rules_of(findings).count("raw-mutex"), 3)

    def test_raw_mutex_clean_wrapper_header_exempt(self):
        findings = self.lint_file("src/common/thread_annotations.h")
        self.assertEqual(findings, [])

    def test_raw_mutex_clean_wrapped_types(self):
        self.write("src/runtime/good.cc", "bft::Mutex mu;\nvoid f() { MutexLock lock(mu); }\n")
        self.assertEqual(self.lint_file("src/runtime/good.cc"), [])

    def test_raw_mutex_in_comment_or_string_ignored(self):
        body = '// std::mutex in prose\nconst char* s = "std::mutex";\n'
        self.write("src/runtime/good2.cc", body)
        self.assertEqual(self.lint_file("src/runtime/good2.cc"), [])

    def test_raw_mutex_waiver(self):
        body = "std::mutex mu;  // bft-lint: allow(raw-mutex) interop with external API\n"
        self.write("src/runtime/waived.cc", body)
        self.assertEqual(self.lint_file("src/runtime/waived.cc"), [])

    def test_waiver_without_reason_is_error(self):
        body = "std::mutex mu;  // bft-lint: allow(raw-mutex)\n"
        self.write("src/runtime/waived2.cc", body)
        self.assertIn("waiver", self.rules_of(self.lint_file("src/runtime/waived2.cc")))

    # --- blocking-under-lock -----------------------------------------------------------------

    def test_blocking_under_lock_hit(self):
        body = (
            "void Park() {\n"
            "  ReaderMutexLock lock(mu_);\n"
            "  io_uring_enter(fd, 1, 0, 0);\n"
            "}\n"
        )
        self.write("src/runtime/park_bad.cc", body)
        findings = self.lint_file("src/runtime/park_bad.cc")
        self.assertIn("blocking-under-lock", self.rules_of(findings))

    def test_blocking_after_unlock_clean(self):
        body = (
            "void Park() {\n"
            "  ReaderMutexLock lock(mu_);\n"
            "  lock.Unlock();\n"
            "  io_uring_enter(fd, 1, 0, 0);\n"
            "}\n"
        )
        self.write("src/runtime/park_good.cc", body)
        self.assertEqual(self.lint_file("src/runtime/park_good.cc"), [])

    def test_blocking_after_scope_exit_clean(self):
        body = (
            "void f() {\n"
            "  {\n"
            "    MutexLock lock(mu_);\n"
            "    x = 1;\n"
            "  }\n"
            "  ppoll(fds, nfds, nullptr, nullptr);\n"
            "}\n"
        )
        self.write("src/runtime/scope_good.cc", body)
        self.assertEqual(self.lint_file("src/runtime/scope_good.cc"), [])

    def test_branch_toggle_does_not_leak(self):
        # A re-lock inside a branch that exits (continue) must not mark the fallthrough
        # path as locked — the rt_node Loop shape.
        body = (
            "void Loop() {\n"
            "  MutexLock lock(mu_);\n"
            "  while (true) {\n"
            "    lock.Unlock();\n"
            "    if (parked >= 0) {\n"
            "      lock.Lock();\n"
            "      continue;\n"
            "    }\n"
            "    ppoll(fds, nfds, nullptr, nullptr);\n"
            "    lock.Lock();\n"
            "  }\n"
            "}\n"
        )
        self.write("src/runtime/loop_good.cc", body)
        self.assertEqual(self.lint_file("src/runtime/loop_good.cc"), [])

    def test_relock_then_blocking_hit(self):
        body = (
            "void f() {\n"
            "  MutexLock lock(mu_);\n"
            "  lock.Unlock();\n"
            "  work();\n"
            "  lock.Lock();\n"
            "  recvmmsg(fd, msgs, n, 0, nullptr);\n"
            "}\n"
        )
        self.write("src/runtime/relock_bad.cc", body)
        self.assertIn("blocking-under-lock", self.rules_of(self.lint_file("src/runtime/relock_bad.cc")))

    def test_nonblocking_recvmmsg_clean(self):
        body = (
            "void Drain() {\n"
            "  ReaderMutexLock lock(mu_);\n"
            "  recvmmsg(fd, msgs, n, MSG_DONTWAIT, nullptr);\n"
            "}\n"
        )
        self.write("src/runtime/drain_good.cc", body)
        self.assertEqual(self.lint_file("src/runtime/drain_good.cc"), [])

    def test_condvar_wait_on_held_mutex_clean(self):
        body = (
            "void f() {\n"
            "  MutexLock lock(delay_mu_);\n"
            "  delay_cv_.WaitUntil(delay_mu_, due);\n"
            "}\n"
        )
        self.write("src/runtime/cv_good.cc", body)
        self.assertEqual(self.lint_file("src/runtime/cv_good.cc"), [])

    def test_condvar_wait_on_other_mutex_hit(self):
        body = (
            "void f() {\n"
            "  MutexLock lock(mu_);\n"
            "  other_cv_.Wait(other_mu_);\n"
            "}\n"
        )
        self.write("src/runtime/cv_bad.cc", body)
        self.assertIn("blocking-under-lock", self.rules_of(self.lint_file("src/runtime/cv_bad.cc")))

    def test_join_under_lock_hit(self):
        body = (
            "void f() {\n"
            "  MutexLock lock(delay_mu_);\n"
            "  delay_thread_.join();\n"
            "}\n"
        )
        self.write("src/runtime/join_bad.cc", body)
        self.assertIn("blocking-under-lock", self.rules_of(self.lint_file("src/runtime/join_bad.cc")))

    def test_blocking_waiver(self):
        body = (
            "void Drain() {\n"
            "  ReaderMutexLock lock(mu_);\n"
            "  // bft-lint: allow(blocking-under-lock) wait bounded by kernel timeout\n"
            "  ppoll(fds, nfds, &ts, nullptr);\n"
            "}\n"
        )
        self.write("src/runtime/waived3.cc", body)
        self.assertEqual(self.lint_file("src/runtime/waived3.cc"), [])

    # --- layering ----------------------------------------------------------------------------

    def test_layering_hit(self):
        self.write("src/core/bad_core.h", '#include "src/runtime/rt_node.h"\n')
        self.assertIn("layering", self.rules_of(self.lint_file("src/core/bad_core.h")))

    def test_layering_sim_hit(self):
        self.write("src/core/bad_core2.h", '#include "src/sim/sim_network.h"\n')
        self.assertIn("layering", self.rules_of(self.lint_file("src/core/bad_core2.h")))

    def test_layering_clean(self):
        self.write("src/core/good_core.h", '#include "src/common/bytes.h"\n')
        self.assertEqual(self.lint_file("src/core/good_core.h"), [])

    def test_layering_outside_core_clean(self):
        # src/shard -> src/sim is legitimate; only src/core is fenced.
        self.write("src/runtime/uses_sim.h", '#include "src/sim/sim_network.h"\n')
        self.assertEqual(self.lint_file("src/runtime/uses_sim.h"), [])

    # --- msgtype-trait -----------------------------------------------------------------------

    def test_msgtype_trait_hit(self):
        self.write(
            "src/core/messages.h",
            "enum class MsgType : uint8_t {\n  kRequest = 1,\n  kPrepare = 2,\n};\n"
            "template <> struct MsgTypeTrait<RequestMsg> {"
            " static constexpr MsgType value = MsgType::kRequest; };\n",
        )
        findings = []
        bft_lint.check_msgtype_traits(self.root, findings)
        self.assertEqual([f.rule for f in findings], ["msgtype-trait"])
        self.assertIn("kPrepare", findings[0].message)

    def test_msgtype_trait_clean(self):
        self.write(
            "src/core/messages.h",
            "enum class MsgType : uint8_t {\n  kRequest = 1,\n};\n"
            "template <> struct MsgTypeTrait<RequestMsg> {"
            " static constexpr MsgType value = MsgType::kRequest; };\n",
        )
        findings = []
        bft_lint.check_msgtype_traits(self.root, findings)
        self.assertEqual(findings, [])

    # --- single-issuer -----------------------------------------------------------------------

    def test_single_issuer_hit(self):
        body = (
            "// bft-lint: delayed-delivery-context\n"
            "void DelayLoop() {\n"
            "  inner_->Send(src, dst, std::move(m));\n"
            "}\n"
        )
        self.write("src/runtime/delay_bad.cc", body)
        self.assertIn("single-issuer", self.rules_of(self.lint_file("src/runtime/delay_bad.cc")))

    def test_single_issuer_sink_clean(self):
        body = (
            "// bft-lint: delayed-delivery-context\n"
            "void DeliverDirect() {\n"
            "  it->second->EnqueueMessage(std::move(m));\n"
            "}\n"
        )
        self.write("src/runtime/delay_good.cc", body)
        self.assertEqual(self.lint_file("src/runtime/delay_good.cc"), [])

    def test_single_issuer_scope_ends(self):
        body = (
            "// bft-lint: delayed-delivery-context\n"
            "void DelayLoop() {\n"
            "  work();\n"
            "}\n"
            "void NormalPath() {\n"
            "  inner_->Send(src, dst, std::move(m));\n"
            "}\n"
        )
        self.write("src/runtime/delay_scope.cc", body)
        self.assertEqual(self.lint_file("src/runtime/delay_scope.cc"), [])

    # --- whole-repo run ----------------------------------------------------------------------

    def test_real_repo_is_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(bft_lint.__file__)))
        rc = bft_lint.main(["--root", repo])
        self.assertEqual(rc, 0, "bft_lint must be clean on the repository itself")


if __name__ == "__main__":
    unittest.main()

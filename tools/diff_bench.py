#!/usr/bin/env python3
"""Compare two bench-results/ directories and flag metric regressions beyond noise.

Usage: tools/diff_bench.py BASELINE_DIR CURRENT_DIR [--threshold 0.10] [--fail-on-regress]

Each directory holds BENCH_<name>.json files as written by tools/collect_bench.sh: a JSON
array of {"bench", "name", "config", "metrics"} rows. Rows are matched by (bench, name);
metrics are compared by key. A change beyond --threshold (relative) in the *bad* direction
for that metric is a regression; in the good direction, an improvement. Metrics whose good
direction is unknown are reported as neutral changes, never regressions.

Exit code is 0 unless --fail-on-regress is given and regressions were found — the CI bench
job runs it without the flag as a non-fatal report (shared-runner numbers are noisy; the
trend, not the gate, is the point).
"""

import argparse
import json
import sys
from pathlib import Path

# Substring heuristics for a metric's good direction. Checked in order; first hit wins.
LOWER_IS_BETTER = ("latency", "_us", "_ms", "dip", "window", "duration", "bytes_per_op")
HIGHER_IS_BETTER = ("ops_per_s", "per_sec", "throughput", "speedup", "ops_completed",
                    "macs_per_s", "digests_per_s")


def direction(metric):
    name = metric.lower()
    for pat in LOWER_IS_BETTER:
        if pat in name:
            return -1
    for pat in HIGHER_IS_BETTER:
        if pat in name:
            return +1
    return 0  # unknown: report, never flag


def load_dir(path):
    rows = {}
    for f in sorted(Path(path).glob("BENCH_*.json")):
        try:
            data = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            print(f"diff_bench: skipping unparseable {f}: {e}", file=sys.stderr)
            continue
        for row in data:
            rows[(row.get("bench", f.stem), row.get("name", "?"))] = row.get("metrics", {})
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative change considered beyond noise (default 0.10 = 10%%)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 if any regression is flagged")
    args = ap.parse_args()

    base = load_dir(args.baseline)
    curr = load_dir(args.current)
    if not base or not curr:
        print(f"diff_bench: nothing to compare (baseline: {len(base)} rows, "
              f"current: {len(curr)} rows)")
        return 0

    regressions, improvements, neutral = [], [], []
    for key in sorted(set(base) & set(curr)):
        bench, name = key
        for metric in sorted(set(base[key]) & set(curr[key])):
            b, c = base[key][metric], curr[key][metric]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)) or b == 0:
                continue
            rel = (c - b) / abs(b)
            if abs(rel) <= args.threshold:
                continue
            line = f"{bench}/{name} {metric}: {b:.6g} -> {c:.6g} ({rel:+.1%})"
            d = direction(metric)
            if d == 0:
                neutral.append(line)
            elif rel * d < 0:
                regressions.append(line)
            else:
                improvements.append(line)

    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))

    print(f"diff_bench: {len(set(base) & set(curr))} comparable rows, "
          f"threshold {args.threshold:.0%}")
    for title, lines in (("REGRESSIONS", regressions), ("improvements", improvements),
                         ("other changes", neutral)):
        if lines:
            print(f"\n{title} ({len(lines)}):")
            for line in lines:
                print(f"  {line}")
    if only_base:
        print(f"\nrows only in baseline ({len(only_base)}): " +
              ", ".join("/".join(k) for k in only_base))
    if only_curr:
        print(f"\nrows only in current ({len(only_curr)}): " +
              ", ".join("/".join(k) for k in only_curr))
    if not (regressions or improvements or neutral):
        print("no metric moved beyond the noise threshold")

    if regressions and args.fail_on_regress:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare two bench-results/ directories and flag metric regressions beyond noise.

Usage: tools/diff_bench.py BASELINE_DIR CURRENT_DIR [--threshold 0.10]
                           [--fail-on-regress] [--only REGEX]

Each directory holds BENCH_<name>.json files as written by tools/collect_bench.sh: a JSON
array of {"bench", "name", "config", "metrics"} rows. Rows are matched by (bench, name,
config): the config dict is part of the identity, so a row whose configuration changed
(different shard count, bucket entry count, client count, ...) is reported as added/removed
instead of silently compared against a different experiment — like-for-like only. Metrics
are compared by key; a change beyond --threshold (relative) in the *bad* direction for that
metric is a regression; in the good direction, an improvement. Metrics whose good direction
is unknown are reported as neutral changes, never regressions.

--only restricts the comparison to benches whose name matches the regex. CI uses this to
run the deterministic simulated-time benches (bench_sharding, bench_migration,
bench_rebalance) as a *fatal* gate — their metrics are a pure function of the seed, so any
move beyond float noise is a real behavior change — while the wall-clock benches stay a
non-fatal report (shared-runner numbers are noisy; the trend, not the gate, is the point).

Exit code is 0 unless --fail-on-regress is given and regressions were found.
"""

import argparse
import json
import re
import sys
from pathlib import Path

# Substring heuristics for a metric's good direction. Checked in order; first hit wins.
LOWER_IS_BETTER = ("latency", "_us", "_ms", "dip", "window", "duration", "bytes_per_op",
                   "freeze")
HIGHER_IS_BETTER = ("ops_per_s", "per_sec", "throughput", "speedup", "ops_completed",
                    "macs_per_s", "digests_per_s")


def direction(metric):
    name = metric.lower()
    for pat in LOWER_IS_BETTER:
        if pat in name:
            return -1
    for pat in HIGHER_IS_BETTER:
        if pat in name:
            return +1
    return 0  # unknown: report, never flag


def row_key(row, stem):
    """Identity of one result row: bench, name, and the frozen config dict."""
    config = row.get("config", {})
    frozen = tuple(sorted((str(k), str(v)) for k, v in config.items()))
    return (row.get("bench", stem), row.get("name", "?"), frozen)


def key_label(key):
    bench, name, frozen = key
    return f"{bench}/{name}"


def load_dir(path, only):
    rows = {}
    for f in sorted(Path(path).glob("BENCH_*.json")):
        try:
            data = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            print(f"diff_bench: skipping unparseable {f}: {e}", file=sys.stderr)
            continue
        for row in data:
            key = row_key(row, f.stem)
            if only and not only.search(key[0]):
                continue
            rows[key] = row.get("metrics", {})
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative change considered beyond noise (default 0.10 = 10%%)")
    ap.add_argument("--fail-on-regress", action="store_true",
                    help="exit 1 if any regression is flagged")
    ap.add_argument("--only", metavar="REGEX", default=None,
                    help="compare only benches whose name matches this regex")
    args = ap.parse_args()

    only = re.compile(args.only) if args.only else None
    base = load_dir(args.baseline, only)
    curr = load_dir(args.current, only)
    if not base or not curr:
        print(f"diff_bench: nothing to compare (baseline: {len(base)} rows, "
              f"current: {len(curr)} rows)")
        return 0

    regressions, improvements, neutral = [], [], []
    for key in sorted(set(base) & set(curr)):
        for metric in sorted(set(base[key]) & set(curr[key])):
            b, c = base[key][metric], curr[key][metric]
            if not isinstance(b, (int, float)) or not isinstance(c, (int, float)) or b == 0:
                continue
            rel = (c - b) / abs(b)
            if abs(rel) <= args.threshold:
                continue
            line = f"{key_label(key)} {metric}: {b:.6g} -> {c:.6g} ({rel:+.1%})"
            d = direction(metric)
            if d == 0:
                neutral.append(line)
            elif rel * d < 0:
                regressions.append(line)
            else:
                improvements.append(line)

    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))

    print(f"diff_bench: {len(set(base) & set(curr))} comparable rows, "
          f"threshold {args.threshold:.0%}" +
          (f", only '{args.only}'" if args.only else ""))
    for title, lines in (("REGRESSIONS", regressions), ("improvements", improvements),
                         ("other changes", neutral)):
        if lines:
            print(f"\n{title} ({len(lines)}):")
            for line in lines:
                print(f"  {line}")
    if only_base:
        print(f"\nrows only in baseline (removed or config changed) ({len(only_base)}): " +
              ", ".join(key_label(k) for k in only_base))
    if only_curr:
        print(f"\nrows only in current (new or config changed) ({len(only_curr)}): " +
              ", ".join(key_label(k) for k in only_curr))
    if not (regressions or improvements or neutral):
        print("no metric moved beyond the noise threshold")

    if args.fail_on_regress:
        # A changed row set must not pass the gate vacuously: renaming a row or changing its
        # config removes it from the compared set, which would otherwise let exactly the
        # kind of change the gate exists for (a regression hidden behind a config tweak)
        # slip through. Failing here is a one-run cost — the saved baseline refreshes and
        # the next run compares the new rows like-for-like.
        if only_base or only_curr:
            print("\ngate: row set changed (see added/removed above) — failing under "
                  "--fail-on-regress; the refreshed baseline makes the next run comparable")
            return 1
        if regressions:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Scratch driver: n=7 with 3 mutes then one unmute (not registered with ctest).
#include <cstdio>

#include "src/common/logging.h"
#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

using namespace bft;

int main() {
  ClusterOptions options;
  options.seed = 30;
  options.config.n = 7;
  options.config.checkpoint_period = 8;
  options.config.log_size = 16;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  Cluster cluster(options, [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();
  cluster.Execute(client, CounterService::IncOp());

  cluster.replica(1)->SetMute(true);
  cluster.replica(2)->SetMute(true);
  cluster.replica(3)->SetMute(true);
  bool done = false;
  client->Invoke(CounterService::IncOp(), false, [&done](Bytes) { done = true; });
  cluster.sim().RunFor(5 * kSecond);
  std::printf("after blackout: done=%d\n", done);
  cluster.replica(3)->SetMute(false);
  for (int tick = 0; tick < 24 && !done; ++tick) {
    cluster.sim().RunFor(10 * kSecond);
    std::printf("t=%3lus done=%d | ", cluster.sim().Now() / kSecond, done);
    for (int r = 0; r < 7; ++r) {
      Replica* rep = cluster.replica(r);
      std::printf("r%d:v%lu%c ", r, rep->view(), rep->view_active() ? 'A' : 'p');
    }
    std::printf("\n");
  }
  return 0;
}

// Stands up a real-clock BFT cluster in one process: 3f+1 replicas (default 4) running the
// replicated key-value service, each on its own event-loop thread behind loopback UDP
// sockets, plus closed-loop clients issuing PUT/GET pairs. The smallest end-to-end proof
// that the protocol core runs outside the simulator — real sockets, real clock, real threads.
//
// Usage: bft_node [--replicas N] [--clients C] [--ops K] [--transport udp|inproc] [--seed S]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/runtime/rt_cluster.h"
#include "src/service/kv_service.h"

namespace {

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

const char* FlagString(int argc, char** argv, const char* name, const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) {
      return argv[i + 1];
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bft;

  RtClusterOptions options;
  options.config.n = static_cast<int>(FlagValue(argc, argv, "--replicas", 4));
  if (options.config.n < 1) {
    std::fprintf(stderr, "bft_node: --replicas must be a positive integer\n");
    return 2;
  }
  options.config.state_pages = 64;
  options.seed = FlagValue(argc, argv, "--seed", 42);
  const char* transport = FlagString(argc, argv, "--transport", "udp");
  options.transport = std::strcmp(transport, "inproc") == 0
                          ? RtClusterOptions::TransportKind::kInProc
                          : RtClusterOptions::TransportKind::kUdp;
  size_t num_clients = FlagValue(argc, argv, "--clients", 1);
  if (num_clients == 0) {
    num_clients = 1;  // --clients 0 (or unparsable) would divide by zero below
  }
  uint64_t ops = FlagValue(argc, argv, "--ops", 100);

  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  std::vector<Client*> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.push_back(cluster.AddClient());
  }
  cluster.Start();

  if (auto* udp = dynamic_cast<UdpTransport*>(&cluster.transport())) {
    std::printf("%d replicas on loopback UDP ports:", options.config.n);
    for (int i = 0; i < options.config.n; ++i) {
      std::printf(" %u:%u", options.config.ReplicaId(i),
                  udp->PortOf(options.config.ReplicaId(i)));
    }
    std::printf("\n");
  } else {
    std::printf("%d replicas on the in-process channel\n", options.config.n);
  }

  auto start = std::chrono::steady_clock::now();
  uint64_t committed = 0;
  uint64_t failures = 0;
  // A timed-out Execute leaves its request in flight, and Invoke allows only one outstanding
  // op per client — a client that ever times out is retired. Tracked here on the harness
  // thread; Client state itself is only touched on its own loop thread.
  std::vector<bool> retired(clients.size(), false);
  for (uint64_t i = 0; i < ops; ++i) {
    size_t c = i % clients.size();
    Client* client = clients[c];
    if (retired[c]) {
      ++failures;
      continue;
    }
    std::string key = "key-" + std::to_string(i % 64);
    std::string value = "value-" + std::to_string(i);
    std::optional<Bytes> put =
        cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes(value)));
    if (!put.has_value()) {
      retired[c] = true;
      ++failures;
      continue;
    }
    std::optional<Bytes> got =
        cluster.Execute(client, KvService::GetOp(ToBytes(key)), /*read_only=*/true);
    if (!got.has_value()) {
      retired[c] = true;
      ++failures;
      continue;
    }
    if (ToString(*got) == value) {
      ++committed;
    } else {
      ++failures;
    }
  }
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  cluster.Stop();

  std::printf("%llu/%llu PUT+GET pairs committed in %.3f s (%.0f certified ops/s)\n",
              static_cast<unsigned long long>(committed), static_cast<unsigned long long>(ops),
              elapsed, elapsed > 0 ? 2.0 * static_cast<double>(committed) / elapsed : 0.0);
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    Replica* r = cluster.replica(i);
    std::printf("  replica %u: executed=%llu batches=%llu checkpoints=%llu view=%llu "
                "cpu_busy=%.1f ms\n",
                r->id(), static_cast<unsigned long long>(r->stats().requests_executed),
                static_cast<unsigned long long>(r->stats().batches_executed),
                static_cast<unsigned long long>(r->stats().checkpoints_taken),
                static_cast<unsigned long long>(r->view()),
                static_cast<double>(r->cpu().total_busy()) / kMillisecond);
  }
  return failures == 0 ? 0 : 1;
}

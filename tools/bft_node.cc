// Stands up a real-clock BFT cluster in one process: 3f+1 replicas (default 4) running the
// replicated key-value service, each on its own event-loop thread behind loopback UDP
// sockets, plus closed-loop clients issuing PUT/GET pairs. The smallest end-to-end proof
// that the protocol core runs outside the simulator — real sockets, real clock, real threads.
//
// Usage: bft_node [--replicas N] [--clients C] [--ops K] [--transport udp|inproc] [--seed S]
//                 [--io-backend udp|uring] [--formation] [--admin-port P] [--trace-sample N]
//                 [--slow-ms M] [--metrics-json PATH]
//                 [--fault-drop P] [--fault-delay-us N] [--fault-seed S] [--partition IDS]
//                 [--crash-replica I] [--crash-at-op K] [--restart-at-op J]
//
// Fault injection (the FaultTransport control API, process-level chaos without bft_chaos):
//   --fault-drop P      drop each datagram with probability P on every link
//   --fault-delay-us N  add N microseconds of one-way latency to every datagram
//   --fault-seed S      seed for the deterministic fault schedule (default: derived from --seed)
//   --partition IDS     comma-separated node ids cut off (both directions) from the rest,
//                       e.g. --partition 0 isolates the view-0 primary until view change
//   --crash-replica I   with --crash-at-op K / --restart-at-op J: fail-stop replica I before
//                       op K, restart it (empty state, rejoins via state transfer) before op J
//
// Transport selection:
//   --io-backend udp|uring  socket backend for --transport udp (default udp). `uring` stages
//                           sends on a per-node io_uring and submits them in one syscall per
//                           loop iteration; falls back to plain UDP sockets (with a warning)
//                           when the kernel or build lacks io_uring support.
//   --formation             coalesce same-destination protocol messages into one framed
//                           datagram per event-loop iteration (idle loops flush immediately).
//
// Observability:
//   --admin-port P     serve GET /metrics (Prometheus text), /metrics.json, /traces, and
//                      /healthz (per-replica view/checkpoint/transfer state + ok|degraded
//                      verdict) on loopback TCP port P while the workload runs (0 =
//                      kernel-assigned; the bound port is printed at startup).
//   --trace-sample N   stamp every Nth request's phase timeline (1 = all, 0 = off).
//   --slow-ms M        log a traced request slower than M ms end-to-end.
//   --metrics-json F   write the final metrics+traces JSON dump to F on exit.
//   SIGUSR1            snapshot on demand: the next loop iteration dumps to --metrics-json
//                      (when given) and prints the Prometheus text to stderr.
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/export.h"
#include "src/runtime/rt_cluster.h"
#include "src/service/kv_service.h"

namespace {

volatile std::sig_atomic_t g_dump_requested = 0;
void OnSigUsr1(int) { g_dump_requested = 1; }

// Flags accept both spellings: `--name value` and `--name=value`.
const char* FlagString(int argc, char** argv, const char* name, const char* fallback) {
  size_t name_len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], name, name_len) == 0 && argv[i][name_len] == '=') {
      return argv[i] + name_len + 1;
    }
  }
  return fallback;
}

uint64_t FlagValue(int argc, char** argv, const char* name, uint64_t fallback) {
  const char* s = FlagString(argc, argv, name, nullptr);
  return s != nullptr ? std::strtoull(s, nullptr, 10) : fallback;
}

double FlagDouble(int argc, char** argv, const char* name, double fallback) {
  const char* s = FlagString(argc, argv, name, nullptr);
  return s != nullptr ? std::strtod(s, nullptr) : fallback;
}

std::vector<bft::NodeId> ParseIdList(const char* csv) {
  std::vector<bft::NodeId> ids;
  for (const char* p = csv; *p != '\0';) {
    char* end = nullptr;
    ids.push_back(static_cast<bft::NodeId>(std::strtoul(p, &end, 10)));
    p = (end != nullptr && *end == ',') ? end + 1 : (end != nullptr ? end : p + std::strlen(p));
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bft;

  RtClusterOptions options;
  options.config.n = static_cast<int>(FlagValue(argc, argv, "--replicas", 4));
  if (options.config.n < 1) {
    std::fprintf(stderr, "bft_node: --replicas must be a positive integer\n");
    return 2;
  }
  options.config.state_pages = 64;
  options.seed = FlagValue(argc, argv, "--seed", 42);
  options.fault_seed = FlagValue(argc, argv, "--fault-seed", 0);
  const char* transport = FlagString(argc, argv, "--transport", "udp");
  const char* io_backend = FlagString(argc, argv, "--io-backend", "udp");
  if (std::strcmp(transport, "inproc") == 0) {
    options.transport = RtClusterOptions::TransportKind::kInProc;
  } else if (std::strcmp(io_backend, "uring") == 0) {
    options.transport = RtClusterOptions::TransportKind::kUring;
  } else {
    options.transport = RtClusterOptions::TransportKind::kUdp;
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--formation") == 0) {
      options.formation = true;
    }
  }
  size_t num_clients = FlagValue(argc, argv, "--clients", 1);
  if (num_clients == 0) {
    num_clients = 1;  // --clients 0 (or unparsable) would divide by zero below
  }
  uint64_t ops = FlagValue(argc, argv, "--ops", 100);
  uint64_t trace_sample = FlagValue(argc, argv, "--trace-sample", 0);
  uint64_t slow_ms = FlagValue(argc, argv, "--slow-ms", 0);
  const char* metrics_json = FlagString(argc, argv, "--metrics-json", "");
  bool serve_admin = false;
  uint64_t admin_port = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--admin-port") == 0) {
      serve_admin = true;
      admin_port = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  double fault_drop = FlagDouble(argc, argv, "--fault-drop", 0.0);
  uint64_t fault_delay_us = FlagValue(argc, argv, "--fault-delay-us", 0);
  const char* partition_csv = FlagString(argc, argv, "--partition", "");
  uint64_t crash_replica = FlagValue(argc, argv, "--crash-replica", UINT64_MAX);
  uint64_t crash_at_op = FlagValue(argc, argv, "--crash-at-op", 0);
  uint64_t restart_at_op = FlagValue(argc, argv, "--restart-at-op", 0);
  if (crash_replica != UINT64_MAX &&
      crash_replica >= static_cast<uint64_t>(options.config.n)) {
    std::fprintf(stderr, "bft_node: --crash-replica must name a replica index < %d\n",
                 options.config.n);
    return 2;
  }

  RtCluster cluster(options, [](NodeId) { return std::make_unique<KvService>(); });
  if (fault_drop > 0.0 || fault_delay_us > 0) {
    FaultSpec spec;
    spec.drop = fault_drop;
    spec.delay = static_cast<SimTime>(fault_delay_us) * kMicrosecond;
    cluster.faults().SetDefaultFaults(spec);
    std::printf("fault injection armed: drop=%.3f delay=%lluus\n", fault_drop,
                static_cast<unsigned long long>(fault_delay_us));
  }
  if (partition_csv[0] != '\0') {
    std::vector<NodeId> group = ParseIdList(partition_csv);
    cluster.faults().Partition(group);
    std::printf("partition armed: %zu node(s) cut from the rest\n", group.size());
  }
  cluster.tracer().set_sample_every(static_cast<uint32_t>(trace_sample));
  if (slow_ms > 0) {
    cluster.tracer().set_slow_threshold(static_cast<SimTime>(slow_ms) * kMillisecond);
  }
  std::vector<Client*> clients;
  for (size_t c = 0; c < num_clients; ++c) {
    clients.push_back(cluster.AddClient());
  }
  cluster.Start();

  AdminServer admin(&cluster.metrics(), &cluster.tracer());
  admin.SetHealthSource([&cluster]() { return cluster.Health(); });
  if (serve_admin) {
    if (!admin.Listen(static_cast<uint16_t>(admin_port))) {
      std::fprintf(stderr, "bft_node: failed to bind admin port %llu\n",
                   static_cast<unsigned long long>(admin_port));
      return 2;
    }
    std::printf("admin server on 127.0.0.1:%u (GET /metrics, /metrics.json, /traces, /healthz)\n",
                admin.port());
  }
  std::signal(SIGUSR1, OnSigUsr1);

  // Formation and fault layers are decorators; the socket backend (and its ports) is at the
  // bottom of the stack: [Formation ->] Fault -> sockets.
  Transport* backend = &cluster.transport();
  const char* formed = "";
  if (auto* formation = dynamic_cast<FormationTransport*>(backend)) {
    backend = formation->inner();
    formed = " (formation on)";
  }
  if (auto* fault = dynamic_cast<FaultTransport*>(backend)) {
    backend = fault->inner();
  }
  if (auto* udp = dynamic_cast<UdpTransport*>(backend)) {
    std::printf("%d replicas on loopback UDP ports%s:", options.config.n, formed);
    for (int i = 0; i < options.config.n; ++i) {
      std::printf(" %u:%u", options.config.ReplicaId(i),
                  udp->PortOf(options.config.ReplicaId(i)));
    }
    std::printf("\n");
  } else if (auto* uring = dynamic_cast<IoUringTransport*>(backend)) {
    std::printf("%d replicas on io_uring loopback ports%s:", options.config.n, formed);
    for (int i = 0; i < options.config.n; ++i) {
      std::printf(" %u:%u", options.config.ReplicaId(i),
                  uring->PortOf(options.config.ReplicaId(i)));
    }
    std::printf("\n");
  } else {
    std::printf("%d replicas on the in-process channel%s\n", options.config.n, formed);
  }

  auto start = std::chrono::steady_clock::now();
  uint64_t committed = 0;
  uint64_t failures = 0;
  // A timed-out Execute leaves its request in flight, and Invoke allows only one outstanding
  // op per client — a client that ever times out is retired. Tracked here on the harness
  // thread; Client state itself is only touched on its own loop thread.
  std::vector<bool> retired(clients.size(), false);
  for (uint64_t i = 0; i < ops; ++i) {
    if (g_dump_requested != 0) {
      g_dump_requested = 0;
      if (metrics_json[0] != '\0') {
        WriteMetricsJson(metrics_json, cluster.metrics(), &cluster.tracer());
      }
      std::fputs(cluster.metrics().RenderPrometheusText().c_str(), stderr);
    }
    if (crash_replica != UINT64_MAX) {
      if (i == crash_at_op) {
        std::printf("crashing replica %llu at op %llu\n",
                    static_cast<unsigned long long>(crash_replica),
                    static_cast<unsigned long long>(i));
        cluster.CrashReplica(static_cast<int>(crash_replica));
      }
      if (restart_at_op > crash_at_op && i == restart_at_op) {
        std::printf("restarting replica %llu at op %llu\n",
                    static_cast<unsigned long long>(crash_replica),
                    static_cast<unsigned long long>(i));
        cluster.RestartReplica(static_cast<int>(crash_replica));
      }
    }
    size_t c = i % clients.size();
    Client* client = clients[c];
    if (retired[c]) {
      ++failures;
      continue;
    }
    std::string key = "key-" + std::to_string(i % 64);
    std::string value = "value-" + std::to_string(i);
    std::optional<Bytes> put =
        cluster.Execute(client, KvService::PutOp(ToBytes(key), ToBytes(value)));
    if (!put.has_value()) {
      retired[c] = true;
      ++failures;
      continue;
    }
    std::optional<Bytes> got =
        cluster.Execute(client, KvService::GetOp(ToBytes(key)), /*read_only=*/true);
    if (!got.has_value()) {
      retired[c] = true;
      ++failures;
      continue;
    }
    if (ToString(*got) == value) {
      ++committed;
    } else {
      ++failures;
    }
  }
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  admin.Stop();
  cluster.Stop();
  if (metrics_json[0] != '\0') {
    WriteMetricsJson(metrics_json, cluster.metrics(), &cluster.tracer());
  }

  std::printf("%llu/%llu PUT+GET pairs committed in %.3f s (%.0f certified ops/s)\n",
              static_cast<unsigned long long>(committed), static_cast<unsigned long long>(ops),
              elapsed, elapsed > 0 ? 2.0 * static_cast<double>(committed) / elapsed : 0.0);
  if (cluster.faults().injected_count() > 0) {
    std::printf("  faults injected: %llu (bft_fault_injected_total by kind in /metrics)\n",
                static_cast<unsigned long long>(cluster.faults().injected_count()));
  }
  for (int i = 0; i < cluster.num_replicas(); ++i) {
    Replica* r = cluster.replica(i);
    if (r == nullptr) {
      std::printf("  replica %u: crashed (never restarted)\n", options.config.ReplicaId(i));
      continue;
    }
    std::printf("  replica %u: executed=%llu batches=%llu checkpoints=%llu view=%llu "
                "cpu_busy=%.1f ms\n",
                r->id(), static_cast<unsigned long long>(r->stats().requests_executed),
                static_cast<unsigned long long>(r->stats().batches_executed),
                static_cast<unsigned long long>(r->stats().checkpoints_taken),
                static_cast<unsigned long long>(r->view()),
                static_cast<double>(r->cpu().total_busy()) / kMillisecond);
    std::printf("    mac-cache: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(r->auth().mac_cache_hits()),
                static_cast<unsigned long long>(r->auth().mac_cache_misses()));
  }
  if (trace_sample > 0) {
    std::printf("  traced: %llu certified timelines, %llu slow\n",
                static_cast<unsigned long long>(cluster.tracer().completed_count()),
                static_cast<unsigned long long>(cluster.tracer().slow_count()));
  }
  return failures == 0 ? 0 : 1;
}

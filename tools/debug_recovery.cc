// Scratch debugging driver for recovery (not registered with ctest).
#include <cstdio>

#include "src/common/logging.h"
#include "src/service/counter_service.h"
#include "src/workload/cluster.h"

using namespace bft;

int main() {
  SetLogLevel(LogLevel::kDebug);
  ClusterOptions options;
  options.seed = 31;
  options.config.n = 4;
  options.config.checkpoint_period = 4;
  options.config.log_size = 8;
  options.config.state_pages = 16;
  options.config.partition_branching = 4;
  options.config.proactive_recovery = false;
  Cluster cluster(options, [](NodeId) { return std::make_unique<CounterService>(); });
  Client* client = cluster.AddClient();

  // Mirror StateTransferTest.LaggingReplicaCatchesUpViaTransfer.
  cluster.net().SetNodeDown(3, true);
  for (int i = 0; i < 30; ++i) {
    auto r = cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    if (!r.has_value()) {
      std::printf("warm op %d failed\n", i);
    }
  }
  cluster.sim().RunFor(kSecond);
  cluster.net().SetNodeDown(3, false);
  for (int i = 0; i < 8; ++i) {
    auto r = cluster.Execute(client, CounterService::IncOp(), false, 60 * kSecond);
    if (!r.has_value()) {
      std::printf("post op %d failed\n", i);
    }
  }
  SeqNo target = cluster.replica(0)->last_executed();
  bool ok = cluster.sim().RunUntilCondition(
      [&cluster, target]() { return cluster.replica(3)->last_executed() >= target; },
      cluster.sim().Now() + 120 * kSecond);
  Replica* rep = cluster.replica(3);
  std::printf("ok=%d target=%lu low=%lu last_exec=%lu view=%lu transfers=%lu pages=%lu\n", ok,
              target, rep->low_water(), rep->last_executed(), rep->view(),
              rep->stats().state_transfers, rep->stats().pages_fetched);
  return 0;
}

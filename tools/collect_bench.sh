#!/usr/bin/env bash
# Runs every bench binary with --json and collects the per-bench result files
# (BENCH_<name>.json) into one directory — the per-commit perf trajectory the ROADMAP asks
# for. CI runs this with a filter and uploads the directory as an artifact; locally, run it
# without arguments after a build to snapshot the whole suite.
#
# Usage: tools/collect_bench.sh [--build-dir build] [--out-dir bench-results]
#                               [--filter regex] [--quick]
#
#   --filter  only run benches whose name matches the (grep -E) regex
#   --quick   pass short-duration flags to the wall-clock benches (CI smoke)
set -euo pipefail

BUILD_DIR=build
OUT_DIR=bench-results
FILTER=""
QUICK=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out-dir)   OUT_DIR="$2"; shift 2 ;;
    --filter)    FILTER="$2"; shift 2 ;;
    --quick)     QUICK=1; shift ;;
    *) echo "collect_bench: unknown argument $1" >&2; exit 2 ;;
  esac
done

mkdir -p "$OUT_DIR"
status=0
for bench in "$BUILD_DIR"/bench_*; do
  [[ -x "$bench" && ! -d "$bench" ]] || continue
  name=$(basename "$bench")
  if [[ -n "$FILTER" ]] && ! grep -qE "$FILTER" <<< "$name"; then
    continue
  fi
  # Wall-clock benches take duration flags; simulated ones are deterministic and take none.
  args=()
  if [[ $QUICK -eq 1 ]]; then
    case "$name" in
      bench_runtime)   args=(--quick) ;;
      bench_crypto)    args=(--ms 50) ;;
      bench_rebalance) args=(--quick) ;;
    esac
  fi
  # bench_runtime also archives a per-cell observability dump (METRICS_runtime.<cell>.json)
  # next to the bench rows. Separate files: the gated BENCH_*.json row sets must not change.
  case "$name" in
    bench_runtime) args+=(--metrics-json "$OUT_DIR/METRICS_runtime.json") ;;
  esac
  out="$OUT_DIR/BENCH_${name#bench_}.json"
  echo "== $name ${args[*]:-}"
  if ! "$bench" "${args[@]}" --json "$out" > "$OUT_DIR/${name}.log" 2>&1; then
    echo "collect_bench: $name FAILED (log: $OUT_DIR/${name}.log)" >&2
    status=1
  fi
done
exit $status

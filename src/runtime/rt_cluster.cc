#include "src/runtime/rt_cluster.h"

#include <cassert>
#include <chrono>
#include <cstdio>

#include "src/common/thread_annotations.h"

namespace bft {

RtCluster::RtCluster(RtClusterOptions options, RtServiceFactory factory)
    : options_(options), factory_(std::move(factory)) {
  tracer_.InstallMetrics(&metrics_);
  using TransportKind = RtClusterOptions::TransportKind;
  TransportKind kind = options_.transport;
  if (kind == TransportKind::kUring && !IoUringTransport::Supported()) {
    std::fprintf(stderr, "RtCluster: io_uring unavailable, falling back to UDP transport\n");
    kind = TransportKind::kUdp;
  }
  if (kind == TransportKind::kUring) {
    transport_ = std::make_unique<IoUringTransport>();
  } else if (kind == TransportKind::kUdp) {
    transport_ = std::make_unique<UdpTransport>();
  } else {
    transport_ = std::make_unique<InProcTransport>();
  }
  // The fault layer is always in the stack: disarmed it forwards after one relaxed atomic
  // load, so the happy path (and bench_runtime) pays nothing measurable. Formation wraps it,
  // so injected faults hit fully-formed wire datagrams.
  uint64_t fault_seed =
      options_.fault_seed != 0 ? options_.fault_seed : options_.seed ^ 0xfa517fa517fa517bULL;
  auto fault = std::make_unique<FaultTransport>(std::move(transport_), fault_seed);
  fault_ = fault.get();
  transport_ = std::move(fault);
  if (options_.formation) {
    transport_ = std::make_unique<FormationTransport>(std::move(transport_));
  }
  transport_->InstallMetrics(&metrics_);
  for (int i = 0; i < options_.config.n; ++i) {
    NodeId id = options_.config.ReplicaId(i);
    auto node = std::make_unique<RtNode>(id, transport_.get(), options_.seed);
    replica_nodes_.push_back(node.get());
    replicas_.push_back(std::make_unique<Replica>(
        std::move(node), &options_.config, &options_.model, &directory_, factory_(id),
        options_.seed + static_cast<uint64_t>(i)));
    replicas_.back()->InstallObservability(&metrics_, &tracer_);
  }
}

RtCluster::~RtCluster() { Stop(); }

Client* RtCluster::AddClient() {
  if (started_) {
    // Key generation writes the shared directory, which running loops read concurrently;
    // a hard stop beats the silent never-started-loop hang an assert would compile out to.
    std::fprintf(stderr, "RtCluster: AddClient() must precede Start()\n");
    std::abort();
  }
  NodeId id = next_client_id_++;
  auto node = std::make_unique<RtNode>(id, transport_.get(), options_.seed);
  client_nodes_.push_back(node.get());
  clients_.push_back(std::make_unique<Client>(std::move(node), &options_.config,
                                              &options_.model, &directory_,
                                              options_.seed ^ (id * 0x2545f4914f6cdd1dULL)));
  clients_.back()->InstallObservability(&metrics_, &tracer_);
  return clients_.back().get();
}

void RtCluster::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->Start();  // arms status (and recovery) timers; loops are not running yet
    replica_nodes_[i]->Start();
  }
  for (RtNode* node : client_nodes_) {
    node->Start();
  }
}

void RtCluster::Stop() {
  for (RtNode* node : client_nodes_) {
    node->Stop();
  }
  for (RtNode* node : replica_nodes_) {
    if (node != nullptr) {  // crashed replicas have no node
      node->Stop();
    }
  }
  started_ = false;
}

void RtCluster::CrashReplica(int i) {
  size_t idx = static_cast<size_t>(i);
  if (replicas_[idx] == nullptr) {
    return;
  }
  // The replica's mac-cache probes capture the object being destroyed, and an admin export
  // may race this crash. Overwrite them (RegisterProbe replaces by name+labels) with the
  // final values first — the totals stay monotonic across the outage, like a scrape of a
  // dead machine's last known counters.
  std::string node = "node=\"" + std::to_string(options_.config.ReplicaId(i)) + "\"";
  uint64_t hits = replicas_[idx]->auth().mac_cache_hits();
  uint64_t misses = replicas_[idx]->auth().mac_cache_misses();
  metrics_.RegisterProbe("bft_mac_cache_hits_total", node, [hits]() { return hits; });
  metrics_.RegisterProbe("bft_mac_cache_misses_total", node, [misses]() { return misses; });
  replica_nodes_[idx] = nullptr;
  // ~Replica closes its endpoint: the loop stops, the node unregisters from the transport
  // (waiting out in-flight deliveries), and all volatile state dies with the object.
  replicas_[idx].reset();
}

void RtCluster::RestartReplica(int i) {
  size_t idx = static_cast<size_t>(i);
  if (replicas_[idx] != nullptr) {
    return;
  }
  NodeId id = options_.config.ReplicaId(i);
  auto node = std::make_unique<RtNode>(id, transport_.get(), options_.seed);
  replica_nodes_[idx] = node.get();
  // Same id and seed as the original: Generate() re-derives the identical key material, so
  // MAC-mode peers (whose session keys hash the static master secret) accept it without any
  // re-keying ceremony. The replica itself starts from view 0 with empty state and learns
  // the group's real view and checkpoint through the status exchange.
  replicas_[idx] = std::make_unique<Replica>(std::move(node), &options_.config,
                                             &options_.model, &directory_, factory_(id),
                                             options_.seed + static_cast<uint64_t>(i));
  replicas_[idx]->InstallObservability(&metrics_, &tracer_);
  if (started_) {
    replicas_[idx]->Start();
    replica_nodes_[idx]->Start();
  }
}

RtNode* RtCluster::NodeOf(const Client* client) {
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].get() == client) {
      return client_nodes_[i];
    }
  }
  return nullptr;
}

std::optional<Bytes> RtCluster::Execute(Client* client, Bytes op, bool read_only,
                                        SimTime timeout) {
  struct Rendezvous {
    Mutex mu;
    CondVar cv;
    std::optional<Bytes> result BFT_GUARDED_BY(mu);
    bool rejected BFT_GUARDED_BY(mu) = false;
  };
  // Shared, not stack-captured: on timeout the client still holds the callback, which may
  // fire after this frame is gone.
  auto rv = std::make_shared<Rendezvous>();
  RtNode* node = NodeOf(client);
  assert(node != nullptr);
  bool posted = node->Post([client, op = std::move(op), read_only, rv]() mutable {
    if (client->busy()) {
      // A previous Execute timed out and its request is still in flight; Invoke allows only
      // one outstanding op per client. Refuse cleanly (checked on the client's own loop
      // thread, where busy_ is safe to read) instead of clobbering the live request.
      MutexLock lock(rv->mu);
      rv->rejected = true;
      rv->cv.NotifyAll();
      return;
    }
    client->Invoke(std::move(op), read_only, [rv](Bytes r) {
      {
        MutexLock lock(rv->mu);
        rv->result = std::move(r);
      }
      rv->cv.NotifyAll();
    });
  });
  if (!posted) {
    return std::nullopt;  // the client's loop is stopped; nothing will ever complete
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::nanoseconds(timeout);
  MutexLock lock(rv->mu);
  while (!rv->result.has_value() && !rv->rejected) {
    if (!rv->cv.WaitUntil(rv->mu, deadline)) {
      break;  // timed out; the final read below sees whatever arrived before the relock
    }
  }
  return rv->result;
}

void RtCluster::RunOn(int i, std::function<void()> fn) {
  struct Rendezvous {
    Mutex mu;
    CondVar cv;
    bool done BFT_GUARDED_BY(mu) = false;
  };
  auto rv = std::make_shared<Rendezvous>();
  RtNode* node = replica_nodes_[static_cast<size_t>(i)];
  if (node == nullptr) {
    return;  // crashed: there is no loop to run on
  }
  bool posted = node->Post([fn = std::move(fn), rv]() {
    fn();
    {
      MutexLock lock(rv->mu);
      rv->done = true;
    }
    rv->cv.NotifyAll();
  });
  if (!posted) {
    return;  // loop stopped: the task was rejected and will never run
  }
  // An accepted post always runs (the loop drains tasks on stop), so waiting until done is
  // safe — and required: `fn` may capture the caller's stack.
  MutexLock lock(rv->mu);
  while (!rv->done) {
    rv->cv.Wait(rv->mu);
  }
}

HealthSnapshot RtCluster::Health() {
  HealthSnapshot snapshot;
  int n = num_replicas();
  snapshot.replicas.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ReplicaHealth& row = snapshot.replicas[static_cast<size_t>(i)];
    // Default row: crashed (RunOn no-ops, leaving running=false). The id is filled here so
    // a down replica is still identifiable in the document.
    row.id = options_.config.ReplicaId(i);
    if (replicas_[static_cast<size_t>(i)] == nullptr) {
      continue;  // crashed: row stays running=false
    }
    if (!started_) {
      // Loops are not running (pre-Start or post-Stop); direct reads are single-threaded.
      row = replicas_[static_cast<size_t>(i)]->Health();
      continue;
    }
    RunOn(i, [this, i, &row]() {
      row = replicas_[static_cast<size_t>(i)]->Health();
    });
  }
  snapshot.faults_armed = fault_->armed();
  snapshot.faults_injected = fault_->injected_count();
  return snapshot;
}

}  // namespace bft

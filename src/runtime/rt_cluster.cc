#include "src/runtime/rt_cluster.h"

#include <cassert>
#include <cstdio>
#include <condition_variable>
#include <mutex>

namespace bft {

RtCluster::RtCluster(RtClusterOptions options, RtServiceFactory factory) : options_(options) {
  using TransportKind = RtClusterOptions::TransportKind;
  TransportKind kind = options_.transport;
  if (kind == TransportKind::kUring && !IoUringTransport::Supported()) {
    std::fprintf(stderr, "RtCluster: io_uring unavailable, falling back to UDP transport\n");
    kind = TransportKind::kUdp;
  }
  if (kind == TransportKind::kUring) {
    transport_ = std::make_unique<IoUringTransport>();
  } else if (kind == TransportKind::kUdp) {
    transport_ = std::make_unique<UdpTransport>();
  } else {
    transport_ = std::make_unique<InProcTransport>();
  }
  if (options_.formation) {
    transport_ = std::make_unique<FormationTransport>(std::move(transport_));
  }
  transport_->InstallMetrics(&metrics_);
  for (int i = 0; i < options_.config.n; ++i) {
    NodeId id = options_.config.ReplicaId(i);
    auto node = std::make_unique<RtNode>(id, transport_.get(), options_.seed);
    replica_nodes_.push_back(node.get());
    replicas_.push_back(std::make_unique<Replica>(
        std::move(node), &options_.config, &options_.model, &directory_, factory(id),
        options_.seed + static_cast<uint64_t>(i)));
    replicas_.back()->InstallObservability(&metrics_, &tracer_);
  }
}

RtCluster::~RtCluster() { Stop(); }

Client* RtCluster::AddClient() {
  if (started_) {
    // Key generation writes the shared directory, which running loops read concurrently;
    // a hard stop beats the silent never-started-loop hang an assert would compile out to.
    std::fprintf(stderr, "RtCluster: AddClient() must precede Start()\n");
    std::abort();
  }
  NodeId id = next_client_id_++;
  auto node = std::make_unique<RtNode>(id, transport_.get(), options_.seed);
  client_nodes_.push_back(node.get());
  clients_.push_back(std::make_unique<Client>(std::move(node), &options_.config,
                                              &options_.model, &directory_,
                                              options_.seed ^ (id * 0x2545f4914f6cdd1dULL)));
  clients_.back()->InstallObservability(&metrics_, &tracer_);
  return clients_.back().get();
}

void RtCluster::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->Start();  // arms status (and recovery) timers; loops are not running yet
    replica_nodes_[i]->Start();
  }
  for (RtNode* node : client_nodes_) {
    node->Start();
  }
}

void RtCluster::Stop() {
  for (RtNode* node : client_nodes_) {
    node->Stop();
  }
  for (RtNode* node : replica_nodes_) {
    node->Stop();
  }
  started_ = false;
}

RtNode* RtCluster::NodeOf(const Client* client) {
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].get() == client) {
      return client_nodes_[i];
    }
  }
  return nullptr;
}

std::optional<Bytes> RtCluster::Execute(Client* client, Bytes op, bool read_only,
                                        SimTime timeout) {
  struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Bytes> result;
    bool rejected = false;
  };
  // Shared, not stack-captured: on timeout the client still holds the callback, which may
  // fire after this frame is gone.
  auto rv = std::make_shared<Rendezvous>();
  RtNode* node = NodeOf(client);
  assert(node != nullptr);
  bool posted = node->Post([client, op = std::move(op), read_only, rv]() mutable {
    if (client->busy()) {
      // A previous Execute timed out and its request is still in flight; Invoke allows only
      // one outstanding op per client. Refuse cleanly (checked on the client's own loop
      // thread, where busy_ is safe to read) instead of clobbering the live request.
      std::lock_guard<std::mutex> lock(rv->mu);
      rv->rejected = true;
      rv->cv.notify_all();
      return;
    }
    client->Invoke(std::move(op), read_only, [rv](Bytes r) {
      {
        std::lock_guard<std::mutex> lock(rv->mu);
        rv->result = std::move(r);
      }
      rv->cv.notify_all();
    });
  });
  if (!posted) {
    return std::nullopt;  // the client's loop is stopped; nothing will ever complete
  }
  std::unique_lock<std::mutex> lock(rv->mu);
  rv->cv.wait_for(lock, std::chrono::nanoseconds(timeout),
                  [&rv]() { return rv->result.has_value() || rv->rejected; });
  return rv->result;
}

void RtCluster::RunOn(int i, std::function<void()> fn) {
  struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto rv = std::make_shared<Rendezvous>();
  bool posted = replica_nodes_[static_cast<size_t>(i)]->Post([fn = std::move(fn), rv]() {
    fn();
    {
      std::lock_guard<std::mutex> lock(rv->mu);
      rv->done = true;
    }
    rv->cv.notify_all();
  });
  if (!posted) {
    return;  // loop stopped: the task was rejected and will never run
  }
  // An accepted post always runs (the loop drains tasks on stop), so waiting until done is
  // safe — and required: `fn` may capture the caller's stack.
  std::unique_lock<std::mutex> lock(rv->mu);
  rv->cv.wait(lock, [&rv]() { return rv->done; });
}

}  // namespace bft

#include "src/runtime/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace bft {

namespace {
// Largest protocol datagram we accept; UDP on loopback carries up to ~64 KiB.
constexpr size_t kMaxDatagram = 65507;
}  // namespace

UdpTransport::~UdpTransport() {
  std::map<NodeId, std::unique_ptr<Socket>> sockets;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    sockets.swap(sockets_);
  }
  for (auto& [id, socket] : sockets) {
    socket->running.store(false);
    socket->reader.join();
    ::close(socket->fd);
  }
}

void UdpTransport::Register(NodeId id, MessageSink* sink) {
  Unregister(id);  // re-registering an id would otherwise leak a socket and a live reader
  auto socket = std::make_unique<Socket>();
  socket->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (socket->fd < 0) {
    // A node without its socket can never receive: fail fast and loudly instead of letting
    // the cluster time out op by op with no indication why.
    std::perror("UdpTransport: socket");
    std::abort();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned: parallel runs never collide
  if (::bind(socket->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("UdpTransport: bind");
    std::abort();
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(socket->fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    std::perror("UdpTransport: getsockname");  // port unknown: every datagram would be lost
    std::abort();
  }
  socket->port = ntohs(addr.sin_port);
  // The reader polls `running` between blocking receives; a receive timeout bounds shutdown —
  // without it, Unregister()'s join would hang forever on an idle socket.
  timeval timeout{};
  timeout.tv_usec = 50 * 1000;
  if (::setsockopt(socket->fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout)) < 0) {
    std::perror("UdpTransport: setsockopt(SO_RCVTIMEO)");
    std::abort();
  }
  socket->sink = sink;
  Socket* raw = socket.get();
  socket->reader = std::thread([this, raw]() { ReadLoop(raw); });
  std::unique_lock<std::shared_mutex> lock(mu_);
  sockets_[id] = std::move(socket);
}

void UdpTransport::Unregister(NodeId id) {
  std::unique_ptr<Socket> socket;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = sockets_.find(id);
    if (it == sockets_.end()) {
      return;
    }
    socket = std::move(it->second);
    sockets_.erase(it);
  }
  // Join outside the lock so in-flight Send()s never wait on the reader.
  socket->running.store(false);
  socket->reader.join();
  ::close(socket->fd);
}

void UdpTransport::Send(NodeId src, NodeId dst, Bytes message) {
  // The (shared) lock is held across sendto: a concurrent Unregister close()s fds, so an
  // in-flight send must never race a reused descriptor. Shared mode keeps the loop threads'
  // sends concurrent with each other; only membership changes serialize.
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto dit = sockets_.find(dst);
  if (dit == sockets_.end()) {
    return;  // destination gone: dropped on the floor, as UDP would
  }
  auto sit = sockets_.find(src);
  int fd = sit != sockets_.end() ? sit->second->fd : dit->second->fd;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dit->second->port);
  // Best-effort: EWOULDBLOCK/ECONNREFUSED are just "the network lost it" and the protocol's
  // retransmission absorbs them. EMSGSIZE is different — the same message fails on every
  // retry, a permanent ceiling rather than recoverable loss — so it gets a diagnostic.
  if (::sendto(fd, message.data(), message.size(), 0, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0 &&
      errno == EMSGSIZE) {
    std::fprintf(stderr, "UdpTransport: %zu-byte message %u->%u exceeds the datagram limit\n",
                 message.size(), src, dst);
  }
}

uint16_t UdpTransport::PortOf(NodeId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sockets_.find(id);
  return it == sockets_.end() ? 0 : it->second->port;
}

void UdpTransport::ReadLoop(Socket* socket) {
  Bytes buffer(kMaxDatagram);
  while (socket->running.load()) {
    ssize_t n = ::recvfrom(socket->fd, buffer.data(), buffer.size(), 0, nullptr, nullptr);
    if (n <= 0) {
      continue;  // timeout or transient error; re-check running
    }
    socket->sink->EnqueueMessage(Bytes(buffer.begin(), buffer.begin() + n));
  }
}

}  // namespace bft

#include "src/runtime/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bft {

namespace {
// Largest protocol datagram we accept; UDP on loopback carries up to ~64 KiB.
constexpr size_t kMaxDatagram = 65507;
// Datagrams pulled per recvmmsg call while draining.
constexpr int kRecvBatch = 8;
}  // namespace

UdpTransport::UdpTransport() { InstallMetrics(&MetricsRegistry::Process()); }

void UdpTransport::InstallMetrics(MetricsRegistry* registry) {
  const std::string labels = "transport=\"udp\"";
  obs_.datagrams_sent = registry->GetCounter("bft_transport_datagrams_sent_total", labels);
  obs_.bytes_sent = registry->GetCounter("bft_transport_bytes_sent_total", labels);
  obs_.datagrams_received = registry->GetCounter("bft_transport_datagrams_received_total", labels);
  obs_.bytes_received = registry->GetCounter("bft_transport_bytes_received_total", labels);
  obs_.eintr_retries = registry->GetCounter("bft_transport_eintr_retries_total", labels);
  obs_.oversize_errors = registry->GetCounter("bft_transport_oversize_errors_total", labels);
  obs_.send_drops = registry->GetCounter("bft_transport_send_drops_total", labels);
  obs_.sendmmsg_batch = registry->GetHistogram("bft_transport_sendmmsg_batch", labels);
}

UdpTransport::~UdpTransport() {
  WriterMutexLock lock(mu_);
  for (auto& [id, socket] : sockets_) {
    ::close(socket->fd);
  }
  sockets_.clear();
}

void UdpTransport::Register(NodeId id, MessageSink* sink) {
  Unregister(id);  // re-registering an id would otherwise leak a socket
  auto socket = std::make_unique<Socket>();
  socket->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (socket->fd < 0) {
    // A node without its socket can never receive: fail fast and loudly instead of letting
    // the cluster time out op by op with no indication why.
    std::perror("UdpTransport: socket");
    std::abort();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned: parallel runs never collide
  if (::bind(socket->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("UdpTransport: bind");
    std::abort();
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(socket->fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    std::perror("UdpTransport: getsockname");  // port unknown: every datagram would be lost
    std::abort();
  }
  socket->port = ntohs(addr.sin_port);
  // Drain() runs on the owner's loop thread while holding the shared lock; it must never
  // block there (Unregister waits on the exclusive lock), so the socket is non-blocking and
  // readiness comes from the loop's poll on ReceiveFd().
  if (::fcntl(socket->fd, F_SETFL, O_NONBLOCK) < 0) {
    std::perror("UdpTransport: fcntl(O_NONBLOCK)");
    std::abort();
  }
  socket->sink = sink;
  socket->recv_buffers.resize(static_cast<size_t>(kRecvBatch) * kMaxDatagram);
  WriterMutexLock lock(mu_);
  sockets_[id] = std::move(socket);
}

void UdpTransport::Unregister(NodeId id) {
  std::unique_ptr<Socket> socket;
  {
    WriterMutexLock lock(mu_);
    auto it = sockets_.find(id);
    if (it == sockets_.end()) {
      return;
    }
    socket = std::move(it->second);
    sockets_.erase(it);
  }
  // The exclusive lock has been held and released: no Send or Drain still touches this fd.
  // A loop thread may still poll the stale fd number briefly; it only ever *reads* via
  // Drain(id), which no longer resolves, so the worst case is one spurious wakeup.
  ::close(socket->fd);
}

void UdpTransport::Send(NodeId src, NodeId dst, MsgBuffer message) {
  // The (shared) lock is held across sendto: a concurrent Unregister close()s fds, so an
  // in-flight send must never race a reused descriptor. Shared mode keeps the loop threads'
  // sends concurrent with each other; only membership changes serialize.
  ReaderMutexLock lock(mu_);
  auto dit = sockets_.find(dst);
  if (dit == sockets_.end()) {
    return;  // destination gone: dropped on the floor, as UDP would
  }
  auto sit = sockets_.find(src);
  int fd = sit != sockets_.end() ? sit->second->fd : dit->second->fd;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dit->second->port);
  // Best-effort: EWOULDBLOCK/ECONNREFUSED are just "the network lost it" and the protocol's
  // retransmission absorbs them. EMSGSIZE is different — the same message fails on every
  // retry, a permanent ceiling rather than recoverable loss — so it gets a diagnostic.
  if (::sendto(fd, message.data(), message.size(), 0, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
    obs_.send_drops->Inc();
    if (errno == EMSGSIZE) {
      obs_.oversize_errors->Inc();
      std::fprintf(stderr, "UdpTransport: %zu-byte message %u->%u exceeds the datagram limit\n",
                   message.size(), src, dst);
    }
  } else {
    obs_.datagrams_sent->Inc();
    obs_.bytes_sent->Inc(message.size());
  }
}

void UdpTransport::Multicast(NodeId src, const std::vector<NodeId>& dsts,
                             const MsgBuffer& message) {
  ReaderMutexLock lock(mu_);
  auto sit = sockets_.find(src);
  // Fixed-size fan-out frame, filled and flushed in chunks; a replica group is 3f+1 nodes,
  // far below one chunk, so the common case is exactly one sendmmsg for the whole group.
  constexpr size_t kChunk = 64;
  sockaddr_in addrs[kChunk];
  mmsghdr msgs[kChunk];
  iovec iov;
  iov.iov_base = const_cast<uint8_t*>(message.data());
  iov.iov_len = message.size();
  int fd = -1;
  // All datagrams share the single encoded buffer. Partial progress (or EWOULDBLOCK on the
  // remainder) is recoverable loss, exactly like the per-destination path; the protocol's
  // retransmission machinery absorbs it.
  auto flush = [&](size_t count) {
    if (count > 0) {
      obs_.sendmmsg_batch->Record(count);
    }
    size_t done = 0;
    while (done < count) {
      int n = ::sendmmsg(fd, msgs + done, static_cast<unsigned>(count - done), 0);
      if (n < 0 && errno == EINTR) {
        // A signal landing mid-fan-out is not loss: nothing was sent for the remaining
        // destinations, and dropping them here would silently cut part of the group out of a
        // protocol multicast on every interrupted call. Retry the remainder.
        obs_.eintr_retries->Inc();
        continue;
      }
      if (n <= 0) {
        if (n < 0 && errno == EMSGSIZE) {
          obs_.oversize_errors->Inc();
          std::fprintf(stderr,
                       "UdpTransport: %zu-byte multicast from %u exceeds the datagram limit\n",
                       message.size(), src);
        }
        // Every destination the short return left unserved is a real per-peer drop; the
        // per-Send path counts its failures, so the fan-out path must too or a partially
        // failed sendmmsg under-reports exactly when the network is at its worst.
        obs_.send_drops->Inc(count - done);
        return;
      }
      obs_.datagrams_sent->Inc(static_cast<uint64_t>(n));
      obs_.bytes_sent->Inc(static_cast<uint64_t>(n) * message.size());
      done += static_cast<size_t>(n);
    }
  };
  size_t count = 0;
  for (NodeId dst : dsts) {
    if (dst == src) {
      continue;
    }
    auto dit = sockets_.find(dst);
    if (dit == sockets_.end()) {
      continue;  // destination gone: dropped on the floor, as UDP would
    }
    if (fd < 0) {
      fd = sit != sockets_.end() ? sit->second->fd : dit->second->fd;
    }
    sockaddr_in& addr = addrs[count];
    addr = sockaddr_in{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(dit->second->port);
    mmsghdr& m = msgs[count];
    m = mmsghdr{};
    m.msg_hdr.msg_name = &addr;
    m.msg_hdr.msg_namelen = sizeof(addr);
    m.msg_hdr.msg_iov = &iov;
    m.msg_hdr.msg_iovlen = 1;
    if (++count == kChunk) {
      flush(count);
      count = 0;
    }
  }
  flush(count);
}

int UdpTransport::ReceiveFd(NodeId id) const {
  ReaderMutexLock lock(mu_);
  auto it = sockets_.find(id);
  return it == sockets_.end() ? -1 : it->second->fd;
}

void UdpTransport::Drain(NodeId id) {
  ReaderMutexLock lock(mu_);
  auto it = sockets_.find(id);
  if (it == sockets_.end()) {
    return;
  }
  Socket& socket = *it->second;
  // Reusable per-socket receive buffers (only the owning loop thread drains, so they are
  // effectively single-threaded). Each datagram is copied exactly once, straight into the
  // exactly-sized shared buffer the mailbox keeps; recvmmsg pulls a whole burst per syscall.
  iovec iovs[kRecvBatch];
  mmsghdr msgs[kRecvBatch];
  for (int i = 0; i < kRecvBatch; ++i) {
    iovs[i].iov_base = socket.recv_buffers.data() + static_cast<size_t>(i) * kMaxDatagram;
    iovs[i].iov_len = kMaxDatagram;
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  for (;;) {
    int n = ::recvmmsg(socket.fd, msgs, kRecvBatch, MSG_DONTWAIT, nullptr);
    if (n < 0 && errno == EINTR) {
      // Interrupted before any datagram was pulled: the queue may well be non-empty, and
      // returning would report it drained — with a level-triggered poll already past, the
      // messages would sit until the next unrelated wakeup. Retry.
      obs_.eintr_retries->Inc();
      continue;
    }
    if (n <= 0) {
      return;  // EAGAIN: queue empty (or terminal error; poll will re-arm)
    }
    obs_.datagrams_received->Inc(static_cast<uint64_t>(n));
    for (int i = 0; i < n; ++i) {
      obs_.bytes_received->Inc(msgs[i].msg_len);
      socket.sink->EnqueueMessage(MsgBuffer(
          ByteView(static_cast<const uint8_t*>(iovs[i].iov_base), msgs[i].msg_len)));
    }
    if (n < kRecvBatch) {
      return;  // short batch: queue drained
    }
  }
}

uint16_t UdpTransport::PortOf(NodeId id) const {
  ReaderMutexLock lock(mu_);
  auto it = sockets_.find(id);
  return it == sockets_.end() ? 0 : it->second->port;
}

}  // namespace bft

// Fault-injecting transport decorator for the real-clock runtime.
//
// Wraps any Transport (udp, io_uring, inproc — and stacks under the formation layer) and
// injects per-link drop / delay / duplicate / reorder / corrupt faults plus bidirectional
// partitions, driven by a deterministic seeded schedule. The paper's correctness argument
// (Castro & Liskov, OSDI'99 §4.4–4.6) is exactly a claim about behavior under these faults;
// this is the layer that lets the real runtime experience them on demand.
//
// Design constraints, in order:
//  - Disabled must be free: every fault setter recomputes one `armed_` atomic, and the
//    unarmed Send/Multicast path is a relaxed load plus the inner virtual call. RtCluster
//    stacks this transport unconditionally, so bench_runtime rides through it.
//  - Fault decisions happen on the SEND side, where both link endpoints are known (datagrams
//    carry no sender identity, so a receive-side decorator could not be per-link).
//  - Delayed/reordered datagrams are delivered by a private timer thread straight into the
//    destination's registered MessageSink — never through inner_->Send, which io_uring
//    restricts to the source node's own loop thread (single-issuer contract). Skipping the
//    inner hop is semantically fine: the faults model the wire, and the sink is where the
//    wire terminates.
//  - Determinism: each (src, dst) link owns an Rng seeded from (seed, src, dst), consumed
//    only by that link's Send calls. A single-threaded sender therefore produces an
//    identical injected-fault log for the same seed and schedule (asserted in rt_fault_test).
#ifndef SRC_RUNTIME_FAULT_TRANSPORT_H_
#define SRC_RUNTIME_FAULT_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_annotations.h"
#include "src/runtime/transport.h"

namespace bft {

class Counter;

// Per-link fault probabilities and latencies. All-zero (the default) injects nothing.
struct FaultSpec {
  double drop = 0.0;       // P(datagram silently dropped)
  double corrupt = 0.0;    // P(1–8 payload bytes flipped; strict decoders must reject)
  double duplicate = 0.0;  // P(datagram delivered twice)
  double reorder = 0.0;    // P(datagram held for reorder_window so later sends overtake it)
  SimTime delay = 0;       // fixed added one-way latency
  SimTime delay_jitter = 0;            // plus uniform [0, delay_jitter)
  SimTime reorder_window = 2 * kMillisecond;

  bool Quiet() const {
    return drop == 0.0 && corrupt == 0.0 && duplicate == 0.0 && reorder == 0.0 && delay == 0 &&
           delay_jitter == 0;
  }
};

enum class FaultKind : uint8_t { kDrop, kDelay, kDuplicate, kReorder, kCorrupt, kPartition };
const char* FaultKindName(FaultKind kind);

// One injected fault, in send order per link (and globally whenever sends are serialized).
struct FaultEvent {
  FaultKind kind;
  NodeId src;
  NodeId dst;

  bool operator==(const FaultEvent& other) const = default;
};

class FaultTransport final : public Transport {
 public:
  explicit FaultTransport(std::unique_ptr<Transport> inner, uint64_t seed = 0);
  ~FaultTransport() override;

  // --- Control API (thread-safe, callable at any time while the cluster runs) --------------
  // Applies to every link without a per-link override.
  void SetDefaultFaults(const FaultSpec& spec);
  // Overrides the default for the directed link src -> dst.
  void SetLinkFaults(NodeId src, NodeId dst, const FaultSpec& spec);
  // Removes all default and per-link fault specs (partitions persist until Heal()).
  void ClearFaults();
  // Bidirectional partition: datagrams between a member of `group` and a non-member drop,
  // both directions. Replaces any previous partition. An empty group is a no-op cut.
  void Partition(const std::vector<NodeId>& group);
  // Removes the partition.
  void Heal();

  // Total faults injected since construction (cheap; for harness progress checks).
  uint64_t injected_count() const { return injected_.load(std::memory_order_relaxed); }
  // True while any fault schedule is active (the /healthz "fault injection armed" signal).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // The injected-fault log, in decision order per sending thread. Bounded (old entries stop
  // accumulating past kMaxLogEvents); determinism tests read it, chaos reports summarize it.
  std::vector<FaultEvent> FaultLog() const;
  void ClearFaultLog();

  Transport* inner() { return inner_.get(); }

  // --- Transport --------------------------------------------------------------------------
  void Register(NodeId id, MessageSink* sink) override;
  void Unregister(NodeId id) override;
  void Send(NodeId src, NodeId dst, MsgBuffer message) override;
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& message) override;
  void Flush(NodeId src) override { inner_->Flush(src); }
  void InstallMetrics(MetricsRegistry* registry) override;
  int ReceiveFd(NodeId id) const override { return inner_->ReceiveFd(id); }
  void Drain(NodeId id) override { inner_->Drain(id); }
  int Park(NodeId src, int doorbell_fd, SimTime wait_ns) override {
    return inner_->Park(src, doorbell_fd, wait_ns);
  }

 private:
  static constexpr size_t kMaxLogEvents = 1 << 16;

  struct Pending {
    std::chrono::steady_clock::time_point due;
    uint64_t tie;  // FIFO among equal deadlines
    NodeId dst;
    MsgBuffer message;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.due != b.due ? a.due > b.due : a.tie > b.tie;
    }
  };

  static uint64_t LinkKey(NodeId src, NodeId dst) {
    return (static_cast<uint64_t>(src) << 32) | dst;
  }

  // All Locked helpers require mu_.
  const FaultSpec* SpecForLocked(NodeId src, NodeId dst) const BFT_REQUIRES(mu_);
  Rng& RngForLocked(NodeId src, NodeId dst) BFT_REQUIRES(mu_);
  void RecordLocked(FaultKind kind, NodeId src, NodeId dst) BFT_REQUIRES(mu_);
  void RecomputeArmedLocked() BFT_REQUIRES(mu_);

  void SendFaulty(NodeId src, NodeId dst, MsgBuffer message);
  void ScheduleDelivery(NodeId dst, MsgBuffer message, SimTime hold);
  void DeliverDirect(NodeId dst, MsgBuffer message);
  void DelayLoop();

  std::unique_ptr<Transport> inner_;
  const uint64_t seed_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};

  // Registered sinks; shared for delivery lookups, exclusive for (un)registration. The
  // exclusive acquisition in Unregister doubles as the barrier that waits out an in-flight
  // delayed delivery before the caller may destroy the sink.
  mutable SharedMutex sinks_mu_;
  std::unordered_map<NodeId, MessageSink*> sinks_ BFT_GUARDED_BY(sinks_mu_);

  // Fault configuration + per-link RNG streams + log.
  mutable Mutex mu_;
  bool has_default_ BFT_GUARDED_BY(mu_) = false;
  FaultSpec default_spec_ BFT_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, FaultSpec> link_specs_ BFT_GUARDED_BY(mu_);
  bool partitioned_ BFT_GUARDED_BY(mu_) = false;
  std::unordered_set<NodeId> partition_ BFT_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Rng> link_rngs_ BFT_GUARDED_BY(mu_);
  std::vector<FaultEvent> log_ BFT_GUARDED_BY(mu_);

  // Held-back datagrams (delay / reorder / duplicate-with-delay). The thread starts lazily
  // on the first hold and exits in the destructor, which moves the handle out under the lock
  // and joins it unlocked (joining under delay_mu_ would deadlock against DelayLoop).
  Mutex delay_mu_;
  CondVar delay_cv_;
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> held_ BFT_GUARDED_BY(delay_mu_);
  uint64_t next_tie_ BFT_GUARDED_BY(delay_mu_) = 0;
  bool delay_stop_ BFT_GUARDED_BY(delay_mu_) = false;
  std::thread delay_thread_ BFT_GUARDED_BY(delay_mu_);

  struct Obs {
    Counter* drop = nullptr;
    Counter* delay = nullptr;
    Counter* duplicate = nullptr;
    Counter* reorder = nullptr;
    Counter* corrupt = nullptr;
    Counter* partition = nullptr;
  };
  Obs obs_;
};

}  // namespace bft

#endif  // SRC_RUNTIME_FAULT_TRANSPORT_H_

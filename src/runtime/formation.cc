#include "src/runtime/formation.h"

#include <cstring>
#include <utility>

namespace bft {

// --- Wire format ----------------------------------------------------------------------------

bool IsFormedDatagram(ByteView datagram) {
  return datagram.size() >= kFormationHeaderSize &&
         std::memcmp(datagram.data(), kFormationMagic, kFormationHeaderSize) == 0;
}

void BeginFormedDatagram(Writer& w) {
  w.Raw(ByteView(kFormationMagic, kFormationHeaderSize));
}

void AppendFormedFrame(Writer& w, ByteView frame) {
  w.U32(static_cast<uint32_t>(frame.size()));
  w.Raw(frame);
}

FrameSplitResult SplitFormedDatagram(const MsgBuffer& datagram,
                                     const std::function<void(MsgBuffer)>& fn) {
  FrameSplitResult result;
  ByteView view = datagram.view();
  if (!IsFormedDatagram(view)) {
    return result;
  }
  result.formed = true;
  // Strict frame walk: every frame header must be whole, every declared length must fit in
  // the bytes that remain, and a valid datagram ends exactly on a frame boundary. The loop
  // stops at the FIRST violation — frames already validated are delivered (a Byzantine
  // sender could just as well have sent them alone), the malformed tail is dropped.
  size_t pos = kFormationHeaderSize;
  while (view.size() - pos >= kFrameHeaderSize) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(view[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += kFrameHeaderSize;
    if (len == 0 || len > view.size() - pos) {
      return result;  // ok stays false: zero-length or truncated frame
    }
    fn(datagram.Slice(pos, len));
    ++result.frames;
    pos += len;
  }
  // Trailing bytes too short to hold a frame header are garbage; an empty formed datagram
  // (magic with no frames) is malformed too — a real sender always packs at least one.
  result.ok = pos == view.size() && result.frames > 0;
  return result;
}

// --- Receive-side sink ----------------------------------------------------------------------

class FormationTransport::SplitSink final : public MessageSink {
 public:
  SplitSink(MessageSink* sink, Obs* obs) : sink_(sink), obs_(obs) {}

  void EnqueueMessage(MsgBuffer message) override {
    FrameSplitResult r = SplitFormedDatagram(
        message, [this](MsgBuffer frame) { sink_->EnqueueMessage(std::move(frame)); });
    if (!r.formed) {
      sink_->EnqueueMessage(std::move(message));  // bare protocol message, as before formation
      return;
    }
    if (!r.ok) {
      obs_->decode_errors->Inc();
    }
  }

 private:
  MessageSink* const sink_;
  Obs* const obs_;
};

// --- Transport decorator --------------------------------------------------------------------

FormationTransport::FormationTransport(std::unique_ptr<Transport> inner, FormationOptions options)
    : inner_(std::move(inner)), options_(options) {
  InstallMetrics(&MetricsRegistry::Process());
}

FormationTransport::~FormationTransport() = default;

void FormationTransport::InstallMetrics(MetricsRegistry* registry) {
  obs_.frames_per_datagram = registry->GetHistogram("bft_formation_frames_per_datagram", "");
  obs_.packed_messages = registry->GetCounter("bft_formation_packed_messages_total", "");
  obs_.flush_idle = registry->GetCounter("bft_formation_flush_total", "reason=\"idle\"");
  obs_.flush_size = registry->GetCounter("bft_formation_flush_total", "reason=\"size\"");
  obs_.flush_frames = registry->GetCounter("bft_formation_flush_total", "reason=\"frames\"");
  obs_.passthrough_multicast =
      registry->GetCounter("bft_formation_passthrough_total", "kind=\"multicast\"");
  obs_.decode_errors = registry->GetCounter("bft_formation_decode_errors_total", "");
  inner_->InstallMetrics(registry);
}

void FormationTransport::Register(NodeId id, MessageSink* sink) {
  Unregister(id);  // mirror the inner transports: re-registering must not leak state
  SplitSink* wrapper = nullptr;
  {
    WriterMutexLock lock(mu_);
    auto sink_owner = std::make_unique<SplitSink>(sink, &obs_);
    wrapper = sink_owner.get();
    sinks_[id] = std::move(sink_owner);
    states_[id] = std::make_unique<SourceState>();
  }
  inner_->Register(id, wrapper);
}

void FormationTransport::Unregister(NodeId id) {
  // Inner first: once it returns, no delivery is mid-flight through the split sink, so the
  // wrapper can be destroyed. Queued outbound frames are dropped with the node — exactly
  // what UDP does to packets addressed from a dead socket.
  inner_->Unregister(id);
  WriterMutexLock lock(mu_);
  sinks_.erase(id);
  states_.erase(id);
}

void FormationTransport::AppendFrameLocked(NodeId src, SourceState& state, NodeId dst,
                                           const MsgBuffer& message, Counter* flush_reason) {
  PerDst& queue = state.queues[dst];
  size_t added = kFrameHeaderSize + message.size();
  // Emitting *before* the append keeps every datagram under the budget; a message too large
  // to ever fit rides alone as an unframed passthrough and fails (or not) in the inner
  // transport exactly as it would have without formation.
  if (!queue.frames.empty() && queue.wire_bytes + added > options_.max_datagram) {
    EmitQueueLocked(src, dst, queue, obs_.flush_size);
  }
  queue.frames.push_back(message);
  queue.wire_bytes += added;
  if (queue.frames.size() >= options_.max_frames) {
    // Bounded packing delay: a loop that stays busy for a long stretch still sends every
    // max_frames-th message, so peers are never starved behind an ever-growing queue.
    EmitQueueLocked(src, dst, queue, obs_.flush_frames);
  }
}

void FormationTransport::FoldMulticastsLocked(NodeId src, SourceState& state) {
  for (PendingMulticast& m : state.multicasts) {
    for (NodeId dst : m.dsts) {
      if (dst == src) {
        continue;
      }
      AppendFrameLocked(src, state, dst, m.message, obs_.flush_size);
    }
  }
  state.multicasts.clear();
}

void FormationTransport::EmitQueueLocked(NodeId src, NodeId dst, PerDst& queue,
                                         Counter* flush_reason) {
  if (queue.frames.empty()) {
    return;
  }
  obs_.frames_per_datagram->Record(queue.frames.size());
  flush_reason->Inc();
  if (queue.frames.size() == 1) {
    // Unframed passthrough: the single message leaves byte-identical to the unformed
    // transport, sharing the producer's encoding (no copy, no framing overhead).
    inner_->Send(src, dst, std::move(queue.frames.front()));
  } else {
    Writer w(queue.wire_bytes);
    BeginFormedDatagram(w);
    for (const MsgBuffer& frame : queue.frames) {
      AppendFormedFrame(w, frame.view());
    }
    obs_.packed_messages->Inc(queue.frames.size());
    inner_->Send(src, dst, MsgBuffer(w.Take()));
  }
  queue.frames.clear();
  queue.wire_bytes = kFormationHeaderSize;
}

void FormationTransport::Send(NodeId src, NodeId dst, MsgBuffer message) {
  ReaderMutexLock lock(mu_);
  auto it = states_.find(src);
  if (it == states_.end()) {
    inner_->Send(src, dst, std::move(message));  // unregistered source: nothing queues it
    return;
  }
  AppendFrameLocked(src, *it->second, dst, message, obs_.flush_size);
}

void FormationTransport::Multicast(NodeId src, const std::vector<NodeId>& dsts,
                                   const MsgBuffer& message) {
  ReaderMutexLock lock(mu_);
  auto it = states_.find(src);
  if (it == states_.end()) {
    inner_->Multicast(src, dsts, message);
    return;
  }
  SourceState& state = *it->second;
  // Queued whole, not per destination: if this iteration produces nothing else, Flush hands
  // the multicast to the inner transport's batched fan-out (one sendmmsg, one shared
  // buffer). Only when other traffic is packing does it fold into the per-peer datagrams.
  state.multicasts.push_back(PendingMulticast{dsts, message});
  if (state.multicasts.size() >= options_.max_frames) {
    FoldMulticastsLocked(src, state);
  }
}

void FormationTransport::Flush(NodeId src) {
  {
    ReaderMutexLock lock(mu_);
    auto it = states_.find(src);
    if (it != states_.end()) {
      SourceState& state = *it->second;
      bool queues_empty = true;
      for (const auto& [dst, queue] : state.queues) {
        if (!queue.frames.empty()) {
          queues_empty = false;
          break;
        }
      }
      if (queues_empty && state.multicasts.size() == 1) {
        // Idle fast path: the iteration produced exactly one multicast and nothing else —
        // the dominant shape at low load (a pre-prepare, a prepare, a commit). Hand it to
        // the inner fan-out unframed, preserving the single-syscall shared-buffer path.
        PendingMulticast m = std::move(state.multicasts.front());
        state.multicasts.clear();
        obs_.frames_per_datagram->Record(1);
        obs_.passthrough_multicast->Inc();
        inner_->Multicast(src, m.dsts, m.message);
      } else if (!queues_empty || !state.multicasts.empty()) {
        FoldMulticastsLocked(src, state);
        for (auto& [dst, queue] : state.queues) {
          EmitQueueLocked(src, dst, queue, obs_.flush_idle);
        }
      }
    }
  }
  // Always propagated: a batching inner backend (io_uring) submits its staged sends here
  // even when formation itself had nothing queued.
  inner_->Flush(src);
}

int FormationTransport::ReceiveFd(NodeId id) const { return inner_->ReceiveFd(id); }

void FormationTransport::Drain(NodeId id) { inner_->Drain(id); }

}  // namespace bft

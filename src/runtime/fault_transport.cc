#include "src/runtime/fault_transport.h"

#include "src/obs/metrics.h"

namespace bft {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

FaultTransport::FaultTransport(std::unique_ptr<Transport> inner, uint64_t seed)
    : inner_(std::move(inner)), seed_(seed) {
  InstallMetrics(&MetricsRegistry::Process());
}

FaultTransport::~FaultTransport() {
  std::thread delay_thread;
  {
    MutexLock lock(delay_mu_);
    delay_stop_ = true;
    delay_thread = std::move(delay_thread_);
  }
  delay_cv_.NotifyAll();
  if (delay_thread.joinable()) {
    delay_thread.join();
  }
}

void FaultTransport::InstallMetrics(MetricsRegistry* registry) {
  obs_.drop = registry->GetCounter("bft_fault_injected_total", "kind=\"drop\"");
  obs_.delay = registry->GetCounter("bft_fault_injected_total", "kind=\"delay\"");
  obs_.duplicate = registry->GetCounter("bft_fault_injected_total", "kind=\"duplicate\"");
  obs_.reorder = registry->GetCounter("bft_fault_injected_total", "kind=\"reorder\"");
  obs_.corrupt = registry->GetCounter("bft_fault_injected_total", "kind=\"corrupt\"");
  obs_.partition = registry->GetCounter("bft_fault_injected_total", "kind=\"partition\"");
  inner_->InstallMetrics(registry);
}

// ---- Control API -----------------------------------------------------------------------

void FaultTransport::SetDefaultFaults(const FaultSpec& spec) {
  MutexLock lock(mu_);
  default_spec_ = spec;
  has_default_ = true;
  RecomputeArmedLocked();
}

void FaultTransport::SetLinkFaults(NodeId src, NodeId dst, const FaultSpec& spec) {
  MutexLock lock(mu_);
  link_specs_[LinkKey(src, dst)] = spec;
  RecomputeArmedLocked();
}

void FaultTransport::ClearFaults() {
  MutexLock lock(mu_);
  has_default_ = false;
  default_spec_ = FaultSpec{};
  link_specs_.clear();
  RecomputeArmedLocked();
}

void FaultTransport::Partition(const std::vector<NodeId>& group) {
  MutexLock lock(mu_);
  partition_.clear();
  partition_.insert(group.begin(), group.end());
  partitioned_ = true;
  RecomputeArmedLocked();
}

void FaultTransport::Heal() {
  MutexLock lock(mu_);
  partition_.clear();
  partitioned_ = false;
  RecomputeArmedLocked();
}

std::vector<FaultEvent> FaultTransport::FaultLog() const {
  MutexLock lock(mu_);
  return log_;
}

void FaultTransport::ClearFaultLog() {
  MutexLock lock(mu_);
  log_.clear();
}

void FaultTransport::RecomputeArmedLocked() {
  bool armed = partitioned_ || (has_default_ && !default_spec_.Quiet());
  if (!armed) {
    for (const auto& [key, spec] : link_specs_) {
      if (!spec.Quiet()) {
        armed = true;
        break;
      }
    }
  }
  armed_.store(armed, std::memory_order_relaxed);
}

// ---- Registration ----------------------------------------------------------------------

void FaultTransport::Register(NodeId id, MessageSink* sink) {
  // The sink goes to the inner transport unchanged — faults are decided on the send side, so
  // the receive path needs no wrapper. The private map only serves held-back deliveries.
  {
    WriterMutexLock lock(sinks_mu_);
    sinks_[id] = sink;
  }
  inner_->Register(id, sink);
}

void FaultTransport::Unregister(NodeId id) {
  // Purge held datagrams addressed to the departing node so the delay thread cannot start a
  // new delivery for it, ...
  {
    MutexLock lock(delay_mu_);
    std::priority_queue<Pending, std::vector<Pending>, PendingLater> kept;
    while (!held_.empty()) {
      Pending p = std::move(const_cast<Pending&>(held_.top()));
      held_.pop();
      if (p.dst != id) {
        kept.push(std::move(p));
      }
    }
    held_ = std::move(kept);
  }
  // ... then wait out any delivery already holding the map (DeliverDirect takes it shared;
  // this exclusive section cannot begin until that enqueue returns), ...
  {
    WriterMutexLock lock(sinks_mu_);
    sinks_.erase(id);
  }
  // ... and finally quiesce the inner transport. After this returns no EnqueueMessage for
  // `id` is in flight from either source, which is exactly the base-class contract.
  inner_->Unregister(id);
}

// ---- Send-side fault pipeline ----------------------------------------------------------

void FaultTransport::Send(NodeId src, NodeId dst, MsgBuffer message) {
  if (!armed_.load(std::memory_order_relaxed)) {
    inner_->Send(src, dst, std::move(message));
    return;
  }
  SendFaulty(src, dst, std::move(message));
}

void FaultTransport::Multicast(NodeId src, const std::vector<NodeId>& dsts,
                               const MsgBuffer& message) {
  if (!armed_.load(std::memory_order_relaxed)) {
    inner_->Multicast(src, dsts, message);
    return;
  }
  // Armed: decompose so each link rolls its own dice. Loses the inner batched fan-out, which
  // is fine — fault scenarios measure correctness, not throughput.
  for (NodeId dst : dsts) {
    if (dst != src) {
      SendFaulty(src, dst, message);
    }
  }
}

const FaultSpec* FaultTransport::SpecForLocked(NodeId src, NodeId dst) const {
  auto it = link_specs_.find(LinkKey(src, dst));
  if (it != link_specs_.end()) {
    return &it->second;
  }
  return has_default_ ? &default_spec_ : nullptr;
}

Rng& FaultTransport::RngForLocked(NodeId src, NodeId dst) {
  uint64_t key = LinkKey(src, dst);
  auto it = link_rngs_.find(key);
  if (it == link_rngs_.end()) {
    // Mix the link into the seed with distinct odd multipliers per endpoint so (a, b) and
    // (b, a) get independent streams.
    uint64_t link_seed = seed_ ^ (static_cast<uint64_t>(src) * 0x9e3779b97f4a7c15ULL) ^
                         (static_cast<uint64_t>(dst) * 0xc2b2ae3d27d4eb4fULL);
    it = link_rngs_.emplace(key, Rng(link_seed)).first;
  }
  return it->second;
}

void FaultTransport::RecordLocked(FaultKind kind, NodeId src, NodeId dst) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  switch (kind) {
    case FaultKind::kDrop:
      obs_.drop->Inc();
      break;
    case FaultKind::kDelay:
      obs_.delay->Inc();
      break;
    case FaultKind::kDuplicate:
      obs_.duplicate->Inc();
      break;
    case FaultKind::kReorder:
      obs_.reorder->Inc();
      break;
    case FaultKind::kCorrupt:
      obs_.corrupt->Inc();
      break;
    case FaultKind::kPartition:
      obs_.partition->Inc();
      break;
  }
  if (log_.size() < kMaxLogEvents) {
    log_.push_back(FaultEvent{kind, src, dst});
  }
}

namespace {
MsgBuffer CorruptCopy(const MsgBuffer& message, Rng& rng) {
  Bytes bytes = message.Copy();
  if (bytes.empty()) {
    return message;
  }
  // Flip 1–8 random bytes. XOR with a nonzero mask guarantees the wire image differs, so a
  // strict decoder (or a MAC check) must notice — "corrupt but identical" cannot happen.
  size_t flips = 1 + rng.Below(8);
  for (size_t i = 0; i < flips; ++i) {
    bytes[rng.Below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
  }
  return MsgBuffer(std::move(bytes));
}
}  // namespace

void FaultTransport::SendFaulty(NodeId src, NodeId dst, MsgBuffer message) {
  SimTime hold = 0;
  bool duplicate = false;
  {
    MutexLock lock(mu_);
    if (partitioned_ && (partition_.count(src) > 0) != (partition_.count(dst) > 0)) {
      RecordLocked(FaultKind::kPartition, src, dst);
      return;
    }
    const FaultSpec* spec = SpecForLocked(src, dst);
    if (spec != nullptr && !spec->Quiet()) {
      Rng& rng = RngForLocked(src, dst);
      if (spec->drop > 0.0 && rng.Chance(spec->drop)) {
        RecordLocked(FaultKind::kDrop, src, dst);
        return;
      }
      if (spec->corrupt > 0.0 && rng.Chance(spec->corrupt)) {
        message = CorruptCopy(message, rng);
        RecordLocked(FaultKind::kCorrupt, src, dst);
      }
      if (spec->duplicate > 0.0 && rng.Chance(spec->duplicate)) {
        duplicate = true;
        RecordLocked(FaultKind::kDuplicate, src, dst);
      }
      if (spec->delay > 0 || spec->delay_jitter > 0) {
        hold = spec->delay + (spec->delay_jitter > 0 ? rng.Below(spec->delay_jitter) : 0);
        if (hold > 0) {
          RecordLocked(FaultKind::kDelay, src, dst);
        }
      }
      if (spec->reorder > 0.0 && rng.Chance(spec->reorder)) {
        // Hold this datagram back a full window while subsequent sends pass through
        // immediately: the arrival order inverts without any datagram being lost.
        hold += spec->reorder_window;
        RecordLocked(FaultKind::kReorder, src, dst);
      }
    }
  }
  if (hold > 0) {
    if (duplicate) {
      ScheduleDelivery(dst, message, hold);
    }
    ScheduleDelivery(dst, std::move(message), hold);
    return;
  }
  if (duplicate) {
    // The copy takes the wire path too; refcounting makes the second send byte-identical.
    inner_->Send(src, dst, message);
  }
  inner_->Send(src, dst, std::move(message));
}

// ---- Held-back delivery ----------------------------------------------------------------

void FaultTransport::ScheduleDelivery(NodeId dst, MsgBuffer message, SimTime hold) {
  {
    MutexLock lock(delay_mu_);
    if (delay_stop_) {
      return;
    }
    if (!delay_thread_.joinable()) {
      delay_thread_ = std::thread([this]() { DelayLoop(); });
    }
    held_.push(Pending{std::chrono::steady_clock::now() + std::chrono::nanoseconds(hold),
                       next_tie_++, dst, std::move(message)});
  }
  delay_cv_.NotifyOne();
}

// bft-lint: delayed-delivery-context — runs on the delay thread; inner_->Send is forbidden
// here (io_uring's single-issuer contract restricts it to the source node's loop thread).
void FaultTransport::DeliverDirect(NodeId dst, MsgBuffer message) {
  ReaderMutexLock lock(sinks_mu_);
  auto it = sinks_.find(dst);
  if (it != sinks_.end()) {
    it->second->EnqueueMessage(std::move(message));  // MessageSink is thread-safe by contract
  }
}

// bft-lint: delayed-delivery-context
void FaultTransport::DelayLoop() {
  MutexLock lock(delay_mu_);
  while (true) {
    if (delay_stop_) {
      return;
    }
    if (held_.empty()) {
      delay_cv_.Wait(delay_mu_);
      continue;
    }
    auto due = held_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      delay_cv_.WaitUntil(delay_mu_, due);
      continue;
    }
    Pending p = std::move(const_cast<Pending&>(held_.top()));
    held_.pop();
    lock.Unlock();
    DeliverDirect(p.dst, std::move(p.message));
    lock.Lock();
  }
}

}  // namespace bft

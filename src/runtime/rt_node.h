// Real-clock Endpoint: an event-loop thread per node.
//
// The loop serializes everything the automaton sees — received messages, timer callbacks,
// and posted tasks all run on the node's own thread, preserving the core's single-threaded
// execution contract. Timers fire on the monotonic clock; sends go to a Transport (loopback
// UDP or in-process channel). When the transport exposes a pollable receive fd (UDP), the
// loop owns the socket too: it parks in ppoll over {eventfd, socket} and drains datagrams on
// its own thread, so receive costs no cross-thread handoff; transports without an fd
// (in-process) enqueue from the sender's thread and wake the eventfd. The CpuMeter still
// accumulates the costs the core charges (crypto, execution) for observability, but charges
// never delay real execution, and the simulator's modelled per-message network CPU costs are
// not charged here — real syscalls cost real time instead.
#ifndef SRC_RUNTIME_RT_NODE_H_
#define SRC_RUNTIME_RT_NODE_H_

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "src/common/thread_annotations.h"
#include "src/core/endpoint.h"
#include "src/runtime/transport.h"

namespace bft {

class RtNode final : public Endpoint, public MessageSink {
 public:
  // Registers with `transport` immediately (messages may queue before the loop starts).
  RtNode(NodeId id, Transport* transport, uint64_t seed);
  ~RtNode() override;

  // Launches the event-loop thread. Handlers and timers set before Start() are honored; the
  // harness constructs the whole cluster, then starts every node.
  void Start();
  // Stops and joins the loop thread; pending work is dropped. Idempotent.
  void Stop();

  // Runs `fn` on the loop thread (no CPU-meter bracketing). The harness's door into the
  // node: e.g. posting Client::Invoke so it runs on the client's own thread. Returns false
  // — and drops nothing silently — if the loop has been stopped.
  bool Post(std::function<void()> fn);

  // MessageSink (called from transport threads).
  void EnqueueMessage(MsgBuffer message) override;

  // --- Endpoint ----------------------------------------------------------------------------
  SimTime Now() const override;
  CpuMeter& cpu() override { return cpu_; }
  Rng& rng() override { return rng_; }
  void Send(NodeId dst, MsgBuffer msg) override;
  void Multicast(const std::vector<NodeId>& dsts, const MsgBuffer& msg) override;
  TimerId SetTimer(SimTime delay, std::function<void()> fn) override;
  TimerId SetPeriodicTimer(SimTime period, std::function<void()> fn) override;
  void CancelTimer(TimerId id) override;
  bool ResetTimer(TimerId id, SimTime delay) override;
  void CancelAllTimers() override;
  // Unregisters from the transport and joins the loop thread: after Close() no callback
  // runs, so the owning automaton's state may be destroyed.
  void Close() override;
  void Detach() override;
  void Reattach() override;
  bool attached() const override;

 private:
  // Mailbox cap: a real socket buffer drops under overload; so do we, instead of growing
  // without bound when a peer sends faster than handlers drain.
  static constexpr size_t kMaxInbox = 4096;

  // Deadline sentinel for a periodic timer whose handler is currently running (it is not on
  // the schedule; re-armed when the handler returns unless cancelled or reset meanwhile).
  static constexpr SimTime kFiring = ~SimTime{0};

  struct Timer {
    SimTime deadline = 0;
    SimTime period = 0;  // 0 = one-shot
    std::function<void()> fn;
  };

  void Loop();
  TimerId ArmLocked(SimTime delay, SimTime period, std::function<void()> fn) BFT_REQUIRES(mu_);
  // Wakes a parked loop. Called with mu_ held; a syscall happens only when the loop is (or
  // is about to be) inside ppoll.
  void WakeLocked() BFT_REQUIRES(mu_);

  Transport* transport_;
  CpuMeter cpu_;
  Rng rng_;
  const std::chrono::steady_clock::time_point epoch_;
  const int wake_fd_;  // eventfd: producers' doorbell into the loop's ppoll

  mutable Mutex mu_;
  bool started_ BFT_GUARDED_BY(mu_) = false;
  bool stop_ BFT_GUARDED_BY(mu_) = false;
  bool attached_ BFT_GUARDED_BY(mu_) = true;
  // Loop is (about to be) parked in ppoll; producers must ring.
  bool sleeping_ BFT_GUARDED_BY(mu_) = false;
  std::deque<MsgBuffer> inbox_ BFT_GUARDED_BY(mu_);
  std::deque<std::function<void()>> tasks_ BFT_GUARDED_BY(mu_);
  TimerId next_timer_ BFT_GUARDED_BY(mu_) = 1;
  std::map<TimerId, Timer> timers_ BFT_GUARDED_BY(mu_);
  // (deadline, id), earliest first.
  std::set<std::pair<SimTime, TimerId>> schedule_ BFT_GUARDED_BY(mu_);
  // Written by Start() under mu_; joined by Stop() unlocked (joining under mu_ would deadlock
  // against the loop). The started_ flag is the handshake that keeps the two from racing.
  std::thread thread_;
};

}  // namespace bft

#endif  // SRC_RUNTIME_RT_NODE_H_

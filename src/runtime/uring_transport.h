// io_uring loopback transport: same wire semantics as UdpTransport (one real datagram
// socket per node, no framing, no sender identity), with the syscall economics inverted.
//
// Where the ppoll+recvmmsg/sendmmsg loop pays one or more syscalls per protocol event, each
// node here owns an io_uring instance whose completion queue the event loop polls like a
// socket (ReceiveFd returns the ring fd):
//
//   - receive: one multishot IORING_OP_RECV stays armed across datagrams, filling buffers
//     from a registered provided-buffer ring — datagrams arrive as completions with no
//     per-datagram syscall at all;
//   - send: Send() only *stages* an IORING_OP_SENDMSG entry; the loop's end-of-iteration
//     Park(src) submits every staged send in one io_uring_enter — the formation layer's
//     packed datagrams plus any passthrough fan-out ride a single syscall;
//   - park: the same io_uring_enter (GETEVENTS + EXT_ARG timeout) is also where the loop
//     sleeps — the doorbell eventfd is watched by a POLL_ADD on the ring, so the entire
//     idle cycle (emit staged sends, wait for datagram/doorbell/timer) is one syscall where
//     the ppoll loop pays enter + ppoll + recvmmsg.
//
// Built only when <linux/io_uring.h> is available (BFT_HAVE_IO_URING); Supported() probes
// the running kernel (setup + opcode probe + buffer-ring registration) so callers can fall
// back to UdpTransport on older kernels or seccomp-restricted containers. The contract on
// per-source calls matches the rest of the runtime: Send(src, ...) / Flush(src) / Drain(src)
// are only invoked from src's own loop thread, so each ring is single-issuer by design.
#ifndef SRC_RUNTIME_URING_TRANSPORT_H_
#define SRC_RUNTIME_URING_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/runtime/transport.h"

namespace bft {

class IoUringTransport final : public Transport {
 public:
  // True when the binary was built with io_uring support AND the running kernel passes the
  // feature probe (multishot recv + provided buffer rings). Memoized; never throws.
  static bool Supported();

  // Callers check Supported() first (RtCluster falls back to UdpTransport); constructing
  // without support fails fast.
  IoUringTransport();
  ~IoUringTransport() override;

  IoUringTransport(const IoUringTransport&) = delete;
  IoUringTransport& operator=(const IoUringTransport&) = delete;

  void Register(NodeId id, MessageSink* sink) override;
  void Unregister(NodeId id) override;
  void Send(NodeId src, NodeId dst, MsgBuffer message) override;
  // Inherited Multicast (per-destination Send) is already right here: every staged send
  // shares the one refcounted buffer, and Flush turns the whole fan-out into one submit.
  void Flush(NodeId src) override;
  int ReceiveFd(NodeId id) const override;
  void Drain(NodeId id) override;
  // EXCLUDES(mu_) is the PR-8 deadlock, machine-checked: Park blocks in io_uring_enter and
  // must never do so holding the node-table lock, or a concurrent Unregister (which takes it
  // exclusively) wedges behind a loop sleeping with no deadline.
  int Park(NodeId src, int doorbell_fd, SimTime wait_ns) override BFT_EXCLUDES(mu_);
  void InstallMetrics(MetricsRegistry* registry) override;

  // Bound loopback port of a registered node (0 if unknown). For logs and debugging.
  uint16_t PortOf(NodeId id) const;

 private:
  struct Node;  // ring, socket, buffer ring, send slots — defined in the .cc

  void SubmitLocked(Node& node) BFT_REQUIRES_SHARED(mu_);
  void ReapLocked(Node& node) BFT_REQUIRES_SHARED(mu_);

  // Same locking discipline as UdpTransport: per-node operations share the lock (each ring
  // is touched by one loop thread), Register/Unregister take it exclusively so teardown
  // never races an in-flight submit or reap. Exception: Park releases the lock before its
  // blocking io_uring_enter — a loop sleeping with no deadline must not stall another
  // node's Unregister (runtime crash/restart unregisters while the rest of the cluster,
  // including an idle client, stays parked).
  mutable SharedMutex mu_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_ BFT_GUARDED_BY(mu_);

  struct Obs {
    Counter* datagrams_sent = nullptr;
    Counter* bytes_sent = nullptr;
    Counter* datagrams_received = nullptr;
    Counter* bytes_received = nullptr;
    Counter* eintr_retries = nullptr;
    Counter* oversize_errors = nullptr;
    Counter* send_drops = nullptr;
    Counter* fallback_sends = nullptr;  // staged path unavailable; plain sendto used
    Histogram* submit_batch = nullptr;  // sends per io_uring_enter
  };
  Obs obs_;
};

}  // namespace bft

#endif  // SRC_RUNTIME_URING_TRANSPORT_H_

// Real-clock harness: a replica group plus clients, each on its own event-loop thread,
// joined by a Transport (loopback UDP sockets or the in-process channel).
//
// The runtime mirror of workload/Cluster. Construction wires every node (key directory,
// services, handlers) single-threaded; Start() then launches all loops at once. Execute()
// posts the operation onto the client's own loop and blocks the calling thread until the
// reply certificate completes or the real-time timeout passes.
#ifndef SRC_RUNTIME_RT_CLUSTER_H_
#define SRC_RUNTIME_RT_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/client.h"
#include "src/core/replica.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/formation.h"
#include "src/runtime/inproc_transport.h"
#include "src/runtime/rt_node.h"
#include "src/runtime/udp_transport.h"
#include "src/runtime/uring_transport.h"

namespace bft {

struct RtClusterOptions {
  ReplicaConfig config;
  PerfModel model;  // drives CpuMeter bookkeeping only; nothing delays real execution
  uint64_t seed = 42;
  // kUring falls back to kUdp at construction when the binary or the running kernel lacks
  // io_uring support (IoUringTransport::Supported()); a warning goes to stderr.
  enum class TransportKind { kInProc, kUdp, kUring };
  TransportKind transport = TransportKind::kInProc;
  // Wrap the backend in the datagram-formation layer: protocol messages to the same
  // destination coalesce into one framed datagram per event-loop iteration. Orthogonal to
  // the backend choice; pointless (but harmless) over kInProc, which has no syscalls to save.
  bool formation = false;
};

class RtCluster {
 public:
  using RtServiceFactory = std::function<std::unique_ptr<Service>(NodeId replica)>;

  RtCluster(RtClusterOptions options, RtServiceFactory factory);
  ~RtCluster();  // stops all loops

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  // Clients must be added before Start(): key distribution is a construction-time ceremony
  // (as in the paper's setup phase), not a runtime protocol.
  Client* AddClient();

  // Launches every node's event loop. Call once, after all AddClient() calls.
  void Start();
  // Stops and joins every loop. After Stop() returns, replica state may be read directly.
  void Stop();

  // Synchronously executes one operation; `timeout` is real time.
  std::optional<Bytes> Execute(Client* client, Bytes op, bool read_only = false,
                               SimTime timeout = 10 * kSecond);

  // Runs `fn` on `replica(i)`'s loop thread and waits for it — the safe way to inspect live
  // replica state from the harness thread.
  void RunOn(int i, std::function<void()> fn);

  Replica* replica(int i) { return replicas_[static_cast<size_t>(i)].get(); }
  int num_replicas() const { return options_.config.n; }
  Client* client(size_t i) { return clients_[i].get(); }
  size_t num_clients() const { return clients_.size(); }
  Transport& transport() { return *transport_; }
  const ReplicaConfig& config() const { return options_.config; }

  // Harness-owned observability (see workload/Cluster). Thread-safe: instruments are
  // atomics, the tracer locks internally, so loop threads record while the harness exports.
  MetricsRegistry& metrics() { return metrics_; }
  RequestTracer& tracer() { return tracer_; }

 private:
  RtNode* NodeOf(const Client* client);

  RtClusterOptions options_;
  // Destroyed after the replicas/clients/transport whose instruments point into it.
  MetricsRegistry metrics_;
  RequestTracer tracer_;
  std::unique_ptr<Transport> transport_;
  PublicKeyDirectory directory_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<RtNode*> replica_nodes_;  // borrowed from replicas_' endpoints
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<RtNode*> client_nodes_;   // borrowed from clients_' endpoints
  NodeId next_client_id_ = kClientIdBase;
  bool started_ = false;
};

}  // namespace bft

#endif  // SRC_RUNTIME_RT_CLUSTER_H_

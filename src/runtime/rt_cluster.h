// Real-clock harness: a replica group plus clients, each on its own event-loop thread,
// joined by a Transport (loopback UDP sockets or the in-process channel).
//
// The runtime mirror of workload/Cluster. Construction wires every node (key directory,
// services, handlers) single-threaded; Start() then launches all loops at once. Execute()
// posts the operation onto the client's own loop and blocks the calling thread until the
// reply certificate completes or the real-time timeout passes.
#ifndef SRC_RUNTIME_RT_CLUSTER_H_
#define SRC_RUNTIME_RT_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/client.h"
#include "src/core/replica.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/fault_transport.h"
#include "src/runtime/formation.h"
#include "src/runtime/inproc_transport.h"
#include "src/runtime/rt_node.h"
#include "src/runtime/udp_transport.h"
#include "src/runtime/uring_transport.h"

namespace bft {

struct RtClusterOptions {
  ReplicaConfig config;
  PerfModel model;  // drives CpuMeter bookkeeping only; nothing delays real execution
  uint64_t seed = 42;
  // kUring falls back to kUdp at construction when the binary or the running kernel lacks
  // io_uring support (IoUringTransport::Supported()); a warning goes to stderr.
  enum class TransportKind { kInProc, kUdp, kUring };
  TransportKind transport = TransportKind::kInProc;
  // Wrap the backend in the datagram-formation layer: protocol messages to the same
  // destination coalesce into one framed datagram per event-loop iteration. Orthogonal to
  // the backend choice; pointless (but harmless) over kInProc, which has no syscalls to save.
  bool formation = false;
  // Seed for the fault-injection schedule (see FaultTransport). 0 derives one from `seed`,
  // so deterministic tests can pin the fault stream independently of node RNGs.
  uint64_t fault_seed = 0;
};

class RtCluster {
 public:
  using RtServiceFactory = std::function<std::unique_ptr<Service>(NodeId replica)>;

  RtCluster(RtClusterOptions options, RtServiceFactory factory);
  ~RtCluster();  // stops all loops

  RtCluster(const RtCluster&) = delete;
  RtCluster& operator=(const RtCluster&) = delete;

  // Clients must be added before Start(): key distribution is a construction-time ceremony
  // (as in the paper's setup phase), not a runtime protocol.
  Client* AddClient();

  // Launches every node's event loop. Call once, after all AddClient() calls.
  void Start();
  // Stops and joins every loop. After Stop() returns, replica state may be read directly.
  void Stop();

  // Synchronously executes one operation; `timeout` is real time.
  std::optional<Bytes> Execute(Client* client, Bytes op, bool read_only = false,
                               SimTime timeout = 10 * kSecond);

  // Runs `fn` on `replica(i)`'s loop thread and waits for it — the safe way to inspect live
  // replica state from the harness thread. No-op while replica `i` is crashed.
  void RunOn(int i, std::function<void()> fn);

  // --- Crash / restart (real fail-stop faults) ----------------------------------------------
  // Tears replica `i` down completely: its event loop stops, it unregisters from the
  // transport, and every piece of volatile state — message log, view, checkpoints, service
  // state — is destroyed. In-flight datagrams to it drop, exactly like a machine losing
  // power. Safe to call from the harness thread while the cluster runs; idempotent.
  void CrashReplica(int i);
  // Brings a crashed replica back with a fresh endpoint and empty state, as if rebooted from
  // a blank disk. It rejoins through the paper's protocol: status exchange reveals the
  // current view and stable checkpoint, and state transfer (§4.6) fetches the service state.
  // The same node id and key seed are reused, so session keys re-derive identically.
  void RestartReplica(int i);
  bool replica_running(int i) const {
    return replica_nodes_[static_cast<size_t>(i)] != nullptr;
  }

  // Fault-injection control. Always present in the transport stack (disabled injection is a
  // relaxed atomic load per send); sits under the formation layer so faults hit whole wire
  // datagrams — a corrupt burst exercises the framing decoder, as real bit rot would.
  FaultTransport& faults() { return *fault_; }

  // Null while replica `i` is crashed.
  Replica* replica(int i) { return replicas_[static_cast<size_t>(i)].get(); }
  int num_replicas() const { return options_.config.n; }
  Client* client(size_t i) { return clients_[i].get(); }
  size_t num_clients() const { return clients_.size(); }
  Transport& transport() { return *transport_; }
  const ReplicaConfig& config() const { return options_.config; }

  // Harness-owned observability (see workload/Cluster). Thread-safe: instruments are
  // atomics, the tracer locks internally, so loop threads record while the harness exports.
  MetricsRegistry& metrics() { return metrics_; }
  RequestTracer& tracer() { return tracer_; }

  // The /healthz document: each live replica's row is collected ON its loop thread (RunOn),
  // crashed replicas report running=false. Callable from any thread that is not itself
  // concurrently crashing/restarting replicas — the AdminServer accept thread qualifies,
  // since harness threads block on their HTTP request while this runs.
  HealthSnapshot Health();

 private:
  RtNode* NodeOf(const Client* client);

  RtClusterOptions options_;
  RtServiceFactory factory_;  // kept for RestartReplica
  // Destroyed after the replicas/clients/transport whose instruments point into it.
  MetricsRegistry metrics_;
  RequestTracer tracer_;
  std::unique_ptr<Transport> transport_;
  FaultTransport* fault_ = nullptr;  // borrowed from the transport_ stack
  PublicKeyDirectory directory_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<RtNode*> replica_nodes_;  // borrowed from replicas_' endpoints
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<RtNode*> client_nodes_;   // borrowed from clients_' endpoints
  NodeId next_client_id_ = kClientIdBase;
  bool started_ = false;
};

}  // namespace bft

#endif  // SRC_RUNTIME_RT_CLUSTER_H_

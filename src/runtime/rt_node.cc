#include "src/runtime/rt_node.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/logging.h"

namespace bft {

namespace {
// One epoch for the whole process: every RtNode's Now() counts nanoseconds from the same
// instant, so trace stamps taken on different loop threads (client dispatch on one node,
// execution on another) are directly comparable — per-node epochs would skew each phase by
// the nodes' construction-time offsets.
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

RtNode::RtNode(NodeId id, Transport* transport, uint64_t seed)
    : Endpoint(id),
      transport_(transport),
      rng_(seed ^ (id * 0xa0761d6478bd642fULL)),
      epoch_(ProcessEpoch()),
      wake_fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  if (wake_fd_ < 0) {
    // Without the doorbell the loop could sleep through every posted task and timer change;
    // fail fast rather than debugging a silently wedged cluster.
    std::perror("RtNode: eventfd");
    std::abort();
  }
  transport_->Register(id, this);
}

RtNode::~RtNode() {
  Close();
  ::close(wake_fd_);
}

void RtNode::Close() {
  // Order matters: a loop parked inside the transport (Park waits in the kernel holding the
  // transport's shared state) must be woken and joined before Unregister tears that state
  // down — Stop's doorbell does exactly that. Deliveries that land between the join and
  // Unregister just sit in the mutex-guarded inbox of a loop that will never run again.
  // Both steps are idempotent — the destructor re-runs them harmlessly after an explicit
  // Close().
  Stop();
  transport_->Unregister(id());
}

void RtNode::Start() {
  MutexLock lock(mu_);
  if (started_) {
    return;
  }
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this]() { Loop(); });
}

void RtNode::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_) {
      return;
    }
    stop_ = true;
    WakeLocked();
  }
  thread_.join();
  MutexLock lock(mu_);
  started_ = false;
}

void RtNode::WakeLocked() {
  if (!sleeping_) {
    return;  // the loop is running and will re-scan its queues before parking
  }
  uint64_t one = 1;
  // The eventfd is a saturating counter; a full buffer already means "awake", so a failed
  // write needs no handling.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool RtNode::Post(std::function<void()> fn) {
  MutexLock lock(mu_);
  if (stop_) {
    return false;  // the loop is (being) stopped and would silently drop the task
  }
  tasks_.push_back(std::move(fn));
  WakeLocked();
  return true;
}

void RtNode::EnqueueMessage(MsgBuffer message) {
  MutexLock lock(mu_);
  if (!attached_) {
    return;  // detached: the wire drops everything addressed to us
  }
  if (inbox_.size() >= kMaxInbox) {
    return;  // mailbox full: drop, exactly like a UDP socket buffer under overload
  }
  inbox_.push_back(std::move(message));
  // A futex/eventfd wake per datagram dominates small-message receive cost under load;
  // WakeLocked rings only when the loop is actually parked.
  WakeLocked();
}

SimTime RtNode::Now() const {
  return static_cast<SimTime>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - epoch_)
                                  .count());
}

void RtNode::Send(NodeId dst, MsgBuffer msg) { transport_->Send(id(), dst, std::move(msg)); }

void RtNode::Multicast(const std::vector<NodeId>& dsts, const MsgBuffer& msg) {
  // One encoding, one transport fan-out: the payload is never copied, and a batching
  // transport turns the whole multicast into a single syscall / lock acquisition.
  transport_->Multicast(id(), dsts, msg);
}

Endpoint::TimerId RtNode::ArmLocked(SimTime delay, SimTime period, std::function<void()> fn) {
  TimerId id = next_timer_++;
  SimTime deadline = Now() + delay;
  timers_.emplace(id, Timer{deadline, period, std::move(fn)});
  schedule_.emplace(deadline, id);
  return id;
}

Endpoint::TimerId RtNode::SetTimer(SimTime delay, std::function<void()> fn) {
  MutexLock lock(mu_);
  TimerId id = ArmLocked(delay, 0, std::move(fn));
  WakeLocked();  // the new deadline may be earlier than the one the loop sleeps toward
  return id;
}

Endpoint::TimerId RtNode::SetPeriodicTimer(SimTime period, std::function<void()> fn) {
  MutexLock lock(mu_);
  TimerId id = ArmLocked(period, period, std::move(fn));
  WakeLocked();
  return id;
}

void RtNode::CancelTimer(TimerId id) {
  MutexLock lock(mu_);
  auto it = timers_.find(id);
  if (it == timers_.end()) {
    return;
  }
  schedule_.erase({it->second.deadline, id});
  timers_.erase(it);
}

bool RtNode::ResetTimer(TimerId id, SimTime delay) {
  MutexLock lock(mu_);
  auto it = timers_.find(id);
  if (it == timers_.end()) {
    return false;
  }
  schedule_.erase({it->second.deadline, id});
  it->second.deadline = Now() + delay;
  schedule_.emplace(it->second.deadline, id);
  WakeLocked();
  return true;
}

void RtNode::CancelAllTimers() {
  MutexLock lock(mu_);
  timers_.clear();
  schedule_.clear();
}

void RtNode::Detach() {
  MutexLock lock(mu_);
  attached_ = false;
  inbox_.clear();  // in-flight deliveries are dropped, like a sim-network unregister
}

void RtNode::Reattach() {
  MutexLock lock(mu_);
  attached_ = true;
}

bool RtNode::attached() const {
  MutexLock lock(mu_);
  return attached_;
}

void RtNode::Loop() {
  SetThreadLogPrefix("n" + std::to_string(id()));
  MutexLock lock(mu_);
  while (true) {
    if (stop_) {
      // Post()'s contract is run-or-reject, never silently drop: once stop_ is set no new
      // task enqueues, so draining here guarantees every accepted task executes and a
      // harness blocked on its rendezvous (RtCluster::RunOn) always wakes.
      while (!tasks_.empty()) {
        std::function<void()> task = std::move(tasks_.front());
        tasks_.pop_front();
        lock.Unlock();
        task();
        lock.Lock();
      }
      return;
    }
    // 1. Due timers run before messages: a peer flooding the mailbox must not be able to
    // starve the view-change and retry timers — those exist precisely for such peers. The
    // entry is taken off the schedule before the callback runs so the handler can freely
    // set, reset, or cancel timers — including its own id; a periodic timer re-arms *after*
    // its handler returns (deadline measured then), so even a handler slower than its period
    // yields to messages between firings rather than livelocking the loop.
    if (!schedule_.empty() && schedule_.begin()->first <= Now()) {
      TimerId id = schedule_.begin()->second;
      schedule_.erase(schedule_.begin());
      auto it = timers_.find(id);
      std::function<void()> fn = it->second.fn;
      SimTime period = it->second.period;
      if (period == 0) {
        timers_.erase(it);
      } else {
        it->second.deadline = kFiring;  // firing: off the schedule until the handler returns
      }
      lock.Unlock();
      cpu_.BeginEvent(Now());
      fn();
      cpu_.EndEvent();
      lock.Lock();
      if (period != 0) {
        // Re-arm unless the handler cancelled the timer or reset it to a new deadline.
        auto again = timers_.find(id);
        if (again != timers_.end() && again->second.deadline == kFiring) {
          again->second.deadline = Now() + period;
          schedule_.emplace(again->second.deadline, id);
        }
      }
      continue;
    }
    // 2. Posted tasks (harness work such as Client::Invoke) run before messages: posts are
    // rare and finite, while a sustained inbound stream could otherwise starve them and hang
    // a harness waiting on RunOn's rendezvous.
    if (!tasks_.empty()) {
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.Unlock();
      task();
      lock.Lock();
      continue;
    }
    // 3. Messages, in arrival order.
    if (!inbox_.empty()) {
      MsgBuffer message = std::move(inbox_.front());
      inbox_.pop_front();
      lock.Unlock();
      cpu_.BeginEvent(Now());
      Dispatch(std::move(message));
      cpu_.EndEvent();
      lock.Lock();
      continue;
    }
    // 4. Nothing runnable: flush the transport, then park until the next timer deadline.
    // The flush is the formation layer's trigger — it emits whatever the handlers above
    // packed this iteration; it runs after sleeping_ is set (a reply racing back before the
    // park still rings the doorbell, which is level-readable, so the wakeup is never lost)
    // and outside mu_ (an in-process delivery to a peer must not nest our lock under the
    // transport's).
    sleeping_ = true;
    SimTime wait_ns = Transport::kParkNoDeadline;
    if (!schedule_.empty()) {
      SimTime now = Now();
      wait_ns = schedule_.begin()->first > now ? schedule_.begin()->first - now : 0;
    }
    lock.Unlock();
    transport_->Flush(id());
    // A transport with a combined submit-and-wait (io_uring) parks the whole iteration in
    // one syscall: staged sends submit, and the wake (datagram completion, doorbell, or
    // timeout) arrives through the same ring. Deliveries then happen in Drain below, after
    // sleeping_ clears, so our own enqueues never write the eventfd.
    int parked = transport_->Park(id(), wake_fd_, wait_ns);
    if (parked >= 0) {
      if ((parked & Transport::kParkDoorbell) != 0) {
        uint64_t drained;
        [[maybe_unused]] ssize_t n = ::read(wake_fd_, &drained, sizeof(drained));
      }
      lock.Lock();
      sleeping_ = false;
      lock.Unlock();
      transport_->Drain(id());
      lock.Lock();
      continue;
    }
    // Fallback: ppoll over the doorbell eventfd and (if the transport is loop-driven, e.g.
    // UDP) the receive socket.
    pollfd fds[2];
    fds[0] = {wake_fd_, POLLIN, 0};
    nfds_t nfds = 1;
    int recv_fd = transport_->ReceiveFd(id());
    if (recv_fd >= 0) {
      fds[1] = {recv_fd, POLLIN, 0};
      nfds = 2;
    }
    timespec ts;
    timespec* timeout = nullptr;
    if (wait_ns != Transport::kParkNoDeadline) {
      ts.tv_sec = static_cast<time_t>(wait_ns / 1000000000);
      ts.tv_nsec = static_cast<long>(wait_ns % 1000000000);
      timeout = &ts;
    }
    int ready = ::ppoll(fds, nfds, timeout, nullptr);
    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      uint64_t drained;
      [[maybe_unused]] ssize_t n = ::read(wake_fd_, &drained, sizeof(drained));
    }
    lock.Lock();
    sleeping_ = false;  // cleared before Drain so our own enqueues skip the doorbell
    if (ready > 0 && nfds == 2 && (fds[1].revents & POLLIN) != 0) {
      // Datagrams flow straight into our inbox on this thread — no reader-thread handoff.
      lock.Unlock();
      transport_->Drain(id());
      lock.Lock();
    }
  }
}

}  // namespace bft

// Formation layer: coalesces protocol messages per destination per event-loop iteration.
//
// The real-clock loop is wakeup/syscall-bound, not compute-bound: every prepare, commit,
// and reply is its own datagram, its own sendto, and its own receiver wakeup. Formation
// (after motr's rpc/formation.c item-packing policy) sits behind the Transport seam and
// batches by *time*, not by count: Send/Multicast only queue, and the owning event loop
// calls Flush(src) the moment it runs out of work — so an idle node's message leaves in the
// same loop iteration it was produced (no added latency), while a loaded node's burst of
// prepares/commits/replies to the same peer leaves as ONE framed datagram (packing emerges
// exactly when there is something to pack).
//
// Wire format of a formed datagram:
//
//   magic   u8[4]  = { 0xBF, 'F', 'R', 'M' }   (0xBF exceeds every protocol message tag,
//                                               so a formed datagram can never be confused
//                                               with a bare encoded message)
//   frame   u32 length (LE, >= 1) + payload     repeated 1..N times
//
// Flush keeps two fast paths byte-identical to the unformed transport: a destination with
// exactly one queued frame gets the original buffer unframed (refcount share, no copy), and
// an iteration whose only output is one multicast passes straight through to the inner
// transport's fan-out (one sendmmsg from one shared buffer, as before).
//
// The receive-side decoder is strict and fuzz-tolerant: frames are validated one at a time,
// a truncated or garbage tail drops only itself (valid leading frames are still delivered as
// zero-copy slices of the datagram), and a bare datagram that merely fails the magic check
// passes through untouched — Byzantine senders gain nothing they could not already do.
#ifndef SRC_RUNTIME_FORMATION_H_
#define SRC_RUNTIME_FORMATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/serializer.h"
#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/runtime/transport.h"

namespace bft {

// --- Wire format ----------------------------------------------------------------------------

inline constexpr uint8_t kFormationMagic[4] = {0xBF, 'F', 'R', 'M'};
inline constexpr size_t kFormationHeaderSize = 4;   // magic
inline constexpr size_t kFrameHeaderSize = 4;       // u32 little-endian payload length

bool IsFormedDatagram(ByteView datagram);

// Starts a formed datagram / appends one length-prefixed frame.
void BeginFormedDatagram(Writer& w);
void AppendFormedFrame(Writer& w, ByteView frame);

struct FrameSplitResult {
  size_t frames = 0;    // valid frames delivered
  bool formed = false;  // the magic matched (false: deliver the datagram as a bare message)
  bool ok = false;      // formed and every byte belonged to a valid frame
};

// Invokes `fn` once per valid frame, each a zero-copy slice sharing the datagram's storage.
// Returns {0, false} without calling `fn` when the magic is absent (caller delivers the
// datagram as a bare message). A malformed tail ends decoding but keeps the leading frames.
FrameSplitResult SplitFormedDatagram(const MsgBuffer& datagram,
                                     const std::function<void(MsgBuffer)>& fn);

// --- Transport decorator --------------------------------------------------------------------

struct FormationOptions {
  // Largest datagram handed to the inner transport (loopback UDP's practical ceiling).
  size_t max_datagram = 65507;
  // Eager-flush threshold: a destination whose queue reaches this many frames is sent
  // immediately, bounding the extra latency a never-idle loop could otherwise add.
  size_t max_frames = 64;
};

class FormationTransport final : public Transport {
 public:
  explicit FormationTransport(std::unique_ptr<Transport> inner, FormationOptions options = {});
  ~FormationTransport() override;

  FormationTransport(const FormationTransport&) = delete;
  FormationTransport& operator=(const FormationTransport&) = delete;

  void Register(NodeId id, MessageSink* sink) override;
  void Unregister(NodeId id) override;
  void Send(NodeId src, NodeId dst, MsgBuffer message) override;
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& message) override;
  void Flush(NodeId src) override;
  int ReceiveFd(NodeId id) const override;
  void Drain(NodeId id) override;
  // Formation has nothing left queued by the time the loop parks (Flush just emitted it);
  // the combined submit-and-wait is purely the backend's.
  int Park(NodeId src, int doorbell_fd, SimTime wait_ns) override {
    return inner_->Park(src, doorbell_fd, wait_ns);
  }
  void InstallMetrics(MetricsRegistry* registry) override;

  // The wrapped backend (for harness introspection, e.g. UdpTransport::PortOf).
  Transport* inner() { return inner_.get(); }

 private:
  // Queued output of one source node. Touched only by that node's loop thread (under the
  // shared lock, which serializes against Register/Unregister only).
  struct PerDst {
    std::vector<MsgBuffer> frames;
    size_t wire_bytes = kFormationHeaderSize;  // size of the datagram these frames would form
  };
  struct PendingMulticast {
    std::vector<NodeId> dsts;
    MsgBuffer message;
  };
  struct SourceState {
    std::map<NodeId, PerDst> queues;  // entries persist across flushes; empty ones are skipped
    std::vector<PendingMulticast> multicasts;
  };

  // Decodes formed datagrams into per-frame slices before the real sink sees them.
  class SplitSink;

  // All private helpers run with mu_ held (shared) by the calling loop thread. SHARED
  // suffices for mutation because each SourceState is single-writer (only src's own loop
  // thread touches it); the lock only serializes against Register/Unregister reshaping the
  // maps, exactly like the backend transports' node tables.
  void AppendFrameLocked(NodeId src, SourceState& state, NodeId dst, const MsgBuffer& message,
                         Counter* flush_reason) BFT_REQUIRES_SHARED(mu_);
  void FoldMulticastsLocked(NodeId src, SourceState& state) BFT_REQUIRES_SHARED(mu_);
  void EmitQueueLocked(NodeId src, NodeId dst, PerDst& queue, Counter* flush_reason)
      BFT_REQUIRES_SHARED(mu_);

  std::unique_ptr<Transport> inner_;
  const FormationOptions options_;

  mutable SharedMutex mu_;
  std::map<NodeId, std::unique_ptr<SourceState>> states_ BFT_GUARDED_BY(mu_);
  std::map<NodeId, std::unique_ptr<SplitSink>> sinks_ BFT_GUARDED_BY(mu_);

  struct Obs {
    Histogram* frames_per_datagram = nullptr;  // every emitted datagram, passthroughs as 1
    Counter* packed_messages = nullptr;        // messages that left inside a multi-frame datagram
    Counter* flush_idle = nullptr;             // datagrams emitted by the idle-loop Flush
    Counter* flush_size = nullptr;             // ...by the max_datagram budget
    Counter* flush_frames = nullptr;           // ...by the max_frames cap
    Counter* passthrough_multicast = nullptr;  // idle multicasts handed to the inner fan-out
    Counter* decode_errors = nullptr;          // malformed frames/tails on the receive side
  };
  Obs obs_;
};

}  // namespace bft

#endif  // SRC_RUNTIME_FORMATION_H_

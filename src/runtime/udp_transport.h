// Loopback UDP transport: one real datagram socket per registered node.
//
// Each node binds 127.0.0.1:0 (the kernel picks a free port, so parallel test runs never
// collide) and a reader thread pumps received datagrams into the node's mailbox. Send() is a
// plain sendto() on the source node's socket; the wire format is exactly the encoded protocol
// message — no framing, no sender identity — matching the paper's deployment where receivers
// authenticate via MACs/signatures, never via the channel.
#ifndef SRC_RUNTIME_UDP_TRANSPORT_H_
#define SRC_RUNTIME_UDP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <thread>

#include "src/runtime/transport.h"

namespace bft {

class UdpTransport final : public Transport {
 public:
  UdpTransport() = default;
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  void Register(NodeId id, MessageSink* sink) override;
  void Unregister(NodeId id) override;
  void Send(NodeId src, NodeId dst, Bytes message) override;

  // Bound loopback port of a registered node (0 if unknown). For logs and debugging.
  uint16_t PortOf(NodeId id) const;

 private:
  struct Socket {
    int fd = -1;
    uint16_t port = 0;
    MessageSink* sink = nullptr;
    std::atomic<bool> running{true};
    std::thread reader;
  };

  void ReadLoop(Socket* socket);

  // Reader-writer: sends from many loop threads share the lock (concurrent sendto is fine);
  // Register/Unregister take it exclusively, so a close() can never race an in-flight send.
  mutable std::shared_mutex mu_;
  std::map<NodeId, std::unique_ptr<Socket>> sockets_;
};

}  // namespace bft

#endif  // SRC_RUNTIME_UDP_TRANSPORT_H_

// Loopback UDP transport: one real datagram socket per registered node.
//
// Each node binds 127.0.0.1:0 (the kernel picks a free port, so parallel test runs never
// collide). Receiving is loop-driven: the transport spawns no reader threads — the owning
// RtNode polls ReceiveFd() and calls Drain(), which pumps every queued datagram into the
// node's mailbox on the node's own loop thread (kernel -> handler with no cross-thread
// handoff). Send() is a sendto()/sendmmsg() on the source node's socket; the wire format is
// exactly the encoded protocol message — no framing, no sender identity — matching the
// paper's deployment where receivers authenticate via MACs/signatures, never via the channel.
#ifndef SRC_RUNTIME_UDP_TRANSPORT_H_
#define SRC_RUNTIME_UDP_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/runtime/transport.h"

namespace bft {

class UdpTransport final : public Transport {
 public:
  UdpTransport();
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  void Register(NodeId id, MessageSink* sink) override;
  void Unregister(NodeId id) override;
  void Send(NodeId src, NodeId dst, MsgBuffer message) override;
  // The whole replica-group fan-out in one sendmmsg syscall, from one shared buffer.
  void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& message) override;

  int ReceiveFd(NodeId id) const override;
  void Drain(NodeId id) override;

  void InstallMetrics(MetricsRegistry* registry) override;

  // Bound loopback port of a registered node (0 if unknown). For logs and debugging.
  uint16_t PortOf(NodeId id) const;

 private:
  struct Socket {
    int fd = -1;
    uint16_t port = 0;
    MessageSink* sink = nullptr;
    // Reusable recvmmsg scratch, touched only by the single loop thread that drives Drain.
    std::vector<uint8_t> recv_buffers;
  };

  // Reader-writer: sends and drains from many loop threads share the lock (concurrent
  // syscalls on distinct sockets are fine); Register/Unregister take it exclusively, so a
  // close() can never race an in-flight send or drain.
  mutable SharedMutex mu_;
  std::map<NodeId, std::unique_ptr<Socket>> sockets_ BFT_GUARDED_BY(mu_);

  // Pre-resolved instruments (see InstallMetrics); counters are atomic, so send/drain paths
  // on different loop threads bump them without extra locking.
  struct Obs {
    Counter* datagrams_sent = nullptr;
    Counter* bytes_sent = nullptr;
    Counter* datagrams_received = nullptr;
    Counter* bytes_received = nullptr;
    Counter* eintr_retries = nullptr;
    Counter* oversize_errors = nullptr;
    Counter* send_drops = nullptr;
    Histogram* sendmmsg_batch = nullptr;
  };
  Obs obs_;
};

}  // namespace bft

#endif  // SRC_RUNTIME_UDP_TRANSPORT_H_

#include "src/runtime/uring_transport.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#if BFT_HAVE_IO_URING

#include <arpa/inet.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace bft {

namespace {

// Largest protocol datagram we accept; UDP on loopback carries up to ~64 KiB.
constexpr size_t kMaxDatagram = 65507;
// Staged-send window: SQEs (and their pinned buffers) outstanding per node between flushes.
constexpr unsigned kSqEntries = 256;
constexpr unsigned kCqEntries = 1024;
// Provided-buffer ring for multishot receive: power-of-two entries, each large enough that
// no datagram can be truncated (recv consumes exactly one provided buffer per datagram).
constexpr unsigned kRecvBuffers = 64;
constexpr size_t kRecvBufferSize = 65536;
constexpr unsigned kBufGroup = 1;
// user_data tags separating the one multishot recv and the parked loop's doorbell poll from
// send-slot completions (slot indices are small, so the top-of-range tags can never collide).
constexpr uint64_t kRecvUserData = ~0ull;
constexpr uint64_t kDoorbellUserData = ~0ull - 1;

int UringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int UringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, nullptr, 0));
}

// GETEVENTS variant with an EXT_ARG timeout: how Park sleeps bounded by the next timer
// deadline without a separate ppoll.
int UringEnterTimed(int fd, unsigned min_complete, unsigned flags,
                    const io_uring_getevents_arg* arg, size_t argsz) {
  flags |= IORING_ENTER_GETEVENTS | (arg != nullptr ? IORING_ENTER_EXT_ARG : 0u);
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, 0, min_complete, flags, arg, argsz));
}

int UringRegister(int fd, unsigned opcode, void* arg, unsigned nr) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg, nr));
}

// The SQ/CQ rings are shared with the kernel: tail/head publications need release/acquire
// ordering on plain mmap'd words, which the __atomic builtins provide without UB.
uint32_t LoadAcquire(const unsigned* p) { return __atomic_load_n(p, __ATOMIC_ACQUIRE); }
void StoreRelease(unsigned* p, uint32_t v) { __atomic_store_n(p, v, __ATOMIC_RELEASE); }
void StoreRelease16(uint16_t* p, uint16_t v) { __atomic_store_n(p, v, __ATOMIC_RELEASE); }

}  // namespace

// One node: its datagram socket, its ring, the registered receive buffers, and the slots
// pinning staged-send memory (msghdr/iovec/address/payload) until the CQE retires them.
struct IoUringTransport::Node {
  int sock_fd = -1;
  uint16_t port = 0;
  MessageSink* sink = nullptr;

  // Ring mappings (IORING_FEAT_SINGLE_MMAP: SQ and CQ share one mapping).
  int ring_fd = -1;
  void* ring_mmap = nullptr;
  size_t ring_mmap_size = 0;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_size = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  unsigned sq_tail_local = 0;  // producer-side tail (published with release on stage)
  unsigned to_submit = 0;      // staged but not yet passed to io_uring_enter
  bool doorbell_armed = false;  // a single-shot POLL_ADD on the loop's eventfd is in flight
  bool needs_enable = false;    // ring was created R_DISABLED; first loop-thread op enables it
  bool fixed_file = false;      // sock_fd is registered at index 0: SQEs skip fget/fput
  int enter_fd = -1;            // ring_fd, or the loop task's registered-ring index
  unsigned enter_flags = 0;     // IORING_ENTER_REGISTERED_RING when enter_fd is an index

  // Provided-buffer ring + the receive buffers it hands to the kernel.
  io_uring_buf_ring* buf_ring = nullptr;
  size_t buf_ring_size = 0;
  std::vector<uint8_t> recv_buffers;
  uint16_t buf_tail = 0;  // local tail mirror, published to buf_ring->tail
  bool recv_armed = false;

  struct SendSlot {
    msghdr hdr{};
    iovec iov{};
    sockaddr_in addr{};
    MsgBuffer buf;
  };
  std::vector<SendSlot> slots;
  std::vector<uint32_t> free_slots;

  ~Node() {
    if (buf_ring != nullptr) {
      ::munmap(buf_ring, buf_ring_size);
    }
    if (sqes != nullptr) {
      ::munmap(sqes, sqes_size);
    }
    if (ring_mmap != nullptr) {
      ::munmap(ring_mmap, ring_mmap_size);
    }
    if (ring_fd >= 0) {
      ::close(ring_fd);
    }
    if (sock_fd >= 0) {
      ::close(sock_fd);
    }
  }

  io_uring_sqe* GetSqe() {
    if (sq_tail_local - LoadAcquire(sq_head) == sq_entries) {
      return nullptr;  // window full: caller submits or falls back
    }
    unsigned idx = sq_tail_local & sq_mask;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array[idx] = idx;
    ++sq_tail_local;
    StoreRelease(sq_tail, sq_tail_local);
    return sqe;
  }

  // The buffer-ring entries must be addressed manually: io_uring_buf_ring's `bufs[]` is
  // declared through __DECLARE_FLEX_ARRAY, whose empty-struct placeholder has size 1 in C++
  // (not 0 as in C) — the member lands at offset 8 while the kernel reads entries at offset
  // 0, so using it silently corrupts the ring. Entry i lives at byte i * sizeof(io_uring_buf)
  // from the ring base; the tail overlays entry 0's resv field (offset 14), where the
  // anonymous-struct `tail` member correctly points.
  io_uring_buf* BufEntry(unsigned index) {
    return reinterpret_cast<io_uring_buf*>(buf_ring) + index;
  }

  void RecycleBuffer(uint16_t bid) {
    io_uring_buf* entry = BufEntry(buf_tail & (kRecvBuffers - 1));
    entry->addr = reinterpret_cast<uint64_t>(recv_buffers.data() +
                                             static_cast<size_t>(bid) * kRecvBufferSize);
    entry->len = kRecvBufferSize;
    entry->bid = bid;
    ++buf_tail;
    StoreRelease16(&buf_ring->tail, buf_tail);
  }

  // Stages the one standing multishot recv. The kernel keeps posting a CQE per datagram
  // (IORING_CQE_F_MORE) until it cannot (e.g. the buffer ring momentarily empties), at
  // which point the reaper re-arms.
  bool ArmRecv() {
    io_uring_sqe* sqe = GetSqe();
    if (sqe == nullptr) {
      return false;
    }
    sqe->opcode = IORING_OP_RECV;
    sqe->fd = fixed_file ? 0 : sock_fd;
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT | (fixed_file ? IOSQE_FIXED_FILE : 0);
    sqe->buf_group = kBufGroup;
    sqe->user_data = kRecvUserData;
    ++to_submit;
    recv_armed = true;
    return true;
  }
};

bool IoUringTransport::Supported() {
  static const bool supported = [] {
    io_uring_params p{};
    p.flags = IORING_SETUP_CQSIZE;
    p.cq_entries = 64;
    int fd = UringSetup(16, &p);
    if (fd < 0) {
      return false;  // kernel too old, or the syscall is seccomp-filtered
    }
    bool ok = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (ok) {
      std::vector<uint8_t> mem(sizeof(io_uring_probe) + 256 * sizeof(io_uring_probe_op), 0);
      auto* probe = reinterpret_cast<io_uring_probe*>(mem.data());
      ok = UringRegister(fd, IORING_REGISTER_PROBE, probe, 256) == 0 &&
           // Opcode coverage past SENDMSG_ZC pins the kernel at >= 6.1, which carries both
           // multishot recv (6.0) and everything else this backend stages.
           probe->ops_len > IORING_OP_SENDMSG_ZC &&
           (probe->ops[IORING_OP_RECV].flags & IO_URING_OP_SUPPORTED) != 0 &&
           (probe->ops[IORING_OP_SENDMSG].flags & IO_URING_OP_SUPPORTED) != 0;
    }
    if (ok) {
      // Dry-run the provided-buffer-ring registration: it has its own feature gate (5.19)
      // and its own failure modes (mapping restrictions) worth probing up front.
      void* ring = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_ANONYMOUS | MAP_PRIVATE,
                          -1, 0);
      ok = ring != MAP_FAILED;
      if (ok) {
        io_uring_buf_reg reg{};
        reg.ring_addr = reinterpret_cast<uint64_t>(ring);
        reg.ring_entries = 16;
        reg.bgid = 0;
        ok = UringRegister(fd, IORING_REGISTER_PBUF_RING, &reg, 1) == 0;
        ::munmap(ring, 4096);
      }
    }
    ::close(fd);
    return ok;
  }();
  return supported;
}

IoUringTransport::IoUringTransport() {
  if (!Supported()) {
    // Callers (RtCluster, bft_node) check Supported() and fall back to UdpTransport; getting
    // here is a harness bug, and limping on would hang the cluster with no indication why.
    std::fprintf(stderr, "IoUringTransport: io_uring not supported on this kernel\n");
    std::abort();
  }
  InstallMetrics(&MetricsRegistry::Process());
}

IoUringTransport::~IoUringTransport() {
  WriterMutexLock lock(mu_);
  nodes_.clear();
}

void IoUringTransport::InstallMetrics(MetricsRegistry* registry) {
  const std::string labels = "transport=\"uring\"";
  obs_.datagrams_sent = registry->GetCounter("bft_transport_datagrams_sent_total", labels);
  obs_.bytes_sent = registry->GetCounter("bft_transport_bytes_sent_total", labels);
  obs_.datagrams_received = registry->GetCounter("bft_transport_datagrams_received_total", labels);
  obs_.bytes_received = registry->GetCounter("bft_transport_bytes_received_total", labels);
  obs_.eintr_retries = registry->GetCounter("bft_transport_eintr_retries_total", labels);
  obs_.oversize_errors = registry->GetCounter("bft_transport_oversize_errors_total", labels);
  obs_.send_drops = registry->GetCounter("bft_transport_send_drops_total", labels);
  obs_.fallback_sends = registry->GetCounter("bft_transport_uring_fallback_sends_total", labels);
  obs_.submit_batch = registry->GetHistogram("bft_transport_uring_submit_batch", labels);
}

void IoUringTransport::Register(NodeId id, MessageSink* sink) {
  Unregister(id);
  auto node = std::make_unique<Node>();
  node->sink = sink;

  // Socket ceremony identical to UdpTransport: loopback, kernel-assigned port, non-blocking
  // (the fallback sendto path must never stall a loop thread).
  node->sock_fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (node->sock_fd < 0) {
    std::perror("IoUringTransport: socket");
    std::abort();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(node->sock_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::perror("IoUringTransport: bind");
    std::abort();
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(node->sock_fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    std::perror("IoUringTransport: getsockname");
    std::abort();
  }
  node->port = ntohs(addr.sin_port);

  // Flag cascade, strongest first. SINGLE_ISSUER + DEFER_TASKRUN is the shape this backend
  // is built around: each ring has exactly one issuing task (the node's loop thread), and
  // all completion task-work (multishot recv above all) runs batched inside that task's own
  // GETEVENTS enter instead of interrupting it signal-style per completion — on a single
  // core that interruption is a context switch per datagram. The ring must then be *owned*
  // by the loop thread, but it is created here on the harness thread, so it starts
  // R_DISABLED and the first loop-thread operation enables it (binding ownership there).
  // COOP_TASKRUN is the pre-6.1 approximation; plain CQSIZE the pre-5.19 floor.
  const unsigned flag_sets[] = {
      IORING_SETUP_CQSIZE | IORING_SETUP_SINGLE_ISSUER | IORING_SETUP_DEFER_TASKRUN |
          IORING_SETUP_R_DISABLED,
      IORING_SETUP_CQSIZE | IORING_SETUP_COOP_TASKRUN,
      IORING_SETUP_CQSIZE,
  };
  io_uring_params p{};
  for (unsigned flags : flag_sets) {
    p = io_uring_params{};
    p.flags = flags;
    p.cq_entries = kCqEntries;
    node->ring_fd = UringSetup(kSqEntries, &p);
    if (node->ring_fd >= 0) {
      node->needs_enable = (flags & IORING_SETUP_R_DISABLED) != 0;
      break;
    }
    if (errno != EINVAL) {
      break;  // EINVAL means an unknown flag (older kernel): try the next set
    }
  }
  if (node->ring_fd < 0) {
    std::perror("IoUringTransport: io_uring_setup");
    std::abort();
  }
  size_t sq_size = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  size_t cq_size = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  node->ring_mmap_size = sq_size > cq_size ? sq_size : cq_size;  // FEAT_SINGLE_MMAP
  node->ring_mmap = ::mmap(nullptr, node->ring_mmap_size, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, node->ring_fd, IORING_OFF_SQ_RING);
  node->sqes_size = p.sq_entries * sizeof(io_uring_sqe);
  node->sqes = static_cast<io_uring_sqe*>(::mmap(nullptr, node->sqes_size,
                                                 PROT_READ | PROT_WRITE,
                                                 MAP_SHARED | MAP_POPULATE, node->ring_fd,
                                                 IORING_OFF_SQES));
  if (node->ring_mmap == MAP_FAILED || node->sqes == reinterpret_cast<io_uring_sqe*>(MAP_FAILED)) {
    std::perror("IoUringTransport: mmap ring");
    std::abort();
  }
  auto* ring_base = static_cast<uint8_t*>(node->ring_mmap);
  node->sq_head = reinterpret_cast<unsigned*>(ring_base + p.sq_off.head);
  node->sq_tail = reinterpret_cast<unsigned*>(ring_base + p.sq_off.tail);
  node->sq_mask = *reinterpret_cast<unsigned*>(ring_base + p.sq_off.ring_mask);
  node->sq_entries = p.sq_entries;
  node->sq_array = reinterpret_cast<unsigned*>(ring_base + p.sq_off.array);
  node->cq_head = reinterpret_cast<unsigned*>(ring_base + p.cq_off.head);
  node->cq_tail = reinterpret_cast<unsigned*>(ring_base + p.cq_off.tail);
  node->cq_mask = *reinterpret_cast<unsigned*>(ring_base + p.cq_off.ring_mask);
  node->cqes = reinterpret_cast<io_uring_cqe*>(ring_base + p.cq_off.cqes);
  node->sq_tail_local = LoadAcquire(node->sq_tail);

  // Provided-buffer ring: the kernel picks a buffer per received datagram; the reaper
  // recycles it once the payload is copied into an exactly-sized shared MsgBuffer.
  node->buf_ring_size = kRecvBuffers * sizeof(io_uring_buf);
  node->buf_ring_size = (node->buf_ring_size + 4095) & ~size_t{4095};
  void* br = ::mmap(nullptr, node->buf_ring_size, PROT_READ | PROT_WRITE,
                    MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (br == MAP_FAILED) {
    std::perror("IoUringTransport: mmap buffer ring");
    std::abort();
  }
  node->buf_ring = static_cast<io_uring_buf_ring*>(br);
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<uint64_t>(node->buf_ring);
  reg.ring_entries = kRecvBuffers;
  reg.bgid = kBufGroup;
  if (UringRegister(node->ring_fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    std::perror("IoUringTransport: register buffer ring");
    std::abort();
  }
  node->recv_buffers.resize(static_cast<size_t>(kRecvBuffers) * kRecvBufferSize);
  for (uint16_t i = 0; i < kRecvBuffers; ++i) {
    node->RecycleBuffer(i);
  }

  // Register the socket as fixed file 0: every per-datagram SQE (the multishot recv, each
  // staged send) then skips the fget/fput pair. Best-effort — on failure SQEs carry the
  // raw fd.
  int fixed[] = {node->sock_fd};
  node->fixed_file = UringRegister(node->ring_fd, IORING_REGISTER_FILES, fixed, 1) == 0;

  node->slots.resize(kSqEntries);
  node->free_slots.reserve(kSqEntries);
  for (uint32_t i = 0; i < kSqEntries; ++i) {
    node->free_slots.push_back(kSqEntries - 1 - i);
  }

  // Stage (memory writes only — a disabled ring cannot be entered, and entering here would
  // bind SINGLE_ISSUER ownership to this harness thread) the standing multishot recv; the
  // node's first loop-thread operation enables the ring and submits it. Datagrams landing
  // before then simply wait in the socket buffer and complete the recv once armed.
  if (!node->ArmRecv()) {
    std::fprintf(stderr, "IoUringTransport: failed to arm multishot recv\n");
    std::abort();
  }

  WriterMutexLock lock(mu_);
  nodes_[id] = std::move(node);
}

void IoUringTransport::Unregister(NodeId id) {
  std::unique_ptr<Node> node;
  {
    WriterMutexLock lock(mu_);
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      return;
    }
    node = std::move(it->second);
    nodes_.erase(it);
  }
  // Exclusive lock held and released: no submit/reap still touches this ring. Closing the
  // ring fd cancels the multishot recv and any in-flight sends with it.
}

void IoUringTransport::SubmitLocked(Node& node) {
  if (node.enter_fd < 0) {
    // First ring operation from the owning loop thread. Enable the R_DISABLED ring (making
    // this task its SINGLE_ISSUER), then register the ring fd in this task's ring-fd table
    // so every subsequent io_uring_enter skips the fdget/fput pair. Both best-effort
    // bookkeeping: a plain ring_fd enter stays correct.
    if (node.needs_enable) {
      if (UringRegister(node.ring_fd, IORING_REGISTER_ENABLE_RINGS, nullptr, 0) < 0) {
        std::perror("IoUringTransport: enable rings");
        std::abort();
      }
      node.needs_enable = false;
    }
    io_uring_rsrc_update upd{};
    upd.offset = ~0u;  // kernel picks a free slot
    upd.data = static_cast<uint64_t>(node.ring_fd);
    if (UringRegister(node.ring_fd, IORING_REGISTER_RING_FDS, &upd, 1) == 1) {
      node.enter_fd = static_cast<int>(upd.offset);
      node.enter_flags = IORING_ENTER_REGISTERED_RING;
    } else {
      node.enter_fd = node.ring_fd;
    }
  }
  if (node.to_submit == 0) {
    return;
  }
  obs_.submit_batch->Record(node.to_submit);
  while (node.to_submit > 0) {
    int n = UringEnter(node.enter_fd, node.to_submit, 0, node.enter_flags);
    if (n < 0) {
      if (errno == EINTR) {
        obs_.eintr_retries->Inc();
        continue;
      }
      // Terminal submit failure (EBUSY with a full CQ is the realistic case): the staged
      // sends stay queued and the next flush retries; the CQ drains via ReapLocked first.
      return;
    }
    node.to_submit -= static_cast<unsigned>(n);
  }
}

void IoUringTransport::ReapLocked(Node& node) {
  bool rearm = false;
  unsigned head = *node.cq_head;
  for (;;) {
    if (head == LoadAcquire(node.cq_tail)) {
      break;
    }
    io_uring_cqe* cqe = &node.cqes[head & node.cq_mask];
    if (cqe->user_data == kRecvUserData) {
      if (cqe->res >= 0 && (cqe->flags & IORING_CQE_F_BUFFER) != 0) {
        auto bid = static_cast<uint16_t>(cqe->flags >> IORING_CQE_BUFFER_SHIFT);
        const uint8_t* data =
            node.recv_buffers.data() + static_cast<size_t>(bid) * kRecvBufferSize;
        obs_.datagrams_received->Inc();
        obs_.bytes_received->Inc(static_cast<uint64_t>(cqe->res));
        node.sink->EnqueueMessage(
            MsgBuffer(ByteView(data, static_cast<size_t>(cqe->res))));
        node.RecycleBuffer(bid);
      }
      // res < 0 (ENOBUFS when the buffer ring momentarily empties, or a transient socket
      // error): nothing to deliver. Either way a missing F_MORE means the multishot is
      // done and must be re-armed.
      if ((cqe->flags & IORING_CQE_F_MORE) == 0) {
        node.recv_armed = false;
        rearm = true;
      }
    } else if (cqe->user_data == kDoorbellUserData) {
      // The single-shot doorbell poll is consumed (fired, or cancelled on error); the next
      // Park re-arms it before sleeping.
      node.doorbell_armed = false;
    } else {
      auto slot_index = static_cast<uint32_t>(cqe->user_data);
      Node::SendSlot& slot = node.slots[slot_index];
      if (cqe->res >= 0) {
        obs_.datagrams_sent->Inc();
        obs_.bytes_sent->Inc(slot.buf.size());
      } else {
        obs_.send_drops->Inc();
        if (cqe->res == -EMSGSIZE) {
          obs_.oversize_errors->Inc();
          std::fprintf(stderr, "IoUringTransport: %zu-byte message exceeds the datagram limit\n",
                       slot.buf.size());
        }
      }
      slot.buf = MsgBuffer();  // release the payload refcount
      node.free_slots.push_back(slot_index);
    }
    ++head;
    StoreRelease(node.cq_head, head);
  }
  if (rearm && !node.recv_armed) {
    if (node.ArmRecv()) {
      SubmitLocked(node);  // a dead multishot means deliveries stop; re-arm immediately
    }
  }
}

void IoUringTransport::Send(NodeId src, NodeId dst, MsgBuffer message) {
  ReaderMutexLock lock(mu_);
  auto dit = nodes_.find(dst);
  if (dit == nodes_.end()) {
    return;  // destination gone: dropped on the floor, as UDP would
  }
  auto sit = nodes_.find(src);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(dit->second->port);
  if (sit == nodes_.end()) {
    // Unregistered source (harness stragglers, post-close sends): no ring to stage on.
    // Plain sendto on the destination's socket, mirroring UdpTransport's fallback.
    obs_.fallback_sends->Inc();
    if (::sendto(dit->second->sock_fd, message.data(), message.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      obs_.send_drops->Inc();
    } else {
      obs_.datagrams_sent->Inc();
      obs_.bytes_sent->Inc(message.size());
    }
    return;
  }
  Node& node = *sit->second;
  if (node.free_slots.empty()) {
    // The staged window is full of unreaped completions — loopback sends complete inline
    // during submit, so one reap (after a submit, if staging outran the last flush)
    // normally refills the free list.
    SubmitLocked(node);
    ReapLocked(node);
  }
  io_uring_sqe* sqe = node.free_slots.empty() ? nullptr : node.GetSqe();
  if (sqe == nullptr) {
    obs_.fallback_sends->Inc();
    if (::sendto(node.sock_fd, message.data(), message.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      obs_.send_drops->Inc();
      if (errno == EMSGSIZE) {
        obs_.oversize_errors->Inc();
      }
    } else {
      obs_.datagrams_sent->Inc();
      obs_.bytes_sent->Inc(message.size());
    }
    return;
  }
  uint32_t slot_index = node.free_slots.back();
  node.free_slots.pop_back();
  Node::SendSlot& slot = node.slots[slot_index];
  slot.addr = addr;
  slot.buf = std::move(message);
  slot.iov.iov_base = const_cast<uint8_t*>(slot.buf.data());
  slot.iov.iov_len = slot.buf.size();
  slot.hdr = msghdr{};
  slot.hdr.msg_name = &slot.addr;
  slot.hdr.msg_namelen = sizeof(slot.addr);
  slot.hdr.msg_iov = &slot.iov;
  slot.hdr.msg_iovlen = 1;
  sqe->opcode = IORING_OP_SENDMSG;
  sqe->fd = node.fixed_file ? 0 : node.sock_fd;
  sqe->flags = node.fixed_file ? IOSQE_FIXED_FILE : 0;
  sqe->len = 1;
  sqe->addr = reinterpret_cast<uint64_t>(&slot.hdr);
  sqe->user_data = slot_index;
  ++node.to_submit;
  if (node.to_submit >= node.sq_entries / 2) {
    // Safety valve for a pathological iteration staging hundreds of sends: submit early
    // rather than spilling everything onto the fallback path.
    SubmitLocked(node);
    ReapLocked(node);
  }
}

void IoUringTransport::Flush(NodeId src) {
  ReaderMutexLock lock(mu_);
  auto it = nodes_.find(src);
  if (it == nodes_.end()) {
    return;
  }
  // One io_uring_enter for the whole iteration's sends. Deliberately no reap here: the loop
  // is still marked sleeping when it flushes, so delivering datagrams now would ring its own
  // doorbell once per message. The completions (inline loopback sends included) wait in the
  // CQ for the Drain that follows Park, which runs with the sleeping flag already cleared.
  SubmitLocked(*it->second);
}

int IoUringTransport::Park(NodeId src, int doorbell_fd, SimTime wait_ns) {
  ReaderMutexLock lock(mu_);
  auto it = nodes_.find(src);
  if (it == nodes_.end()) {
    return kParkUnsupported;
  }
  Node& node = *it->second;
  if (!node.doorbell_armed) {
    io_uring_sqe* sqe = node.GetSqe();
    if (sqe == nullptr) {
      // SQ window crammed: submitting consumes the staged entries, so the retry succeeds
      // unless the ring is truly wedged — only then fall back to the caller's ppoll (which
      // a DEFER_TASKRUN ring fd serves poorly, hence the effort to stay off that path).
      SubmitLocked(node);
      sqe = node.GetSqe();
    }
    if (sqe == nullptr) {
      return kParkUnsupported;
    }
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = doorbell_fd;
    sqe->poll32_events = POLLIN;
    sqe->user_data = kDoorbellUserData;
    ++node.to_submit;
    node.doorbell_armed = true;
  }
  SubmitLocked(node);
  // The blocking wait must not pin mu_: an idle loop parks with no deadline at all, and
  // holding the map lock (even shared) across io_uring_enter would wedge Unregister — and
  // with it any runtime crash/restart — behind a sleeper that only the now-blocked caller
  // could ever wake. `node` outlives the unlocked window: Unregister(src) requires src's own
  // loop to be stopped first (transport.h contract), and nothing else erases this entry.
  lock.Unlock();
  if (*node.cq_head == LoadAcquire(node.cq_tail)) {
    // Truly idle (the sends just submitted would have completed inline into the CQ): sleep
    // in the ring until a datagram completion, the doorbell poll, or the timer deadline.
    io_uring_getevents_arg arg{};
    __kernel_timespec ts{};
    const io_uring_getevents_arg* argp = nullptr;
    if (wait_ns != kParkNoDeadline) {
      ts.tv_sec = static_cast<int64_t>(wait_ns / 1000000000);
      ts.tv_nsec = static_cast<long long>(wait_ns % 1000000000);
      arg.ts = reinterpret_cast<uint64_t>(&ts);
      argp = &arg;
    }
    int n = UringEnterTimed(node.enter_fd, 1, node.enter_flags, argp,
                            argp != nullptr ? sizeof(arg) : 0);
    if (n < 0 && errno == EINTR) {
      obs_.eintr_retries->Inc();  // spurious wake: the loop re-scans and parks again
    }
  }
  // Peek (without consuming — Drain reaps) whether the doorbell poll is among the waiting
  // completions, so the caller knows to drain its eventfd.
  int result = 0;
  unsigned tail = LoadAcquire(node.cq_tail);
  for (unsigned head = *node.cq_head; head != tail; ++head) {
    if (node.cqes[head & node.cq_mask].user_data == kDoorbellUserData) {
      result |= kParkDoorbell;
      break;
    }
  }
  return result;
}

int IoUringTransport::ReceiveFd(NodeId id) const {
  ReaderMutexLock lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? -1 : it->second->ring_fd;
}

void IoUringTransport::Drain(NodeId id) {
  ReaderMutexLock lock(mu_);
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return;
  }
  ReapLocked(*it->second);
}

uint16_t IoUringTransport::PortOf(NodeId id) const {
  ReaderMutexLock lock(mu_);
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second->port;
}

}  // namespace bft

#else  // !BFT_HAVE_IO_URING — stub: Supported() says no, construction fails fast.

namespace bft {

struct IoUringTransport::Node {};

bool IoUringTransport::Supported() { return false; }

IoUringTransport::IoUringTransport() {
  std::fprintf(stderr, "IoUringTransport: built without io_uring support\n");
  std::abort();
}

IoUringTransport::~IoUringTransport() = default;
void IoUringTransport::Register(NodeId id, MessageSink* sink) {}
void IoUringTransport::Unregister(NodeId id) {}
void IoUringTransport::Send(NodeId src, NodeId dst, MsgBuffer message) {}
void IoUringTransport::Flush(NodeId src) {}
int IoUringTransport::ReceiveFd(NodeId id) const { return -1; }
void IoUringTransport::Drain(NodeId id) {}
int IoUringTransport::Park(NodeId src, int doorbell_fd, SimTime wait_ns) {
  return kParkUnsupported;
}
void IoUringTransport::InstallMetrics(MetricsRegistry* registry) {}
uint16_t IoUringTransport::PortOf(NodeId id) const { return 0; }
void IoUringTransport::SubmitLocked(Node& node) {}
void IoUringTransport::ReapLocked(Node& node) {}

}  // namespace bft

#endif  // BFT_HAVE_IO_URING

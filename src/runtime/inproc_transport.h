// In-process channel transport: datagrams are handed straight to the destination node's
// mailbox. The fast path for multi-threaded runtime tests — same threading model as UDP
// (every node still runs its own event loop) without sockets or syscalls.
#ifndef SRC_RUNTIME_INPROC_TRANSPORT_H_
#define SRC_RUNTIME_INPROC_TRANSPORT_H_

#include <map>

#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"
#include "src/runtime/transport.h"

namespace bft {

class InProcTransport final : public Transport {
 public:
  InProcTransport() { InstallMetrics(&MetricsRegistry::Process()); }

  void InstallMetrics(MetricsRegistry* registry) override {
    datagrams_ = registry->GetCounter("bft_transport_datagrams_sent_total", "transport=\"inproc\"");
    bytes_ = registry->GetCounter("bft_transport_bytes_sent_total", "transport=\"inproc\"");
  }

  void Register(NodeId id, MessageSink* sink) override {
    MutexLock lock(mu_);
    sinks_[id] = sink;
  }

  void Unregister(NodeId id) override {
    // Send() delivers while holding mu_, so once erase returns no delivery is in flight.
    MutexLock lock(mu_);
    sinks_.erase(id);
  }

  void Send(NodeId src, NodeId dst, MsgBuffer message) override {
    MutexLock lock(mu_);
    auto it = sinks_.find(dst);
    if (it == sinks_.end()) {
      return;  // unknown destination: dropped, like any datagram
    }
    datagrams_->Inc();
    bytes_->Inc(message.size());
    it->second->EnqueueMessage(std::move(message));
  }

  void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& message) override {
    // One lock acquisition and one refcounted buffer for the whole fan-out.
    MutexLock lock(mu_);
    for (NodeId dst : dsts) {
      if (dst == src) {
        continue;
      }
      auto it = sinks_.find(dst);
      if (it == sinks_.end()) {
        continue;
      }
      datagrams_->Inc();
      bytes_->Inc(message.size());
      it->second->EnqueueMessage(message);
    }
  }

 private:
  Mutex mu_;
  std::map<NodeId, MessageSink*> sinks_ BFT_GUARDED_BY(mu_);
  Counter* datagrams_ = nullptr;
  Counter* bytes_ = nullptr;
};

}  // namespace bft

#endif  // SRC_RUNTIME_INPROC_TRANSPORT_H_

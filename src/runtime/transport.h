// Real-clock transport seam.
//
// A Transport moves encoded protocol messages between nodes with UDP semantics: best-effort,
// unordered, no sender identity on the wire (receivers authenticate at the protocol layer).
// Implementations: InProcTransport (an in-process channel, for fast deterministic-ish tests)
// and UdpTransport (real loopback sockets, one per node).
#ifndef SRC_RUNTIME_TRANSPORT_H_
#define SRC_RUNTIME_TRANSPORT_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/common/msg_buffer.h"
#include "src/core/clock.h"

namespace bft {

class MetricsRegistry;

// Where a transport delivers received datagrams. Called from transport-internal threads;
// implementations must be thread-safe.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void EnqueueMessage(MsgBuffer message) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Starts delivering datagrams addressed to `id` into `sink`. One sink per id.
  virtual void Register(NodeId id, MessageSink* sink) = 0;

  // Stops delivery to `id`. On return, no further EnqueueMessage calls for this id are in
  // flight — safe to destroy the sink.
  virtual void Unregister(NodeId id) = 0;

  // Best-effort datagram from `src` to `dst`. Unknown destinations and full buffers drop the
  // message, exactly like the network the protocol is built to survive. The buffer is shared,
  // never copied: a multicast caller passes the same refcounted encoding to every destination.
  virtual void Send(NodeId src, NodeId dst, MsgBuffer message) = 0;

  // One encoded buffer to every destination except `src` itself. Transports override this to
  // batch the fan-out (UdpTransport: a single sendmmsg syscall; InProcTransport: one lock
  // acquisition for all mailboxes) — the wire behavior is identical to per-destination Send.
  virtual void Multicast(NodeId src, const std::vector<NodeId>& dsts, const MsgBuffer& message) {
    for (NodeId dst : dsts) {
      if (dst == src) {
        continue;
      }
      Send(src, dst, message);
    }
  }

  // Event-loop idle barrier. The owning loop calls Flush(src) once it has no runnable work
  // left, immediately before parking: a coalescing transport (FormationTransport) emits the
  // datagrams it packed during the iteration, and a batching backend (IoUringTransport)
  // submits every staged send in one syscall. Plain transports send eagerly and ignore it.
  // Nothing a Send promises is observable before the next Flush on `src`'s loop.
  virtual void Flush(NodeId src) {}

  // Re-points the transport's metric instruments at a harness-owned registry. Transports
  // wire the process-wide default at construction, so instrument pointers are always valid.
  virtual void InstallMetrics(MetricsRegistry* registry) {}

  // --- Loop-driven receive ----------------------------------------------------------------
  // When ReceiveFd returns >= 0 the transport spawns no internal delivery thread for `id`:
  // the owning endpoint's event loop polls the fd and calls Drain when it turns readable,
  // so datagrams flow kernel -> handler with no cross-thread handoff. Drain never blocks; it
  // feeds every queued datagram to the registered sink on the calling thread.
  virtual int ReceiveFd(NodeId id) const { return -1; }
  virtual void Drain(NodeId id) {}

  // --- Combined submit-and-wait (optional) --------------------------------------------------
  // A transport that can both emit `src`'s staged work and sleep until something new happens
  // in ONE kernel round-trip overrides Park (IoUringTransport: io_uring_enter with GETEVENTS,
  // the doorbell eventfd watched by a POLL_ADD on the same ring). The loop calls it right
  // after Flush, instead of ppoll: wait until a datagram arrives, `doorbell_fd` turns
  // readable, or `wait_ns` elapses (kParkNoDeadline = no deadline). Returns kParkUnsupported
  // to make the
  // caller fall back to ppoll over {doorbell_fd, ReceiveFd}, otherwise a bitmask that has
  // kParkDoorbell set when the doorbell (possibly) fired and needs draining. Park does NOT
  // deliver: received datagrams wait in the completion queue for the Drain that follows, so
  // deliveries run after the loop clears its sleeping flag and skip the doorbell entirely.
  // A parked loop holds transport-internal shared state, so Unregister(src) while src's loop
  // may be parked must be preceded by stopping that loop (RtNode::Close stops, then
  // unregisters).
  static constexpr int kParkUnsupported = -1;
  static constexpr int kParkDoorbell = 1;
  // SimTime is unsigned; "no deadline" is its max value (what assigning -1 always produced).
  // Named so sleep-forever checks are `wait_ns == kParkNoDeadline`, not a tautological `>= 0`.
  static constexpr SimTime kParkNoDeadline = ~SimTime{0};
  virtual int Park(NodeId src, int doorbell_fd, SimTime wait_ns) { return kParkUnsupported; }
};

}  // namespace bft

#endif  // SRC_RUNTIME_TRANSPORT_H_

// Real-clock transport seam.
//
// A Transport moves encoded protocol messages between nodes with UDP semantics: best-effort,
// unordered, no sender identity on the wire (receivers authenticate at the protocol layer).
// Implementations: InProcTransport (an in-process channel, for fast deterministic-ish tests)
// and UdpTransport (real loopback sockets, one per node).
#ifndef SRC_RUNTIME_TRANSPORT_H_
#define SRC_RUNTIME_TRANSPORT_H_

#include "src/common/bytes.h"
#include "src/core/clock.h"

namespace bft {

// Where a transport delivers received datagrams. Called from transport-internal threads;
// implementations must be thread-safe.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void EnqueueMessage(Bytes message) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Starts delivering datagrams addressed to `id` into `sink`. One sink per id.
  virtual void Register(NodeId id, MessageSink* sink) = 0;

  // Stops delivery to `id`. On return, no further EnqueueMessage calls for this id are in
  // flight — safe to destroy the sink.
  virtual void Unregister(NodeId id) = 0;

  // Best-effort datagram from `src` to `dst`. Unknown destinations and full buffers drop the
  // message, exactly like the network the protocol is built to survive.
  virtual void Send(NodeId src, NodeId dst, Bytes message) = 0;
};

}  // namespace bft

#endif  // SRC_RUNTIME_TRANSPORT_H_

// Service state, hierarchical partition tree, and checkpoint management (Section 5.3).
//
// The service state is a flat, page-addressable memory region. Services must call Modify()
// (the paper's Byz_modify) before writing a region. State is covered by a partition tree:
// the root is the whole state, each interior partition splits into `branching` children, and
// the leaves are pages. Every partition carries (lm, d): the checkpoint at whose epoch it was
// last modified and its digest. Page digests hash the page value; interior digests combine
// child digests with AdHash, so a checkpoint only re-digests dirty pages and updates O(levels)
// interior nodes per dirty page (incremental, Merkle-tree-inspired).
//
// Checkpoints are logical copy-on-write snapshots: checkpoint k records the values at k of
// exactly the partitions modified in the epoch ending at k. The oldest retained checkpoint is
// a full snapshot (entries are merged forward when older checkpoints are discarded), so the
// value of any partition at any retained checkpoint is found by scanning checkpoints newest-
// to-oldest from the target. This supports rollback (tentative-execution aborts, Section
// 5.1.2) and the state-transfer server side (Section 5.3.2).
#ifndef SRC_CORE_STATE_H_
#define SRC_CORE_STATE_H_

#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/config.h"
#include "src/core/messages.h"
#include "src/crypto/adhash.h"
#include "src/crypto/digest.h"
#include "src/core/cpu_meter.h"
#include "src/model/perf_model.h"

namespace bft {

class ReplicaState {
 public:
  ReplicaState(const ReplicaConfig* config, const PerfModel* model);

  // --- Geometry ------------------------------------------------------------------------------
  size_t size_bytes() const { return data_.size(); }
  size_t page_size() const { return config_->page_size; }
  size_t num_pages() const { return num_pages_; }
  uint32_t leaf_level() const { return leaf_level_; }
  // Number of partitions at `level` (level 0 = root, leaf_level() = pages).
  uint64_t PartsAtLevel(uint32_t level) const;

  // --- Service access ------------------------------------------------------------------------
  const uint8_t* data() const { return data_.data(); }
  void Read(size_t offset, size_t len, uint8_t* out) const;
  // Marks [offset, offset+len) dirty; must be called before any in-place mutation.
  void Modify(size_t offset, size_t len);
  // Modify() + copy-in.
  void Write(size_t offset, ByteView bytes);
  // Marks dirty and returns a mutable pointer (the region must not cross the state end).
  uint8_t* MutableRange(size_t offset, size_t len);

  // --- Checkpoints -----------------------------------------------------------------------------
  // Establishes checkpoint 0 as a full snapshot of the current (initialized) state.
  // Must be called once, after the service initializes its state, before any protocol activity.
  void Baseline(const Bytes& extra);

  // Takes checkpoint `seq`: re-digests dirty pages, updates the tree incrementally, and records
  // the copy-on-write snapshot. `extra` is opaque replica metadata snapshotted with the state
  // (the last-reply table, per the paper). Charges digest costs to `cpu` if non-null.
  // Returns the checkpoint's full digest.
  Digest TakeCheckpoint(SeqNo seq, const Bytes& extra, CpuMeter* cpu);

  bool HasCheckpoint(SeqNo seq) const { return checkpoints_.count(seq) != 0; }
  Digest CheckpointDigest(SeqNo seq) const;
  Bytes CheckpointExtra(SeqNo seq) const;
  SeqNo NewestCheckpoint() const;
  SeqNo OldestCheckpoint() const;

  // Discards checkpoints with seq < keep_from, merging their entries forward so the oldest
  // retained checkpoint remains a full snapshot.
  void DiscardCheckpointsBelow(SeqNo keep_from);

  // Reverts the current state to checkpoint `seq` (which must be retained). Checkpoints newer
  // than `seq` are discarded. Returns the checkpoint's extra blob.
  Bytes RollbackToCheckpoint(SeqNo seq);

  // --- State transfer: server side -------------------------------------------------------------
  // Sub-partition metadata of partition (level, index) as of checkpoint `target`.
  // Empty result if `target` is not retained.
  std::vector<MetaDataMsg::Part> GetMetaData(uint32_t level, uint64_t index, SeqNo target) const;
  // Page value + lm at checkpoint `target`; nullopt if not retained.
  std::optional<std::pair<SeqNo, Bytes>> GetPage(uint64_t index, SeqNo target) const;
  // (lm, digest) of any partition at checkpoint `target`; nullopt if not retained.
  std::optional<std::pair<SeqNo, Digest>> GetNodeInfo(uint32_t level, uint64_t index,
                                                      SeqNo target) const;
  // Live (lm, digest) of any partition in the current tree.
  std::pair<SeqNo, Digest> LiveNodeInfo(uint32_t level, uint64_t index) const;

  // --- State transfer: fetcher side -------------------------------------------------------------
  // Overwrites a page with a fetched value (marks tree entries; no checkpoint bookkeeping).
  void ApplyFetchedPage(uint64_t index, SeqNo lm, ByteView value);
  // After all pages for checkpoint `seq` are in place: resets checkpoint history to a single
  // full snapshot at `seq`. Returns its full digest (caller verifies against the certificate).
  Digest FinalizeFetchedCheckpoint(SeqNo seq, const Bytes& extra);

  // Digest the current in-memory state would have if checkpointed at `seq` — used by recovery's
  // state checking. Does not modify checkpoint history.
  Digest CurrentRootDigest() const;
  Digest ComputeFullDigest(const Digest& root, const Bytes& extra) const;

  // Expected digest of a page with the given index/lm/value — fetchers verify DATA replies.
  static Digest PageDigest(uint64_t index, SeqNo lm, ByteView value);

  size_t dirty_page_count() const { return dirty_pages_.size(); }
  const std::set<uint64_t>& dirty_pages() const { return dirty_pages_; }

 private:
  struct PageEntry {
    SeqNo lm = 0;
    Digest d;
    Bytes value;
  };
  struct NodeEntry {
    SeqNo lm = 0;
    Digest d;
  };
  struct Checkpoint {
    SeqNo seq = 0;
    Digest full_digest;
    Bytes extra;
    std::map<uint64_t, PageEntry> pages;
    std::map<std::pair<uint32_t, uint64_t>, NodeEntry> nodes;  // interior partitions
  };

  struct LiveNode {
    SeqNo lm = 0;
    Digest d;
    AdHash sum;  // AdHash over child digests (interior nodes only)
  };

  Digest InteriorDigest(uint32_t level, uint64_t index, SeqNo lm, const AdHash& sum) const;
  // Recomputes every interior node from the current leaves (used by rollback and fetch).
  void RebuildInterior();
  // Recomputes digests for the given dirty pages as of checkpoint `seq` and updates ancestors.
  // Records copy-on-write entries into `record` if non-null. Charges costs to `cpu`.
  void UpdateTree(SeqNo seq, const std::set<uint64_t>& pages, Checkpoint* record, CpuMeter* cpu);

  // Value of a page / interior node at a retained checkpoint (scans newest<=target backwards).
  const PageEntry* LookupPage(uint64_t index, SeqNo target) const;
  const NodeEntry* LookupNode(uint32_t level, uint64_t index, SeqNo target) const;

  const ReplicaConfig* config_;
  const PerfModel* model_;
  Bytes data_;
  size_t num_pages_;
  uint32_t leaf_level_;

  // Live partition tree: leaves_[i] for pages; interior_[level][index] for levels < leaf.
  std::vector<LiveNode> leaves_;
  std::vector<std::vector<LiveNode>> interior_;

  std::set<uint64_t> dirty_pages_;
  std::map<SeqNo, Checkpoint> checkpoints_;
};

}  // namespace bft

#endif  // SRC_CORE_STATE_H_

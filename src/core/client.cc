#include "src/core/client.h"

#include <cassert>

#include "src/common/logging.h"

namespace bft {

namespace {
constexpr NodeId kEveryone = 0xffffffff;
}

Client::Client(std::unique_ptr<Endpoint> endpoint, const ReplicaConfig* config,
               const PerfModel* model, PublicKeyDirectory* directory, uint64_t seed)
    : ep_(std::move(endpoint)),
      config_(config),
      model_(model),
      auth_(ep_->id(), config, model, directory, directory->Generate(ep_->id(), seed)),
      rng_(seed ^ (ep_->id() * 0xd1342543de82ef95ULL)),
      retry_timeout_(config->client_retry_timeout) {
  assert(IsClientId(id()));
  InstallObservability(&MetricsRegistry::Process(), nullptr);
  ep_->SetHandler([this](MsgBuffer message) { OnMessage(std::move(message)); });
}

void Client::InstallObservability(MetricsRegistry* registry, RequestTracer* tracer) {
  tracer_ = tracer;
  std::string node = "client=\"" + std::to_string(id()) + "\"";
  obs_.ops = registry->GetCounter("bft_client_ops_total", node);
  obs_.retransmissions = registry->GetCounter("bft_client_retransmissions_total", node);
  obs_.view_probes = registry->GetCounter("bft_client_view_probe_total", node);
  obs_.latency = registry->GetHistogram("bft_client_latency_us", node);
}

// Quiesce the endpoint before any member dies: a real-clock runtime's loop thread may
// otherwise still be dispatching into this object while it is being torn down.
Client::~Client() { ep_->Close(); }

void Client::Invoke(Bytes op, bool read_only, Callback callback) {
  assert(!busy_);
  busy_ = true;
  callback_ = std::move(callback);
  replies_.clear();
  issued_at_ = Now();
  retry_timeout_ = RetryBase();
  retries_this_op_ = 0;
  current_read_only_path_ = read_only && config_->read_only_optimization;

  current_ = RequestMsg{};
  current_.client = id();
  current_.timestamp = ++last_timestamp_;
  current_.read_only = current_read_only_path_;
  // Digest-replies optimization: one replica is designated to return the full result.
  current_.designated_replier =
      config_->digest_replies
          ? config_->ReplicaId(static_cast<int>(rng_.Below(config_->n)))
          : kEveryone;
  current_.op = std::move(op);

  if (tracer_ != nullptr && tracer_->enabled() &&
      tracer_->Sampled(current_.client, current_.timestamp)) {
    tracer_->Stamp(TracePhase::kDispatch, current_.client, current_.timestamp, Now());
  }
  cpu().Charge(model_->DigestCost(current_.op.size()));
  SendCurrentRequest(/*broadcast=*/current_read_only_path_ ||
                     current_.op.size() > config_->separate_transmission_threshold);
}

void Client::SendCurrentRequest(bool broadcast) {
  // BFT: an authenticator with one MAC per replica. BFT-PK: a signature.
  current_.auth = auth_.GenAuthMulticast(current_.AuthContent(), &cpu());
  // Encode once: broadcast shares the same refcounted buffer across all replicas.
  MsgBuffer wire = EncodeMessage(Message(current_));
  if (broadcast) {
    // Read-only requests, large requests (separate transmission), and retransmissions go to
    // every replica.
    MulticastTo(config_->ReplicaIds(), wire);
  } else {
    SendTo(config_->PrimaryOf(view_), std::move(wire));
  }
  if (retry_timer_running_) {
    CancelTimer(retry_timer_);
  }
  retry_timer_running_ = true;
  retry_timer_ = SetTimer(retry_timeout_, [this]() { OnRetryTimer(); });
}

void Client::OnRetryTimer() {
  retry_timer_running_ = false;
  if (!busy_) {
    return;
  }
  ++stats_.retransmissions;
  obs_.retransmissions->Inc();
  if (retries_this_op_++ > 0) {
    // See Stats::view_probes: from the second timeout on, the broadcast below is probing
    // for a faulty primary, not recovering from a lost datagram.
    ++stats_.view_probes;
    obs_.view_probes->Inc();
  }
  // Randomized exponential backoff (Section 5.2), capped so a healed service is re-probed
  // within bounded time. Base, cap, and jitter come from the per-client ClientConfig.
  SimTime jitter =
      client_config_.retry_jitter > 0 ? rng_.Below(client_config_.retry_jitter) : 0;
  retry_timeout_ = std::min(retry_timeout_ * 2 + jitter, RetryCap());

  if (current_read_only_path_) {
    // A read-only request that cannot assemble a certificate (e.g., concurrent writes or
    // faulty replicas) is re-issued as a regular read-write request (Section 5.1.3).
    current_read_only_path_ = false;
    current_.read_only = false;
    replies_.clear();
  }
  // Retransmissions request full replies from everyone so the result is sure to arrive.
  current_.designated_replier = kEveryone;
  SendCurrentRequest(/*broadcast=*/true);
}

void Client::OnMessage(MsgBuffer raw) {
  std::optional<Message> decoded = DecodeMessage(raw.view());
  if (!decoded.has_value() || !std::holds_alternative<ReplyMsg>(*decoded)) {
    return;
  }
  ReplyMsg m = std::get<ReplyMsg>(std::move(*decoded));
  if (!busy_ || m.client != id() || m.timestamp != current_.timestamp) {
    return;
  }
  if (!config_->IsReplicaMember(m.replica)) {
    return;
  }
  if (!auth_.VerifyAuthPoint(m.replica, m.AuthContent(), m.auth, &cpu())) {
    return;
  }
  if (m.has_result) {
    cpu().Charge(model_->DigestCost(m.result.size()));
    if (ComputeDigest(m.result) != m.result_digest) {
      return;  // result does not match its digest: bogus
    }
  }

  ReplyRecord rec;
  rec.result_digest = m.result_digest;
  rec.tentative = m.tentative;
  rec.has_result = m.has_result;
  rec.result = std::move(m.result);
  rec.view = m.view;
  replies_[m.replica] = std::move(rec);

  // Track the view (and hence the primary) from replies.
  view_ = std::max(view_, m.view);

  // Certificate check: f+1 matching non-tentative replies, or 2f+1 matching replies when any
  // of them are tentative (and always 2f+1 on the read-only path).
  std::map<Digest, std::pair<int, int>> counts;  // digest -> (total, non-tentative)
  for (const auto& [r, rep] : replies_) {
    auto& c = counts[rep.result_digest];
    ++c.first;
    if (!rep.tentative) {
      ++c.second;
    }
  }
  for (const auto& [digest, c] : counts) {
    bool strong_ok = c.first >= config_->quorum();
    bool weak_ok = c.second >= config_->weak() && !current_read_only_path_;
    if (!strong_ok && !weak_ok) {
      continue;
    }
    // Find the full result among the matching replies.
    for (const auto& [r, rep] : replies_) {
      if (rep.result_digest == digest && rep.has_result) {
        Complete(rep.result);
        return;
      }
    }
    // Certificate complete but the designated replier's full result is missing: ask everyone.
    current_.designated_replier = kEveryone;
    SendCurrentRequest(/*broadcast=*/true);
    return;
  }
}

void Client::Complete(Bytes result) {
  busy_ = false;
  if (retry_timer_running_) {
    CancelTimer(retry_timer_);
    retry_timer_running_ = false;
  }
  ++stats_.ops_completed;
  stats_.last_latency = Now() - issued_at_;
  stats_.total_latency += stats_.last_latency;
  obs_.ops->Inc();
  obs_.latency->Record(static_cast<uint64_t>(stats_.last_latency / kMicrosecond));
  if (tracer_ != nullptr && tracer_->enabled() &&
      tracer_->Sampled(current_.client, current_.timestamp)) {
    tracer_->Stamp(TracePhase::kCertified, current_.client, current_.timestamp, Now());
  }
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  replies_.clear();
  if (cb) {
    cb(std::move(result));
  }
}

}  // namespace bft

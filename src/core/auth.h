// Message authentication for replicas and clients (Sections 3.2.1, 4.3.1).
//
// BFT mode: every node pair (i, j) shares a session key k_{i,j} used for messages from i to j.
// Multicasts carry an authenticator — a vector of per-replica MAC tags over the message's
// fixed-size header. Keys are refreshed in epochs: node j's NEW-KEY message moves j's incoming
// keys to a new epoch, and j rejects anything authenticated under an older epoch ("freshness").
//
// Key distribution substitution: the real library encrypts fresh keys under the receiver's
// public key inside NEW-KEY messages. In the simulator both ends *derive* k_{i,j} for epoch e
// as H(master || i || j || e); the NEW-KEY message then only needs to announce the epoch bump.
// This preserves everything the protocol observes — which messages authenticate under which
// epoch, and when stale messages get rejected — without modelling encryption (DESIGN.md).
//
// BFT-PK mode: authenticators are replaced by signatures from the node's private key.
#ifndef SRC_CORE_AUTH_H_
#define SRC_CORE_AUTH_H_

#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>

#include "src/core/config.h"
#include "src/core/cpu_meter.h"
#include "src/crypto/mac.h"
#include "src/crypto/signature.h"
#include "src/model/perf_model.h"

namespace bft {

class AuthContext {
 public:
  AuthContext(NodeId self, const ReplicaConfig* config, const PerfModel* model,
              PublicKeyDirectory* directory, std::unique_ptr<PrivateKey> private_key)
      : self_(self),
        config_(config),
        model_(model),
        directory_(directory),
        private_key_(std::move(private_key)) {}

  NodeId self() const { return self_; }
  AuthMode mode() const { return config_->auth_mode; }

  // --- Epoch management (Section 4.3.1) ----------------------------------------------------
  // Epoch this node announces for its incoming keys.
  uint64_t my_epoch() const { return my_epoch_; }
  // Called when this node issues a NEW-KEY message.
  void BumpMyEpoch() { ++my_epoch_; }
  // Called when a (verified) NEW-KEY from `peer` announces `epoch`.
  // Returns false if the epoch is not monotonically increasing (replay / stale).
  bool SetPeerEpoch(NodeId peer, uint64_t epoch);
  uint64_t PeerEpoch(NodeId peer) const;

  // --- MAC-mode primitives -----------------------------------------------------------------
  // Session key for messages from `src` to `dst` under the epoch `dst` currently announces
  // (as known to this node).
  Bytes KeyFor(NodeId src, NodeId dst) const;

  // Hot-path key lookup: derived key plus precomputed HMAC state, cached per (src, dst) and
  // recomputed only when the governing NEW-KEY epoch moves. A MAC through this path costs two
  // SHA-256 finishes; the uncached path pays key derivation plus the full HMAC key schedule
  // on every call.
  const HmacState& MacStateFor(NodeId src, NodeId dst) const;

  // Authenticator over `content` for a multicast to all replicas. Charges (n-1) MACs (or n if
  // the sender is a client, which must cover every replica).
  Bytes GenerateAuthenticator(ByteView content, CpuMeter* cpu) const;

  // Verifies this node's slot of `sender`'s authenticator. Charges one MAC.
  bool VerifyAuthenticator(NodeId sender, ByteView content, ByteView auth, CpuMeter* cpu) const;

  // Verifies the slot belonging to `slot_owner` instead of self — used by condition A2-style
  // checks and by tests.
  bool VerifyAuthenticatorSlot(NodeId sender, NodeId slot_owner, ByteView content,
                               ByteView auth) const;

  // Single point-to-point MAC.
  Bytes GenerateMac(NodeId dst, ByteView content, CpuMeter* cpu) const;
  bool VerifyMac(NodeId sender, ByteView content, ByteView auth, CpuMeter* cpu) const;

  // Session-cache effectiveness (PR 3 built the cache; these report it at run time). A hit
  // reuses the precomputed HMAC state; a miss pays key derivation plus the HMAC key
  // schedule. Relaxed atomics so an admin/export thread can read while the owning loop
  // thread authenticates.
  uint64_t mac_cache_hits() const { return cache_hits_.load(std::memory_order_relaxed); }
  uint64_t mac_cache_misses() const { return cache_misses_.load(std::memory_order_relaxed); }

  // --- Signature-mode primitives -----------------------------------------------------------
  Bytes GenerateSignature(ByteView content, CpuMeter* cpu) const;
  bool VerifySignature(NodeId sender, ByteView content, ByteView auth, CpuMeter* cpu) const;

  // --- Mode-dispatched helpers used by the protocol ----------------------------------------
  // Authentication trailer for a message multicast to the replica group.
  Bytes GenAuthMulticast(ByteView content, CpuMeter* cpu) const {
    return mode() == AuthMode::kMac ? GenerateAuthenticator(content, cpu)
                                    : GenerateSignature(content, cpu);
  }
  bool VerifyAuthMulticast(NodeId sender, ByteView content, ByteView auth, CpuMeter* cpu) const {
    return mode() == AuthMode::kMac ? VerifyAuthenticator(sender, content, auth, cpu)
                                    : VerifySignature(sender, content, auth, cpu);
  }
  // Trailer for a point-to-point message.
  Bytes GenAuthPoint(NodeId dst, ByteView content, CpuMeter* cpu) const {
    return mode() == AuthMode::kMac ? GenerateMac(dst, content, cpu)
                                    : GenerateSignature(content, cpu);
  }
  bool VerifyAuthPoint(NodeId sender, ByteView content, ByteView auth, CpuMeter* cpu) const {
    return mode() == AuthMode::kMac ? VerifyMac(sender, content, auth, cpu)
                                    : VerifySignature(sender, content, auth, cpu);
  }

 private:
  struct SessionKey {
    // Sentinel: epochs start at 0 and only grow, so the first lookup always derives.
    uint64_t epoch = ~uint64_t{0};
    Bytes key;
    HmacState hmac;
  };

  // Epoch governing the (src, dst) session key, and the derived entry for it. The cache is
  // mutable bookkeeping: observable MACs are identical with or without it.
  uint64_t EpochFor(NodeId src, NodeId dst) const;
  const SessionKey& SessionFor(NodeId src, NodeId dst) const;

  NodeId self_;
  const ReplicaConfig* config_;
  const PerfModel* model_;
  PublicKeyDirectory* directory_;
  std::unique_ptr<PrivateKey> private_key_;
  uint64_t my_epoch_ = 0;
  std::map<NodeId, uint64_t> peer_epochs_;
  // Keyed by (src, dst) packed into 64 bits. Entries self-invalidate when the governing epoch
  // moves. Bounded: a Byzantine flood of fabricated sender ids must not grow memory without
  // limit, so the cache is dropped wholesale past kMaxSessionCache and rebuilt on demand.
  static constexpr size_t kMaxSessionCache = 4096;
  mutable std::unordered_map<uint64_t, SessionKey> session_cache_;
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
};

}  // namespace bft

#endif  // SRC_CORE_AUTH_H_

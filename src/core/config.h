// Configuration for a BFT replica group.
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/core/clock.h"
#include "src/model/perf_model.h"

namespace bft {

// Replicas use node ids [0, n); clients use ids >= kClientIdBase.
constexpr NodeId kClientIdBase = 1000;

// Default first id of the reserved *admin* client range (see ReplicaConfig::admin_id_base):
// admin clients are ordinary authenticated clients whose id falls at or above this mark.
// Administrative service operations (the MIG_*/REB_* control-plane verbs) execute only for
// admin clients; everyone else gets Service::AccessDeniedResult(). Far above any id a
// harness hands out for regular load clients.
constexpr NodeId kAdminIdBase = 1u << 30;

inline bool IsClientId(NodeId id) { return id >= kClientIdBase; }

struct ReplicaConfig {
  // Group size. |R| = 3f+1; more replicas are tolerated but degrade performance (Section 2.3).
  int n = 4;

  // First node id of this group. Replicas occupy ids [base_id, base_id + n); independent
  // groups sharing one network (sharding, src/shard/) must use disjoint ranges below
  // kClientIdBase. The default 0 preserves the single-group layout.
  NodeId base_id = 0;

  // Reserved admin client-id range: authenticated clients with id >= admin_id_base may issue
  // administrative service operations (Service::IsAdminOp — the MIG_* migration verbs and
  // REB_* rebalance queries). Replicas reject admin ops from any other client with
  // Service::AccessDeniedResult() *before* the service executes them, so a Byzantine — or
  // merely buggy — regular client cannot seal, purge, or move a bucket. The check is pure
  // config + request, hence deterministic across the group.
  NodeId admin_id_base = kAdminIdBase;
  bool IsAdminClient(NodeId id) const { return id >= admin_id_base; }
  int f() const { return (n - 1) / 3; }
  int quorum() const { return 2 * f() + 1; }       // quorum certificate size
  int weak() const { return f() + 1; }             // weak certificate size

  // BFT (MACs) vs BFT-PK (signatures).
  AuthMode auth_mode = AuthMode::kMac;

  // Garbage collection (Section 2.3.4): checkpoints every K requests; log spans L = 2K.
  uint64_t checkpoint_period = 128;
  uint64_t log_size = 256;

  // --- Optimizations (Section 5.1), all individually toggleable for the ablation bench ------
  bool tentative_execution = true;
  bool digest_replies = true;
  size_t digest_reply_threshold = 32;              // bytes; smaller results are sent by all
  bool read_only_optimization = true;
  bool batching = true;
  size_t max_batch_requests = 16;                  // request digests per pre-prepare (Fig 6-1)
  size_t max_batch_bytes = 8192;
  size_t batch_window = 4;                         // sliding window of open protocol instances
  size_t separate_transmission_threshold = 255;    // bytes; larger requests multicast by client

  // --- Timers -------------------------------------------------------------------------------
  SimTime view_change_timeout = 50 * kMillisecond;  // T; doubles per consecutive view change
  // Backoff cap: the paper doubles without bound until an operation executes; a cap bounds
  // how long a healed group takes to converge after a long quorum-less outage.
  SimTime max_view_change_timeout = 10 * kSecond;
  SimTime status_interval = 20 * kMillisecond;
  SimTime client_retry_timeout = 150 * kMillisecond;
  SimTime max_client_retry_timeout = 10 * kSecond;

  // --- Service state / checkpointing --------------------------------------------------------
  size_t page_size = 4096;
  size_t state_pages = 256;                        // service state = state_pages * page_size
  size_t partition_branching = 16;                 // children per internal partition ("s")

  // --- Proactive recovery (Chapter 4) --------------------------------------------------------
  bool proactive_recovery = false;
  SimTime watchdog_period = 80 * kSecond;          // Tw
  SimTime key_refresh_period = 15 * kSecond;       // Tk
  SimTime recovery_reboot_time = 30 * kSecond;     // simulated reboot + code check

  // Node id of the group member at `index` in [0, n).
  NodeId ReplicaId(int index) const { return base_id + static_cast<NodeId>(index); }

  bool IsReplicaMember(NodeId id) const {
    return id >= base_id && id < base_id + static_cast<NodeId>(n);
  }

  // Position of a member id within the group; only meaningful when IsReplicaMember(id).
  int ReplicaIndex(NodeId id) const { return static_cast<int>(id - base_id); }

  std::vector<NodeId> ReplicaIds() const {
    std::vector<NodeId> ids;
    ids.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(ReplicaId(i));
    }
    return ids;
  }

  NodeId PrimaryOf(uint64_t view) const { return ReplicaId(static_cast<int>(view % n)); }
};

// Per-client retransmission tuning (the Section 5.2 randomized exponential backoff). Zero
// fields inherit the group-wide ReplicaConfig timers, so existing harnesses are unchanged;
// chaos and load harnesses tighten the base/cap per client without touching the shared
// group config every replica also reads.
struct ClientConfig {
  SimTime retry_timeout = 0;      // backoff base; 0 = ReplicaConfig::client_retry_timeout
  SimTime max_retry_timeout = 0;  // backoff cap; 0 = ReplicaConfig::max_client_retry_timeout
  SimTime retry_jitter = 10 * kMillisecond;  // uniform extra per doubling (0 = deterministic)
};

}  // namespace bft

#endif  // SRC_CORE_CONFIG_H_

#include "src/core/messages.h"

namespace bft {

namespace {
// Upper bound on decoded vector lengths; a Byzantine sender must not be able to force huge
// allocations with a tiny message.
constexpr uint32_t kMaxVec = 1 << 20;

bool ReadCount(Reader& r, uint32_t* out) {
  *out = r.U32();
  return r.ok() && *out <= kMaxVec;
}
}  // namespace

void WriteDigest(Writer& w, const Digest& d) { w.Raw(d.View()); }

bool ReadDigest(Reader& r, Digest* d) {
  Bytes raw = r.Raw(Digest::kSize);
  if (!r.ok()) {
    return false;
  }
  std::copy(raw.begin(), raw.end(), d->bytes.begin());
  return true;
}

// --- RequestMsg ---------------------------------------------------------------------------------

namespace {
void RequestCore(const RequestMsg& m, Writer& w) {
  w.U32(m.client);
  w.U64(m.timestamp);
  w.Bool(m.read_only);
  w.U32(m.designated_replier);
  w.Var(m.op);
}
}  // namespace

Digest RequestMsg::RequestDigest() const {
  Writer w;
  w.U32(client);
  w.U64(timestamp);
  w.Var(op);
  return ComputeDigest(w.data());
}

void RequestMsg::EncodeBody(Writer& w) const {
  RequestCore(*this, w);
  w.Var(auth);
}

Bytes RequestMsg::AuthContent() const {
  Writer w;
  RequestCore(*this, w);
  return w.Take();
}

bool RequestMsg::DecodeBody(Reader& r, RequestMsg* out) {
  out->client = r.U32();
  out->timestamp = r.U64();
  out->read_only = r.Bool();
  out->designated_replier = r.U32();
  out->op = r.Var();
  out->auth = r.Var();
  return r.ok();
}

// --- ReplyMsg -----------------------------------------------------------------------------------

namespace {
void ReplyCore(const ReplyMsg& m, Writer& w) {
  w.U64(m.view);
  w.U64(m.timestamp);
  w.U32(m.client);
  w.U32(m.replica);
  w.Bool(m.tentative);
  w.Bool(m.has_result);
  w.Var(m.result);
  WriteDigest(w, m.result_digest);
}
}  // namespace

void ReplyMsg::EncodeBody(Writer& w) const {
  ReplyCore(*this, w);
  w.Var(auth);
}

Bytes ReplyMsg::AuthContent() const {
  // The MAC covers only the fixed-size header fields plus the result digest (Fig 6-1): the
  // bulk result is checked against the digest, keeping MAC cost independent of result size.
  Writer w;
  w.U64(view);
  w.U64(timestamp);
  w.U32(client);
  w.U32(replica);
  w.Bool(tentative);
  WriteDigest(w, result_digest);
  return w.Take();
}

bool ReplyMsg::DecodeBody(Reader& r, ReplyMsg* out) {
  out->view = r.U64();
  out->timestamp = r.U64();
  out->client = r.U32();
  out->replica = r.U32();
  out->tentative = r.Bool();
  out->has_result = r.Bool();
  out->result = r.Var();
  if (!ReadDigest(r, &out->result_digest)) {
    return false;
  }
  out->auth = r.Var();
  return r.ok();
}

// --- PrePrepareMsg ------------------------------------------------------------------------------

namespace {
void PrePrepareCore(const PrePrepareMsg& m, Writer& w) {
  w.U64(m.view);
  w.U64(m.seq);
  w.Var(m.ndet);
  w.U32(static_cast<uint32_t>(m.inline_requests.size()));
  for (const RequestMsg& req : m.inline_requests) {
    req.EncodeBody(w);
  }
  w.U32(static_cast<uint32_t>(m.separate_digests.size()));
  for (const Digest& d : m.separate_digests) {
    WriteDigest(w, d);
  }
}
}  // namespace

Digest PrePrepareMsg::BatchDigest() const {
  Writer w;
  w.Var(ndet);
  for (const Digest& d : OrderedRequestDigests()) {
    WriteDigest(w, d);
  }
  return ComputeDigest(w.data());
}

std::vector<Digest> PrePrepareMsg::OrderedRequestDigests() const {
  std::vector<Digest> out;
  out.reserve(inline_requests.size() + separate_digests.size());
  for (const RequestMsg& req : inline_requests) {
    out.push_back(req.RequestDigest());
  }
  for (const Digest& d : separate_digests) {
    out.push_back(d);
  }
  return out;
}

void PrePrepareMsg::EncodeBody(Writer& w) const {
  PrePrepareCore(*this, w);
  w.Var(auth);
}

Bytes PrePrepareMsg::AuthContent() const {
  // Fixed-size header: view, seq, and the batch digest (Fig 6-1 pre-prepare header).
  Writer w;
  w.U64(view);
  w.U64(seq);
  WriteDigest(w, BatchDigest());
  return w.Take();
}

bool PrePrepareMsg::DecodeBody(Reader& r, PrePrepareMsg* out) {
  out->view = r.U64();
  out->seq = r.U64();
  out->ndet = r.Var();
  uint32_t n_inline = 0;
  if (!ReadCount(r, &n_inline)) {
    return false;
  }
  out->inline_requests.resize(n_inline);
  for (uint32_t i = 0; i < n_inline; ++i) {
    if (!RequestMsg::DecodeBody(r, &out->inline_requests[i])) {
      return false;
    }
  }
  uint32_t n_sep = 0;
  if (!ReadCount(r, &n_sep)) {
    return false;
  }
  out->separate_digests.resize(n_sep);
  for (uint32_t i = 0; i < n_sep; ++i) {
    if (!ReadDigest(r, &out->separate_digests[i])) {
      return false;
    }
  }
  out->auth = r.Var();
  return r.ok();
}

// --- PrepareMsg / CommitMsg / CheckpointMsg -----------------------------------------------------

namespace {
template <typename T>
void PhaseCore(const T& m, Writer& w) {
  w.U64(m.view);
  w.U64(m.seq);
  WriteDigest(w, m.batch_digest);
  w.U32(m.replica);
}

template <typename T>
bool PhaseDecode(Reader& r, T* out) {
  out->view = r.U64();
  out->seq = r.U64();
  if (!ReadDigest(r, &out->batch_digest)) {
    return false;
  }
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}
}  // namespace

void PrepareMsg::EncodeBody(Writer& w) const {
  PhaseCore(*this, w);
  w.Var(auth);
}

Bytes PrepareMsg::AuthContent() const {
  Writer w;
  PhaseCore(*this, w);
  return w.Take();
}

bool PrepareMsg::DecodeBody(Reader& r, PrepareMsg* out) { return PhaseDecode(r, out); }

void CommitMsg::EncodeBody(Writer& w) const {
  PhaseCore(*this, w);
  w.Var(auth);
}

Bytes CommitMsg::AuthContent() const {
  Writer w;
  PhaseCore(*this, w);
  return w.Take();
}

bool CommitMsg::DecodeBody(Reader& r, CommitMsg* out) { return PhaseDecode(r, out); }

namespace {
void CheckpointCore(const CheckpointMsg& m, Writer& w) {
  w.U64(m.seq);
  WriteDigest(w, m.state_digest);
  w.U32(m.replica);
}
}  // namespace

void CheckpointMsg::EncodeBody(Writer& w) const {
  CheckpointCore(*this, w);
  w.Var(auth);
}

Bytes CheckpointMsg::AuthContent() const {
  Writer w;
  CheckpointCore(*this, w);
  return w.Take();
}

bool CheckpointMsg::DecodeBody(Reader& r, CheckpointMsg* out) {
  out->seq = r.U64();
  if (!ReadDigest(r, &out->state_digest)) {
    return false;
  }
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}

// --- ViewChangeMsg ------------------------------------------------------------------------------

namespace {
void ViewChangeCore(const ViewChangeMsg& m, Writer& w) {
  w.U64(m.view);
  w.U64(m.h);
  w.U32(static_cast<uint32_t>(m.checkpoints.size()));
  for (const auto& [seq, d] : m.checkpoints) {
    w.U64(seq);
    WriteDigest(w, d);
  }
  w.U32(static_cast<uint32_t>(m.p.size()));
  for (const auto& e : m.p) {
    w.U64(e.seq);
    WriteDigest(w, e.d);
    w.U64(e.view);
  }
  w.U32(static_cast<uint32_t>(m.q.size()));
  for (const auto& e : m.q) {
    w.U64(e.seq);
    w.U32(static_cast<uint32_t>(e.dv.size()));
    for (const auto& [d, v] : e.dv) {
      WriteDigest(w, d);
      w.U64(v);
    }
  }
  w.U32(m.replica);
}
}  // namespace

Digest ViewChangeMsg::MessageDigest() const {
  Writer w;
  ViewChangeCore(*this, w);
  return ComputeDigest(w.data());
}

void ViewChangeMsg::EncodeBody(Writer& w) const {
  ViewChangeCore(*this, w);
  w.Var(auth);
}

Bytes ViewChangeMsg::AuthContent() const {
  Writer w;
  ViewChangeCore(*this, w);
  return w.Take();
}

bool ViewChangeMsg::DecodeBody(Reader& r, ViewChangeMsg* out) {
  out->view = r.U64();
  out->h = r.U64();
  uint32_t n_c = 0;
  if (!ReadCount(r, &n_c)) {
    return false;
  }
  out->checkpoints.resize(n_c);
  for (uint32_t i = 0; i < n_c; ++i) {
    out->checkpoints[i].first = r.U64();
    if (!ReadDigest(r, &out->checkpoints[i].second)) {
      return false;
    }
  }
  uint32_t n_p = 0;
  if (!ReadCount(r, &n_p)) {
    return false;
  }
  out->p.resize(n_p);
  for (uint32_t i = 0; i < n_p; ++i) {
    out->p[i].seq = r.U64();
    if (!ReadDigest(r, &out->p[i].d)) {
      return false;
    }
    out->p[i].view = r.U64();
  }
  uint32_t n_q = 0;
  if (!ReadCount(r, &n_q)) {
    return false;
  }
  out->q.resize(n_q);
  for (uint32_t i = 0; i < n_q; ++i) {
    out->q[i].seq = r.U64();
    uint32_t n_dv = 0;
    if (!ReadCount(r, &n_dv)) {
      return false;
    }
    out->q[i].dv.resize(n_dv);
    for (uint32_t j = 0; j < n_dv; ++j) {
      if (!ReadDigest(r, &out->q[i].dv[j].first)) {
        return false;
      }
      out->q[i].dv[j].second = r.U64();
    }
  }
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}

// --- ViewChangeAckMsg ---------------------------------------------------------------------------

namespace {
void VcAckCore(const ViewChangeAckMsg& m, Writer& w) {
  w.U64(m.view);
  w.U32(m.replica);
  w.U32(m.vc_sender);
  WriteDigest(w, m.vc_digest);
}
}  // namespace

void ViewChangeAckMsg::EncodeBody(Writer& w) const {
  VcAckCore(*this, w);
  w.Var(auth);
}

Bytes ViewChangeAckMsg::AuthContent() const {
  Writer w;
  VcAckCore(*this, w);
  return w.Take();
}

bool ViewChangeAckMsg::DecodeBody(Reader& r, ViewChangeAckMsg* out) {
  out->view = r.U64();
  out->replica = r.U32();
  out->vc_sender = r.U32();
  if (!ReadDigest(r, &out->vc_digest)) {
    return false;
  }
  out->auth = r.Var();
  return r.ok();
}

// --- BatchPayload / NewViewMsg ------------------------------------------------------------------

Digest BatchPayload::BatchDigest() const {
  Writer w;
  w.Var(ndet);
  for (const RequestMsg& req : requests) {
    WriteDigest(w, req.RequestDigest());
  }
  return ComputeDigest(w.data());
}

void BatchPayload::Encode(Writer& w) const {
  w.Var(ndet);
  w.U32(static_cast<uint32_t>(requests.size()));
  for (const RequestMsg& req : requests) {
    req.EncodeBody(w);
  }
}

bool BatchPayload::Decode(Reader& r, BatchPayload* out) {
  out->ndet = r.Var();
  uint32_t n = 0;
  if (!ReadCount(r, &n)) {
    return false;
  }
  out->requests.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!RequestMsg::DecodeBody(r, &out->requests[i])) {
      return false;
    }
  }
  return r.ok();
}

namespace {
void NewViewCore(const NewViewMsg& m, Writer& w) {
  w.U64(m.view);
  w.U32(static_cast<uint32_t>(m.vc_set.size()));
  for (const auto& [rep, d] : m.vc_set) {
    w.U32(rep);
    WriteDigest(w, d);
  }
  w.U64(m.min_s);
  WriteDigest(w, m.chkpt_digest);
  w.U32(static_cast<uint32_t>(m.chosen.size()));
  for (const auto& [seq, d] : m.chosen) {
    w.U64(seq);
    WriteDigest(w, d);
  }
}
}  // namespace

void NewViewMsg::EncodeBody(Writer& w) const {
  NewViewCore(*this, w);
  w.U32(static_cast<uint32_t>(payloads.size()));
  for (const BatchPayload& p : payloads) {
    p.Encode(w);
  }
  w.Var(auth);
}

Bytes NewViewMsg::AuthContent() const {
  // Payloads are self-certifying (checked against the chosen digests), so authentication
  // covers only the decision part.
  Writer w;
  NewViewCore(*this, w);
  return w.Take();
}

bool NewViewMsg::DecodeBody(Reader& r, NewViewMsg* out) {
  out->view = r.U64();
  uint32_t n_vc = 0;
  if (!ReadCount(r, &n_vc)) {
    return false;
  }
  out->vc_set.resize(n_vc);
  for (uint32_t i = 0; i < n_vc; ++i) {
    out->vc_set[i].first = r.U32();
    if (!ReadDigest(r, &out->vc_set[i].second)) {
      return false;
    }
  }
  out->min_s = r.U64();
  if (!ReadDigest(r, &out->chkpt_digest)) {
    return false;
  }
  uint32_t n_x = 0;
  if (!ReadCount(r, &n_x)) {
    return false;
  }
  out->chosen.resize(n_x);
  for (uint32_t i = 0; i < n_x; ++i) {
    out->chosen[i].first = r.U64();
    if (!ReadDigest(r, &out->chosen[i].second)) {
      return false;
    }
  }
  uint32_t n_pl = 0;
  if (!ReadCount(r, &n_pl)) {
    return false;
  }
  out->payloads.resize(n_pl);
  for (uint32_t i = 0; i < n_pl; ++i) {
    if (!BatchPayload::Decode(r, &out->payloads[i])) {
      return false;
    }
  }
  out->auth = r.Var();
  return r.ok();
}

// --- StatusMsg ----------------------------------------------------------------------------------

namespace {
void StatusCore(const StatusMsg& m, Writer& w) {
  w.U64(m.view);
  w.Bool(m.view_active);
  w.U64(m.last_stable);
  w.U64(m.last_exec);
  w.Var(m.prepared_bits);
  w.Var(m.committed_bits);
  w.Bool(m.has_new_view);
  w.Var(m.vc_have_bits);
  w.U32(m.replica);
}
}  // namespace

void StatusMsg::EncodeBody(Writer& w) const {
  StatusCore(*this, w);
  w.Var(auth);
}

Bytes StatusMsg::AuthContent() const {
  Writer w;
  StatusCore(*this, w);
  return w.Take();
}

bool StatusMsg::DecodeBody(Reader& r, StatusMsg* out) {
  out->view = r.U64();
  out->view_active = r.Bool();
  out->last_stable = r.U64();
  out->last_exec = r.U64();
  out->prepared_bits = r.Var();
  out->committed_bits = r.Var();
  out->has_new_view = r.Bool();
  out->vc_have_bits = r.Var();
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}

// --- State transfer -----------------------------------------------------------------------------

namespace {
void FetchCore(const FetchMsg& m, Writer& w) {
  w.U32(m.level);
  w.U64(m.index);
  w.U64(m.last_known);
  w.U64(m.target);
  w.U32(m.replier);
  w.U32(m.replica);
  w.U64(m.nonce);
}
}  // namespace

void FetchMsg::EncodeBody(Writer& w) const {
  FetchCore(*this, w);
  w.Var(auth);
}

Bytes FetchMsg::AuthContent() const {
  Writer w;
  FetchCore(*this, w);
  return w.Take();
}

bool FetchMsg::DecodeBody(Reader& r, FetchMsg* out) {
  out->level = r.U32();
  out->index = r.U64();
  out->last_known = r.U64();
  out->target = r.U64();
  out->replier = r.U32();
  out->replica = r.U32();
  out->nonce = r.U64();
  out->auth = r.Var();
  return r.ok();
}

namespace {
void MetaDataCore(const MetaDataMsg& m, Writer& w) {
  w.U64(m.target);
  w.U32(m.level);
  w.U64(m.index);
  w.U32(static_cast<uint32_t>(m.parts.size()));
  for (const auto& p : m.parts) {
    w.U64(p.index);
    w.U64(p.lm);
    WriteDigest(w, p.d);
  }
  w.Var(m.extra);
  w.U32(m.replica);
  w.U64(m.nonce);
}
}  // namespace

void MetaDataMsg::EncodeBody(Writer& w) const {
  MetaDataCore(*this, w);
  w.Var(auth);
}

Bytes MetaDataMsg::AuthContent() const {
  Writer w;
  MetaDataCore(*this, w);
  return w.Take();
}

bool MetaDataMsg::DecodeBody(Reader& r, MetaDataMsg* out) {
  out->target = r.U64();
  out->level = r.U32();
  out->index = r.U64();
  uint32_t n = 0;
  if (!ReadCount(r, &n)) {
    return false;
  }
  out->parts.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    out->parts[i].index = r.U64();
    out->parts[i].lm = r.U64();
    if (!ReadDigest(r, &out->parts[i].d)) {
      return false;
    }
  }
  out->extra = r.Var();
  out->replica = r.U32();
  out->nonce = r.U64();
  out->auth = r.Var();
  return r.ok();
}

void DataMsg::EncodeBody(Writer& w) const {
  w.U64(index);
  w.U64(lm);
  w.Var(value);
}

bool DataMsg::DecodeBody(Reader& r, DataMsg* out) {
  out->index = r.U64();
  out->lm = r.U64();
  out->value = r.Var();
  return r.ok();
}

// --- Batch fetch --------------------------------------------------------------------------------

void BatchFetchMsg::EncodeBody(Writer& w) const {
  WriteDigest(w, batch_digest);
  w.U32(replica);
  w.Var(auth);
}

Bytes BatchFetchMsg::AuthContent() const {
  Writer w;
  WriteDigest(w, batch_digest);
  w.U32(replica);
  return w.Take();
}

bool BatchFetchMsg::DecodeBody(Reader& r, BatchFetchMsg* out) {
  if (!ReadDigest(r, &out->batch_digest)) {
    return false;
  }
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}

void BatchReplyMsg::EncodeBody(Writer& w) const {
  payload.Encode(w);
  w.U32(replica);
  w.Var(auth);
}

Bytes BatchReplyMsg::AuthContent() const {
  // Self-certifying: the fetcher checks the payload against the digest it asked for.
  Writer w;
  w.U32(replica);
  return w.Take();
}

bool BatchReplyMsg::DecodeBody(Reader& r, BatchReplyMsg* out) {
  if (!BatchPayload::Decode(r, &out->payload)) {
    return false;
  }
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}

// --- Key management -----------------------------------------------------------------------------

namespace {
void NewKeyCore(const NewKeyMsg& m, Writer& w) {
  w.U32(m.replica);
  w.U64(m.epoch);
  w.U64(m.counter);
}
}  // namespace

void NewKeyMsg::EncodeBody(Writer& w) const {
  NewKeyCore(*this, w);
  w.Var(auth);
}

Bytes NewKeyMsg::AuthContent() const {
  Writer w;
  NewKeyCore(*this, w);
  return w.Take();
}

bool NewKeyMsg::DecodeBody(Reader& r, NewKeyMsg* out) {
  out->replica = r.U32();
  out->epoch = r.U64();
  out->counter = r.U64();
  out->auth = r.Var();
  return r.ok();
}

void QueryStableMsg::EncodeBody(Writer& w) const {
  w.U32(replica);
  w.U64(nonce);
  w.Var(auth);
}

Bytes QueryStableMsg::AuthContent() const {
  Writer w;
  w.U32(replica);
  w.U64(nonce);
  return w.Take();
}

bool QueryStableMsg::DecodeBody(Reader& r, QueryStableMsg* out) {
  out->replica = r.U32();
  out->nonce = r.U64();
  out->auth = r.Var();
  return r.ok();
}

namespace {
void ReplyStableCore(const ReplyStableMsg& m, Writer& w) {
  w.U64(m.last_checkpoint);
  w.U64(m.last_prepared);
  w.U64(m.nonce);
  w.U32(m.replica);
}
}  // namespace

void ReplyStableMsg::EncodeBody(Writer& w) const {
  ReplyStableCore(*this, w);
  w.Var(auth);
}

Bytes ReplyStableMsg::AuthContent() const {
  Writer w;
  ReplyStableCore(*this, w);
  return w.Take();
}

bool ReplyStableMsg::DecodeBody(Reader& r, ReplyStableMsg* out) {
  out->last_checkpoint = r.U64();
  out->last_prepared = r.U64();
  out->nonce = r.U64();
  out->replica = r.U32();
  out->auth = r.Var();
  return r.ok();
}

// --- Top-level ----------------------------------------------------------------------------------

MsgType TypeOf(const Message& m) {
  return static_cast<MsgType>(m.index() + 1);
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kRequest: return "request";
    case MsgType::kReply: return "reply";
    case MsgType::kPrePrepare: return "pre_prepare";
    case MsgType::kPrepare: return "prepare";
    case MsgType::kCommit: return "commit";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kViewChange: return "view_change";
    case MsgType::kViewChangeAck: return "view_change_ack";
    case MsgType::kNewView: return "new_view";
    case MsgType::kStatus: return "status";
    case MsgType::kFetch: return "fetch";
    case MsgType::kMetaData: return "meta_data";
    case MsgType::kData: return "data";
    case MsgType::kBatchFetch: return "batch_fetch";
    case MsgType::kBatchReply: return "batch_reply";
    case MsgType::kNewKey: return "new_key";
    case MsgType::kQueryStable: return "query_stable";
    case MsgType::kReplyStable: return "reply_stable";
  }
  return "unknown";
}

void EncodeMessageTo(Writer& w, const Message& m) {
  w.U8(static_cast<uint8_t>(TypeOf(m)));
  std::visit([&w](const auto& msg) { msg.EncodeBody(w); }, m);
}

Bytes EncodeMessage(const Message& m) {
  // Covers a batched pre-prepare with a few inline requests in one allocation; larger
  // messages (new-view, state-transfer data) fall back to doubling growth.
  Writer w(512);
  EncodeMessageTo(w, m);
  return w.Take();
}

std::optional<Message> DecodeMessage(ByteView wire) {
  Reader r(wire);
  uint8_t tag = r.U8();
  if (!r.ok()) {
    return std::nullopt;
  }

  auto finish = [&r](auto msg, bool ok) -> std::optional<Message> {
    if (!ok || !r.ok() || !r.AtEnd()) {
      return std::nullopt;
    }
    return Message(std::move(msg));
  };

  switch (static_cast<MsgType>(tag)) {
    case MsgType::kRequest: {
      RequestMsg m;
      return finish(m, RequestMsg::DecodeBody(r, &m));
    }
    case MsgType::kReply: {
      ReplyMsg m;
      return finish(m, ReplyMsg::DecodeBody(r, &m));
    }
    case MsgType::kPrePrepare: {
      PrePrepareMsg m;
      return finish(m, PrePrepareMsg::DecodeBody(r, &m));
    }
    case MsgType::kPrepare: {
      PrepareMsg m;
      return finish(m, PrepareMsg::DecodeBody(r, &m));
    }
    case MsgType::kCommit: {
      CommitMsg m;
      return finish(m, CommitMsg::DecodeBody(r, &m));
    }
    case MsgType::kCheckpoint: {
      CheckpointMsg m;
      return finish(m, CheckpointMsg::DecodeBody(r, &m));
    }
    case MsgType::kViewChange: {
      ViewChangeMsg m;
      return finish(m, ViewChangeMsg::DecodeBody(r, &m));
    }
    case MsgType::kViewChangeAck: {
      ViewChangeAckMsg m;
      return finish(m, ViewChangeAckMsg::DecodeBody(r, &m));
    }
    case MsgType::kNewView: {
      NewViewMsg m;
      return finish(m, NewViewMsg::DecodeBody(r, &m));
    }
    case MsgType::kStatus: {
      StatusMsg m;
      return finish(m, StatusMsg::DecodeBody(r, &m));
    }
    case MsgType::kFetch: {
      FetchMsg m;
      return finish(m, FetchMsg::DecodeBody(r, &m));
    }
    case MsgType::kMetaData: {
      MetaDataMsg m;
      return finish(m, MetaDataMsg::DecodeBody(r, &m));
    }
    case MsgType::kData: {
      DataMsg m;
      return finish(m, DataMsg::DecodeBody(r, &m));
    }
    case MsgType::kBatchFetch: {
      BatchFetchMsg m;
      return finish(m, BatchFetchMsg::DecodeBody(r, &m));
    }
    case MsgType::kBatchReply: {
      BatchReplyMsg m;
      return finish(m, BatchReplyMsg::DecodeBody(r, &m));
    }
    case MsgType::kNewKey: {
      NewKeyMsg m;
      return finish(m, NewKeyMsg::DecodeBody(r, &m));
    }
    case MsgType::kQueryStable: {
      QueryStableMsg m;
      return finish(m, QueryStableMsg::DecodeBody(r, &m));
    }
    case MsgType::kReplyStable: {
      ReplyStableMsg m;
      return finish(m, ReplyStableMsg::DecodeBody(r, &m));
    }
    default:
      return std::nullopt;
  }
}

}  // namespace bft

#include "src/core/view_change.h"

#include <algorithm>

namespace bft {

void ComputePq(const std::vector<SeqObservation>& log, PqState* pq) {
  for (const SeqObservation& obs : log) {
    if (obs.prepared) {
      // Fig 3-2: prepared/committed in the view being left supersedes older PSet info.
      pq->pset[obs.seq] = ViewChangeMsg::PEntry{obs.seq, obs.d, obs.view};
    }
    if (obs.pre_prepared || obs.prepared) {
      auto& dv = pq->qset[obs.seq];
      auto it = std::find_if(dv.begin(), dv.end(),
                             [&obs](const auto& e) { return e.first == obs.d; });
      if (it != dv.end()) {
        it->second = std::max(it->second, obs.view);
      } else {
        dv.emplace_back(obs.d, obs.view);
        if (dv.size() > kMaxQsetViews) {
          // Bounded space (Section 3.2.5): drop the pair with the lowest view.
          auto lowest = std::min_element(
              dv.begin(), dv.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
          dv.erase(lowest);
        }
      }
    }
  }
}

ViewChangeDecision RunDecisionProcedure(
    const ReplicaConfig& config, const std::map<NodeId, ViewChangeMsg>& s,
    const std::function<bool(const Digest&)>& have_payload) {
  ViewChangeDecision out;
  const int quorum = config.quorum();
  const int weak = config.weak();

  // --- Checkpoint selection -------------------------------------------------------------------
  // Pick the pair (n, d) with the highest n such that 2f+1 messages have h <= n (ordering info
  // for later requests is still available) and f+1 messages report checkpoint (n, d) (weak
  // certificate: the checkpoint is correct).
  bool found = false;
  SeqNo best_n = 0;
  Digest best_d;
  for (const auto& [sender, m] : s) {
    for (const auto& [n, d] : m.checkpoints) {
      if (found && n <= best_n) {
        continue;
      }
      int h_ok = 0;
      int c_ok = 0;
      for (const auto& [sender2, m2] : s) {
        if (m2.h <= n) {
          ++h_ok;
        }
        for (const auto& [n2, d2] : m2.checkpoints) {
          if (n2 == n && d2 == d) {
            ++c_ok;
            break;
          }
        }
      }
      if (h_ok >= quorum && c_ok >= weak) {
        found = true;
        best_n = n;
        best_d = d;
      }
    }
  }
  if (!found) {
    return out;
  }
  out.checkpoint_selected = true;
  out.min_s = best_n;
  out.chkpt_digest = best_d;

  // --- Per-sequence-number selection ------------------------------------------------------------
  // Decide each n in (min_s, max_n], where max_n is the highest sequence number any message
  // claims prepared; numbers beyond that need no pre-prepare in the new view.
  SeqNo max_n = out.min_s;
  for (const auto& [sender, m] : s) {
    for (const auto& e : m.p) {
      max_n = std::max(max_n, e.seq);
    }
  }
  max_n = std::min<SeqNo>(max_n, out.min_s + config.log_size);

  bool all_decided = true;
  for (SeqNo n = out.min_s + 1; n <= max_n; ++n) {
    bool decided = false;

    // Condition A: some message claims (n, d, v) prepared, verified by A1 + A2 (+ A3).
    for (const auto& [sender, m] : s) {
      if (decided) {
        break;
      }
      for (const auto& e : m.p) {
        if (e.seq != n) {
          continue;
        }
        // A1: 2f+1 messages m' with m'.h < n whose P entries for n do not contradict (d, v):
        // every (n, d', v') in m'.P has v' < v, or v' == v and d' == d.
        int a1 = 0;
        for (const auto& [sender2, m2] : s) {
          if (m2.h >= n) {
            continue;
          }
          bool ok = true;
          for (const auto& e2 : m2.p) {
            if (e2.seq != n) {
              continue;
            }
            if (!(e2.view < e.view || (e2.view == e.view && e2.d == e.d))) {
              ok = false;
              break;
            }
          }
          if (ok) {
            ++a1;
          }
        }
        if (a1 < quorum) {
          continue;
        }
        // A2: f+1 messages whose Q contains (n, ..., (d, v') with v' >= v): at least one
        // correct replica pre-prepared this request at or after view v.
        int a2 = 0;
        for (const auto& [sender2, m2] : s) {
          for (const auto& q : m2.q) {
            if (q.seq != n) {
              continue;
            }
            for (const auto& [d2, v2] : q.dv) {
              if (d2 == e.d && v2 >= e.view) {
                ++a2;
                break;
              }
            }
            break;
          }
          if (a2 >= weak) {
            break;
          }
        }
        if (a2 < weak) {
          continue;
        }
        // A3: the caller holds the batch payload.
        if (!have_payload(e.d)) {
          out.missing_payloads.push_back(e.d);
          decided = true;  // decided in principle; blocked only on the payload
          all_decided = false;
          break;
        }
        out.chosen.emplace_back(n, e.d);
        decided = true;
        break;
      }
    }
    if (decided) {
      continue;
    }

    // Condition B: 2f+1 messages with h < n and no P entry for n — no request with this
    // sequence number could have committed; choose the null request.
    int b = 0;
    for (const auto& [sender2, m2] : s) {
      if (m2.h >= n) {
        continue;
      }
      bool has_entry = false;
      for (const auto& e2 : m2.p) {
        if (e2.seq == n) {
          has_entry = true;
          break;
        }
      }
      if (!has_entry) {
        ++b;
      }
    }
    if (b >= quorum) {
      out.chosen.emplace_back(n, NullBatchDigest());
      continue;
    }

    all_decided = false;
  }

  out.complete = all_decided;
  return out;
}

}  // namespace bft

#include "src/core/replica.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/logging.h"

namespace bft {

namespace {
// Designated-replier value meaning "every replica sends the full result".
constexpr NodeId kEveryone = 0xffffffff;

// Recovery requests carry this prefix in their op field and are handled by the replica layer
// rather than the service (Section 4.3.2).
constexpr char kRecoveryTag[] = "\x7f_BFT_RECOVERY";

bool IsRecoveryOp(ByteView op) {
  constexpr size_t kLen = sizeof(kRecoveryTag) - 1;
  return op.size() >= kLen && std::memcmp(op.data(), kRecoveryTag, kLen) == 0;
}
}  // namespace

Replica::Replica(std::unique_ptr<Endpoint> endpoint, const ReplicaConfig* config,
                 const PerfModel* model, PublicKeyDirectory* directory,
                 std::unique_ptr<Service> service, uint64_t seed)
    : ep_(std::move(endpoint)),
      config_(config),
      model_(model),
      service_(std::move(service)),
      auth_(ep_->id(), config, model, directory, directory->Generate(ep_->id(), seed)),
      state_(config, model),
      rng_(seed ^ (ep_->id() * 0x9e3779b97f4a7c15ULL)),
      vc_timeout_(config->view_change_timeout) {
  InstallObservability(&MetricsRegistry::Process(), nullptr);
  ep_->SetHandler([this](MsgBuffer message) { OnMessage(std::move(message)); });
  service_->Initialize(&state_);
  state_.Baseline(EncodeLastReplies());
}

void Replica::InstallObservability(MetricsRegistry* registry, RequestTracer* tracer) {
  tracer_ = tracer;
  std::string node = "node=\"" + std::to_string(id()) + "\"";
  for (int t = 1; t <= kNumMsgTypes; ++t) {
    std::string labels = node + ",type=\"" + MsgTypeName(static_cast<MsgType>(t)) + "\"";
    obs_.msg_in[t] = registry->GetCounter("bft_messages_in_total", labels);
    obs_.msg_out[t] = registry->GetCounter("bft_messages_out_total", labels);
  }
  obs_.bytes_in = registry->GetCounter("bft_bytes_in_total", node);
  obs_.bytes_out = registry->GetCounter("bft_bytes_out_total", node);
  obs_.dropped_undecodable = registry->GetCounter("bft_messages_undecodable_total", node);
  obs_.dropped_duplicate = registry->GetCounter("bft_messages_duplicate_total", node);
  obs_.request_replays = registry->GetCounter("bft_request_replays_total", node);
  obs_.auth_rejected = registry->GetCounter("bft_auth_rejected_total", node);
  obs_.view_changes = registry->GetCounter("bft_view_changes_started_total", node);
  obs_.new_views = registry->GetCounter("bft_new_views_total", node);
  obs_.checkpoints = registry->GetCounter("bft_checkpoints_total", node);
  obs_.stable_checkpoints = registry->GetCounter("bft_stable_checkpoints_total", node);
  obs_.state_transfers = registry->GetCounter("bft_state_transfers_total", node);
  obs_.state_fetches = registry->GetCounter("bft_state_fetches_total", node);
  obs_.state_pages = registry->GetCounter("bft_state_pages_fetched_total", node);
  obs_.batches_executed = registry->GetCounter("bft_batches_executed_total", node);
  obs_.requests_executed = registry->GetCounter("bft_requests_executed_total", node);
  obs_.rollbacks = registry->GetCounter("bft_rollbacks_total", node);
  obs_.view = registry->GetGauge("bft_view", node);
  obs_.last_executed = registry->GetGauge("bft_last_executed", node);
  obs_.batch_size = registry->GetHistogram("bft_batch_size", node);
  // MAC-cache effectiveness, read from the AuthContext at export time. Probes capture
  // `this`, so they are only registered into harness-owned registries whose exports happen
  // while the replica is alive — never into the process default, which outlives everything.
  if (registry != &MetricsRegistry::Process()) {
    registry->RegisterProbe("bft_mac_cache_hits_total", node,
                            [this]() { return auth_.mac_cache_hits(); });
    registry->RegisterProbe("bft_mac_cache_misses_total", node,
                            [this]() { return auth_.mac_cache_misses(); });
  }
}

void Replica::TraceBatch(TracePhase phase, const Digest& d) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return;
  }
  auto it = batch_store_.find(d);
  if (it == batch_store_.end()) {
    return;
  }
  SimTime now = Now();
  for (const RequestMsg& req : it->second.requests) {
    if (tracer_->Sampled(req.client, req.timestamp)) {
      tracer_->Stamp(phase, req.client, req.timestamp, now);
    }
  }
}

// Quiesce the endpoint before any member dies: a real-clock runtime's loop thread may
// otherwise still be dispatching into this object while it is being torn down.
Replica::~Replica() { ep_->Close(); }

void Replica::Start() {
  status_timer_ = SetTimer(config_->status_interval + rng_.Below(kMillisecond),
                           [this]() { OnStatusTimer(); });
  if (config_->proactive_recovery) {
    // Stagger watchdogs so no more than f replicas recover at once (Section 4.3.3).
    SimTime index = static_cast<SimTime>(config_->ReplicaIndex(id()));
    SimTime offset = config_->watchdog_period / config_->n * index;
    SetTimer(config_->watchdog_period + offset, [this]() { OnWatchdog(); });
    // Periodic session-key refreshment (Section 4.3.1).
    SetTimer(config_->key_refresh_period + index * kMillisecond, [this]() { OnKeyRefresh(); });
  }
}

std::vector<NodeId> Replica::OtherReplicas() const {
  std::vector<NodeId> out;
  for (int i = 0; i < config_->n; ++i) {
    if (config_->ReplicaId(i) != id()) {
      out.push_back(config_->ReplicaId(i));
    }
  }
  return out;
}

bool Replica::VerifyFromReplica(NodeId sender, ByteView content, ByteView auth) {
  if (!config_->IsReplicaMember(sender) || sender == id()) {
    return false;
  }
  if (!auth_.VerifyAuthMulticast(sender, content, auth, &cpu())) {
    ++stats_.rejected_auth;
    obs_.auth_rejected->Inc();
    return false;
  }
  return true;
}

bool Replica::VerifyFromAny(NodeId sender, ByteView content, ByteView auth) {
  if (sender == id()) {
    return false;
  }
  if (!auth_.VerifyAuthMulticast(sender, content, auth, &cpu())) {
    ++stats_.rejected_auth;
    obs_.auth_rejected->Inc();
    return false;
  }
  return true;
}

void Replica::OnMessage(MsgBuffer raw) {
  if (crashed_) {
    return;
  }
  obs_.bytes_in->Inc(raw.size());
  std::optional<Message> decoded = DecodeMessage(raw.view());
  if (!decoded.has_value()) {
    obs_.dropped_undecodable->Inc();
    return;
  }
  obs_.msg_in[static_cast<size_t>(TypeOf(*decoded))]->Inc();
  // During recovery's estimation phase the replica handles only new-key, query-stable, and
  // status messages (Section 4.3.2).
  if (recovery_estimating_) {
    MsgType t = TypeOf(*decoded);
    if (t != MsgType::kNewKey && t != MsgType::kQueryStable && t != MsgType::kReplyStable &&
        t != MsgType::kStatus) {
      return;
    }
  }
  std::visit([this](auto&& m) { this->Dispatch(std::move(m)); }, std::move(*decoded));
}

void Replica::Dispatch(RequestMsg m) { HandleRequest(std::move(m)); }
void Replica::Dispatch(ReplyMsg m) { HandleReply(std::move(m)); }
void Replica::Dispatch(PrePrepareMsg m) { HandlePrePrepare(std::move(m)); }
void Replica::Dispatch(PrepareMsg m) { HandlePrepare(std::move(m)); }
void Replica::Dispatch(CommitMsg m) { HandleCommit(std::move(m)); }
void Replica::Dispatch(CheckpointMsg m) { HandleCheckpoint(std::move(m)); }
void Replica::Dispatch(ViewChangeMsg m) { HandleViewChange(std::move(m)); }
void Replica::Dispatch(ViewChangeAckMsg m) { HandleViewChangeAck(std::move(m)); }
void Replica::Dispatch(NewViewMsg m) { HandleNewView(std::move(m)); }
void Replica::Dispatch(StatusMsg m) { HandleStatus(std::move(m)); }
void Replica::Dispatch(FetchMsg m) { HandleFetch(std::move(m)); }
void Replica::Dispatch(MetaDataMsg m) { HandleMetaData(std::move(m)); }
void Replica::Dispatch(DataMsg m) { HandleData(std::move(m)); }
void Replica::Dispatch(BatchFetchMsg m) { HandleBatchFetch(std::move(m)); }
void Replica::Dispatch(BatchReplyMsg m) { HandleBatchReply(std::move(m)); }
void Replica::Dispatch(NewKeyMsg m) { HandleNewKey(std::move(m)); }
void Replica::Dispatch(QueryStableMsg m) { HandleQueryStable(std::move(m)); }
void Replica::Dispatch(ReplyStableMsg m) { HandleReplyStable(std::move(m)); }

// --- Requests & batching --------------------------------------------------------------------

void Replica::HandleRequest(RequestMsg m) {
  if (!IsClientId(m.client) && !config_->IsReplicaMember(m.client)) {
    return;
  }
  if (!auth_.VerifyAuthMulticast(m.client, m.AuthContent(), m.auth, &cpu())) {
    ++stats_.rejected_auth;
    obs_.auth_rejected->Inc();
    return;
  }

  // Exactly-once semantics: replay the cached reply for the client's last executed request,
  // drop anything older (Section 2.3.3 / DoS defense in 5.5).
  auto lit = last_reply_.find(m.client);
  if (lit != last_reply_.end()) {
    if (m.timestamp < lit->second.timestamp) {
      obs_.dropped_duplicate->Inc();
      return;
    }
    if (m.timestamp == lit->second.timestamp) {
      obs_.request_replays->Inc();
      ReplyMsg cached = lit->second;
      cached.view = view_;
      cached.replica = id();
      cached.tentative = false;  // anything cached re-committed long ago
      cached.has_result = true;
      AuthAndSend(m.client, std::move(cached));
      return;
    }
  }

  if (m.read_only && config_->read_only_optimization && !IsRecoveryOp(m.op) &&
      service_->IsReadOnly(m.op)) {
    // Read-only optimization (Section 5.1.3): execute immediately, but only against state with
    // no uncommitted tentative writes.
    if (last_tentative_exec_ == last_exec_) {
      ExecuteReadOnly(m);
    } else {
      ro_queue_.push_back(std::move(m));
    }
    return;
  }

  Digest d = m.RequestDigest();
  bool is_new = requests_.emplace(d, m).second;

  if (config_->PrimaryOf(view_) == id()) {
    if (is_new) {
      // FIFO fairness: keep only the highest-timestamp request per client in the queue.
      auto qit = queued_timestamp_.find(m.client);
      if (qit == queued_timestamp_.end() || m.timestamp > qit->second) {
        queued_timestamp_[m.client] = m.timestamp;
        request_queue_.push_back(d);
      }
    }
    TrySendPrePrepare();
  } else {
    // Backup: relay to the primary and start the view-change timer — if the primary does not
    // order this request, a view change will replace it (Section 2.3.5).
    if (is_new) {
      obs_.msg_out[static_cast<size_t>(MsgType::kRequest)]->Inc();
      SendTo(config_->PrimaryOf(view_), EncodeMessage(Message(m)));
    }
    StartViewChangeTimer();
  }
  ProcessPendingPrePrepares();
}

void Replica::TrySendPrePrepare() {
  if (config_->PrimaryOf(view_) != id() || !view_active_ || mute_ || crashed_) {
    return;
  }
  while (!request_queue_.empty()) {
    if (seqno_ >= low_ + config_->log_size) {
      return;  // log full; wait for a checkpoint to become stable
    }
    if (seqno_ - last_exec_ >= config_->batch_window) {
      return;  // sliding-window limit on parallel protocol instances (Section 5.1.4)
    }

    PrePrepareMsg pp;
    pp.view = view_;
    pp.seq = seqno_ + 1;
    pp.ndet = service_->ChooseNonDet(pp.seq, Now());

    BatchPayload payload;
    payload.ndet = pp.ndet;
    size_t batch_bytes = 0;
    size_t max_requests = config_->batching ? config_->max_batch_requests : 1;
    while (!request_queue_.empty() && payload.requests.size() < max_requests &&
           batch_bytes < config_->max_batch_bytes) {
      Digest d = request_queue_.front();
      auto rit = requests_.find(d);
      if (rit == requests_.end()) {
        request_queue_.pop_front();
        continue;
      }
      const RequestMsg& req = rit->second;
      auto lit = last_reply_.find(req.client);
      if (lit != last_reply_.end() && req.timestamp <= lit->second.timestamp) {
        request_queue_.pop_front();  // already executed
        continue;
      }
      // Only inlined bytes count toward the pre-prepare size cap; separately transmitted
      // requests contribute just a digest (Fig 6-1).
      bool inline_req = req.op.size() <= config_->separate_transmission_threshold;
      size_t wire_cost = inline_req ? req.op.size() : Digest::kSize;
      if (!payload.requests.empty() && batch_bytes + wire_cost > config_->max_batch_bytes) {
        break;
      }
      request_queue_.pop_front();
      batch_bytes += wire_cost;
      if (inline_req) {
        pp.inline_requests.push_back(req);
      } else {
        pp.separate_digests.push_back(d);
      }
      payload.requests.push_back(req);
    }
    if (payload.requests.empty()) {
      return;
    }

    ++seqno_;
    BFT_DEBUG("replica " << id() << ": pre-prepare seq " << seqno_ << " view " << view_
                         << " batch=" << payload.requests.size());
    Digest d = pp.BatchDigest();
    batch_store_[d] = payload;
    AuthAndMulticast(pp);
    LogEntry& entry = Entry(pp.seq);
    entry.pre_prepare = pp;
    entry.d = d;
    entry.pp_view = view_;
    TraceBatch(TracePhase::kPrePrepare, d);
    TryPrepared(pp.seq);  // a lone pre-prepare can complete the certificate when f == 0
  }
}

bool Replica::BatchRequestsAvailable(const PrePrepareMsg& pp) const {
  for (const Digest& d : pp.separate_digests) {
    if (requests_.count(d) == 0) {
      return false;
    }
  }
  return true;
}

void Replica::HandlePrePrepare(PrePrepareMsg m) {
  if (m.view != view_ || !view_active_ || config_->PrimaryOf(m.view) == id()) {
    return;
  }
  if (!InWatermarks(m.seq)) {
    return;
  }
  if (!VerifyFromReplica(config_->PrimaryOf(m.view), m.AuthContent(), m.auth)) {
    return;
  }
  if (!BatchRequestsAvailable(m)) {
    // Separate-transmission requests not yet received: buffer and wait (Section 5.1.5).
    pending_pps_.push_back(std::move(m));
    return;
  }
  AcceptPrePrepare(m);
}

void Replica::ProcessPendingPrePrepares() {
  for (size_t i = 0; i < pending_pps_.size();) {
    if (pending_pps_[i].view != view_ || !InWatermarks(pending_pps_[i].seq)) {
      pending_pps_.erase(pending_pps_.begin() + static_cast<long>(i));
      continue;
    }
    if (BatchRequestsAvailable(pending_pps_[i])) {
      PrePrepareMsg pp = std::move(pending_pps_[i]);
      pending_pps_.erase(pending_pps_.begin() + static_cast<long>(i));
      AcceptPrePrepare(pp);
    } else {
      ++i;
    }
  }
}

void Replica::AcceptPrePrepare(const PrePrepareMsg& pp) {
  Digest d = pp.BatchDigest();
  LogEntry& entry = Entry(pp.seq);
  if (entry.pre_prepare.has_value() && entry.pp_view == pp.view) {
    return;  // never accept two different pre-prepares for the same (view, seq)
  }

  // Request authentication (Section 3.2.2): a request in a pre-prepare is authentic if (1) its
  // MAC for this replica verifies, (2) f prepares carry the batch digest, or (3) a matching
  // authentic request was received directly from the client.
  for (const RequestMsg& req : pp.inline_requests) {
    Digest rd = req.RequestDigest();
    if (requests_.count(rd) != 0) {
      continue;  // condition 3
    }
    if (auth_.VerifyAuthMulticast(req.client, req.AuthContent(), req.auth, &cpu())) {
      requests_.emplace(rd, req);
      continue;  // condition 1
    }
    int matching_prepares = 0;
    for (const auto& [r, prep] : entry.prepares) {
      if (prep.batch_digest == d) {
        ++matching_prepares;
      }
    }
    if (matching_prepares >= config_->f()) {
      requests_.emplace(rd, req);
      continue;  // condition 2
    }
    return;  // cannot authenticate the batch; do not pre-prepare it
  }

  if (!service_->CheckNonDet(pp.ndet, Now())) {
    return;  // deterministic rejection of a bad non-deterministic choice (Section 5.4)
  }

  // Reconstruct and store the batch payload for execution and view changes.
  BatchPayload payload;
  payload.ndet = pp.ndet;
  for (const RequestMsg& req : pp.inline_requests) {
    payload.requests.push_back(req);
  }
  for (const Digest& rd : pp.separate_digests) {
    payload.requests.push_back(requests_.at(rd));
  }
  batch_store_[d] = std::move(payload);

  entry.pre_prepare = pp;
  entry.d = d;
  entry.pp_view = pp.view;
  entry.sent_prepare = true;
  TraceBatch(TracePhase::kPrePrepare, d);

  PrepareMsg prep;
  prep.view = pp.view;
  prep.seq = pp.seq;
  prep.batch_digest = d;
  prep.replica = id();
  AuthAndMulticast(prep);
  entry.prepares[id()] = prep;
  TryPrepared(pp.seq);
}

void Replica::HandlePrepare(PrepareMsg m) {
  if (m.view != view_ || !InWatermarks(m.seq)) {
    return;
  }
  if (m.replica == config_->PrimaryOf(m.view)) {
    return;  // the primary's pre-prepare stands in for its prepare
  }
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    return;
  }
  LogEntry& entry = Entry(m.seq);
  if (!entry.prepares.emplace(m.replica, m).second) {
    obs_.dropped_duplicate->Inc();
  }
  TryPrepared(m.seq);
  ProcessPendingPrePrepares();  // a prepare can complete request-authentication condition 2
}

void Replica::TryPrepared(SeqNo n) {
  LogEntry& entry = Entry(n);
  if (entry.prepared || !entry.pre_prepare.has_value()) {
    return;
  }
  int matching = 0;
  for (const auto& [r, prep] : entry.prepares) {
    if (prep.batch_digest == entry.d && prep.view == entry.pp_view) {
      ++matching;
    }
  }
  // Prepared certificate: the pre-prepare plus 2f prepares (own prepare included for backups).
  if (matching < 2 * config_->f()) {
    return;
  }
  entry.prepared = true;
  last_prepared_seq_ = std::max(last_prepared_seq_, n);
  BFT_DEBUG("replica " << id() << ": prepared seq " << n << " view " << entry.pp_view);
  TraceBatch(TracePhase::kPrepared, entry.d);

  CommitMsg com;
  com.view = entry.pp_view;
  com.seq = n;
  com.batch_digest = entry.d;
  com.replica = id();
  AuthAndMulticast(com);
  entry.commits[id()] = com;
  entry.sent_commit = true;
  TryCommitted(n);
  TryExecute();
}

void Replica::HandleCommit(CommitMsg m) {
  if (m.view != view_ || !InWatermarks(m.seq)) {
    BFT_DEBUG("replica " << id() << ": drop commit seq " << m.seq << " from " << m.replica
                         << " (view " << m.view << " vs " << view_ << ", low " << low_ << ")");
    return;
  }
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    BFT_DEBUG("replica " << id() << ": commit auth failure from " << m.replica);
    return;
  }
  LogEntry& entry = Entry(m.seq);
  if (!entry.commits.emplace(m.replica, m).second) {
    obs_.dropped_duplicate->Inc();
  }
  TryCommitted(m.seq);
}

void Replica::TryCommitted(SeqNo n) {
  LogEntry& entry = Entry(n);
  if (entry.committed || !entry.prepared) {
    return;
  }
  int matching = 0;
  for (const auto& [r, com] : entry.commits) {
    if (com.batch_digest == entry.d) {
      ++matching;
    }
  }
  if (matching < config_->quorum()) {
    return;
  }
  entry.committed = true;
  BFT_DEBUG("replica " << id() << ": committed seq " << n);
  TraceBatch(TracePhase::kCommitted, entry.d);
  TryExecute();
}

// --- Execution ---------------------------------------------------------------------------------

bool Replica::HavePayload(const Digest& d) const {
  return d == NullBatchDigest() || batch_store_.count(d) != 0;
}

void Replica::TryExecute() {
  if (transfer_active_ && !transfer_checking_) {
    // A full state transfer is rewriting the state; executing against it would interleave two
    // different prefixes. Execution resumes from the transferred checkpoint.
    return;
  }
  bool progress = true;
  while (progress) {
    progress = false;

    // Promote tentatively executed batches whose commit certificates completed.
    while (true) {
      auto it = log_.find(last_exec_ + 1);
      if (it == log_.end() || !it->second.committed || !it->second.executed_tentative) {
        break;
      }
      it->second.executed_committed = true;
      ++last_exec_;
      OnCheckpointCommitted(last_exec_);
      progress = true;
    }

    // Execute the next batch: committed batches always; prepared ones tentatively, provided all
    // earlier requests committed (Section 5.1.2).
    SeqNo n = last_tentative_exec_ + 1;
    auto it = log_.find(n);
    if (it == log_.end() || !it->second.pre_prepare.has_value()) {
      continue;
    }
    LogEntry& entry = it->second;
    if (entry.executed_tentative || !HavePayload(entry.d)) {
      continue;
    }
    if (entry.committed) {
      ExecuteBatch(n, /*tentative=*/false);
      entry.executed_tentative = true;
      entry.executed_committed = true;
      last_tentative_exec_ = n;
      last_exec_ = n;
      MaybeTakeCheckpoint(n);
      OnCheckpointCommitted(n);
      progress = true;
    } else if (entry.prepared && config_->tentative_execution && last_exec_ == n - 1) {
      ExecuteBatch(n, /*tentative=*/true);
      entry.executed_tentative = true;
      last_tentative_exec_ = n;
      MaybeTakeCheckpoint(n);
      progress = true;
    }
  }

  if (last_tentative_exec_ == last_exec_) {
    DrainReadOnlyQueue();
  }
  if (config_->PrimaryOf(view_) == id()) {
    TrySendPrePrepare();
  }

  // Liveness bookkeeping (Section 2.3.5): stop the timer when nothing is waiting to execute;
  // when requests executed but others still wait, restart it — the timer bounds the time to
  // execute the *next* request, not the drain time of a continuously loaded queue.
  uint64_t executed_now = stats_.batches_executed;
  bool made_progress = executed_now != batches_at_timer_start_;
  bool waiting = false;
  for (const auto& [d, req] : requests_) {
    auto lit = last_reply_.find(req.client);
    if (lit == last_reply_.end() || req.timestamp > lit->second.timestamp) {
      waiting = true;
      break;
    }
  }
  if (!waiting) {
    StopViewChangeTimer();
  } else if (made_progress && vc_timer_running_) {
    StopViewChangeTimer();
    StartViewChangeTimer();
  }
  batches_at_timer_start_ = executed_now;
  obs_.last_executed->Set(static_cast<int64_t>(last_exec_));
}

void Replica::ExecuteBatch(SeqNo n, bool tentative) {
  LogEntry& entry = Entry(n);
  ++stats_.batches_executed;
  obs_.batches_executed->Inc();
  if (entry.is_null || entry.d == NullBatchDigest()) {
    return;  // null request: no-op (Section 2.3.5)
  }
  const BatchPayload& payload = batch_store_.at(entry.d);
  // Recorded at execution (not at pre-prepare send) so backups report it too and a
  // re-executed batch after rollback counts each pass it actually ran.
  obs_.batch_size->Record(payload.requests.size());
  for (const RequestMsg& req : payload.requests) {
    auto lit = last_reply_.find(req.client);
    if (lit != last_reply_.end() && req.timestamp <= lit->second.timestamp) {
      continue;  // executed in a previous view; reply already cached
    }

    Bytes result;
    if (IsRecoveryOp(req.op)) {
      // Recovery request (Section 4.3.2): the result is the sequence number it executed at;
      // every other replica refreshes its session keys.
      Writer w;
      w.U64(n);
      result = w.Take();
      if (req.client != id()) {
        SendNewKey();
      }
    } else if (service_->IsAdminOp(req.op) && !config_->IsAdminClient(req.client)) {
      // Admin ACL (migration/rebalance control plane): the op is ordered and replied to like
      // any other — so the client gets a certified, clean error — but never executes. Pure
      // function of config + request: every correct replica denies identically.
      ByteView denied = Service::AccessDeniedResult();
      result = Bytes(denied.begin(), denied.end());
    } else {
      cpu().Charge(service_->ExecutionCost(req.op));
      result = service_->Execute(req.client, req.op, payload.ndet, /*read_only=*/false);
    }
    ++stats_.requests_executed;
    obs_.requests_executed->Inc();
    TraceRequest(TracePhase::kExecuted, req.client, req.timestamp);

    ReplyMsg reply;
    reply.view = view_;
    reply.timestamp = req.timestamp;
    reply.client = req.client;
    reply.replica = id();
    reply.tentative = tentative;
    reply.result_digest = ComputeDigest(result);
    cpu().Charge(model_->DigestCost(result.size()));
    reply.result = result;
    reply.has_result = true;

    // Cache the full reply for retransmission, then send (digest-only unless designated).
    last_reply_[req.client] = reply;

    bool send_full = !config_->digest_replies ||
                     result.size() <= config_->digest_reply_threshold ||
                     req.designated_replier == id() || req.designated_replier == kEveryone;
    if (!send_full) {
      reply.has_result = false;
      reply.result.clear();
    }
    AuthAndSend(req.client, std::move(reply));
  }
}

void Replica::ExecuteReadOnly(const RequestMsg& req) {
  Bytes result;
  if (service_->IsAdminOp(req.op) && !config_->IsAdminClient(req.client)) {
    // Defense in depth: no current service marks an admin op read-only (so these normally
    // reach the ACL in ExecuteBatch via ordering), but the documented invariant — admin ops
    // never execute for non-admin clients — must not depend on that coincidence.
    ByteView denied = Service::AccessDeniedResult();
    result = Bytes(denied.begin(), denied.end());
  } else {
    cpu().Charge(service_->ExecutionCost(req.op));
    result = service_->Execute(req.client, req.op, {}, /*read_only=*/true);
  }

  ReplyMsg reply;
  reply.view = view_;
  reply.timestamp = req.timestamp;
  reply.client = req.client;
  reply.replica = id();
  reply.tentative = false;
  reply.result_digest = ComputeDigest(result);
  cpu().Charge(model_->DigestCost(result.size()));
  bool send_full = !config_->digest_replies ||
                   result.size() <= config_->digest_reply_threshold ||
                   req.designated_replier == id() || req.designated_replier == kEveryone;
  reply.has_result = send_full;
  if (send_full) {
    reply.result = std::move(result);
  }
  AuthAndSend(req.client, std::move(reply));
}

void Replica::DrainReadOnlyQueue() {
  while (!ro_queue_.empty() && last_tentative_exec_ == last_exec_) {
    RequestMsg req = std::move(ro_queue_.front());
    ro_queue_.pop_front();
    ExecuteReadOnly(req);
  }
}

// --- Checkpoints & garbage collection ------------------------------------------------------------

Bytes Replica::EncodeLastReplies() const {
  Writer w;
  w.U32(static_cast<uint32_t>(last_reply_.size()));
  for (const auto& [client, reply] : last_reply_) {
    // Normalize replica-local fields so every correct replica produces an identical snapshot
    // (checkpoint digests must match across the group).
    ReplyMsg canonical = reply;
    canonical.view = 0;
    canonical.replica = 0;
    canonical.tentative = false;
    canonical.auth.clear();
    canonical.EncodeBody(w);
  }
  return w.Take();
}

void Replica::DecodeLastReplies(ByteView raw) {
  last_reply_.clear();
  Reader r(raw);
  uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    ReplyMsg reply;
    if (!ReplyMsg::DecodeBody(r, &reply)) {
      return;
    }
    last_reply_[reply.client] = reply;
  }
}

void Replica::MaybeTakeCheckpoint(SeqNo n) {
  if (n % config_->checkpoint_period != 0) {
    return;
  }
  Digest d = state_.TakeCheckpoint(n, EncodeLastReplies(), &cpu());
  pending_checkpoint_digest_[n] = d;
  ++stats_.checkpoints_taken;
  obs_.checkpoints->Inc();
}

void Replica::OnCheckpointCommitted(SeqNo n) {
  // Checkpoint messages are only sent once the checkpoint batch commits (Section 5.1.2).
  auto it = pending_checkpoint_digest_.find(n);
  if (it == pending_checkpoint_digest_.end()) {
    return;
  }
  CheckpointMsg cp;
  cp.seq = n;
  cp.state_digest = it->second;
  cp.replica = id();
  AuthAndMulticast(cp);
  checkpoint_msgs_[n][id()] = cp;
  pending_checkpoint_digest_.erase(it);
  TryStable(n);
}

void Replica::HandleCheckpoint(CheckpointMsg m) {
  if (m.seq <= low_) {
    return;
  }
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    return;
  }
  checkpoint_msgs_[m.seq][m.replica] = m;
  TryStable(m.seq);
}

void Replica::TryStable(SeqNo n) {
  auto it = checkpoint_msgs_.find(n);
  if (it == checkpoint_msgs_.end()) {
    return;
  }
  // The stable certificate is a quorum certificate in BFT (Section 3.2.3), so view changes can
  // reconstruct a weak certificate for it.
  std::map<Digest, int> counts;
  for (const auto& [r, cp] : it->second) {
    ++counts[cp.state_digest];
  }
  for (const auto& [d, count] : counts) {
    if (count < config_->quorum()) {
      continue;
    }
    if (state_.HasCheckpoint(n) && state_.CheckpointDigest(n) == d) {
      // The certificate proves every request up to n committed globally, and our state digest
      // matches the quorum's, so any still-tentative prefix up to n is final.
      if (n > last_exec_) {
        for (auto it2 = log_.begin(); it2 != log_.end() && it2->first <= n; ++it2) {
          it2->second.committed = true;
          it2->second.executed_committed = it2->second.executed_tentative;
        }
        last_exec_ = n;
        last_tentative_exec_ = std::max(last_tentative_exec_, n);
        last_prepared_seq_ = std::max(last_prepared_seq_, n);
      }
      // Send our own (possibly still pending) checkpoint message before collecting.
      auto pit = pending_checkpoint_digest_.find(n);
      if (pit != pending_checkpoint_digest_.end()) {
        CheckpointMsg cp;
        cp.seq = n;
        cp.state_digest = pit->second;
        cp.replica = id();
        AuthAndMulticast(cp);
        pending_checkpoint_digest_.erase(pit);
      }
      if (n > low_) {
        CollectGarbage(n);
      }
      TryExecute();
    } else if (n > last_tentative_exec_) {
      // We are behind a stable checkpoint. Peers garbage-collect their logs up to n the moment
      // it becomes stable, so protocol messages for the gap may be gone — state transfer is
      // the catch-up path (Section 5.3.2). A short grace period avoids a useless transfer
      // when our own execution is just about to reach n.
      if (n > observed_stable_seq_) {
        observed_stable_seq_ = n;
        observed_stable_digest_ = d;
      }
      if (n >= low_ + config_->log_size) {
        MaybeStartStateTransfer(n, d);  // past our log: transfer unconditionally
      } else if (!transfer_grace_pending_) {
        transfer_grace_pending_ = true;
        SetTimer(2 * config_->status_interval, [this]() {
          transfer_grace_pending_ = false;
          if (observed_stable_seq_ > last_exec_ &&
              !state_.HasCheckpoint(observed_stable_seq_)) {
            MaybeStartStateTransfer(observed_stable_seq_, observed_stable_digest_);
          }
        });
      }
    }
    if (recovering_ && recovery_point_known_ && n >= recovery_point_ &&
        state_.HasCheckpoint(n) && state_.CheckpointDigest(n) == d) {
      CheckRecoveryComplete();
    }
    return;
  }
}

void Replica::CollectGarbage(SeqNo new_low) {
  low_ = new_low;
  ++stats_.stable_checkpoints;
  obs_.stable_checkpoints->Inc();
  log_.erase(log_.begin(), log_.lower_bound(new_low + 1));
  checkpoint_msgs_.erase(checkpoint_msgs_.begin(), checkpoint_msgs_.lower_bound(new_low));
  pending_checkpoint_digest_.erase(pending_checkpoint_digest_.begin(),
                                   pending_checkpoint_digest_.lower_bound(new_low));
  state_.DiscardCheckpointsBelow(new_low);
  pq_.pset.erase(pq_.pset.begin(), pq_.pset.upper_bound(new_low));
  pq_.qset.erase(pq_.qset.begin(), pq_.qset.upper_bound(new_low));

  // Drop batch payloads no longer referenced by the log, and executed requests.
  std::set<Digest> keep = wanted_payloads_;
  for (const auto& [seq, entry] : log_) {
    keep.insert(entry.d);
  }
  for (auto it = batch_store_.begin(); it != batch_store_.end();) {
    if (keep.count(it->first) == 0) {
      it = batch_store_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = requests_.begin(); it != requests_.end();) {
    auto lit = last_reply_.find(it->second.client);
    if (lit != last_reply_.end() && it->second.timestamp <= lit->second.timestamp) {
      it = requests_.erase(it);
    } else {
      ++it;
    }
  }
  if (config_->PrimaryOf(view_) == id()) {
    TrySendPrePrepare();  // the advancing window may unblock queued batches
  }
}

// --- View changes ---------------------------------------------------------------------------------

void Replica::StartViewChangeTimer() {
  if (vc_timer_running_ || crashed_) {
    return;
  }
  vc_timer_running_ = true;
  vc_timer_ = SetTimer(vc_timeout_, [this]() { OnViewChangeTimeout(); });
}

void Replica::StopViewChangeTimer() {
  if (!vc_timer_running_) {
    return;
  }
  CancelTimer(vc_timer_);
  vc_timer_running_ = false;
}

void Replica::OnViewChangeTimeout() {
  vc_timer_running_ = false;
  // Exponential backoff: wait longer before the next view change (Section 2.3.5, liveness).
  vc_timeout_ = std::min(vc_timeout_ * 2, config_->max_view_change_timeout);
  BFT_DEBUG("replica " << id() << ": request timer expired in view " << view_
                       << ", moving to " << view_ + 1);
  StartViewChange(view_ + 1);
}

void Replica::ForceViewChange() { StartViewChange(view_ + 1); }

std::vector<SeqObservation> Replica::CollectLogObservations(View leaving_view) const {
  std::vector<SeqObservation> out;
  for (const auto& [seq, entry] : log_) {
    if (!entry.pre_prepare.has_value() && !entry.is_null) {
      continue;
    }
    SeqObservation obs;
    obs.seq = seq;
    obs.d = entry.d;
    obs.view = entry.pp_view;
    obs.pre_prepared = entry.sent_prepare || config_->PrimaryOf(entry.pp_view) == id();
    obs.prepared = entry.prepared;
    if (obs.view == leaving_view && (obs.pre_prepared || obs.prepared)) {
      out.push_back(obs);
    }
  }
  return out;
}

void Replica::StartViewChange(View new_view) {
  if (new_view <= view_ || crashed_) {
    return;
  }
  // Fold the log of the view being left into PSet/QSet (Fig 3-2) before moving on.
  ComputePq(CollectLogObservations(view_), &pq_);
  view_ = new_view;
  view_active_ = false;
  ++stats_.view_changes_started;
  obs_.view_changes->Inc();
  StopViewChangeTimer();
  SendViewChange();
  // Liveness rule 1 (Section 2.3.5): the timer for "this view change failed, move on" starts
  // only once 2f+1 view-change messages for the view have arrived — otherwise replicas that
  // got ahead would keep outrunning the laggards forever.
  MaybeStartPendingTimer();
}

void Replica::MaybeStartPendingTimer() {
  if (view_active_ || vc_timer_running_ || crashed_) {
    return;
  }
  if (static_cast<int>(vc_msgs_[view_].size()) < config_->quorum()) {
    return;
  }
  vc_timer_running_ = true;
  vc_timer_ = SetTimer(vc_timeout_, [this]() {
    vc_timer_running_ = false;
    if (!view_active_) {
      vc_timeout_ = std::min(vc_timeout_ * 2, config_->max_view_change_timeout);
      StartViewChange(view_ + 1);
    }
  });
}

void Replica::SendViewChange() {
  ViewChangeMsg vc;
  vc.view = view_;
  vc.h = low_;
  for (SeqNo s = state_.OldestCheckpoint(); s <= state_.NewestCheckpoint();
       s += config_->checkpoint_period) {
    if (state_.HasCheckpoint(s)) {
      vc.checkpoints.emplace_back(s, state_.CheckpointDigest(s));
    }
    if (config_->checkpoint_period == 0) {
      break;
    }
  }
  if (vc.checkpoints.empty() || vc.checkpoints.front().first != state_.OldestCheckpoint()) {
    // Guard for non-aligned oldest checkpoints (e.g., after state transfer).
    vc.checkpoints.clear();
    vc.checkpoints.emplace_back(state_.OldestCheckpoint(),
                                state_.CheckpointDigest(state_.OldestCheckpoint()));
    for (SeqNo s = state_.OldestCheckpoint() + 1; s <= state_.NewestCheckpoint(); ++s) {
      if (state_.HasCheckpoint(s)) {
        vc.checkpoints.emplace_back(s, state_.CheckpointDigest(s));
      }
    }
  }
  for (const auto& [seq, e] : pq_.pset) {
    if (seq > low_ && seq <= low_ + config_->log_size) {
      vc.p.push_back(e);
    }
  }
  for (const auto& [seq, dv] : pq_.qset) {
    if (seq > low_ && seq <= low_ + config_->log_size) {
      vc.q.push_back(ViewChangeMsg::QEntry{seq, dv});
    }
  }
  vc.replica = id();
  AuthAndMulticast(vc);
  vc_msgs_[view_][id()] = vc;
  vc_accepted_[view_][id()] = vc;  // own message is trivially acceptable
  PrimaryTryNewView();
}

void Replica::HandleViewChange(ViewChangeMsg m) {
  if (!config_->IsReplicaMember(m.replica) || m.replica == id()) {
    return;
  }
  bool auth_ok = auth_.VerifyAuthMulticast(m.replica, m.AuthContent(), m.auth, &cpu());

  // Correctness check: all P/Q entries must be for views before the new view (Fig 3-3 setup).
  for (const auto& e : m.p) {
    if (e.view >= m.view) {
      return;
    }
  }
  for (const auto& q : m.q) {
    for (const auto& [d, v] : q.dv) {
      if (v >= m.view) {
        return;
      }
    }
  }

  if (!auth_ok) {
    // Keep it: f+1 matching acks can still authenticate it (Section 3.2.4).
    vc_unverified_[m.view][m.replica] = std::move(m);
    return;
  }

  View v = m.view;
  NodeId sender = m.replica;
  vc_msgs_[v][sender] = std::move(m);

  // Liveness rule: f+1 view-changes for higher views force us to join the smallest of them.
  if (v > view_) {
    std::map<View, int> higher;
    for (const auto& [view, msgs] : vc_msgs_) {
      if (view > view_) {
        higher[view] += static_cast<int>(msgs.size());
      }
    }
    int total = 0;
    for (const auto& [view, count] : higher) {
      total += count;
    }
    if (total >= config_->f() + 1) {
      StartViewChange(higher.begin()->first);
    }
  }

  MaybeAckViewChange(vc_msgs_[v][sender]);
  TryAcceptViewChange(v, sender);
  MaybeStartPendingTimer();
  PrimaryTryNewView();
}

void Replica::MaybeAckViewChange(const ViewChangeMsg& m) {
  if (m.view != view_ || view_active_) {
    return;
  }
  ViewChangeAckMsg ack;
  ack.view = m.view;
  ack.replica = id();
  ack.vc_sender = m.replica;
  ack.vc_digest = m.MessageDigest();
  // Acks are multicast (not just sent to the new primary) so every backup can authenticate
  // view-change messages referenced by the new-view — see DESIGN.md.
  vc_acks_[m.view][m.replica].insert(id());
  AuthAndMulticast(ack);
}

void Replica::HandleViewChangeAck(ViewChangeAckMsg m) {
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    return;
  }
  // Only count acks that match the digest of the view-change we hold (or will hold).
  auto vit = vc_msgs_[m.view].find(m.vc_sender);
  if (vit != vc_msgs_[m.view].end() && vit->second.MessageDigest() != m.vc_digest) {
    return;
  }
  auto uit = vc_unverified_[m.view].find(m.vc_sender);
  if (uit != vc_unverified_[m.view].end() &&
      uit->second.MessageDigest() == m.vc_digest) {
    // Promote an unverified view-change once f+1 distinct replicas vouch for it.
    vc_acks_[m.view][m.vc_sender].insert(m.replica);
    if (static_cast<int>(vc_acks_[m.view][m.vc_sender].size()) >= config_->f() + 1) {
      vc_msgs_[m.view][m.vc_sender] = uit->second;
      vc_unverified_[m.view].erase(uit);
    }
  } else {
    vc_acks_[m.view][m.vc_sender].insert(m.replica);
  }
  TryAcceptViewChange(m.view, m.vc_sender);
  PrimaryTryNewView();
}

void Replica::TryAcceptViewChange(View v, NodeId sender) {
  if (vc_accepted_[v].count(sender) != 0) {
    return;
  }
  auto vit = vc_msgs_[v].find(sender);
  if (vit == vc_msgs_[v].end()) {
    return;
  }
  if (config_->PrimaryOf(v) == id()) {
    // The new primary requires 2f-1 acks from replicas other than itself and the sender
    // (together with its own and the sender's implicit vouchers: a quorum).
    int acks = 0;
    for (NodeId a : vc_acks_[v][sender]) {
      if (a != id() && a != sender) {
        ++acks;
      }
    }
    if (acks < 2 * config_->f() - 1) {
      return;
    }
  }
  vc_accepted_[v][sender] = vit->second;
}

void Replica::PrimaryTryNewView() {
  View v = view_;
  if (view_active_ || config_->PrimaryOf(v) != id() || crashed_ || mute_) {
    return;
  }
  auto& s = vc_accepted_[v];
  if (static_cast<int>(s.size()) < config_->quorum()) {
    return;
  }
  ViewChangeDecision decision = RunDecisionProcedure(
      *config_, s, [this](const Digest& d) { return HavePayload(d); });
  if (!decision.checkpoint_selected) {
    return;
  }
  if (!decision.missing_payloads.empty()) {
    // Condition A3 blocked: fetch the missing batches from the other replicas.
    for (const Digest& d : decision.missing_payloads) {
      if (wanted_payloads_.insert(d).second) {
        BatchFetchMsg bf;
        bf.batch_digest = d;
        bf.replica = id();
        AuthAndMulticast(bf);
      }
    }
    return;
  }
  if (!decision.complete) {
    return;
  }

  NewViewMsg nv;
  nv.view = v;
  for (const auto& [sender, vc] : s) {
    nv.vc_set.emplace_back(sender, vc.MessageDigest());
  }
  nv.min_s = decision.min_s;
  nv.chkpt_digest = decision.chkpt_digest;
  nv.chosen = decision.chosen;
  for (const auto& [seq, d] : decision.chosen) {
    if (d != NullBatchDigest()) {
      nv.payloads.push_back(batch_store_.at(d));
    }
  }
  // Retransmit the accepted view-changes first so backups can validate the new-view even if
  // they missed the originals.
  for (const auto& [sender, vc] : s) {
    if (sender != id()) {
      MulticastTo(OtherReplicas(), EncodeMessage(Message(vc)));
    }
  }
  AuthAndMulticast(nv);
  sent_new_view_[v] = nv;
  ProcessNewView(nv, s);
}

void Replica::HandleNewView(NewViewMsg m) {
  if (m.view == 0 || m.view < view_ || config_->PrimaryOf(m.view) == id()) {
    return;
  }
  if (m.view == view_ && view_active_) {
    return;
  }
  if (!VerifyFromReplica(config_->PrimaryOf(m.view), m.AuthContent(), m.auth)) {
    return;
  }
  if (m.view > view_) {
    // Catch up to the announced view so our own view-change message exists for it.
    StartViewChange(m.view);
  }

  // Collect the referenced view-change messages; wait (via status retransmission) if missing.
  std::map<NodeId, ViewChangeMsg> s;
  for (const auto& [sender, digest] : m.vc_set) {
    if (sender == id()) {
      auto it = vc_msgs_[m.view].find(id());
      if (it == vc_msgs_[m.view].end() || it->second.MessageDigest() != digest) {
        return;  // a primary lying about our own message: reject
      }
      s[sender] = it->second;
      continue;
    }
    auto it = vc_msgs_[m.view].find(sender);
    if (it != vc_msgs_[m.view].end() && it->second.MessageDigest() == digest) {
      s[sender] = it->second;
      continue;
    }
    auto uit = vc_unverified_[m.view].find(sender);
    if (uit != vc_unverified_[m.view].end() &&
        uit->second.MessageDigest() == digest &&
        static_cast<int>(vc_acks_[m.view][sender].size()) >= config_->f() + 1) {
      s[sender] = uit->second;
      continue;
    }
    pending_new_view_ = std::move(m);
    return;  // missing evidence; status messages will trigger retransmission
  }
  if (static_cast<int>(s.size()) < config_->quorum()) {
    return;
  }

  // Verify the primary's decision by re-running the procedure (Section 3.2.4). Payload
  // availability is checked against the new-view's own payloads plus our store.
  std::set<Digest> nv_payloads;
  for (const BatchPayload& p : m.payloads) {
    nv_payloads.insert(p.BatchDigest());
  }
  ViewChangeDecision decision =
      RunDecisionProcedure(*config_, s, [this, &nv_payloads](const Digest& d) {
        return HavePayload(d) || nv_payloads.count(d) != 0;
      });
  if (!decision.checkpoint_selected || !decision.complete || decision.min_s != m.min_s ||
      decision.chkpt_digest != m.chkpt_digest || decision.chosen != m.chosen) {
    // The primary's decision does not follow from the evidence: it is faulty. Move on.
    StartViewChange(m.view + 1);
    return;
  }

  pending_new_view_.reset();
  ProcessNewView(m, s);
}

void Replica::ProcessNewView(const NewViewMsg& nv, const std::map<NodeId, ViewChangeMsg>& s) {
  // Store payloads carried by the new-view.
  for (const BatchPayload& p : nv.payloads) {
    batch_store_[p.BatchDigest()] = p;
  }

  // Abort uncommitted tentative execution: revert to the newest checkpoint at or below the
  // committed prefix and re-execute (Section 5.1.2).
  if (last_tentative_exec_ > last_exec_) {
    SeqNo target = state_.NewestCheckpoint();
    while (target > last_exec_ && target > state_.OldestCheckpoint()) {
      // Find a retained checkpoint not past the committed prefix.
      SeqNo prev = state_.OldestCheckpoint();
      for (SeqNo c = state_.OldestCheckpoint(); c <= last_exec_; ++c) {
        if (state_.HasCheckpoint(c)) {
          prev = std::max(prev, c);
        }
      }
      target = prev;
      break;
    }
    if (target <= last_exec_ && state_.HasCheckpoint(target)) {
      Bytes extra = state_.RollbackToCheckpoint(target);
      DecodeLastReplies(extra);
      for (auto& [seq, entry] : log_) {
        if (seq > target) {
          entry.executed_tentative = false;
          entry.executed_committed = false;
        }
      }
      last_exec_ = target;
      last_tentative_exec_ = target;
      pending_checkpoint_digest_.erase(pending_checkpoint_digest_.upper_bound(target),
                                       pending_checkpoint_digest_.end());
      ++stats_.rollbacks;
      obs_.rollbacks->Inc();
    }
  }

  // Adopt the chosen checkpoint if we are behind.
  if (nv.min_s > last_exec_) {
    if (state_.HasCheckpoint(nv.min_s)) {
      // We took the checkpoint tentatively; fast-forward to it.
      last_exec_ = nv.min_s;
      last_tentative_exec_ = std::max(last_tentative_exec_, nv.min_s);
    } else {
      MaybeStartStateTransfer(nv.min_s, nv.chkpt_digest);
    }
  }
  if (nv.min_s > low_) {
    if (state_.HasCheckpoint(nv.min_s)) {
      CollectGarbage(nv.min_s);
    } else {
      low_ = nv.min_s;
    }
  }

  InstallChosenBatches(nv);
  EnterView(nv.view);
}

void Replica::InstallChosenBatches(const NewViewMsg& nv) {
  bool is_new_primary = config_->PrimaryOf(nv.view) == id();
  SeqNo max_chosen = nv.min_s;
  for (const auto& [seq, d] : nv.chosen) {
    max_chosen = std::max(max_chosen, seq);
    if (seq <= low_) {
      continue;  // covered by the stable checkpoint
    }
    // The protocol is redone for every chosen sequence number — even ones this replica already
    // executed — so that lagging replicas can assemble fresh certificates in the new view.
    // Execution itself is not repeated (Section 2.3.5).
    bool already_executed = seq <= last_exec_;
    LogEntry fresh;
    fresh.d = d;
    fresh.pp_view = nv.view;
    fresh.is_null = (d == NullBatchDigest());
    // Execution flags are pre-set for the executed prefix, but prepared/committed are not:
    // the certificates re-form in the new view so everyone (including laggards) collects them.
    fresh.executed_tentative = already_executed;
    fresh.executed_committed = already_executed;
    PrePrepareMsg pp;
    pp.view = nv.view;
    pp.seq = seq;
    if (!fresh.is_null) {
      const BatchPayload& payload = batch_store_.at(d);
      pp.ndet = payload.ndet;
      for (const RequestMsg& req : payload.requests) {
        pp.inline_requests.push_back(req);
      }
    }
    fresh.pre_prepare = pp;
    fresh.sent_prepare = true;
    log_[seq] = std::move(fresh);

    if (!is_new_primary) {
      PrepareMsg prep;
      prep.view = nv.view;
      prep.seq = seq;
      prep.batch_digest = d;
      prep.replica = id();
      log_[seq].prepares[id()] = prep;
      AuthAndMulticast(prep);
    }
  }
  // Entries above the chosen range belong to dead views: they can never commit with their old
  // view number, and keeping them would stop the new primary from re-proposing their requests.
  log_.erase(log_.upper_bound(std::max(max_chosen, last_exec_)), log_.end());
  if (is_new_primary) {
    seqno_ = max_chosen;
  }
}

void Replica::EnterView(View v) {
  view_ = v;
  view_active_ = true;
  ++stats_.new_views_entered;
  obs_.new_views->Inc();
  obs_.view->Set(static_cast<int64_t>(v));
  vc_timeout_ = config_->view_change_timeout;  // progress: reset the backoff
  StopViewChangeTimer();
  vc_timer_running_ = false;

  // Requeue known-but-unexecuted requests at a new primary.
  if (config_->PrimaryOf(v) == id()) {
    request_queue_.clear();
    queued_timestamp_.clear();
    for (const auto& [d, req] : requests_) {
      auto lit = last_reply_.find(req.client);
      if (lit != last_reply_.end() && req.timestamp <= lit->second.timestamp) {
        continue;
      }
      bool in_log = false;
      for (const auto& [seq, entry] : log_) {
        if (seq > last_exec_ && HavePayload(entry.d) && entry.d != NullBatchDigest()) {
          for (const RequestMsg& r : batch_store_.at(entry.d).requests) {
            if (r.RequestDigest() == d) {
              in_log = true;
              break;
            }
          }
        }
        if (in_log) {
          break;
        }
      }
      if (!in_log) {
        queued_timestamp_[req.client] = req.timestamp;
        request_queue_.push_back(d);
      }
    }
  }

  // Garbage-collect old view-change bookkeeping.
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.lower_bound(v));
  vc_accepted_.erase(vc_accepted_.begin(), vc_accepted_.lower_bound(v));
  vc_unverified_.erase(vc_unverified_.begin(), vc_unverified_.lower_bound(v));
  vc_acks_.erase(vc_acks_.begin(), vc_acks_.lower_bound(v));

  BFT_DEBUG("replica " << id() << ": entered view " << v << " primary=" << primary()
                       << " last_exec=" << last_exec_ << " queue=" << request_queue_.size()
                       << " log=" << log_.size() << " reqs=" << requests_.size());
  TryExecute();
  TrySendPrePrepare();
}

// --- Batch fetch ----------------------------------------------------------------------------------

void Replica::HandleBatchFetch(BatchFetchMsg m) {
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    return;
  }
  auto it = batch_store_.find(m.batch_digest);
  if (it == batch_store_.end()) {
    return;
  }
  BatchReplyMsg reply;
  reply.payload = it->second;
  reply.replica = id();
  AuthAndSend(m.replica, std::move(reply));
}

void Replica::HandleBatchReply(BatchReplyMsg m) {
  // Self-certifying: accept only if we asked for this digest and the payload matches it.
  Digest d = m.payload.BatchDigest();
  if (wanted_payloads_.count(d) == 0) {
    return;
  }
  wanted_payloads_.erase(d);
  batch_store_[d] = std::move(m.payload);
  PrimaryTryNewView();
}

// --- Status & retransmission (Section 5.2) ----------------------------------------------------------

void Replica::OnStatusTimer() {
  if (!crashed_) {
    SendStatus();
    status_timer_ = SetTimer(config_->status_interval + rng_.Below(kMillisecond),
                             [this]() { OnStatusTimer(); });
  }
}

void Replica::SendStatus() {
  StatusMsg st;
  st.view = view_;
  st.view_active = view_active_;
  st.last_stable = low_;
  st.last_exec = last_exec_;
  size_t span = config_->log_size;
  st.prepared_bits.assign((span + 7) / 8, 0);
  st.committed_bits.assign((span + 7) / 8, 0);
  for (const auto& [seq, entry] : log_) {
    if (seq <= low_ || seq > low_ + span) {
      continue;
    }
    size_t bit = seq - low_ - 1;
    if (entry.prepared) {
      st.prepared_bits[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
    if (entry.committed) {
      st.committed_bits[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  st.has_new_view = view_active_;
  st.vc_have_bits.assign((static_cast<size_t>(config_->n) + 7) / 8, 0);
  for (const auto& [sender, vc] : vc_msgs_[view_]) {
    size_t bit = static_cast<size_t>(config_->ReplicaIndex(sender));
    st.vc_have_bits[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
  st.replica = id();
  AuthAndMulticast(st);
}

void Replica::HandleStatus(StatusMsg m) {
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    return;
  }
  NodeId peer = m.replica;

  if (m.view < view_) {
    // The peer is in an old view: retransmit our view-change for the current view, plus the
    // new-view if we are (or have heard from) its primary.
    auto vit = vc_msgs_[view_].find(id());
    if (vit != vc_msgs_[view_].end()) {
      ResendOwn(peer, vit->second);
    }
    auto nit = sent_new_view_.find(view_);
    if (nit != sent_new_view_.end()) {
      ResendOwn(peer, nit->second);
    }
    return;
  }
  if (m.view > view_) {
    return;  // we are the stale one; our own status will trigger help
  }

  if (!m.view_active) {
    // Peer is waiting for view-change evidence for this view. Our own message is re-signed
    // with fresh keys; others' are forwarded verbatim (the ack mechanism authenticates them).
    for (const auto& [sender, vc] : vc_msgs_[view_]) {
      size_t bit = static_cast<size_t>(config_->ReplicaIndex(sender));
      size_t byte = bit / 8;
      if (byte < m.vc_have_bits.size() && (m.vc_have_bits[byte] >> (bit % 8)) & 1) {
        continue;
      }
      if (sender == id()) {
        ResendOwn(peer, vc);
      } else {
        SendTo(peer, EncodeMessage(Message(vc)));
      }
    }
    auto nit = sent_new_view_.find(view_);
    if (nit != sent_new_view_.end() && !m.has_new_view) {
      ResendOwn(peer, nit->second);
    }
    return;
  }

  if (m.last_stable < low_) {
    // The peer is behind our stable checkpoint: resend our checkpoint message so it can
    // assemble the certificate and start state transfer if needed.
    auto cit = checkpoint_msgs_.find(low_);
    if (cit == checkpoint_msgs_.end()) {
      // Our own message was garbage collected with the advance; regenerate it.
      if (state_.HasCheckpoint(low_)) {
        CheckpointMsg cp;
        cp.seq = low_;
        cp.state_digest = state_.CheckpointDigest(low_);
        cp.replica = id();
        AuthAndSend(peer, std::move(cp));
      }
    } else {
      for (const auto& [r, cp] : cit->second) {
        if (r == id()) {
          ResendOwn(peer, cp);
        }
      }
    }
  }

  // Retransmit per-sequence protocol messages the peer is missing.
  for (const auto& [seq, entry] : log_) {
    if (seq <= std::max(m.last_exec, m.last_stable) || seq > m.last_stable + config_->log_size) {
      continue;
    }
    size_t bit = seq > m.last_stable ? seq - m.last_stable - 1 : 0;
    bool peer_prepared = bit / 8 < m.prepared_bits.size() &&
                         ((m.prepared_bits[bit / 8] >> (bit % 8)) & 1) != 0;
    bool peer_committed = bit / 8 < m.committed_bits.size() &&
                          ((m.committed_bits[bit / 8] >> (bit % 8)) & 1) != 0;
    if (!peer_prepared && entry.pre_prepare.has_value() && entry.pp_view == view_) {
      if (config_->PrimaryOf(view_) == id()) {
        ResendOwn(peer, *entry.pre_prepare);
      }
      auto pit = entry.prepares.find(id());
      if (pit != entry.prepares.end()) {
        ResendOwn(peer, pit->second);
      }
    }
    if (!peer_committed && entry.sent_commit) {
      auto cit2 = entry.commits.find(id());
      if (cit2 != entry.commits.end()) {
        ResendOwn(peer, cit2->second);
      }
    }
  }
}

// --- Fault injection --------------------------------------------------------------------------------

void Replica::Crash() {
  crashed_ = true;
  CancelAllTimers();
  Detach();
}

void Replica::CorruptStatePages(size_t count) {
  // Scribbles over pages *without* telling the protocol (no Modify), simulating an attacker
  // with a memory write primitive. Only recovery's state checking can find this.
  size_t pages = std::min(count, state_.num_pages());
  for (size_t i = 0; i < pages; ++i) {
    uint64_t page = rng_.Below(state_.num_pages());
    uint8_t* raw = const_cast<uint8_t*>(state_.data()) + page * state_.page_size();
    for (size_t b = 0; b < 64; ++b) {
      raw[b] ^= static_cast<uint8_t>(rng_.Next());
    }
  }
}

}  // namespace bft

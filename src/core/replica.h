// The BFT replica automaton (Chapters 2-5).
//
// Implements the three-phase normal-case protocol with batching and the Section 5.1
// optimizations, garbage collection via checkpoints, the MAC-based view-change protocol with
// view-change-acks and the Fig 3-3 decision procedure, status-message retransmission,
// hierarchical state transfer, and (when enabled) proactive recovery.
#ifndef SRC_CORE_REPLICA_H_
#define SRC_CORE_REPLICA_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/core/auth.h"
#include "src/core/config.h"
#include "src/core/endpoint.h"
#include "src/core/messages.h"
#include "src/core/state.h"
#include "src/core/view_change.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/service.h"

namespace bft {

class Replica {
 public:
  // The replica owns its endpoint; it installs itself as the message handler and from then
  // on speaks only to the Endpoint seam (sends, timers, clock, CPU meter).
  Replica(std::unique_ptr<Endpoint> endpoint, const ReplicaConfig* config,
          const PerfModel* model, PublicKeyDirectory* directory,
          std::unique_ptr<Service> service, uint64_t seed);
  ~Replica();

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Starts periodic timers (status; watchdog if proactive recovery is on).
  void Start();

  void OnMessage(MsgBuffer message);

  NodeId id() const { return ep_->id(); }
  CpuMeter& cpu() { return ep_->cpu(); }
  Endpoint* endpoint() { return ep_.get(); }

  // --- Introspection -------------------------------------------------------------------------
  View view() const { return view_; }
  bool view_active() const { return view_active_; }
  bool is_primary() const { return config_->PrimaryOf(view_) == id() && view_active_; }
  SeqNo last_executed() const { return last_exec_; }
  SeqNo last_tentative_executed() const { return last_tentative_exec_; }
  SeqNo low_water() const { return low_; }
  bool transfer_active() const { return transfer_active_; }

  // One row of the /healthz document: plain integers, so harnesses can copy it off-loop.
  ReplicaHealth Health() const {
    ReplicaHealth h;
    h.id = id();
    h.running = true;
    h.view = view_;
    h.view_active = view_active_;
    h.last_stable = low_;
    h.high_water = low_ + config_->log_size;
    h.last_executed = last_exec_;
    h.transfer_active = transfer_active_;
    return h;
  }
  Service* service() { return service_.get(); }
  ReplicaState& state() { return state_; }
  AuthContext& auth() { return auth_; }

  struct Stats {
    uint64_t requests_executed = 0;
    uint64_t batches_executed = 0;
    uint64_t view_changes_started = 0;
    uint64_t new_views_entered = 0;
    uint64_t checkpoints_taken = 0;
    uint64_t stable_checkpoints = 0;
    uint64_t state_transfers = 0;
    uint64_t pages_fetched = 0;
    uint64_t rollbacks = 0;
    uint64_t recoveries = 0;          // completed
    uint64_t recoveries_started = 0;
    SimTime last_recovery_duration = 0;
    uint64_t rejected_auth = 0;
  };
  const Stats& stats() const { return stats_; }

  // Re-resolves this replica's instruments into `registry` (labeled node="<id>") and attaches
  // `tracer` (may be null) for request-phase stamping. The constructor wires the process-wide
  // default registry, so increments are always valid; harnesses call this — single-threaded,
  // before Start() — to collect their replicas into a registry they own and export.
  void InstallObservability(MetricsRegistry* registry, RequestTracer* tracer);

  // --- Fault injection (tests / examples) -----------------------------------------------------
  // Stops processing and sending entirely (fail-stop crash).
  void Crash();
  // Crash + drop volatile protocol state, keeping only the service state (used with recovery).
  bool crashed() const { return crashed_; }
  // When set, the replica stays silent (receives but never sends) — a "mute" Byzantine fault.
  void SetMute(bool mute) { mute_ = mute; }
  // Corrupts `count` pages of the service state without telling the protocol (an attacker who
  // scribbled on memory); recovery's state checking must detect and repair this.
  void CorruptStatePages(size_t count);

  // Triggers proactive recovery immediately (also fired by the watchdog timer).
  void StartRecovery();

  // Forces a view change (used by tests and by recovering primaries).
  void ForceViewChange();

 private:
  struct LogEntry {
    std::optional<PrePrepareMsg> pre_prepare;
    Digest d;                 // batch digest of the accepted pre-prepare
    View pp_view = 0;         // view of the accepted pre-prepare
    std::map<NodeId, PrepareMsg> prepares;
    std::map<NodeId, CommitMsg> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    bool committed = false;
    bool executed_tentative = false;
    bool executed_committed = false;
    bool is_null = false;  // null request installed by a new-view
  };

  // --- Dispatch (one overload per message type, driven by std::visit) --------------------------
  void Dispatch(RequestMsg m);
  void Dispatch(ReplyMsg m);
  void Dispatch(PrePrepareMsg m);
  void Dispatch(PrepareMsg m);
  void Dispatch(CommitMsg m);
  void Dispatch(CheckpointMsg m);
  void Dispatch(ViewChangeMsg m);
  void Dispatch(ViewChangeAckMsg m);
  void Dispatch(NewViewMsg m);
  void Dispatch(StatusMsg m);
  void Dispatch(FetchMsg m);
  void Dispatch(MetaDataMsg m);
  void Dispatch(DataMsg m);
  void Dispatch(BatchFetchMsg m);
  void Dispatch(BatchReplyMsg m);
  void Dispatch(NewKeyMsg m);
  void Dispatch(QueryStableMsg m);
  void Dispatch(ReplyStableMsg m);

  // --- Message handlers ------------------------------------------------------------------------
  void HandleRequest(RequestMsg m);
  void HandlePrePrepare(PrePrepareMsg m);
  void HandlePrepare(PrepareMsg m);
  void HandleCommit(CommitMsg m);
  void HandleCheckpoint(CheckpointMsg m);
  void HandleViewChange(ViewChangeMsg m);
  void HandleViewChangeAck(ViewChangeAckMsg m);
  void HandleNewView(NewViewMsg m);
  void HandleStatus(StatusMsg m);
  void HandleFetch(FetchMsg m);
  void HandleMetaData(MetaDataMsg m);
  void HandleData(DataMsg m);
  void HandleBatchFetch(BatchFetchMsg m);
  void HandleBatchReply(BatchReplyMsg m);
  void HandleNewKey(NewKeyMsg m);
  void HandleQueryStable(QueryStableMsg m);
  void HandleReplyStable(ReplyStableMsg m);
  void HandleReply(ReplyMsg m);  // recovery request replies

  // --- Normal case -------------------------------------------------------------------------------
  bool InWatermarks(SeqNo n) const { return n > low_ && n <= low_ + config_->log_size; }
  LogEntry& Entry(SeqNo n) { return log_[n]; }
  void TrySendPrePrepare();
  bool BatchRequestsAvailable(const PrePrepareMsg& pp) const;
  void AcceptPrePrepare(const PrePrepareMsg& pp);
  void TryPrepared(SeqNo n);
  void TryCommitted(SeqNo n);
  void TryExecute();
  void ExecuteBatch(SeqNo n, bool tentative);
  void SendReply(NodeId client, const ReplyMsg& reply);
  void MaybeTakeCheckpoint(SeqNo n);
  void OnCheckpointCommitted(SeqNo n);
  void TryStable(SeqNo n);
  void CollectGarbage(SeqNo new_low);
  Bytes EncodeLastReplies() const;
  void DecodeLastReplies(ByteView raw);
  void ProcessPendingPrePrepares();
  void DrainReadOnlyQueue();
  void ExecuteReadOnly(const RequestMsg& req);

  // --- View changes --------------------------------------------------------------------------------
  void StartViewChange(View new_view);
  void SendViewChange();
  std::vector<SeqObservation> CollectLogObservations(View leaving_view) const;
  void MaybeAckViewChange(const ViewChangeMsg& m);
  void TryAcceptViewChange(View v, NodeId sender);
  void PrimaryTryNewView();
  void ProcessNewView(const NewViewMsg& nv, const std::map<NodeId, ViewChangeMsg>& s);
  bool HavePayload(const Digest& d) const;
  void InstallChosenBatches(const NewViewMsg& nv);
  void EnterView(View v);
  void StartViewChangeTimer();
  void StopViewChangeTimer();
  void OnViewChangeTimeout();
  // Starts the pending-view timer once 2f+1 view-change messages arrived (liveness rule 1).
  void MaybeStartPendingTimer();

  // --- Retransmission ----------------------------------------------------------------------------
  void SendStatus();
  void OnStatusTimer();

  // --- State transfer ------------------------------------------------------------------------------
  void MaybeStartStateTransfer(SeqNo target, const Digest& full_digest);
  void FetchNextPartition();
  void FinishStateTransfer();
  void AbortStateTransfer();

  // --- Recovery (Chapter 4) -------------------------------------------------------------------------
  void OnWatchdog();
  void OnKeyRefresh();
  void ContinueRecoveryAfterReboot();
  void RecomputeEstimation();
  void SendRecoveryRequest();
  void CheckRecoveryComplete();
  void SendNewKey();
  void RunStateCheck();

  // --- Helpers ----------------------------------------------------------------------------------------
  // Fills msg.auth in place and multicasts; callers that log the message for retransmission
  // must store it *after* this call so the stored copy carries the authenticator.
  template <typename M>
  void AuthAndMulticast(M& msg);
  template <typename M>
  void AuthAndSend(NodeId dst, M msg);
  // Retransmits one of our own multicast-authenticated messages point-to-point, regenerating
  // the authenticator with the *latest* session keys (Section 5.2 — liveness under frequent
  // key changes requires re-authentication, not replay).
  template <typename M>
  void ResendOwn(NodeId dst, M msg);
  bool VerifyFromReplica(NodeId sender, ByteView content, ByteView auth);
  bool VerifyFromAny(NodeId sender, ByteView content, ByteView auth);
  NodeId primary() const { return config_->PrimaryOf(view_); }
  std::vector<NodeId> OtherReplicas() const;

  // --- Observability ----------------------------------------------------------------------
  // Stamps `phase` for every sampled request in the batch identified by `d` (no-op when
  // tracing is off — one relaxed load and a branch).
  void TraceBatch(TracePhase phase, const Digest& d);
  void TraceRequest(TracePhase phase, NodeId client, uint64_t timestamp) {
    if (tracer_ != nullptr && tracer_->enabled() && tracer_->Sampled(client, timestamp)) {
      tracer_->Stamp(phase, client, timestamp, Now());
    }
  }

  // --- Endpoint seam shims (keep protocol code terse) -------------------------------------
  SimTime Now() const { return ep_->Now(); }
  void SendTo(NodeId dst, MsgBuffer msg) {
    obs_.bytes_out->Inc(msg.size());
    ep_->Send(dst, std::move(msg));
  }
  void MulticastTo(const std::vector<NodeId>& dsts, const MsgBuffer& msg) {
    obs_.bytes_out->Inc(msg.size());
    ep_->Multicast(dsts, msg);
  }
  Endpoint::TimerId SetTimer(SimTime delay, std::function<void()> fn) {
    return ep_->SetTimer(delay, std::move(fn));
  }
  void CancelTimer(Endpoint::TimerId id) { ep_->CancelTimer(id); }
  void CancelAllTimers() { ep_->CancelAllTimers(); }
  void Detach() { ep_->Detach(); }
  void Reattach() { ep_->Reattach(); }

  std::unique_ptr<Endpoint> ep_;
  const ReplicaConfig* config_;
  const PerfModel* model_;
  std::unique_ptr<Service> service_;
  AuthContext auth_;
  ReplicaState state_;
  Rng rng_;
  Stats stats_;

  // Pre-resolved instruments (see InstallObservability): the hot path pays one relaxed
  // atomic add per event, never a registry lookup. Multicasts count once per protocol send,
  // not per destination — the transport layer counts datagrams.
  struct Obs {
    Counter* msg_in[kNumMsgTypes + 1] = {};
    Counter* msg_out[kNumMsgTypes + 1] = {};
    Counter* bytes_in = nullptr;
    Counter* bytes_out = nullptr;
    Counter* dropped_undecodable = nullptr;
    Counter* dropped_duplicate = nullptr;
    Counter* request_replays = nullptr;
    Counter* auth_rejected = nullptr;
    Counter* view_changes = nullptr;
    Counter* new_views = nullptr;
    Counter* checkpoints = nullptr;
    Counter* stable_checkpoints = nullptr;
    Counter* state_transfers = nullptr;
    Counter* state_fetches = nullptr;
    Counter* state_pages = nullptr;
    Counter* batches_executed = nullptr;
    Counter* requests_executed = nullptr;
    Counter* rollbacks = nullptr;
    Gauge* view = nullptr;
    Gauge* last_executed = nullptr;
    Histogram* batch_size = nullptr;
  };
  Obs obs_;
  RequestTracer* tracer_ = nullptr;

  // Protocol state.
  View view_ = 0;
  bool view_active_ = true;  // view 0 starts active
  SeqNo seqno_ = 0;          // primary: last assigned sequence number
  SeqNo low_ = 0;            // h: last stable checkpoint
  SeqNo last_exec_ = 0;      // last committed-and-executed sequence number
  SeqNo last_tentative_exec_ = 0;
  SeqNo last_prepared_seq_ = 0;  // highest sequence number ever prepared here
  std::map<SeqNo, LogEntry> log_;

  // Request buffering.
  std::unordered_map<Digest, RequestMsg, DigestHasher> requests_;
  std::deque<Digest> request_queue_;                    // FIFO batching queue
  std::map<NodeId, uint64_t> queued_timestamp_;         // one outstanding request per client
  std::unordered_map<Digest, BatchPayload, DigestHasher> batch_store_;
  std::vector<PrePrepareMsg> pending_pps_;              // pre-prepares awaiting request bodies
  std::deque<RequestMsg> ro_queue_;                     // read-only ops awaiting quiescence

  // Exactly-once semantics: last reply sent to each client.
  std::map<NodeId, ReplyMsg> last_reply_;

  // Checkpoint certificates.
  std::map<SeqNo, std::map<NodeId, CheckpointMsg>> checkpoint_msgs_;
  std::map<SeqNo, Digest> pending_checkpoint_digest_;  // our own digests awaiting commit

  // View-change state.
  PqState pq_;
  std::map<View, std::map<NodeId, ViewChangeMsg>> vc_msgs_;           // verified VCs per view
  std::map<View, std::map<NodeId, std::set<NodeId>>> vc_acks_;        // acks per vc sender
  std::map<View, std::map<NodeId, ViewChangeMsg>> vc_unverified_;     // awaiting acks
  std::map<View, std::map<NodeId, ViewChangeMsg>> vc_accepted_;       // S sets (acked)
  std::optional<NewViewMsg> pending_new_view_;
  std::map<View, NewViewMsg> sent_new_view_;   // primary: new-view we sent, for retransmission
  Endpoint::TimerId vc_timer_ = 0;
  bool vc_timer_running_ = false;
  SimTime vc_timeout_;
  uint64_t batches_at_timer_start_ = 0;
  std::set<Digest> wanted_payloads_;

  // State transfer.
  bool transfer_active_ = false;
  SeqNo transfer_target_ = 0;
  Digest transfer_full_digest_;
  Bytes transfer_extra_;
  Digest transfer_root_digest_;
  bool transfer_have_root_ = false;
  bool transfer_checking_ = false;  // recovery state check: compare instead of blind fetch
  bool state_check_pending_ = false;
  bool transfer_grace_pending_ = false;
  struct PendingPart {
    uint32_t level;
    uint64_t index;
    SeqNo lm;
    Digest d;
  };
  std::deque<PendingPart> transfer_queue_;
  std::optional<PendingPart> transfer_inflight_;
  uint64_t transfer_nonce_ = 0;
  Endpoint::TimerId transfer_timer_ = 0;
  SimTime transfer_started_at_ = 0;

  // Latest stable checkpoint observed elsewhere (candidate state-transfer target).
  SeqNo observed_stable_seq_ = 0;
  Digest observed_stable_digest_;

  // Recovery.
  bool recovering_ = false;
  bool recovery_estimating_ = false;  // estimation phase: only new-key/query/status handled
  SeqNo recovery_max_seq_ = 0;        // Hm: estimated high-water bound
  SeqNo recovery_point_ = 0;          // Hr
  bool recovery_point_known_ = false;
  uint64_t recovery_nonce_ = 0;
  std::map<NodeId, std::pair<SeqNo, SeqNo>> est_replies_;  // min c, max p per replica
  uint64_t recovery_request_ts_ = 0;
  std::map<NodeId, ReplyMsg> recovery_replies_;
  SimTime recovery_started_at_ = 0;
  uint64_t monotonic_counter_ = 0;          // secure co-processor counter
  std::map<NodeId, uint64_t> peer_counters_;  // anti-replay for NEW-KEY

  bool crashed_ = false;
  bool mute_ = false;
  Endpoint::TimerId status_timer_ = 0;
};

template <typename M>
void Replica::AuthAndMulticast(M& msg) {
  if (crashed_) {
    return;
  }
  msg.auth = auth_.GenAuthMulticast(msg.AuthContent(), &cpu());
  if (mute_) {
    return;  // a mute replica still authenticates (so its own log is consistent), never sends
  }
  obs_.msg_out[static_cast<size_t>(MsgTypeTrait<M>::value)]->Inc();
  MulticastTo(OtherReplicas(), EncodeMessage(Message(msg)));
}

template <typename M>
void Replica::AuthAndSend(NodeId dst, M msg) {
  if (mute_ || crashed_) {
    return;
  }
  msg.auth = auth_.GenAuthPoint(dst, msg.AuthContent(), &cpu());
  obs_.msg_out[static_cast<size_t>(MsgTypeTrait<M>::value)]->Inc();
  SendTo(dst, EncodeMessage(Message(std::move(msg))));
}

template <typename M>
void Replica::ResendOwn(NodeId dst, M msg) {
  if (mute_ || crashed_) {
    return;
  }
  // MACs are regenerated so retransmissions carry the latest session keys; signatures never
  // go stale (BFT-PK), so re-signing would only burn CPU.
  if (auth_.mode() == AuthMode::kMac || msg.auth.empty()) {
    msg.auth = auth_.GenAuthMulticast(msg.AuthContent(), &cpu());
  }
  obs_.msg_out[static_cast<size_t>(MsgTypeTrait<M>::value)]->Inc();
  SendTo(dst, EncodeMessage(Message(std::move(msg))));
}

}  // namespace bft

#endif  // SRC_CORE_REPLICA_H_

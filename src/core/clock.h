// Shared time and identity primitives for the protocol core.
//
// The core automaton is runtime-agnostic: `SimTime` is nanoseconds on whatever clock the
// Endpoint supplies — simulated time under src/sim/, a monotonic real clock under
// src/runtime/. Node ids address protocol participants on either substrate.
#ifndef SRC_CORE_CLOCK_H_
#define SRC_CORE_CLOCK_H_

#include <cstdint>

namespace bft {

// Nanoseconds of protocol time (simulated or real, depending on the runtime).
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

using NodeId = uint32_t;

}  // namespace bft

#endif  // SRC_CORE_CLOCK_H_

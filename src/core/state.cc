#include "src/core/state.h"

#include <cassert>
#include <cstring>

#include "src/common/serializer.h"

namespace bft {

ReplicaState::ReplicaState(const ReplicaConfig* config, const PerfModel* model)
    : config_(config), model_(model) {
  num_pages_ = config->state_pages;
  data_.assign(num_pages_ * config->page_size, 0);

  // Leaf level: smallest L with branching^L >= num_pages.
  uint32_t level = 0;
  uint64_t cover = 1;
  while (cover < num_pages_) {
    cover *= config->partition_branching;
    ++level;
  }
  leaf_level_ = level;

  leaves_.resize(num_pages_);
  interior_.resize(leaf_level_);
  for (uint32_t l = 0; l < leaf_level_; ++l) {
    interior_[l].resize(PartsAtLevel(l));
  }
}

uint64_t ReplicaState::PartsAtLevel(uint32_t level) const {
  if (level >= leaf_level_) {
    return num_pages_;
  }
  // Number of children groups needed to cover num_pages at this level.
  uint64_t span = 1;
  for (uint32_t l = level; l < leaf_level_; ++l) {
    span *= config_->partition_branching;
  }
  return (num_pages_ + span - 1) / span;
}

void ReplicaState::Read(size_t offset, size_t len, uint8_t* out) const {
  assert(offset + len <= data_.size());
  std::memcpy(out, data_.data() + offset, len);
}

void ReplicaState::Modify(size_t offset, size_t len) {
  assert(offset + len <= data_.size());
  if (len == 0) {
    return;
  }
  uint64_t first = offset / config_->page_size;
  uint64_t last = (offset + len - 1) / config_->page_size;
  for (uint64_t p = first; p <= last; ++p) {
    dirty_pages_.insert(p);
  }
}

void ReplicaState::Write(size_t offset, ByteView bytes) {
  Modify(offset, bytes.size());
  std::memcpy(data_.data() + offset, bytes.data(), bytes.size());
}

uint8_t* ReplicaState::MutableRange(size_t offset, size_t len) {
  Modify(offset, len);
  return data_.data() + offset;
}

Digest ReplicaState::PageDigest(uint64_t index, SeqNo lm, ByteView value) {
  Writer w;
  w.U64(index);
  w.U64(lm);
  return ComputeDigestParts({ByteView(w.data()), value});
}

Digest ReplicaState::InteriorDigest(uint32_t level, uint64_t index, SeqNo lm,
                                    const AdHash& sum) const {
  Writer w;
  w.U32(level);
  w.U64(index);
  w.U64(lm);
  WriteDigest(w, sum.Value());
  return ComputeDigest(w.data());
}

void ReplicaState::UpdateTree(SeqNo seq, const std::set<uint64_t>& pages, Checkpoint* record,
                              CpuMeter* cpu) {
  // Collect, per interior level, the set of indices whose digest must be refreshed.
  std::set<uint64_t> touched;
  for (uint64_t page : pages) {
    LiveNode& leaf = leaves_[page];
    Digest old_d = leaf.d;
    leaf.lm = seq;
    leaf.d = PageDigest(page, seq,
                        ByteView(data_.data() + page * config_->page_size, config_->page_size));
    if (cpu != nullptr) {
      cpu->Charge(model_->DigestCost(config_->page_size));
    }
    if (record != nullptr) {
      PageEntry entry;
      entry.lm = seq;
      entry.d = leaf.d;
      entry.value.assign(data_.begin() + static_cast<long>(page * config_->page_size),
                         data_.begin() + static_cast<long>((page + 1) * config_->page_size));
      record->pages[page] = std::move(entry);
    }
    if (leaf_level_ > 0) {
      uint64_t parent = page / config_->partition_branching;
      interior_[leaf_level_ - 1][parent].sum.Replace(old_d, leaf.d);
      touched.insert(parent);
    }
  }

  // Propagate up the interior levels.
  for (int l = static_cast<int>(leaf_level_) - 1; l >= 0; --l) {
    std::set<uint64_t> next_touched;
    for (uint64_t idx : touched) {
      LiveNode& node = interior_[static_cast<size_t>(l)][idx];
      Digest old_d = node.d;
      node.lm = seq;
      node.d = InteriorDigest(static_cast<uint32_t>(l), idx, seq, node.sum);
      if (cpu != nullptr) {
        cpu->Charge(model_->DigestCost(64));  // small fixed-size interior node hash
      }
      if (record != nullptr) {
        record->nodes[{static_cast<uint32_t>(l), idx}] = NodeEntry{seq, node.d};
      }
      if (l > 0) {
        uint64_t parent = idx / config_->partition_branching;
        interior_[static_cast<size_t>(l) - 1][parent].sum.Replace(old_d, node.d);
        next_touched.insert(parent);
      }
    }
    touched = std::move(next_touched);
  }
}

void ReplicaState::Baseline(const Bytes& extra) {
  // Digest every page and interior node, then record a full snapshot as checkpoint 0.
  std::set<uint64_t> all;
  for (uint64_t p = 0; p < num_pages_; ++p) {
    all.insert(p);
  }
  Checkpoint record;
  record.seq = 0;
  record.extra = extra;
  UpdateTree(0, all, &record, nullptr);
  record.full_digest = ComputeFullDigest(CurrentRootDigest(), extra);
  checkpoints_.clear();
  checkpoints_[0] = std::move(record);
  dirty_pages_.clear();
}

Digest ReplicaState::CurrentRootDigest() const {
  if (leaf_level_ == 0) {
    // Degenerate single-page state: the root is the page itself.
    return leaves_[0].d;
  }
  return interior_[0][0].d;
}

Digest ReplicaState::ComputeFullDigest(const Digest& root, const Bytes& extra) const {
  Writer w;
  WriteDigest(w, root);
  w.Var(extra);
  return ComputeDigest(w.data());
}

Digest ReplicaState::TakeCheckpoint(SeqNo seq, const Bytes& extra, CpuMeter* cpu) {
  Checkpoint record;
  record.seq = seq;
  record.extra = extra;
  UpdateTree(seq, dirty_pages_, &record, cpu);
  dirty_pages_.clear();
  record.full_digest = ComputeFullDigest(CurrentRootDigest(), extra);
  Digest d = record.full_digest;
  checkpoints_[seq] = std::move(record);
  return d;
}

Digest ReplicaState::CheckpointDigest(SeqNo seq) const {
  auto it = checkpoints_.find(seq);
  return it == checkpoints_.end() ? Digest{} : it->second.full_digest;
}

Bytes ReplicaState::CheckpointExtra(SeqNo seq) const {
  auto it = checkpoints_.find(seq);
  return it == checkpoints_.end() ? Bytes{} : it->second.extra;
}

SeqNo ReplicaState::NewestCheckpoint() const {
  return checkpoints_.empty() ? 0 : checkpoints_.rbegin()->first;
}

SeqNo ReplicaState::OldestCheckpoint() const {
  return checkpoints_.empty() ? 0 : checkpoints_.begin()->first;
}

void ReplicaState::DiscardCheckpointsBelow(SeqNo keep_from) {
  while (!checkpoints_.empty() && checkpoints_.begin()->first < keep_from) {
    auto oldest = checkpoints_.begin();
    auto next = std::next(oldest);
    if (next == checkpoints_.end()) {
      // Never discard the only checkpoint: it is the full snapshot anchoring lookups.
      return;
    }
    // Merge forward: entries absent from `next` keep their value from `oldest` at `next`.
    for (auto& [idx, entry] : oldest->second.pages) {
      next->second.pages.emplace(idx, std::move(entry));
    }
    for (auto& [key, entry] : oldest->second.nodes) {
      next->second.nodes.emplace(key, entry);
    }
    checkpoints_.erase(oldest);
  }
}

const ReplicaState::PageEntry* ReplicaState::LookupPage(uint64_t index, SeqNo target) const {
  auto it = checkpoints_.upper_bound(target);
  while (it != checkpoints_.begin()) {
    --it;
    auto pit = it->second.pages.find(index);
    if (pit != it->second.pages.end()) {
      return &pit->second;
    }
  }
  return nullptr;
}

const ReplicaState::NodeEntry* ReplicaState::LookupNode(uint32_t level, uint64_t index,
                                                        SeqNo target) const {
  auto it = checkpoints_.upper_bound(target);
  while (it != checkpoints_.begin()) {
    --it;
    auto nit = it->second.nodes.find({level, index});
    if (nit != it->second.nodes.end()) {
      return &nit->second;
    }
  }
  return nullptr;
}

void ReplicaState::RebuildInterior() {
  for (int l = static_cast<int>(leaf_level_) - 1; l >= 0; --l) {
    uint64_t count = PartsAtLevel(static_cast<uint32_t>(l));
    for (uint64_t idx = 0; idx < count; ++idx) {
      AdHash sum;
      SeqNo lm = 0;
      uint64_t first = idx * config_->partition_branching;
      uint64_t child_count = PartsAtLevel(static_cast<uint32_t>(l) + 1);
      for (uint64_t c = first; c < first + config_->partition_branching && c < child_count;
           ++c) {
        const LiveNode& child = (static_cast<uint32_t>(l) + 1 == leaf_level_)
                                    ? leaves_[c]
                                    : interior_[static_cast<size_t>(l) + 1][c];
        sum.Add(child.d);
        lm = std::max(lm, child.lm);
      }
      LiveNode& node = interior_[static_cast<size_t>(l)][idx];
      node.sum = sum;
      node.lm = lm;
      node.d = InteriorDigest(static_cast<uint32_t>(l), idx, lm, sum);
    }
  }
}

Bytes ReplicaState::RollbackToCheckpoint(SeqNo seq) {
  auto target = checkpoints_.find(seq);
  assert(target != checkpoints_.end());

  // Pages possibly differing from their value at `seq`: dirty pages plus pages snapshotted by
  // later checkpoints.
  std::set<uint64_t> to_restore = dirty_pages_;
  for (auto it = checkpoints_.upper_bound(seq); it != checkpoints_.end(); ++it) {
    for (const auto& [idx, entry] : it->second.pages) {
      to_restore.insert(idx);
    }
  }

  for (uint64_t page : to_restore) {
    const PageEntry* entry = LookupPage(page, seq);
    assert(entry != nullptr);
    std::memcpy(data_.data() + page * config_->page_size, entry->value.data(),
                config_->page_size);
    leaves_[page].lm = entry->lm;
    leaves_[page].d = entry->d;
  }
  // Rollback is rare (tentative-execution aborts during view changes), so a full interior
  // rebuild keeps the logic simple; the incremental path is only needed for checkpoints.
  RebuildInterior();

  dirty_pages_.clear();
  Bytes extra = target->second.extra;
  checkpoints_.erase(checkpoints_.upper_bound(seq), checkpoints_.end());
  return extra;
}

std::vector<MetaDataMsg::Part> ReplicaState::GetMetaData(uint32_t level, uint64_t index,
                                                         SeqNo target) const {
  std::vector<MetaDataMsg::Part> out;
  if (checkpoints_.count(target) == 0 || level >= leaf_level_) {
    return out;
  }
  uint32_t child_level = level + 1;
  uint64_t first = index * config_->partition_branching;
  uint64_t count = PartsAtLevel(child_level);
  for (uint64_t c = first; c < first + config_->partition_branching && c < count; ++c) {
    MetaDataMsg::Part part;
    part.index = c;
    if (child_level == leaf_level_) {
      const PageEntry* e = LookupPage(c, target);
      if (e == nullptr) {
        continue;
      }
      part.lm = e->lm;
      part.d = e->d;
    } else {
      const NodeEntry* e = LookupNode(child_level, c, target);
      if (e == nullptr) {
        continue;
      }
      part.lm = e->lm;
      part.d = e->d;
    }
    out.push_back(part);
  }
  return out;
}

std::optional<std::pair<SeqNo, Digest>> ReplicaState::GetNodeInfo(uint32_t level,
                                                                  uint64_t index,
                                                                  SeqNo target) const {
  if (checkpoints_.count(target) == 0) {
    return std::nullopt;
  }
  if (level >= leaf_level_) {
    const PageEntry* e = LookupPage(index, target);
    if (e == nullptr) {
      return std::nullopt;
    }
    return std::make_pair(e->lm, e->d);
  }
  const NodeEntry* e = LookupNode(level, index, target);
  if (e == nullptr) {
    return std::nullopt;
  }
  return std::make_pair(e->lm, e->d);
}

std::pair<SeqNo, Digest> ReplicaState::LiveNodeInfo(uint32_t level, uint64_t index) const {
  if (level >= leaf_level_) {
    return {leaves_[index].lm, leaves_[index].d};
  }
  return {interior_[level][index].lm, interior_[level][index].d};
}

std::optional<std::pair<SeqNo, Bytes>> ReplicaState::GetPage(uint64_t index,
                                                             SeqNo target) const {
  if (checkpoints_.count(target) == 0 || index >= num_pages_) {
    return std::nullopt;
  }
  const PageEntry* e = LookupPage(index, target);
  if (e == nullptr) {
    return std::nullopt;
  }
  return std::make_pair(e->lm, e->value);
}

void ReplicaState::ApplyFetchedPage(uint64_t index, SeqNo lm, ByteView value) {
  assert(index < num_pages_ && value.size() == config_->page_size);
  std::memcpy(data_.data() + index * config_->page_size, value.data(), value.size());
  leaves_[index].lm = lm;
  leaves_[index].d = PageDigest(index, lm, value);
  dirty_pages_.erase(index);
}

Digest ReplicaState::FinalizeFetchedCheckpoint(SeqNo seq, const Bytes& extra) {
  // Leaf lm/digest values came from the fetched meta-data; interior nodes are rebuilt bottom-up
  // (interior lm = max child lm, matching what the senders computed incrementally).
  RebuildInterior();

  // Reset history: a single full snapshot at `seq`.
  Checkpoint record;
  record.seq = seq;
  record.extra = extra;
  for (uint64_t p = 0; p < num_pages_; ++p) {
    PageEntry e;
    e.lm = leaves_[p].lm;
    e.d = leaves_[p].d;
    e.value.assign(data_.begin() + static_cast<long>(p * config_->page_size),
                   data_.begin() + static_cast<long>((p + 1) * config_->page_size));
    record.pages[p] = std::move(e);
  }
  for (uint32_t l = 0; l < leaf_level_; ++l) {
    for (uint64_t idx = 0; idx < PartsAtLevel(l); ++idx) {
      record.nodes[{l, idx}] = NodeEntry{interior_[l][idx].lm, interior_[l][idx].d};
    }
  }
  record.full_digest = ComputeFullDigest(CurrentRootDigest(), extra);
  Digest d = record.full_digest;
  checkpoints_.clear();
  checkpoints_[seq] = std::move(record);
  dirty_pages_.clear();
  return d;
}

}  // namespace bft

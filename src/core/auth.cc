#include "src/core/auth.h"

#include <cstring>

#include "src/common/serializer.h"
#include "src/crypto/hmac.h"

namespace bft {

namespace {
// Master secret for in-simulation key derivation (see header comment). A deployment would
// exchange keys via NEW-KEY messages encrypted under the receiver's public key.
constexpr char kMaster[] = "bft-session-key-master";
}  // namespace

bool AuthContext::SetPeerEpoch(NodeId peer, uint64_t epoch) {
  uint64_t& current = peer_epochs_[peer];
  if (epoch <= current) {
    return false;
  }
  current = epoch;
  return true;
}

uint64_t AuthContext::PeerEpoch(NodeId peer) const {
  if (peer == self_) {
    return my_epoch_;
  }
  auto it = peer_epochs_.find(peer);
  return it == peer_epochs_.end() ? 0 : it->second;
}

uint64_t AuthContext::EpochFor(NodeId src, NodeId dst) const {
  // Replica-to-replica keys are refreshed by the *receiver*'s NEW-KEY epoch. Client-replica
  // keys are owned (and would be refreshed) by the client, in both directions (Section 4.3.1).
  if (IsClientId(src)) {
    return PeerEpoch(src);
  }
  return PeerEpoch(dst);
}

const AuthContext::SessionKey& AuthContext::SessionFor(NodeId src, NodeId dst) const {
  uint64_t epoch = EpochFor(src, dst);
  if (session_cache_.size() > kMaxSessionCache) {
    session_cache_.clear();
  }
  SessionKey& entry = session_cache_[(static_cast<uint64_t>(src) << 32) | dst];
  if (entry.epoch == epoch) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  if (entry.epoch != epoch) {
    // Fixed-layout preimage, byte-identical to the Writer encoding this replaces:
    // Str(kMaster) | U32(src) | U32(dst) | U64(epoch), all little-endian.
    constexpr size_t kMasterLen = sizeof(kMaster) - 1;
    uint8_t preimage[4 + kMasterLen + 4 + 4 + 8];
    uint8_t* p = preimage;
    auto put_le = [&p](uint64_t v, int bytes) {
      for (int i = 0; i < bytes; ++i) {
        *p++ = static_cast<uint8_t>(v >> (8 * i));
      }
    };
    put_le(kMasterLen, 4);
    std::memcpy(p, kMaster, kMasterLen);
    p += kMasterLen;
    put_le(src, 4);
    put_le(dst, 4);
    put_le(epoch, 8);
    Sha256::DigestBytes full = Sha256::Hash(ByteView(preimage, sizeof(preimage)));
    entry.key.assign(full.begin(), full.begin() + kSessionKeySize);
    entry.hmac = HmacState(entry.key);
    entry.epoch = epoch;
  }
  return entry;
}

Bytes AuthContext::KeyFor(NodeId src, NodeId dst) const { return SessionFor(src, dst).key; }

const HmacState& AuthContext::MacStateFor(NodeId src, NodeId dst) const {
  return SessionFor(src, dst).hmac;
}

Bytes AuthContext::GenerateAuthenticator(ByteView content, CpuMeter* cpu) const {
  Bytes out(static_cast<size_t>(config_->n) * MacTag::kSize, 0);
  int charged = 0;
  for (int j = 0; j < config_->n; ++j) {
    NodeId dst = config_->ReplicaId(j);
    if (dst == self_) {
      continue;  // self slot stays zero
    }
    MacTag tag = ComputeMac(MacStateFor(self_, dst), content);
    std::copy(tag.bytes.begin(), tag.bytes.end(),
              out.begin() + static_cast<size_t>(j) * MacTag::kSize);
    ++charged;
  }
  if (cpu != nullptr) {
    cpu->Charge(static_cast<SimTime>(charged) * model_->MacCost(content.size()));
  }
  return out;
}

bool AuthContext::VerifyAuthenticator(NodeId sender, ByteView content, ByteView auth,
                                      CpuMeter* cpu) const {
  if (cpu != nullptr) {
    cpu->Charge(model_->MacCost(content.size()));
  }
  return VerifyAuthenticatorSlot(sender, self_, content, auth);
}

bool AuthContext::VerifyAuthenticatorSlot(NodeId sender, NodeId slot_owner, ByteView content,
                                          ByteView auth) const {
  if (!config_->IsReplicaMember(slot_owner)) {
    return false;
  }
  size_t offset = static_cast<size_t>(config_->ReplicaIndex(slot_owner)) * MacTag::kSize;
  if (auth.size() < offset + MacTag::kSize) {
    return false;
  }
  MacTag expected = ComputeMac(MacStateFor(sender, slot_owner), content);
  MacTag got;
  std::copy(auth.begin() + offset, auth.begin() + offset + MacTag::kSize, got.bytes.begin());
  return MacEqual(expected, got);
}

Bytes AuthContext::GenerateMac(NodeId dst, ByteView content, CpuMeter* cpu) const {
  if (cpu != nullptr) {
    cpu->Charge(model_->MacCost(content.size()));
  }
  MacTag tag = ComputeMac(MacStateFor(self_, dst), content);
  return Bytes(tag.bytes.begin(), tag.bytes.end());
}

bool AuthContext::VerifyMac(NodeId sender, ByteView content, ByteView auth, CpuMeter* cpu) const {
  if (cpu != nullptr) {
    cpu->Charge(model_->MacCost(content.size()));
  }
  if (auth.size() != MacTag::kSize) {
    return false;
  }
  MacTag expected = ComputeMac(MacStateFor(sender, self_), content);
  MacTag got;
  std::copy(auth.begin(), auth.end(), got.bytes.begin());
  return MacEqual(expected, got);
}

Bytes AuthContext::GenerateSignature(ByteView content, CpuMeter* cpu) const {
  if (cpu != nullptr) {
    cpu->Charge(model_->SignCost());
  }
  return private_key_->Sign(content).bytes;
}

bool AuthContext::VerifySignature(NodeId sender, ByteView content, ByteView auth,
                                  CpuMeter* cpu) const {
  if (cpu != nullptr) {
    cpu->Charge(model_->SigVerifyCost());
  }
  Signature sig;
  sig.bytes.assign(auth.begin(), auth.end());
  return directory_->Verify(sender, content, sig);
}

}  // namespace bft

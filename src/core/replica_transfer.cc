// State transfer (Section 5.3.2), state checking (5.3.3), and proactive recovery (Chapter 4).
#include <algorithm>

#include "src/common/logging.h"
#include "src/core/replica.h"

namespace bft {

namespace {
constexpr SimTime kFetchRetry = 40 * kMillisecond;
constexpr char kRecoveryTag[] = "\x7f_BFT_RECOVERY";
}  // namespace

// --- Server side -------------------------------------------------------------------------------

void Replica::HandleFetch(FetchMsg m) {
  if (!config_->IsReplicaMember(m.replica) || m.replica == id()) {
    return;
  }
  if (!auth_.VerifyAuthMulticast(m.replica, m.AuthContent(), m.auth, &cpu())) {
    ++stats_.rejected_auth;
    obs_.auth_rejected->Inc();
    return;
  }
  SeqNo target = m.target;
  if (!state_.HasCheckpoint(target)) {
    // We no longer (or do not yet) hold the requested checkpoint; offer our newest instead so
    // the fetcher can restart against a fresher target (Section 5.3.2's non-designated path).
    return;
  }

  if (m.level == kSummaryLevel) {
    MetaDataMsg md;
    md.target = target;
    md.level = kSummaryLevel;
    md.index = 0;
    auto info = state_.GetNodeInfo(0, 0, target);
    if (!info.has_value()) {
      return;
    }
    md.parts.push_back(MetaDataMsg::Part{0, info->first, info->second});
    md.extra = state_.CheckpointExtra(target);
    md.replica = id();
    md.nonce = m.nonce;
    AuthAndSend(m.replica, std::move(md));
    return;
  }

  if (m.level >= state_.leaf_level()) {
    // Page fetch. The reply is self-certifying (checked against a known digest), so it carries
    // no MAC — this is what keeps the burden on repliers low (Section 5.3.2).
    auto page = state_.GetPage(m.index, target);
    if (!page.has_value()) {
      return;
    }
    DataMsg data;
    data.index = m.index;
    data.lm = page->first;
    data.value = std::move(page->second);
    SendTo(m.replica, EncodeMessage(Message(std::move(data))));
    return;
  }

  MetaDataMsg md;
  md.target = target;
  md.level = m.level;
  md.index = m.index;
  md.parts = state_.GetMetaData(m.level, m.index, target);
  md.replica = id();
  md.nonce = m.nonce;
  AuthAndSend(m.replica, std::move(md));
}

// --- Fetcher side --------------------------------------------------------------------------------

void Replica::MaybeStartStateTransfer(SeqNo target, const Digest& full_digest) {
  if (target <= last_exec_) {
    return;
  }
  if (transfer_active_) {
    if (transfer_checking_) {
      // A full transfer supersedes an in-progress state check; redo the check afterwards.
      state_check_pending_ = true;
      AbortStateTransfer();
    } else if (transfer_target_ >= target) {
      return;
    }
  }
  transfer_active_ = true;
  transfer_checking_ = false;
  transfer_target_ = target;
  transfer_full_digest_ = full_digest;
  transfer_have_root_ = false;
  transfer_queue_.clear();
  transfer_inflight_.reset();
  ++transfer_nonce_;
  ++stats_.state_transfers;
  obs_.state_transfers->Inc();
  transfer_started_at_ = Now();

  FetchMsg fetch;
  fetch.level = kSummaryLevel;
  fetch.index = 0;
  fetch.last_known = state_.NewestCheckpoint();
  fetch.target = target;
  fetch.replica = id();
  fetch.nonce = transfer_nonce_;
  AuthAndMulticast(fetch);

  uint64_t nonce = transfer_nonce_;
  transfer_timer_ = SetTimer(kFetchRetry, [this, nonce]() {
    if (transfer_active_ && transfer_nonce_ == nonce && !transfer_have_root_) {
      AbortStateTransfer();
      MaybeStartStateTransfer(std::max(transfer_target_, observed_stable_seq_),
                              observed_stable_seq_ > transfer_target_
                                  ? observed_stable_digest_
                                  : transfer_full_digest_);
    }
  });
}

void Replica::AbortStateTransfer() {
  transfer_active_ = false;
  transfer_queue_.clear();
  transfer_inflight_.reset();
  ++transfer_nonce_;
}

void Replica::FetchNextPartition() {
  if (!transfer_active_ || transfer_inflight_.has_value()) {
    return;
  }
  while (!transfer_queue_.empty()) {
    PendingPart part = transfer_queue_.front();
    transfer_queue_.pop_front();

    // Skip subtrees that already match (this is the whole point of the hierarchy: the fetcher
    // only descends into partitions whose digests differ).
    auto [local_lm, local_d] = state_.LiveNodeInfo(part.level, part.index);
    if (part.level >= state_.leaf_level() && transfer_checking_) {
      // State checking recomputes the page digest from live memory — a corrupt page whose
      // cached digest still looks right must be caught (Section 5.3.3).
      ByteView page(state_.data() + part.index * state_.page_size(), state_.page_size());
      cpu().Charge(model_->DigestCost(state_.page_size()));
      local_d = ReplicaState::PageDigest(part.index, local_lm, page);
    }
    if (local_lm == part.lm && local_d == part.d) {
      continue;
    }

    transfer_inflight_ = part;
    obs_.state_fetches->Inc();
    FetchMsg fetch;
    fetch.level = part.level;
    fetch.index = part.index;
    fetch.last_known = state_.NewestCheckpoint();
    fetch.target = transfer_target_;
    // Rotate the designated replier across retries.
    fetch.replier = config_->ReplicaId(static_cast<int>(rng_.Below(config_->n)));
    fetch.replica = id();
    fetch.nonce = transfer_nonce_;
    AuthAndMulticast(fetch);

    uint64_t nonce = transfer_nonce_;
    transfer_timer_ = SetTimer(kFetchRetry, [this, nonce]() {
      if (transfer_active_ && transfer_nonce_ == nonce && transfer_inflight_.has_value()) {
        // Re-enqueue and retry (a different replier will be picked).
        transfer_queue_.push_front(*transfer_inflight_);
        transfer_inflight_.reset();
        FetchNextPartition();
      }
    });
    return;
  }
  FinishStateTransfer();
}

void Replica::HandleMetaData(MetaDataMsg m) {
  if (!transfer_active_ || m.nonce != transfer_nonce_ || m.target != transfer_target_) {
    return;
  }
  if (!auth_.VerifyAuthPoint(m.replica, m.AuthContent(), m.auth, &cpu())) {
    return;
  }

  if (m.level == kSummaryLevel) {
    if (transfer_have_root_ || m.parts.size() != 1) {
      return;
    }
    // The summary is verified against the checkpoint certificate's full digest, so one reply
    // from anyone is enough.
    Digest full = state_.ComputeFullDigest(m.parts[0].d, m.extra);
    if (full != transfer_full_digest_) {
      return;
    }
    transfer_have_root_ = true;
    transfer_extra_ = m.extra;
    transfer_root_digest_ = m.parts[0].d;
    transfer_queue_.clear();
    transfer_queue_.push_back(
        PendingPart{0, 0, m.parts[0].lm, m.parts[0].d});
    CancelTimer(transfer_timer_);
    FetchNextPartition();
    return;
  }

  if (!transfer_inflight_.has_value() || transfer_inflight_->level != m.level ||
      transfer_inflight_->index != m.index) {
    return;
  }
  // Verify the children against the parent's digest: the parent commits the AdHash of the
  // child digests and its own lm.
  AdHash sum;
  for (const auto& part : m.parts) {
    sum.Add(part.d);
  }
  Writer w;
  w.U32(m.level);
  w.U64(m.index);
  w.U64(transfer_inflight_->lm);
  WriteDigest(w, sum.Value());
  if (ComputeDigest(w.data()) != transfer_inflight_->d) {
    return;  // inconsistent reply; the retry timer will re-fetch from another replier
  }
  CancelTimer(transfer_timer_);
  uint32_t child_level = m.level + 1;
  for (const auto& part : m.parts) {
    transfer_queue_.push_back(PendingPart{child_level, part.index, part.lm, part.d});
  }
  transfer_inflight_.reset();
  FetchNextPartition();
}

void Replica::HandleData(DataMsg m) {
  if (!transfer_active_ || !transfer_inflight_.has_value()) {
    return;
  }
  const PendingPart& part = *transfer_inflight_;
  if (part.level < state_.leaf_level() || part.index != m.index || part.lm != m.lm) {
    return;
  }
  if (m.value.size() != state_.page_size()) {
    return;
  }
  cpu().Charge(model_->DigestCost(m.value.size()));
  if (ReplicaState::PageDigest(m.index, m.lm, m.value) != part.d) {
    return;  // forged or stale; retry timer handles it
  }
  CancelTimer(transfer_timer_);
  state_.ApplyFetchedPage(m.index, m.lm, m.value);
  ++stats_.pages_fetched;
  obs_.state_pages->Inc();
  transfer_inflight_.reset();
  FetchNextPartition();
}

void Replica::FinishStateTransfer() {
  transfer_active_ = false;
  transfer_inflight_.reset();

  if (transfer_checking_) {
    // State checking repaired pages in place; nothing to adopt.
    CheckRecoveryComplete();
    return;
  }

  Digest full = state_.FinalizeFetchedCheckpoint(transfer_target_, transfer_extra_);
  if (full != transfer_full_digest_) {
    // Should be impossible given per-part verification; restart defensively.
    BFT_ERROR("replica " << id() << ": state transfer digest mismatch, restarting");
    MaybeStartStateTransfer(observed_stable_seq_, observed_stable_digest_);
    return;
  }

  // Adopt the fetched checkpoint: it is stable (it had a quorum certificate).
  DecodeLastReplies(transfer_extra_);
  low_ = transfer_target_;
  last_exec_ = transfer_target_;
  last_tentative_exec_ = transfer_target_;
  last_prepared_seq_ = std::max(last_prepared_seq_, transfer_target_);
  seqno_ = std::max(seqno_, transfer_target_);
  log_.erase(log_.begin(), log_.upper_bound(transfer_target_));
  pending_checkpoint_digest_.clear();
  pending_pps_.clear();
  BFT_INFO("replica " << id() << ": state transfer to seq " << transfer_target_ << " complete ("
                      << stats_.pages_fetched << " pages fetched total)");
  TryExecute();
  if (state_check_pending_) {
    RunStateCheck();
  }
  CheckRecoveryComplete();
}

// --- Key freshness (Section 4.3.1) -----------------------------------------------------------------

void Replica::SendNewKey() {
  if (mute_ || crashed_) {
    return;
  }
  auth_.BumpMyEpoch();
  NewKeyMsg nk;
  nk.replica = id();
  nk.epoch = auth_.my_epoch();
  nk.counter = ++monotonic_counter_;
  // Always signed by the secure co-processor, whatever the protocol's AuthMode.
  nk.auth = auth_.GenerateSignature(nk.AuthContent(), &cpu());
  MulticastTo(OtherReplicas(), EncodeMessage(Message(std::move(nk))));
}

void Replica::HandleNewKey(NewKeyMsg m) {
  if (!config_->IsReplicaMember(m.replica) || m.replica == id()) {
    return;
  }
  if (!auth_.VerifySignature(m.replica, m.AuthContent(), m.auth, &cpu())) {
    ++stats_.rejected_auth;
    obs_.auth_rejected->Inc();
    return;
  }
  // The co-processor counter defends against suppress-replay attacks.
  uint64_t& last = peer_counters_[m.replica];
  if (m.counter <= last) {
    return;
  }
  last = m.counter;
  auth_.SetPeerEpoch(m.replica, m.epoch);
}

// --- Proactive recovery (Section 4.3.2) --------------------------------------------------------------

void Replica::OnWatchdog() {
  if (!crashed_) {
    StartRecovery();
    SetTimer(config_->watchdog_period, [this]() { OnWatchdog(); });
  }
}

void Replica::OnKeyRefresh() {
  if (!crashed_) {
    if (!recovering_) {
      SendNewKey();
    }
    SetTimer(config_->key_refresh_period, [this]() { OnKeyRefresh(); });
  }
}

void Replica::StartRecovery() {
  if (recovering_ || crashed_) {
    return;
  }
  recovering_ = true;
  ++stats_.recoveries_started;
  recovery_point_known_ = false;
  recovery_replies_.clear();
  est_replies_.clear();
  recovery_started_at_ = Now();

  // A recovering primary hands off leadership first so availability does not suffer.
  if (config_->PrimaryOf(view_) == id() && view_active_) {
    StartViewChange(view_ + 1);
  }

  // Save state and reboot with correct code (simulated by a fixed off-line interval; the
  // replica keeps its state, per Section 4.3.2).
  Detach();
  SetTimer(config_->recovery_reboot_time, [this]() {
    Reattach();
    ContinueRecoveryAfterReboot();
  });
}

void Replica::ContinueRecoveryAfterReboot() {
  BFT_DEBUG("replica " << id() << ": rebooted, starting estimation");
  // Step 1: change keys — the attacker may know the old ones.
  SendNewKey();

  // Step 2: estimation protocol for Hm.
  recovery_estimating_ = true;
  ++recovery_nonce_;
  QueryStableMsg q;
  q.replica = id();
  q.nonce = recovery_nonce_;
  AuthAndMulticast(q);
  uint64_t nonce = recovery_nonce_;
  SetTimer(kFetchRetry, [this, nonce]() {
    if (recovery_estimating_ && recovery_nonce_ == nonce) {
      QueryStableMsg retry;
      retry.replica = id();
      retry.nonce = recovery_nonce_;
      AuthAndMulticast(retry);
    }
  });
}

void Replica::HandleQueryStable(QueryStableMsg m) {
  if (!VerifyFromReplica(m.replica, m.AuthContent(), m.auth)) {
    return;
  }
  ReplyStableMsg r;
  r.last_checkpoint = state_.NewestCheckpoint();
  r.last_prepared = last_prepared_seq_;
  r.nonce = m.nonce;
  r.replica = id();
  AuthAndSend(m.replica, std::move(r));
}

void Replica::HandleReplyStable(ReplyStableMsg m) {
  if (!recovery_estimating_ || m.nonce != recovery_nonce_) {
    return;
  }
  if (!config_->IsReplicaMember(m.replica) || m.replica == id()) {
    return;
  }
  if (!auth_.VerifyAuthPoint(m.replica, m.AuthContent(), m.auth, &cpu())) {
    return;
  }
  BFT_DEBUG("replica " << id() << ": reply-stable from " << m.replica << " c="
                       << m.last_checkpoint << " p=" << m.last_prepared);
  auto it = est_replies_.find(m.replica);
  if (it == est_replies_.end()) {
    est_replies_[m.replica] = {m.last_checkpoint, m.last_prepared};
  } else {
    // Keep the minimum c and maximum p per replica (Section 4.3.2).
    it->second.first = std::min(it->second.first, m.last_checkpoint);
    it->second.second = std::max(it->second.second, m.last_prepared);
  }
  RecomputeEstimation();
}

void Replica::RecomputeEstimation() {
  // Find c_m from some replica r such that 2f replicas other than r reported c <= c_m and
  // f replicas other than r reported p >= c_m.
  for (const auto& [r, cp] : est_replies_) {
    SeqNo candidate = cp.first;
    int c_ok = 0;
    int p_ok = 0;
    for (const auto& [r2, cp2] : est_replies_) {
      if (r2 == r) {
        continue;
      }
      if (cp2.first <= candidate) {
        ++c_ok;
      }
      if (cp2.second >= candidate) {
        ++p_ok;
      }
    }
    if (c_ok >= 2 * config_->f() && p_ok >= config_->f()) {
      BFT_DEBUG("replica " << id() << ": estimation done, Hm = " << candidate << " + L");
      recovery_max_seq_ = candidate + config_->log_size;  // Hm = c_m + L
      // Discard any log entries above the bound: they may be corrupt.
      log_.erase(log_.upper_bound(recovery_max_seq_), log_.end());
      recovery_estimating_ = false;
      SendRecoveryRequest();
      return;
    }
  }
}

void Replica::SendRecoveryRequest() {
  RequestMsg req;
  req.client = id();
  req.timestamp = ++monotonic_counter_;
  req.read_only = false;
  req.designated_replier = 0xffffffff;  // everyone replies with the full result
  req.op = ToBytes(kRecoveryTag);
  recovery_request_ts_ = req.timestamp;
  req.auth = auth_.GenerateAuthenticator(req.AuthContent(), &cpu());
  // Signed conceptually by the co-processor; charge the signature cost on top.
  cpu().Charge(model_->SignCost());
  MulticastTo(OtherReplicas(), EncodeMessage(Message(std::move(req))));

  uint64_t ts = recovery_request_ts_;
  SetTimer(4 * kFetchRetry, [this, ts]() {
    if (recovering_ && !recovery_point_known_ && recovery_request_ts_ == ts) {
      SendRecoveryRequest();  // retransmit with a fresh timestamp
    }
  });
}

void Replica::HandleReply(ReplyMsg m) {
  if (!recovering_ || recovery_point_known_ || m.timestamp != recovery_request_ts_) {
    return;
  }
  if (!config_->IsReplicaMember(m.replica) || m.replica == id()) {
    return;
  }
  if (!auth_.VerifyAuthPoint(m.replica, m.AuthContent(), m.auth, &cpu())) {
    return;
  }
  recovery_replies_[m.replica] = m;

  // Wait for a quorum of matching results (Section 4.3.2).
  std::map<Digest, int> counts;
  for (const auto& [r, reply] : recovery_replies_) {
    ++counts[reply.result_digest];
  }
  for (const auto& [d, count] : counts) {
    if (count < config_->quorum()) {
      continue;
    }
    // Decode the sequence number the recovery request executed at.
    Bytes result;
    for (const auto& [r, reply] : recovery_replies_) {
      if (reply.result_digest == d && reply.has_result) {
        result = reply.result;
        break;
      }
    }
    if (result.empty()) {
      return;
    }
    Reader rd(result);
    SeqNo l = rd.U64();
    if (!rd.ok()) {
      return;
    }
    SeqNo k = config_->checkpoint_period;
    SeqNo hl = ((l + k - 1) / k) * k + config_->log_size;
    recovery_point_ = std::max(recovery_max_seq_, hl);
    recovery_point_known_ = true;
    BFT_DEBUG("replica " << id() << ": recovery request executed at " << l
                         << ", recovery point = " << recovery_point_);

    // Adopt a valid view: keep ours if f+1 replies are at or above it, else take the median.
    std::vector<View> views;
    for (const auto& [r, reply] : recovery_replies_) {
      views.push_back(reply.view);
    }
    std::sort(views.begin(), views.end());
    int at_or_above = 0;
    for (View v : views) {
      if (v >= view_) {
        ++at_or_above;
      }
    }
    if (at_or_above < config_->weak() && !views.empty()) {
      View median = views[views.size() / 2];
      if (median > view_) {
        view_ = median;
        view_active_ = false;  // status messages will fetch the new-view evidence
        SendViewChange();
      }
    }

    RunStateCheck();
    CheckRecoveryComplete();
    return;
  }
}

void Replica::RunStateCheck() {
  if (transfer_active_) {
    // A full transfer is already rewriting the state; re-check once it completes.
    state_check_pending_ = true;
    return;
  }
  state_check_pending_ = false;
  // Detect pages whose live contents no longer match their recorded digests (an attacker who
  // scribbled on memory without going through Modify), then repair them from other replicas.
  // Pages dirtied since the last checkpoint are legitimately ahead of their digests and are
  // covered by the next checkpoint instead.
  std::deque<PendingPart> corrupt;
  for (uint64_t p = 0; p < state_.num_pages(); ++p) {
    if (state_.dirty_pages().count(p) != 0) {
      continue;
    }
    auto [lm, d] = state_.LiveNodeInfo(state_.leaf_level(), p);
    ByteView page(state_.data() + p * state_.page_size(), state_.page_size());
    cpu().Charge(model_->DigestCost(state_.page_size()));
    if (ReplicaState::PageDigest(p, lm, page) != d) {
      corrupt.push_back(PendingPart{state_.leaf_level(), p, lm, d});
    }
  }
  if (corrupt.empty()) {
    return;
  }
  BFT_INFO("replica " << id() << ": state check found " << corrupt.size() << " corrupt pages");
  transfer_active_ = true;
  transfer_checking_ = true;
  transfer_target_ = state_.NewestCheckpoint();
  transfer_have_root_ = true;
  transfer_queue_ = std::move(corrupt);
  transfer_inflight_.reset();
  ++transfer_nonce_;
  FetchNextPartition();
}

void Replica::CheckRecoveryComplete() {
  if (!recovering_ || !recovery_point_known_ || transfer_active_) {
    return;
  }
  if (low_ < recovery_point_) {
    BFT_DEBUG("replica " << id() << ": recovery waiting for stability, low=" << low_
                         << " point=" << recovery_point_);
    return;  // wait until the checkpoint at the recovery point is stable
  }
  recovering_ = false;
  ++stats_.recoveries;
  stats_.last_recovery_duration = Now() - recovery_started_at_;
  BFT_INFO("replica " << id() << ": recovery complete in "
                      << stats_.last_recovery_duration / kMillisecond << " ms");
}

}  // namespace bft

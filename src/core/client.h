// BFT client proxy (Section 2.3.2 and the Section 5.1 optimizations as seen by clients).
//
// Invoke() sends a request to the primary (read-write) or multicasts it (read-only), collects
// a reply certificate — f+1 matching non-tentative replies, or 2f+1 matching tentative /
// read-only replies — verifies result digests, and delivers the result via callback.
// Retransmission: on timeout the request is multicast to all replicas with the designated-
// replier field widened so every replica returns the full result.
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <functional>
#include <map>
#include <memory>

#include "src/core/auth.h"
#include "src/core/config.h"
#include "src/core/endpoint.h"
#include "src/core/messages.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace bft {

class Client {
 public:
  using Callback = std::function<void(Bytes result)>;

  // The client owns its endpoint; it installs itself as the message handler and from then on
  // speaks only to the Endpoint seam.
  Client(std::unique_ptr<Endpoint> endpoint, const ReplicaConfig* config,
         const PerfModel* model, PublicKeyDirectory* directory, uint64_t seed);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  NodeId id() const { return ep_->id(); }
  CpuMeter& cpu() { return ep_->cpu(); }
  Endpoint* endpoint() { return ep_.get(); }

  // Issues one operation. At most one operation may be outstanding (the paper's
  // well-formedness condition); Invoke() while busy is a programming error.
  void Invoke(Bytes op, bool read_only, Callback callback);

  bool busy() const { return busy_; }
  View known_view() const { return view_; }

  // Overrides the retransmission backoff base/cap/jitter for this client (zero fields keep
  // the ReplicaConfig defaults). Call before the first Invoke — construction-time tuning,
  // like key distribution, not a runtime protocol.
  void set_client_config(const ClientConfig& config) {
    client_config_ = config;
    retry_timeout_ = RetryBase();
  }

  // Re-points the client's metric instruments (and optional tracer) at a harness-owned
  // registry. The constructor wires the process-wide default, so the instrument pointers are
  // always valid and the hot path never branches on null.
  void InstallObservability(MetricsRegistry* registry, RequestTracer* tracer);

  // The operation most recently passed to Invoke(), valid until the next Invoke() —
  // including inside the completion callback. The shard router reads it back to re-dispatch
  // a stale-routed op, so the routing hot path never keeps a defensive copy.
  ByteView current_op() const { return current_.op; }

  struct Stats {
    uint64_t ops_completed = 0;
    uint64_t retransmissions = 0;
    // Retransmissions beyond the first for one operation. The first timeout is
    // indistinguishable from datagram loss; when the broadcast retransmission *also* fails
    // to certify, each further broadcast is acting as a view-change probe — backups relay it
    // to the primary and start their view-change timers (Section 4.4) — so these are counted
    // separately from plain loss recovery.
    uint64_t view_probes = 0;
    // Operations with no routing key (Service::KeyOf returned nullopt). A bare Client never
    // sets this; the shard router (ShardedClient) counts the ops it pins to the home shard
    // under its documented keyless policy and surfaces the total via AggregateStats().
    uint64_t keyless_ops = 0;
    SimTime total_latency = 0;
    SimTime last_latency = 0;
  };
  const Stats& stats() const { return stats_; }

  void OnMessage(MsgBuffer message);

 private:
  void SendCurrentRequest(bool broadcast);
  void OnRetryTimer();
  void Complete(Bytes result);

  SimTime Now() const { return ep_->Now(); }
  void SendTo(NodeId dst, MsgBuffer msg) { ep_->Send(dst, std::move(msg)); }
  void MulticastTo(const std::vector<NodeId>& dsts, const MsgBuffer& msg) {
    ep_->Multicast(dsts, msg);
  }
  Endpoint::TimerId SetTimer(SimTime delay, std::function<void()> fn) {
    return ep_->SetTimer(delay, std::move(fn));
  }
  void CancelTimer(Endpoint::TimerId id) { ep_->CancelTimer(id); }

  // Pre-resolved instruments; see InstallObservability.
  struct Obs {
    Counter* ops = nullptr;
    Counter* retransmissions = nullptr;
    Counter* view_probes = nullptr;
    Histogram* latency = nullptr;
  };

  // Resolved backoff parameters: per-client override, else the group config.
  SimTime RetryBase() const {
    return client_config_.retry_timeout != 0 ? client_config_.retry_timeout
                                             : config_->client_retry_timeout;
  }
  SimTime RetryCap() const {
    return client_config_.max_retry_timeout != 0 ? client_config_.max_retry_timeout
                                                 : config_->max_client_retry_timeout;
  }

  std::unique_ptr<Endpoint> ep_;
  const ReplicaConfig* config_;
  ClientConfig client_config_;
  const PerfModel* model_;
  AuthContext auth_;
  Rng rng_;
  Stats stats_;
  Obs obs_;
  RequestTracer* tracer_ = nullptr;

  View view_ = 0;
  uint64_t last_timestamp_ = 0;
  bool busy_ = false;
  RequestMsg current_;
  Callback callback_;
  SimTime issued_at_ = 0;
  SimTime retry_timeout_;
  uint64_t retries_this_op_ = 0;
  Endpoint::TimerId retry_timer_ = 0;
  bool retry_timer_running_ = false;
  bool current_read_only_path_ = false;

  struct ReplyRecord {
    Digest result_digest;
    bool tentative = false;
    bool has_result = false;
    Bytes result;
    View view = 0;
  };
  std::map<NodeId, ReplyRecord> replies_;
};

}  // namespace bft

#endif  // SRC_CORE_CLIENT_H_

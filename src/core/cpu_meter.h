// Per-node CPU time accounting.
//
// Event handlers run instantaneously in the simulator, but real protocol work (digests, MACs,
// signatures, message handling) costs CPU. Each node owns a CpuMeter: an event that arrives
// while the node is still "busy" starts after the backlog drains, and costs charged during a
// handler push out the node's virtual cursor. Messages sent mid-handler depart at the cursor.
// This is what makes saturation — and hence the paper's throughput ceilings — emerge.
//
// Under the real-clock runtime the meter is pure bookkeeping: charges accumulate into
// total_busy() for observability but nothing delays actual execution.
#ifndef SRC_CORE_CPU_METER_H_
#define SRC_CORE_CPU_METER_H_

#include <algorithm>

#include "src/core/clock.h"

namespace bft {

class CpuMeter {
 public:
  // Called when an event handler begins at time `now`.
  void BeginEvent(SimTime now) { cursor_ = std::max(now, busy_until_); }

  // Charges `ns` of CPU work to the current handler.
  void Charge(SimTime ns) {
    cursor_ += ns;
    total_busy_ += ns;
  }

  // Virtual "current time" at this node, mid-handler.
  SimTime cursor() const { return cursor_; }

  void EndEvent() { busy_until_ = std::max(busy_until_, cursor_); }

  SimTime busy_until() const { return busy_until_; }
  SimTime total_busy() const { return total_busy_; }

  void Reset() {
    cursor_ = 0;
    busy_until_ = 0;
    total_busy_ = 0;
  }

 private:
  SimTime cursor_ = 0;
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
};

}  // namespace bft

#endif  // SRC_CORE_CPU_METER_H_

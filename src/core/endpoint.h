// The runtime seam: everything the protocol core needs from its execution environment.
//
// `Replica` and `Client` are pure automata; an Endpoint supplies their node identity,
// unicast/multicast transport, one-shot and periodic timers, a monotonic clock, a random
// number generator, and the CPU meter their work is charged to. Two implementations exist:
//
//   - src/sim/node.h     — discrete-event simulation: timers are simulator events, sends go
//                          through the modelled unreliable Network, the clock is simulated
//                          time, and CpuMeter charges delay departures (saturation emerges).
//   - src/runtime/       — real clock: an event-loop thread per node, sends go through a
//                          Transport (loopback UDP sockets, or an in-process channel for
//                          fast tests), timers fire on the monotonic clock.
//
// Threading contract: all handler and timer callbacks for one endpoint run on one logical
// thread (the simulator's event loop, or the node's own loop thread), so the core never
// locks. The core only calls Send/SetTimer/CancelTimer from that callback thread (or during
// construction); the real-clock implementation additionally serializes every endpoint method
// internally, so harnesses and tests may call them from other threads too.
#ifndef SRC_CORE_ENDPOINT_H_
#define SRC_CORE_ENDPOINT_H_

#include <functional>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/msg_buffer.h"
#include "src/common/rng.h"
#include "src/core/clock.h"
#include "src/core/cpu_meter.h"

namespace bft {

class Endpoint {
 public:
  using TimerId = uint64_t;
  using Handler = std::function<void(MsgBuffer)>;

  explicit Endpoint(NodeId id) : id_(id) {}
  virtual ~Endpoint() = default;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  NodeId id() const { return id_; }

  // Installs the upcall for (unauthenticated) messages off the wire. The automaton installs
  // itself here; delivery begins only after the runtime is started by the harness.
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  // Monotonic clock, ns. Simulated time or real time since runtime start.
  virtual SimTime Now() const = 0;

  // Meter that protocol work (crypto, execution) is charged to. In the simulator charges
  // delay this node's sends and subsequent handlers; in the real runtime they are statistics.
  virtual CpuMeter& cpu() = 0;

  // Deterministically seeded in the simulator; per-node seeded in the real runtime.
  virtual Rng& rng() = 0;

  // --- Transport ---------------------------------------------------------------------------
  // Unreliable, unauthenticated datagram semantics (the paper's UDP): messages may be
  // dropped, duplicated, or reordered; receivers authenticate at the protocol layer.
  virtual void Send(NodeId dst, MsgBuffer msg) = 0;
  // One send cost; the encoded buffer is serialized once and shared (refcounted) across all
  // destinations; `id()` itself is skipped.
  virtual void Multicast(const std::vector<NodeId>& dsts, const MsgBuffer& msg) = 0;

  // --- Timers ------------------------------------------------------------------------------
  // Handlers run under CPU accounting, on the endpoint's logical thread.
  virtual TimerId SetTimer(SimTime delay, std::function<void()> fn) = 0;
  // Fires every `period` until cancelled.
  virtual TimerId SetPeriodicTimer(SimTime period, std::function<void()> fn) = 0;
  // Cancelling an already-fired (one-shot) or unknown id is a no-op.
  virtual void CancelTimer(TimerId id) = 0;
  // Re-arms a pending timer to fire `delay` from now, keeping its id and callback.
  // Returns false (and does nothing) if the timer already fired or never existed.
  virtual bool ResetTimer(TimerId id, SimTime delay) = 0;
  virtual void CancelAllTimers() = 0;

  // Quiesces the endpoint: stops delivery, cancels timers, and joins any runtime threads, so
  // no callback is running or will run after it returns. The owning automaton calls this
  // first thing in its destructor — its protocol state must outlive every callback.
  virtual void Close() {
    Detach();
    CancelAllTimers();
  }

  // --- Fault injection / crash-recovery support --------------------------------------------
  // Detach stops delivery to this endpoint: incoming messages are dropped (in-flight ones
  // too). Outgoing sends and timers are unaffected — the automaton gates those itself (its
  // crashed/recovering flags). Reattach restores delivery.
  virtual void Detach() = 0;
  virtual void Reattach() = 0;
  virtual bool attached() const = 0;

 protected:
  // Implementations deliver a received message through this (CPU accounting already begun).
  void Dispatch(MsgBuffer msg) {
    if (handler_) {
      handler_(std::move(msg));
    }
  }

 private:
  NodeId id_;
  Handler handler_;
};

}  // namespace bft

#endif  // SRC_CORE_ENDPOINT_H_

// Protocol message types and wire formats (thesis Fig 6-1 and Chapters 2-5).
//
// Every message consists of a one-byte type tag, a body, and an authentication trailer (an
// authenticator — one MAC per replica —, a single MAC, or a signature, depending on message
// type and AuthMode). `AuthContent()` returns the bytes covered by authentication: the body
// with the trailer excluded, which mirrors the real library's MAC-over-fixed-header scheme.
//
// Decoding is defensive (Byzantine senders): `Decode*` returns false on malformed input.
#ifndef SRC_CORE_MESSAGES_H_
#define SRC_CORE_MESSAGES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/serializer.h"
#include "src/core/clock.h"
#include "src/crypto/digest.h"

namespace bft {

enum class MsgType : uint8_t {
  kRequest = 1,
  kReply = 2,
  kPrePrepare = 3,
  kPrepare = 4,
  kCommit = 5,
  kCheckpoint = 6,
  kViewChange = 7,
  kViewChangeAck = 8,
  kNewView = 9,
  kStatus = 10,
  kFetch = 11,
  kMetaData = 12,
  kData = 13,
  kBatchFetch = 14,
  kBatchReply = 15,
  kNewKey = 16,
  kQueryStable = 17,
  kReplyStable = 18,
};

using View = uint64_t;
using SeqNo = uint64_t;

// --- Request / Reply ------------------------------------------------------------------------

struct RequestMsg {
  NodeId client = 0;
  uint64_t timestamp = 0;  // per-client, monotonically increasing; gives exactly-once semantics
  bool read_only = false;
  NodeId designated_replier = 0;  // digest-replies optimization (Section 5.1.1)
  Bytes op;
  Bytes auth;

  // Digest identifying the request: H(client, timestamp, op). Used in pre-prepares that carry
  // requests separately and in the replicas' replay caches.
  Digest RequestDigest() const;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, RequestMsg* out);
};

struct ReplyMsg {
  View view = 0;
  uint64_t timestamp = 0;
  NodeId client = 0;
  NodeId replica = 0;
  bool tentative = false;    // tentative-execution optimization (Section 5.1.2)
  bool has_result = false;   // false => digest-only reply (Section 5.1.1)
  Bytes result;
  Digest result_digest;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, ReplyMsg* out);
};

// --- Normal case ------------------------------------------------------------------------------

// A pre-prepare carries a *batch*: small requests inline (full messages, so backups can check
// the clients' authentication), large requests by digest (separate transmission, Section
// 5.1.5), plus the primary's non-deterministic choice for the batch (Section 5.4).
struct PrePrepareMsg {
  View view = 0;
  SeqNo seq = 0;
  Bytes ndet;
  std::vector<RequestMsg> inline_requests;
  std::vector<Digest> separate_digests;
  Bytes auth;

  // Digest identifying the batch *content* (requests + ndet), independent of view/seq: this is
  // the `d` carried by prepares, commits, and view-change P/Q entries, so a batch re-proposed
  // in a later view keeps its identity.
  Digest BatchDigest() const;

  // Ordered request digests (inline first, then separate), i.e. the execution order.
  std::vector<Digest> OrderedRequestDigests() const;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, PrePrepareMsg* out);
};

struct PrepareMsg {
  View view = 0;
  SeqNo seq = 0;
  Digest batch_digest;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, PrepareMsg* out);
};

struct CommitMsg {
  View view = 0;
  SeqNo seq = 0;
  Digest batch_digest;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, CommitMsg* out);
};

struct CheckpointMsg {
  SeqNo seq = 0;
  Digest state_digest;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, CheckpointMsg* out);
};

// --- View changes (Chapter 3) -----------------------------------------------------------------

struct ViewChangeMsg {
  View view = 0;       // the view being moved *to*
  SeqNo h = 0;         // sequence number of the sender's last stable checkpoint
  // C: checkpoints the sender holds, as (seq, state digest).
  std::vector<std::pair<SeqNo, Digest>> checkpoints;
  // P: requests prepared at the sender (Fig 3-2).
  struct PEntry {
    SeqNo seq = 0;
    Digest d;
    View view = 0;
  };
  std::vector<PEntry> p;
  // Q: requests pre-prepared at the sender; bounded per-seq history (Section 3.2.5).
  struct QEntry {
    SeqNo seq = 0;
    std::vector<std::pair<Digest, View>> dv;  // (digest, latest view it pre-prepared in)
  };
  std::vector<QEntry> q;
  NodeId replica = 0;
  Bytes auth;

  Digest MessageDigest() const;  // digest acknowledged by view-change-acks

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, ViewChangeMsg* out);
};

struct ViewChangeAckMsg {
  View view = 0;
  NodeId replica = 0;    // sender of the ack
  NodeId vc_sender = 0;  // replica whose view-change is being acknowledged
  Digest vc_digest;
  Bytes auth;            // single MAC to the new primary

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, ViewChangeAckMsg* out);
};

// The batch payload for a chosen sequence number that the new primary propagates so backups
// can execute. (The real library relied on the retransmission machinery to fetch missing
// requests; carrying payloads in the new-view plus the BatchFetch/BatchReply pair below covers
// the same need. See DESIGN.md.)
struct BatchPayload {
  Bytes ndet;
  std::vector<RequestMsg> requests;  // full requests, in execution order

  Digest BatchDigest() const;
  void Encode(Writer& w) const;
  static bool Decode(Reader& r, BatchPayload* out);
};

struct NewViewMsg {
  View view = 0;
  // V: the new-view certificate — (replica, digest of its view-change message).
  std::vector<std::pair<NodeId, Digest>> vc_set;
  SeqNo min_s = 0;        // h: start checkpoint chosen by the decision procedure
  Digest chkpt_digest;    // its state digest
  // X: chosen batch digest per sequence number in (min_s, max_s]; a zero digest = null request.
  std::vector<std::pair<SeqNo, Digest>> chosen;
  // Payloads for the non-null chosen digests that the primary holds.
  std::vector<BatchPayload> payloads;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, NewViewMsg* out);
};

// --- Retransmission (Section 5.2) --------------------------------------------------------------

struct StatusMsg {
  View view = 0;
  bool view_active = true;
  SeqNo last_stable = 0;
  SeqNo last_exec = 0;
  // Bit i: sequence number last_stable + 1 + i is prepared / committed at the sender.
  Bytes prepared_bits;
  Bytes committed_bits;
  bool has_new_view = false;
  // Bit r: sender has accepted a view-change message from replica r for `view`.
  Bytes vc_have_bits;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, StatusMsg* out);
};

// --- State transfer (Section 5.3.2) -------------------------------------------------------------

struct FetchMsg {
  uint32_t level = 0;
  uint64_t index = 0;
  SeqNo last_known = 0;   // lc: last checkpoint the requester has for this partition
  SeqNo target = 0;       // c: checkpoint being fetched (0 = unknown / any recent)
  NodeId replier = 0;     // designated full replier
  NodeId replica = 0;     // requester
  uint64_t nonce = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, FetchMsg* out);
};

// Level value in FETCH/META-DATA denoting the checkpoint summary (root digest + extra blob).
constexpr uint32_t kSummaryLevel = 0xffffffff;

struct MetaDataMsg {
  SeqNo target = 0;  // checkpoint the sub-partition digests refer to
  uint32_t level = 0;
  uint64_t index = 0;
  struct Part {
    uint64_t index = 0;
    SeqNo lm = 0;  // last checkpoint at which the sub-partition was modified
    Digest d;
  };
  std::vector<Part> parts;
  Bytes extra;  // checkpoint extra blob; only present in summary replies
  NodeId replica = 0;
  uint64_t nonce = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, MetaDataMsg* out);
};

struct DataMsg {
  uint64_t index = 0;  // page index
  SeqNo lm = 0;
  Bytes value;
  // Data replies need no MAC: the fetcher verifies against a known digest (Section 5.3.2).

  void EncodeBody(Writer& w) const;
  static bool DecodeBody(Reader& r, DataMsg* out);
};

struct BatchFetchMsg {
  Digest batch_digest;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, BatchFetchMsg* out);
};

struct BatchReplyMsg {
  BatchPayload payload;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, BatchReplyMsg* out);
};

// --- Key management / recovery (Chapter 4) ------------------------------------------------------

struct NewKeyMsg {
  NodeId replica = 0;
  uint64_t epoch = 0;    // key-refreshment epoch; receivers reject non-monotonic epochs
  uint64_t counter = 0;  // secure co-processor counter (anti suppress-replay)
  Bytes auth;            // always a signature

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, NewKeyMsg* out);
};

struct QueryStableMsg {
  NodeId replica = 0;
  uint64_t nonce = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, QueryStableMsg* out);
};

struct ReplyStableMsg {
  SeqNo last_checkpoint = 0;  // c
  SeqNo last_prepared = 0;    // p
  uint64_t nonce = 0;
  NodeId replica = 0;
  Bytes auth;

  void EncodeBody(Writer& w) const;
  Bytes AuthContent() const;
  static bool DecodeBody(Reader& r, ReplyStableMsg* out);
};

// --- Top-level encode/decode --------------------------------------------------------------------

using Message =
    std::variant<RequestMsg, ReplyMsg, PrePrepareMsg, PrepareMsg, CommitMsg, CheckpointMsg,
                 ViewChangeMsg, ViewChangeAckMsg, NewViewMsg, StatusMsg, FetchMsg, MetaDataMsg,
                 DataMsg, BatchFetchMsg, BatchReplyMsg, NewKeyMsg, QueryStableMsg,
                 ReplyStableMsg>;

MsgType TypeOf(const Message& m);
Bytes EncodeMessage(const Message& m);
// Appends the encoding to an existing writer — the formation layer and other frame-aware
// callers reuse one sized buffer instead of allocating per message.
void EncodeMessageTo(Writer& w, const Message& m);
std::optional<Message> DecodeMessage(ByteView wire);

// Number of wire message types (tags run 1..kNumMsgTypes).
constexpr int kNumMsgTypes = 18;

// Stable lowercase label for metrics and logs ("pre_prepare", "view_change", ...).
const char* MsgTypeName(MsgType t);

// Compile-time tag for a message struct — lets the templated send helpers bump a per-type
// counter without a runtime variant visit.
template <typename M>
struct MsgTypeTrait;
template <> struct MsgTypeTrait<RequestMsg> { static constexpr MsgType value = MsgType::kRequest; };
template <> struct MsgTypeTrait<ReplyMsg> { static constexpr MsgType value = MsgType::kReply; };
template <> struct MsgTypeTrait<PrePrepareMsg> { static constexpr MsgType value = MsgType::kPrePrepare; };
template <> struct MsgTypeTrait<PrepareMsg> { static constexpr MsgType value = MsgType::kPrepare; };
template <> struct MsgTypeTrait<CommitMsg> { static constexpr MsgType value = MsgType::kCommit; };
template <> struct MsgTypeTrait<CheckpointMsg> { static constexpr MsgType value = MsgType::kCheckpoint; };
template <> struct MsgTypeTrait<ViewChangeMsg> { static constexpr MsgType value = MsgType::kViewChange; };
template <> struct MsgTypeTrait<ViewChangeAckMsg> { static constexpr MsgType value = MsgType::kViewChangeAck; };
template <> struct MsgTypeTrait<NewViewMsg> { static constexpr MsgType value = MsgType::kNewView; };
template <> struct MsgTypeTrait<StatusMsg> { static constexpr MsgType value = MsgType::kStatus; };
template <> struct MsgTypeTrait<FetchMsg> { static constexpr MsgType value = MsgType::kFetch; };
template <> struct MsgTypeTrait<MetaDataMsg> { static constexpr MsgType value = MsgType::kMetaData; };
template <> struct MsgTypeTrait<DataMsg> { static constexpr MsgType value = MsgType::kData; };
template <> struct MsgTypeTrait<BatchFetchMsg> { static constexpr MsgType value = MsgType::kBatchFetch; };
template <> struct MsgTypeTrait<BatchReplyMsg> { static constexpr MsgType value = MsgType::kBatchReply; };
template <> struct MsgTypeTrait<NewKeyMsg> { static constexpr MsgType value = MsgType::kNewKey; };
template <> struct MsgTypeTrait<QueryStableMsg> { static constexpr MsgType value = MsgType::kQueryStable; };
template <> struct MsgTypeTrait<ReplyStableMsg> { static constexpr MsgType value = MsgType::kReplyStable; };

// Helpers shared by encoders.
void WriteDigest(Writer& w, const Digest& d);
bool ReadDigest(Reader& r, Digest* d);

}  // namespace bft

#endif  // SRC_CORE_MESSAGES_H_

// View-change support: the Fig 3-2 P/Q computation and the Fig 3-3 decision procedure, as
// pure functions over view-change message sets so they can be unit- and property-tested in
// isolation from the replica automaton.
#ifndef SRC_CORE_VIEW_CHANGE_H_
#define SRC_CORE_VIEW_CHANGE_H_

#include <functional>
#include <map>
#include <vector>

#include "src/core/config.h"
#include "src/core/messages.h"

namespace bft {

// The zero digest denotes the null request (a batch whose execution is a no-op).
inline Digest NullBatchDigest() { return Digest{}; }

// Per-replica record of ordering information carried across views (Section 3.2.4).
struct PqState {
  // PSet: seq -> (digest, view) of the request last prepared at this replica with that seq.
  std::map<SeqNo, ViewChangeMsg::PEntry> pset;
  // QSet: seq -> (digest -> latest view pre-prepared), bounded to kMaxQsetViews entries.
  std::map<SeqNo, std::vector<std::pair<Digest, View>>> qset;
};

// Bound on per-sequence-number QSet entries (Section 3.2.5's bounded-space rule: keep the
// pairs for the M most recent views, discarding the lowest-view pair on overflow).
constexpr size_t kMaxQsetViews = 2;

// Observed protocol state for one in-log sequence number, input to the Fig 3-2 computation.
struct SeqObservation {
  SeqNo seq = 0;
  Digest d;
  View view = 0;        // view of the pre-prepare
  bool pre_prepared = false;
  bool prepared = false;  // prepared or committed
};

// Computes the P and Q components of a view-change message for the view transition leaving
// `old_view`, updating `pq` in place (Fig 3-2 / Fig 3-4), over log observations in
// (low_water, low_water + log_size].
void ComputePq(const std::vector<SeqObservation>& log, PqState* pq);

// Fig 3-3 decision procedure. `s` is the set of (acknowledged) view-change messages, keyed by
// sender. `have_payload(d)` reports whether the caller holds the batch payload for digest d
// (condition A3). A zero digest in `chosen` selects the null request.
struct ViewChangeDecision {
  bool checkpoint_selected = false;
  bool complete = false;  // every sequence number in range decided and payloads available
  SeqNo min_s = 0;
  Digest chkpt_digest;
  std::vector<std::pair<SeqNo, Digest>> chosen;
  std::vector<Digest> missing_payloads;  // digests blocked only on condition A3
};

ViewChangeDecision RunDecisionProcedure(const ReplicaConfig& config,
                                        const std::map<NodeId, ViewChangeMsg>& s,
                                        const std::function<bool(const Digest&)>& have_payload);

}  // namespace bft

#endif  // SRC_CORE_VIEW_CHANGE_H_

// Harness for S independent PBFT replica groups on one simulated network.
//
// Generalizes workload/Cluster: each shard is a full 3f+1 replica group with its own
// ReplicaConfig (disjoint node-id range via ReplicaConfig::base_id), its own key directory,
// and its own replica set; all groups share one Simulator and one Network, so cross-shard
// timing, faults, and partitions compose naturally. Clients are ShardedClients that route
// each keyed operation to its owning group.
//
// With num_shards = 1 the construction is bit-for-bit identical to workload/Cluster for the
// same seed: same node ids, same per-node seeds, same event order (tests/shard_test.cc pins
// this down).
#ifndef SRC_SHARD_SHARDED_CLUSTER_H_
#define SRC_SHARD_SHARDED_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/client.h"
#include "src/core/replica.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/shard/bucket_stats.h"
#include "src/shard/shard_map.h"
#include "src/shard/sharded_client.h"
#include "src/sim/network.h"

namespace bft {

// Builds the replicated service for one replica of one shard. `replica` is the global node id.
using ShardServiceFactory = std::function<std::unique_ptr<Service>(size_t shard, NodeId replica)>;

struct ShardedClusterOptions {
  size_t num_shards = 1;
  // Per-group template; base_id is overwritten per shard (shard s occupies [s*n, s*n + n)).
  ReplicaConfig config;
  PerfModel model;
  uint64_t seed = 42;
};

class ShardedCluster {
 public:
  ShardedCluster(ShardedClusterOptions options, ShardServiceFactory factory);
  ~ShardedCluster();

  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  // The latest published map (old references stay valid across publishes; see registry()).
  const ShardMap& shard_map() const { return registry_.current(); }
  // The deployment's shard-map publication point: the migration coordinator freezes buckets
  // and publishes new versions here; every client of this cluster routes through it.
  ShardMapRegistry& registry() { return registry_; }
  size_t num_shards() const { return options_.num_shards; }
  const PerfModel& model() const { return options_.model; }

  // Builds migration/routing ops without touching any replica's state (the same factory
  // product the clients' key extractor uses; never Initialize()d).
  Service* op_builder() { return router_service_.get(); }

  const ReplicaConfig& config(size_t shard) const { return configs_[shard]; }
  Replica* replica(size_t shard, int i) { return replicas_[shard][static_cast<size_t>(i)].get(); }
  int replicas_per_shard() const { return options_.config.n; }

  // A router client with one endpoint in every group. Ops route by Service::KeyOf.
  ShardedClient* AddClient();
  ShardedClient* client(size_t i) { return clients_[i].get(); }
  size_t num_clients() const { return clients_.size(); }

  // A router client whose endpoints carry ids in the reserved admin range
  // (ReplicaConfig::admin_id_base): the only identity replicas accept MIG_*/REB_* ops from.
  // The migration coordinator and rebalance controller route through one of these.
  ShardedClient* AddAdminClient();

  // A bare simulator endpoint in the admin id space with no protocol role — timers and a
  // clock for control-plane daemons (the rebalance controller's scheduling seam).
  std::unique_ptr<Endpoint> MakeControlEndpoint();

  // Shared per-bucket load/size statistics. Replica 0 of every group feeds it via the
  // Service keyed-op upcall (installed at construction; pure observer, so runs with and
  // without a consumer are identical).
  BucketStatsRegistry& bucket_stats() { return bucket_stats_; }

  // Synchronously executes one operation through `client` (runs the simulator until the
  // owning group's reply certificate completes or `timeout` of simulated time passes).
  std::optional<Bytes> Execute(ShardedClient* client, Bytes op, bool read_only = false,
                               SimTime timeout = 30 * kSecond);

  // Runs the simulator until every live replica of `shard` has executed up to `seq`.
  bool WaitForExecution(size_t shard, SeqNo seq, SimTime timeout = 30 * kSecond);

  // Node id of shard's current primary according to its first live replica (crashed replicas
  // are frozen in their pre-crash view).
  NodeId CurrentPrimary(size_t shard);

  // Fail-stop crashes every replica of one group (shard-isolated fault injection).
  void CrashShard(size_t shard);

  // Sum of requests executed across groups, counted at each group's first *live* replica
  // (matching CurrentPrimary's convention — a crashed replica's counters are frozen at its
  // crash point and would undercount). A fully crashed group contributes replica 0's frozen
  // count.
  uint64_t TotalRequestsExecuted();

  // Harness-owned observability across every group (see workload/Cluster).
  MetricsRegistry& metrics() { return metrics_; }
  RequestTracer& tracer() { return tracer_; }

  // The /healthz document across every group. `active_migrations` comes from the caller:
  // the MigrationCoordinator lives outside the cluster (tests and the rebalance controller
  // each own their own), so the cluster cannot see it.
  HealthSnapshot Health(uint64_t active_migrations = 0) const {
    HealthSnapshot snapshot;
    for (const auto& group : replicas_) {
      for (const auto& r : group) {
        ReplicaHealth h = r->Health();
        h.running = !r->crashed();
        snapshot.replicas.push_back(h);
      }
    }
    snapshot.active_migrations = active_migrations;
    snapshot.frozen_buckets = registry_.FrozenCount();
    snapshot.shard_map_version = registry_.version();
    return snapshot;
  }

 private:
  ShardedClient* AddRouterClient(NodeId* next_id);

  ShardedClusterOptions options_;
  // Destroyed after the replicas/clients whose instruments point into it.
  MetricsRegistry metrics_;
  RequestTracer tracer_;
  ShardMapRegistry registry_;
  Simulator sim_;
  Network net_;
  std::vector<ReplicaConfig> configs_;                       // one per shard, stable storage
  std::vector<std::unique_ptr<PublicKeyDirectory>> directories_;
  std::vector<std::vector<std::unique_ptr<Replica>>> replicas_;
  std::vector<std::unique_ptr<ShardedClient>> clients_;
  std::unique_ptr<Service> router_service_;                  // key extraction only, never Initialized
  BucketStatsRegistry bucket_stats_;
  NodeId next_client_id_ = kClientIdBase;
  NodeId next_admin_id_;  // allocated from configs_[0].admin_id_base upward
};

}  // namespace bft

#endif  // SRC_SHARD_SHARDED_CLUSTER_H_

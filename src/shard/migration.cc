#include "src/shard/migration.h"

#include <cstdio>
#include <cstdlib>

#include "src/service/service.h"
#include "src/sim/sim_harness.h"

namespace bft {

namespace {
bool IsOk(ByteView result) { return Equal(result, ToBytes("ok")); }
}  // namespace

MigrationCoordinator::MigrationCoordinator(ShardedCluster* cluster)
    : cluster_(cluster), client_(cluster->AddClient()) {}

void MigrationCoordinator::StartMoveBucket(uint32_t bucket, size_t dest_shard,
                                           DoneCallback done) {
  if (active_) {
    std::fprintf(stderr, "MigrationCoordinator: migration already active\n");
    std::abort();
  }
  const ShardMap& map = cluster_->registry().current();
  if (bucket >= ShardMap::kNumBuckets || dest_shard >= map.num_shards()) {
    std::fprintf(stderr, "MigrationCoordinator: invalid move (bucket %u -> shard %zu)\n",
                 bucket, dest_shard);
    std::abort();
  }

  report_ = MigrationReport{};
  report_.bucket = bucket;
  report_.source_shard = map.ShardForBucket(bucket);
  report_.dest_shard = dest_shard;
  report_.map_version_before = map.version();
  report_.map_version_after = map.version();
  done_ = std::move(done);

  if (report_.source_shard == dest_shard) {
    // No-op by design: no freeze, no ops, no simulator events — byte-identical to not
    // migrating at all (pinned by tests/migration_test.cc).
    report_.ok = true;
    report_.no_op = true;
    if (done_) {
      DoneCallback cb = std::move(done_);
      done_ = nullptr;
      cb(report_);
    }
    return;
  }

  std::optional<Bytes> seal = cluster_->op_builder()->SealBucketOp(bucket);
  if (!seal.has_value()) {
    report_.error = "service does not support migration";
    if (done_) {
      DoneCallback cb = std::move(done_);
      done_ = nullptr;
      cb(report_);
    }
    return;
  }

  active_ = true;
  dest_touched_ = false;
  entries_.clear();
  next_entry_ = 0;
  report_.freeze_start = cluster_->sim().Now();
  cluster_->registry().Freeze(bucket);
  InvokeOn(report_.source_shard, std::move(*seal), [this](Bytes result) {
    if (!IsOk(result)) {
      Fail("seal rejected: " + ToString(result));
      return;
    }
    StepExport();
  });
}

void MigrationCoordinator::StepExport() {
  InvokeOn(report_.source_shard, *cluster_->op_builder()->ExportBucketOp(report_.bucket),
           [this](Bytes blob) {
             auto entries = Service::ParseExportedEntries(blob);
             if (!entries.has_value()) {
               Fail("malformed export");
               return;
             }
             report_.export_bytes = blob.size();
             report_.keys_moved = entries->size();
             entries_ = std::move(*entries);
             StepAccept();
           });
}

void MigrationCoordinator::StepAccept() {
  dest_touched_ = true;
  InvokeOn(report_.dest_shard, *cluster_->op_builder()->AcceptBucketOp(report_.bucket),
           [this](Bytes result) {
             if (!IsOk(result)) {
               Fail("accept rejected: " + ToString(result));
               return;
             }
             ImportNext();
           });
}

void MigrationCoordinator::ImportNext() {
  if (next_entry_ >= entries_.size()) {
    StepPublish();
    return;
  }
  const auto& [key, blob] = entries_[next_entry_];
  ++next_entry_;
  InvokeOn(report_.dest_shard, *cluster_->op_builder()->ImportEntryOp(key, blob),
           [this](Bytes result) {
             if (!IsOk(result)) {
               Fail("import rejected: " + ToString(result));
               return;
             }
             ImportNext();
           });
}

void MigrationCoordinator::StepPublish() {
  // The atomic cut-over: bump the map version with the bucket reassigned and lift the
  // freeze. Queued client ops re-dispatch to the destination, which now holds every entry
  // the source had sealed.
  cluster_->registry().Publish(
      cluster_->registry().current().WithBucketMoved(report_.bucket, report_.dest_shard));
  report_.publish_time = cluster_->sim().Now();
  report_.map_version_after = cluster_->registry().version();

  // Space hygiene at the source, after clients have already cut over. The seal marker stays:
  // any straggler with a pre-publish map still gets the stale-owner signal, not a miss.
  InvokeOn(report_.source_shard, *cluster_->op_builder()->PurgeBucketOp(report_.bucket),
           [this](Bytes result) {
             if (!IsOk(result)) {
               Fail("purge rejected: " + ToString(result));
               return;
             }
             report_.ok = true;
             Finish();
           });
}

void MigrationCoordinator::Fail(std::string error) {
  report_.ok = false;
  report_.error = std::move(error);
  if (report_.publish_time != 0) {
    // Failure after the cut-over (purge): clients are on the new map and the data moved; the
    // migration itself is done, only the source's space was not reclaimed.
    Finish();
    return;
  }
  // Failure inside the freeze window: roll back. If the destination was touched, first
  // discard any partially imported entries there — leaving them would resurrect keys on a
  // later successful move of the same bucket (the source could delete a key meanwhile; the
  // leftover import would survive the re-export and shadow the delete) — and re-seal it: the
  // destination does not own the bucket under the unchanged map, so a straggler routed there
  // must get the stale-owner signal, not a miss against empty state. Then un-seal the source
  // so it serves the bucket again, and lift the freeze so queued ops re-dispatch.
  std::optional<Bytes> purge = cluster_->op_builder()->PurgeBucketOp(report_.bucket);
  std::optional<Bytes> seal = cluster_->op_builder()->SealBucketOp(report_.bucket);
  if (dest_touched_ && purge.has_value() && seal.has_value()) {
    InvokeOn(report_.dest_shard, std::move(*purge), [this, seal](Bytes) {
      InvokeOn(report_.dest_shard, *seal, [this](Bytes) { RollbackSource(); });
    });
    return;
  }
  RollbackSource();
}

void MigrationCoordinator::RollbackSource() {
  std::optional<Bytes> accept = cluster_->op_builder()->AcceptBucketOp(report_.bucket);
  if (!accept.has_value()) {
    cluster_->registry().Unfreeze(report_.bucket);
    Finish();
    return;
  }
  InvokeOn(report_.source_shard, std::move(*accept), [this](Bytes) {
    cluster_->registry().Unfreeze(report_.bucket);
    Finish();
  });
}

void MigrationCoordinator::Finish() {
  report_.completed_time = cluster_->sim().Now();
  active_ = false;
  entries_.clear();
  if (done_) {
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(report_);
  }
}

void MigrationCoordinator::InvokeOn(size_t shard, Bytes op, std::function<void(Bytes)> then) {
  client_->endpoint(shard)->Invoke(std::move(op), /*read_only=*/false, std::move(then));
}

MigrationReport MigrationCoordinator::MoveBucket(uint32_t bucket, size_t dest_shard,
                                                 SimTime timeout) {
  // Shared, not stack-captured: on timeout the coordinator still holds the done callback,
  // which may fire during a later simulator run after this frame is gone.
  auto result = std::make_shared<std::optional<MigrationReport>>();
  StartMoveBucket(bucket, dest_shard,
                  [result](const MigrationReport& r) { *result = r; });
  cluster_->sim().RunUntilCondition([result]() { return result->has_value(); },
                                    cluster_->sim().Now() + timeout);
  if (!result->has_value()) {
    MigrationReport out = report_;
    out.ok = false;
    out.error = "timeout: migration still in flight";
    return out;
  }
  return **result;
}

}  // namespace bft

#include "src/shard/migration.h"

#include <cstdio>
#include <cstdlib>

#include "src/service/service.h"
#include "src/sim/sim_harness.h"

namespace bft {

namespace {
bool IsOk(ByteView result) { return Equal(result, ToBytes("ok")); }

// Phase slots of the kMigration timeline (see TracePhaseLabel).
constexpr int kTraceFreeze = 0;
constexpr int kTraceSeal = 1;
constexpr int kTraceExport = 2;
constexpr int kTraceImport = 3;
constexpr int kTracePublish = 4;
constexpr int kTraceComplete = 5;
}  // namespace

MigrationCoordinator::MigrationCoordinator(ShardedCluster* cluster)
    : cluster_(cluster), client_(cluster->AddAdminClient()) {
  MetricsRegistry& registry = cluster_->metrics();
  obs_.moves_ok = registry.GetCounter("bft_migration_moves_ok_total");
  obs_.moves_failed = registry.GetCounter("bft_migration_moves_failed_total");
  obs_.rollbacks = registry.GetCounter("bft_migration_rollbacks_total");
  obs_.keys_moved = registry.GetCounter("bft_migration_keys_moved_total");
  obs_.publishes = registry.GetCounter("bft_migration_publishes_total");
  obs_.freeze_window_us = registry.GetHistogram("bft_migration_freeze_window_us");
}

void MigrationCoordinator::StampTrace(int phase) {
  if (trace_id_ != 0) {
    cluster_->tracer().StampAdmin(TraceKind::kMigration, trace_id_, phase,
                                  cluster_->sim().Now());
  }
}

void MigrationCoordinator::StartMoveBucket(uint32_t bucket, size_t dest_shard,
                                           DoneCallback done) {
  if (active_) {
    std::fprintf(stderr, "MigrationCoordinator: migration already active\n");
    std::abort();
  }
  const ShardMap& map = cluster_->registry().current();
  if (bucket >= ShardMap::kNumBuckets || dest_shard >= map.num_shards()) {
    std::fprintf(stderr, "MigrationCoordinator: invalid move (bucket %u -> shard %zu)\n",
                 bucket, dest_shard);
    std::abort();
  }

  report_ = MigrationReport{};
  report_.bucket = bucket;
  report_.source_shard = map.ShardForBucket(bucket);
  report_.dest_shard = dest_shard;
  report_.map_version_before = map.version();
  report_.map_version_after = map.version();
  done_ = std::move(done);

  if (report_.source_shard == dest_shard) {
    // No-op by design: no freeze, no ops, no simulator events — byte-identical to not
    // migrating at all (pinned by tests/migration_test.cc).
    report_.ok = true;
    report_.no_op = true;
    if (done_) {
      DoneCallback cb = std::move(done_);
      done_ = nullptr;
      cb(report_);
    }
    return;
  }

  std::optional<Bytes> seal = cluster_->op_builder()->SealBucketOp(bucket);
  if (!seal.has_value()) {
    report_.error = "service does not support migration";
    if (done_) {
      DoneCallback cb = std::move(done_);
      done_ = nullptr;
      cb(report_);
    }
    return;
  }

  active_ = true;
  dest_touched_ = false;
  entries_.clear();
  next_entry_ = 0;
  report_.freeze_start = cluster_->sim().Now();
  trace_id_ = cluster_->tracer().enabled() ? cluster_->tracer().NextAdminOpId() : 0;
  StampTrace(kTraceFreeze);
  cluster_->registry().Freeze(bucket);
  InvokeOn(report_.source_shard, std::move(*seal), [this](Bytes result) {
    if (!IsOk(result)) {
      Fail("seal rejected: " + ToString(result));
      return;
    }
    StampTrace(kTraceSeal);
    StepExport();
  });
}

void MigrationCoordinator::StepExport() {
  InvokeOn(report_.source_shard, *cluster_->op_builder()->ExportBucketOp(report_.bucket),
           [this](Bytes blob) {
             auto entries = Service::ParseExportedEntries(blob);
             if (!entries.has_value()) {
               Fail("malformed export");
               return;
             }
             report_.export_bytes = blob.size();
             report_.keys_moved = entries->size();
             entries_ = std::move(*entries);
             StampTrace(kTraceExport);
             StepAccept();
           });
}

void MigrationCoordinator::StepAccept() {
  dest_touched_ = true;
  InvokeOn(report_.dest_shard, *cluster_->op_builder()->AcceptBucketOp(report_.bucket),
           [this](Bytes result) {
             if (!IsOk(result)) {
               Fail("accept rejected: " + ToString(result));
               return;
             }
             ImportNext();
           });
}

void MigrationCoordinator::ImportNext() {
  if (next_entry_ >= entries_.size()) {
    StampTrace(kTraceImport);
    StepPublish();
    return;
  }
  const auto& [key, blob] = entries_[next_entry_];
  ++next_entry_;
  InvokeOn(report_.dest_shard, *cluster_->op_builder()->ImportEntryOp(key, blob),
           [this](Bytes result) {
             if (!IsOk(result)) {
               Fail("import rejected: " + ToString(result));
               return;
             }
             ImportNext();
           });
}

void MigrationCoordinator::StepPublish() {
  // The atomic cut-over: bump the map version with the bucket reassigned and lift the
  // freeze. Queued client ops re-dispatch to the destination, which now holds every entry
  // the source had sealed.
  cluster_->registry().Publish(
      cluster_->registry().current().WithBucketMoved(report_.bucket, report_.dest_shard));
  report_.publish_time = cluster_->sim().Now();
  report_.map_version_after = cluster_->registry().version();
  StampTrace(kTracePublish);

  // Space hygiene at the source, after clients have already cut over. The seal marker stays:
  // any straggler with a pre-publish map still gets the stale-owner signal, not a miss.
  InvokeOn(report_.source_shard, *cluster_->op_builder()->PurgeBucketOp(report_.bucket),
           [this](Bytes result) {
             if (!IsOk(result)) {
               Fail("purge rejected: " + ToString(result));
               return;
             }
             report_.ok = true;
             Finish();
           });
}

void MigrationCoordinator::Fail(std::string error) {
  report_.ok = false;
  report_.error = std::move(error);
  if (report_.publish_time != 0) {
    // Failure after the cut-over (purge): clients are on the new map and the data moved; the
    // migration itself is done, only the source's space was not reclaimed.
    Finish();
    return;
  }
  // Failure inside the freeze window: roll back. If the destination was touched, first
  // discard any partially imported entries there — leaving them would resurrect keys on a
  // later successful move of the same bucket (the source could delete a key meanwhile; the
  // leftover import would survive the re-export and shadow the delete) — and re-seal it: the
  // destination does not own the bucket under the unchanged map, so a straggler routed there
  // must get the stale-owner signal, not a miss against empty state. Then un-seal the source
  // so it serves the bucket again, and lift the freeze so queued ops re-dispatch.
  std::optional<Bytes> purge = cluster_->op_builder()->PurgeBucketOp(report_.bucket);
  std::optional<Bytes> seal = cluster_->op_builder()->SealBucketOp(report_.bucket);
  if (dest_touched_ && purge.has_value() && seal.has_value()) {
    InvokeOn(report_.dest_shard, std::move(*purge), [this, seal](Bytes) {
      InvokeOn(report_.dest_shard, *seal, [this](Bytes) { RollbackSource(); });
    });
    return;
  }
  RollbackSource();
}

void MigrationCoordinator::RollbackSource() {
  // Marker-only un-seal: the source's bucket data is live and must survive the rollback
  // (accept would purge it — accept is the destination-side "prepare to receive").
  std::optional<Bytes> unseal = UnsealOp(report_.bucket);
  if (!unseal.has_value()) {
    cluster_->registry().Unfreeze(report_.bucket);
    Finish();
    return;
  }
  InvokeOn(report_.source_shard, std::move(*unseal), [this](Bytes) {
    cluster_->registry().Unfreeze(report_.bucket);
    Finish();
  });
}

std::optional<Bytes> MigrationCoordinator::UnsealOp(uint32_t bucket) {
  std::optional<Bytes> unseal = cluster_->op_builder()->UnsealBucketOp(bucket);
  if (unseal.has_value()) {
    return unseal;
  }
  // Services predating the unseal/accept split fall back to accept, which for them clears
  // the marker without purging.
  return cluster_->op_builder()->AcceptBucketOp(bucket);
}

void MigrationCoordinator::Finish() {
  report_.completed_time = cluster_->sim().Now();
  StampTrace(kTraceComplete);
  trace_id_ = 0;
  active_ = false;
  entries_.clear();
  if (!report_.no_op) {
    (report_.ok ? obs_.moves_ok : obs_.moves_failed)->Inc();
    if (!report_.ok) {
      obs_.rollbacks->Inc();
    }
    obs_.keys_moved->Inc(report_.keys_moved);
    if (report_.map_version_after != report_.map_version_before) {
      obs_.publishes->Inc();
    }
    obs_.freeze_window_us->Record(static_cast<uint64_t>(report_.freeze_window() / kMicrosecond));
  }
  if (done_) {
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(report_);
  }
}

void MigrationCoordinator::InvokeOn(size_t shard, Bytes op, std::function<void(Bytes)> then) {
  client_->endpoint(shard)->Invoke(std::move(op), /*read_only=*/false, std::move(then));
}

// --- Batched multi-bucket moves --------------------------------------------------------------

void MigrationCoordinator::StartMoveBuckets(std::span<const uint32_t> buckets,
                                            size_t dest_shard, BatchDoneCallback done,
                                            SimTime deadline) {
  if (active_) {
    std::fprintf(stderr, "MigrationCoordinator: migration already active\n");
    std::abort();
  }
  const ShardMap& map = cluster_->registry().current();
  if (dest_shard >= map.num_shards()) {
    std::fprintf(stderr, "MigrationCoordinator: invalid batch destination shard %zu\n",
                 dest_shard);
    std::abort();
  }

  breport_ = BatchMoveReport{};
  breport_.dest_shard = dest_shard;
  breport_.map_version_before = map.version();
  breport_.map_version_after = map.version();
  bdone_ = std::move(done);
  batch_.clear();
  src_cursor_ = dst_cursor_ = rollback_cursor_ = purge_cursor_ = 0;
  purge_list_.clear();
  src_busy_ = dst_busy_ = batch_failed_ = batch_aborted_ = resolving_ = false;
  rollback_waiting_on_dest_ = false;
  purge_ok_ = true;

  auto finish_now = [this]() {
    if (bdone_) {
      BatchDoneCallback cb = std::move(bdone_);
      bdone_ = nullptr;
      cb(breport_);
    }
  };

  for (uint32_t bucket : buckets) {
    if (bucket >= ShardMap::kNumBuckets) {
      std::fprintf(stderr, "MigrationCoordinator: invalid bucket %u in batch\n", bucket);
      std::abort();
    }
    bool seen = false;
    for (uint32_t b : breport_.requested) {
      seen |= b == bucket;
    }
    if (seen) {
      continue;
    }
    breport_.requested.push_back(bucket);
    if (map.ShardForBucket(bucket) == dest_shard) {
      breport_.skipped.push_back(bucket);  // already home: issues nothing
      continue;
    }
    BucketMove move;
    move.bucket = bucket;
    move.source = map.ShardForBucket(bucket);
    batch_.push_back(std::move(move));
  }

  if (batch_.empty()) {
    // Pure no-op by design, like the single-bucket path: no freeze, no ops, no simulator
    // events — a run containing only no-op batches is byte-identical to one without them.
    breport_.ok = true;
    breport_.no_op = true;
    finish_now();
    return;
  }

  if (!cluster_->op_builder()->SealBucketOp(batch_[0].bucket).has_value()) {
    batch_.clear();
    breport_.error = "service does not support migration";
    finish_now();
    return;
  }

  active_ = true;
  breport_.freeze_start = cluster_->sim().Now();
  trace_id_ = cluster_->tracer().enabled() ? cluster_->tracer().NextAdminOpId() : 0;
  StampTrace(kTraceFreeze);
  for (const BucketMove& move : batch_) {
    cluster_->registry().Freeze(move.bucket);
  }
  if (deadline > 0) {
    deadline_event_ = cluster_->sim().Schedule(deadline, [this, epoch = batch_epoch_]() {
      if (epoch == batch_epoch_) {
        OnBatchDeadline();
      }
    });
    deadline_armed_ = true;
  }
  SourceStep();
}

void MigrationCoordinator::InvokeBatch(size_t shard, Bytes op,
                                       std::function<void(Bytes)> then) {
  uint64_t epoch = batch_epoch_;
  client_->endpoint(shard)->Invoke(
      std::move(op), /*read_only=*/false,
      [this, epoch, then = std::move(then)](Bytes result) {
        if (epoch != batch_epoch_) {
          return;  // reply for a batch that already finished (deadline abort)
        }
        then(std::move(result));
      });
}

void MigrationCoordinator::SourceStep() {
  if (!active_ || resolving_ || src_busy_) {
    return;
  }
  if (batch_failed_ || batch_aborted_) {
    MaybeResolve();
    return;
  }
  while (src_cursor_ < batch_.size() && batch_[src_cursor_].stage >= BucketMove::kExported) {
    ++src_cursor_;
  }
  if (src_cursor_ >= batch_.size()) {
    MaybeFinishForward();
    return;
  }
  BucketMove& move = batch_[src_cursor_];
  size_t index = src_cursor_;
  if (move.stage == BucketMove::kPending) {
    src_busy_ = true;
    InvokeBatch(move.source, *cluster_->op_builder()->SealBucketOp(move.bucket),
                [this, index](Bytes result) {
                  src_busy_ = false;
                  if (!IsOk(result)) {
                    BatchFail("seal rejected: " + ToString(result));
                    return;
                  }
                  batch_[index].stage = BucketMove::kSealed;
                  StampTrace(kTraceSeal);
                  SourceStep();
                });
    return;
  }
  // kSealed: export. The certified result is the bucket's entry list at the seal point.
  src_busy_ = true;
  InvokeBatch(move.source, *cluster_->op_builder()->ExportBucketOp(move.bucket),
              [this, index](Bytes blob) {
                src_busy_ = false;
                auto entries = Service::ParseExportedEntries(blob);
                if (!entries.has_value()) {
                  BatchFail("malformed export");
                  return;
                }
                breport_.export_bytes += blob.size();
                batch_[index].entries = std::move(*entries);
                batch_[index].stage = BucketMove::kExported;
                StampTrace(kTraceExport);
                SourceStep();  // the source moves on to the next bucket...
                DestStep();    // ...while the destination starts absorbing this one
              });
}

void MigrationCoordinator::DestStep() {
  if (!active_ || resolving_ || dst_busy_) {
    return;
  }
  if (batch_failed_ || batch_aborted_) {
    MaybeResolve();
    return;
  }
  while (dst_cursor_ < batch_.size() && batch_[dst_cursor_].stage >= BucketMove::kImported) {
    ++dst_cursor_;
  }
  if (dst_cursor_ >= batch_.size()) {
    MaybeFinishForward();
    return;
  }
  BucketMove& move = batch_[dst_cursor_];
  size_t index = dst_cursor_;
  if (move.stage < BucketMove::kExported) {
    return;  // waiting on the source chain; the export completion re-kicks us
  }
  if (move.stage == BucketMove::kExported) {
    dst_busy_ = true;
    move.dest_touched = true;
    InvokeBatch(breport_.dest_shard, *cluster_->op_builder()->AcceptBucketOp(move.bucket),
                [this, index](Bytes result) {
                  dst_busy_ = false;
                  if (!IsOk(result)) {
                    BatchFail("accept rejected: " + ToString(result));
                    return;
                  }
                  batch_[index].stage = BucketMove::kAccepted;
                  DestStep();
                });
    return;
  }
  // kAccepted: import entries one ordered op at a time.
  if (move.next_entry >= move.entries.size()) {
    move.stage = BucketMove::kImported;
    breport_.keys_moved += move.entries.size();
    StampTrace(kTraceImport);
    DestStep();
    return;
  }
  const auto& [key, blob] = move.entries[move.next_entry];
  ++move.next_entry;
  dst_busy_ = true;
  InvokeBatch(breport_.dest_shard, *cluster_->op_builder()->ImportEntryOp(key, blob),
              [this, index](Bytes result) {
                dst_busy_ = false;
                if (!IsOk(result)) {
                  BatchFail("import rejected: " + ToString(result));
                  return;
                }
                DestStep();
              });
}

void MigrationCoordinator::MaybeFinishForward() {
  if (src_busy_ || dst_busy_ || resolving_) {
    return;
  }
  std::vector<uint32_t> done;
  for (const BucketMove& move : batch_) {
    if (move.stage != BucketMove::kImported) {
      return;  // still in flight somewhere
    }
    done.push_back(move.bucket);
  }
  BatchPublish(std::move(done));
}

void MigrationCoordinator::BatchPublish(std::vector<uint32_t> buckets) {
  // The publish is the point of no return: ownership moves now, so the deadline must never
  // fire afterwards — an abort during the purge phase would "roll back" buckets whose
  // clients already cut over, un-sealing half-purged source copies.
  if (deadline_armed_) {
    cluster_->sim().Cancel(deadline_event_);
    deadline_armed_ = false;
  }
  // The amortized cut-over: ONE version bump reassigns every fully-imported bucket and lifts
  // every freeze; queued client ops re-dispatch under the new map in a single notification
  // sweep instead of once per bucket.
  cluster_->registry().Publish(
      cluster_->registry().current().WithBucketsMoved(buckets, breport_.dest_shard));
  ++breport_.publishes;
  breport_.publish_time = cluster_->sim().Now();
  breport_.map_version_after = cluster_->registry().version();
  StampTrace(kTracePublish);
  breport_.moved = std::move(buckets);

  purge_list_.clear();
  for (size_t i = 0; i < batch_.size(); ++i) {
    if (batch_[i].stage == BucketMove::kImported) {
      purge_list_.push_back(i);
    }
  }
  purge_cursor_ = 0;
  PurgeStep();
}

void MigrationCoordinator::PurgeStep() {
  if (purge_cursor_ >= purge_list_.size()) {
    breport_.ok = purge_ok_ && breport_.error.empty();
    FinishBatch();
    return;
  }
  const BucketMove& move = batch_[purge_list_[purge_cursor_]];
  ++purge_cursor_;
  InvokeBatch(move.source, *cluster_->op_builder()->PurgeBucketOp(move.bucket),
              [this](Bytes result) {
                if (!IsOk(result)) {
                  // Post-publish failure: clients already cut over and the data moved; only
                  // source-side space reclamation failed. Keep purging the rest.
                  purge_ok_ = false;
                  if (breport_.error.empty()) {
                    breport_.error = "purge rejected: " + ToString(result);
                  }
                }
                PurgeStep();
              });
}

void MigrationCoordinator::BatchFail(std::string error) {
  if (breport_.error.empty()) {
    breport_.error = std::move(error);
  }
  batch_failed_ = true;
  MaybeResolve();
}

void MigrationCoordinator::OnBatchDeadline() {
  if (!active_) {
    return;
  }
  batch_aborted_ = true;
  if (breport_.error.empty()) {
    breport_.error = "batch deadline exceeded; unpublished buckets rolled back at their sources";
  }
  if (resolving_) {
    // A failure-triggered rollback is in flight. Either way the rollback must now rescan
    // from the start: buckets skipped as "finished" before the abort (fully imported,
    // awaiting the partial publish) must roll back too — their import landed in a group
    // presumed dead, and nothing will be published.
    rollback_cursor_ = 0;
    if (rollback_waiting_on_dest_) {
      // Stuck on a destination-side cleanup op (the destination died after rejecting one):
      // orphan that chain — bump the round so its late replies are dropped — and re-drive;
      // with the abort flag set the rollback skips all remaining destination work and
      // finishes source-side, so the freezes still lift.
      ++resolve_round_;
      rollback_waiting_on_dest_ = false;
      RollbackStep();
    }
    // Otherwise it is waiting on a source-side op: that chain is progressing, and its reply
    // re-enters RollbackStep, which rescans from the reset cursor under the abort rules.
    return;
  }
  MaybeResolve();
}

void MigrationCoordinator::MaybeResolve() {
  if (resolving_) {
    return;
  }
  // A service-level failure waits for both chains to drain (their endpoints answer, and the
  // rollback reuses them). A deadline abort only waits for the *source* side: the
  // destination is presumed unreachable — its in-flight op may never complete — and no
  // destination-side ops are issued during an aborted rollback.
  if (src_busy_ || (!batch_aborted_ && dst_busy_)) {
    return;
  }
  resolving_ = true;
  rollback_cursor_ = 0;
  RollbackStep();
}

void MigrationCoordinator::RollbackStep() {
  while (rollback_cursor_ < batch_.size()) {
    BucketMove& move = batch_[rollback_cursor_];
    if (move.stage == BucketMove::kRolledBack) {
      ++rollback_cursor_;  // already handled (a deadline re-drive rescans from the start)
      continue;
    }
    // Aborted batches publish nothing: even fully-imported buckets roll back (their data
    // still lives sealed at the source; the destination copy is unreachable garbage).
    bool finished = !batch_aborted_ && move.stage == BucketMove::kImported;
    if (finished) {
      ++rollback_cursor_;
      continue;
    }
    size_t index = rollback_cursor_;
    // Rollback replies are additionally guarded by the resolve round: a deadline firing
    // while a destination-side cleanup hangs orphans that chain and re-drives the rollback
    // source-side; the orphaned reply, should it ever arrive, must not double-step it.
    uint64_t round = resolve_round_;
    if (move.dest_touched && !batch_aborted_) {
      // Discard partial imports and re-seal the destination (stragglers must see the
      // stale-owner signal, not a miss), then un-seal the source.
      rollback_waiting_on_dest_ = true;
      InvokeBatch(breport_.dest_shard, *cluster_->op_builder()->PurgeBucketOp(move.bucket),
                  [this, index, round](Bytes) {
                    if (round != resolve_round_) {
                      return;
                    }
                    InvokeBatch(breport_.dest_shard,
                                *cluster_->op_builder()->SealBucketOp(batch_[index].bucket),
                                [this, index, round](Bytes) {
                                  if (round != resolve_round_) {
                                    return;
                                  }
                                  rollback_waiting_on_dest_ = false;
                                  batch_[index].dest_touched = false;
                                  // No cursor arithmetic here: the loop re-examines the
                                  // bucket (now destination-clean) and un-seals its source.
                                  RollbackStep();
                                });
                  });
      return;
    }
    if (move.stage == BucketMove::kSealed || move.stage == BucketMove::kExported ||
        move.stage == BucketMove::kAccepted || move.stage == BucketMove::kImported) {
      // Un-seal the source so it serves the bucket again. No cursor arithmetic in the
      // reply: marking the bucket kRolledBack and rescanning lets a deadline that fired
      // meanwhile reset the cursor safely (the loop skips finished rollbacks).
      rollback_waiting_on_dest_ = false;
      InvokeBatch(move.source, *UnsealOp(move.bucket),
                  [this, index, round](Bytes) {
                    if (round != resolve_round_) {
                      return;
                    }
                    batch_[index].stage = BucketMove::kRolledBack;
                    breport_.rolled_back.push_back(batch_[index].bucket);
                    RollbackStep();
                  });
      return;
    }
    // kPending: nothing was issued for this bucket; only its freeze needs lifting.
    move.stage = BucketMove::kRolledBack;
    breport_.rolled_back.push_back(move.bucket);
    ++rollback_cursor_;
  }
  ResolveFinish();
}

void MigrationCoordinator::ResolveFinish() {
  std::vector<uint32_t> finished;
  for (const BucketMove& move : batch_) {
    if (!batch_aborted_ && move.stage == BucketMove::kImported) {
      finished.push_back(move.bucket);
    }
  }
  if (!finished.empty()) {
    // Per-bucket resolution: the finished buckets still cut over (their single publish also
    // lifts the rolled-back buckets' freezes — those route back to their now-unsealed
    // sources), then reclaim their source-side space. ok stays false: the batch as
    // requested did not complete.
    BatchPublish(std::move(finished));
    return;
  }
  for (const BucketMove& move : batch_) {
    cluster_->registry().Unfreeze(move.bucket);
  }
  FinishBatch();
}

void MigrationCoordinator::FinishBatch() {
  breport_.completed_time = cluster_->sim().Now();
  StampTrace(kTraceComplete);
  trace_id_ = 0;
  if (!breport_.no_op) {
    obs_.moves_ok->Inc(breport_.moved.size());
    obs_.rollbacks->Inc(breport_.rolled_back.size());
    if (!breport_.ok) {
      obs_.moves_failed->Inc();
    }
    obs_.keys_moved->Inc(breport_.keys_moved);
    obs_.publishes->Inc(breport_.publishes);
    obs_.freeze_window_us->Record(
        static_cast<uint64_t>(breport_.freeze_window() / kMicrosecond));
  }
  if (deadline_armed_) {
    cluster_->sim().Cancel(deadline_event_);
    deadline_armed_ = false;
  }
  active_ = false;
  batch_.clear();
  ++batch_epoch_;
  if (bdone_) {
    BatchDoneCallback cb = std::move(bdone_);
    bdone_ = nullptr;
    cb(breport_);
  }
}

BatchMoveReport MigrationCoordinator::MoveBuckets(std::span<const uint32_t> buckets,
                                                  size_t dest_shard, SimTime timeout,
                                                  SimTime deadline) {
  auto result = std::make_shared<std::optional<BatchMoveReport>>();
  StartMoveBuckets(buckets, dest_shard,
                   [result](const BatchMoveReport& r) { *result = r; }, deadline);
  cluster_->sim().RunUntilCondition([result]() { return result->has_value(); },
                                    cluster_->sim().Now() + timeout);
  if (!result->has_value()) {
    BatchMoveReport out = breport_;
    out.ok = false;
    out.error = "timeout: batch migration still in flight";
    return out;
  }
  return **result;
}

MigrationReport MigrationCoordinator::MoveBucket(uint32_t bucket, size_t dest_shard,
                                                 SimTime timeout) {
  // Shared, not stack-captured: on timeout the coordinator still holds the done callback,
  // which may fire during a later simulator run after this frame is gone.
  auto result = std::make_shared<std::optional<MigrationReport>>();
  StartMoveBucket(bucket, dest_shard,
                  [result](const MigrationReport& r) { *result = r; });
  cluster_->sim().RunUntilCondition([result]() { return result->has_value(); },
                                    cluster_->sim().Now() + timeout);
  if (!result->has_value()) {
    MigrationReport out = report_;
    out.ok = false;
    out.error = "timeout: migration still in flight";
    return out;
  }
  return **result;
}

}  // namespace bft

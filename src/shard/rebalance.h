// Load-aware auto-rebalancing: the policy and the daemon that turn per-bucket heat
// statistics (src/shard/bucket_stats.h) into batched live bucket migrations
// (MigrationCoordinator::MoveBuckets).
//
// The split mirrors a classic control plane:
//
//   RebalancePlanner    — a pure, deterministic function (stats snapshot, current ShardMap,
//                         policy knobs) -> RebalancePlan. No cluster, no clock, no RNG:
//                         the same snapshot and map always produce the same plan, so the
//                         policy is unit-testable in isolation and every planning decision
//                         is replayable from its inputs.
//
//   RebalanceController — the event-driven daemon. A periodic timer on the Endpoint seam
//                         snapshots the stats registry (one epoch per planning round),
//                         asks the planner for a plan, and executes it through the
//                         migration coordinator's batch entry point under the reserved
//                         admin identity. At most one batch is in flight; rounds that
//                         would overlap a running batch are skipped, and a per-batch
//                         deadline stops a dead destination group from wedging the
//                         key space behind a permanent freeze.
//
// Policy (greedy, threshold-gated): find the most- and least-loaded groups under the
// current map; if the hottest group's load exceeds `imbalance_threshold` times the mean,
// move its hottest buckets to the coolest group — hottest first, stopping before a move
// would overshoot (source dipping below the destination), and never more than
// `max_moves_per_round` buckets per batch. Repeated rounds converge instead of oscillating
// because every round re-measures and the overshoot guard keeps source above destination.
#ifndef SRC_SHARD_REBALANCE_H_
#define SRC_SHARD_REBALANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/shard/bucket_stats.h"
#include "src/shard/migration.h"

namespace bft {

struct RebalancePolicy {
  // A round plans moves only when max-shard load > imbalance_threshold * mean load.
  double imbalance_threshold = 1.25;
  // Batch size cap: bounds the freeze window a single round may impose.
  size_t max_moves_per_round = 8;
  // Buckets colder than this (decayed ops/epoch) are never worth a migration.
  double min_bucket_load = 1.0;
};

struct RebalancePlan {
  size_t source = 0;
  size_t dest = 0;
  std::vector<uint32_t> buckets;  // hottest-first; empty = balanced, nothing to do
  double source_load = 0;         // loads at planning time (diagnostics)
  double dest_load = 0;

  bool empty() const { return buckets.empty(); }
};

class RebalancePlanner {
 public:
  explicit RebalancePlanner(RebalancePolicy policy) : policy_(policy) {}

  // Pure and deterministic: ties (equal loads, equal heat) break toward the lower shard /
  // bucket index, so identical inputs yield identical plans on every run and replica.
  RebalancePlan Plan(const BucketStatsRegistry::Snapshot& stats, const ShardMap& map) const;

  const RebalancePolicy& policy() const { return policy_; }

 private:
  RebalancePolicy policy_;
};

struct RebalanceControllerOptions {
  // Planning-round period; also the stats epoch length (the controller snapshots once per
  // round, so "load" means decayed ops per interval).
  SimTime interval = 250 * kMillisecond;
  RebalancePolicy policy;
  // Passed to MoveBuckets: a batch not done by then aborts and rolls back (0 disables).
  SimTime batch_deadline = 30 * kSecond;
};

class RebalanceController {
 public:
  // Creates its own migration coordinator (admin identity) and control endpoint on
  // `cluster`; reads the cluster's shared BucketStatsRegistry.
  RebalanceController(ShardedCluster* cluster, RebalanceControllerOptions options);
  ~RebalanceController();

  RebalanceController(const RebalanceController&) = delete;
  RebalanceController& operator=(const RebalanceController&) = delete;

  // Arms / disarms the periodic planning timer. Start is idempotent.
  void Start();
  void Stop();

  struct Stats {
    uint64_t rounds = 0;           // timer fires
    uint64_t rounds_skipped = 0;   // a batch was still in flight
    uint64_t plans_executed = 0;   // non-empty plans handed to the coordinator
    uint64_t buckets_moved = 0;    // published to their destinations
    uint64_t buckets_rolled_back = 0;
    uint64_t batches_failed = 0;
    uint64_t publishes = 0;        // one per executed batch when all goes well
    SimTime total_freeze_time = 0; // sum of batch freeze windows
  };
  const Stats& stats() const { return stats_; }
  const RebalancePlan& last_plan() const { return last_plan_; }
  bool batch_active() const { return coordinator_.active(); }

 private:
  void Tick();

  ShardedCluster* cluster_;
  RebalanceControllerOptions options_;
  RebalancePlanner planner_;
  MigrationCoordinator coordinator_;
  std::unique_ptr<Endpoint> endpoint_;  // timers only (the scheduling seam)
  Endpoint::TimerId timer_ = 0;
  bool running_ = false;
  Stats stats_;
  RebalancePlan last_plan_;
  // Pre-resolved instruments in the cluster's registry, bumped once per planning round —
  // batch outcomes (moves, rollbacks, freeze windows) are counted by the coordinator.
  Counter* rounds_metric_ = nullptr;
  Counter* rounds_skipped_metric_ = nullptr;
  Counter* plans_metric_ = nullptr;
};

}  // namespace bft

#endif  // SRC_SHARD_REBALANCE_H_

#include "src/shard/sharded_client.h"

#include <cstdio>
#include <cstdlib>

namespace bft {

ShardedClient::ShardedClient(const ShardMap* map, KeyExtractor extract_key,
                             std::vector<std::unique_ptr<Client>> endpoints)
    : map_(map), extract_key_(std::move(extract_key)), endpoints_(std::move(endpoints)) {
  if (map_->num_shards() != endpoints_.size()) {
    std::fprintf(stderr, "ShardedClient: %zu endpoints for a %zu-shard map\n",
                 endpoints_.size(), map_->num_shards());
    std::abort();
  }
}

size_t ShardedClient::ShardOf(ByteView op) const {
  std::optional<Bytes> key = extract_key_ ? extract_key_(op) : std::nullopt;
  if (!key.has_value()) {
    return 0;
  }
  return map_->ShardForKey(*key);
}

void ShardedClient::Invoke(Bytes op, bool read_only, Callback callback) {
  size_t shard = ShardOf(op);
  Client* endpoint = endpoints_[shard].get();
  endpoint->Invoke(std::move(op), read_only,
                   [this, endpoint, cb = std::move(callback)](Bytes result) {
                     last_latency_ = endpoint->stats().last_latency;
                     cb(std::move(result));
                   });
}

Client::Stats ShardedClient::AggregateStats() const {
  Client::Stats total;
  for (const auto& endpoint : endpoints_) {
    const Client::Stats& s = endpoint->stats();
    total.ops_completed += s.ops_completed;
    total.retransmissions += s.retransmissions;
    total.total_latency += s.total_latency;
  }
  total.last_latency = last_latency_;
  return total;
}

}  // namespace bft

#include "src/shard/sharded_client.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/service/service.h"

namespace bft {

ShardedClient::ShardedClient(ShardMapRegistry* registry, KeyExtractor extract_key,
                             std::vector<std::unique_ptr<Client>> endpoints)
    : registry_(registry),
      extract_key_(std::move(extract_key)),
      endpoints_(std::move(endpoints)) {
  if (registry_->current().num_shards() != endpoints_.size()) {
    std::fprintf(stderr, "ShardedClient: %zu endpoints for a %zu-shard map\n",
                 endpoints_.size(), registry_->current().num_shards());
    std::abort();
  }
  registry_->Subscribe([this]() { OnMapChanged(); });
}

ShardedClient::Route ShardedClient::RouteOf(ByteView op) const {
  Route route;
  std::optional<Bytes> key = extract_key_ ? extract_key_(op) : std::nullopt;
  if (!key.has_value()) {
    route.keyless = true;  // keyless policy: pinned to the home shard (see header)
    return route;
  }
  uint32_t bucket = KeyRing::BucketForKey(*key);
  route.frozen = registry_->IsFrozen(bucket);
  route.shard = registry_->current().ShardForBucket(bucket);
  return route;
}

size_t ShardedClient::ShardOf(ByteView op) const { return RouteOf(op).shard; }

void ShardedClient::Invoke(Bytes op, bool read_only, Callback callback) {
  Route route = RouteOf(op);
  if (route.keyless) {
    ++router_stats_.keyless_ops;
    Dispatch(0, std::move(op), read_only, std::move(callback));
    return;
  }
  if (route.frozen) {
    // The bucket is mid-migration: hold the op until the new map lands. Re-dispatch happens
    // in OnMapChanged, and the caller's callback fires after the op completes at the final
    // owner — the op is executed exactly once, by whichever group owns the bucket then.
    ++router_stats_.frozen_queued;
    queue_.push_back({std::move(op), read_only, std::move(callback)});
    return;
  }
  Dispatch(route.shard, std::move(op), read_only, std::move(callback));
}

void ShardedClient::Dispatch(size_t shard, Bytes op, bool read_only, Callback callback) {
  Client* endpoint = endpoints_[shard].get();
  endpoint->Invoke(
      std::move(op), read_only,
      [this, endpoint, shard, read_only, cb = std::move(callback)](Bytes result) mutable {
        if (Service::IsStaleOwnerResult(result)) {
          // The serving group sealed this op's bucket: our map was stale by the time the op
          // was ordered. The op did NOT execute there. Refresh by re-entering Invoke, which
          // routes under the registry's *current* state: queued if the bucket is mid-freeze
          // (drains on publish/unfreeze), dispatched to the current owner otherwise — which
          // also covers a rolled-back migration, where the un-sealed original owner serves
          // the retry. The op bytes are read back from the endpoint (still valid inside its
          // completion callback), so the hot path carries no defensive copy; this leg's
          // endpoint-level completion is remembered so AggregateStats can subtract it.
          ++router_stats_.stale_reroutes;
          stale_leg_latency_ += endpoint->stats().last_latency;
          ByteView held = endpoint->current_op();
          Invoke(Bytes(held.begin(), held.end()), read_only, std::move(cb));
          return;
        }
        last_latency_ = endpoint->stats().last_latency;
        last_shard_ = shard;
        cb(std::move(result));
      });
}

void ShardedClient::OnMapChanged() {
  // Re-dispatch everything the freeze (or staleness) held back. Ops whose bucket is still
  // frozen (a different migration) stay queued, as do ops whose target endpoint is busy
  // (multi-outstanding use outside the documented contract) — both retry on the next
  // registry change.
  std::deque<QueuedOp> pending = std::move(queue_);
  queue_.clear();
  while (!pending.empty()) {
    QueuedOp q = std::move(pending.front());
    pending.pop_front();
    Route route = RouteOf(q.op);
    if (route.frozen || endpoints_[route.shard]->busy()) {
      queue_.push_back(std::move(q));
      continue;
    }
    Dispatch(route.shard, std::move(q.op), q.read_only, std::move(q.callback));
  }
}

Client::Stats ShardedClient::AggregateStats() const {
  Client::Stats total;
  for (const auto& endpoint : endpoints_) {
    const Client::Stats& s = endpoint->stats();
    total.ops_completed += s.ops_completed;
    total.retransmissions += s.retransmissions;
    total.total_latency += s.total_latency;
  }
  // Stale-routed legs completed at an endpoint but were intercepted, never delivered:
  // subtract them so ops_completed counts each caller-visible op exactly once and the
  // latency sum covers only delivered results.
  total.ops_completed -= router_stats_.stale_reroutes;
  total.total_latency -= stale_leg_latency_;
  total.keyless_ops = router_stats_.keyless_ops;
  total.last_latency = last_latency_;
  return total;
}

}  // namespace bft

#include "src/shard/rebalance.h"

#include <algorithm>

namespace bft {

RebalancePlan RebalancePlanner::Plan(const BucketStatsRegistry::Snapshot& stats,
                                     const ShardMap& map) const {
  RebalancePlan plan;
  size_t shards = map.num_shards();
  if (shards < 2 || stats.total_load <= 0) {
    return plan;
  }

  std::vector<double> shard_load = stats.LoadPerShard(map);
  size_t hottest = 0;
  size_t coolest = 0;
  for (size_t s = 1; s < shards; ++s) {
    if (shard_load[s] > shard_load[hottest]) {
      hottest = s;  // strict >: ties break toward the lower index
    }
    if (shard_load[s] < shard_load[coolest]) {
      coolest = s;
    }
  }
  double mean = stats.total_load / static_cast<double>(shards);
  if (hottest == coolest || shard_load[hottest] <= policy_.imbalance_threshold * mean) {
    return plan;
  }

  plan.source = hottest;
  plan.dest = coolest;
  plan.source_load = shard_load[hottest];
  plan.dest_load = shard_load[coolest];

  // Candidate buckets of the hottest shard, hottest first (bucket index breaks ties).
  struct Candidate {
    double load;
    uint32_t bucket;
  };
  std::vector<Candidate> candidates;
  for (uint32_t b = 0; b < ShardMap::kNumBuckets; ++b) {
    if (map.ShardForBucket(b) == hottest && stats.load[b] >= policy_.min_bucket_load) {
      candidates.push_back({stats.load[b], b});
    }
  }
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return a.load != b.load ? a.load > b.load : a.bucket < b.bucket;
  });

  double src = plan.source_load;
  double dst = plan.dest_load;
  for (const Candidate& c : candidates) {
    if (plan.buckets.size() >= policy_.max_moves_per_round) {
      break;
    }
    // Overshoot guard: a move must leave the source at or above the destination, otherwise
    // the next round would just plan the reverse move and the pair would oscillate.
    if (src - c.load < dst + c.load) {
      continue;  // this bucket is too hot to move; a colder one may still fit
    }
    plan.buckets.push_back(c.bucket);
    src -= c.load;
    dst += c.load;
  }
  return plan;
}

RebalanceController::RebalanceController(ShardedCluster* cluster,
                                         RebalanceControllerOptions options)
    : cluster_(cluster),
      options_(options),
      planner_(options.policy),
      coordinator_(cluster),
      endpoint_(cluster->MakeControlEndpoint()) {
  MetricsRegistry& registry = cluster_->metrics();
  rounds_metric_ = registry.GetCounter("bft_rebalance_rounds_total");
  rounds_skipped_metric_ = registry.GetCounter("bft_rebalance_rounds_skipped_total");
  plans_metric_ = registry.GetCounter("bft_rebalance_plans_executed_total");
}

RebalanceController::~RebalanceController() { endpoint_->Close(); }

void RebalanceController::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  timer_ = endpoint_->SetPeriodicTimer(options_.interval, [this]() { Tick(); });
}

void RebalanceController::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  endpoint_->CancelTimer(timer_);
}

void RebalanceController::Tick() {
  ++stats_.rounds;
  rounds_metric_->Inc();
  if (coordinator_.active()) {
    // The previous batch is still migrating; planning against a map mid-cut-over would
    // race the publish. Skip — next round re-measures.
    ++stats_.rounds_skipped;
    rounds_skipped_metric_->Inc();
    return;
  }
  SimTime snapshot_at = endpoint_->Now();
  BucketStatsRegistry::Snapshot snapshot = cluster_->bucket_stats().SnapshotEpoch();
  RebalancePlan plan = planner_.Plan(snapshot, cluster_->registry().current());
  SimTime planned_at = endpoint_->Now();
  if (plan.empty()) {
    return;
  }
  last_plan_ = plan;
  ++stats_.plans_executed;
  plans_metric_->Inc();
  // Admin-op timeline (kind=kRebalance) for rounds that act: snapshot and plan are stamped
  // retroactively from the times captured above, so balanced rounds never open a timeline.
  // The Now() reads are pure clock loads — no events, no RNG — so deterministic runs with
  // tracing off stay byte-identical.
  RequestTracer& tracer = cluster_->tracer();
  uint64_t trace_id = tracer.enabled() ? tracer.NextAdminOpId() : 0;
  if (trace_id != 0) {
    tracer.StampAdmin(TraceKind::kRebalance, trace_id, 0, snapshot_at);
    tracer.StampAdmin(TraceKind::kRebalance, trace_id, 1, planned_at);
    tracer.StampAdmin(TraceKind::kRebalance, trace_id, 2, endpoint_->Now());
  }
  coordinator_.StartMoveBuckets(
      plan.buckets, plan.dest,
      [this, trace_id](const BatchMoveReport& report) {
        stats_.buckets_moved += report.moved.size();
        stats_.buckets_rolled_back += report.rolled_back.size();
        stats_.publishes += report.publishes;
        stats_.total_freeze_time += report.freeze_window();
        if (!report.ok) {
          ++stats_.batches_failed;
        }
        if (trace_id != 0) {
          cluster_->tracer().StampAdmin(TraceKind::kRebalance, trace_id, 3,
                                        endpoint_->Now());
        }
      },
      options_.batch_deadline);
}

}  // namespace bft

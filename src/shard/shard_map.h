// Versioned partition of the key space over S independent PBFT replica groups.
//
// Keys are hashed onto a fixed ring of buckets (common/key_ring.h); each bucket is owned by
// one shard (replica group). The bucket->shard assignment is an explicit, versioned artifact
// rather than a bare `hash % S`: the reconfiguration protocol (src/shard/migration.h)
// republishes the map with individual buckets reassigned (and a bumped version) without
// changing how clients compute buckets, so only the moved buckets' data has to migrate. With
// the default assignment and S = 1 every key maps to shard 0, degenerating to the
// single-group system.
//
// ShardMapRegistry is the publication point: the harness-side stand-in for the config
// service a deployment would run. It holds the current map, the transient frozen-bucket set
// a migration is operating on, and notifies subscribed routers when either changes so queued
// operations re-dispatch.
#ifndef SRC_SHARD_SHARD_MAP_H_
#define SRC_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/key_ring.h"
#include "src/common/thread_annotations.h"

namespace bft {

class ShardMap {
 public:
  // Ring geometry (see KeyRing). Kept as a member alias so existing callers read naturally.
  static constexpr uint32_t kNumBuckets = KeyRing::kNumBuckets;

  // Builds version 1 with the default round-robin assignment: bucket b -> b % num_shards.
  explicit ShardMap(size_t num_shards);

  // Builds an explicit assignment (reconfiguration path). `owner[b]` is the shard owning
  // bucket b; must have kNumBuckets entries, each < num_shards.
  ShardMap(size_t num_shards, uint64_t version, std::vector<uint32_t> owner);

  size_t num_shards() const { return num_shards_; }
  uint64_t version() const { return version_; }

  // Stable 64-bit key hash; identical across runs, seeds, and processes.
  static uint64_t HashKey(ByteView key) { return KeyRing::HashKey(key); }

  uint32_t BucketForKey(ByteView key) const { return KeyRing::BucketForKey(key); }
  size_t ShardForBucket(uint32_t bucket) const { return owner_[bucket]; }
  size_t ShardForKey(ByteView key) const { return owner_[BucketForKey(key)]; }

  // Buckets currently owned by `shard` (diagnostics and migration planning).
  std::vector<uint32_t> BucketsOf(size_t shard) const;

  // Derives the next version with one bucket reassigned (the reconfiguration primitive the
  // migration coordinator publishes after a bucket's data has moved).
  ShardMap WithBucketMoved(uint32_t bucket, size_t new_shard) const;

  // Batch form: one version bump with every listed bucket reassigned — a batched migration
  // amortizes the publish (and the routers' re-dispatch churn) over the whole bucket set.
  ShardMap WithBucketsMoved(const std::vector<uint32_t>& buckets, size_t new_shard) const;

  // Wire form, so a map version can be shipped to clients / other processes and swapped in
  // atomically: [version u64][num_shards u32][owner u16 x kNumBuckets].
  Bytes Encode() const;
  // Defensive decode (Byzantine senders may ship arbitrary bytes): nullopt on any malformed
  // input — wrong length, out-of-range owner, zero shards.
  static std::optional<ShardMap> Decode(ByteView raw);

  bool operator==(const ShardMap& other) const {
    return num_shards_ == other.num_shards_ && version_ == other.version_ &&
           owner_ == other.owner_;
  }

 private:
  size_t num_shards_;
  uint64_t version_;
  std::vector<uint32_t> owner_;  // bucket -> shard
};

// The shard-map publication point shared by every router client of one deployment.
//
// Single-writer: one migration coordinator freezes buckets and publishes new versions; many
// ShardedClients read the current map per operation and subscribe for change notifications.
// Old map versions are retained so a `const ShardMap&` held across a publish never dangles
// (the memory cost is one owner table per reconfiguration). The internal lock makes reads
// and publishes safe from any thread; listeners run with the lock DROPPED (they re-dispatch
// queued operations, which may synchronously complete and call Subscribe back in).
class ShardMapRegistry {
 public:
  explicit ShardMapRegistry(ShardMap initial);

  // The latest published map. The reference stays valid for the registry's lifetime (old
  // versions are never destroyed, so it remains safe to use after the lock drops).
  const ShardMap& current() const {
    MutexLock lock(mu_);
    return *maps_.back();
  }
  uint64_t version() const { return current().version(); }

  // --- Migration freeze window ---------------------------------------------------------------
  // While a bucket is frozen, routers queue new operations against it instead of dispatching;
  // the queue drains when the freeze lifts (Publish after a completed move, or Unfreeze after
  // an aborted one).
  bool IsFrozen(uint32_t bucket) const {
    MutexLock lock(mu_);
    return frozen_.count(bucket) != 0;
  }
  size_t FrozenCount() const {
    MutexLock lock(mu_);
    return frozen_.size();
  }
  void Freeze(uint32_t bucket);
  void Unfreeze(uint32_t bucket);

  // Atomically swaps in `next` (its version must be newer) and lifts every freeze.
  void Publish(ShardMap next);

  // `listener` runs after every Publish or Unfreeze (i.e., whenever queued operations may be
  // eligible for re-dispatch). Listeners must outlive the registry or never be destroyed
  // first — ShardedCluster owns both registry and clients, satisfying this.
  void Subscribe(std::function<void()> listener);

 private:
  // Runs every listener with mu_ released — a listener may re-enter Subscribe (or even
  // Publish) synchronously, so holding the lock across the callback would self-deadlock.
  void NotifyAll() BFT_EXCLUDES(mu_);

  mutable Mutex mu_;
  // All versions, oldest first.
  std::vector<std::unique_ptr<const ShardMap>> maps_ BFT_GUARDED_BY(mu_);
  std::set<uint32_t> frozen_ BFT_GUARDED_BY(mu_);
  std::vector<std::function<void()>> listeners_ BFT_GUARDED_BY(mu_);
};

}  // namespace bft

#endif  // SRC_SHARD_SHARD_MAP_H_

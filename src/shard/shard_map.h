// Versioned partition of the key space over S independent PBFT replica groups.
//
// Keys are hashed onto a fixed ring of buckets; each bucket is owned by one shard (replica
// group). The bucket->shard assignment is an explicit, versioned artifact rather than a bare
// `hash % S`: a reconfiguration protocol can later republish the map with individual buckets
// reassigned (and a bumped version) without changing how clients compute buckets, so only the
// moved buckets' data has to migrate. With the default assignment and S = 1 every key maps to
// shard 0, degenerating to the single-group system.
#ifndef SRC_SHARD_SHARD_MAP_H_
#define SRC_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "src/common/bytes.h"

namespace bft {

class ShardMap {
 public:
  // Buckets on the hash ring. Fixed across versions so bucket computation never changes;
  // only ownership moves. Must be a power of two.
  static constexpr uint32_t kNumBuckets = 4096;

  // Builds version 1 with the default round-robin assignment: bucket b -> b % num_shards.
  explicit ShardMap(size_t num_shards);

  // Builds an explicit assignment (reconfiguration path). `owner[b]` is the shard owning
  // bucket b; must have kNumBuckets entries, each < num_shards.
  ShardMap(size_t num_shards, uint64_t version, std::vector<uint32_t> owner);

  size_t num_shards() const { return num_shards_; }
  uint64_t version() const { return version_; }

  // Stable 64-bit key hash (FNV-1a); identical across runs, seeds, and processes.
  static uint64_t HashKey(ByteView key);

  uint32_t BucketForKey(ByteView key) const {
    return static_cast<uint32_t>(HashKey(key) & (kNumBuckets - 1));
  }
  size_t ShardForBucket(uint32_t bucket) const { return owner_[bucket]; }
  size_t ShardForKey(ByteView key) const { return owner_[BucketForKey(key)]; }

  // Buckets currently owned by `shard` (diagnostics and future migration planning).
  std::vector<uint32_t> BucketsOf(size_t shard) const;

  // Derives the next version with one bucket reassigned (the reconfiguration primitive a
  // later PR will drive from a management protocol).
  ShardMap WithBucketMoved(uint32_t bucket, size_t new_shard) const;

 private:
  size_t num_shards_;
  uint64_t version_;
  std::vector<uint32_t> owner_;  // bucket -> shard
};

}  // namespace bft

#endif  // SRC_SHARD_SHARD_MAP_H_

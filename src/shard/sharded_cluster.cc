#include "src/shard/sharded_cluster.h"

#include <cstdio>
#include <cstdlib>

#include "src/sim/node.h"
#include "src/sim/sim_harness.h"

namespace bft {

ShardedCluster::ShardedCluster(ShardedClusterOptions options, ShardServiceFactory factory)
    : options_(options),
      registry_(ShardMap(options.num_shards)),
      sim_(options.seed),
      net_(&sim_, options.model.net) {
  tracer_.InstallMetrics(&metrics_);
  size_t shards = options_.num_shards;
  int n = options_.config.n;
  // Replica id ranges must stay clear of the client id space. Checked in every build mode:
  // a violation makes IsClientId() misclassify replicas and silently corrupts routing.
  if (shards == 0 || shards * static_cast<size_t>(n) >= kClientIdBase) {
    std::fprintf(stderr, "ShardedCluster: %zu shards x %d replicas exceeds the replica id space\n",
                 shards, n);
    std::abort();
  }

  configs_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    ReplicaConfig config = options_.config;
    config.base_id = static_cast<NodeId>(s * static_cast<size_t>(n));
    configs_.push_back(config);
  }
  for (size_t s = 0; s < shards; ++s) {
    directories_.push_back(std::make_unique<PublicKeyDirectory>());
    replicas_.emplace_back();
    for (int i = 0; i < n; ++i) {
      NodeId id = configs_[s].ReplicaId(i);
      // Seed layout matches Cluster (seed + id): bit-for-bit identical for num_shards = 1.
      replicas_[s].push_back(std::make_unique<Replica>(
          std::make_unique<Node>(&sim_, &net_, id), &configs_[s], &options_.model,
          directories_[s].get(), factory(s, id), options_.seed + static_cast<uint64_t>(id)));
    }
  }
  for (auto& group : replicas_) {
    for (auto& replica : group) {
      replica->InstallObservability(&metrics_, &tracer_);
      replica->Start();
    }
  }
  router_service_ = factory(0, configs_[0].ReplicaId(0));
  next_admin_id_ = configs_[0].admin_id_base;

  // Load observation for the rebalancer: replica 0 of each group executes every op the group
  // orders, so pointing exactly one service per group at the shared registry counts each
  // client op once. A pure observer — identical event streams with or without consumers.
  for (auto& group : replicas_) {
    group[0]->service()->set_stats_sink(&bucket_stats_);
  }
}

ShardedCluster::~ShardedCluster() = default;

ShardedClient* ShardedCluster::AddClient() {
  ShardedClient* added = AddRouterClient(&next_client_id_);
  if (next_client_id_ > configs_[0].admin_id_base) {
    std::fprintf(stderr, "ShardedCluster: client ids overran the admin id range\n");
    std::abort();
  }
  return added;
}

ShardedClient* ShardedCluster::AddAdminClient() { return AddRouterClient(&next_admin_id_); }

ShardedClient* ShardedCluster::AddRouterClient(NodeId* next_id) {
  std::vector<std::unique_ptr<Client>> endpoints;
  endpoints.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    NodeId id = (*next_id)++;
    endpoints.push_back(std::make_unique<Client>(
        std::make_unique<Node>(&sim_, &net_, id), &configs_[s], &options_.model,
        directories_[s].get(), options_.seed ^ (id * 0x2545f4914f6cdd1dULL)));
  }
  clients_.push_back(std::make_unique<ShardedClient>(
      &registry_, [this](ByteView op) { return router_service_->KeyOf(op); },
      std::move(endpoints)));
  ShardedClient* added = clients_.back().get();
  for (size_t s = 0; s < added->num_shards(); ++s) {
    added->endpoint(s)->InstallObservability(&metrics_, &tracer_);
  }
  return added;
}

std::unique_ptr<Endpoint> ShardedCluster::MakeControlEndpoint() {
  return std::make_unique<Node>(&sim_, &net_, next_admin_id_++);
}

std::optional<Bytes> ShardedCluster::Execute(ShardedClient* client, Bytes op, bool read_only,
                                             SimTime timeout) {
  return sim_harness::Execute(sim_, client, std::move(op), read_only, timeout);
}

bool ShardedCluster::WaitForExecution(size_t shard, SeqNo seq, SimTime timeout) {
  return sim_harness::WaitForExecution(sim_, replicas_[shard], seq, timeout);
}

NodeId ShardedCluster::CurrentPrimary(size_t shard) {
  return sim_harness::CurrentPrimary(configs_[shard], replicas_[shard]);
}

void ShardedCluster::CrashShard(size_t shard) {
  for (auto& replica : replicas_[shard]) {
    replica->Crash();
  }
}

uint64_t ShardedCluster::TotalRequestsExecuted() {
  uint64_t total = 0;
  for (auto& group : replicas_) {
    // First live replica, falling back to replica 0 when the whole group is down — the same
    // convention as CurrentPrimary. Counting only replica 0 undercounts after it crashes:
    // its stats freeze while the surviving group keeps executing.
    Replica* counted = group[0].get();
    for (auto& replica : group) {
      if (!replica->crashed()) {
        counted = replica.get();
        break;
      }
    }
    total += counted->stats().requests_executed;
  }
  return total;
}

}  // namespace bft

// Live bucket migration between sharded replica groups (shard reconfiguration).
//
// The coordinator repurposes the machinery PR 1's versioned ShardMap was built for: moving
// one bucket's keyed state from its owning group to another *while the system serves load*,
// with no operation lost or executed twice. Every step that touches replicated state is a
// regular operation driven through the ordered pipeline (so correct replicas of each group
// apply it at one sequence number, reply certificates form, and view changes / state
// transfer / checkpointing cover migration state like any other state):
//
//   1. Freeze   — registry_.Freeze(bucket): routers queue *new* ops for the bucket.
//   2. Seal     — SealBucketOp ordered in the SOURCE group. Ops on the bucket ordered after
//                 the seal return the stale-owner marker instead of executing, so every
//                 client-visible execution at the source linearizes before the move. In-flight
//                 ops ordered before the seal execute normally and are captured by the export.
//   3. Export   — ExportBucketOp ordered in the source group; its certified result is the
//                 bucket's full entry list at the seal point.
//   4. Accept   — AcceptBucketOp ordered in the DESTINATION group (clears any old moved-out
//                 marker so a bucket can move away and later come back).
//   5. Import   — one ImportEntryOp per exported entry, ordered in the destination group.
//   6. Publish  — registry_.Publish(map.WithBucketMoved(...)): clients atomically swap to
//                 the bumped version; queued ops re-dispatch to the new owner.
//   7. Purge    — PurgeBucketOp ordered in the source group (space hygiene; does not gate
//                 clients, the seal marker keeps stale routes answered).
//
// On a failed step after the seal (service rejects an op, e.g. destination full) the
// coordinator rolls back: purges any partially imported entries from the destination,
// un-seals the source, and lifts the freeze, so the bucket keeps being served by its
// original owner under the unchanged map version with no stray copies elsewhere.
//
// The coordinator is fully event-driven (each step is a client Invoke continuation), so a
// migration can be started from inside a simulator event while closed-loop load runs; the
// synchronous MoveBucket wrapper drives the simulator until completion for tests.
#ifndef SRC_SHARD_MIGRATION_H_
#define SRC_SHARD_MIGRATION_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/shard/sharded_cluster.h"

namespace bft {

struct MigrationReport {
  bool ok = false;
  bool no_op = false;  // destination already owned the bucket; nothing was done
  uint32_t bucket = 0;
  size_t source_shard = 0;
  size_t dest_shard = 0;
  size_t keys_moved = 0;
  size_t export_bytes = 0;
  uint64_t map_version_before = 0;
  uint64_t map_version_after = 0;  // == before when the move did not publish
  SimTime freeze_start = 0;
  SimTime publish_time = 0;
  SimTime completed_time = 0;  // purge done (source space reclaimed)
  std::string error;           // non-empty iff !ok

  // The window during which client ops against the bucket are queued rather than served;
  // zero for moves that never published (no-ops, rollbacks, timeouts).
  SimTime freeze_window() const {
    return publish_time >= freeze_start ? publish_time - freeze_start : 0;
  }
};

// Result of a batched multi-bucket move (MoveBuckets). The batch amortizes the freeze
// window and the map publish over the whole bucket set: every migrating bucket freezes at
// once, data moves bucket by bucket with the source's exports pipelined against the
// destination's imports (two replica groups working concurrently), and ownership of all
// fully-imported buckets cuts over in exactly ONE ShardMap publish.
//
// Mid-batch failure is resolved per bucket: buckets whose imports completed still publish
// (one publish of the finished set), every unfinished bucket rolls back — partial imports
// purged from the destination, the destination re-sealed, the source un-sealed — and its
// traffic returns to the original owner under the unchanged assignment.
struct BatchMoveReport {
  bool ok = false;
  bool no_op = false;        // every requested bucket was already at the destination
  size_t dest_shard = 0;
  std::vector<uint32_t> requested;    // deduplicated request, in call order
  std::vector<uint32_t> skipped;      // already owned by the destination (issued nothing)
  std::vector<uint32_t> moved;        // published to the destination
  std::vector<uint32_t> rolled_back;  // returned to their sources after a failure/abort
  size_t keys_moved = 0;
  size_t export_bytes = 0;
  uint64_t map_version_before = 0;
  uint64_t map_version_after = 0;
  uint64_t publishes = 0;  // ShardMap publishes this batch performed (1 for any move set)
  SimTime freeze_start = 0;
  SimTime publish_time = 0;
  SimTime completed_time = 0;
  std::string error;  // non-empty iff !ok

  // The window during which client ops against the batch's buckets queued rather than
  // served: until the publish when one happened, else until the rollback lifted the
  // freezes — a deadline-aborted batch froze its buckets for real, and that availability
  // cost must show up in the controller's and the bench's freeze-time accounting.
  SimTime freeze_window() const {
    SimTime end = publish_time >= freeze_start && publish_time != 0 ? publish_time
                                                                    : completed_time;
    return end >= freeze_start ? end - freeze_start : 0;
  }
};

class MigrationCoordinator {
 public:
  using DoneCallback = std::function<void(const MigrationReport&)>;
  using BatchDoneCallback = std::function<void(const BatchMoveReport&)>;

  // Creates the coordinator's own *admin* client (one endpoint per group, ids in the
  // reserved admin range — the only identity replicas accept MIG_* ops from) on `cluster`.
  explicit MigrationCoordinator(ShardedCluster* cluster);

  // Starts moving `bucket` to `dest_shard`; `done` fires (possibly synchronously, for no-op
  // moves) when the migration completes or fails. One migration at a time. A move whose
  // destination already owns the bucket is a pure no-op: it issues no operations and touches
  // neither the registry nor the simulator, so a run containing only no-op moves is
  // byte-identical to one with no migration at all.
  void StartMoveBucket(uint32_t bucket, size_t dest_shard, DoneCallback done);

  // Synchronous wrapper: StartMoveBucket + run the simulator until done (or `timeout` of
  // simulated time, which fails the report but leaves the migration running).
  MigrationReport MoveBucket(uint32_t bucket, size_t dest_shard,
                             SimTime timeout = 120 * kSecond);

  // Starts a batched move of `buckets` (deduplicated; those already at `dest_shard` are
  // skipped) to one destination group. One batch or single move at a time. A batch whose
  // every bucket is already at the destination is a pure no-op: no ops, no freeze, no
  // simulator events — byte-identical to not calling it at all.
  //
  // `deadline` (> 0) bounds the batch in simulated time: if it has not completed, the
  // coordinator aborts — publishing NOTHING and rolling the sealed buckets back at their
  // sources — so a destination group that died mid-batch cannot wedge the key space behind
  // a permanent freeze. Destination-side cleanup is skipped on abort (the destination is
  // presumed unreachable; its endpoint may stay busy retransmitting into the void).
  void StartMoveBuckets(std::span<const uint32_t> buckets, size_t dest_shard,
                        BatchDoneCallback done, SimTime deadline = 0);

  // Synchronous wrapper: StartMoveBuckets + run the simulator until done (or `timeout`).
  BatchMoveReport MoveBuckets(std::span<const uint32_t> buckets, size_t dest_shard,
                              SimTime timeout = 120 * kSecond, SimTime deadline = 0);

  bool active() const { return active_; }

 private:
  // Orders `op` in `shard`'s group through the admin client; `then(result)` continues the
  // state machine. Client-level retransmission rides out view changes in the target group.
  void InvokeOn(size_t shard, Bytes op, std::function<void(Bytes)> then);
  // Marker-only un-seal for rollback (UnsealBucketOp, falling back to AcceptBucketOp for
  // services predating the split). nullopt only for services without migration support.
  std::optional<Bytes> UnsealOp(uint32_t bucket);
  void StepExport();
  void StepAccept();
  void ImportNext();
  void StepPublish();
  void Fail(std::string error);
  void RollbackSource();
  void Finish();

  // --- Batched moves -----------------------------------------------------------------------
  // Two pipelined chains share the admin client: the *source* chain seals and exports bucket
  // after bucket (endpoints of the owning groups), the *destination* chain accepts and
  // imports each bucket as soon as its export lands (the destination group's endpoint).
  // Because every retained bucket's source differs from the destination (same-owner buckets
  // are skipped as no-ops), the chains never contend for an endpoint: the source group can
  // be exporting bucket k+1 while the destination is still importing bucket k.
  struct BucketMove {
    uint32_t bucket = 0;
    size_t source = 0;
    enum Stage { kPending, kSealed, kExported, kAccepted, kImported, kRolledBack } stage =
        kPending;
    std::vector<std::pair<Bytes, Bytes>> entries;
    size_t next_entry = 0;
    bool dest_touched = false;  // accept was issued: rollback must purge + re-seal the dest
  };

  // Orders `op` through the admin client with a batch-epoch guard: replies that arrive after
  // the batch finished (deadline aborts leave ops in flight) are dropped.
  void InvokeBatch(size_t shard, Bytes op, std::function<void(Bytes)> then);
  void SourceStep();
  void DestStep();
  void MaybeFinishForward();
  void BatchPublish(std::vector<uint32_t> buckets);
  void PurgeStep();
  void BatchFail(std::string error);
  void OnBatchDeadline();
  void MaybeResolve();
  void RollbackStep();
  void ResolveFinish();
  void FinishBatch();

  ShardedCluster* cluster_;
  ShardedClient* client_;  // admin endpoints, owned by the cluster
  bool active_ = false;
  bool dest_touched_ = false;  // the destination's accept was issued (rollback must undo it)
  MigrationReport report_;
  DoneCallback done_;
  std::vector<std::pair<Bytes, Bytes>> entries_;
  size_t next_entry_ = 0;

  // Batch state (valid while a batch is active).
  std::vector<BucketMove> batch_;
  size_t src_cursor_ = 0;
  size_t dst_cursor_ = 0;
  size_t rollback_cursor_ = 0;
  std::vector<size_t> purge_list_;  // batch_ indices awaiting source-side purge
  size_t purge_cursor_ = 0;
  bool src_busy_ = false;
  bool dst_busy_ = false;
  bool batch_failed_ = false;
  bool batch_aborted_ = false;
  bool resolving_ = false;
  bool rollback_waiting_on_dest_ = false;  // the in-flight rollback op targets the dest
  bool purge_ok_ = true;
  uint64_t batch_epoch_ = 0;    // bumped when a batch finishes; guards late replies
  uint64_t resolve_round_ = 0;  // bumped when a deadline orphans a hung rollback chain
  Simulator::EventId deadline_event_ = 0;
  bool deadline_armed_ = false;
  BatchMoveReport breport_;
  BatchDoneCallback bdone_;

  // Admin-op timeline (kind=kMigration): opened at the freeze, retired by Finish /
  // FinishBatch; 0 while no traced move is active. Milestones record the FIRST time the
  // move reached each stage, so batch phases read as pipeline onsets.
  void StampTrace(int phase);
  uint64_t trace_id_ = 0;

  // Pre-resolved instruments in the cluster's registry; recorded when a move/batch resolves
  // (Finish/FinishBatch), never on the per-op path, so migration metrics cost nothing while
  // data is moving.
  struct Obs {
    Counter* moves_ok = nullptr;
    Counter* moves_failed = nullptr;
    Counter* rollbacks = nullptr;
    Counter* keys_moved = nullptr;
    Counter* publishes = nullptr;
    Histogram* freeze_window_us = nullptr;
  };
  Obs obs_;
};

}  // namespace bft

#endif  // SRC_SHARD_MIGRATION_H_

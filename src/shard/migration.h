// Live bucket migration between sharded replica groups (shard reconfiguration).
//
// The coordinator repurposes the machinery PR 1's versioned ShardMap was built for: moving
// one bucket's keyed state from its owning group to another *while the system serves load*,
// with no operation lost or executed twice. Every step that touches replicated state is a
// regular operation driven through the ordered pipeline (so correct replicas of each group
// apply it at one sequence number, reply certificates form, and view changes / state
// transfer / checkpointing cover migration state like any other state):
//
//   1. Freeze   — registry_.Freeze(bucket): routers queue *new* ops for the bucket.
//   2. Seal     — SealBucketOp ordered in the SOURCE group. Ops on the bucket ordered after
//                 the seal return the stale-owner marker instead of executing, so every
//                 client-visible execution at the source linearizes before the move. In-flight
//                 ops ordered before the seal execute normally and are captured by the export.
//   3. Export   — ExportBucketOp ordered in the source group; its certified result is the
//                 bucket's full entry list at the seal point.
//   4. Accept   — AcceptBucketOp ordered in the DESTINATION group (clears any old moved-out
//                 marker so a bucket can move away and later come back).
//   5. Import   — one ImportEntryOp per exported entry, ordered in the destination group.
//   6. Publish  — registry_.Publish(map.WithBucketMoved(...)): clients atomically swap to
//                 the bumped version; queued ops re-dispatch to the new owner.
//   7. Purge    — PurgeBucketOp ordered in the source group (space hygiene; does not gate
//                 clients, the seal marker keeps stale routes answered).
//
// On a failed step after the seal (service rejects an op, e.g. destination full) the
// coordinator rolls back: purges any partially imported entries from the destination,
// un-seals the source, and lifts the freeze, so the bucket keeps being served by its
// original owner under the unchanged map version with no stray copies elsewhere.
//
// The coordinator is fully event-driven (each step is a client Invoke continuation), so a
// migration can be started from inside a simulator event while closed-loop load runs; the
// synchronous MoveBucket wrapper drives the simulator until completion for tests.
#ifndef SRC_SHARD_MIGRATION_H_
#define SRC_SHARD_MIGRATION_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/shard/sharded_cluster.h"

namespace bft {

struct MigrationReport {
  bool ok = false;
  bool no_op = false;  // destination already owned the bucket; nothing was done
  uint32_t bucket = 0;
  size_t source_shard = 0;
  size_t dest_shard = 0;
  size_t keys_moved = 0;
  size_t export_bytes = 0;
  uint64_t map_version_before = 0;
  uint64_t map_version_after = 0;  // == before when the move did not publish
  SimTime freeze_start = 0;
  SimTime publish_time = 0;
  SimTime completed_time = 0;  // purge done (source space reclaimed)
  std::string error;           // non-empty iff !ok

  // The window during which client ops against the bucket are queued rather than served;
  // zero for moves that never published (no-ops, rollbacks, timeouts).
  SimTime freeze_window() const {
    return publish_time >= freeze_start ? publish_time - freeze_start : 0;
  }
};

class MigrationCoordinator {
 public:
  using DoneCallback = std::function<void(const MigrationReport&)>;

  // Creates the coordinator's own admin client (one endpoint per group) on `cluster`.
  explicit MigrationCoordinator(ShardedCluster* cluster);

  // Starts moving `bucket` to `dest_shard`; `done` fires (possibly synchronously, for no-op
  // moves) when the migration completes or fails. One migration at a time. A move whose
  // destination already owns the bucket is a pure no-op: it issues no operations and touches
  // neither the registry nor the simulator, so a run containing only no-op moves is
  // byte-identical to one with no migration at all.
  void StartMoveBucket(uint32_t bucket, size_t dest_shard, DoneCallback done);

  // Synchronous wrapper: StartMoveBucket + run the simulator until done (or `timeout` of
  // simulated time, which fails the report but leaves the migration running).
  MigrationReport MoveBucket(uint32_t bucket, size_t dest_shard,
                             SimTime timeout = 120 * kSecond);

  bool active() const { return active_; }

 private:
  // Orders `op` in `shard`'s group through the admin client; `then(result)` continues the
  // state machine. Client-level retransmission rides out view changes in the target group.
  void InvokeOn(size_t shard, Bytes op, std::function<void(Bytes)> then);
  void StepExport();
  void StepAccept();
  void ImportNext();
  void StepPublish();
  void Fail(std::string error);
  void RollbackSource();
  void Finish();

  ShardedCluster* cluster_;
  ShardedClient* client_;  // admin endpoints, owned by the cluster
  bool active_ = false;
  bool dest_touched_ = false;  // the destination's accept was issued (rollback must undo it)
  MigrationReport report_;
  DoneCallback done_;
  std::vector<std::pair<Bytes, Bytes>> entries_;
  size_t next_entry_ = 0;
};

}  // namespace bft

#endif  // SRC_SHARD_MIGRATION_H_

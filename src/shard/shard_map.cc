#include "src/shard/shard_map.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/serializer.h"

namespace bft {

namespace {
// Map invariants hold in every build mode (NDEBUG included): a malformed map silently
// misroutes keys, which no downstream check would catch.
void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ShardMap: invalid map: %s\n", what);
    std::abort();
  }
}
}  // namespace

ShardMap::ShardMap(size_t num_shards) : num_shards_(num_shards), version_(1) {
  Require(num_shards_ >= 1, "num_shards must be >= 1");
  owner_.resize(kNumBuckets);
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    owner_[b] = static_cast<uint32_t>(b % num_shards_);
  }
}

ShardMap::ShardMap(size_t num_shards, uint64_t version, std::vector<uint32_t> owner)
    : num_shards_(num_shards), version_(version), owner_(std::move(owner)) {
  Require(num_shards_ >= 1, "num_shards must be >= 1");
  Require(owner_.size() == kNumBuckets, "owner vector must cover every bucket");
  for (uint32_t shard : owner_) {
    Require(shard < num_shards_, "bucket owned by out-of-range shard");
  }
}

std::vector<uint32_t> ShardMap::BucketsOf(size_t shard) const {
  std::vector<uint32_t> out;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    if (owner_[b] == shard) {
      out.push_back(b);
    }
  }
  return out;
}

ShardMap ShardMap::WithBucketMoved(uint32_t bucket, size_t new_shard) const {
  Require(bucket < kNumBuckets, "bucket out of range");
  Require(new_shard < num_shards_, "target shard out of range");
  std::vector<uint32_t> owner = owner_;
  owner[bucket] = static_cast<uint32_t>(new_shard);
  return ShardMap(num_shards_, version_ + 1, std::move(owner));
}

ShardMap ShardMap::WithBucketsMoved(const std::vector<uint32_t>& buckets,
                                    size_t new_shard) const {
  Require(new_shard < num_shards_, "target shard out of range");
  std::vector<uint32_t> owner = owner_;
  for (uint32_t bucket : buckets) {
    Require(bucket < kNumBuckets, "bucket out of range");
    owner[bucket] = static_cast<uint32_t>(new_shard);
  }
  return ShardMap(num_shards_, version_ + 1, std::move(owner));
}

Bytes ShardMap::Encode() const {
  Writer w(8 + 4 + 2 * kNumBuckets);
  w.U64(version_);
  w.U32(static_cast<uint32_t>(num_shards_));
  for (uint32_t owner : owner_) {
    w.U16(static_cast<uint16_t>(owner));
  }
  return w.Take();
}

std::optional<ShardMap> ShardMap::Decode(ByteView raw) {
  Reader r(raw);
  uint64_t version = r.U64();
  uint32_t num_shards = r.U32();
  // A 16-bit owner field caps the shard count; anything larger is malformed by construction.
  if (num_shards == 0 || num_shards > 0xffff) {
    return std::nullopt;
  }
  std::vector<uint32_t> owner(kNumBuckets);
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    owner[b] = r.U16();
    if (owner[b] >= num_shards) {
      return std::nullopt;
    }
  }
  if (!r.ok() || !r.AtEnd()) {
    return std::nullopt;
  }
  return ShardMap(num_shards, version, std::move(owner));
}

ShardMapRegistry::ShardMapRegistry(ShardMap initial) {
  maps_.push_back(std::make_unique<const ShardMap>(std::move(initial)));
}

void ShardMapRegistry::Freeze(uint32_t bucket) {
  MutexLock lock(mu_);
  frozen_.insert(bucket);
}

void ShardMapRegistry::Unfreeze(uint32_t bucket) {
  {
    MutexLock lock(mu_);
    if (frozen_.erase(bucket) == 0) {
      return;
    }
  }
  NotifyAll();
}

void ShardMapRegistry::Publish(ShardMap next) {
  {
    MutexLock lock(mu_);
    const ShardMap& cur = *maps_.back();
    if (next.version() <= cur.version() || next.num_shards() != cur.num_shards()) {
      std::fprintf(stderr, "ShardMapRegistry: publish of version %llu over %llu rejected\n",
                   static_cast<unsigned long long>(next.version()),
                   static_cast<unsigned long long>(cur.version()));
      std::abort();
    }
    maps_.push_back(std::make_unique<const ShardMap>(std::move(next)));
    frozen_.clear();
  }
  NotifyAll();
}

void ShardMapRegistry::Subscribe(std::function<void()> listener) {
  MutexLock lock(mu_);
  listeners_.push_back(std::move(listener));
}

void ShardMapRegistry::NotifyAll() {
  // Index loop re-checking size under the lock each round, not iterators: a listener
  // re-dispatching a queued operation may complete it synchronously, and the completion may
  // AddClient()/Subscribe(), growing the vector. The copy of the std::function lets the
  // callback run unlocked (it may re-enter this registry).
  for (size_t i = 0;; ++i) {
    std::function<void()> listener;
    {
      MutexLock lock(mu_);
      if (i >= listeners_.size()) {
        break;
      }
      listener = listeners_[i];
    }
    listener();
  }
}

}  // namespace bft

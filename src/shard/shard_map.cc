#include "src/shard/shard_map.h"

#include <cstdio>
#include <cstdlib>

namespace bft {

namespace {
// Map invariants hold in every build mode (NDEBUG included): a malformed map silently
// misroutes keys, which no downstream check would catch.
void Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "ShardMap: invalid map: %s\n", what);
    std::abort();
  }
}
}  // namespace

ShardMap::ShardMap(size_t num_shards) : num_shards_(num_shards), version_(1) {
  Require(num_shards_ >= 1, "num_shards must be >= 1");
  owner_.resize(kNumBuckets);
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    owner_[b] = static_cast<uint32_t>(b % num_shards_);
  }
}

ShardMap::ShardMap(size_t num_shards, uint64_t version, std::vector<uint32_t> owner)
    : num_shards_(num_shards), version_(version), owner_(std::move(owner)) {
  Require(num_shards_ >= 1, "num_shards must be >= 1");
  Require(owner_.size() == kNumBuckets, "owner vector must cover every bucket");
  for (uint32_t shard : owner_) {
    Require(shard < num_shards_, "bucket owned by out-of-range shard");
  }
}

uint64_t ShardMap::HashKey(ByteView key) {
  // FNV-1a 64-bit.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t byte : key) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<uint32_t> ShardMap::BucketsOf(size_t shard) const {
  std::vector<uint32_t> out;
  for (uint32_t b = 0; b < kNumBuckets; ++b) {
    if (owner_[b] == shard) {
      out.push_back(b);
    }
  }
  return out;
}

ShardMap ShardMap::WithBucketMoved(uint32_t bucket, size_t new_shard) const {
  Require(bucket < kNumBuckets, "bucket out of range");
  Require(new_shard < num_shards_, "target shard out of range");
  std::vector<uint32_t> owner = owner_;
  owner[bucket] = static_cast<uint32_t>(new_shard);
  return ShardMap(num_shards_, version_ + 1, std::move(owner));
}

}  // namespace bft

// Per-bucket load and size statistics feeding the auto-rebalancer (src/shard/rebalance.h).
//
// The registry is the harness-side collection point for the Service keyed-op upcall
// (BucketStatsSink): every executed PUT/GET/DEL increments its ring bucket's op counter and
// adjusts the bucket's approximate resident byte size. One replica per group feeds the shared
// registry (wired by ShardedCluster), so each client op is counted once — approximately:
// tentative executions rolled back by a view change re-execute and double-count, and a
// counting replica that crashes stops contributing. That is fine by construction: the
// rebalancer needs relative heat, not an audit trail. The authoritative per-bucket size lives
// in replicated state and is queryable via the admin REB_STATS op.
//
// Epoch snapshots with exponential decay separate *hot* buckets from merely *large* ones:
// load[b] = decay * load[b] + ops-this-epoch[b], folded each time the controller snapshots.
// A bucket that stopped receiving traffic decays toward zero within a few epochs no matter
// how many bytes it holds; resident bytes are tracked separately and never decay.
#ifndef SRC_SHARD_BUCKET_STATS_H_
#define SRC_SHARD_BUCKET_STATS_H_

#include <cstdint>
#include <vector>

#include "src/common/key_ring.h"
#include "src/service/service.h"

namespace bft {

class ShardMap;

class BucketStatsRegistry final : public BucketStatsSink {
 public:
  // `decay` is the per-epoch retention of past load in [0, 1): 0 forgets everything each
  // epoch (jumpy), 0.5 halves history each epoch (the default: a bucket's influence fades
  // ~97% after five idle epochs).
  explicit BucketStatsRegistry(double decay = 0.5);

  // BucketStatsSink — the hot path: two array increments, no allocation.
  void RecordKeyedOp(uint32_t bucket, size_t op_bytes, int64_t resident_delta) override;

  struct Snapshot {
    uint64_t epoch = 0;
    std::vector<double> load;             // decayed ops per bucket (kNumBuckets entries)
    std::vector<uint64_t> resident_bytes; // approximate stored payload bytes per bucket
    double total_load = 0;

    // Sum of bucket loads per owning shard under `map` (the planner's imbalance input).
    std::vector<double> LoadPerShard(const ShardMap& map) const;
  };

  // Folds the current epoch's counters into the decayed load, zeroes them, advances the
  // epoch, and returns the result. The controller calls this once per planning round, making
  // the epoch length exactly the planning interval.
  Snapshot SnapshotEpoch();

  // Raw accessors (tests and diagnostics; SnapshotEpoch is the consumer API).
  uint64_t epoch_ops(uint32_t bucket) const { return epoch_ops_[bucket]; }
  uint64_t resident_bytes(uint32_t bucket) const;
  uint64_t lifetime_ops() const { return lifetime_ops_; }
  uint64_t epoch() const { return epoch_; }

 private:
  double decay_;
  uint64_t epoch_ = 0;
  uint64_t lifetime_ops_ = 0;
  std::vector<uint64_t> epoch_ops_;  // ops since the last snapshot
  std::vector<double> load_;         // decayed load through the last snapshot
  std::vector<int64_t> resident_;    // signed accumulator; clamped to >= 0 on read
};

}  // namespace bft

#endif  // SRC_SHARD_BUCKET_STATS_H_

#include "src/shard/bucket_stats.h"

#include "src/shard/shard_map.h"

namespace bft {

BucketStatsRegistry::BucketStatsRegistry(double decay)
    : decay_(decay),
      epoch_ops_(KeyRing::kNumBuckets, 0),
      load_(KeyRing::kNumBuckets, 0.0),
      resident_(KeyRing::kNumBuckets, 0) {}

void BucketStatsRegistry::RecordKeyedOp(uint32_t bucket, size_t op_bytes,
                                        int64_t resident_delta) {
  (void)op_bytes;  // op sizes are uniform in the current workloads; heat is op count
  ++epoch_ops_[bucket];
  ++lifetime_ops_;
  resident_[bucket] += resident_delta;
}

uint64_t BucketStatsRegistry::resident_bytes(uint32_t bucket) const {
  // The accumulator can dip below zero transiently (a rolled-back tentative delete
  // re-executing, a counting replica that missed the matching insert); size is a physical
  // quantity, clamp on read.
  return resident_[bucket] > 0 ? static_cast<uint64_t>(resident_[bucket]) : 0;
}

BucketStatsRegistry::Snapshot BucketStatsRegistry::SnapshotEpoch() {
  Snapshot snap;
  snap.load.resize(KeyRing::kNumBuckets);
  snap.resident_bytes.resize(KeyRing::kNumBuckets);
  for (uint32_t b = 0; b < KeyRing::kNumBuckets; ++b) {
    load_[b] = decay_ * load_[b] + static_cast<double>(epoch_ops_[b]);
    epoch_ops_[b] = 0;
    snap.load[b] = load_[b];
    snap.total_load += load_[b];
    snap.resident_bytes[b] = resident_bytes(b);
  }
  snap.epoch = ++epoch_;
  return snap;
}

std::vector<double> BucketStatsRegistry::Snapshot::LoadPerShard(const ShardMap& map) const {
  std::vector<double> per_shard(map.num_shards(), 0.0);
  for (uint32_t b = 0; b < KeyRing::kNumBuckets; ++b) {
    per_shard[map.ShardForBucket(b)] += load[b];
  }
  return per_shard;
}

}  // namespace bft

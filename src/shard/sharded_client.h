// Client-side shard router.
//
// A ShardedClient holds one PBFT client endpoint per replica group and routes each keyed
// operation to the group owning its key (via the ShardMap). Reply-certificate semantics are
// preserved per group: every endpoint is a full Client that collects f+1 / 2f+1 matching
// replies from *its* group before delivering a result. Unkeyed operations route to shard 0.
//
// Like the underlying Client, at most one operation may be outstanding per endpoint; the
// closed-loop workloads issue one operation at a time per ShardedClient, which trivially
// satisfies this.
#ifndef SRC_SHARD_SHARDED_CLIENT_H_
#define SRC_SHARD_SHARDED_CLIENT_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/client.h"
#include "src/shard/shard_map.h"

namespace bft {

class ShardedClient {
 public:
  using Callback = Client::Callback;
  // Extracts the routing key from an operation (Service::KeyOf); nullopt = unkeyed.
  using KeyExtractor = std::function<std::optional<Bytes>(ByteView op)>;

  // `endpoints[s]` must be a client of replica group s; one endpoint per shard in the map.
  ShardedClient(const ShardMap* map, KeyExtractor extract_key,
                std::vector<std::unique_ptr<Client>> endpoints);

  size_t num_shards() const { return endpoints_.size(); }
  Client* endpoint(size_t shard) { return endpoints_[shard].get(); }

  // The shard `op` routes to: its key's owner, or shard 0 for unkeyed ops.
  size_t ShardOf(ByteView op) const;

  // Routes and issues one operation. The target endpoint must not be busy.
  void Invoke(Bytes op, bool read_only, Callback callback);

  bool busy(size_t shard) const { return endpoints_[shard]->busy(); }

  // Latency of the most recently completed operation, whichever shard served it.
  SimTime last_latency() const { return last_latency_; }

  // Sums of the per-endpoint counters (latency fields are sums, not means).
  Client::Stats AggregateStats() const;

 private:
  const ShardMap* map_;
  KeyExtractor extract_key_;
  std::vector<std::unique_ptr<Client>> endpoints_;
  SimTime last_latency_ = 0;
};

}  // namespace bft

#endif  // SRC_SHARD_SHARDED_CLIENT_H_

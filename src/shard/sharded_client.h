// Client-side shard router with version-aware routing.
//
// A ShardedClient holds one PBFT client endpoint per replica group and routes each keyed
// operation to the group owning its key under the *current* ShardMap version, read from the
// shared ShardMapRegistry at dispatch time. Reply-certificate semantics are preserved per
// group: every endpoint is a full Client that collects f+1 / 2f+1 matching replies from
// *its* group before delivering a result.
//
// Keyless policy (explicit, counted): operations for which the key extractor returns nullopt
// cannot be partitioned, so they are pinned to shard 0 — the "home" group, which exists at
// every shard count. Each such op increments the keyless counter surfaced through
// AggregateStats().keyless_ops; a workload that is supposed to be fully keyed can assert the
// counter stays zero.
//
// Reconfiguration awareness (the live-migration client side, src/shard/migration.h):
//   - Ops against a *frozen* bucket (one a migration is currently moving) are queued inside
//     the router and re-dispatched when the registry publishes the new map (or lifts the
//     freeze after an abort). The caller's callback fires once, after the re-dispatched op
//     completes at the bucket's final owner.
//   - A stale-owner reply (Service::StaleOwnerResult) from a group that no longer owns the
//     op's bucket triggers a map refresh: the op re-enters routing under the registry's
//     current state — parked if the bucket is mid-freeze (draining on publish/unfreeze),
//     dispatched to the current owner otherwise (which also serves the rolled-back-migration
//     case, where the un-sealed original owner answers the retry). The misdirected marker
//     result is never delivered to the caller.
//
// Like the underlying Client, at most one operation may be outstanding per endpoint; when
// migrations may run concurrently, the safe contract is at most one outstanding operation
// per ShardedClient (a queued op may re-dispatch to any endpoint). The closed-loop workloads
// issue one operation at a time per ShardedClient, which satisfies both.
#ifndef SRC_SHARD_SHARDED_CLIENT_H_
#define SRC_SHARD_SHARDED_CLIENT_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/client.h"
#include "src/shard/shard_map.h"

namespace bft {

class ShardedClient {
 public:
  using Callback = Client::Callback;
  // Extracts the routing key from an operation (Service::KeyOf); nullopt = unkeyed.
  using KeyExtractor = std::function<std::optional<Bytes>(ByteView op)>;

  // `endpoints[s]` must be a client of replica group s; one endpoint per shard in the
  // registry's current map. The registry must outlive the client.
  ShardedClient(ShardMapRegistry* registry, KeyExtractor extract_key,
                std::vector<std::unique_ptr<Client>> endpoints);

  size_t num_shards() const { return endpoints_.size(); }
  Client* endpoint(size_t shard) { return endpoints_[shard].get(); }

  // The shard `op` routes to under the current map: its key's owner, or shard 0 for keyless
  // ops (see the keyless policy above). Diagnostic only — does not count or queue.
  size_t ShardOf(ByteView op) const;

  // Routes and issues one operation (possibly queueing it across a freeze window; see above).
  void Invoke(Bytes op, bool read_only, Callback callback);

  bool busy(size_t shard) const { return endpoints_[shard]->busy(); }

  // Latency of the most recently completed operation, whichever shard served it. For an op
  // that was queued or re-routed, this is the final leg only (time at the serving group).
  SimTime last_latency() const { return last_latency_; }

  // The shard that served the most recently completed operation (per-group latency
  // attribution in the workloads).
  size_t last_shard() const { return last_shard_; }

  // Router-level counters (migration/routing observability; all cumulative).
  struct RouterStats {
    uint64_t keyless_ops = 0;     // ops pinned to shard 0 by the keyless policy
    uint64_t stale_reroutes = 0;  // stale-owner replies intercepted and re-routed
    uint64_t frozen_queued = 0;   // ops that waited out a freeze window in the queue
  };
  const RouterStats& router_stats() const { return router_stats_; }
  size_t pending_queued() const { return queue_.size(); }

  // Sums of the per-endpoint counters (latency fields are sums, not means), plus the
  // router's keyless_ops count. Stale-routed legs are subtracted, so ops_completed counts
  // each caller-visible completion exactly once even across migrations.
  Client::Stats AggregateStats() const;

 private:
  struct QueuedOp {
    Bytes op;
    bool read_only;
    Callback callback;
  };

  // The routing decision for one op under the registry's current state — the single home of
  // the keyless policy, the freeze check, and the bucket->shard lookup (Invoke, ShardOf, and
  // the queue drain all route through it).
  struct Route {
    bool keyless = false;
    bool frozen = false;
    size_t shard = 0;
  };
  Route RouteOf(ByteView op) const;

  // Dispatches to `shard`, wrapping the callback with stale-owner interception.
  void Dispatch(size_t shard, Bytes op, bool read_only, Callback callback);
  // Registry listener: re-dispatches queued ops whose buckets thawed.
  void OnMapChanged();

  ShardMapRegistry* registry_;
  KeyExtractor extract_key_;
  std::vector<std::unique_ptr<Client>> endpoints_;
  std::deque<QueuedOp> queue_;
  RouterStats router_stats_;
  SimTime stale_leg_latency_ = 0;  // endpoint latency of intercepted stale legs (see .cc)
  SimTime last_latency_ = 0;
  size_t last_shard_ = 0;
};

}  // namespace bft

#endif  // SRC_SHARD_SHARDED_CLIENT_H_

#include "src/model/perf_model.h"

#include <algorithm>

namespace bft {

namespace {
// Fixed-size header length over which MACs are computed (Fig 6-1: MACs cover only the header).
constexpr size_t kHeaderLen = 48;
}  // namespace

SimTime PerfModel::PredictLatency(const OpParams& p) const {
  const int n = p.n;
  const int f = (n - 1) / 3;
  const size_t req = RequestBytes(p.arg_bytes, p.mode, n);
  const size_t reply_full = ReplyBytes(p.result_bytes, p.mode, p.digest_replies, true);
  const size_t reply_digest = ReplyBytes(p.result_bytes, p.mode, p.digest_replies, false);

  // Client-side request preparation: digest the operation, authenticate the header (one MAC
  // per replica in MAC mode — the client shares one key with each replica), put it on the wire.
  SimTime t = DigestCost(p.arg_bytes);
  t += p.mode == AuthMode::kMac ? static_cast<SimTime>(n) * MacCost(kHeaderLen) : SignCost();
  t += net.SendCpuCost(req);
  t += net.WireLatency(req) + net.jitter_ns / 2;

  if (p.read_only) {
    // Single round trip (Section 7.3.1): replica executes immediately and replies; the client
    // needs a quorum certificate of matching replies.
    t += net.RecvCpuCost(req) + VerifyAuthCost(p.mode, kHeaderLen) + DigestCost(p.arg_bytes);
    t += DigestCost(p.result_bytes);  // reply digest
    t += p.mode == AuthMode::kMac ? MacCost(kHeaderLen) : SignCost();
    t += net.SendCpuCost(reply_full);
    t += net.WireLatency(reply_full) + net.jitter_ns / 2;
    // Client drains 2f+1 replies serially and checks them.
    int quorum = 2 * f + 1;
    t += static_cast<SimTime>(quorum - 1) * net.RecvCpuCost(reply_digest);
    t += net.RecvCpuCost(reply_full);
    t += static_cast<SimTime>(quorum) * VerifyAuthCost(p.mode, kHeaderLen);
    t += DigestCost(p.result_bytes);
    return t;
  }

  // Separate transmission (Section 5.1.5): large requests are multicast by the client, so the
  // pre-prepare carries only their digest and the argument crosses the network once.
  const bool separate = p.arg_bytes > 255;
  const size_t pp = PrePrepareBytes(separate ? 16 : p.arg_bytes, p.mode, n);
  const size_t prep = PrepareBytes(p.mode, n);

  // Primary: accept the request, assign a sequence number, multicast the pre-prepare.
  t += net.RecvCpuCost(req) + VerifyAuthCost(p.mode, kHeaderLen) + DigestCost(p.arg_bytes);
  t += DigestCost(pp);  // pre-prepare payload digest
  t += GenAuthCost(p.mode, kHeaderLen, n);
  t += net.SendCpuCost(pp);
  t += net.WireLatency(pp) + net.jitter_ns / 2;

  // Backup: accept pre-prepare, multicast prepare. With separate transmission the backup
  // already received and digested the request directly from the client, in parallel.
  t += net.RecvCpuCost(pp) + VerifyAuthCost(p.mode, kHeaderLen);
  if (!separate) {
    t += DigestCost(p.arg_bytes);
  }
  t += GenAuthCost(p.mode, kHeaderLen, n);
  t += net.SendCpuCost(prep);
  t += net.WireLatency(prep) + net.jitter_ns / 2;

  // Collecting the prepared certificate: 2f prepares arrive roughly in parallel; the replica's
  // CPU drains them serially.
  t += static_cast<SimTime>(2 * f) *
       (net.RecvCpuCost(prep) + VerifyAuthCost(p.mode, kHeaderLen));

  if (!p.tentative_execution) {
    // Commit phase adds one more all-to-all round (Section 7.3.2).
    const size_t com = CommitBytes(p.mode, n);
    t += GenAuthCost(p.mode, kHeaderLen, n) + net.SendCpuCost(com);
    t += net.WireLatency(com) + net.jitter_ns / 2;
    t += static_cast<SimTime>(2 * f) *
         (net.RecvCpuCost(com) + VerifyAuthCost(p.mode, kHeaderLen));
  }

  // Execute and reply.
  t += DigestCost(p.result_bytes);
  t += p.mode == AuthMode::kMac ? MacCost(kHeaderLen) : SignCost();
  t += net.SendCpuCost(reply_full);
  t += net.WireLatency(reply_full) + net.jitter_ns / 2;

  // Client collects the reply certificate: 2f+1 matching replies with tentative execution,
  // f+1 without.
  int needed = p.tentative_execution ? 2 * f + 1 : f + 1;
  t += static_cast<SimTime>(needed - 1) * net.RecvCpuCost(reply_digest);
  t += net.RecvCpuCost(reply_full);
  t += static_cast<SimTime>(needed) * VerifyAuthCost(p.mode, kHeaderLen);
  t += DigestCost(p.result_bytes);
  return t;
}

double PerfModel::PredictThroughput(const OpParams& p) const {
  const int n = p.n;
  const int f = (n - 1) / 3;
  const size_t b = std::max<size_t>(1, p.batch_size);
  const size_t req = RequestBytes(p.arg_bytes, p.mode, n);
  const size_t reply_full = ReplyBytes(p.result_bytes, p.mode, p.digest_replies, true);
  const size_t reply_digest = ReplyBytes(p.result_bytes, p.mode, p.digest_replies, false);
  // On average a replica is the designated replier for 1/n of the requests.
  const double reply_bytes_avg =
      (static_cast<double>(reply_full) + static_cast<double>(n - 1) * reply_digest) /
      static_cast<double>(n);
  const SimTime reply_send =
      net.SendCpuCost(static_cast<size_t>(reply_bytes_avg)) + DigestCost(p.result_bytes) +
      (p.mode == AuthMode::kMac ? MacCost(kHeaderLen) : SignCost());
  const SimTime per_request_rx =
      net.RecvCpuCost(req) + VerifyAuthCost(p.mode, kHeaderLen) + DigestCost(p.arg_bytes);

  if (p.read_only) {
    // Every replica executes every read-only request; per-replica cost bounds throughput.
    SimTime per_op = per_request_rx + reply_send;
    return static_cast<double>(kSecond) / static_cast<double>(per_op);
  }

  const size_t pp = PrePrepareBytes(p.arg_bytes * b, p.mode, n);
  const size_t prep = PrepareBytes(p.mode, n);
  const size_t com = CommitBytes(p.mode, n);

  // Primary CPU per batch (Section 7.4.2). Commit traffic is always processed — tentative
  // execution moves the reply off the critical latency path but the commit phase still runs.
  SimTime primary = static_cast<SimTime>(b) * per_request_rx;
  primary += DigestCost(pp) + GenAuthCost(p.mode, kHeaderLen, n) + net.SendCpuCost(pp);
  primary += static_cast<SimTime>(2 * f) *
             (net.RecvCpuCost(prep) + VerifyAuthCost(p.mode, kHeaderLen));
  primary += GenAuthCost(p.mode, kHeaderLen, n) + net.SendCpuCost(com);
  primary += static_cast<SimTime>(2 * f + 1) *
             (net.RecvCpuCost(com) + VerifyAuthCost(p.mode, kHeaderLen));
  primary += static_cast<SimTime>(b) * reply_send;

  // Backup CPU per batch: receives the pre-prepare (with b inlined requests) instead of b
  // requests, sends a prepare, receives 2f prepares from peers, exchanges commits.
  SimTime backup = net.RecvCpuCost(pp) + VerifyAuthCost(p.mode, kHeaderLen) +
                   static_cast<SimTime>(b) * DigestCost(p.arg_bytes);
  backup += GenAuthCost(p.mode, kHeaderLen, n) + net.SendCpuCost(prep);
  backup += static_cast<SimTime>(2 * f) *
            (net.RecvCpuCost(prep) + VerifyAuthCost(p.mode, kHeaderLen));
  backup += GenAuthCost(p.mode, kHeaderLen, n) + net.SendCpuCost(com);
  backup += static_cast<SimTime>(2 * f + 1) *
            (net.RecvCpuCost(com) + VerifyAuthCost(p.mode, kHeaderLen));
  backup += static_cast<SimTime>(b) * reply_send;

  SimTime bottleneck = std::max(primary, backup);
  return static_cast<double>(b) * static_cast<double>(kSecond) /
         static_cast<double>(bottleneck);
}

}  // namespace bft

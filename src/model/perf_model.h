// Analytic performance model (thesis Chapter 7).
//
// The model is built from three component models — digest computation D(l), MAC computation
// M(l), and communication C(l) — and predicts the latency and throughput of read-only and
// read-write operations by summing costs along the protocol's critical path. The same
// constants drive the simulator's CPU charging, so bench_model_vs_measured (E12) compares the
// closed-form prediction against the simulated measurement exactly as Chapter 8 compares the
// model against the real implementation.
//
// Constant choices (documented substitutions for the paper's measured PII-600 values):
//   - digest: fixed 1.0 us + 5 ns/byte          (MD5-class throughput)
//   - MAC:    fixed 0.5 us + 1.5 ns/byte        (UMAC32-class; headers are fixed-size)
//   - sign:   29.3 ms, verify: 84 us            (Rabin-1024-class asymmetry, ~3 orders of
//                                                magnitude slower than a MAC, which is the
//                                                property the BFT vs BFT-PK comparison needs)
//   - network: see NetworkOptions (100 Mb/s switched Ethernet class).
#ifndef SRC_MODEL_PERF_MODEL_H_
#define SRC_MODEL_PERF_MODEL_H_

#include <cstddef>

#include "src/core/clock.h"

namespace bft {

enum class AuthMode {
  kMac,        // BFT: authenticators (vectors of MACs)
  kSignature,  // BFT-PK: public-key signatures on every message
};

// Cost/latency model of the wire (100 Mb/s switched Ethernet class, the paper's testbed).
// The simulated Network (src/sim/) schedules deliveries and charges CPU from exactly these
// constants; the analytic model below sums the same constants along the critical path.
struct NetworkOptions {
  // Wire model: latency(l) = propagation + l * per_byte, plus uniform jitter.
  SimTime propagation_ns = 35 * kMicrosecond;       // switch + stack floor
  double wire_per_byte_ns = 90.0;                   // ~100 Mb/s Ethernet (0.09 us/byte)
  SimTime jitter_ns = 5 * kMicrosecond;             // uniform [0, jitter)
  // CPU cost charged to sender/receiver per message (syscall + driver + copies).
  SimTime send_cpu_fixed_ns = 12 * kMicrosecond;
  double send_cpu_per_byte_ns = 2.5;                // one copy + checksum
  SimTime recv_cpu_fixed_ns = 12 * kMicrosecond;
  double recv_cpu_per_byte_ns = 2.5;
  double drop_probability = 0.0;                    // global loss rate
  double duplicate_probability = 0.0;

  // CPU cost of putting `bytes` on the wire / taking them off.
  SimTime SendCpuCost(size_t bytes) const {
    return send_cpu_fixed_ns +
           static_cast<SimTime>(send_cpu_per_byte_ns * static_cast<double>(bytes));
  }
  SimTime RecvCpuCost(size_t bytes) const {
    return recv_cpu_fixed_ns +
           static_cast<SimTime>(recv_cpu_per_byte_ns * static_cast<double>(bytes));
  }
  SimTime WireLatency(size_t bytes) const {
    return propagation_ns + static_cast<SimTime>(wire_per_byte_ns * static_cast<double>(bytes));
  }
};

struct PerfModel {
  // --- Component model constants -----------------------------------------------------------
  SimTime digest_fixed_ns = 1 * kMicrosecond;
  double digest_per_byte_ns = 5.0;

  SimTime mac_fixed_ns = 500;  // 0.5 us
  double mac_per_byte_ns = 1.5;

  SimTime sign_ns = 29'300 * kMicrosecond;   // 29.3 ms
  SimTime sig_verify_ns = 84 * kMicrosecond;  // 84 us

  NetworkOptions net;

  // --- Component models (Section 7.1) ------------------------------------------------------
  SimTime DigestCost(size_t len) const {
    return digest_fixed_ns + static_cast<SimTime>(digest_per_byte_ns * static_cast<double>(len));
  }
  SimTime MacCost(size_t len) const {
    return mac_fixed_ns + static_cast<SimTime>(mac_per_byte_ns * static_cast<double>(len));
  }
  // Generating an authenticator = one MAC per other replica; verifying = one MAC.
  SimTime AuthenticatorGenCost(size_t header_len, int n) const {
    return static_cast<SimTime>(n - 1) * MacCost(header_len);
  }
  SimTime SignCost() const { return sign_ns; }
  SimTime SigVerifyCost() const { return sig_verify_ns; }

  // Communication model: one-way time for an l-byte message between two idle nodes.
  SimTime OneWay(size_t len) const {
    return net.SendCpuCost(len) + net.WireLatency(len) + net.jitter_ns / 2 +
           net.RecvCpuCost(len);
  }

  // --- Wire-size estimates (mirrors core/message encoding closely enough for prediction) ----
  size_t AuthBytes(AuthMode mode, int n) const {
    return mode == AuthMode::kMac ? 8 * static_cast<size_t>(n) : 128;
  }
  size_t RequestBytes(size_t arg, AuthMode mode, int n) const {
    return 56 + arg + AuthBytes(mode, n);
  }
  size_t ReplyBytes(size_t result, AuthMode mode, bool digest_replies, bool designated) const {
    size_t body = (digest_replies && !designated) ? 0 : result;
    return 48 + body + (mode == AuthMode::kMac ? 8 : 128);
  }
  size_t PrePrepareBytes(size_t inlined_arg, AuthMode mode, int n) const {
    return 64 + inlined_arg + AuthBytes(mode, n);
  }
  size_t PrepareBytes(AuthMode mode, int n) const { return 48 + AuthBytes(mode, n); }
  size_t CommitBytes(AuthMode mode, int n) const { return 48 + AuthBytes(mode, n); }

  // Cost of authenticating one outgoing protocol message / verifying one incoming one.
  SimTime GenAuthCost(AuthMode mode, size_t header_len, int n) const {
    return mode == AuthMode::kMac ? AuthenticatorGenCost(header_len, n) : SignCost();
  }
  SimTime VerifyAuthCost(AuthMode mode, size_t header_len) const {
    return mode == AuthMode::kMac ? MacCost(header_len) : SigVerifyCost();
  }

  // --- Operation-level predictions (Sections 7.3, 7.4) -------------------------------------
  struct OpParams {
    int n = 4;                   // replicas
    size_t arg_bytes = 0;        // operation argument size
    size_t result_bytes = 0;     // operation result size
    AuthMode mode = AuthMode::kMac;
    bool tentative_execution = true;
    bool digest_replies = true;
    bool read_only = false;
    size_t batch_size = 1;       // requests per protocol instance (throughput model)
  };

  // Predicted latency (ns of simulated time) for a single operation issued by an otherwise
  // idle client against idle replicas (Section 7.3).
  SimTime PredictLatency(const OpParams& p) const;

  // Predicted saturated throughput in operations per simulated second (Section 7.4): the
  // bottleneck is the primary's (read-write) or any replica's (read-only) CPU.
  double PredictThroughput(const OpParams& p) const;
};

}  // namespace bft

#endif  // SRC_MODEL_PERF_MODEL_H_

#include "src/workload/cluster.h"

namespace bft {

Cluster::Cluster(ClusterOptions options, ServiceFactory factory)
    : options_(options), sim_(options.seed), net_(&sim_, options.model.net) {
  for (int i = 0; i < options_.config.n; ++i) {
    replicas_.push_back(std::make_unique<Replica>(
        &sim_, &net_, static_cast<NodeId>(i), &options_.config, &options_.model, &directory_,
        factory(static_cast<NodeId>(i)), options_.seed + static_cast<uint64_t>(i)));
  }
  for (auto& replica : replicas_) {
    replica->Start();
  }
}

Cluster::~Cluster() = default;

Client* Cluster::AddClient() {
  NodeId id = next_client_id_++;
  clients_.push_back(std::make_unique<Client>(&sim_, &net_, id, &options_.config,
                                              &options_.model, &directory_,
                                              options_.seed ^ (id * 0x2545f4914f6cdd1dULL)));
  return clients_.back().get();
}

std::optional<Bytes> Cluster::Execute(Client* client, Bytes op, bool read_only,
                                      SimTime timeout) {
  // Shared, not stack-captured: on timeout the client still holds the callback, which may
  // fire during a later simulator run after this frame is gone.
  auto result = std::make_shared<std::optional<Bytes>>();
  client->Invoke(std::move(op), read_only, [result](Bytes r) { *result = std::move(r); });
  sim_.RunUntilCondition([result]() { return result->has_value(); }, sim_.Now() + timeout);
  return *result;
}

bool Cluster::WaitForExecution(SeqNo seq, SimTime timeout) {
  return sim_.RunUntilCondition(
      [this, seq]() {
        for (const auto& replica : replicas_) {
          if (!replica->crashed() && replica->last_executed() < seq) {
            return false;
          }
        }
        return true;
      },
      sim_.Now() + timeout);
}

}  // namespace bft

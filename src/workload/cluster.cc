#include "src/workload/cluster.h"

#include "src/sim/node.h"
#include "src/sim/sim_harness.h"

namespace bft {

Cluster::Cluster(ClusterOptions options, ServiceFactory factory)
    : options_(options), sim_(options.seed), net_(&sim_, options.model.net) {
  tracer_.InstallMetrics(&metrics_);
  for (int i = 0; i < options_.config.n; ++i) {
    NodeId id = static_cast<NodeId>(i);
    replicas_.push_back(std::make_unique<Replica>(
        std::make_unique<Node>(&sim_, &net_, id), &options_.config, &options_.model,
        &directory_, factory(id), options_.seed + static_cast<uint64_t>(i)));
  }
  for (auto& replica : replicas_) {
    replica->InstallObservability(&metrics_, &tracer_);
    replica->Start();
  }
}

Cluster::~Cluster() = default;

Client* Cluster::AddClient() {
  NodeId id = next_client_id_++;
  clients_.push_back(std::make_unique<Client>(std::make_unique<Node>(&sim_, &net_, id),
                                              &options_.config, &options_.model, &directory_,
                                              options_.seed ^ (id * 0x2545f4914f6cdd1dULL)));
  clients_.back()->InstallObservability(&metrics_, &tracer_);
  return clients_.back().get();
}

std::optional<Bytes> Cluster::Execute(Client* client, Bytes op, bool read_only,
                                      SimTime timeout) {
  return sim_harness::Execute(sim_, client, std::move(op), read_only, timeout);
}

bool Cluster::WaitForExecution(SeqNo seq, SimTime timeout) {
  return sim_harness::WaitForExecution(sim_, replicas_, seq, timeout);
}

NodeId Cluster::CurrentPrimary() {
  return sim_harness::CurrentPrimary(options_.config, replicas_);
}

}  // namespace bft

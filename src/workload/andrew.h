// Andrew-style file-system benchmark (the workload of thesis Section 8.6).
//
// Five phases over BFS, modelled on the modified Andrew benchmark the paper uses:
//   1. mkdir  — create the directory tree
//   2. copy   — create and write the source files
//   3. stat   — examine the status of every file (read-only)
//   4. read   — read every byte of every file (read-only)
//   5. make   — "compile": read all sources, write derived objects (mixed)
//
// The generator emits a deterministic operation list per phase; the runners execute it
// against a replicated cluster and against an unreplicated "NFS-std" baseline (the same
// service behind one simulated server), reporting per-phase simulated time. The paper's
// headline — replicated BFS within -2%..+24% of the unreplicated server — is a ratio of
// exactly these two runs.
#ifndef SRC_WORKLOAD_ANDREW_H_
#define SRC_WORKLOAD_ANDREW_H_

#include <array>
#include <string>
#include <vector>

#include "src/bfs/bfs_service.h"
#include "src/workload/cluster.h"

namespace bft {

struct AndrewScale {
  int dirs = 8;
  int files_per_dir = 4;
  size_t file_size = 4096;      // bytes, written in 1 KB ops like NFS would
  size_t write_chunk = 1024;
  int objects = 8;              // outputs of the "make" phase
  size_t object_size = 2048;
  // Per-op client-side cost paid identically in both systems: the kernel NFS loopback client,
  // VFS layer, and benchmark process. The paper's numbers include this constant on both sides
  // of the comparison, which is what keeps the relative overhead small.
  SimTime client_kernel_cost = 200 * kMicrosecond;
};

struct AndrewResult {
  static constexpr int kPhases = 5;
  std::array<SimTime, kPhases> phase_time{};
  std::array<uint64_t, kPhases> phase_ops{};
  SimTime total() const {
    SimTime t = 0;
    for (SimTime p : phase_time) {
      t += p;
    }
    return t;
  }
  static const char* PhaseName(int i);
};

// One benchmark operation: the BFS op plus whether it goes down the read-only path.
struct AndrewOp {
  Bytes op;
  bool read_only = false;
  int phase = 0;
};

// Builds the full deterministic op list. Ops that need inode numbers from earlier results use
// the deterministic inode allocation of BfsService (lowest free index), precomputed here.
std::vector<AndrewOp> BuildAndrewOps(const AndrewScale& scale);

// Runs the workload through a replicated cluster with a single client.
AndrewResult RunAndrewReplicated(Cluster* cluster, Client* client, const AndrewScale& scale,
                                 SimTime op_timeout = 120 * kSecond);

// Runs the same workload against an unreplicated simulated NFS server: one round trip and one
// execution per op, using the same cost model. This is the "NFS-std" baseline.
AndrewResult RunAndrewUnreplicated(const ReplicaConfig& config, const PerfModel& model,
                                   const AndrewScale& scale, uint64_t seed);

}  // namespace bft

#endif  // SRC_WORKLOAD_ANDREW_H_

// Test/benchmark harness: a replica group plus clients on one simulated network.
#ifndef SRC_WORKLOAD_CLUSTER_H_
#define SRC_WORKLOAD_CLUSTER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/client.h"
#include "src/core/replica.h"
#include "src/model/perf_model.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/network.h"

namespace bft {

using ServiceFactory = std::function<std::unique_ptr<Service>(NodeId replica)>;

struct ClusterOptions {
  ReplicaConfig config;
  PerfModel model;
  uint64_t seed = 42;
};

class Cluster {
 public:
  Cluster(ClusterOptions options, ServiceFactory factory);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  const ReplicaConfig& config() const { return options_.config; }
  const PerfModel& model() const { return options_.model; }

  Replica* replica(int i) { return replicas_[static_cast<size_t>(i)].get(); }
  int num_replicas() const { return options_.config.n; }

  Client* AddClient();
  Client* client(size_t i) { return clients_[i].get(); }
  size_t num_clients() const { return clients_.size(); }

  // Synchronously executes one operation through `client` (runs the simulator until the reply
  // certificate completes or `timeout` of simulated time passes).
  std::optional<Bytes> Execute(Client* client, Bytes op, bool read_only = false,
                               SimTime timeout = 30 * kSecond);

  // Runs the simulator until every replica's last_executed() reaches `seq` (or timeout).
  bool WaitForExecution(SeqNo seq, SimTime timeout = 30 * kSecond);

  // Node id of the current primary according to the first live replica.
  NodeId CurrentPrimary();

  // Harness-owned observability: every replica and client is re-installed here at
  // construction, so exports see only this cluster (not the process-wide default, which
  // aggregates every component ever built in the process).
  MetricsRegistry& metrics() { return metrics_; }
  RequestTracer& tracer() { return tracer_; }

  // The /healthz document for this group (single-threaded harness: call between sim steps).
  HealthSnapshot Health() const {
    HealthSnapshot snapshot;
    for (const auto& r : replicas_) {
      ReplicaHealth h = r->Health();
      h.running = !r->crashed();
      snapshot.replicas.push_back(h);
    }
    return snapshot;
  }

 private:
  ClusterOptions options_;
  // Declared before the replicas/clients so it is destroyed after them: their metric
  // pointers (and registered probes) reference this registry until they die.
  MetricsRegistry metrics_;
  RequestTracer tracer_;
  Simulator sim_;
  Network net_;
  PublicKeyDirectory directory_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Client>> clients_;
  NodeId next_client_id_ = kClientIdBase;
};

}  // namespace bft

#endif  // SRC_WORKLOAD_CLUSTER_H_

#include "src/workload/andrew.h"

namespace bft {

const char* AndrewResult::PhaseName(int i) {
  static const char* kNames[AndrewResult::kPhases] = {"mkdir", "copy", "stat", "read", "make"};
  return kNames[i];
}

std::vector<AndrewOp> BuildAndrewOps(const AndrewScale& scale) {
  std::vector<AndrewOp> ops;
  // BfsService allocates inodes deterministically (lowest free index, starting at 1), so the
  // generator can precompute every inode number.
  uint32_t next_ino = 1;

  // Phase 1: mkdir.
  std::vector<uint32_t> dirs;
  for (int d = 0; d < scale.dirs; ++d) {
    ops.push_back({BfsService::MkdirOp(BfsService::kRootIno, "dir" + std::to_string(d)),
                   false, 0});
    dirs.push_back(next_ino++);
  }

  // Phase 2: copy — create each file and write it chunk by chunk.
  std::vector<uint32_t> files;
  for (int d = 0; d < scale.dirs; ++d) {
    for (int f = 0; f < scale.files_per_dir; ++f) {
      ops.push_back({BfsService::CreateOp(dirs[static_cast<size_t>(d)],
                                          "file" + std::to_string(f)),
                     false, 1});
      uint32_t ino = next_ino++;
      files.push_back(ino);
      for (size_t offset = 0; offset < scale.file_size; offset += scale.write_chunk) {
        size_t chunk = std::min(scale.write_chunk, scale.file_size - offset);
        Bytes data(chunk, static_cast<uint8_t>(0x40 + f));
        ops.push_back(
            {BfsService::WriteOp(ino, static_cast<uint32_t>(offset), data), false, 1});
      }
    }
  }

  // Phase 3: stat everything.
  for (uint32_t ino : dirs) {
    ops.push_back({BfsService::GetAttrOp(ino), true, 2});
  }
  for (uint32_t ino : files) {
    ops.push_back({BfsService::GetAttrOp(ino), true, 2});
  }

  // Phase 4: read every byte of every file.
  for (uint32_t ino : files) {
    for (size_t offset = 0; offset < scale.file_size; offset += scale.write_chunk) {
      size_t chunk = std::min(scale.write_chunk, scale.file_size - offset);
      ops.push_back({BfsService::ReadOp(ino, static_cast<uint32_t>(offset),
                                        static_cast<uint32_t>(chunk)),
                     true, 3});
    }
  }

  // Phase 5: make — re-read sources, then emit objects.
  for (uint32_t ino : files) {
    ops.push_back({BfsService::ReadOp(ino, 0, static_cast<uint32_t>(scale.file_size)), true,
                   4});
  }
  for (int o = 0; o < scale.objects; ++o) {
    ops.push_back(
        {BfsService::CreateOp(BfsService::kRootIno, "obj" + std::to_string(o)), false, 4});
    uint32_t ino = next_ino++;
    for (size_t offset = 0; offset < scale.object_size; offset += scale.write_chunk) {
      size_t chunk = std::min(scale.write_chunk, scale.object_size - offset);
      Bytes data(chunk, static_cast<uint8_t>(0x80 + o));
      ops.push_back(
          {BfsService::WriteOp(ino, static_cast<uint32_t>(offset), data), false, 4});
    }
  }
  return ops;
}

AndrewResult RunAndrewReplicated(Cluster* cluster, Client* client, const AndrewScale& scale,
                                 SimTime op_timeout) {
  AndrewResult result;
  std::vector<AndrewOp> ops = BuildAndrewOps(scale);
  int current_phase = 0;
  SimTime phase_start = cluster->sim().Now();
  for (const AndrewOp& op : ops) {
    if (op.phase != current_phase) {
      result.phase_time[static_cast<size_t>(current_phase)] =
          cluster->sim().Now() - phase_start;
      current_phase = op.phase;
      phase_start = cluster->sim().Now();
    }
    std::optional<Bytes> r = cluster->Execute(client, op.op, op.read_only, op_timeout);
    if (!r.has_value()) {
      // An op failure shows up as a huge phase time rather than silently skewing the ratio.
      result.phase_time[static_cast<size_t>(current_phase)] += op_timeout;
      continue;
    }
    cluster->sim().RunFor(scale.client_kernel_cost);  // kernel NFS loopback + VFS, both systems
    ++result.phase_ops[static_cast<size_t>(current_phase)];
  }
  result.phase_time[static_cast<size_t>(current_phase)] = cluster->sim().Now() - phase_start;
  return result;
}

AndrewResult RunAndrewUnreplicated(const ReplicaConfig& config, const PerfModel& model,
                                   const AndrewScale& scale, uint64_t seed) {
  // One simulated NFS server: every op costs a request round trip plus execution, with the
  // same digesting a real NFS server skips (no MACs, no protocol).
  ReplicaConfig local = config;
  PerfModel m = model;
  ReplicaState state(&local, &m);
  BfsService fs;
  fs.Initialize(&state);
  state.Baseline({});

  AndrewResult result;
  std::vector<AndrewOp> ops = BuildAndrewOps(scale);
  uint64_t mtime = 1;
  for (const AndrewOp& op : ops) {
    Writer nd;
    nd.U64(mtime++);
    Bytes r = fs.Execute(kClientIdBase, op.op, nd.data(), op.read_only);
    size_t req_bytes = 40 + op.op.size();
    size_t reply_bytes = 40 + r.size();
    SimTime t = scale.client_kernel_cost + m.net.SendCpuCost(req_bytes) +
                m.net.WireLatency(req_bytes) + m.net.RecvCpuCost(req_bytes) +
                fs.ExecutionCost(op.op) + m.net.SendCpuCost(reply_bytes) +
                m.net.WireLatency(reply_bytes) + m.net.RecvCpuCost(reply_bytes) +
                m.net.jitter_ns;
    result.phase_time[static_cast<size_t>(op.phase)] += t;
    ++result.phase_ops[static_cast<size_t>(op.phase)];
  }
  return result;
}

}  // namespace bft

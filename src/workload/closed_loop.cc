#include "src/workload/closed_loop.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "src/obs/metrics.h"
#include "src/shard/sharded_cluster.h"

namespace bft {

namespace {
SimTime LastLatency(const Client* client) { return client->stats().last_latency; }
SimTime LastLatency(const ShardedClient* client) { return client->last_latency(); }

void AddRouterStats(ClosedLoopResult& result, const Client* client) {}
void AddRouterStats(ClosedLoopResult& result, const ShardedClient* client) {
  const ShardedClient::RouterStats& s = client->router_stats();
  result.keyless_ops += s.keyless_ops;
  result.stale_reroutes += s.stale_reroutes;
  result.frozen_queued += s.frozen_queued;
}

size_t GroupCount(Cluster* cluster) { return 1; }
size_t GroupCount(ShardedCluster* cluster) { return cluster->num_shards(); }

size_t ServingGroup(const Client* client) { return 0; }
size_t ServingGroup(const ShardedClient* client) { return client->last_shard(); }
}  // namespace

// --- ZipfianGenerator ------------------------------------------------------------------------

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  double u = rng_.Uniform();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t rank =
      static_cast<uint64_t>(static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank < n_ ? rank : n_ - 1;
}

template <typename ClusterT, typename ClientT>
ClosedLoopRunner<ClusterT, ClientT>::ClosedLoopRunner(ClusterT* cluster, size_t num_clients,
                                                      OpFactory make_op, bool read_only)
    : cluster_(cluster), make_op_(std::move(make_op)), read_only_(read_only) {
  clients_.reserve(num_clients);
  op_counts_.assign(num_clients, 0);
  for (size_t i = 0; i < num_clients; ++i) {
    clients_.push_back(cluster_->AddClient());
  }
}

template <typename ClusterT, typename ClientT>
void ClosedLoopRunner<ClusterT, ClientT>::Pump(size_t client_index) {
  if (stopped_) {
    return;
  }
  ClientT* client = clients_[client_index];
  uint64_t op_index = op_counts_[client_index]++;
  SimTime issued = cluster_->sim().Now();
  client->Invoke(make_op_(client_index, op_index), read_only_,
                 [this, client_index, client, issued](Bytes) {
                   if (counting_) {
                     ++completed_;
                     latency_sum_ += LastLatency(client);
                     // Caller-observed latency (includes freeze queueing / re-routes),
                     // attributed to the group that finally served the op.
                     group_samples_[ServingGroup(client)].push_back(
                         cluster_->sim().Now() - issued);
                   }
                   Pump(client_index);
                 });
}

template <typename ClusterT, typename ClientT>
ClosedLoopResult ClosedLoopRunner<ClusterT, ClientT>::Run(SimTime warmup, SimTime duration) {
  Simulator& sim = cluster_->sim();
  for (size_t i = 0; i < clients_.size(); ++i) {
    // Stagger client starts slightly to avoid lockstep artifacts.
    sim.Schedule(i * 50 * kMicrosecond, [this, i]() { Pump(i); });
  }
  group_samples_.assign(GroupCount(cluster_), {});
  sim.RunFor(warmup);
  counting_ = true;
  completed_ = 0;
  latency_sum_ = 0;
  SimTime start = sim.Now();
  sim.RunFor(duration);
  counting_ = false;
  SimTime elapsed = sim.Now() - start;
  stopped_ = true;

  Result result;
  result.ops_completed = completed_;
  result.ops_per_second =
      elapsed > 0 ? static_cast<double>(completed_) * kSecond / static_cast<double>(elapsed)
                  : 0.0;
  result.mean_latency = completed_ > 0 ? latency_sum_ / completed_ : 0;
  result.group_p99.resize(group_samples_.size());
  for (size_t g = 0; g < group_samples_.size(); ++g) {
    result.group_p99[g] = PercentileOf(group_samples_[g], 99);
  }
  for (ClientT* client : clients_) {
    AddRouterStats(result, client);
  }
  return result;
}

template class ClosedLoopRunner<Cluster, Client>;
template class ClosedLoopRunner<ShardedCluster, ShardedClient>;

}  // namespace bft

#include "src/workload/closed_loop.h"

#include <type_traits>

#include "src/shard/sharded_cluster.h"

namespace bft {

namespace {
SimTime LastLatency(const Client* client) { return client->stats().last_latency; }
SimTime LastLatency(const ShardedClient* client) { return client->last_latency(); }

void AddRouterStats(ClosedLoopResult& result, const Client* client) {}
void AddRouterStats(ClosedLoopResult& result, const ShardedClient* client) {
  const ShardedClient::RouterStats& s = client->router_stats();
  result.keyless_ops += s.keyless_ops;
  result.stale_reroutes += s.stale_reroutes;
  result.frozen_queued += s.frozen_queued;
}
}  // namespace

template <typename ClusterT, typename ClientT>
ClosedLoopRunner<ClusterT, ClientT>::ClosedLoopRunner(ClusterT* cluster, size_t num_clients,
                                                      OpFactory make_op, bool read_only)
    : cluster_(cluster), make_op_(std::move(make_op)), read_only_(read_only) {
  clients_.reserve(num_clients);
  op_counts_.assign(num_clients, 0);
  for (size_t i = 0; i < num_clients; ++i) {
    clients_.push_back(cluster_->AddClient());
  }
}

template <typename ClusterT, typename ClientT>
void ClosedLoopRunner<ClusterT, ClientT>::Pump(size_t client_index) {
  if (stopped_) {
    return;
  }
  ClientT* client = clients_[client_index];
  uint64_t op_index = op_counts_[client_index]++;
  client->Invoke(make_op_(client_index, op_index), read_only_,
                 [this, client_index, client](Bytes) {
                   if (counting_) {
                     ++completed_;
                     latency_sum_ += LastLatency(client);
                   }
                   Pump(client_index);
                 });
}

template <typename ClusterT, typename ClientT>
ClosedLoopResult ClosedLoopRunner<ClusterT, ClientT>::Run(SimTime warmup, SimTime duration) {
  Simulator& sim = cluster_->sim();
  for (size_t i = 0; i < clients_.size(); ++i) {
    // Stagger client starts slightly to avoid lockstep artifacts.
    sim.Schedule(i * 50 * kMicrosecond, [this, i]() { Pump(i); });
  }
  sim.RunFor(warmup);
  counting_ = true;
  completed_ = 0;
  latency_sum_ = 0;
  SimTime start = sim.Now();
  sim.RunFor(duration);
  counting_ = false;
  SimTime elapsed = sim.Now() - start;
  stopped_ = true;

  Result result;
  result.ops_completed = completed_;
  result.ops_per_second =
      elapsed > 0 ? static_cast<double>(completed_) * kSecond / static_cast<double>(elapsed)
                  : 0.0;
  result.mean_latency = completed_ > 0 ? latency_sum_ / completed_ : 0;
  for (ClientT* client : clients_) {
    AddRouterStats(result, client);
  }
  return result;
}

template class ClosedLoopRunner<Cluster, Client>;
template class ClosedLoopRunner<ShardedCluster, ShardedClient>;

}  // namespace bft

// Closed-loop load generator: a pool of clients, each re-issuing an operation as soon as the
// previous one completes, as in the paper's throughput experiments (Section 8.3.2).
//
// One generic runner drives both harnesses: ClosedLoopLoad over a single replica group
// (workload/Cluster) and ShardedClosedLoopLoad over a sharded cluster (src/shard/), where
// operations route to their owning group and the aggregate rate is the sum of all groups'
// committed throughput.
#ifndef SRC_WORKLOAD_CLOSED_LOOP_H_
#define SRC_WORKLOAD_CLOSED_LOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/cluster.h"

namespace bft {

class ShardedCluster;
class ShardedClient;

// Zipfian rank generator over [0, n): rank 0 is the hottest item, with P(rank k) ∝
// 1/(k+1)^theta — the standard skewed-access model (YCSB's zipfian_generator, after
// Gray et al., "Quickly generating billion-record synthetic databases"). theta in (0, 1);
// 0.99 is the YCSB default, where a handful of keys carry most of the traffic. Deterministic
// given (n, theta, seed): the workload driver for skew experiments, including the
// auto-rebalancer bench (hot keys concentrate in few ring buckets, so the initial
// round-robin bucket assignment goes load-imbalanced under skew).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

struct ClosedLoopResult {
  double ops_per_second = 0;
  SimTime mean_latency = 0;
  uint64_t ops_completed = 0;
  // Per-group p99 of *caller-observed* latency (invoke -> completion, so freeze-window
  // queueing and stale re-routes count), attributed to the group that finally served the
  // op. Single-group runs have one entry. Zero for a group that completed no ops in the
  // measured window.
  std::vector<SimTime> group_p99;
  // Router-level counters summed over all clients at the end of the run (always zero for the
  // single-group runner). A live bucket migration during the run shows up here: ops queued
  // across the freeze window and stale-owner replies that were re-routed — the closed loop
  // keeps pumping through both, it just observes the longer latencies.
  uint64_t keyless_ops = 0;
  uint64_t stale_reroutes = 0;
  uint64_t frozen_queued = 0;

  SimTime max_group_p99() const {
    SimTime worst = 0;
    for (SimTime p : group_p99) {
      worst = p > worst ? p : worst;
    }
    return worst;
  }
};

template <typename ClusterT, typename ClientT>
class ClosedLoopRunner {
 public:
  using Result = ClosedLoopResult;
  // `make_op(client_index, op_index)` produces the next operation for a client.
  using OpFactory = std::function<Bytes(size_t client_index, uint64_t op_index)>;

  ClosedLoopRunner(ClusterT* cluster, size_t num_clients, OpFactory make_op, bool read_only);

  // Runs the load for `duration` of simulated time (after a warmup) and reports throughput.
  Result Run(SimTime warmup, SimTime duration);

 private:
  void Pump(size_t client_index);

  ClusterT* cluster_;
  OpFactory make_op_;
  bool read_only_;
  std::vector<ClientT*> clients_;
  std::vector<uint64_t> op_counts_;
  uint64_t completed_ = 0;
  SimTime latency_sum_ = 0;
  // Caller-observed latency samples per serving group, collected while counting (p99 input).
  std::vector<std::vector<SimTime>> group_samples_;
  bool counting_ = false;
  bool stopped_ = false;
};

using ClosedLoopLoad = ClosedLoopRunner<Cluster, Client>;
using ShardedClosedLoopLoad = ClosedLoopRunner<ShardedCluster, ShardedClient>;

}  // namespace bft

#endif  // SRC_WORKLOAD_CLOSED_LOOP_H_

// Metrics registry: named counters, gauges, and log-linear histograms with near-zero
// hot-path cost.
//
// Instruments resolve ONCE (a registry lookup under a mutex, at wiring time) into raw
// pointers the hot path increments with relaxed atomics — one uncontended `lock xadd` on the
// real-clock runtime, indistinguishable from a plain increment on the single-threaded
// simulator. Nothing here touches an Endpoint's RNG, clock, or CpuMeter, so compiling the
// instrumentation in cannot perturb a deterministic simulation: the sim benches stay
// byte-identical with metrics enabled.
//
// Export (Prometheus text exposition / JSON, see obs/export.h) walks the registry under its
// mutex and reads every atomic; an admin thread can scrape while loop threads increment.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

namespace bft {

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A value that goes up and down (current view, log size, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-linear histogram over uint64 values (latencies in clock ticks, batch sizes, bytes).
//
// Values 0..3 get exact buckets; above that, each power-of-two range splits into 4 linear
// sub-buckets (HdrHistogram's scheme with 2 significant bits), so any recorded value lands
// within ~25% of its bucket's bound at 260 fixed slots — Record() is two relaxed adds and a
// bit-scan, no allocation, no locks.
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;  // linear slices per power of two
  static constexpr int kNumBuckets = 4 + 62 * kSubBuckets;

  void Record(uint64_t v) {
    buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t total = 0;
    for (const auto& b : buckets_) {
      total += b.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int index) const {
    return buckets_[static_cast<size_t>(index)].load(std::memory_order_relaxed);
  }

  // Upper bound (inclusive) of the bucket holding the pct-th percentile of recorded values;
  // 0 when empty. Approximate by construction — exact sample percentiles come from
  // PercentileOf below.
  uint64_t Percentile(double pct) const;

  static int BucketIndex(uint64_t v) {
    if (v < 4) {
      return static_cast<int>(v);
    }
    int e = 63 - CountLeadingZeros(v);  // v in [2^e, 2^(e+1)), e >= 2
    int sub = static_cast<int>((v >> (e - 2)) & 3);
    return (e - 1) * kSubBuckets + sub;
  }

  static uint64_t BucketUpperBound(int index) {
    if (index < 4) {
      return static_cast<uint64_t>(index);
    }
    int e = index / kSubBuckets + 1;
    int sub = index % kSubBuckets;
    return ((static_cast<uint64_t>(sub) + 5) << (e - 2)) - 1;
  }

 private:
  static int CountLeadingZeros(uint64_t v) { return __builtin_clzll(v); }

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// Exact percentile over raw samples: index = size*pct/100 clamped to the last element,
// selected in place with nth_element. The one shared implementation behind the closed-loop
// runner's group_p99 and bench_runtime's p50/p99 summaries — both previously open-coded the
// same formula, and the deterministic benches' byte-identity depends on it not drifting.
template <typename T>
T PercentileOf(std::vector<T>& samples, int pct) {
  if (samples.empty()) {
    return T{};
  }
  size_t index = samples.size() * static_cast<size_t>(pct) / 100;
  index = index < samples.size() ? index : samples.size() - 1;
  std::nth_element(samples.begin(), samples.begin() + static_cast<ptrdiff_t>(index),
                   samples.end());
  return samples[static_cast<ptrdiff_t>(index)];
}

// Registry of named instruments. Series identity is (name, labels) where `labels` is a
// preformatted Prometheus label list without braces, e.g. `node="2",type="prepare"`.
// Get* registers on first use and returns the same stable pointer thereafter; pointers
// remain valid for the registry's lifetime. Probes are read-at-export-time callbacks for
// values owned elsewhere (AuthContext's cache counters, replica gauges).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& labels = "");
  void RegisterProbe(const std::string& name, const std::string& labels,
                     std::function<uint64_t()> read);

  // Prometheus text exposition format (one `# TYPE` line per family; histograms emit
  // cumulative `_bucket{le=...}` series plus `_sum`/`_count`).
  std::string RenderPrometheusText() const;
  // The same data as one JSON object: {"series": {"name{labels}": value, ...},
  // "histograms": {"name{labels}": {"count": c, "sum": s, "p50": ..., "p99": ...}}}.
  std::string RenderJson() const;

  // Calls fn(name, labels, value) for every counter, gauge, and probe (not histograms).
  void VisitScalars(
      const std::function<void(const std::string&, const std::string&, int64_t)>& fn) const;

  // Process-wide default. Replica/Client/transports resolve their instruments here at
  // construction so increments are always valid; harnesses that want an isolated, exportable
  // view re-install their components into a registry they own.
  static MetricsRegistry& Process();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kProbe };
  struct Series {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> probe;
  };

  Series* FindOrCreate(const std::string& name, const std::string& labels, Kind kind);

  mutable Mutex mu_;
  // name -> labels -> series; ordered so exports are stable for tests and diffing. Export
  // walks (and probes fire) under mu_, so RegisterProbe replacing a probe — CrashReplica
  // freezing a dying replica's counters — can never race a probe still reading that replica.
  std::map<std::string, std::map<std::string, Series>> families_ BFT_GUARDED_BY(mu_);
};

}  // namespace bft

#endif  // SRC_OBS_METRICS_H_

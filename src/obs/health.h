// Health snapshot: one JSON document answering "is this cluster OK right now?".
//
// Harnesses (sim Cluster, RtCluster, ShardedCluster) fill a HealthSnapshot from replica
// state they already own; EvaluateHealth turns it into an `ok|degraded` verdict with
// human-readable reasons, and RenderHealthJson is what `GET /healthz` serves. The structs
// deliberately carry plain integers (no Replica pointers), so the snapshot can cross
// threads — RtCluster collects it via RunOn — and so src/obs stays below src/core in the
// layering fence.
#ifndef SRC_OBS_HEALTH_H_
#define SRC_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/clock.h"

namespace bft {

struct ReplicaHealth {
  NodeId id = 0;
  bool running = false;  // false: crashed or not yet started
  uint64_t view = 0;
  bool view_active = false;  // false while a view change is in progress
  uint64_t last_stable = 0;  // low water mark h (last stable checkpoint)
  uint64_t high_water = 0;   // h + log size
  uint64_t last_executed = 0;
  bool transfer_active = false;  // state transfer in progress
};

struct HealthSnapshot {
  std::vector<ReplicaHealth> replicas;
  // Fault injection (real-clock runtime only; both stay 0 on the simulator).
  bool faults_armed = false;
  uint64_t faults_injected = 0;
  // Sharded control plane (0/empty on single-group deployments).
  uint64_t active_migrations = 0;
  uint64_t frozen_buckets = 0;
  uint64_t shard_map_version = 0;
};

struct HealthVerdict {
  bool ok = true;
  std::vector<std::string> reasons;  // empty iff ok
};

// Degraded when: a replica is down, mid-view-change, or transferring state; running
// replicas disagree on the view; migrations are in flight / buckets are frozen; or fault
// injection is armed. Everything else is "ok".
HealthVerdict EvaluateHealth(const HealthSnapshot& snapshot);

// {"status": "ok|degraded", "reasons": [...], "replicas": [...], "faults": {...},
//  "shards": {...}} — the /healthz body.
std::string RenderHealthJson(const HealthSnapshot& snapshot);

}  // namespace bft

#endif  // SRC_OBS_HEALTH_H_

// Request tracer: per-request phase timelines across the whole protocol pipeline.
//
// A sampled request is stamped at six points — client dispatch, pre-prepare (primary sends /
// backup accepts), prepared, committed, executed, reply certified — each with the observing
// Endpoint's clock. Since every Endpoint (simulated or real) reports SimTime in nanosecond
// ticks, one implementation yields identical-schema timelines on the simulator and the
// real-clock runtime; on the runtime all nodes share one process-wide clock epoch, so stamps
// from different loop threads are directly comparable.
//
// Replica-side phases are stamped by every replica that reaches them; the tracer keeps the
// EARLIEST stamp per phase (the protocol-wide "first replica to prepare", etc.), which keeps
// dispatch <= pre-prepare <= prepared <= committed and prepared <= executed <= certified
// regardless of which replicas straggle. Note that with tentative execution (Section 5.1.2)
// a batch legitimately executes after it prepares but before it commits, so `executed` is
// NOT ordered against `committed`.
//
// Sampling defaults to OFF: the hot-path check is one relaxed load and a predictable branch,
// sampling decisions hash (client, timestamp) — no Endpoint RNG draw — so compiling tracing
// in leaves deterministic simulations byte-identical.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/thread_annotations.h"
#include "src/core/clock.h"

namespace bft {

enum class TracePhase : int {
  kDispatch = 0,   // client: Invoke() handed the request to the wire
  kPrePrepare = 1, // primary assigned a sequence number / backup accepted the pre-prepare
  kPrepared = 2,   // first replica completed a prepared certificate
  kCommitted = 3,  // first replica completed a commit certificate
  kExecuted = 4,   // first replica executed the request (possibly tentatively)
  kCertified = 5,  // client assembled the reply certificate
};
constexpr int kNumTracePhases = 6;

const char* TracePhaseName(TracePhase phase);

struct TraceTimeline {
  NodeId client = 0;
  uint64_t timestamp = 0;
  SimTime phase_time[kNumTracePhases] = {};
  bool seen[kNumTracePhases] = {};

  SimTime at(TracePhase p) const { return phase_time[static_cast<int>(p)]; }
  bool has(TracePhase p) const { return seen[static_cast<int>(p)]; }
  bool complete() const;
  // The orderings that hold universally (see header comment re tentative execution).
  bool monotonic() const;
  // Certified - dispatch; 0 unless both ends were stamped.
  SimTime total() const;
};

class RequestTracer {
 public:
  // 0 disables tracing entirely (default), 1 traces every request, N traces the requests
  // whose (client, timestamp) hash to 0 mod N.
  void set_sample_every(uint32_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }
  bool enabled() const { return sample_every() != 0; }

  // Requests slower than this (certified - dispatch) are logged at Info level and counted;
  // 0 disables the slow log.
  void set_slow_threshold(SimTime t);

  // Hot-path gate: callers check `tracer->enabled() && tracer->Sampled(...)` before Stamp.
  bool Sampled(NodeId client, uint64_t timestamp) const {
    uint32_t every = sample_every();
    if (every == 0) {
      return false;
    }
    if (every == 1) {
      return true;
    }
    // splitmix64-style mix: deterministic, independent of any Endpoint RNG.
    uint64_t x = (static_cast<uint64_t>(client) << 32) ^ timestamp;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x % every == 0;
  }

  // Records `phase` at `now` for the request, keeping the earliest stamp per phase.
  // kCertified retires the timeline to the completed ring (and runs the slow-request check).
  void Stamp(TracePhase phase, NodeId client, uint64_t timestamp, SimTime now);

  std::vector<TraceTimeline> Completed() const;
  std::vector<TraceTimeline> Active() const;
  uint64_t completed_count() const;
  uint64_t slow_count() const;

  // {"traces": [...], "active": n, "slow_requests": n} — phase names as keys, tick values.
  std::string RenderJson() const;

 private:
  static constexpr size_t kMaxCompleted = 1024;

  std::atomic<uint32_t> sample_every_{0};

  mutable Mutex mu_;
  SimTime slow_threshold_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t slow_count_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t completed_total_ BFT_GUARDED_BY(mu_) = 0;
  std::map<std::pair<NodeId, uint64_t>, TraceTimeline> active_ BFT_GUARDED_BY(mu_);
  std::deque<TraceTimeline> completed_ BFT_GUARDED_BY(mu_);
};

}  // namespace bft

#endif  // SRC_OBS_TRACE_H_

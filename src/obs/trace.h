// Request tracer: per-request phase timelines across the whole protocol pipeline.
//
// A sampled request is stamped at six points — client dispatch, pre-prepare (primary sends /
// backup accepts), prepared, committed, executed, reply certified — each with the observing
// Endpoint's clock. Since every Endpoint (simulated or real) reports SimTime in nanosecond
// ticks, one implementation yields identical-schema timelines on the simulator and the
// real-clock runtime; on the runtime all nodes share one process-wide clock epoch, so stamps
// from different loop threads are directly comparable.
//
// Replica-side phases are stamped by every replica that reaches them; the tracer keeps the
// EARLIEST stamp per phase (the protocol-wide "first replica to prepare", etc.), which keeps
// dispatch <= pre-prepare <= prepared <= committed and prepared <= executed <= certified
// regardless of which replicas straggle. Note that with tentative execution (Section 5.1.2)
// a batch legitimately executes after it prepares but before it commits, so `executed` is
// NOT ordered against `committed`.
//
// Besides client requests the tracer carries ADMIN-OP timelines: migration batch moves
// (freeze → seal → export → import → publish → complete) and rebalance rounds
// (snapshot → plan → dispatch → complete). Admin ops are rare control-plane events, so they
// bypass hash sampling and are traced whenever tracing is enabled at any rate.
//
// Retiring a timeline feeds its consecutive-phase deltas into per-phase latency histograms
// (see InstallMetrics), so `/metrics` carries p50/p95/p99 per phase without anyone having to
// post-process raw timelines.
//
// Sampling defaults to OFF: the hot-path check is one relaxed load and a predictable branch,
// sampling decisions hash (client, timestamp) — no Endpoint RNG draw — so compiling tracing
// in leaves deterministic simulations byte-identical.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/thread_annotations.h"
#include "src/core/clock.h"
#include "src/obs/metrics.h"

namespace bft {

enum class TracePhase : int {
  kDispatch = 0,   // client: Invoke() handed the request to the wire
  kPrePrepare = 1, // primary assigned a sequence number / backup accepted the pre-prepare
  kPrepared = 2,   // first replica completed a prepared certificate
  kCommitted = 3,  // first replica completed a commit certificate
  kExecuted = 4,   // first replica executed the request (possibly tentatively)
  kCertified = 5,  // client assembled the reply certificate
};
constexpr int kNumTracePhases = 6;

const char* TracePhaseName(TracePhase phase);

// What a timeline describes. Request timelines use the TracePhase milestones above; admin
// kinds reuse the same phase slots with their own milestone names (TracePhaseLabel).
enum class TraceKind : uint8_t {
  kRequest = 0,    // client request: dispatch .. certified (6 phases)
  kMigration = 1,  // migration move: freeze, seal, export, import, publish, complete (6)
  kRebalance = 2,  // rebalance round: snapshot, plan, dispatch, complete (4)
};
constexpr int kNumTraceKinds = 3;

const char* TraceKindName(TraceKind kind);
// Number of phase slots this kind uses (the last slot retires the timeline).
int TraceKindPhases(TraceKind kind);
// Milestone name of `phase` under `kind`; for kRequest this is TracePhaseName.
const char* TracePhaseLabel(TraceKind kind, int phase);

struct TraceTimeline {
  TraceKind kind = TraceKind::kRequest;
  // For admin kinds `client` is 0 and `timestamp` carries the admin op id.
  NodeId client = 0;
  uint64_t timestamp = 0;
  SimTime phase_time[kNumTracePhases] = {};
  bool seen[kNumTracePhases] = {};

  SimTime at(TracePhase p) const { return phase_time[static_cast<int>(p)]; }
  bool has(TracePhase p) const { return seen[static_cast<int>(p)]; }
  bool complete() const;
  // The orderings that hold universally (see header comment re tentative execution).
  // Admin phases are strictly sequential, so every consecutive pair must be ordered.
  bool monotonic() const;
  // Last phase - first phase of the kind; 0 unless both ends were stamped.
  SimTime total() const;
};

class RequestTracer {
 public:
  // 0 disables tracing entirely (default), 1 traces every request, N traces the requests
  // whose (client, timestamp) hash to 0 mod N.
  void set_sample_every(uint32_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  uint32_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }
  bool enabled() const { return sample_every() != 0; }

  // Requests slower than this (certified - dispatch) are logged at Info level and counted;
  // 0 disables the slow log.
  void set_slow_threshold(SimTime t);

  // Resolves the per-phase latency histograms (bft_phase_latency_us for requests,
  // bft_admin_phase_latency_us for admin kinds, in microseconds) into `registry` and
  // registers the tracer's self-counters as probes. Call once at harness construction,
  // before traffic; retirement records into the resolved instruments. Probes capture
  // `this`, so they are skipped for the process-wide registry (which outlives any tracer).
  void InstallMetrics(MetricsRegistry* registry);

  // Hot-path gate: callers check `tracer->enabled() && tracer->Sampled(...)` before Stamp.
  bool Sampled(NodeId client, uint64_t timestamp) const {
    uint32_t every = sample_every();
    if (every == 0) {
      return false;
    }
    if (every == 1) {
      return true;
    }
    // splitmix64-style mix: deterministic, independent of any Endpoint RNG.
    uint64_t x = (static_cast<uint64_t>(client) << 32) ^ timestamp;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x % every == 0;
  }

  // Records `phase` at `now` for the request, keeping the earliest stamp per phase.
  // kCertified retires the timeline to the completed ring (and runs the slow-request check).
  void Stamp(TracePhase phase, NodeId client, uint64_t timestamp, SimTime now);

  // Admin-op stamping: phase 0 opens the timeline for `op_id`, the kind's last phase
  // retires it, intermediate phases min-merge like request stamps. Stamps for an unknown
  // op (out-of-order, or tracing enabled mid-op) are dropped and counted. No-op unless
  // enabled() — admin ops skip the hash-sampling gate but not the on/off gate.
  void StampAdmin(TraceKind kind, uint64_t op_id, int phase, SimTime now);

  // Process-unique id for an admin-op timeline; shared by every stamper of this tracer.
  uint64_t NextAdminOpId() { return admin_op_seq_.fetch_add(1, std::memory_order_relaxed) + 1; }

  std::vector<TraceTimeline> Completed() const;
  std::vector<TraceTimeline> Active() const;
  // The exemplar tier: slowest request timelines ever retired (slowest first). Survives
  // ring eviction, so worst cases stay visible even at low sample rates.
  std::vector<TraceTimeline> Slowest() const;
  uint64_t completed_count() const;
  uint64_t slow_count() const;
  uint64_t straggler_merges() const;
  uint64_t dropped_stamps() const;
  uint64_t evicted_timelines() const;

  // {"traces": [...], "exemplars": [...], "active": n, "slow_requests": n, ...}.
  std::string RenderJson() const;

 private:
  static constexpr size_t kMaxCompleted = 1024;
  static constexpr size_t kMaxExemplars = 32;

  // Retires `done`: per-phase histograms, slow log, exemplar heap, completed ring.
  void Retire(const TraceTimeline& done) BFT_REQUIRES(mu_);

  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> admin_op_seq_{0};

  mutable Mutex mu_;
  SimTime slow_threshold_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t slow_count_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t completed_total_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t straggler_merges_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t dropped_stamps_ BFT_GUARDED_BY(mu_) = 0;
  uint64_t evicted_ BFT_GUARDED_BY(mu_) = 0;
  // (kind, client, timestamp/op_id) — admin timelines can never collide with requests.
  std::map<std::tuple<uint8_t, NodeId, uint64_t>, TraceTimeline> active_ BFT_GUARDED_BY(mu_);
  std::deque<TraceTimeline> completed_ BFT_GUARDED_BY(mu_);
  // Min-heap by total() over request-kind timelines: front is the fastest exemplar, so the
  // next slower retiree displaces it in O(log N).
  std::vector<TraceTimeline> slowest_ BFT_GUARDED_BY(mu_);
  // Resolved by InstallMetrics (null until then): consecutive-phase delta histograms plus a
  // total per kind. Written once before traffic, read at retirement under mu_.
  Histogram* delta_hist_[kNumTraceKinds][kNumTracePhases - 1] BFT_GUARDED_BY(mu_) = {};
  Histogram* total_hist_[kNumTraceKinds] BFT_GUARDED_BY(mu_) = {};
};

}  // namespace bft

#endif  // SRC_OBS_TRACE_H_

#include "src/obs/trace.h"

#include <cstdio>

#include "src/common/logging.h"

namespace bft {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kDispatch:
      return "dispatch";
    case TracePhase::kPrePrepare:
      return "pre_prepare";
    case TracePhase::kPrepared:
      return "prepared";
    case TracePhase::kCommitted:
      return "committed";
    case TracePhase::kExecuted:
      return "executed";
    case TracePhase::kCertified:
      return "certified";
  }
  return "?";
}

bool TraceTimeline::complete() const {
  for (bool s : seen) {
    if (!s) {
      return false;
    }
  }
  return true;
}

bool TraceTimeline::monotonic() const {
  auto ordered = [this](TracePhase a, TracePhase b) {
    return !has(a) || !has(b) || at(a) <= at(b);
  };
  return ordered(TracePhase::kDispatch, TracePhase::kPrePrepare) &&
         ordered(TracePhase::kPrePrepare, TracePhase::kPrepared) &&
         ordered(TracePhase::kPrepared, TracePhase::kCommitted) &&
         ordered(TracePhase::kPrepared, TracePhase::kExecuted) &&
         ordered(TracePhase::kExecuted, TracePhase::kCertified);
}

SimTime TraceTimeline::total() const {
  if (!has(TracePhase::kDispatch) || !has(TracePhase::kCertified)) {
    return 0;
  }
  SimTime t0 = at(TracePhase::kDispatch);
  SimTime t1 = at(TracePhase::kCertified);
  return t1 >= t0 ? t1 - t0 : 0;
}

void RequestTracer::set_slow_threshold(SimTime t) {
  MutexLock lock(mu_);
  slow_threshold_ = t;
}

void RequestTracer::Stamp(TracePhase phase, NodeId client, uint64_t timestamp, SimTime now) {
  MutexLock lock(mu_);
  auto it = active_.find({client, timestamp});
  if (it == active_.end()) {
    // Only a dispatch opens a timeline; admitting arbitrary replica stamps would grow
    // active_ with entries nothing ever retires (recovery requests, admin ops). A stamp
    // for a *recently retired* timeline is different: on the real-clock runtime the
    // client's certificate (2f+1 tentative replies) legitimately races the last commit
    // deliveries, so merge stragglers into the completed ring — they land within
    // microseconds of retirement, i.e. at its back.
    if (phase != TracePhase::kDispatch) {
      int scan = 0;
      for (auto rit = completed_.rbegin(); rit != completed_.rend() && scan < 64;
           ++rit, ++scan) {
        if (rit->client == client && rit->timestamp == timestamp) {
          int rp = static_cast<int>(phase);
          if (!rit->seen[rp] || now < rit->phase_time[rp]) {
            rit->seen[rp] = true;
            rit->phase_time[rp] = now;
          }
          return;
        }
      }
      return;
    }
    it = active_.emplace(std::make_pair(client, timestamp), TraceTimeline{}).first;
  }
  TraceTimeline& tl = it->second;
  tl.client = client;
  tl.timestamp = timestamp;
  int p = static_cast<int>(phase);
  if (!tl.seen[p] || now < tl.phase_time[p]) {
    tl.seen[p] = true;
    tl.phase_time[p] = now;
  }
  if (phase != TracePhase::kCertified) {
    return;
  }
  // The client saw its certificate: the request is over from the caller's point of view.
  // Replica stamps arriving after this point are lost, which is fine — they would only
  // re-report phases some straggler reached late.
  TraceTimeline done = tl;
  active_.erase({client, timestamp});
  if (slow_threshold_ != 0 && done.total() > slow_threshold_) {
    ++slow_count_;
    BFT_INFO("slow request client " << done.client << " ts " << done.timestamp << ": total "
                                    << done.total() / kMicrosecond << " us (prepared +"
                                    << (done.has(TracePhase::kPrepared)
                                            ? (done.at(TracePhase::kPrepared) -
                                               done.at(TracePhase::kDispatch)) /
                                                  kMicrosecond
                                            : 0)
                                    << " us)");
  }
  completed_.push_back(done);
  ++completed_total_;
  if (completed_.size() > kMaxCompleted) {
    completed_.pop_front();
  }
}

std::vector<TraceTimeline> RequestTracer::Completed() const {
  MutexLock lock(mu_);
  return std::vector<TraceTimeline>(completed_.begin(), completed_.end());
}

std::vector<TraceTimeline> RequestTracer::Active() const {
  MutexLock lock(mu_);
  std::vector<TraceTimeline> out;
  out.reserve(active_.size());
  for (const auto& [key, tl] : active_) {
    out.push_back(tl);
  }
  return out;
}

uint64_t RequestTracer::completed_count() const {
  MutexLock lock(mu_);
  return completed_total_;
}

uint64_t RequestTracer::slow_count() const {
  MutexLock lock(mu_);
  return slow_count_;
}

std::string RequestTracer::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"traces\": [\n";
  bool first = true;
  for (const TraceTimeline& tl : completed_) {
    char head[96];
    std::snprintf(head, sizeof(head), "%s    {\"client\": %u, \"timestamp\": %llu, ",
                  first ? "" : ",\n", tl.client,
                  static_cast<unsigned long long>(tl.timestamp));
    out += head;
    out += "\"phases\": {";
    bool pfirst = true;
    for (int p = 0; p < kNumTracePhases; ++p) {
      if (!tl.seen[p]) {
        continue;
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", pfirst ? "" : ", ",
                    TracePhaseName(static_cast<TracePhase>(p)),
                    static_cast<unsigned long long>(tl.phase_time[p]));
      out += buf;
      pfirst = false;
    }
    char tail[48];
    std::snprintf(tail, sizeof(tail), "}, \"complete\": %s}",
                  tl.complete() ? "true" : "false");
    out += tail;
    first = false;
  }
  char summary[96];
  std::snprintf(summary, sizeof(summary), "\n  ],\n  \"active\": %zu,\n  \"slow_requests\": %llu\n}\n",
                active_.size(), static_cast<unsigned long long>(slow_count_));
  out += summary;
  return out;
}

}  // namespace bft

#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"

namespace bft {

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kDispatch:
      return "dispatch";
    case TracePhase::kPrePrepare:
      return "pre_prepare";
    case TracePhase::kPrepared:
      return "prepared";
    case TracePhase::kCommitted:
      return "committed";
    case TracePhase::kExecuted:
      return "executed";
    case TracePhase::kCertified:
      return "certified";
  }
  return "?";
}

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRequest:
      return "request";
    case TraceKind::kMigration:
      return "migration";
    case TraceKind::kRebalance:
      return "rebalance";
  }
  return "?";
}

int TraceKindPhases(TraceKind kind) {
  return kind == TraceKind::kRebalance ? 4 : kNumTracePhases;
}

const char* TracePhaseLabel(TraceKind kind, int phase) {
  static const char* kMigration[kNumTracePhases] = {"freeze",  "seal",    "export",
                                                    "import",  "publish", "complete"};
  static const char* kRebalance[kNumTracePhases] = {"snapshot", "plan", "dispatch",
                                                    "complete", "?",    "?"};
  if (phase < 0 || phase >= kNumTracePhases) {
    return "?";
  }
  switch (kind) {
    case TraceKind::kRequest:
      return TracePhaseName(static_cast<TracePhase>(phase));
    case TraceKind::kMigration:
      return kMigration[phase];
    case TraceKind::kRebalance:
      return kRebalance[phase];
  }
  return "?";
}

bool TraceTimeline::complete() const {
  int phases = TraceKindPhases(kind);
  for (int p = 0; p < phases; ++p) {
    if (!seen[p]) {
      return false;
    }
  }
  return true;
}

bool TraceTimeline::monotonic() const {
  auto ordered = [this](int a, int b) {
    return !seen[a] || !seen[b] || phase_time[a] <= phase_time[b];
  };
  if (kind == TraceKind::kRequest) {
    auto ord = [&ordered](TracePhase a, TracePhase b) {
      return ordered(static_cast<int>(a), static_cast<int>(b));
    };
    return ord(TracePhase::kDispatch, TracePhase::kPrePrepare) &&
           ord(TracePhase::kPrePrepare, TracePhase::kPrepared) &&
           ord(TracePhase::kPrepared, TracePhase::kCommitted) &&
           ord(TracePhase::kPrepared, TracePhase::kExecuted) &&
           ord(TracePhase::kExecuted, TracePhase::kCertified);
  }
  int phases = TraceKindPhases(kind);
  for (int p = 0; p + 1 < phases; ++p) {
    if (!ordered(p, p + 1)) {
      return false;
    }
  }
  return true;
}

SimTime TraceTimeline::total() const {
  int last = TraceKindPhases(kind) - 1;
  if (!seen[0] || !seen[last]) {
    return 0;
  }
  return phase_time[last] >= phase_time[0] ? phase_time[last] - phase_time[0] : 0;
}

void RequestTracer::set_slow_threshold(SimTime t) {
  MutexLock lock(mu_);
  slow_threshold_ = t;
}

void RequestTracer::InstallMetrics(MetricsRegistry* registry) {
  MutexLock lock(mu_);
  for (int k = 0; k < kNumTraceKinds; ++k) {
    TraceKind kind = static_cast<TraceKind>(k);
    const char* family =
        kind == TraceKind::kRequest ? "bft_phase_latency_us" : "bft_admin_phase_latency_us";
    std::string kind_label =
        kind == TraceKind::kRequest
            ? ""
            : std::string("kind=\"") + TraceKindName(kind) + "\",";
    int phases = TraceKindPhases(kind);
    for (int p = 0; p + 1 < phases; ++p) {
      std::string labels = kind_label + "phase=\"" + TracePhaseLabel(kind, p) + "_to_" +
                           TracePhaseLabel(kind, p + 1) + "\"";
      delta_hist_[k][p] = registry->GetHistogram(family, labels);
    }
    total_hist_[k] = registry->GetHistogram(family, kind_label + "phase=\"total\"");
  }
  if (registry == &MetricsRegistry::Process()) {
    return;  // probes capture `this`; the process registry outlives any tracer
  }
  registry->RegisterProbe("bft_trace_completed_total", "", [this]() {
    return completed_count();
  });
  registry->RegisterProbe("bft_trace_slow_requests_total", "", [this]() {
    return slow_count();
  });
  registry->RegisterProbe("bft_trace_straggler_merges_total", "", [this]() {
    return straggler_merges();
  });
  registry->RegisterProbe("bft_trace_dropped_stamps_total", "", [this]() {
    return dropped_stamps();
  });
  registry->RegisterProbe("bft_trace_evicted_timelines_total", "", [this]() {
    return evicted_timelines();
  });
}

void RequestTracer::Stamp(TracePhase phase, NodeId client, uint64_t timestamp, SimTime now) {
  MutexLock lock(mu_);
  auto key = std::make_tuple(static_cast<uint8_t>(TraceKind::kRequest), client, timestamp);
  auto it = active_.find(key);
  if (it == active_.end()) {
    // Only a dispatch opens a timeline; admitting arbitrary replica stamps would grow
    // active_ with entries nothing ever retires (recovery requests, admin ops). A stamp
    // for a *recently retired* timeline is different: on the real-clock runtime the
    // client's certificate (2f+1 tentative replies) legitimately races the last commit
    // deliveries, so merge stragglers into the completed ring — they land within
    // microseconds of retirement, i.e. at its back.
    if (phase != TracePhase::kDispatch) {
      int scan = 0;
      for (auto rit = completed_.rbegin(); rit != completed_.rend() && scan < 64;
           ++rit, ++scan) {
        if (rit->kind == TraceKind::kRequest && rit->client == client &&
            rit->timestamp == timestamp) {
          int rp = static_cast<int>(phase);
          if (!rit->seen[rp] || now < rit->phase_time[rp]) {
            rit->seen[rp] = true;
            rit->phase_time[rp] = now;
          }
          ++straggler_merges_;
          return;
        }
      }
      ++dropped_stamps_;
      return;
    }
    it = active_.emplace(key, TraceTimeline{}).first;
  }
  TraceTimeline& tl = it->second;
  tl.client = client;
  tl.timestamp = timestamp;
  int p = static_cast<int>(phase);
  if (!tl.seen[p] || now < tl.phase_time[p]) {
    tl.seen[p] = true;
    tl.phase_time[p] = now;
  }
  if (phase != TracePhase::kCertified) {
    return;
  }
  // The client saw its certificate: the request is over from the caller's point of view.
  // Replica stamps arriving after this point are lost, which is fine — they would only
  // re-report phases some straggler reached late.
  TraceTimeline done = tl;
  active_.erase(key);
  Retire(done);
}

void RequestTracer::StampAdmin(TraceKind kind, uint64_t op_id, int phase, SimTime now) {
  if (!enabled() || kind == TraceKind::kRequest || phase < 0 ||
      phase >= TraceKindPhases(kind)) {
    return;
  }
  MutexLock lock(mu_);
  auto key = std::make_tuple(static_cast<uint8_t>(kind), NodeId{0}, op_id);
  auto it = active_.find(key);
  if (it == active_.end()) {
    if (phase != 0) {
      // Admin milestones are issued by one coordinator in order; an unknown op here means
      // tracing was switched on mid-operation. No straggler semantics — drop and count.
      ++dropped_stamps_;
      return;
    }
    it = active_.emplace(key, TraceTimeline{}).first;
    it->second.kind = kind;
    it->second.timestamp = op_id;
  }
  TraceTimeline& tl = it->second;
  // The coordinator issues milestones strictly in order, but the simulator's CPU-cursor
  // time model can hand a later milestone an EARLIER Now() reading (a long-idle node's
  // sends depart at its stale CPU cursor, and executing that delivery steps the global
  // clock backward). Clamp each stamp to its predecessors: the recorded timeline is the
  // order-preserving projection, so admin timelines stay monotonic by construction.
  for (int q = 0; q < phase; ++q) {
    if (tl.seen[q] && tl.phase_time[q] > now) {
      now = tl.phase_time[q];
    }
  }
  if (!tl.seen[phase] || now < tl.phase_time[phase]) {
    tl.seen[phase] = true;
    tl.phase_time[phase] = now;
  }
  if (phase != TraceKindPhases(kind) - 1) {
    return;
  }
  TraceTimeline done = tl;
  active_.erase(key);
  Retire(done);
}

void RequestTracer::Retire(const TraceTimeline& done) {
  int k = static_cast<int>(done.kind);
  int phases = TraceKindPhases(done.kind);
  for (int p = 0; p + 1 < phases; ++p) {
    if (delta_hist_[k][p] == nullptr || !done.seen[p] || !done.seen[p + 1]) {
      continue;
    }
    // Tentative execution can stamp `executed` before `committed`; the chain delta clamps
    // to 0 then (the separate prepared→executed ordering still holds).
    SimTime d = done.phase_time[p + 1] >= done.phase_time[p]
                    ? done.phase_time[p + 1] - done.phase_time[p]
                    : 0;
    delta_hist_[k][p]->Record(d / kMicrosecond);
  }
  if (total_hist_[k] != nullptr && done.total() > 0) {
    total_hist_[k]->Record(done.total() / kMicrosecond);
  }
  if (done.kind == TraceKind::kRequest && slow_threshold_ != 0 &&
      done.total() > slow_threshold_) {
    ++slow_count_;
    BFT_INFO("slow request client " << done.client << " ts " << done.timestamp << ": total "
                                    << done.total() / kMicrosecond << " us (prepared +"
                                    << (done.has(TracePhase::kPrepared)
                                            ? (done.at(TracePhase::kPrepared) -
                                               done.at(TracePhase::kDispatch)) /
                                                  kMicrosecond
                                            : 0)
                                    << " us)");
  }
  if (done.kind == TraceKind::kRequest && done.total() > 0) {
    // The exemplar tier keeps worst-case *requests*; admin ops are rare enough that the
    // ring alone retains them, and their multi-ms totals would otherwise evict every
    // request exemplar.
    auto faster = [](const TraceTimeline& a, const TraceTimeline& b) {
      return a.total() > b.total();
    };
    if (slowest_.size() < kMaxExemplars) {
      slowest_.push_back(done);
      std::push_heap(slowest_.begin(), slowest_.end(), faster);
    } else if (done.total() > slowest_.front().total()) {
      std::pop_heap(slowest_.begin(), slowest_.end(), faster);
      slowest_.back() = done;
      std::push_heap(slowest_.begin(), slowest_.end(), faster);
    }
  }
  completed_.push_back(done);
  ++completed_total_;
  if (completed_.size() > kMaxCompleted) {
    completed_.pop_front();
    ++evicted_;
  }
}

std::vector<TraceTimeline> RequestTracer::Completed() const {
  MutexLock lock(mu_);
  return std::vector<TraceTimeline>(completed_.begin(), completed_.end());
}

std::vector<TraceTimeline> RequestTracer::Active() const {
  MutexLock lock(mu_);
  std::vector<TraceTimeline> out;
  out.reserve(active_.size());
  for (const auto& [key, tl] : active_) {
    out.push_back(tl);
  }
  return out;
}

std::vector<TraceTimeline> RequestTracer::Slowest() const {
  MutexLock lock(mu_);
  std::vector<TraceTimeline> out = slowest_;
  std::sort(out.begin(), out.end(), [](const TraceTimeline& a, const TraceTimeline& b) {
    return a.total() > b.total();
  });
  return out;
}

uint64_t RequestTracer::completed_count() const {
  MutexLock lock(mu_);
  return completed_total_;
}

uint64_t RequestTracer::slow_count() const {
  MutexLock lock(mu_);
  return slow_count_;
}

uint64_t RequestTracer::straggler_merges() const {
  MutexLock lock(mu_);
  return straggler_merges_;
}

uint64_t RequestTracer::dropped_stamps() const {
  MutexLock lock(mu_);
  return dropped_stamps_;
}

uint64_t RequestTracer::evicted_timelines() const {
  MutexLock lock(mu_);
  return evicted_;
}

namespace {

void AppendTimelineJson(std::string& out, const TraceTimeline& tl, bool first) {
  char head[128];
  std::snprintf(head, sizeof(head),
                "%s    {\"kind\": \"%s\", \"client\": %u, \"timestamp\": %llu, ",
                first ? "" : ",\n", TraceKindName(tl.kind), tl.client,
                static_cast<unsigned long long>(tl.timestamp));
  out += head;
  out += "\"phases\": {";
  bool pfirst = true;
  int phases = TraceKindPhases(tl.kind);
  for (int p = 0; p < phases; ++p) {
    if (!tl.seen[p]) {
      continue;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu", pfirst ? "" : ", ",
                  TracePhaseLabel(tl.kind, p),
                  static_cast<unsigned long long>(tl.phase_time[p]));
    out += buf;
    pfirst = false;
  }
  char tail[48];
  std::snprintf(tail, sizeof(tail), "}, \"complete\": %s}", tl.complete() ? "true" : "false");
  out += tail;
}

}  // namespace

std::string RequestTracer::RenderJson() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"traces\": [\n";
  bool first = true;
  for (const TraceTimeline& tl : completed_) {
    AppendTimelineJson(out, tl, first);
    first = false;
  }
  out += "\n  ],\n  \"exemplars\": [\n";
  std::vector<TraceTimeline> slowest = slowest_;
  std::sort(slowest.begin(), slowest.end(), [](const TraceTimeline& a, const TraceTimeline& b) {
    return a.total() > b.total();
  });
  first = true;
  for (const TraceTimeline& tl : slowest) {
    AppendTimelineJson(out, tl, first);
    first = false;
  }
  char summary[192];
  std::snprintf(summary, sizeof(summary),
                "\n  ],\n  \"active\": %zu,\n  \"slow_requests\": %llu,\n"
                "  \"straggler_merges\": %llu,\n  \"dropped_stamps\": %llu,\n"
                "  \"evicted\": %llu\n}\n",
                active_.size(), static_cast<unsigned long long>(slow_count_),
                static_cast<unsigned long long>(straggler_merges_),
                static_cast<unsigned long long>(dropped_stamps_),
                static_cast<unsigned long long>(evicted_));
  out += summary;
  return out;
}

}  // namespace bft

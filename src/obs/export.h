// Exporters for the metrics registry and request tracer.
//
// Two formats, one source of truth: Prometheus text exposition (for scraping a live
// bft_node) and a JSON dump (for bench artifacts, SIGUSR1 snapshots, and tests). The
// AdminServer is a deliberately tiny blocking HTTP/1.0 responder on a loopback TCP port —
// one accept thread, one request per connection — enough for `curl`/Prometheus, with no
// dependency beyond the sockets the runtime already uses.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace bft {

// One JSON object combining the registry dump and (when a tracer is given) the trace dump:
// {"metrics": {...}, "traces": {...}}.
std::string MetricsAndTracesJson(const MetricsRegistry& registry, const RequestTracer* tracer);

// Writes MetricsAndTracesJson to `path`; returns false (with a diagnostic) on I/O failure.
bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const RequestTracer* tracer = nullptr);

// Serves GET /metrics (Prometheus text), /metrics.json, and /traces over loopback TCP.
class AdminServer {
 public:
  AdminServer(const MetricsRegistry* registry, const RequestTracer* tracer)
      : registry_(registry), tracer_(tracer) {}
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = kernel-assigned) and starts the accept thread. Returns
  // false on bind failure. Call at most once.
  bool Listen(uint16_t port);
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void Serve();

  const MetricsRegistry* registry_;
  const RequestTracer* tracer_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace bft

#endif  // SRC_OBS_EXPORT_H_

// Exporters for the metrics registry and request tracer.
//
// Two formats, one source of truth: Prometheus text exposition (for scraping a live
// bft_node) and a JSON dump (for bench artifacts, SIGUSR1 snapshots, and tests). The
// AdminServer is a deliberately tiny blocking HTTP/1.0 responder on a loopback TCP port —
// one accept thread, one request per connection — enough for `curl`/Prometheus, with no
// dependency beyond the sockets the runtime already uses.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace bft {

// One JSON object combining the registry dump and (when a tracer is given) the trace dump:
// {"metrics": {...}, "traces": {...}}.
std::string MetricsAndTracesJson(const MetricsRegistry& registry, const RequestTracer* tracer);

// Writes MetricsAndTracesJson to `path`; returns false (with a diagnostic) on I/O failure.
bool WriteMetricsJson(const std::string& path, const MetricsRegistry& registry,
                      const RequestTracer* tracer = nullptr);

// Serves GET /metrics (Prometheus text), /metrics.json, /traces, and /healthz over
// loopback TCP. Malformed clients cannot wedge the accept thread: each connection gets a
// read deadline, the request line is capped, and every response (including errors) carries
// a Content-Type.
class AdminServer {
 public:
  AdminServer(const MetricsRegistry* registry, const RequestTracer* tracer)
      : registry_(registry), tracer_(tracer) {}
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Installs the callback behind GET /healthz (without one the route 404s). The callback
  // runs on the accept thread, so it must be safe to call from off-loop — RtCluster's
  // collector marshals onto each replica's loop via RunOn. Call before Listen.
  void SetHealthSource(std::function<HealthSnapshot()> source) {
    health_source_ = std::move(source);
  }

  // How long one connection may dribble its request line before we give up on it.
  // Overridable before Listen (tests use a short deadline).
  void set_read_timeout_ms(int ms) { read_timeout_ms_ = ms; }

  // Binds 127.0.0.1:`port` (0 = kernel-assigned) and starts the accept thread. Returns
  // false on bind failure. Call at most once.
  bool Listen(uint16_t port);
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void Serve();

  const MetricsRegistry* registry_;
  const RequestTracer* tracer_;
  std::function<HealthSnapshot()> health_source_;
  int read_timeout_ms_ = 2000;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace bft

#endif  // SRC_OBS_EXPORT_H_
